# Sanitizer wiring for every target in the project.
#
# Usage:  cmake -B build-tsan -S . -DLC_SANITIZE=thread
#         cmake -B build-asan -S . -DLC_SANITIZE=address
#         cmake -B build-ubsan -S . -DLC_SANITIZE=undefined
#
# `address` and `undefined` may be combined ("address,undefined"); `thread`
# is incompatible with ASan and must run alone. Flags are applied with
# add_compile_options/add_link_options from the top-level list file, so they
# propagate to every library, test, bench, and example target.

set(LC_SANITIZE "" CACHE STRING
    "Sanitizer(s) to build with: thread, address, undefined, or address,undefined")
set_property(CACHE LC_SANITIZE PROPERTY STRINGS
             "" "thread" "address" "undefined" "address,undefined")

if(NOT LC_SANITIZE)
  return()
endif()

if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  message(FATAL_ERROR "LC_SANITIZE requires GCC or Clang (got ${CMAKE_CXX_COMPILER_ID})")
endif()

string(REPLACE "," ";" _lc_san_list "${LC_SANITIZE}")
set(_lc_san_flags "")
foreach(_san IN LISTS _lc_san_list)
  if(_san STREQUAL "thread")
    list(APPEND _lc_san_flags -fsanitize=thread)
  elseif(_san STREQUAL "address")
    list(APPEND _lc_san_flags -fsanitize=address)
  elseif(_san STREQUAL "undefined")
    # Trap-free UBSan with hard failure: any report fails the test run.
    list(APPEND _lc_san_flags -fsanitize=undefined -fno-sanitize-recover=all)
  else()
    message(FATAL_ERROR "Unknown LC_SANITIZE value '${_san}' "
                        "(expected thread, address, or undefined)")
  endif()
endforeach()

if("thread" IN_LIST _lc_san_list AND "address" IN_LIST _lc_san_list)
  message(FATAL_ERROR "TSan and ASan cannot be combined; build them separately")
endif()

list(REMOVE_DUPLICATES _lc_san_flags)
# Frame pointers keep sanitizer stack traces usable; -g keeps them symbolised
# even in Release-flavoured builds.
add_compile_options(${_lc_san_flags} -fno-omit-frame-pointer -g)
add_link_options(${_lc_san_flags})

message(STATUS "lowcomm3d: building with LC_SANITIZE=${LC_SANITIZE}")
