// The paper's Fig 5 program, written against our mini-FFTX API (§6): the
// MASSIF convolution pipeline — padded forward transform, pointwise
// kernel, inverse transform with the adaptive-sampling callback, copy-out
// — composed from four sub-plans and executed twice from the SAME
// specification: once in observe mode (reference interpretation with an
// operation trace) and once in high-performance mode (the fused pruned
// pipeline standing in for SPIRAL-generated code).
//
//   build/examples/fftx_pipeline
#include <cstdio>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "fftx/fftx.hpp"
#include "green/gaussian.hpp"

int main() {
  using namespace lc;
  using namespace lc::fftx;

  const Grid3 grid = Grid3::cube(64);
  const i64 k = 16;
  const Box3 dom = Box3::cube_at({24, 24, 24}, k);
  auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
  auto tree = std::make_shared<sampling::Octree>(
      grid, dom, sampling::SamplingPolicy::paper_default(k, 8, 0, 3));

  RealField small_cube(Grid3::cube(k));
  SplitMix64 rng(5);
  for (auto& v : small_cube.span()) v = rng.uniform(-1.0, 1.0);

  // massif_convolution_plan() from Fig 5, modulo C→C++ spelling.
  auto build = [&](PlanFactory& factory, unsigned top) {
    std::vector<fftx_plan_sub> plans;
    plans.push_back(factory.plan_guru_dft_r2c(dom, FFTX_FLAG_SUBPLAN));
    plans.push_back(factory.plan_guru_pointwise_c2c(
        kernel, FFTX_FLAG_SUBPLAN | FFTX_PW_POINTWISE));
    plans.push_back(factory.plan_guru_dft_c2r(tree, FFTX_FLAG_SUBPLAN));
    plans.push_back(factory.plan_guru_copy(FFTX_FLAG_SUBPLAN));
    return factory.plan_compose(std::move(plans), top);
  };

  // Observe mode: step-by-step reference execution with a trace.
  PlanFactory observe_env(grid, FFTX_MODE_OBSERVE);
  const fftx_plan p_observe =
      build(observe_env, FFTX_ESTIMATE | FFTX_MODE_OBSERVE);
  Stopwatch sw1;
  const auto result_observe = p_observe->execute(small_cube);
  const double observe_ms = sw1.millis();
  std::puts("observe-mode trace:");
  for (const auto& step : p_observe->trace()) {
    std::printf("  %s\n", step.c_str());
  }

  // High-performance mode: one fused kernel from the same specification.
  PlanFactory fast_env(grid, FFTX_HIGH_PERFORMANCE);
  const fftx_plan p_fast = build(fast_env, FFTX_HIGH_PERFORMANCE);
  Stopwatch sw2;
  const auto result_fast = p_fast->execute(small_cube);
  const double fast_ms = sw2.millis();

  // Same specification → same result.
  const auto a = result_observe.samples();
  const auto b = result_fast.samples();
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  std::printf("\nplan: %s\n", p_fast->describe().c_str());
  std::printf("observe mode          : %.1f ms (dense reference)\n",
              observe_ms);
  std::printf("high-performance mode : %.1f ms (fused pruned pipeline)\n",
              fast_ms);
  std::printf("max sample difference : %.2e (same spec, same answer)\n",
              max_diff);
  std::printf("compressed output     : %zu samples of %zu grid points\n",
              a.size(), grid.size());
  return max_diff < 1e-9 ? 0 : 1;
}
