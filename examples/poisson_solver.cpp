// Poisson solver via the Green's-function pipeline (paper Eqn 5 and the
// "similar PDE solvers can benefit" claim): solve  -∇²u = f  on a periodic
// grid by convolving the source with the inverse-Laplacian kernel, using
// the same low-communication machinery as the MASSIF use case.
//
//   build/examples/poisson_solver
#include <cmath>
#include <cstdio>
#include <numbers>

#include "baseline/dense.hpp"
#include "core/pipeline.hpp"
#include "green/poisson.hpp"

int main() {
  using namespace lc;

  const Grid3 grid = Grid3::cube(64);
  const double w = 2.0 * std::numbers::pi / static_cast<double>(grid.nx);

  // Manufactured solution u* = sin(ωx)cos(2ωy) + 0.5 sin(ωz), with
  // f = -∇²u* known analytically (spectral Laplacian on the torus).
  RealField u_star(grid);
  RealField f(grid);
  for_each_point(Box3::of(grid), [&](const Index3& p) {
    const double x = static_cast<double>(p.x);
    const double y = static_cast<double>(p.y);
    const double z = static_cast<double>(p.z);
    const double a = std::sin(w * x) * std::cos(2.0 * w * y);
    const double b = 0.5 * std::sin(w * z);
    u_star(p) = a + b;
    f(p) = (w * w + 4.0 * w * w) * a + w * w * b;
  });

  auto kernel = std::make_shared<green::PoissonGreenSpectrum>(false);

  // Dense solve (reference).
  const RealField u_dense = baseline::dense_convolve(f, *kernel);

  // Low-communication solve. NOTE on hyperparameters: the Poisson Green's
  // function decays like 1/r — much slower than MASSIF's kernel — so the
  // sampling must stay finer (the paper: hyperparameters are tuned per
  // application, §5.3). We use rate 2 with a wide halo.
  core::LowCommParams params;
  params.subdomain = 16;
  params.uniform_rate = 2;
  params.dense_halo = 4;
  const core::LowCommConvolution engine(grid, kernel, params);
  const core::LowCommResult result = engine.convolve(f);

  const double err_dense = relative_l2_error(u_dense.span(), u_star.span());
  const double err_lc = relative_l2_error(result.output.span(), u_star.span());
  const double err_vs_dense =
      relative_l2_error(result.output.span(), u_dense.span());

  std::printf("grid                     : %lld^3\n",
              static_cast<long long>(grid.nx));
  std::printf("dense solve error vs u*  : %.3e (machine-level)\n", err_dense);
  std::printf("low-comm error vs u*     : %.4f%%\n", err_lc * 100.0);
  std::printf("low-comm vs dense        : %.4f%%\n", err_vs_dense * 100.0);
  std::printf("compression              : %.1fx, %zu bytes exchanged\n",
              result.compression_ratio, result.exchanged_bytes);
  return (err_dense < 1e-10 && err_lc < 0.05) ? 0 : 1;
}
