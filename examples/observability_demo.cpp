// One instrumented pass over the whole pipeline (DESIGN.md §13): run a
// local LowCommConvolution, a distributed SimCluster convolve, and a pair
// of ConvolutionService requests with tracing + metrics on, then put the
// measured communication volume next to the paper's Eqn 1 / Eqn 6 models.
//
//   build/examples/observability_demo --n 128 --k 32 --r 2 --ranks 4
//       --trace trace.json --metrics metrics.json --report comm_volume.json
//
// Load trace.json at ui.perfetto.dev to see the nested spans: the
// pipeline.convolve root over the three convolver stages, the sampling
// compress/reconstruct leaves, the exchange phases, and the service waves.
// Exits non-zero when the measured payload disagrees with Eqn 6 by more
// than 10% (the acceptance gate; holds for uniform exterior rate r = 2).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <algorithm>

#include "comm/topology.hpp"
#include "common/rng.hpp"
#include "core/hyperparams.hpp"
#include "core/pipeline.hpp"
#include "green/gaussian.hpp"
#include "obs/cli.hpp"
#include "obs/comm_volume.hpp"
#include "runtime/service.hpp"

int main(int argc, char** argv) {
  using namespace lc;
  const auto obs_cli = obs::ObsCli::parse(argc, argv);

  i64 n = 64;
  i64 k = 32;  // k >= 32 keeps the octree face overhead inside the 10% gate
  i64 r = 2;
  int ranks = 2;
  int nodes = 2;
  std::string report_path;
  std::string rank_stats_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0) n = std::atoll(argv[i + 1]);
    if (std::strcmp(argv[i], "--k") == 0) k = std::atoll(argv[i + 1]);
    if (std::strcmp(argv[i], "--r") == 0) r = std::atoll(argv[i + 1]);
    if (std::strcmp(argv[i], "--ranks") == 0) ranks = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--nodes") == 0) nodes = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--report") == 0) report_path = argv[i + 1];
    if (std::strcmp(argv[i], "--rank-stats") == 0) {
      rank_stats_path = argv[i + 1];
    }
  }
  nodes = std::clamp(nodes, 1, ranks);
  std::printf("observability demo: n=%lld k=%lld r=%lld ranks=%d\n",
              static_cast<long long>(n), static_cast<long long>(k),
              static_cast<long long>(r), ranks);

  const Grid3 grid = Grid3::cube(n);
  auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
  core::LowCommParams params;
  params.subdomain = k;
  params.far_rate = r;
  params.uniform_rate = r;  // uniform exterior → Eqn 6 applies exactly
  params.dense_halo = 0;
  params.batch = core::recommended_batch(n);

  RealField input(grid);
  SplitMix64 rng(7);
  for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);

  // --- 1. Local pipeline: stages 1-3, compression, accumulation -----------
  core::LowCommConvolution engine(grid, kernel, params);
  const core::LowCommResult local = engine.convolve(input);
  std::printf("local convolve: %zu compressed samples (ratio %.1fx)\n",
              local.compressed_samples, local.compression_ratio);

  // --- 2. Distributed run: comm.* counters + per-rank accounting ----------
  comm::SimCluster cluster(ranks);
  const RealField distributed =
      core::distributed_lowcomm_convolve(cluster, input, grid, kernel, params);
  const double err =
      relative_l2_error(distributed.span(), local.output.span());
  std::printf("distributed vs local disagreement: %.2e\n", err);
  for (int rank = 0; rank < ranks; ++rank) {
    const comm::RankCommStats rs = cluster.rank_stats(rank);
    std::printf(
        "  rank %d: sent %zu B in %zu msgs, received %zu B, "
        "barrier wait %.3f ms\n",
        rank, rs.bytes_sent, rs.messages_sent, rs.bytes_received,
        rs.barrier_wait_seconds * 1e3);
  }

  // --- 2b. Hierarchical route: node leaders ship each bundle once ---------
  const comm::Topology topo =
      comm::Topology::grouped(ranks, std::max(1, ranks / nodes));
  comm::SimCluster grouped_cluster(topo);
  const RealField hier = core::distributed_lowcomm_convolve(
      grouped_cluster, input, grid, kernel, params,
      core::ExchangeRoute::kHierarchical);
  const double hier_err = relative_l2_error(hier.span(), local.output.span());
  const comm::LevelTraffic levels = grouped_cluster.stats().level_traffic();
  std::printf(
      "hierarchical route (%d nodes): disagreement %.2e, "
      "wire bytes intra %zu / inter %zu\n",
      topo.nodes(), hier_err, levels.intra_bytes, levels.inter_bytes);

  // --- 3. Service: cache + admission + wave spans --------------------------
  {
    runtime::ConvolutionService service;
    const auto request = [&] {
      runtime::ConvolutionRequest req;
      req.input = input;
      req.kernel = kernel;
      req.params = params;
      req.subdomain = 0;
      return req;
    };
    (void)service.run(request());                 // cold: builds resources
    const auto warm = service.run(request());     // warm: result-cache hit
    std::printf("service: warm request result_cache_hit=%d\n",
                warm.stats.result_cache_hit ? 1 : 0);
  }

  // --- 4. Measured vs model (Eqn 1 / Eqn 6) -------------------------------
  const obs::CommVolumeReport report = obs::measure_comm_volume(
      engine, ranks, cluster.stats().bytes_sent.load());
  std::puts("");
  report.table().print();
  if (!report_path.empty()) {
    std::FILE* f = std::fopen(report_path.c_str(), "w");
    if (f != nullptr) {
      std::fputs(report.to_json().c_str(), f);
      std::fclose(f);
      std::printf("report: %s\n", report_path.c_str());
    } else {
      std::fprintf(stderr, "report: failed to write %s\n",
                   report_path.c_str());
    }
  }

  // --- 5. Executed per-rank ground truth (--rank-stats) -------------------
  // Exact integer byte / message / wait-nanosecond totals per rank id,
  // summed over the flat and hierarchical clusters — the reference
  // tools/critical_path.py asserts its trace attribution against. Each
  // cluster labels its rank threads "rank N", so a trace of this process
  // carries both runs' spans under the same per-rank labels the sums here
  // aggregate over.
  if (!rank_stats_path.empty()) {
    std::FILE* f = std::fopen(rank_stats_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "rank-stats: failed to write %s\n",
                   rank_stats_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\"ranks\":%d,\"per_rank\":[", ranks);
    for (int rank = 0; rank < ranks; ++rank) {
      const comm::RankCommStats a = cluster.rank_stats(rank);
      const comm::RankCommStats b = grouped_cluster.rank_stats(rank);
      std::fprintf(
          f,
          "%s{\"rank\":%d,\"bytes_sent\":%zu,\"bytes_received\":%zu,"
          "\"messages_sent\":%zu,\"messages_received\":%zu,"
          "\"intra_bytes_sent\":%zu,\"inter_bytes_sent\":%zu,"
          "\"barrier_wait_ns\":%lld,\"recv_wait_ns\":%lld}",
          rank == 0 ? "" : ",", rank, a.bytes_sent + b.bytes_sent,
          a.bytes_received + b.bytes_received,
          a.messages_sent + b.messages_sent,
          a.messages_received + b.messages_received,
          a.intra_bytes_sent + b.intra_bytes_sent,
          a.inter_bytes_sent + b.inter_bytes_sent,
          static_cast<long long>(a.barrier_wait_ns + b.barrier_wait_ns),
          static_cast<long long>(a.recv_wait_ns + b.recv_wait_ns));
    }
    std::fputs("]}\n", f);
    std::fclose(f);
    std::printf("rank stats: %s\n", rank_stats_path.c_str());
  }

  obs_cli.finish();

  if (err > 1e-9) {
    std::puts("FAIL: distributed result disagrees with local result");
    return 1;
  }
  if (hier_err > 1e-9) {
    std::puts("FAIL: hierarchical route disagrees with local result");
    return 1;
  }
  if (!report.within(0.10)) {
    std::printf("FAIL: measured/model %.4f outside the 10%% gate\n",
                report.measured_over_model());
    return 1;
  }
  std::puts("\nOK: measured exchange volume within 10% of Eqn 6.");
  return 0;
}
