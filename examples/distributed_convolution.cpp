// Distributed convolution on the simulated cluster (paper Fig 1): the
// traditional slab-decomposed FFT with two all-to-all transposes versus
// the low-communication pipeline with a single sparse exchange — same
// problem, same ranks, exact byte/round/message accounting, plus the α-β
// cost model's view of both at cluster scale.
//
//   build/examples/distributed_convolution
#include <cstdio>

#include "baseline/distributed_fft.hpp"
#include "comm/cost_model.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "green/gaussian.hpp"

int main() {
  using namespace lc;

  const Grid3 grid = Grid3::cube(64);
  const int ranks = 4;
  auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
  RealField input(grid);
  SplitMix64 rng(99);
  for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);

  // --- Traditional: slab FFT with two all-to-all transposes ---------------
  comm::SimCluster trad(ranks);
  const RealField ref = baseline::distributed_fft_convolve(trad, input, kernel);
  std::printf("traditional slab FFT  (%d ranks): %zu bytes, %zu rounds, %zu "
              "messages\n",
              ranks, trad.stats().bytes_sent.load(),
              trad.stats().collective_rounds.load(),
              trad.stats().messages.load());

  // --- Ours: local convolution + one personalised sparse exchange ---------
  core::LowCommParams params;
  params.subdomain = 32;
  params.far_rate = 4;
  params.dense_halo = 3;
  params.batch = 512;
  comm::SimCluster ours(ranks);
  const RealField out =
      core::distributed_lowcomm_convolve(ours, input, grid, kernel, params);
  std::printf("low-communication     (%d ranks): %zu bytes, %zu rounds, %zu "
              "messages\n",
              ranks, ours.stats().bytes_sent.load(),
              ours.stats().collective_rounds.load(),
              ours.stats().messages.load());

  const double err = relative_l2_error(out.span(), ref.span());
  std::printf("result disagreement: %.3f%% (compression-induced)\n",
              err * 100.0);

  // --- The same comparison at the paper's cluster scale (α-β model) -------
  std::puts("\nmodelled per-node comm time at cluster scale (Eqns 1 vs 6):");
  const double beta_link = 1e9;  // points/s
  for (const i64 n : {1024, 2048, 4096}) {
    const double t_fft =
        comm::traditional_fft_comm_time(n, 1024, beta_link);
    const double t_ours = comm::lowcomm_comm_time(n, 32, 8.0, 1024, beta_link);
    std::printf("  N=%5lld, P=1024: T_FFT %.4fs  T_ours %.6fs  (%.0fx)\n",
                static_cast<long long>(n), t_fft, t_ours, t_fft / t_ours);
  }
  return err < 0.05 ? 0 : 1;
}
