// Quickstart: convolve a 64³ field with a rapidly decaying kernel using
// the low-communication pipeline, and compare with the dense reference.
//
//   build/examples/quickstart
//
// Walks through the library's serving entry point: a kernel spectrum
// evaluated on the fly, the hyperparameters (sub-domain size k,
// downsampling rate r, dense halo), a ConvolutionService request, and the
// accuracy / compression / communication numbers it reports. Repeating the
// request shows the runtime's caches at work.
#include <cstdio>

#include "baseline/dense.hpp"
#include "common/rng.hpp"
#include "green/gaussian.hpp"
#include "runtime/service.hpp"

int main() {
  using namespace lc;

  // 1. The problem: an N³ grid and an input field.
  const Grid3 grid = Grid3::cube(64);
  RealField input(grid);
  SplitMix64 rng(2024);
  for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);

  // 2. The kernel: a sharp Gaussian — the paper's stand-in for the MASSIF
  //    Green's function (rapidly decaying, real spectrum). Evaluated
  //    per-frequency on the fly; no N³ kernel array is ever built.
  auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);

  // 3. Hyperparameters (paper §5.4): k³ sub-domains, rate-banded octree
  //    sampling with a dense halo around each sub-domain.
  core::LowCommParams params;
  params.subdomain = 16;  // k
  params.far_rate = 8;    // coarsest downsampling rate
  params.dense_halo = 3;  // full-resolution skin beyond each sub-domain

  // 4. Convolve through the service. It owns the FFT plans, octrees, and
  //    engines, caches them across requests, and batches concurrent
  //    requests — the entry point a long-lived solver or server uses.
  runtime::ConvolutionService service;
  runtime::ConvolutionRequest request;
  request.input = input;
  request.kernel = kernel;
  request.params = params;
  const runtime::ConvolutionResponse response = service.run(request);
  const core::LowCommResult& result = response.result;

  // 5. Compare against the traditional dense FFT convolution.
  const RealField reference = baseline::dense_convolve(input, *kernel);
  const double err =
      relative_l2_error(result.output.span(), reference.span());

  // 6. Run the same request again: the content-addressed result cache
  //    answers without recomputing anything.
  const runtime::ConvolutionResponse again = service.run(request);

  std::printf("grid                : %lld^3\n",
              static_cast<long long>(grid.nx));
  std::printf("sub-domains         : %zu of %lld^3\n",
              response.stats.subdomains,
              static_cast<long long>(params.subdomain));
  std::printf("retained samples    : %zu (compression %.1fx)\n",
              result.compressed_samples, result.compression_ratio);
  std::printf("exchanged bytes     : %zu (vs %zu dense per-domain)\n",
              result.exchanged_bytes,
              response.stats.subdomains * grid.size() * sizeof(double));
  std::printf("relative L2 error   : %.3f%% (paper tolerance: 3%%)\n",
              err * 100.0);
  std::printf("repeat request      : %s in %.2f ms (first: %.2f ms)\n",
              again.stats.result_cache_hit ? "result-cache hit"
                                           : "cache MISS (unexpected)",
              again.stats.run_seconds * 1e3,
              response.stats.run_seconds * 1e3);
  return err < 0.03 && again.stats.result_cache_hit ? 0 : 1;
}
