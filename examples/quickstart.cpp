// Quickstart: convolve a 64³ field with a rapidly decaying kernel using
// the low-communication pipeline, and compare with the dense reference.
//
//   build/examples/quickstart
//
// Walks through the library's core objects: a kernel spectrum evaluated on
// the fly, the hyperparameters (sub-domain size k, downsampling rate r,
// dense halo), the one-call convolution API, and the accuracy /
// compression / communication numbers it reports.
#include <cstdio>

#include "baseline/dense.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "green/gaussian.hpp"

int main() {
  using namespace lc;

  // 1. The problem: an N³ grid and an input field.
  const Grid3 grid = Grid3::cube(64);
  RealField input(grid);
  SplitMix64 rng(2024);
  for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);

  // 2. The kernel: a sharp Gaussian — the paper's stand-in for the MASSIF
  //    Green's function (rapidly decaying, real spectrum). Evaluated
  //    per-frequency on the fly; no N³ kernel array is ever built.
  auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);

  // 3. Hyperparameters (paper §5.4): k³ sub-domains, rate-banded octree
  //    sampling with a dense halo around each sub-domain.
  core::LowCommParams params;
  params.subdomain = 16;  // k
  params.far_rate = 8;    // coarsest downsampling rate
  params.dense_halo = 3;  // full-resolution skin beyond each sub-domain

  // 4. Convolve. Sub-domains are processed locally, one at a time, each
  //    result stored compressed; accumulation interpolates and sums them.
  const core::LowCommConvolution engine(grid, kernel, params);
  const core::LowCommResult result = engine.convolve(input);

  // 5. Compare against the traditional dense FFT convolution.
  const RealField reference = baseline::dense_convolve(input, *kernel);
  const double err =
      relative_l2_error(result.output.span(), reference.span());

  std::printf("grid                : %lld^3\n",
              static_cast<long long>(grid.nx));
  std::printf("sub-domains         : %zu of %lld^3\n",
              engine.decomposition().count(),
              static_cast<long long>(params.subdomain));
  std::printf("retained samples    : %zu (compression %.1fx)\n",
              result.compressed_samples, result.compression_ratio);
  std::printf("exchanged bytes     : %zu (vs %zu dense per-domain)\n",
              result.exchanged_bytes,
              engine.decomposition().count() * grid.size() * sizeof(double));
  std::printf("relative L2 error   : %.3f%% (paper tolerance: 3%%)\n",
              err * 100.0);
  return err < 0.03 ? 0 : 1;
}
