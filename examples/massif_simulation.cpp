// MASSIF simulation (paper §2.2): stress/strain homogenisation of a
// two-phase composite microstructure under a prescribed macroscopic
// strain, solved by the Moulinec–Suquet fixed-point scheme with both
// convolution backends:
//
//   - Algorithm 1 (dense full-grid FFTs), and
//   - Algorithm 2 (the paper's low-communication compressed pipeline),
//
// then compares convergence, the homogenised stiffness, and the strain
// fields.
//
//   build/examples/massif_simulation
#include <cstdio>

#include "massif/solver.hpp"

int main() {
  using namespace lc;
  using namespace lc::massif;

  // A stiff-sphere composite at ~20% volume fraction.
  const Grid3 grid = Grid3::cube(32);
  const Phase matrix = Phase::isotropic("epoxy", 100.0, 0.35);
  const Phase inclusion = Phase::isotropic("glass", 400.0, 0.22);
  const auto micro =
      Microstructure::random_spheres(grid, matrix, inclusion, 0.2, 4.0, 11);
  const auto fractions = micro.volume_fractions();
  std::printf("microstructure: %lld^3, %s %.1f%% / %s %.1f%%\n",
              static_cast<long long>(grid.nx), matrix.name.c_str(),
              fractions[0] * 100.0, inclusion.name.c_str(),
              fractions[1] * 100.0);

  // Uniaxial macroscopic strain E_xx = 1%.
  Sym2 macro;
  macro.at(0, 0) = 0.01;
  const Lame ref = micro.reference_medium();

  // --- Algorithm 1: dense reference ---------------------------------------
  auto dense = std::make_shared<DenseGreenBackend>(grid, ref);
  MassifSolver ref_solver(micro, macro, dense, {5e-3, 50});
  const SolveReport ref_report = ref_solver.solve();
  std::printf("\nAlgorithm 1 (dense):    %2d iterations, converged=%d\n",
              ref_report.iterations, ref_report.converged);
  for (std::size_t i = 0; i < ref_report.strain_change_history.size(); ++i) {
    std::printf("  iter %2zu  ||Δε||/||E|| = %.3e\n", i + 1,
                ref_report.strain_change_history[i]);
  }

  // --- Algorithm 2: low-communication -------------------------------------
  LowCommGreenBackend::Params params;
  params.subdomain = 16;
  params.far_rate = 4;
  params.dense_halo = 4;
  params.batch = 512;
  auto lowcomm = std::make_shared<LowCommGreenBackend>(grid, ref, params);
  MassifSolver lc_solver(micro, macro, lowcomm, {5e-3, 50});
  const SolveReport lc_report = lc_solver.solve();
  std::printf("\nAlgorithm 2 (low-comm): %2d iterations, converged=%d\n",
              lc_report.iterations, lc_report.converged);
  std::printf("  per-iteration exchange: %zu bytes (compressed samples)\n",
              lowcomm->exchange_bytes_per_apply());

  // --- Compare the physics -------------------------------------------------
  const Sym2 s_ref = ref_solver.average_stress();
  const Sym2 s_lc = lc_solver.average_stress();
  std::printf("\nhomogenised response <σ_xx>/E_xx: dense %.2f, low-comm %.2f\n",
              s_ref.at(0, 0) / 0.01, s_lc.at(0, 0) / 0.01);
  std::printf("matrix C_1111 = %.2f, inclusion C_1111 = %.2f (bounds)\n",
              matrix.stiffness.at(0, 0, 0, 0),
              inclusion.stiffness.at(0, 0, 0, 0));
  const double err = lc_solver.strain().relative_error_to(ref_solver.strain());
  std::printf("strain field disagreement: %.2f%%\n", err * 100.0);
  return (ref_report.converged && lc_report.converged && err < 0.05) ? 0 : 1;
}
