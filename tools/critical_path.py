#!/usr/bin/env python3
"""Cross-rank critical-path analysis of a stitched lc trace (DESIGN.md §18).

Reads the Chrome trace JSON written by --trace / Tracer::write_chrome_trace,
merges the per-rank thread tracks (threads labeled "rank N" via thread_name
metadata — one per SimCluster run, so a process that ran both the flat and
hierarchical routes contributes two tracks per rank id), stitches the
"comm.msg.*" flow events back into send→recv edges, and attributes every
nanosecond of exchange wait:

  * "comm.barrier" spans      → barrier wait, per rank
  * "comm.recv_wait" spans    → recv wait, split per level (intra / inter)
    by the flow-finish event the wait ended with (the tracer records the
    'f' endpoint immediately after the wait span on the same thread)

Timestamps are exported as microseconds with %.3f precision, so exact
integer nanoseconds are recovered via round(us * 1000). The attribution is
exact by construction: the SimCluster samples ONE clock pair per wait and
feeds the same integer to both the RankCommStats counter and the trace
span. `--rank-stats <json>` (written by observability_demo --rank-stats)
asserts that equality — per rank id, trace-derived byte / message / wait-ns
totals must equal the executed counters EXACTLY, or the tool exits 1.

Usage:
  tools/critical_path.py trace.json [--rank-stats rank_stats.json]
                                    [--json out.json]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from collections import defaultdict

RANK_LABEL = re.compile(r"^rank (\d+)$")


def ns(us: float) -> int:
    """Recover exact integer nanoseconds from a %.3f-microsecond field."""
    return round(us * 1000)


def load_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if "traceEvents" not in doc:
        raise SystemExit(f"{path}: not a Chrome trace (no traceEvents)")
    return doc


def analyze(doc):
    events = doc["traceEvents"]

    # tid → rank id, from thread_name metadata.
    tid_rank = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            m = RANK_LABEL.match(ev.get("args", {}).get("name", ""))
            if m:
                tid_rank[ev["tid"]] = int(m.group(1))

    # Per-thread streams in file order (== recording order per thread).
    streams = defaultdict(list)
    for ev in events:
        if ev.get("ph") in ("X", "s", "f"):
            streams[ev["tid"]].append(ev)

    blank = lambda: {
        "bytes_sent": 0,
        "bytes_received": 0,
        "messages_sent": 0,
        "messages_received": 0,
        "intra_bytes_sent": 0,
        "inter_bytes_sent": 0,
        "barrier_wait_ns": 0,
        "recv_wait_ns": 0,
        "recv_wait_intra_ns": 0,
        "recv_wait_inter_ns": 0,
        "recv_wait_unpaired_ns": 0,
    }
    ranks = defaultdict(blank)

    # Flow stitching: every 'f' must close exactly one 's' of the same id
    # with the same byte count. Matching is global, not per-thread — the
    # exporter serializes whole thread buffers, so a receiver's 'f' may
    # appear in the file before its sender's 's'.
    flow_errors = []
    sends = {}
    for stream in streams.values():
        for ev in stream:
            if ev["ph"] == "s":
                if ev["id"] in sends:
                    flow_errors.append(f"duplicate flow start {ev['id']}")
                sends[ev["id"]] = ev["args"]["bytes"]
    finished = set()

    for tid, stream in streams.items():
        rank = tid_rank.get(tid)
        acc = ranks[rank] if rank is not None else blank()
        for i, ev in enumerate(stream):
            ph = ev["ph"]
            if ph == "s":
                acc["bytes_sent"] += ev["args"]["bytes"]
                acc["messages_sent"] += 1
                if ev["name"] == "comm.msg.intra":
                    acc["intra_bytes_sent"] += ev["args"]["bytes"]
                elif ev["name"] == "comm.msg.inter":
                    acc["inter_bytes_sent"] += ev["args"]["bytes"]
            elif ph == "f":
                fid = ev["id"]
                if fid not in sends:
                    flow_errors.append(f"flow finish {fid} without start")
                elif fid in finished:
                    flow_errors.append(f"duplicate flow finish {fid}")
                elif sends[fid] != ev["args"]["bytes"]:
                    flow_errors.append(
                        f"flow {fid}: sent {sends[fid]} B, received "
                        f"{ev['args']['bytes']} B")
                finished.add(fid)
                acc["bytes_received"] += ev["args"]["bytes"]
                acc["messages_received"] += 1
            elif ph == "X":
                dur = ns(ev["dur"])
                if ev["name"] == "comm.barrier":
                    acc["barrier_wait_ns"] += dur
                elif ev["name"] == "comm.recv_wait":
                    acc["recv_wait_ns"] += dur
                    # The matching flow-finish is recorded immediately after
                    # the wait span on the same thread; its name carries the
                    # level. A ctx-less message (sent while tracing was off)
                    # leaves the wait level-unattributed but still counted.
                    nxt = stream[i + 1] if i + 1 < len(stream) else None
                    if nxt is not None and nxt["ph"] == "f":
                        if nxt["name"] == "comm.msg.inter":
                            acc["recv_wait_inter_ns"] += dur
                        else:
                            acc["recv_wait_intra_ns"] += dur
                    else:
                        acc["recv_wait_unpaired_ns"] += dur

    for fid in sends:
        if fid not in finished:
            flow_errors.append(f"flow start {fid} never finished")

    return {
        "dropped_events": doc.get("droppedEvents", 0),
        "ranks": {r: acc for r, acc in sorted(ranks.items())},
        "flow_errors": flow_errors,
    }


def check_internal(analysis) -> list[str]:
    """Invariants that must hold for ANY well-formed lc trace."""
    errors = list(analysis["flow_errors"])
    for rank, acc in analysis["ranks"].items():
        parts = (acc["recv_wait_intra_ns"] + acc["recv_wait_inter_ns"] +
                 acc["recv_wait_unpaired_ns"])
        if parts != acc["recv_wait_ns"]:
            errors.append(
                f"rank {rank}: per-level recv-wait attribution "
                f"{parts} ns != recv_wait total {acc['recv_wait_ns']} ns")
    return errors


def check_rank_stats(analysis, path) -> list[str]:
    """Exact equality against the executed RankCommStats ground truth."""
    with open(path, "r", encoding="utf-8") as f:
        truth = json.load(f)
    errors = []
    fields = [
        "bytes_sent", "bytes_received", "messages_sent", "messages_received",
        "intra_bytes_sent", "inter_bytes_sent", "barrier_wait_ns",
        "recv_wait_ns",
    ]
    for entry in truth["per_rank"]:
        rank = entry["rank"]
        acc = analysis["ranks"].get(rank)
        if acc is None:
            errors.append(f"rank {rank}: present in rank-stats, no labeled "
                          "thread in the trace")
            continue
        for field in fields:
            if acc[field] != entry[field]:
                errors.append(
                    f"rank {rank}: trace {field} = {acc[field]}, executed "
                    f"RankCommStats says {entry[field]}")
    extra = set(analysis["ranks"]) - {e["rank"] for e in truth["per_rank"]}
    extra.discard(None)
    if extra:
        errors.append(f"trace has rank tracks {sorted(extra)} absent from "
                      "the rank-stats file")
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace JSON (--trace output)")
    ap.add_argument("--rank-stats",
                    help="rank-stats JSON from observability_demo "
                         "--rank-stats; attribution must match it exactly")
    ap.add_argument("--json", help="write the analysis as JSON to this path")
    args = ap.parse_args()

    analysis = analyze(load_trace(args.trace))

    if analysis["dropped_events"]:
        print(f"WARNING: trace dropped {analysis['dropped_events']} events "
              "(buffer overflow) — attribution below is incomplete",
              file=sys.stderr)

    print(f"{'rank':>4} {'sent B':>12} {'recv B':>12} {'barrier ns':>14} "
          f"{'recv-wait ns':>14} {'intra ns':>14} {'inter ns':>14}")
    slowest, slowest_wait = None, -1
    for rank, acc in analysis["ranks"].items():
        label = str(rank) if rank is not None else "-"
        print(f"{label:>4} {acc['bytes_sent']:>12} {acc['bytes_received']:>12}"
              f" {acc['barrier_wait_ns']:>14} {acc['recv_wait_ns']:>14}"
              f" {acc['recv_wait_intra_ns']:>14}"
              f" {acc['recv_wait_inter_ns']:>14}")
        wait = acc["barrier_wait_ns"] + acc["recv_wait_ns"]
        if rank is not None and wait > slowest_wait:
            slowest, slowest_wait = rank, wait
    if slowest is not None:
        print(f"critical rank: {slowest} ({slowest_wait} ns total exchange "
              "wait — the straggler the barrier serializes on)")

    errors = check_internal(analysis)
    if args.rank_stats:
        errors += check_rank_stats(analysis, args.rank_stats)

    if args.json:
        out = dict(analysis)
        out["ranks"] = {str(k): v for k, v in out["ranks"].items()}
        out["errors"] = errors
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(out, f, indent=2)
            f.write("\n")

    if errors:
        print("FAIL:", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    suffix = " and matches executed RankCommStats exactly" \
        if args.rank_stats else ""
    print(f"OK: attribution is internally consistent{suffix}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
