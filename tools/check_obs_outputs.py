#!/usr/bin/env python3
"""Validate the observability outputs of an instrumented run.

Usage:
    check_obs_outputs.py TRACE_JSON METRICS_JSON [--report REPORT_JSON]
                         [--tol 0.10] [--telemetry HISTORY_JSONL]
                         [--calibration CALIBRATION_JSON]

Checks, in order:
  1. TRACE_JSON parses as Chrome trace-event JSON, contains every span the
     pipeline is expected to emit, and the spans of each thread form a
     properly nested forest (async request-lifetime events, which span
     submit -> respond across wave boundaries, are exempt). Phases are
     validated per kind: 'X' complete spans, 's'/'f' flow endpoints (ids
     must pair up with equal byte payloads), 'M' thread_name metadata; the
     top-level droppedEvents field must be present.
  2. METRICS_JSON parses, and the cache / pool / comm counters that prove
     each subsystem actually reported are present — with the comm-volume
     counters strictly nonzero.
  3. REPORT_JSON (optional) parses, and the measured payload agrees with
     the Eqn 6 model within --tol (default 10%).
  4. HISTORY_JSONL (optional) is a valid plan-vs-actual telemetry history:
     every line parses, carries the full PlanOutcome schema, and each
     non-aborted distributed pipeline record predicted its exchange bytes
     exactly (the static traffic mirror is byte-exact by design).
  5. CALIBRATION_JSON (optional) is a valid fitted calibration with enough
     samples and a positive compute rate.

Exit code 0 when everything holds; 1 with a message per violation.
"""

import argparse
import json
import sys

REQUIRED_SPANS = [
    "pipeline.convolve",
    "pipeline.subdomain",
    "convolver.stage1_xy",
    "convolver.stage2_z",
    "convolver.stage3_planes",
    "accumulate.region",
    "exchange.local_convolve",
    "exchange.all_to_all",
    "exchange.hierarchical",
    "exchange.unpack_accumulate",
    "comm.hier_split",
    "comm.hier_inter",
    "comm.hier_intra",
    "comm.barrier",
    "comm.recv_wait",
    "service.wave",
    "service.admission",
    "service.request",
]

# Async spans measure a request's lifetime (submit -> respond), which
# legitimately straddles the synchronous wave spans of the thread that
# records them.
ASYNC_SPANS = {"service.request"}

REQUIRED_COUNTERS = [
    "cache.hits",
    "cache.misses",
    "pool.tasks",
    "comm.bytes_sent",
    "comm.messages",
    "exchange.payload_bytes",
    "exchange.inter_node_bytes",
    "exchange.intra_node_bytes",
    "pipeline.compressed_samples",
]

NONZERO_COUNTERS = [
    "comm.bytes_sent",
    "comm.messages",
    "exchange.payload_bytes",
    "exchange.inter_node_bytes",
    "exchange.intra_node_bytes",
    "pipeline.compressed_samples",
]

REQUIRED_HISTOGRAMS = [
    "pipeline.convolve_seconds",
    "convolver.stage1_seconds",
    "convolver.stage2_seconds",
    "convolver.stage3_seconds",
    "accumulate.region_seconds",
    "comm.barrier_wait_seconds",
]


def fail(errors, message):
    errors.append(message)


def check_nesting(events, errors):
    """Spans of one thread must form a forest: disjoint or fully nested."""
    eps = 1e-6  # timestamps are microseconds with ns precision
    by_tid = {}
    for ev in events:
        by_tid.setdefault(ev["tid"], []).append(ev)
    for tid, evs in sorted(by_tid.items()):
        evs.sort(key=lambda e: (e["ts"], -(e["ts"] + e["dur"])))
        open_ends = []
        for ev in evs:
            end = ev["ts"] + ev["dur"]
            while open_ends and ev["ts"] >= open_ends[-1] - eps:
                open_ends.pop()
            if open_ends and end > open_ends[-1] + eps:
                fail(
                    errors,
                    f"trace: tid {tid}: span '{ev['name']}' "
                    f"[{ev['ts']:.3f}, {end:.3f}) overlaps but does not "
                    f"nest inside its enclosing span (ends "
                    f"{open_ends[-1]:.3f})",
                )
                return
            open_ends.append(end)


# Required keys per Chrome trace-event phase the tracer emits.
PHASE_KEYS = {
    "X": ("name", "ph", "pid", "tid", "ts", "dur"),       # complete span
    "s": ("name", "ph", "pid", "tid", "ts", "id", "args"),  # flow start
    "f": ("name", "ph", "pid", "tid", "ts", "id", "args"),  # flow finish
    "M": ("name", "ph", "pid", "tid", "args"),            # thread metadata
}


def check_flows(events, errors):
    """'s'/'f' pairs must match one-to-one with equal byte payloads.

    Matching is global: the exporter serializes whole thread buffers, so a
    receiver's 'f' may appear in the file before its sender's 's'.
    """
    sends, finishes = {}, {}
    for ev in events:
        if ev["ph"] not in ("s", "f"):
            continue
        if "bytes" not in ev["args"]:
            fail(errors, f"trace: flow event missing args.bytes: {ev}")
            return
        side = sends if ev["ph"] == "s" else finishes
        if ev["id"] in side:
            fail(errors, f"trace: duplicate flow {ev['ph']} id {ev['id']}")
            return
        side[ev["id"]] = ev["args"]["bytes"]
    for fid, got in finishes.items():
        if fid not in sends:
            fail(errors, f"trace: flow finish {fid} has no start")
        elif sends[fid] != got:
            fail(errors, f"trace: flow {fid} sent {sends[fid]} B but "
                         f"finished with {got} B")
    unfinished = len(sends.keys() - finishes.keys())
    if unfinished:
        fail(errors, f"trace: {unfinished} flow starts never finished")
    if sends:
        print(f"trace: {len(sends)} send->recv flows stitched")


def check_trace(path, errors):
    try:
        with open(path) as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, f"trace: cannot load {path}: {e}")
        return
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(errors, "trace: no traceEvents")
        return
    if "droppedEvents" not in trace:
        fail(errors, "trace: top-level droppedEvents field missing")
    elif trace["droppedEvents"] != 0:
        fail(errors, f"trace: {trace['droppedEvents']} events were dropped "
                     "(buffer overflow — trace is incomplete)")
    for ev in events:
        keys = PHASE_KEYS.get(ev.get("ph"))
        if keys is None:
            fail(errors, f"trace: unexpected phase in {ev}")
            return
        for key in keys:
            if key not in ev:
                fail(errors, f"trace: event missing '{key}': {ev}")
                return
        if ev["ph"] == "X" and ev["dur"] < 0:
            fail(errors, f"trace: negative duration: {ev}")
            return
        if ev["ph"] == "M" and "name" not in ev["args"]:
            fail(errors, f"trace: metadata event missing args.name: {ev}")
            return
    spans = [ev for ev in events if ev["ph"] == "X"]
    names = {ev["name"] for ev in spans}
    for required in REQUIRED_SPANS:
        if required not in names:
            fail(errors, f"trace: required span '{required}' never emitted")
    # Only complete spans nest; flow endpoints are instants and metadata
    # has no timestamp at all.
    check_nesting(
        [ev for ev in spans if ev["name"] not in ASYNC_SPANS], errors
    )
    check_flows(events, errors)
    labels = sum(1 for ev in events
                 if ev["ph"] == "M" and ev["name"] == "thread_name")
    print(f"trace: {len(events)} events ({len(spans)} spans), "
          f"{len(names)} span names, {len({e['tid'] for e in events})} "
          f"threads ({labels} labeled)")


def check_metrics(path, errors):
    try:
        with open(path) as f:
            metrics = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, f"metrics: cannot load {path}: {e}")
        return
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            fail(errors, f"metrics: counter '{name}' missing")
    for name in NONZERO_COUNTERS:
        if counters.get(name, 0) == 0:
            fail(errors, f"metrics: counter '{name}' is zero")
    for name in REQUIRED_HISTOGRAMS:
        if name not in histograms:
            fail(errors, f"metrics: histogram '{name}' missing")
        elif histograms[name].get("count", 0) == 0:
            fail(errors, f"metrics: histogram '{name}' recorded no samples")
    # The cache must have seen traffic (hits OR misses — a cold run may
    # have no hits, a fully warm one no misses).
    if counters.get("cache.hits", 0) + counters.get("cache.misses", 0) == 0:
        fail(errors, "metrics: cache counters saw no traffic")
    print(f"metrics: {len(counters)} counters, {len(histograms)} histograms")


def check_report(path, tol, errors):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, f"report: cannot load {path}: {e}")
        return
    for key in ("payload_bytes", "model_eqn6_bytes", "dense_eqn1_bytes",
                "measured_over_model"):
        if key not in report:
            fail(errors, f"report: field '{key}' missing")
            return
    if report["payload_bytes"] <= 0:
        fail(errors, "report: payload_bytes is zero")
    ratio = report["measured_over_model"]
    if not (1.0 - tol <= ratio <= 1.0 + tol):
        fail(errors,
             f"report: measured/model {ratio:.4f} outside +/-{tol:.0%}")
    print(f"report: measured/model {ratio:.4f} (gate +/-{tol:.0%}), "
          f"reduction vs dense {report.get('reduction_vs_dense', 0):.2f}x")


# The flat PlanOutcome schema (obs/telemetry.hpp): every record line must
# carry every field, with these types.
TELEMETRY_SCHEMA = {
    "v": int, "source": str, "aborted": bool,
    "n": int, "ranks": int, "nodes": int, "k": int, "far_rate": int,
    "schedule": str, "route": str, "wire": str, "batch": int,
    "pred_compute_s": (int, float), "pred_point_passes": (int, float),
    "pred_rate_pps": (int, float), "pred_wire_s": (int, float),
    "pred_intra_s": (int, float), "pred_inter_s": (int, float),
    "pred_bytes": int, "pred_intra_bytes": int, "pred_inter_bytes": int,
    "pred_intra_msgs": int, "pred_inter_msgs": int, "pred_memory_b": int,
    "pred_rel_error": (int, float),
    "meas_wall_s": (int, float), "meas_compute_s": (int, float),
    "meas_wire_s": (int, float), "meas_intra_wire_s": (int, float),
    "meas_inter_wire_s": (int, float),
    "meas_bytes": int, "meas_intra_bytes": int, "meas_inter_bytes": int,
    "meas_intra_msgs": int, "meas_inter_msgs": int,
    "meas_memory_peak_b": int, "meas_max_quant_error": (int, float),
    "meas_barrier_wait_s": (int, float), "meas_recv_wait_s": (int, float),
}


def check_telemetry(path, errors):
    try:
        with open(path) as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as e:
        fail(errors, f"telemetry: cannot load {path}: {e}")
        return
    if not lines:
        fail(errors, "telemetry: history is empty")
        return
    distributed = aborted = 0
    for lineno, line in enumerate(lines, 1):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(errors, f"telemetry: line {lineno} is torn or invalid: {e}")
            continue
        for key, kind in TELEMETRY_SCHEMA.items():
            if key not in rec:
                fail(errors, f"telemetry: line {lineno} missing '{key}'")
                continue
            val = rec[key]
            ok = isinstance(val, kind)
            if kind is not bool and isinstance(val, bool):
                ok = False  # bool is an int subclass; don't let it pass
            if not ok:
                fail(errors, f"telemetry: line {lineno} field '{key}' has "
                             f"type {type(val).__name__}")
        if rec.get("source") not in ("pipeline", "service"):
            fail(errors, f"telemetry: line {lineno} unknown source "
                         f"{rec.get('source')!r}")
        if rec.get("aborted"):
            aborted += 1
        if rec.get("ranks", 0) > 1:
            distributed += 1
            # The prediction runs the exact static traffic mirror — the
            # SAME octree walk the cluster executes — so for a completed
            # distributed run predicted bytes equal executed bytes, not
            # approximately but identically.
            if not rec.get("aborted") and rec.get("source") == "pipeline":
                if rec.get("pred_bytes") != rec.get("meas_bytes"):
                    fail(errors,
                         f"telemetry: line {lineno}: pred_bytes "
                         f"{rec.get('pred_bytes')} != meas_bytes "
                         f"{rec.get('meas_bytes')} (mirror must be exact)")
                if rec.get("meas_bytes", 0) <= 0:
                    fail(errors, f"telemetry: line {lineno}: distributed "
                                 "record moved no bytes")
    print(f"telemetry: {len(lines)} records ({distributed} distributed, "
          f"{aborted} aborted)")


def check_calibration(path, errors):
    try:
        with open(path) as f:
            cal = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, f"calibration: cannot load {path}: {e}")
        return
    for key in ("v", "samples", "rate_pps", "intra_alpha", "intra_beta",
                "inter_alpha", "inter_beta"):
        if key not in cal:
            fail(errors, f"calibration: field '{key}' missing")
            return
    if cal["samples"] < 2:
        fail(errors, f"calibration: only {cal['samples']} samples "
                     "(min-sample guard is 2)")
    if not cal["rate_pps"] > 0:
        fail(errors, "calibration: fitted rate_pps is not positive")
    print(f"calibration: {cal['samples']} samples, rate "
          f"{cal['rate_pps']:.3g} point-passes/s")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument("metrics")
    parser.add_argument("--report", default=None)
    parser.add_argument("--tol", type=float, default=0.10)
    parser.add_argument("--telemetry", default=None,
                        help="plan-vs-actual JSONL history to schema-check")
    parser.add_argument("--calibration", default=None,
                        help="fitted calibration JSON to validate")
    args = parser.parse_args()

    errors = []
    check_trace(args.trace, errors)
    check_metrics(args.metrics, errors)
    if args.report:
        check_report(args.report, args.tol, errors)
    if args.telemetry:
        check_telemetry(args.telemetry, errors)
    if args.calibration:
        check_calibration(args.calibration, errors)

    for message in errors:
        print(f"FAIL: {message}", file=sys.stderr)
    if errors:
        return 1
    print("observability outputs OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
