#!/usr/bin/env python3
"""Validate the observability outputs of an instrumented run.

Usage:
    check_obs_outputs.py TRACE_JSON METRICS_JSON [--report REPORT_JSON]
                         [--tol 0.10]

Checks, in order:
  1. TRACE_JSON parses as Chrome trace-event JSON, contains every span the
     pipeline is expected to emit, and the spans of each thread form a
     properly nested forest (async request-lifetime events, which span
     submit -> respond across wave boundaries, are exempt).
  2. METRICS_JSON parses, and the cache / pool / comm counters that prove
     each subsystem actually reported are present — with the comm-volume
     counters strictly nonzero.
  3. REPORT_JSON (optional) parses, and the measured payload agrees with
     the Eqn 6 model within --tol (default 10%).

Exit code 0 when everything holds; 1 with a message per violation.
"""

import argparse
import json
import sys

REQUIRED_SPANS = [
    "pipeline.convolve",
    "pipeline.subdomain",
    "convolver.stage1_xy",
    "convolver.stage2_z",
    "convolver.stage3_planes",
    "accumulate.region",
    "exchange.local_convolve",
    "exchange.all_to_all",
    "exchange.hierarchical",
    "exchange.unpack_accumulate",
    "comm.hier_split",
    "comm.hier_inter",
    "comm.hier_intra",
    "comm.barrier",
    "service.wave",
    "service.admission",
    "service.request",
]

# Async spans measure a request's lifetime (submit -> respond), which
# legitimately straddles the synchronous wave spans of the thread that
# records them.
ASYNC_SPANS = {"service.request"}

REQUIRED_COUNTERS = [
    "cache.hits",
    "cache.misses",
    "pool.tasks",
    "comm.bytes_sent",
    "comm.messages",
    "exchange.payload_bytes",
    "exchange.inter_node_bytes",
    "exchange.intra_node_bytes",
    "pipeline.compressed_samples",
]

NONZERO_COUNTERS = [
    "comm.bytes_sent",
    "comm.messages",
    "exchange.payload_bytes",
    "exchange.inter_node_bytes",
    "exchange.intra_node_bytes",
    "pipeline.compressed_samples",
]

REQUIRED_HISTOGRAMS = [
    "pipeline.convolve_seconds",
    "convolver.stage1_seconds",
    "convolver.stage2_seconds",
    "convolver.stage3_seconds",
    "accumulate.region_seconds",
    "comm.barrier_wait_seconds",
]


def fail(errors, message):
    errors.append(message)


def check_nesting(events, errors):
    """Spans of one thread must form a forest: disjoint or fully nested."""
    eps = 1e-6  # timestamps are microseconds with ns precision
    by_tid = {}
    for ev in events:
        by_tid.setdefault(ev["tid"], []).append(ev)
    for tid, evs in sorted(by_tid.items()):
        evs.sort(key=lambda e: (e["ts"], -(e["ts"] + e["dur"])))
        open_ends = []
        for ev in evs:
            end = ev["ts"] + ev["dur"]
            while open_ends and ev["ts"] >= open_ends[-1] - eps:
                open_ends.pop()
            if open_ends and end > open_ends[-1] + eps:
                fail(
                    errors,
                    f"trace: tid {tid}: span '{ev['name']}' "
                    f"[{ev['ts']:.3f}, {end:.3f}) overlaps but does not "
                    f"nest inside its enclosing span (ends "
                    f"{open_ends[-1]:.3f})",
                )
                return
            open_ends.append(end)


def check_trace(path, errors):
    try:
        with open(path) as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, f"trace: cannot load {path}: {e}")
        return
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(errors, "trace: no traceEvents")
        return
    for ev in events:
        for key in ("name", "ph", "pid", "tid", "ts", "dur"):
            if key not in ev:
                fail(errors, f"trace: event missing '{key}': {ev}")
                return
        if ev["ph"] != "X":
            fail(errors, f"trace: expected complete ('X') events, got {ev}")
            return
        if ev["dur"] < 0:
            fail(errors, f"trace: negative duration: {ev}")
            return
    names = {ev["name"] for ev in events}
    for required in REQUIRED_SPANS:
        if required not in names:
            fail(errors, f"trace: required span '{required}' never emitted")
    check_nesting(
        [ev for ev in events if ev["name"] not in ASYNC_SPANS], errors
    )
    print(f"trace: {len(events)} events, {len(names)} span names, "
          f"{len({e['tid'] for e in events})} threads")


def check_metrics(path, errors):
    try:
        with open(path) as f:
            metrics = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, f"metrics: cannot load {path}: {e}")
        return
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            fail(errors, f"metrics: counter '{name}' missing")
    for name in NONZERO_COUNTERS:
        if counters.get(name, 0) == 0:
            fail(errors, f"metrics: counter '{name}' is zero")
    for name in REQUIRED_HISTOGRAMS:
        if name not in histograms:
            fail(errors, f"metrics: histogram '{name}' missing")
        elif histograms[name].get("count", 0) == 0:
            fail(errors, f"metrics: histogram '{name}' recorded no samples")
    # The cache must have seen traffic (hits OR misses — a cold run may
    # have no hits, a fully warm one no misses).
    if counters.get("cache.hits", 0) + counters.get("cache.misses", 0) == 0:
        fail(errors, "metrics: cache counters saw no traffic")
    print(f"metrics: {len(counters)} counters, {len(histograms)} histograms")


def check_report(path, tol, errors):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, f"report: cannot load {path}: {e}")
        return
    for key in ("payload_bytes", "model_eqn6_bytes", "dense_eqn1_bytes",
                "measured_over_model"):
        if key not in report:
            fail(errors, f"report: field '{key}' missing")
            return
    if report["payload_bytes"] <= 0:
        fail(errors, "report: payload_bytes is zero")
    ratio = report["measured_over_model"]
    if not (1.0 - tol <= ratio <= 1.0 + tol):
        fail(errors,
             f"report: measured/model {ratio:.4f} outside +/-{tol:.0%}")
    print(f"report: measured/model {ratio:.4f} (gate +/-{tol:.0%}), "
          f"reduction vs dense {report.get('reduction_vs_dense', 0):.2f}x")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument("metrics")
    parser.add_argument("--report", default=None)
    parser.add_argument("--tol", type=float, default=0.10)
    args = parser.parse_args()

    errors = []
    check_trace(args.trace, errors)
    check_metrics(args.metrics, errors)
    if args.report:
        check_report(args.report, args.tol, errors)

    for message in errors:
        print(f"FAIL: {message}", file=sys.stderr)
    if errors:
        return 1
    print("observability outputs OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
