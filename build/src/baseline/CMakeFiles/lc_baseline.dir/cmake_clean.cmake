file(REMOVE_RECURSE
  "CMakeFiles/lc_baseline.dir/dense.cpp.o"
  "CMakeFiles/lc_baseline.dir/dense.cpp.o.d"
  "CMakeFiles/lc_baseline.dir/distributed_fft.cpp.o"
  "CMakeFiles/lc_baseline.dir/distributed_fft.cpp.o.d"
  "liblc_baseline.a"
  "liblc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
