# Empty compiler generated dependencies file for lc_baseline.
# This may be replaced when dependencies are built.
