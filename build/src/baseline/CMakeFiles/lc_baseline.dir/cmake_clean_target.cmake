file(REMOVE_RECURSE
  "liblc_baseline.a"
)
