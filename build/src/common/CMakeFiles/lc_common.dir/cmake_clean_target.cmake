file(REMOVE_RECURSE
  "liblc_common.a"
)
