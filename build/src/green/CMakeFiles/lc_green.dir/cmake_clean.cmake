file(REMOVE_RECURSE
  "CMakeFiles/lc_green.dir/elastic.cpp.o"
  "CMakeFiles/lc_green.dir/elastic.cpp.o.d"
  "CMakeFiles/lc_green.dir/gaussian.cpp.o"
  "CMakeFiles/lc_green.dir/gaussian.cpp.o.d"
  "CMakeFiles/lc_green.dir/kernel.cpp.o"
  "CMakeFiles/lc_green.dir/kernel.cpp.o.d"
  "CMakeFiles/lc_green.dir/poisson.cpp.o"
  "CMakeFiles/lc_green.dir/poisson.cpp.o.d"
  "liblc_green.a"
  "liblc_green.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_green.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
