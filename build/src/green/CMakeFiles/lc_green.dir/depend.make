# Empty dependencies file for lc_green.
# This may be replaced when dependencies are built.
