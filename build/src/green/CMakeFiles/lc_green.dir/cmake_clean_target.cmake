file(REMOVE_RECURSE
  "liblc_green.a"
)
