
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/green/elastic.cpp" "src/green/CMakeFiles/lc_green.dir/elastic.cpp.o" "gcc" "src/green/CMakeFiles/lc_green.dir/elastic.cpp.o.d"
  "/root/repo/src/green/gaussian.cpp" "src/green/CMakeFiles/lc_green.dir/gaussian.cpp.o" "gcc" "src/green/CMakeFiles/lc_green.dir/gaussian.cpp.o.d"
  "/root/repo/src/green/kernel.cpp" "src/green/CMakeFiles/lc_green.dir/kernel.cpp.o" "gcc" "src/green/CMakeFiles/lc_green.dir/kernel.cpp.o.d"
  "/root/repo/src/green/poisson.cpp" "src/green/CMakeFiles/lc_green.dir/poisson.cpp.o" "gcc" "src/green/CMakeFiles/lc_green.dir/poisson.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fft/CMakeFiles/lc_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/lc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
