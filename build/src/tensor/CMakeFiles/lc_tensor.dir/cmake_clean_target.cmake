file(REMOVE_RECURSE
  "liblc_tensor.a"
)
