file(REMOVE_RECURSE
  "CMakeFiles/lc_tensor.dir/field.cpp.o"
  "CMakeFiles/lc_tensor.dir/field.cpp.o.d"
  "CMakeFiles/lc_tensor.dir/grid.cpp.o"
  "CMakeFiles/lc_tensor.dir/grid.cpp.o.d"
  "CMakeFiles/lc_tensor.dir/sym_tensor.cpp.o"
  "CMakeFiles/lc_tensor.dir/sym_tensor.cpp.o.d"
  "CMakeFiles/lc_tensor.dir/tensor_field.cpp.o"
  "CMakeFiles/lc_tensor.dir/tensor_field.cpp.o.d"
  "liblc_tensor.a"
  "liblc_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
