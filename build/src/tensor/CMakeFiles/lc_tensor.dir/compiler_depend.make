# Empty compiler generated dependencies file for lc_tensor.
# This may be replaced when dependencies are built.
