# Empty dependencies file for lc_device.
# This may be replaced when dependencies are built.
