file(REMOVE_RECURSE
  "liblc_device.a"
)
