file(REMOVE_RECURSE
  "CMakeFiles/lc_device.dir/memory_model.cpp.o"
  "CMakeFiles/lc_device.dir/memory_model.cpp.o.d"
  "liblc_device.a"
  "liblc_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
