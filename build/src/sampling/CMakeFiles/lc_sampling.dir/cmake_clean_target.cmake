file(REMOVE_RECURSE
  "liblc_sampling.a"
)
