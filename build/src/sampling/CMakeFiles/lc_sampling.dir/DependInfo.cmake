
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampling/compressed_field.cpp" "src/sampling/CMakeFiles/lc_sampling.dir/compressed_field.cpp.o" "gcc" "src/sampling/CMakeFiles/lc_sampling.dir/compressed_field.cpp.o.d"
  "/root/repo/src/sampling/octree.cpp" "src/sampling/CMakeFiles/lc_sampling.dir/octree.cpp.o" "gcc" "src/sampling/CMakeFiles/lc_sampling.dir/octree.cpp.o.d"
  "/root/repo/src/sampling/sampling_policy.cpp" "src/sampling/CMakeFiles/lc_sampling.dir/sampling_policy.cpp.o" "gcc" "src/sampling/CMakeFiles/lc_sampling.dir/sampling_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/lc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/lc_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
