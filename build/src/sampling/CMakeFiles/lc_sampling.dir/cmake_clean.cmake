file(REMOVE_RECURSE
  "CMakeFiles/lc_sampling.dir/compressed_field.cpp.o"
  "CMakeFiles/lc_sampling.dir/compressed_field.cpp.o.d"
  "CMakeFiles/lc_sampling.dir/octree.cpp.o"
  "CMakeFiles/lc_sampling.dir/octree.cpp.o.d"
  "CMakeFiles/lc_sampling.dir/sampling_policy.cpp.o"
  "CMakeFiles/lc_sampling.dir/sampling_policy.cpp.o.d"
  "liblc_sampling.a"
  "liblc_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
