# Empty compiler generated dependencies file for lc_sampling.
# This may be replaced when dependencies are built.
