file(REMOVE_RECURSE
  "CMakeFiles/lc_fft.dir/convolution.cpp.o"
  "CMakeFiles/lc_fft.dir/convolution.cpp.o.d"
  "CMakeFiles/lc_fft.dir/dft_direct.cpp.o"
  "CMakeFiles/lc_fft.dir/dft_direct.cpp.o.d"
  "CMakeFiles/lc_fft.dir/fft1d.cpp.o"
  "CMakeFiles/lc_fft.dir/fft1d.cpp.o.d"
  "CMakeFiles/lc_fft.dir/fft3d.cpp.o"
  "CMakeFiles/lc_fft.dir/fft3d.cpp.o.d"
  "CMakeFiles/lc_fft.dir/freq.cpp.o"
  "CMakeFiles/lc_fft.dir/freq.cpp.o.d"
  "CMakeFiles/lc_fft.dir/pruned.cpp.o"
  "CMakeFiles/lc_fft.dir/pruned.cpp.o.d"
  "CMakeFiles/lc_fft.dir/real_fft.cpp.o"
  "CMakeFiles/lc_fft.dir/real_fft.cpp.o.d"
  "CMakeFiles/lc_fft.dir/real_fft3d.cpp.o"
  "CMakeFiles/lc_fft.dir/real_fft3d.cpp.o.d"
  "liblc_fft.a"
  "liblc_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
