# Empty dependencies file for lc_fft.
# This may be replaced when dependencies are built.
