
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fft/convolution.cpp" "src/fft/CMakeFiles/lc_fft.dir/convolution.cpp.o" "gcc" "src/fft/CMakeFiles/lc_fft.dir/convolution.cpp.o.d"
  "/root/repo/src/fft/dft_direct.cpp" "src/fft/CMakeFiles/lc_fft.dir/dft_direct.cpp.o" "gcc" "src/fft/CMakeFiles/lc_fft.dir/dft_direct.cpp.o.d"
  "/root/repo/src/fft/fft1d.cpp" "src/fft/CMakeFiles/lc_fft.dir/fft1d.cpp.o" "gcc" "src/fft/CMakeFiles/lc_fft.dir/fft1d.cpp.o.d"
  "/root/repo/src/fft/fft3d.cpp" "src/fft/CMakeFiles/lc_fft.dir/fft3d.cpp.o" "gcc" "src/fft/CMakeFiles/lc_fft.dir/fft3d.cpp.o.d"
  "/root/repo/src/fft/freq.cpp" "src/fft/CMakeFiles/lc_fft.dir/freq.cpp.o" "gcc" "src/fft/CMakeFiles/lc_fft.dir/freq.cpp.o.d"
  "/root/repo/src/fft/pruned.cpp" "src/fft/CMakeFiles/lc_fft.dir/pruned.cpp.o" "gcc" "src/fft/CMakeFiles/lc_fft.dir/pruned.cpp.o.d"
  "/root/repo/src/fft/real_fft.cpp" "src/fft/CMakeFiles/lc_fft.dir/real_fft.cpp.o" "gcc" "src/fft/CMakeFiles/lc_fft.dir/real_fft.cpp.o.d"
  "/root/repo/src/fft/real_fft3d.cpp" "src/fft/CMakeFiles/lc_fft.dir/real_fft3d.cpp.o" "gcc" "src/fft/CMakeFiles/lc_fft.dir/real_fft3d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/lc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
