file(REMOVE_RECURSE
  "liblc_fft.a"
)
