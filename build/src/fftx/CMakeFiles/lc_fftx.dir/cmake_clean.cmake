file(REMOVE_RECURSE
  "CMakeFiles/lc_fftx.dir/fftx.cpp.o"
  "CMakeFiles/lc_fftx.dir/fftx.cpp.o.d"
  "liblc_fftx.a"
  "liblc_fftx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_fftx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
