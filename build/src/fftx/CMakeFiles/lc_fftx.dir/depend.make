# Empty dependencies file for lc_fftx.
# This may be replaced when dependencies are built.
