file(REMOVE_RECURSE
  "liblc_fftx.a"
)
