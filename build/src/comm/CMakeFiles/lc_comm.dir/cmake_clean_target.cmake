file(REMOVE_RECURSE
  "liblc_comm.a"
)
