file(REMOVE_RECURSE
  "CMakeFiles/lc_comm.dir/cost_model.cpp.o"
  "CMakeFiles/lc_comm.dir/cost_model.cpp.o.d"
  "CMakeFiles/lc_comm.dir/sim_cluster.cpp.o"
  "CMakeFiles/lc_comm.dir/sim_cluster.cpp.o.d"
  "liblc_comm.a"
  "liblc_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
