# Empty compiler generated dependencies file for lc_comm.
# This may be replaced when dependencies are built.
