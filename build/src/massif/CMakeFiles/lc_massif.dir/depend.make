# Empty dependencies file for lc_massif.
# This may be replaced when dependencies are built.
