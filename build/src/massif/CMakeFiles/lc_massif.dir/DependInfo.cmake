
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/massif/microstructure.cpp" "src/massif/CMakeFiles/lc_massif.dir/microstructure.cpp.o" "gcc" "src/massif/CMakeFiles/lc_massif.dir/microstructure.cpp.o.d"
  "/root/repo/src/massif/solver.cpp" "src/massif/CMakeFiles/lc_massif.dir/solver.cpp.o" "gcc" "src/massif/CMakeFiles/lc_massif.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/green/CMakeFiles/lc_green.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/lc_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/lc_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/lc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/lc_device.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/lc_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
