file(REMOVE_RECURSE
  "liblc_massif.a"
)
