file(REMOVE_RECURSE
  "CMakeFiles/lc_massif.dir/microstructure.cpp.o"
  "CMakeFiles/lc_massif.dir/microstructure.cpp.o.d"
  "CMakeFiles/lc_massif.dir/solver.cpp.o"
  "CMakeFiles/lc_massif.dir/solver.cpp.o.d"
  "liblc_massif.a"
  "liblc_massif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_massif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
