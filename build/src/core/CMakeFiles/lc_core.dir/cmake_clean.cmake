file(REMOVE_RECURSE
  "CMakeFiles/lc_core.dir/accumulator.cpp.o"
  "CMakeFiles/lc_core.dir/accumulator.cpp.o.d"
  "CMakeFiles/lc_core.dir/decomposition.cpp.o"
  "CMakeFiles/lc_core.dir/decomposition.cpp.o.d"
  "CMakeFiles/lc_core.dir/hyperparams.cpp.o"
  "CMakeFiles/lc_core.dir/hyperparams.cpp.o.d"
  "CMakeFiles/lc_core.dir/local_convolver.cpp.o"
  "CMakeFiles/lc_core.dir/local_convolver.cpp.o.d"
  "CMakeFiles/lc_core.dir/pipeline.cpp.o"
  "CMakeFiles/lc_core.dir/pipeline.cpp.o.d"
  "liblc_core.a"
  "liblc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
