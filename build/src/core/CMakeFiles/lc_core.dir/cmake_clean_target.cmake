file(REMOVE_RECURSE
  "liblc_core.a"
)
