# Empty dependencies file for lc_core.
# This may be replaced when dependencies are built.
