# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tensor")
subdirs("fft")
subdirs("sampling")
subdirs("green")
subdirs("comm")
subdirs("device")
subdirs("baseline")
subdirs("core")
subdirs("massif")
subdirs("fftx")
