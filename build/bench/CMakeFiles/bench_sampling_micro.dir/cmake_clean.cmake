file(REMOVE_RECURSE
  "CMakeFiles/bench_sampling_micro.dir/bench_sampling_micro.cpp.o"
  "CMakeFiles/bench_sampling_micro.dir/bench_sampling_micro.cpp.o.d"
  "bench_sampling_micro"
  "bench_sampling_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sampling_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
