# Empty compiler generated dependencies file for bench_sampling_micro.
# This may be replaced when dependencies are built.
