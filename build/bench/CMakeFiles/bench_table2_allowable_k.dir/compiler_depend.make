# Empty compiler generated dependencies file for bench_table2_allowable_k.
# This may be replaced when dependencies are built.
