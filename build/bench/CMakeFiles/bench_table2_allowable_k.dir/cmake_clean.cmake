file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_allowable_k.dir/bench_table2_allowable_k.cpp.o"
  "CMakeFiles/bench_table2_allowable_k.dir/bench_table2_allowable_k.cpp.o.d"
  "bench_table2_allowable_k"
  "bench_table2_allowable_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_allowable_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
