file(REMOVE_RECURSE
  "CMakeFiles/bench_batch_param.dir/bench_batch_param.cpp.o"
  "CMakeFiles/bench_batch_param.dir/bench_batch_param.cpp.o.d"
  "bench_batch_param"
  "bench_batch_param.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
