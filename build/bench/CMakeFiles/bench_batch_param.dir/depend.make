# Empty dependencies file for bench_batch_param.
# This may be replaced when dependencies are built.
