# Empty dependencies file for bench_massif_iteration.
# This may be replaced when dependencies are built.
