file(REMOVE_RECURSE
  "CMakeFiles/bench_massif_iteration.dir/bench_massif_iteration.cpp.o"
  "CMakeFiles/bench_massif_iteration.dir/bench_massif_iteration.cpp.o.d"
  "bench_massif_iteration"
  "bench_massif_iteration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_massif_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
