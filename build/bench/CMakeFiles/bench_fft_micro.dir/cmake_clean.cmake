file(REMOVE_RECURSE
  "CMakeFiles/bench_fft_micro.dir/bench_fft_micro.cpp.o"
  "CMakeFiles/bench_fft_micro.dir/bench_fft_micro.cpp.o.d"
  "bench_fft_micro"
  "bench_fft_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fft_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
