file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_octree.dir/bench_fig3_octree.cpp.o"
  "CMakeFiles/bench_fig3_octree.dir/bench_fig3_octree.cpp.o.d"
  "bench_fig3_octree"
  "bench_fig3_octree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_octree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
