# Empty dependencies file for bench_fig3_octree.
# This may be replaced when dependencies are built.
