# Empty compiler generated dependencies file for massif_simulation.
# This may be replaced when dependencies are built.
