file(REMOVE_RECURSE
  "CMakeFiles/massif_simulation.dir/massif_simulation.cpp.o"
  "CMakeFiles/massif_simulation.dir/massif_simulation.cpp.o.d"
  "massif_simulation"
  "massif_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massif_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
