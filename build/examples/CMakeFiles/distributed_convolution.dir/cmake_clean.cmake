file(REMOVE_RECURSE
  "CMakeFiles/distributed_convolution.dir/distributed_convolution.cpp.o"
  "CMakeFiles/distributed_convolution.dir/distributed_convolution.cpp.o.d"
  "distributed_convolution"
  "distributed_convolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_convolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
