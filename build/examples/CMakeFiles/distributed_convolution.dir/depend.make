# Empty dependencies file for distributed_convolution.
# This may be replaced when dependencies are built.
