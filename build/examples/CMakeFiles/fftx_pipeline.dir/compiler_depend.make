# Empty compiler generated dependencies file for fftx_pipeline.
# This may be replaced when dependencies are built.
