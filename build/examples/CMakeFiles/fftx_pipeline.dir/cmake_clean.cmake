file(REMOVE_RECURSE
  "CMakeFiles/fftx_pipeline.dir/fftx_pipeline.cpp.o"
  "CMakeFiles/fftx_pipeline.dir/fftx_pipeline.cpp.o.d"
  "fftx_pipeline"
  "fftx_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fftx_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
