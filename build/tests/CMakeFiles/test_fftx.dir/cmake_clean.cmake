file(REMOVE_RECURSE
  "CMakeFiles/test_fftx.dir/test_fftx.cpp.o"
  "CMakeFiles/test_fftx.dir/test_fftx.cpp.o.d"
  "test_fftx"
  "test_fftx.pdb"
  "test_fftx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fftx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
