file(REMOVE_RECURSE
  "CMakeFiles/test_green.dir/test_green.cpp.o"
  "CMakeFiles/test_green.dir/test_green.cpp.o.d"
  "test_green"
  "test_green.pdb"
  "test_green[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_green.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
