# Empty compiler generated dependencies file for test_fft3d.
# This may be replaced when dependencies are built.
