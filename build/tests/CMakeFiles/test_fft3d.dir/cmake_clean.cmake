file(REMOVE_RECURSE
  "CMakeFiles/test_fft3d.dir/test_fft3d.cpp.o"
  "CMakeFiles/test_fft3d.dir/test_fft3d.cpp.o.d"
  "test_fft3d"
  "test_fft3d.pdb"
  "test_fft3d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
