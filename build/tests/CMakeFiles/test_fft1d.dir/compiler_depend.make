# Empty compiler generated dependencies file for test_fft1d.
# This may be replaced when dependencies are built.
