file(REMOVE_RECURSE
  "CMakeFiles/test_massif.dir/test_massif.cpp.o"
  "CMakeFiles/test_massif.dir/test_massif.cpp.o.d"
  "test_massif"
  "test_massif.pdb"
  "test_massif[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_massif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
