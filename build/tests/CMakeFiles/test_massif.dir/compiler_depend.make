# Empty compiler generated dependencies file for test_massif.
# This may be replaced when dependencies are built.
