# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_fft1d[1]_include.cmake")
include("/root/repo/build/tests/test_fft3d[1]_include.cmake")
include("/root/repo/build/tests/test_sampling[1]_include.cmake")
include("/root/repo/build/tests/test_green[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_massif[1]_include.cmake")
include("/root/repo/build/tests/test_fftx[1]_include.cmake")
