// Tests for the 3D FFT and dense convolution, validated against the direct
// O(N^6) references on small grids.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "fft/convolution.hpp"
#include "fft/dft_direct.hpp"
#include "fft/fft3d.hpp"
#include "fft/real_fft3d.hpp"

namespace lc::fft {
namespace {

ComplexField random_complex_field(const Grid3& g, std::uint64_t seed) {
  ComplexField f(g);
  SplitMix64 rng(seed);
  for (auto& v : f.span()) v = cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return f;
}

RealField random_real_field(const Grid3& g, std::uint64_t seed) {
  RealField f(g);
  SplitMix64 rng(seed);
  for (auto& v : f.span()) v = rng.uniform(-1.0, 1.0);
  return f;
}

double max_err(const ComplexField& a, const ComplexField& b) {
  double m = 0.0;
  const auto pa = a.span();
  const auto pb = b.span();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    m = std::max(m, std::abs(pa[i] - pb[i]));
  }
  return m;
}

class Fft3DGrids : public ::testing::TestWithParam<Grid3> {};

TEST_P(Fft3DGrids, ForwardMatchesDirect) {
  const Grid3 g = GetParam();
  const ComplexField x = random_complex_field(g, 7);
  const ComplexField want = dft3_direct_forward(x);
  ComplexField got = x;
  Fft3D plan(g);
  plan.forward(got);
  EXPECT_LT(max_err(got, want), 1e-9 * static_cast<double>(g.size()))
      << g.str();
}

TEST_P(Fft3DGrids, RoundTripIsIdentity) {
  const Grid3 g = GetParam();
  const ComplexField x = random_complex_field(g, 8);
  ComplexField y = x;
  Fft3D plan(g);
  plan.forward(y);
  plan.inverse(y);
  EXPECT_LT(max_err(y, x), 1e-10 * static_cast<double>(g.size())) << g.str();
}

INSTANTIATE_TEST_SUITE_P(SmallGrids, Fft3DGrids,
                         ::testing::Values(Grid3{4, 4, 4}, Grid3{8, 8, 8},
                                           Grid3{4, 6, 8}, Grid3{3, 5, 7},
                                           Grid3{1, 4, 4}, Grid3{8, 1, 2}));

TEST(Fft3D, SingleThreadedMatchesPooled) {
  const Grid3 g{8, 8, 8};
  const ComplexField x = random_complex_field(g, 21);
  ComplexField a = x;
  ComplexField b = x;
  Fft3D pooled(g, &ThreadPool::global());
  Fft3D serial(g, nullptr);
  pooled.forward(a);
  serial.forward(b);
  EXPECT_LT(max_err(a, b), 1e-12);
}

TEST(Fft3D, AxisTransformsComposeToFull) {
  const Grid3 g{8, 4, 8};
  const ComplexField x = random_complex_field(g, 22);
  ComplexField full = x;
  ComplexField staged = x;
  Fft3D plan(g);
  plan.forward(full);
  plan.transform_axis(staged, 0, false);
  plan.transform_axis(staged, 1, false);
  plan.transform_axis(staged, 2, false);
  EXPECT_LT(max_err(full, staged), 1e-12);
}

TEST(Fft3D, WrongGridThrows) {
  Fft3D plan(Grid3{4, 4, 4});
  ComplexField f(Grid3{4, 4, 8});
  EXPECT_THROW(plan.forward(f), InvalidArgument);
}

TEST(Fft3D, Parseval3D) {
  const Grid3 g{8, 8, 8};
  ComplexField x = random_complex_field(g, 23);
  double time_energy = 0.0;
  for (const auto& v : x.span()) time_energy += std::norm(v);
  Fft3D plan(g);
  plan.forward(x);
  double freq_energy = 0.0;
  for (const auto& v : x.span()) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(g.size()), time_energy,
              1e-8 * time_energy);
}

TEST(Convolution, FftMatchesDirectCircular) {
  const Grid3 g{6, 6, 6};
  const RealField a = random_real_field(g, 31);
  const RealField b = random_real_field(g, 32);
  const RealField want = circular_convolve_direct(a, b);
  Fft3D plan(g);
  const RealField got = fft_circular_convolve(a, b, plan);
  EXPECT_LT(max_abs_error(got.span(), want.span()), 1e-9);
}

TEST(Convolution, ConvolveWithSpectrumMatchesTwoFieldPath) {
  const Grid3 g{8, 8, 8};
  const RealField a = random_real_field(g, 41);
  const RealField kern = random_real_field(g, 42);
  Fft3D plan(g);
  const ComplexField kern_hat = forward_spectrum(kern, plan);
  const RealField via_spec = convolve_with_spectrum(a, kern_hat, plan);
  const RealField via_fields = fft_circular_convolve(a, kern, plan);
  EXPECT_LT(max_abs_error(via_spec.span(), via_fields.span()), 1e-10);
}

TEST(Convolution, DeltaKernelIsIdentity) {
  const Grid3 g{8, 8, 8};
  const RealField a = random_real_field(g, 51);
  RealField delta(g, 0.0);
  delta(0, 0, 0) = 1.0;
  Fft3D plan(g);
  const RealField out = fft_circular_convolve(a, delta, plan);
  EXPECT_LT(max_abs_error(out.span(), a.span()), 1e-10);
}

TEST(Convolution, ShiftedDeltaTranslates) {
  const Grid3 g{8, 8, 8};
  const RealField a = random_real_field(g, 52);
  RealField delta(g, 0.0);
  delta(1, 2, 3) = 1.0;
  Fft3D plan(g);
  const RealField out = fft_circular_convolve(a, delta, plan);
  for_each_point(Box3::of(g), [&](const Index3& p) {
    const Index3 q{(p.x - 1 + g.nx) % g.nx, (p.y - 2 + g.ny) % g.ny,
                   (p.z - 3 + g.nz) % g.nz};
    EXPECT_NEAR(out(p), a(q), 1e-10);
  });
}

TEST(Convolution, IsCommutative) {
  const Grid3 g{5, 5, 5};
  const RealField a = random_real_field(g, 61);
  const RealField b = random_real_field(g, 62);
  Fft3D plan(g);
  const RealField ab = fft_circular_convolve(a, b, plan);
  const RealField ba = fft_circular_convolve(b, a, plan);
  EXPECT_LT(max_abs_error(ab.span(), ba.span()), 1e-10);
}

class RealFft3DGrids : public ::testing::TestWithParam<Grid3> {};

TEST_P(RealFft3DGrids, HalfSpectrumMatchesComplexTransform) {
  const Grid3 g = GetParam();
  const RealField x = random_real_field(g, 71);
  RealFft3D rplan(g);
  const ComplexField half = rplan.forward(x);
  ASSERT_EQ(half.grid(), (Grid3{g.nx / 2 + 1, g.ny, g.nz}));

  Fft3D cplan(g);
  const ComplexField full = forward_spectrum(x, cplan);
  for_each_point(Box3::of(half.grid()), [&](const Index3& p) {
    EXPECT_LT(std::abs(half(p) - full(p)), 1e-9) << p.str();
  });
}

TEST_P(RealFft3DGrids, RoundTripIsIdentity) {
  const Grid3 g = GetParam();
  const RealField x = random_real_field(g, 72);
  RealFft3D plan(g);
  const RealField back = plan.inverse(plan.forward(x));
  EXPECT_LT(max_abs_error(back.span(), x.span()),
            1e-10 * static_cast<double>(g.size()))
      << g.str();
}

INSTANTIATE_TEST_SUITE_P(RealGrids, RealFft3DGrids,
                         ::testing::Values(Grid3{8, 8, 8}, Grid3{4, 6, 8},
                                           Grid3{16, 8, 4}, Grid3{6, 5, 7}));

TEST(RealFft3D, SerialMatchesPooled) {
  const Grid3 g{8, 8, 8};
  const RealField x = random_real_field(g, 73);
  RealFft3D pooled(g, &ThreadPool::global());
  RealFft3D serial(g, nullptr);
  const ComplexField a = pooled.forward(x);
  const ComplexField b = serial.forward(x);
  EXPECT_LT(max_err(a, b), 1e-12);
}

TEST(RealFft3D, RejectsWrongShapes) {
  RealFft3D plan(Grid3{8, 8, 8});
  RealField wrong(Grid3{8, 8, 4});
  EXPECT_THROW((void)plan.forward(wrong), InvalidArgument);
  ComplexField bad_spec(Grid3{8, 8, 8});
  EXPECT_THROW((void)plan.inverse(std::move(bad_spec)), InvalidArgument);
}

TEST(Convolution, GridMismatchThrows) {
  RealField a(Grid3{4, 4, 4});
  RealField b(Grid3{4, 4, 8});
  Fft3D plan(Grid3{4, 4, 4});
  EXPECT_THROW(fft_circular_convolve(a, b, plan), InvalidArgument);
}

// --- Lazy per-axis plans ----------------------------------------------------

TEST(Fft3D, AxisPlansBuildLazily) {
  // Construction must not pay for twiddle tables; a z-only sweep must
  // build the z plan and nothing else (x and y stay cold).
  Fft3D plan(Grid3{8, 16, 32});
  EXPECT_FALSE(plan.axis_plan_built(0));
  EXPECT_FALSE(plan.axis_plan_built(1));
  EXPECT_FALSE(plan.axis_plan_built(2));

  ComplexField f(Grid3{8, 16, 32});
  plan.transform_axis(f, 2, false);
  EXPECT_FALSE(plan.axis_plan_built(0));
  EXPECT_FALSE(plan.axis_plan_built(1));
  EXPECT_TRUE(plan.axis_plan_built(2));
}

TEST(Fft3D, EqualAxesShareOnePlan) {
  // On a cubic grid the three axes share one LazyPlan holder: building any
  // axis marks them all built.
  Fft3D plan(Grid3{16, 16, 16});
  ComplexField f(Grid3{16, 16, 16});
  plan.transform_axis(f, 0, false);
  EXPECT_TRUE(plan.axis_plan_built(0));
  EXPECT_TRUE(plan.axis_plan_built(1));
  EXPECT_TRUE(plan.axis_plan_built(2));
}

TEST(Fft3D, ConcurrentFirstUseBuildsSafely) {
  // Many threads race the first transform; std::call_once must yield one
  // plan and every thread a correct result.
  const Grid3 g{16, 16, 16};
  const ComplexField input = [&] {
    ComplexField f(g);
    for (std::size_t i = 0; i < f.size(); ++i) {
      f[i] = {std::sin(0.1 * static_cast<double>(i)), 0.0};
    }
    return f;
  }();
  Fft3D reference_plan(g);
  ComplexField expected = input;
  reference_plan.forward(expected);

  Fft3D plan(g, nullptr);
  constexpr int kThreads = 8;
  std::vector<ComplexField> results(kThreads, input);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&plan, &results, t] { plan.forward(results[t]); });
  }
  for (auto& th : threads) th.join();
  for (const auto& r : results) {
    EXPECT_LT(max_err(r, expected), 1e-12);
  }
}

}  // namespace
}  // namespace lc::fft
