// Unit tests for src/common: checks, aligned allocation, thread pool, RNG,
// table formatting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "common/aligned.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace lc {
namespace {

TEST(Check, ArgCheckThrowsInvalidArgument) {
  EXPECT_THROW(LC_CHECK_ARG(false, "boom"), InvalidArgument);
  EXPECT_NO_THROW(LC_CHECK_ARG(true, "fine"));
}

TEST(Check, InternalCheckThrowsInternalError) {
  EXPECT_THROW(LC_CHECK(false, "bug"), InternalError);
}

TEST(Check, MessageContainsContext) {
  try {
    LC_CHECK_ARG(1 == 2, "custom context");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Aligned, VectorStorageIsAligned) {
  AlignedVector<double> v(1000);
  const auto addr = reinterpret_cast<std::uintptr_t>(v.data());
  EXPECT_EQ(addr % kAlignment, 0u);
}

TEST(Aligned, AllocatorEqualityIsStateless) {
  AlignedAllocator<double> a;
  AlignedAllocator<int> b;
  EXPECT_TRUE(a == b);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForBlocksPartitionsContiguously) {
  ThreadPool pool(3);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  pool.parallel_for_blocks(0, 100, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard lock(m);
    blocks.emplace_back(lo, hi);
  });
  std::size_t total = 0;
  for (auto [lo, hi] : blocks) {
    EXPECT_LT(lo, hi);
    total += hi - lo;
  }
  EXPECT_EQ(total, 100u);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 64,
                                 [](std::size_t i) {
                                   if (i == 13) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForBlocksPropagatesExceptionsAndStaysUsable) {
  // After a throwing body the pool must be fully reusable: no lost
  // in-flight accounting, no stuck workers, next runs cover the range.
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        pool.parallel_for_blocks(0, 64,
                                 [](std::size_t lo, std::size_t) {
                                   if (lo == 0) throw std::runtime_error("x");
                                 }),
        std::runtime_error);
    std::vector<std::atomic<int>> hits(64);
    pool.parallel_for_blocks(0, hits.size(),
                             [&](std::size_t lo, std::size_t hi) {
                               for (std::size_t i = lo; i < hi; ++i) hits[i]++;
                             });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForBlocksZeroLengthRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for_blocks(5, 5, [&](std::size_t, std::size_t) {
    touched = true;
  });
  EXPECT_FALSE(touched);
  // Inverted ranges are treated as empty, not as a huge wrap-around.
  pool.parallel_for_blocks(7, 3, [&](std::size_t, std::size_t) {
    touched = true;
  });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, RejectsParallelForFromOwnWorker) {
  ThreadPool pool(2);
  std::atomic<bool> threw{false};
  pool.submit([&] {
    EXPECT_TRUE(pool.on_worker_thread());
    try {
      pool.parallel_for(0, 8, [](std::size_t) {});
    } catch (const InternalError&) {
      threw = true;
    }
  });
  pool.wait_idle();
  EXPECT_TRUE(threw.load());
  EXPECT_FALSE(pool.on_worker_thread());
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { count++; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(0, 10, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(Rng, Deterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowStaysBelow) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Table, RendersHeaderAndRows) {
  TextTable t("Demo");
  t.header({"N", "k"});
  t.row({"1024", "128"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("1024"), std::string::npos);
  EXPECT_NE(s.find("128"), std::string::npos);
}

TEST(Table, FormatBytesGb) {
  EXPECT_EQ(format_bytes_gb(8.0 * 1024 * 1024 * 1024), "8.00");
  EXPECT_EQ(format_bytes_gb(1.5 * 1024 * 1024 * 1024, 1), "1.5");
}

TEST(Table, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(Timer, MeasuresNonNegativeMonotonicTime) {
  Stopwatch sw;
  const double t1 = sw.seconds();
  const double t2 = sw.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  sw.reset();
  EXPECT_GE(sw.millis(), 0.0);
}

}  // namespace
}  // namespace lc
