// Tests for the mini-FFTX plan API (paper §6, Fig 5): plan construction,
// composition validation, the observe-mode trace, and the key decoupling
// property — observe mode and high-performance mode produce identical
// compressed results from the same specification.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fftx/fftx.hpp"
#include "green/gaussian.hpp"
#include "massif/green_operator.hpp"

namespace lc::fftx {
namespace {

class FftxFixture : public ::testing::Test {
 protected:
  Grid3 grid_ = Grid3::cube(32);
  Box3 dom_ = Box3::cube_at({8, 8, 8}, 8);
  std::shared_ptr<green::GaussianSpectrum> kernel_ =
      std::make_shared<green::GaussianSpectrum>(grid_, 1.5);
  std::shared_ptr<sampling::Octree> tree_ = std::make_shared<sampling::Octree>(
      grid_, dom_, sampling::SamplingPolicy::paper_default(8, 8, 0));

  RealField random_chunk(std::uint64_t seed) {
    RealField f(Grid3::cube(8));
    SplitMix64 rng(seed);
    for (auto& v : f.span()) v = rng.uniform(-1.0, 1.0);
    return f;
  }

  fftx_plan make_plan(PlanFactory& factory, unsigned top_flags) {
    // The Fig 5 program: r2c → pointwise → c2r(sampling) → copy.
    std::vector<fftx_plan_sub> subs;
    subs.push_back(factory.plan_guru_dft_r2c(dom_, FFTX_FLAG_SUBPLAN));
    subs.push_back(factory.plan_guru_pointwise_c2c(
        kernel_, FFTX_FLAG_SUBPLAN | FFTX_PW_POINTWISE));
    subs.push_back(factory.plan_guru_dft_c2r(tree_, FFTX_FLAG_SUBPLAN));
    subs.push_back(factory.plan_guru_copy(FFTX_FLAG_SUBPLAN));
    return factory.plan_compose(std::move(subs), top_flags);
  }
};

TEST_F(FftxFixture, ObserveModeRecordsFourStepTrace) {
  PlanFactory factory(grid_, FFTX_MODE_OBSERVE);
  const fftx_plan plan = make_plan(factory, FFTX_ESTIMATE | FFTX_MODE_OBSERVE);
  (void)plan->execute(random_chunk(1));
  ASSERT_EQ(plan->trace().size(), 4u);
  EXPECT_NE(plan->trace()[0].find("dft_r2c"), std::string::npos);
  EXPECT_NE(plan->trace()[1].find("pointwise"), std::string::npos);
  EXPECT_NE(plan->trace()[2].find("adaptive_sampling"), std::string::npos);
  EXPECT_NE(plan->trace()[3].find("copy_offset"), std::string::npos);
}

TEST_F(FftxFixture, HighPerformanceMatchesObserveExactly) {
  // The decoupling claim: one specification, two execution strategies,
  // identical results (both keep exact convolution samples).
  PlanFactory observe(grid_, FFTX_MODE_OBSERVE);
  PlanFactory fast(grid_, FFTX_HIGH_PERFORMANCE);
  const fftx_plan p_obs = make_plan(observe, FFTX_MODE_OBSERVE);
  const fftx_plan p_fast = make_plan(fast, FFTX_HIGH_PERFORMANCE);

  const RealField chunk = random_chunk(2);
  const auto a = p_obs->execute(chunk);
  const auto b = p_fast->execute(chunk);
  const auto sa = a.samples();
  const auto sb = b.samples();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_NEAR(sa[i], sb[i], 1e-10) << i;
  }
}

TEST_F(FftxFixture, HighPerformanceProducesNoTrace) {
  PlanFactory fast(grid_, FFTX_HIGH_PERFORMANCE);
  const fftx_plan plan = make_plan(fast, FFTX_HIGH_PERFORMANCE);
  (void)plan->execute(random_chunk(3));
  EXPECT_TRUE(plan->trace().empty());  // fused kernel: no step boundaries
}

TEST_F(FftxFixture, PlanCanBeExecutedRepeatedly) {
  PlanFactory fast(grid_, FFTX_HIGH_PERFORMANCE);
  const fftx_plan plan = make_plan(fast, FFTX_HIGH_PERFORMANCE);
  const RealField chunk = random_chunk(4);
  const auto first = plan->execute(chunk);
  const auto second = plan->execute(chunk);
  const auto sa = first.samples();
  const auto sb = second.samples();
  for (std::size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i], sb[i]);
}

TEST_F(FftxFixture, ComposeValidatesOrder) {
  PlanFactory factory(grid_, FFTX_MODE_OBSERVE);
  std::vector<fftx_plan_sub> subs;
  subs.push_back(factory.plan_guru_pointwise_c2c(
      kernel_, FFTX_FLAG_SUBPLAN | FFTX_PW_POINTWISE));
  subs.push_back(factory.plan_guru_dft_r2c(dom_, FFTX_FLAG_SUBPLAN));
  subs.push_back(factory.plan_guru_dft_c2r(tree_, FFTX_FLAG_SUBPLAN));
  subs.push_back(factory.plan_guru_copy(FFTX_FLAG_SUBPLAN));
  EXPECT_THROW((void)factory.plan_compose(std::move(subs), FFTX_MODE_OBSERVE),
               InvalidArgument);
}

TEST_F(FftxFixture, ComposeRequiresSubplanFlag) {
  PlanFactory factory(grid_, FFTX_MODE_OBSERVE);
  std::vector<fftx_plan_sub> subs;
  subs.push_back(factory.plan_guru_dft_r2c(dom_, 0));  // missing flag
  subs.push_back(factory.plan_guru_pointwise_c2c(
      kernel_, FFTX_FLAG_SUBPLAN | FFTX_PW_POINTWISE));
  subs.push_back(factory.plan_guru_dft_c2r(tree_, FFTX_FLAG_SUBPLAN));
  subs.push_back(factory.plan_guru_copy(FFTX_FLAG_SUBPLAN));
  EXPECT_THROW((void)factory.plan_compose(std::move(subs), FFTX_MODE_OBSERVE),
               InvalidArgument);
}

TEST_F(FftxFixture, PointwiseRequiresPointwiseFlag) {
  PlanFactory factory(grid_, FFTX_MODE_OBSERVE);
  EXPECT_THROW((void)factory.plan_guru_pointwise_c2c(kernel_, FFTX_FLAG_SUBPLAN),
               InvalidArgument);
}

TEST_F(FftxFixture, MismatchedOctreeRejected) {
  PlanFactory factory(grid_, FFTX_MODE_OBSERVE);
  auto other_tree = std::make_shared<sampling::Octree>(
      grid_, Box3::cube_at({16, 16, 16}, 8),
      sampling::SamplingPolicy::uniform(2));
  std::vector<fftx_plan_sub> subs;
  subs.push_back(factory.plan_guru_dft_r2c(dom_, FFTX_FLAG_SUBPLAN));
  subs.push_back(factory.plan_guru_pointwise_c2c(
      kernel_, FFTX_FLAG_SUBPLAN | FFTX_PW_POINTWISE));
  subs.push_back(factory.plan_guru_dft_c2r(other_tree, FFTX_FLAG_SUBPLAN));
  subs.push_back(factory.plan_guru_copy(FFTX_FLAG_SUBPLAN));
  EXPECT_THROW((void)factory.plan_compose(std::move(subs), FFTX_MODE_OBSERVE),
               InvalidArgument);
}

TEST_F(FftxFixture, DescribeSummarisesThePipeline) {
  PlanFactory factory(grid_, FFTX_MODE_OBSERVE);
  const fftx_plan plan = make_plan(factory, FFTX_MODE_OBSERVE);
  const std::string d = plan->describe();
  EXPECT_NE(d.find("dft_r2c"), std::string::npos);
  EXPECT_NE(d.find("gaussian"), std::string::npos);
  EXPECT_NE(d.find("OBSERVE"), std::string::npos);
}

TEST_F(FftxFixture, WrongChunkShapeRejected) {
  PlanFactory factory(grid_, FFTX_MODE_OBSERVE);
  const fftx_plan plan = make_plan(factory, FFTX_MODE_OBSERVE);
  RealField wrong(Grid3::cube(16));
  EXPECT_THROW((void)plan->execute(wrong), InvalidArgument);
}

TEST(PlanFactoryTest, RejectsModelessFactory) {
  EXPECT_THROW(PlanFactory(Grid3::cube(8), 0), InvalidArgument);
}

}  // namespace
}  // namespace lc::fftx
