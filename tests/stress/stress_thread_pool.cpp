// Stress tests for lc::ThreadPool.
//
// The key scenario is tiny-body parallel_for_blocks churn: with near-empty
// bodies the waiting thread can observe `remaining == 0` and tear down the
// stack-allocated completion state while the last worker is still between
// its decrement and its notify. The original implementation decremented the
// counter outside the completion mutex, so TSAN/ASAN flag a use-after-scope
// on the mutex/condvar under exactly this churn.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace lc {
namespace {

// Iteration knob: default is sized for a sanitizer build in CI; raise via
// LC_STRESS_ITERS for longer soak runs.
std::size_t stress_iters(std::size_t base) {
  if (const char* env = std::getenv("LC_STRESS_ITERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return base;
}

TEST(ThreadPoolStress, TinyBodyParallelForBlocksChurn) {
  // Tiny bodies maximise the window between the last worker's decrement and
  // the caller's return/destruction of the completion state.
  ThreadPool pool(4);
  const std::size_t iters = stress_iters(3000);
  std::atomic<std::size_t> total{0};
  for (std::size_t it = 0; it < iters; ++it) {
    pool.parallel_for_blocks(0, 8, [&](std::size_t lo, std::size_t hi) {
      total += hi - lo;
    });
  }
  EXPECT_EQ(total.load(), iters * 8);
}

TEST(ThreadPoolStress, ParallelForChurnAcrossFreshPools) {
  // Pool construction/teardown interleaved with work: exercises worker
  // startup, the stopping flag, and join ordering.
  const std::size_t iters = stress_iters(200);
  for (std::size_t it = 0; it < iters; ++it) {
    ThreadPool pool(3);
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(0, 64, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 64u * 63u / 2u);
  }
}

TEST(ThreadPoolStress, ConcurrentSubmittersAndWaiters) {
  // Several external threads submitting while others spin on wait_idle:
  // hammers the shared in_flight_ counter and both condition variables.
  ThreadPool pool(4);
  const std::size_t rounds = stress_iters(300);
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (std::size_t r = 0; r < rounds; ++r) {
        pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(done.load(), 4 * rounds);
}

TEST(ThreadPoolStress, ExceptionChurnKeepsPoolReusable) {
  // Error-path churn: throwing bodies interleaved with clean ones. The pool
  // must stay consistent (no lost in_flight_ decrements, no stuck waiters).
  ThreadPool pool(4);
  const std::size_t iters = stress_iters(500);
  for (std::size_t it = 0; it < iters; ++it) {
    if (it % 3 == 0) {
      EXPECT_THROW(pool.parallel_for(0, 16,
                                     [&](std::size_t i) {
                                       if (i == it % 16) {
                                         throw std::runtime_error("churn");
                                       }
                                     }),
                   std::runtime_error);
    } else {
      std::atomic<std::size_t> hits{0};
      pool.parallel_for(0, 16, [&](std::size_t) { hits++; });
      EXPECT_EQ(hits.load(), 16u);
    }
  }
}

TEST(ThreadPoolStress, NestedParallelForFromWorkerIsRejected) {
  // Calling parallel_for_blocks from inside a worker of the same pool would
  // deadlock (the caller blocks holding a worker slot its own sub-tasks
  // need). The pool must reject it loudly instead of hanging.
  ThreadPool pool(2);
  std::promise<bool> rejected;
  auto fut = rejected.get_future();
  pool.submit([&] {
    try {
      pool.parallel_for_blocks(0, 32, [](std::size_t, std::size_t) {});
      rejected.set_value(false);
    } catch (const InternalError&) {
      rejected.set_value(true);
    }
  });
  EXPECT_TRUE(fut.get());
  pool.wait_idle();
}

TEST(ThreadPoolStress, NestedCallIntoDifferentPoolIsAllowed) {
  // A worker of pool A may drive pool B; only same-pool nesting deadlocks.
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<std::size_t> total{0};
  const std::size_t iters = stress_iters(100);
  for (std::size_t it = 0; it < iters; ++it) {
    outer.parallel_for_blocks(0, 2, [&](std::size_t, std::size_t) {
      inner.parallel_for(0, 16, [&](std::size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  EXPECT_EQ(total.load(), iters * 2 * 16);
}

}  // namespace
}  // namespace lc
