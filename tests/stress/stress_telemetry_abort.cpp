// Abort-path telemetry stress (DESIGN.md §18): a rank that dies mid-run
// must still leave a well-formed PlanOutcome behind — aborted=true, every
// JSONL line parseable (no torn writes), the trace still renderable — and
// concurrent emitters must interleave only at line boundaries. Run under
// -DLC_SANITIZE=thread these tests also pin down the sink's locking.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "comm/sim_cluster.hpp"
#include "core/pipeline.hpp"
#include "green/gaussian.hpp"
#include "green/kernel.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace lc::core {
namespace {

// Delegating kernel that starts throwing after `fuse` spectrum evaluations
// (across all ranks): the synthetic hardware fault that aborts a run at an
// arbitrary point inside the slab pipeline.
class ThrowingSpectrum final : public green::KernelSpectrum {
 public:
  ThrowingSpectrum(std::shared_ptr<const green::KernelSpectrum> inner,
                   std::int64_t fuse)
      : inner_(std::move(inner)), fuse_(fuse) {}

  [[nodiscard]] green::cplx eval(const Index3& bin,
                                 const Grid3& g) const override {
    burn(1);
    return inner_->eval(bin, g);
  }
  void eval_z_run(const Index3& start, const Grid3& g,
                  std::span<green::cplx> out) const override {
    burn(static_cast<std::int64_t>(out.size()));
    inner_->eval_z_run(start, g, out);
  }
  [[nodiscard]] std::string name() const override { return "throwing"; }

 private:
  void burn(std::int64_t evals) const {
    if (calls_.fetch_add(evals, std::memory_order_relaxed) >= fuse_) {
      throw std::runtime_error("synthetic kernel fault");
    }
  }

  std::shared_ptr<const green::KernelSpectrum> inner_;
  std::int64_t fuse_;
  mutable std::atomic<std::int64_t> calls_{0};
};

// Point the global sink at a fresh file for the duration of one test.
class ScopedTelemetryPath {
 public:
  explicit ScopedTelemetryPath(const std::string& path)
      : previous_(obs::TelemetrySink::global().path()) {
    obs::TelemetrySink::global().set_path(path);
    std::remove(path.c_str());
  }
  ~ScopedTelemetryPath() { obs::TelemetrySink::global().set_path(previous_); }

 private:
  std::string previous_;
};

std::size_t raw_line_count(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return 0;
  std::size_t lines = 0;
  int c = 0, last = '\n';
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') ++lines;
    last = c;
  }
  std::fclose(f);
  if (last != '\n') ++lines;  // a torn tail still counts as a line
  return lines;
}

RealField random_field(const Grid3& g, std::uint64_t seed) {
  RealField f(g);
  SplitMix64 rng(seed);
  for (auto& v : f.span()) v = rng.uniform(-1.0, 1.0);
  return f;
}

LowCommParams stress_params() {
  LowCommParams p;
  p.subdomain = 16;
  p.far_rate = 2;
  p.uniform_rate = 2;
  p.batch = 256;
  return p;
}

TEST(TelemetryAbortStress, AbortedRankStillEmitsWellFormedRecord) {
  const std::string path =
      testing::TempDir() + "lc_stress_telemetry_abort.jsonl";
  ScopedTelemetryPath scoped(path);

  const Grid3 g = Grid3::cube(32);
  const int ranks = 4;
  const auto gauss = std::make_shared<green::GaussianSpectrum>(g, 2.0);
  const RealField input = random_field(g, 99);

  // Trace through the abort too: the exported JSON must stay well-formed
  // even when rank threads unwound mid-span.
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable();

  // Let the run get past setup, then blow up inside the pipeline.
  const auto kernel = std::make_shared<ThrowingSpectrum>(gauss, 20000);
  comm::SimCluster cluster(ranks);
  EXPECT_THROW((void)distributed_lowcomm_convolve(cluster, input, g, kernel,
                                                  stress_params()),
               std::runtime_error);
  tracer.disable();

  const auto records = obs::read_plan_outcomes(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(raw_line_count(path), records.size());  // no torn lines
  const obs::PlanOutcome& rec = records.back();
  EXPECT_TRUE(rec.aborted);
  EXPECT_EQ(rec.source, "pipeline");
  EXPECT_EQ(rec.ranks, ranks);
  EXPECT_EQ(rec.n, 32);
  // Predictions were frozen before the run and survive the unwind.
  EXPECT_GT(rec.pred_bytes, 0);
  EXPECT_GT(rec.pred_point_passes, 0.0);

  const std::string json = tracer.render_chrome_trace();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");

  // The same cluster must come back clean: a full re-run with the healthy
  // kernel succeeds and appends a second, non-aborted record.
  (void)distributed_lowcomm_convolve(cluster, input, g, gauss,
                                     stress_params());
  const auto after = obs::read_plan_outcomes(path);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(raw_line_count(path), after.size());
  EXPECT_FALSE(after.back().aborted);
  EXPECT_GT(after.back().meas_bytes, 0);
  EXPECT_EQ(after.back().pred_bytes, after.back().meas_bytes);
}

TEST(TelemetryAbortStress, ConcurrentEmittersNeverTearLines) {
  const std::string path =
      testing::TempDir() + "lc_stress_telemetry_concurrent.jsonl";
  ScopedTelemetryPath scoped(path);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::PlanOutcome rec;
        rec.source = (t % 2 == 0) ? "pipeline" : "service";
        rec.aborted = (i % 3 == 0);
        rec.n = 64 + t;
        rec.ranks = 4;
        rec.k = 16;
        rec.pred_point_passes = 1e9 + i;
        rec.meas_compute_s = 0.5 + 0.001 * i;
        obs::record_plan_outcome(rec);
      }
    });
  }
  for (auto& th : pool) th.join();

  // Every line parses and none were lost or interleaved mid-record.
  const auto records = obs::read_plan_outcomes(path);
  EXPECT_EQ(records.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(raw_line_count(path), records.size());
  for (const auto& rec : records) {
    EXPECT_TRUE(rec.source == "pipeline" || rec.source == "service");
    EXPECT_EQ(rec.ranks, 4);
  }
}

}  // namespace
}  // namespace lc::core
