// Stress test for the lazily built octree cache in LowCommConvolution:
// `convolve` / `octree_for` driven concurrently from many threads must
// produce identical results and exactly one octree per sub-domain slot
// (octrees_ under octree_mutex_).
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "green/gaussian.hpp"

namespace lc::core {
namespace {

std::size_t stress_iters(std::size_t base) {
  if (const char* env = std::getenv("LC_STRESS_ITERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return base;
}

RealField random_field(const Grid3& g, std::uint64_t seed) {
  RealField f(g);
  SplitMix64 rng(seed);
  for (auto& v : f.span()) v = rng.uniform(-1.0, 1.0);
  return f;
}

TEST(PipelineStress, ConcurrentConvolveSharesOctreeCacheSafely) {
  const Grid3 g = Grid3::cube(16);
  auto kernel = std::make_shared<green::GaussianSpectrum>(g, 1.2);
  LowCommParams params;
  params.subdomain = 8;
  params.far_rate = 4;
  const LowCommConvolution engine(g, kernel, params);
  const RealField input = random_field(g, 77);

  // Reference result computed single-threaded.
  const LowCommResult want = engine.convolve(input);

  const std::size_t threads = 8;
  const std::size_t reps = stress_iters(4);
  std::vector<std::thread> pool;
  std::vector<int> ok(threads, 0);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t r = 0; r < reps; ++r) {
        const LowCommResult got = engine.convolve(input);
        if (got.compressed_samples != want.compressed_samples) return;
        const auto a = got.output.span();
        const auto b = want.output.span();
        for (std::size_t i = 0; i < a.size(); ++i) {
          if (a[i] != b[i]) return;
        }
      }
      ok[t] = 1;
    });
  }
  for (auto& th : pool) th.join();
  for (std::size_t t = 0; t < threads; ++t) {
    EXPECT_EQ(ok[t], 1) << "thread " << t << " saw a divergent result";
  }
}

TEST(PipelineStress, OctreeForReturnsOneTreePerSlotUnderContention) {
  const Grid3 g = Grid3::cube(16);
  auto kernel = std::make_shared<green::GaussianSpectrum>(g, 1.2);
  LowCommParams params;
  params.subdomain = 8;
  const LowCommConvolution engine(g, kernel, params);
  const std::size_t count = engine.decomposition().count();

  const std::size_t threads = 8;
  std::vector<std::thread> pool;
  std::vector<std::vector<const sampling::Octree*>> seen(
      threads, std::vector<const sampling::Octree*>(count, nullptr));
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      // Walk the slots in a thread-dependent order to vary who builds what.
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t d = (i + t) % count;
        seen[t][d] = engine.octree_for(d).get();
      }
    });
  }
  for (auto& th : pool) th.join();
  // The lazily built tree must be constructed exactly once per slot: every
  // thread observed the same pointer.
  for (std::size_t d = 0; d < count; ++d) {
    std::set<const sampling::Octree*> distinct;
    for (std::size_t t = 0; t < threads; ++t) distinct.insert(seen[t][d]);
    EXPECT_EQ(distinct.size(), 1u) << "slot " << d;
  }
}

TEST(PipelineStress, ConcurrentConvolveOneAcrossDisjointSubdomains) {
  const Grid3 g = Grid3::cube(16);
  auto kernel = std::make_shared<green::GaussianSpectrum>(g, 1.2);
  LowCommParams params;
  params.subdomain = 8;
  const LowCommConvolution engine(g, kernel, params);
  const RealField input = random_field(g, 99);
  const std::size_t count = engine.decomposition().count();

  const std::size_t reps = stress_iters(6);
  for (std::size_t r = 0; r < reps; ++r) {
    std::vector<std::thread> pool;
    std::vector<std::size_t> samples(count, 0);
    for (std::size_t d = 0; d < count; ++d) {
      pool.emplace_back([&, d] {
        samples[d] = engine.convolve_one(input, d).samples().size();
      });
    }
    for (auto& th : pool) th.join();
    for (std::size_t d = 0; d < count; ++d) EXPECT_GT(samples[d], 0u);
  }
}

}  // namespace
}  // namespace lc::core
