// Stress: hammer the ConvolutionService with concurrent mixed-size requests
// under deliberately tiny queue / cache budgets, so admission rejection,
// LRU eviction churn, arena recycling, and wave batching all race each
// other. Run under -DLC_SANITIZE=thread in CI; any lock ordering or shared
// mutable state bug in the runtime shows up here first.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "green/gaussian.hpp"
#include "runtime/service.hpp"

namespace lc::runtime {
namespace {

RealField varied_input(const Grid3& g, int salt) {
  RealField f(g, 0.0);
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = std::sin(0.31 * static_cast<double>(i) + salt) +
           0.05 * static_cast<double>((i + static_cast<std::size_t>(salt)) % 13);
  }
  return f;
}

ConvolutionRequest mixed_request(int salt) {
  // Two problem shapes and two kernels interleave, so engines, plans,
  // octrees, and results all contend for the (tiny) cache budget.
  const bool big = (salt % 2) == 0;
  const Grid3 g = Grid3::cube(big ? 32 : 16);
  ConvolutionRequest req;
  req.input = varied_input(g, salt % 5);
  req.kernel =
      std::make_shared<green::GaussianSpectrum>(g, (salt % 3) ? 1.5 : 2.0);
  req.params.subdomain = big ? 16 : 8;
  req.params.far_rate = 4;
  req.params.dense_halo = 2;
  req.params.batch = 256;
  if (salt % 7 == 0) {
    req.subdomain = static_cast<std::size_t>(salt % 8);
  }
  return req;
}

TEST(StressService, ConcurrentMixedRequestsUnderTinyBudgets) {
  ServiceConfig cfg;
  cfg.queue_capacity = 8;          // force QueueFull under pressure
  cfg.cache_budget_bytes = 1 << 20;  // force eviction churn
  cfg.arena_retain_bytes = 1 << 20;
  cfg.max_wave = 3;
  ConvolutionService service(cfg);

  constexpr int kThreads = 6;
  constexpr int kPerThread = 12;
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::atomic<int> completed{0};

  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int salt = t * kPerThread + i;
        try {
          auto future = service.submit(mixed_request(salt));
          accepted.fetch_add(1);
          const ConvolutionResponse response = future.get();
          completed.fetch_add(1);
          EXPECT_FALSE(response.result.output.empty());
          EXPECT_GT(response.result.compressed_samples, 0u);
        } catch (const QueueFull&) {
          rejected.fetch_add(1);
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  service.wait_idle();

  // Every accepted request resolved; nothing hung or vanished.
  EXPECT_EQ(completed.load(), accepted.load());
  EXPECT_EQ(accepted.load() + rejected.load(), kThreads * kPerThread);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::size_t>(accepted.load()));
  EXPECT_EQ(stats.completed + stats.failed,
            static_cast<std::size_t>(accepted.load()));
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected_queue_full,
            static_cast<std::size_t>(rejected.load()));
  EXPECT_EQ(stats.arena.outstanding_bytes, 0u);
  // The budget must have held: resident cache bytes never exceed it.
  EXPECT_LE(stats.cache.bytes, cfg.cache_budget_bytes);
}

TEST(StressService, RepeatedIdenticalRequestsStayConsistent) {
  // A hot result-cache entry read by many threads while other keys churn
  // the LRU around it: hits must return the identical field every time.
  ServiceConfig cfg;
  cfg.cache_budget_bytes = 8 << 20;
  ConvolutionService service(cfg);

  const Grid3 g = Grid3::cube(16);
  auto make = [&] {
    ConvolutionRequest req;
    req.input = varied_input(g, 1);
    req.kernel = std::make_shared<green::GaussianSpectrum>(g, 1.5);
    req.params.subdomain = 8;
    req.params.far_rate = 4;
    req.params.batch = 256;
    return req;
  };
  const ConvolutionResponse reference = service.run(make());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const ConvolutionResponse r = service.run(make());
        if (!(r.result.output == reference.result.output)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(service.stats().result_hits, 0u);
}

TEST(StressService, PauseResumeChurnWhileClientsSubmit) {
  // Flip dispatch on and off while clients submit; no request may be lost
  // and the service must drain completely afterwards.
  ServiceConfig cfg;
  cfg.queue_capacity = 64;
  ConvolutionService service(cfg);

  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    while (!stop.load()) {
      service.pause();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      service.resume();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    service.resume();
  });

  const Grid3 g = Grid3::cube(16);
  std::vector<std::future<ConvolutionResponse>> futures;
  for (int i = 0; i < 24; ++i) {
    ConvolutionRequest req;
    req.input = varied_input(g, i % 3);
    req.kernel = std::make_shared<green::GaussianSpectrum>(g, 1.5);
    req.params.subdomain = 8;
    req.params.far_rate = 4;
    req.params.batch = 256;
    futures.push_back(service.submit(std::move(req)));
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.get().result.output.grid(), g);
  }
  stop.store(true);
  flipper.join();
  service.wait_idle();
  EXPECT_EQ(service.stats().completed, 24u);
}

}  // namespace
}  // namespace lc::runtime
