// Stress tests for comm::SimCluster: many ranks, overlapping collectives,
// exact stats accounting under concurrency, and the error path (a throwing
// rank must release peers stuck in barriers or blocking receives — for any
// number of subsequent barriers, not just the first one).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "comm/hierarchical.hpp"
#include "comm/sim_cluster.hpp"
#include "comm/topology.hpp"

namespace lc::comm {
namespace {

std::size_t stress_iters(std::size_t base) {
  if (const char* env = std::getenv("LC_STRESS_ITERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return base;
}

TEST(SimClusterStress, OverlappingCollectivesManyRanks) {
  // Every rank runs a mixed collective schedule many times over; payload
  // values encode (iteration, src, dst) so any cross-iteration bleed or
  // mis-delivery is caught immediately.
  const int p = 8;
  SimCluster cluster(p);
  const std::size_t iters = stress_iters(60);
  cluster.run([&](Rank& rank) {
    for (std::size_t it = 0; it < iters; ++it) {
      std::vector<std::vector<double>> outgoing(static_cast<std::size_t>(p));
      for (int d = 0; d < p; ++d) {
        outgoing[static_cast<std::size_t>(d)] = {
            static_cast<double>(it * 10000 + rank.id() * 100 + d)};
      }
      const auto incoming = rank.all_to_all(outgoing);
      for (int s = 0; s < p; ++s) {
        ASSERT_EQ(incoming[static_cast<std::size_t>(s)].at(0),
                  static_cast<double>(it * 10000 + s * 100 + rank.id()));
      }
      const double sum = rank.all_reduce_sum(static_cast<double>(rank.id()));
      ASSERT_DOUBLE_EQ(sum, static_cast<double>(p * (p - 1) / 2));
      if (it % 4 == 0) {
        const auto all =
            rank.all_gather(std::vector<double>{static_cast<double>(rank.id())});
        for (int s = 0; s < p; ++s) {
          ASSERT_EQ(all[static_cast<std::size_t>(s)].at(0),
                    static_cast<double>(s));
        }
      }
      rank.barrier();
    }
  });
}

TEST(SimClusterStress, StatsStayExactUnderConcurrentSends) {
  // All ranks blast point-to-point messages at once; the byte/message
  // counters must come out exact (a non-atomic counter under-counts here
  // and TSAN flags the increments).
  const int p = 8;
  const std::size_t per_pair = stress_iters(50);
  const std::size_t payload = 16;
  SimCluster cluster(p);
  cluster.run([&](Rank& rank) {
    const std::vector<double> msg(payload, static_cast<double>(rank.id()));
    for (std::size_t m = 0; m < per_pair; ++m) {
      for (int d = 0; d < p; ++d) {
        if (d != rank.id()) rank.send(d, msg);
      }
    }
    for (std::size_t m = 0; m < per_pair; ++m) {
      for (int s = 0; s < p; ++s) {
        if (s != rank.id()) {
          const auto got = rank.recv(s);
          ASSERT_EQ(got.size(), payload);
          ASSERT_EQ(got.front(), static_cast<double>(s));
        }
      }
    }
  });
  const std::size_t messages = static_cast<std::size_t>(p) *
                               static_cast<std::size_t>(p - 1) * per_pair;
  EXPECT_EQ(cluster.stats().messages.load(), messages);
  EXPECT_EQ(cluster.stats().bytes_sent.load(),
            messages * payload * sizeof(double));
}

TEST(SimClusterStress, RepeatedRunsReuseClusterCleanly) {
  // run() reuse churn: the barrier generation, reduction scratch, and
  // channels must all be reusable across many back-to-back SPMD bodies.
  const int p = 6;
  SimCluster cluster(p);
  const std::size_t runs = stress_iters(80);
  for (std::size_t r = 0; r < runs; ++r) {
    std::atomic<int> checks{0};
    cluster.run([&](Rank& rank) {
      const double sum =
          rank.all_reduce_sum(static_cast<double>(rank.id() + 1));
      ASSERT_DOUBLE_EQ(sum, static_cast<double>(p * (p + 1) / 2));
      checks++;
    });
    ASSERT_EQ(checks.load(), p);
  }
}

TEST(SimClusterStress, ThrowingRankReleasesRepeatedBarriers) {
  // Rank 0 throws while the peers still have MANY barriers ahead of them.
  // The original error path only advanced one barrier generation, so peers
  // deadlocked on their second barrier; the abort protocol must unwind them
  // all, and the run must rethrow the ORIGINAL error.
  const int p = 8;
  SimCluster cluster(p);
  const std::size_t iters = stress_iters(30);
  for (std::size_t it = 0; it < iters; ++it) {
    try {
      cluster.run([&](Rank& rank) {
        if (rank.id() == 0) throw std::runtime_error("original failure");
        for (int b = 0; b < 20; ++b) rank.barrier();
      });
      FAIL() << "expected the rank error to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "original failure");
    }
    // The cluster must stay fully usable after every failed run.
    std::atomic<int> survivors{0};
    cluster.run([&](Rank& rank) {
      rank.barrier();
      survivors++;
    });
    ASSERT_EQ(survivors.load(), p);
  }
}

TEST(SimClusterStress, ThrowingRankReleasesCollectivesAndRecv) {
  // Peers blocked inside collectives (barrier-based) and raw recv() on the
  // throwing rank must all unwind instead of hanging.
  const int p = 6;
  SimCluster cluster(p);
  const std::size_t iters = stress_iters(30);
  for (std::size_t it = 0; it < iters; ++it) {
    EXPECT_THROW(
        cluster.run([&](Rank& rank) {
          if (rank.id() == 0) throw std::runtime_error("sender died");
          if (rank.id() == 1) {
            (void)rank.recv(0);  // never arrives
          } else {
            (void)rank.all_reduce_sum(1.0);  // rank 0 never joins
          }
        }),
        std::runtime_error);
    cluster.run([](Rank& rank) { rank.barrier(); });
  }
}

TEST(SimClusterStress, HierarchicalExchangeAbortUnwindsAllRoles) {
  // The composed node-multicast exchange blocks in recv() at three
  // different points depending on role (leader gathering, leader awaiting
  // a remote leader, non-leader awaiting forwards). Whichever role the
  // throwing rank leaves stranded must unwind with the ORIGINAL error, and
  // the cluster must stay reusable — the composed collectives inherit the
  // abort protocol from Rank::recv/barrier with no code of their own.
  const Topology topo = Topology::grouped(6, 3);
  SimCluster cluster(topo);
  const std::size_t iters = stress_iters(30);
  const auto len = [](int, int) { return std::size_t{4}; };
  for (std::size_t it = 0; it < iters; ++it) {
    // Rotate the dying rank across roles: leader of node 0, a non-leader,
    // leader of node 1.
    const int dying = (it % 3 == 0) ? 0 : (it % 3 == 1) ? 2 : 3;
    try {
      cluster.run([&](Rank& rank) {
        if (rank.id() == dying) throw std::runtime_error("exchange peer died");
        std::vector<std::vector<double>> outgoing(
            static_cast<std::size_t>(topo.nodes()),
            std::vector<double>(4, static_cast<double>(rank.id())));
        (void)node_multicast_exchange(rank, outgoing, len);
      });
      FAIL() << "expected the rank error to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "exchange peer died");
    }
    // Fully usable afterwards, including another hierarchical exchange.
    cluster.run([&](Rank& rank) {
      std::vector<std::vector<double>> outgoing(
          static_cast<std::size_t>(topo.nodes()),
          std::vector<double>(4, 1.0));
      const auto incoming = node_multicast_exchange(rank, outgoing, len);
      ASSERT_EQ(incoming.size(), static_cast<std::size_t>(rank.size()));
    });
  }
}

TEST(SimClusterStress, HierarchicalAllToAllSurvivesRepeatedRuns) {
  // Back-to-back composed all-to-alls with per-iteration payloads: any
  // channel bleed between iterations (stale bundle left behind by the
  // leader forwarding loop) shows up as a wrong value immediately.
  const Topology topo = Topology::grouped(8, 4);
  const int p = topo.ranks();
  SimCluster cluster(topo);
  const std::size_t iters = stress_iters(40);
  const auto len = [p](int src, int dst) {
    return static_cast<std::size_t>((src + dst) % 3 + 1);
  };
  cluster.run([&](Rank& rank) {
    for (std::size_t it = 0; it < iters; ++it) {
      std::vector<std::vector<double>> outgoing(static_cast<std::size_t>(p));
      for (int d = 0; d < p; ++d) {
        outgoing[static_cast<std::size_t>(d)].assign(
            len(rank.id(), d),
            static_cast<double>(it * 10000 + rank.id() * 100 + d));
      }
      const auto incoming = hierarchical_all_to_all(rank, outgoing, len);
      for (int s = 0; s < p; ++s) {
        const auto& b = incoming[static_cast<std::size_t>(s)];
        ASSERT_EQ(b.size(), len(s, rank.id()));
        for (const double v : b) {
          ASSERT_EQ(v,
                    static_cast<double>(it * 10000 + s * 100 + rank.id()));
        }
      }
    }
  });
}

TEST(SimClusterStress, ReductionValuesNeverTearAcrossIterations) {
  // Back-to-back reductions with distinct per-iteration contributions: any
  // unsynchronised read of the shared result slot shows up as a wrong sum.
  const int p = 8;
  SimCluster cluster(p);
  const std::size_t iters = stress_iters(200);
  cluster.run([&](Rank& rank) {
    for (std::size_t it = 0; it < iters; ++it) {
      const double mine = static_cast<double>(it * p + rank.id());
      const double want =
          static_cast<double>(it * p * p + p * (p - 1) / 2);
      ASSERT_DOUBLE_EQ(rank.all_reduce_sum(mine), want);
    }
  });
}

}  // namespace
}  // namespace lc::comm
