// Tests for the cost model (Eqns 1, 2, 6) and the simulated cluster.
#include <gtest/gtest.h>

#include <numeric>

#include "comm/cost_model.hpp"
#include "comm/sim_cluster.hpp"

namespace lc::comm {
namespace {

TEST(CostModel, AlphaBetaMessageTime) {
  const AlphaBetaModel m{1e-5, 1e-9};
  EXPECT_DOUBLE_EQ(m.message_time(0), 1e-5);
  EXPECT_DOUBLE_EQ(m.message_time(1000), 1e-5 + 1e-6);
  EXPECT_DOUBLE_EQ(m.rounds_time(3, 1000), 3.0 * (1e-5 + 1e-6));
}

TEST(CostModel, Eqn1TraditionalFftTime) {
  // T = 2 N³ / (P β): doubling P halves it; doubling N gives 8x.
  const double t1 = traditional_fft_comm_time(256, 4, 1e9);
  const double t2 = traditional_fft_comm_time(256, 8, 1e9);
  const double t3 = traditional_fft_comm_time(512, 4, 1e9);
  EXPECT_NEAR(t1 / t2, 2.0, 1e-12);
  EXPECT_NEAR(t3 / t1, 8.0, 1e-12);
  EXPECT_NEAR(t1, 2.0 * 256.0 * 256.0 * 256.0 / (4.0 * 1e9), 1e-15);
}

TEST(CostModel, Eqn6ExchangePoints) {
  // k³ + (N³-k³)/r³ exactly.
  EXPECT_DOUBLE_EQ(lowcomm_exchange_points(8, 8, 4.0), 512.0);  // N == k
  const double pts = lowcomm_exchange_points(64, 16, 2.0);
  EXPECT_DOUBLE_EQ(pts, 4096.0 + (262144.0 - 4096.0) / 8.0);
}

TEST(CostModel, LowCommBeatsTraditional) {
  // The paper's headline inequality T_ours < T_FFT for realistic shapes.
  for (const i64 n : {256, 512, 1024, 2048}) {
    const double ours = lowcomm_comm_time(n, 32, 8.0, 16, 1e9);
    const double fft = traditional_fft_comm_time(n, 16, 1e9);
    EXPECT_LT(ours, fft) << n;
  }
}

TEST(CostModel, CommFractionReproducesGpuShiftShape) {
  // §2.1: on CPUs ~49% of time is communication; accelerating compute 43×
  // (GPUs) pushes the fraction toward 97% with communication unchanged.
  const double comm_time = traditional_fft_comm_time(1024, 4, 2e9);
  const double points = 1024.0 * 1024.0 * 1024.0;
  const double cpu_rate = 1e9;
  const double cpu_frac = comm_fraction(comm_time, points, cpu_rate);
  const double gpu_frac = comm_fraction(comm_time, points, 43.0 * cpu_rate);
  EXPECT_GT(gpu_frac, cpu_frac);
  EXPECT_GT(gpu_frac, 0.9);
  EXPECT_LT(cpu_frac, 0.6);
}

TEST(CostModel, RejectsBadArguments) {
  EXPECT_THROW((void)traditional_fft_comm_time(0, 4, 1e9), InvalidArgument);
  EXPECT_THROW((void)traditional_fft_comm_time(64, 4, 0.0), InvalidArgument);
  EXPECT_THROW((void)lowcomm_exchange_points(16, 32, 2.0), InvalidArgument);
  EXPECT_THROW((void)lowcomm_exchange_points(64, 16, 0.5), InvalidArgument);
  EXPECT_THROW((void)comm_fraction(1.0, 1.0, 0.0), InvalidArgument);
}

TEST(SimCluster, PointToPointDelivery) {
  SimCluster cluster(2);
  cluster.run([](Rank& rank) {
    if (rank.id() == 0) {
      const std::vector<double> msg{1.0, 2.0, 3.0};
      rank.send(1, msg);
    } else {
      const auto got = rank.recv(0);
      ASSERT_EQ(got.size(), 3u);
      EXPECT_EQ(got[1], 2.0);
    }
  });
  EXPECT_EQ(cluster.stats().bytes_sent.load(), 3 * sizeof(double));
  EXPECT_EQ(cluster.stats().messages.load(), 1u);
}

TEST(SimCluster, ChannelsAreFifoPerPair) {
  SimCluster cluster(2);
  cluster.run([](Rank& rank) {
    if (rank.id() == 0) {
      for (double v = 0; v < 10; ++v) {
        rank.send(1, std::vector<double>{v});
      }
    } else {
      for (double v = 0; v < 10; ++v) {
        EXPECT_EQ(rank.recv(0).at(0), v);
      }
    }
  });
}

TEST(SimCluster, AllToAllPersonalised) {
  const int p = 4;
  SimCluster cluster(p);
  cluster.run([p](Rank& rank) {
    std::vector<std::vector<double>> outgoing(p);
    for (int d = 0; d < p; ++d) {
      outgoing[static_cast<std::size_t>(d)] = {
          static_cast<double>(rank.id() * 100 + d)};
    }
    const auto incoming = rank.all_to_all(outgoing);
    for (int s = 0; s < p; ++s) {
      EXPECT_EQ(incoming[static_cast<std::size_t>(s)].at(0),
                static_cast<double>(s * 100 + rank.id()));
    }
  });
  EXPECT_EQ(cluster.stats().collective_rounds.load(), 1u);
  // Only off-diagonal buffers cross the network: p(p-1) messages.
  EXPECT_EQ(cluster.stats().messages.load(),
            static_cast<std::size_t>(p * (p - 1)));
}

TEST(SimCluster, AllToAllByteAccountingIsExact) {
  // Five ranks exchange payloads of known, per-pair sizes; the concurrent
  // stats counters must come out EXACT, not merely close (under-counting
  // was the symptom of the original unsynchronised increments).
  const int p = 5;
  SimCluster cluster(p);
  cluster.run([p](Rank& rank) {
    std::vector<std::vector<double>> outgoing(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      outgoing[static_cast<std::size_t>(d)] =
          std::vector<double>(static_cast<std::size_t>(rank.id() * p + d + 1));
    }
    (void)rank.all_to_all(outgoing);
  });
  std::size_t want_doubles = 0;
  for (int src = 0; src < p; ++src) {
    for (int dst = 0; dst < p; ++dst) {
      if (src != dst) want_doubles += static_cast<std::size_t>(src * p + dst + 1);
    }
  }
  EXPECT_EQ(cluster.stats().bytes_sent.load(), want_doubles * sizeof(double));
  EXPECT_EQ(cluster.stats().messages.load(),
            static_cast<std::size_t>(p * (p - 1)));
  EXPECT_EQ(cluster.stats().collective_rounds.load(), 1u);
}

TEST(SimCluster, AllGatherDeliversEverything) {
  const int p = 3;
  SimCluster cluster(p);
  cluster.run([p](Rank& rank) {
    std::vector<double> mine{static_cast<double>(rank.id()),
                             static_cast<double>(rank.id() * 2)};
    const auto all = rank.all_gather(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) {
      EXPECT_EQ(all[static_cast<std::size_t>(s)].at(0),
                static_cast<double>(s));
    }
  });
}

TEST(SimCluster, AllReduceSum) {
  const int p = 5;
  SimCluster cluster(p);
  std::atomic<int> checks{0};
  cluster.run([&](Rank& rank) {
    const double total = rank.all_reduce_sum(static_cast<double>(rank.id()));
    EXPECT_DOUBLE_EQ(total, 10.0);  // 0+1+2+3+4
    checks++;
  });
  EXPECT_EQ(checks.load(), p);
}

TEST(SimCluster, ConsecutiveReductionsDoNotInterfere) {
  SimCluster cluster(3);
  cluster.run([](Rank& rank) {
    EXPECT_DOUBLE_EQ(rank.all_reduce_sum(1.0), 3.0);
    EXPECT_DOUBLE_EQ(rank.all_reduce_sum(2.0), 6.0);
    EXPECT_DOUBLE_EQ(rank.all_reduce_sum(static_cast<double>(rank.id())), 3.0);
  });
}

TEST(SimCluster, BarrierSynchronises) {
  const int p = 4;
  SimCluster cluster(p);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  cluster.run([&](Rank& rank) {
    before++;
    rank.barrier();
    if (before.load() != p) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(SimCluster, StatsResetAndAccumulate) {
  SimCluster cluster(2);
  cluster.run([](Rank& rank) {
    if (rank.id() == 0) rank.send(1, std::vector<double>{1.0});
    if (rank.id() == 1) (void)rank.recv(0);
  });
  EXPECT_GT(cluster.stats().bytes_sent.load(), 0u);
  cluster.reset_stats();
  EXPECT_EQ(cluster.stats().bytes_sent.load(), 0u);
}

TEST(SimCluster, ExceptionInRankBodyPropagates) {
  SimCluster cluster(2);
  EXPECT_THROW(cluster.run([](Rank& rank) {
                 if (rank.id() == 1) throw std::runtime_error("rank boom");
                 rank.barrier();
               }),
               std::runtime_error);
  // The cluster stays usable after a failed run.
  cluster.run([](Rank& rank) { rank.barrier(); });
}

TEST(SimCluster, ModeledTimePricesEveryMessage) {
  const AlphaBetaModel link{1e-5, 1e-9};
  SimCluster cluster(2, link);
  cluster.run([](Rank& rank) {
    if (rank.id() == 0) rank.send(1, std::vector<double>(1000));
    if (rank.id() == 1) (void)rank.recv(0);
  });
  // One 8000-byte message: α + β·8000.
  EXPECT_NEAR(cluster.stats().modeled_seconds(),
              link.message_time(8000), 1e-9);
  cluster.reset_stats();
  EXPECT_EQ(cluster.stats().modeled_nanos.load(), 0);
}

TEST(SimCluster, ModeledTimeAccumulatesAcrossCollectives) {
  SimCluster cluster(4);
  cluster.run([](Rank& rank) {
    std::vector<std::vector<double>> out(4, std::vector<double>(10));
    (void)rank.all_to_all(out);
  });
  EXPECT_GT(cluster.stats().modeled_seconds(), 0.0);
}

TEST(SimCluster, RejectsBadRankArguments) {
  SimCluster cluster(2);
  EXPECT_THROW(cluster.run([](Rank& rank) {
                 rank.send(7, std::vector<double>{1.0});
               }),
               InvalidArgument);
  EXPECT_THROW(SimCluster(0), InvalidArgument);
}

}  // namespace
}  // namespace lc::comm
