// Tests for the cost model (Eqns 1, 2, 6) and the simulated cluster.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <numeric>
#include <thread>

#include "comm/cost_model.hpp"
#include "comm/sim_cluster.hpp"
#include "comm/topology.hpp"

namespace lc::comm {
namespace {

TEST(CostModel, AlphaBetaMessageTime) {
  const AlphaBetaModel m{1e-5, 1e-9};
  EXPECT_DOUBLE_EQ(m.message_time(0), 1e-5);
  EXPECT_DOUBLE_EQ(m.message_time(1000), 1e-5 + 1e-6);
  EXPECT_DOUBLE_EQ(m.rounds_time(3, 1000), 3.0 * (1e-5 + 1e-6));
}

TEST(CostModel, Eqn1TraditionalFftTime) {
  // T = 2 N³ / (P β): doubling P halves it; doubling N gives 8x.
  const double t1 = traditional_fft_comm_time(256, 4, 1e9);
  const double t2 = traditional_fft_comm_time(256, 8, 1e9);
  const double t3 = traditional_fft_comm_time(512, 4, 1e9);
  EXPECT_NEAR(t1 / t2, 2.0, 1e-12);
  EXPECT_NEAR(t3 / t1, 8.0, 1e-12);
  EXPECT_NEAR(t1, 2.0 * 256.0 * 256.0 * 256.0 / (4.0 * 1e9), 1e-15);
}

TEST(CostModel, Eqn6ExchangePoints) {
  // k³ + (N³-k³)/r³ exactly.
  EXPECT_DOUBLE_EQ(lowcomm_exchange_points(8, 8, 4.0), 512.0);  // N == k
  const double pts = lowcomm_exchange_points(64, 16, 2.0);
  EXPECT_DOUBLE_EQ(pts, 4096.0 + (262144.0 - 4096.0) / 8.0);
}

TEST(CostModel, LowCommBeatsTraditional) {
  // The paper's headline inequality T_ours < T_FFT for realistic shapes.
  for (const i64 n : {256, 512, 1024, 2048}) {
    const double ours = lowcomm_comm_time(n, 32, 8.0, 16, 1e9);
    const double fft = traditional_fft_comm_time(n, 16, 1e9);
    EXPECT_LT(ours, fft) << n;
  }
}

TEST(CostModel, CommFractionReproducesGpuShiftShape) {
  // §2.1: on CPUs ~49% of time is communication; accelerating compute 43×
  // (GPUs) pushes the fraction toward 97% with communication unchanged.
  const double comm_time = traditional_fft_comm_time(1024, 4, 2e9);
  const double points = 1024.0 * 1024.0 * 1024.0;
  const double cpu_rate = 1e9;
  const double cpu_frac = comm_fraction(comm_time, points, cpu_rate);
  const double gpu_frac = comm_fraction(comm_time, points, 43.0 * cpu_rate);
  EXPECT_GT(gpu_frac, cpu_frac);
  EXPECT_GT(gpu_frac, 0.9);
  EXPECT_LT(cpu_frac, 0.6);
}

TEST(CostModel, RejectsBadArguments) {
  EXPECT_THROW((void)traditional_fft_comm_time(0, 4, 1e9), InvalidArgument);
  EXPECT_THROW((void)traditional_fft_comm_time(64, 4, 0.0), InvalidArgument);
  EXPECT_THROW((void)lowcomm_exchange_points(16, 32, 2.0), InvalidArgument);
  EXPECT_THROW((void)lowcomm_exchange_points(64, 16, 0.5), InvalidArgument);
  EXPECT_THROW((void)comm_fraction(1.0, 1.0, 0.0), InvalidArgument);
}

TEST(SimCluster, PointToPointDelivery) {
  SimCluster cluster(2);
  cluster.run([](Rank& rank) {
    if (rank.id() == 0) {
      const std::vector<double> msg{1.0, 2.0, 3.0};
      rank.send(1, msg);
    } else {
      const auto got = rank.recv(0);
      ASSERT_EQ(got.size(), 3u);
      EXPECT_EQ(got[1], 2.0);
    }
  });
  EXPECT_EQ(cluster.stats().bytes_sent.load(), 3 * sizeof(double));
  EXPECT_EQ(cluster.stats().messages.load(), 1u);
}

TEST(SimCluster, ChannelsAreFifoPerPair) {
  SimCluster cluster(2);
  cluster.run([](Rank& rank) {
    if (rank.id() == 0) {
      for (double v = 0; v < 10; ++v) {
        rank.send(1, std::vector<double>{v});
      }
    } else {
      for (double v = 0; v < 10; ++v) {
        EXPECT_EQ(rank.recv(0).at(0), v);
      }
    }
  });
}

TEST(SimCluster, AllToAllPersonalised) {
  const int p = 4;
  SimCluster cluster(p);
  cluster.run([p](Rank& rank) {
    std::vector<std::vector<double>> outgoing(p);
    for (int d = 0; d < p; ++d) {
      outgoing[static_cast<std::size_t>(d)] = {
          static_cast<double>(rank.id() * 100 + d)};
    }
    const auto incoming = rank.all_to_all(outgoing);
    for (int s = 0; s < p; ++s) {
      EXPECT_EQ(incoming[static_cast<std::size_t>(s)].at(0),
                static_cast<double>(s * 100 + rank.id()));
    }
  });
  EXPECT_EQ(cluster.stats().collective_rounds.load(), 1u);
  // Only off-diagonal buffers cross the network: p(p-1) messages.
  EXPECT_EQ(cluster.stats().messages.load(),
            static_cast<std::size_t>(p * (p - 1)));
}

TEST(SimCluster, AllToAllByteAccountingIsExact) {
  // Five ranks exchange payloads of known, per-pair sizes; the concurrent
  // stats counters must come out EXACT, not merely close (under-counting
  // was the symptom of the original unsynchronised increments).
  const int p = 5;
  SimCluster cluster(p);
  cluster.run([p](Rank& rank) {
    std::vector<std::vector<double>> outgoing(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      outgoing[static_cast<std::size_t>(d)] =
          std::vector<double>(static_cast<std::size_t>(rank.id() * p + d + 1));
    }
    (void)rank.all_to_all(outgoing);
  });
  std::size_t want_doubles = 0;
  for (int src = 0; src < p; ++src) {
    for (int dst = 0; dst < p; ++dst) {
      if (src != dst) want_doubles += static_cast<std::size_t>(src * p + dst + 1);
    }
  }
  EXPECT_EQ(cluster.stats().bytes_sent.load(), want_doubles * sizeof(double));
  EXPECT_EQ(cluster.stats().messages.load(),
            static_cast<std::size_t>(p * (p - 1)));
  EXPECT_EQ(cluster.stats().collective_rounds.load(), 1u);
}

TEST(SimCluster, AllGatherDeliversEverything) {
  const int p = 3;
  SimCluster cluster(p);
  cluster.run([p](Rank& rank) {
    std::vector<double> mine{static_cast<double>(rank.id()),
                             static_cast<double>(rank.id() * 2)};
    const auto all = rank.all_gather(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) {
      EXPECT_EQ(all[static_cast<std::size_t>(s)].at(0),
                static_cast<double>(s));
    }
  });
}

TEST(SimCluster, AllReduceSum) {
  const int p = 5;
  SimCluster cluster(p);
  std::atomic<int> checks{0};
  cluster.run([&](Rank& rank) {
    const double total = rank.all_reduce_sum(static_cast<double>(rank.id()));
    EXPECT_DOUBLE_EQ(total, 10.0);  // 0+1+2+3+4
    checks++;
  });
  EXPECT_EQ(checks.load(), p);
}

TEST(SimCluster, ConsecutiveReductionsDoNotInterfere) {
  SimCluster cluster(3);
  cluster.run([](Rank& rank) {
    EXPECT_DOUBLE_EQ(rank.all_reduce_sum(1.0), 3.0);
    EXPECT_DOUBLE_EQ(rank.all_reduce_sum(2.0), 6.0);
    EXPECT_DOUBLE_EQ(rank.all_reduce_sum(static_cast<double>(rank.id())), 3.0);
  });
}

TEST(SimCluster, BarrierSynchronises) {
  const int p = 4;
  SimCluster cluster(p);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  cluster.run([&](Rank& rank) {
    before++;
    rank.barrier();
    if (before.load() != p) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(SimCluster, StatsResetAndAccumulate) {
  SimCluster cluster(2);
  cluster.run([](Rank& rank) {
    if (rank.id() == 0) rank.send(1, std::vector<double>{1.0});
    if (rank.id() == 1) (void)rank.recv(0);
  });
  EXPECT_GT(cluster.stats().bytes_sent.load(), 0u);
  cluster.reset_stats();
  EXPECT_EQ(cluster.stats().bytes_sent.load(), 0u);
}

TEST(SimCluster, ExceptionInRankBodyPropagates) {
  SimCluster cluster(2);
  EXPECT_THROW(cluster.run([](Rank& rank) {
                 if (rank.id() == 1) throw std::runtime_error("rank boom");
                 rank.barrier();
               }),
               std::runtime_error);
  // The cluster stays usable after a failed run.
  cluster.run([](Rank& rank) { rank.barrier(); });
}

TEST(SimCluster, ModeledTimePricesEveryMessage) {
  const AlphaBetaModel link{1e-5, 1e-9};
  SimCluster cluster(2, link);
  cluster.run([](Rank& rank) {
    if (rank.id() == 0) rank.send(1, std::vector<double>(1000));
    if (rank.id() == 1) (void)rank.recv(0);
  });
  // One 8000-byte message: α + β·8000.
  EXPECT_NEAR(cluster.stats().modeled_seconds(),
              link.message_time(8000), 1e-9);
  cluster.reset_stats();
  EXPECT_EQ(cluster.stats().modeled_nanos.load(), 0);
}

TEST(SimCluster, ModeledTimeAccumulatesAcrossCollectives) {
  SimCluster cluster(4);
  cluster.run([](Rank& rank) {
    std::vector<std::vector<double>> out(4, std::vector<double>(10));
    (void)rank.all_to_all(out);
  });
  EXPECT_GT(cluster.stats().modeled_seconds(), 0.0);
}

TEST(SimCluster, RejectsBadRankArguments) {
  SimCluster cluster(2);
  EXPECT_THROW(cluster.run([](Rank& rank) {
                 rank.send(7, std::vector<double>{1.0});
               }),
               InvalidArgument);
  EXPECT_THROW(SimCluster(0), InvalidArgument);
}

TEST(SimCluster, ReceiveCountersMirrorSendsAndSumPerRank) {
  // The cluster-level receive counters (historically missing — only
  // RankCommStats had them, so the totals could not be cross-checked) must
  // mirror the send side exactly once the channels drain, and both sides
  // must equal the sum of the per-rank counters.
  const int p = 4;
  SimCluster cluster(Topology::grouped(p, 2));
  cluster.run([p](Rank& rank) {
    std::vector<std::vector<double>> out(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      out[static_cast<std::size_t>(d)] =
          std::vector<double>(static_cast<std::size_t>(rank.id() + d + 1));
    }
    (void)rank.all_to_all(out);
    (void)rank.all_gather(std::vector<double>(3));
    rank.send((rank.id() + 1) % p, std::vector<double>(2));
    (void)rank.recv((rank.id() + p - 1) % p);
  });
  const auto& s = cluster.stats();
  EXPECT_EQ(s.bytes_received.load(), s.bytes_sent.load());
  EXPECT_EQ(s.messages_received.load(), s.messages.load());
  EXPECT_EQ(s.intra_bytes_sent.load() + s.inter_bytes_sent.load(),
            s.bytes_sent.load());
  EXPECT_EQ(s.intra_messages.load() + s.inter_messages.load(),
            s.messages.load());
  std::size_t sent = 0, received = 0, msent = 0, mreceived = 0, intra = 0,
              inter = 0;
  for (int r = 0; r < p; ++r) {
    const RankCommStats rs = cluster.rank_stats(r);
    sent += rs.bytes_sent;
    received += rs.bytes_received;
    msent += rs.messages_sent;
    mreceived += rs.messages_received;
    intra += rs.intra_bytes_sent;
    inter += rs.inter_bytes_sent;
    EXPECT_EQ(rs.intra_bytes_sent + rs.inter_bytes_sent, rs.bytes_sent);
  }
  EXPECT_EQ(sent, s.bytes_sent.load());
  EXPECT_EQ(received, s.bytes_received.load());
  EXPECT_EQ(msent, s.messages.load());
  EXPECT_EQ(mreceived, s.messages_received.load());
  EXPECT_EQ(intra, s.intra_bytes_sent.load());
  EXPECT_EQ(inter, s.inter_bytes_sent.load());
}

TEST(SimCluster, AllGatherRingAccountingIsExact) {
  // The forwarding ring's own accounting (no longer borrowed from
  // all_to_all): p(p-1) messages total; a buffer originating at rank o
  // traverses every ring edge except the one entering o, so the per-level
  // split follows from which edges cross a node boundary. For p=4 grouped
  // by 2 the edges 1→2 and 3→0 are inter-node.
  const int p = 4;
  SimCluster cluster(Topology::grouped(p, 2));
  cluster.run([](Rank& rank) {
    (void)rank.all_gather(
        std::vector<double>(static_cast<std::size_t>(rank.id() + 1)));
  });
  const auto& s = cluster.stats();
  EXPECT_EQ(s.allgather_rounds.load(), 1u);
  EXPECT_EQ(s.collective_rounds.load(), 1u);
  EXPECT_EQ(s.messages.load(), static_cast<std::size_t>(p * (p - 1)));
  // Total doubles: each origin's m_o doubles forwarded p-1 hops.
  const std::size_t total = (p - 1) * (1 + 2 + 3 + 4) * sizeof(double);
  EXPECT_EQ(s.bytes_sent.load(), total);
  // Origin o misses edge (o-1 → o): buffer 0 crosses inter edge 1→2 only;
  // buffer 1 crosses 1→2 and 3→0; buffer 2 crosses 3→0 only; buffer 3
  // crosses both. Inter doubles = 1 + 2·2 + 3 + 2·4 = 16.
  EXPECT_EQ(s.inter_bytes_sent.load(), 16 * sizeof(double));
  EXPECT_EQ(s.intra_bytes_sent.load(), total - 16 * sizeof(double));
  EXPECT_EQ(s.inter_messages.load(), 6u);
  EXPECT_EQ(s.intra_messages.load(), 6u);
}

TEST(SimCluster, AllReduceBitIdenticalAcrossStaggeredRuns) {
  // Regression for the arrival-order reduction: values whose sum depends
  // on addition order (catastrophic cancellation mix), ranks deliberately
  // staggered differently on every run. The deterministic slot-based
  // reduction must return the SAME BITS every time, equal to the fixed
  // rank-order sum.
  const int p = 4;
  const double values[p] = {1e16, 3.14159, -1e16, 2.71828};
  double reference = 0.0;
  for (const double v : values) reference += v;

  SimCluster cluster(p);
  std::vector<double> results;
  std::mutex results_mutex;
  for (int run = 0; run < 6; ++run) {
    cluster.run([&, run](Rank& rank) {
      // Different rank wins the race each run.
      const int delay = (rank.id() + run) % p;
      std::this_thread::sleep_for(std::chrono::microseconds(50 * delay));
      const double total = rank.all_reduce_sum(values[rank.id()]);
      std::lock_guard lock(results_mutex);
      results.push_back(total);
    });
  }
  ASSERT_EQ(results.size(), static_cast<std::size_t>(6 * p));
  for (const double r : results) {
    EXPECT_EQ(r, reference);  // bitwise, not NEAR
  }
}

TEST(SimCluster, AllReduceAccountingBalancesBothSides) {
  const int p = 3;
  SimCluster cluster(p);
  cluster.run([](Rank& rank) {
    (void)rank.all_reduce_sum(1.0);
  });
  const auto& s = cluster.stats();
  EXPECT_EQ(s.collective_rounds.load(), 1u);
  EXPECT_EQ(s.bytes_received.load(), s.bytes_sent.load());
  EXPECT_EQ(s.messages_received.load(), s.messages.load());
  EXPECT_EQ(s.intra_bytes_sent.load() + s.inter_bytes_sent.load(),
            s.bytes_sent.load());
}

TEST(SimCluster, GroupedTopologyClassifiesPointToPoint) {
  SimCluster cluster(Topology::grouped(4, 2));
  cluster.run([](Rank& rank) {
    if (rank.id() == 0) {
      rank.send(1, std::vector<double>(5));  // intra: same node {0,1}
      rank.send(2, std::vector<double>(7));  // inter: node {2,3}
    }
    if (rank.id() == 1) (void)rank.recv(0);
    if (rank.id() == 2) (void)rank.recv(0);
  });
  EXPECT_EQ(cluster.stats().intra_bytes_sent.load(), 5 * sizeof(double));
  EXPECT_EQ(cluster.stats().inter_bytes_sent.load(), 7 * sizeof(double));
  const RankCommStats r0 = cluster.rank_stats(0);
  EXPECT_EQ(r0.intra_bytes_sent, 5 * sizeof(double));
  EXPECT_EQ(r0.inter_bytes_sent, 7 * sizeof(double));
}

}  // namespace
}  // namespace lc::comm
