// Tests for the execution planner (src/planner): the Eqn 6 volume and
// accuracy heuristics it prices with, agreement between its per-level wire
// predictions and executed cluster stats, the planner-vs-exhaustive oracle,
// plan caching in the runtime ResourceCache, and the LC_PLANNER=off
// bit-for-bit escape hatch through ConvolutionService.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <limits>

#include "comm/cost_model.hpp"
#include "comm/sim_cluster.hpp"
#include "common/rng.hpp"
#include "green/gaussian.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "planner/calibration.hpp"
#include "planner/planner.hpp"
#include "runtime/plan_provider.hpp"
#include "runtime/service.hpp"
#include "sampling/octree.hpp"

namespace lc::planner {
namespace {

RealField random_field(const Grid3& g, std::uint64_t seed) {
  RealField f(g);
  SplitMix64 rng(seed);
  for (auto& v : f.span()) v = rng.uniform(-1.0, 1.0);
  return f;
}

core::LowCommParams params_of(i64 k, i64 rate) {
  core::LowCommParams p;
  p.subdomain = k;
  p.far_rate = rate;
  p.uniform_rate = rate;
  p.batch = 256;
  return p;
}

// --- Eqn 6 volume monotonicity ---------------------------------------------

TEST(PlannerModel, Eqn6VolumeFallsMonotonicallyWithRate) {
  // Closed form: k³ + (N³−k³)/r³ strictly decreases in r (N > k).
  const i64 n = 128, k = 32;
  double prev = std::numeric_limits<double>::infinity();
  for (const double r : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const double pts = comm::lowcomm_exchange_points(n, k, r);
    EXPECT_LT(pts, prev) << "not strictly decreasing at r=" << r;
    prev = pts;
  }
}

TEST(PlannerModel, MeasuredOctreeSamplesFallMonotonicallyWithRate) {
  // The executable counterpart: real octree payload is non-increasing in
  // the uniform exterior rate (the dense k³ core is rate-independent).
  const Grid3 g = Grid3::cube(64);
  const i64 k = 16;
  std::size_t prev = std::numeric_limits<std::size_t>::max();
  for (const i64 r : {i64{2}, i64{4}, i64{8}, i64{16}}) {
    const sampling::Octree tree(g, Box3::cube_at({0, 0, 0}, k),
                                sampling::SamplingPolicy::uniform(r));
    EXPECT_LE(tree.total_samples(), prev) << "grew at r=" << r;
    EXPECT_GE(tree.total_samples(),
              static_cast<std::size_t>(k * k * k));  // dense core floor
    prev = tree.total_samples();
  }
}

TEST(PlannerModel, PredictedErrorMonotoneInRateAndBounded) {
  double prev = -1.0;
  for (const i64 r : {i64{1}, i64{2}, i64{4}, i64{8}, i64{16}, i64{32}}) {
    const double e = predicted_rel_error(128, 32, r, RateSchedule::kBanded);
    EXPECT_GT(e, prev);
    prev = e;
  }
  // Banded schedules keep the near field denser → lower predicted error
  // than uniform at equal exterior rate.
  EXPECT_LT(predicted_rel_error(128, 32, 16, RateSchedule::kBanded),
            predicted_rel_error(128, 32, 16, RateSchedule::kUniform));
  // Calibration anchor: the paper's defaults stay inside its ≤3% regime.
  EXPECT_LE(predicted_rel_error(128, 32, 4, RateSchedule::kBanded), 0.03);
}

// --- Wire-time prediction vs executed stats --------------------------------

class PlannerWire : public ::testing::TestWithParam<bool> {};

TEST_P(PlannerWire, PredictedTimesMatchExecutedModeledNanos) {
  // predict_exchange_times over the static traffic mirror must agree with
  // the modeled_nanos a real cluster accumulates while executing the same
  // exchange — on the flat AND the grouped topology. The only slack is the
  // per-message nanosecond rounding of the executed counter.
  const bool grouped = GetParam();
  const Grid3 g = Grid3::cube(32);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
  const auto p = params_of(16, 2);
  const comm::Topology topo = grouped ? comm::Topology::grouped(4, 2)
                                      : comm::Topology::flat(4);
  const comm::HierarchicalLinkModel links{};  // defaults: intra ≪ inter

  const RealField input = random_field(g, 7);
  comm::SimCluster cluster(topo, links);
  (void)core::distributed_lowcomm_convolve(cluster, input, g, kernel, p);

  const comm::LevelTraffic traffic =
      core::lowcomm_exchange_traffic(g, p, topo);
  const comm::LevelTimes want = comm::predict_exchange_times(traffic, links);
  const double got = cluster.stats().modeled_seconds();
  const double slack =
      static_cast<double>(traffic.total_messages() + 1) * 2e-9;
  EXPECT_NEAR(got, want.total_seconds(), slack)
      << (grouped ? "grouped" : "flat") << " topology disagrees";
}

INSTANTIATE_TEST_SUITE_P(Topologies, PlannerWire, ::testing::Bool());

// --- Enumeration and pricing -----------------------------------------------

PlanRequest small_request() {
  PlanRequest req;
  req.n = 32;
  req.ranks = 8;
  req.topology = comm::Topology::grouped(8, 4);
  return req;
}

TEST(Planner, EnumerationCoversDivisorsSchedulesAndRoutes) {
  const Planner planner;
  const auto ranked = planner.enumerate(small_request());
  ASSERT_FALSE(ranked.empty());
  bool saw_banded = false, saw_uniform = false, saw_hier = false,
       saw_slab = false, saw_pencil = false;
  for (const auto& rc : ranked) {
    if (rc.candidate.kind == DecompKind::kSlab) saw_slab = true;
    if (rc.candidate.kind == DecompKind::kPencil) saw_pencil = true;
    if (rc.candidate.kind != DecompKind::kBlock) continue;
    EXPECT_EQ(32 % rc.candidate.params.subdomain, 0)
        << "enumerated k must divide N";
    if (rc.candidate.schedule == RateSchedule::kBanded) saw_banded = true;
    if (rc.candidate.schedule == RateSchedule::kUniform) saw_uniform = true;
    if (rc.candidate.route == core::ExchangeRoute::kHierarchical) {
      saw_hier = true;
    }
  }
  EXPECT_TRUE(saw_banded && saw_uniform && saw_hier && saw_slab && saw_pencil);
  // Ranking invariant: feasible candidates strictly precede infeasible
  // ones, and are sorted by modeled total.
  double prev = 0.0;
  bool seen_infeasible = false;
  for (const auto& rc : ranked) {
    if (!rc.cost.feasible) {
      seen_infeasible = true;
      continue;
    }
    EXPECT_FALSE(seen_infeasible) << "feasible candidate after infeasible";
    EXPECT_GE(rc.cost.total_seconds(), prev);
    prev = rc.cost.total_seconds();
  }
}

TEST(Planner, NeverSelectsMemoryInfeasiblePlan) {
  PlanRequest req = small_request();
  // ~25 MB: enough for small-k pipelines at N=32, too small for k=32.
  req.device = device::DeviceSpec{"small", 25u << 20};
  const Planner planner;
  const ExecutionPlan plan = planner.plan(req);
  EXPECT_TRUE(plan.cost.feasible);
  EXPECT_LE(plan.cost.memory_bytes, req.device.capacity_bytes);
  for (const auto& rc : plan.ranked) {
    if (rc.candidate.kind != DecompKind::kBlock || rc.cost.feasible) continue;
    EXPECT_FALSE(rc.cost.infeasible_reason.empty());
  }
}

TEST(Planner, ThrowsWithClearMessageWhenNothingFits) {
  PlanRequest req = small_request();
  req.device = device::DeviceSpec{"hopeless", 1024};
  const Planner planner;
  try {
    (void)planner.plan(req);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("hopeless"), std::string::npos);
    EXPECT_NE(what.find("32"), std::string::npos);
  }
}

TEST(Planner, PickWithinTenPercentOfExhaustiveExactSweep) {
  // Oracle: exact-reprice EVERY feasible block candidate with the real
  // octree traffic walk (the planner only exact-prices its closed-form
  // shortlist) and demand the planner's pick lands within 10% of the best
  // exact-priced total. This is what makes the closed-form screening
  // trustworthy.
  const PlanRequest req = small_request();
  const Planner planner;
  const ExecutionPlan plan = planner.plan(req);

  const Grid3 g = Grid3::cube(req.n);
  const auto exact_total = [&](const RankedCandidate& rc) {
    const auto traffic = core::lowcomm_exchange_traffic(
        g, rc.candidate.params, req.topology, rc.candidate.route);
    return rc.cost.compute_seconds +
           comm::predict_exchange_times(traffic, req.links).total_seconds();
  };

  double best = std::numeric_limits<double>::infinity();
  for (const auto& rc : plan.ranked) {
    if (rc.candidate.kind != DecompKind::kBlock || !rc.cost.feasible) continue;
    best = std::min(best, exact_total(rc));
  }
  ASSERT_TRUE(std::isfinite(best));

  RankedCandidate picked;
  picked.candidate = plan.choice;
  picked.cost = plan.cost;
  EXPECT_LE(exact_total(picked), 1.10 * best)
      << "planner pick " << plan.choice.name()
      << " more than 10% above the exhaustive exact sweep";
}

TEST(Planner, PinnedModeRepairsIllegalSubdomain) {
  PlanRequest req = small_request();
  core::LowCommParams p = params_of(12, 4);  // 12 does not divide 32
  req.pinned = p;
  const Planner planner;
  const ExecutionPlan plan = planner.plan(req);
  EXPECT_EQ(plan.params().subdomain, 8);  // largest divisor <= 12
  EXPECT_EQ(32 % plan.params().subdomain, 0);
  // Everything the caller pinned that IS legal passes through untouched.
  EXPECT_EQ(plan.params().far_rate, 4);
  EXPECT_EQ(plan.params().uniform_rate, std::optional<i64>{4});
  EXPECT_EQ(plan.params().batch, 256u);
}

TEST(Planner, ProbeModeUsesInjectedMeasurements) {
  PlannerConfig config;
  config.mode = Mode::kProbe;
  config.rate_grid = {2, 4};
  int probes = 0;
  // Stub probe: make LARGER k dramatically cheaper than the analytic model
  // believes, and require the probe ranking to flip the choice toward it.
  config.probe = [&probes](const PlanRequest&, const Candidate& c) {
    ++probes;
    return c.params.subdomain >= 16 ? 1e-9 : 10.0;
  };
  const Planner planner(config);
  const ExecutionPlan plan = planner.plan(small_request());
  EXPECT_GT(probes, 0);
  EXPECT_LE(probes, static_cast<int>(config.probe_top));
  EXPECT_GE(plan.choice.params.subdomain, 16);
  EXPECT_GT(plan.probed_seconds, 0.0);
}

TEST(Planner, EnumerationSpansCodecGridAndPricesIt) {
  // With LC_WIRE unset the planner searches the codec dimension: the same
  // (k, schedule, r, route) shape appears once per grid codec, lossy codecs
  // carry their quantization term in the accuracy screen, and 2-byte codecs
  // price at a fraction of the fp64 wire bytes.
  ::unsetenv("LC_WIRE");
  PlannerConfig cfg;  // codec_grid resolved here, after the unsetenv
  cfg.exact_top = 0;  // keep every price closed-form → comparable pairs
  const Planner planner(cfg);
  ASSERT_EQ(planner.config().codec_grid.size(), 4u);
  const auto ranked = planner.enumerate(small_request());

  const auto find = [&](comm::WireCodec codec) -> const RankedCandidate* {
    for (const auto& rc : ranked) {
      if (rc.candidate.kind == DecompKind::kBlock &&
          rc.candidate.params.wire == codec &&
          rc.candidate.params.subdomain == 8 &&
          rc.candidate.schedule == RateSchedule::kUniform &&
          rc.candidate.params.uniform_rate == i64{2} &&
          rc.candidate.route == core::ExchangeRoute::kFlat) {
        return &rc;
      }
    }
    return nullptr;
  };
  const RankedCandidate* off = find(comm::WireCodec::kOff);
  const RankedCandidate* q16 = find(comm::WireCodec::kQ16);
  ASSERT_NE(off, nullptr);
  ASSERT_NE(q16, nullptr);
  EXPECT_NEAR(q16->cost.predicted_rel_error - off->cost.predicted_rel_error,
              comm::codec_rel_error(comm::WireCodec::kQ16), 1e-12);
  EXPECT_LT(q16->cost.exchange_bytes, 0.5 * off->cost.exchange_bytes);
  EXPECT_NE(q16->candidate.name().find("wire=q16"), std::string::npos);
  EXPECT_EQ(off->candidate.name().find("wire="), std::string::npos);
}

TEST(Planner, ExplicitLcWirePinsTheCodecGrid) {
  ::setenv("LC_WIRE", "bf16", 1);
  const auto pinned = default_codec_grid();
  ASSERT_EQ(pinned.size(), 1u);
  EXPECT_EQ(pinned[0], comm::WireCodec::kBf16);
  ::unsetenv("LC_WIRE");
  const auto open = default_codec_grid();
  ASSERT_EQ(open.size(), 4u);
  EXPECT_EQ(open[0], comm::WireCodec::kOff);
}

TEST(Planner, ModeFromEnvParsesAllValues) {
  ::setenv("LC_PLANNER", "off", 1);
  EXPECT_EQ(mode_from_env(), Mode::kOff);
  ::setenv("LC_PLANNER", "probe", 1);
  EXPECT_EQ(mode_from_env(), Mode::kProbe);
  ::setenv("LC_PLANNER", "analytic", 1);
  EXPECT_EQ(mode_from_env(), Mode::kAnalytic);
  ::unsetenv("LC_PLANNER");
  EXPECT_EQ(mode_from_env(), Mode::kAnalytic);
  // Typos no longer fall back silently — they fail loudly at first read.
  ::setenv("LC_PLANNER", "prob", 1);
  EXPECT_THROW((void)mode_from_env(), InvalidArgument);
  ::unsetenv("LC_PLANNER");
}

// --- Plan caching through the runtime ResourceCache ------------------------

TEST(PlanProvider, WarmLookupSkipsEnumeration) {
  runtime::ResourceCache cache(
      runtime::ResourceCache::Config{64u << 20, nullptr, 4});
  const Planner planner;
  PlanRequest req = small_request();

  auto& hits = obs::Registry::global().counter("planner.cache_hits");
  auto& misses = obs::Registry::global().counter("planner.cache_misses");
  auto& plans = obs::Registry::global().counter("planner.plans");
  const auto h0 = hits.value(), m0 = misses.value(), p0 = plans.value();

  bool hit = true;
  const auto a = runtime::plan_cached(cache, planner, req, &hit);
  EXPECT_FALSE(hit);
  const auto b = runtime::plan_cached(cache, planner, req, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.get(), b.get());  // same resident plan object
  EXPECT_EQ(hits.value(), h0 + 1);
  EXPECT_EQ(misses.value(), m0 + 1);
  // The planner itself ran exactly once — the warm lookup did not
  // re-enumerate.
  EXPECT_EQ(plans.value(), p0 + 1);

  // A different shape is a different key.
  req.n = 64;
  (void)runtime::plan_cached(cache, planner, req, &hit);
  EXPECT_FALSE(hit);
}

TEST(PlanProvider, CacheKeySeparatesShapeTopologyDeviceAndPin) {
  PlanRequest req = small_request();
  const std::string base = cache_key(req, Mode::kAnalytic);
  EXPECT_EQ(base.rfind("execplan/", 0), 0u);  // planner namespace prefix

  PlanRequest other = req;
  other.n = 64;
  EXPECT_NE(cache_key(other, Mode::kAnalytic), base);
  other = req;
  other.topology = comm::Topology::flat(8);
  EXPECT_NE(cache_key(other, Mode::kAnalytic), base);
  other = req;
  other.device = device::DeviceSpec::v100_16gb();
  EXPECT_NE(cache_key(other, Mode::kAnalytic), base);
  other = req;
  other.pinned = params_of(8, 4);
  EXPECT_NE(cache_key(other, Mode::kAnalytic), base);
  EXPECT_NE(cache_key(req, Mode::kProbe), base);
  // The wire codec seeds the candidate grid, so it salts the key too —
  // both the base codec and a pinned-params codec.
  other = req;
  other.base.wire = comm::WireCodec::kQ16;
  EXPECT_NE(cache_key(other, Mode::kAnalytic), base);
  other = req;
  other.pinned = params_of(8, 4);
  const std::string pinned_off = cache_key(other, Mode::kAnalytic);
  other.pinned->wire = comm::WireCodec::kBf16;
  EXPECT_NE(cache_key(other, Mode::kAnalytic), pinned_off);
}

// --- Service integration ---------------------------------------------------

TEST(ServicePlanner, OffModeMatchesPlannedPinnedRunBitForBit) {
  // LC_PLANNER=off must reproduce the pre-planner service behaviour
  // exactly; with legal pinned params the planner changes nothing, so the
  // two runs must agree bit for bit.
  const Grid3 g = Grid3::cube(32);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
  const RealField input = random_field(g, 11);

  const auto run_with = [&](planner::Mode mode) {
    runtime::ServiceConfig config;
    config.planner_mode = mode;
    config.pool = nullptr;
    runtime::ConvolutionService service(config);
    runtime::ConvolutionRequest request{input, kernel, params_of(16, 2), {}, {}};
    return service.run(std::move(request));
  };

  const auto off = run_with(Mode::kOff);
  const auto analytic = run_with(Mode::kAnalytic);
  const auto off_span = off.result.output.span();
  const auto on_span = analytic.result.output.span();
  ASSERT_EQ(off_span.size(), on_span.size());
  for (std::size_t i = 0; i < off_span.size(); ++i) {
    ASSERT_EQ(off_span[i], on_span[i]) << "bit drift at " << i;
  }
  EXPECT_EQ(off.result.exchanged_bytes, analytic.result.exchanged_bytes);
}

TEST(ServicePlanner, AutoPlansWhenSubdomainUnset) {
  // params.subdomain == 0 asks the service for a full auto-tuned plan; the
  // planner must hand back a legal k and the request must succeed.
  const Grid3 g = Grid3::cube(32);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
  const RealField input = random_field(g, 13);

  runtime::ServiceConfig config;
  config.planner_mode = Mode::kAnalytic;
  config.pool = nullptr;
  runtime::ConvolutionService service(config);

  core::LowCommParams p;
  p.subdomain = 0;  // sentinel: plan for me
  auto first = service.run(
      runtime::ConvolutionRequest{input, kernel, p, {}, {}});
  EXPECT_FALSE(first.stats.plan_cache_hit);
  EXPECT_GT(first.result.output.span().size(), 0u);

  // Same shape again: the winning plan is found warm in the cache.
  auto second = service.run(
      runtime::ConvolutionRequest{input, kernel, p, {}, {}});
  EXPECT_TRUE(second.stats.plan_cache_hit);
}

// --- Calibration: fitting the history back into the pricing ---------------

// A distributed plan-vs-actual record whose measured compute implies the
// given rate (pred_point_passes / meas_compute_s == rate).
obs::PlanOutcome record_with_rate(double rate, int ranks = 4,
                                  bool aborted = false) {
  obs::PlanOutcome r;
  r.source = "pipeline";
  r.ranks = ranks;
  r.nodes = 2;
  r.pred_point_passes = 1e9;
  r.meas_compute_s = 1e9 / rate;
  r.aborted = aborted;
  return r;
}

TEST(PlannerCalibration, FitTakesMedianRateAndSkipsUnusableRecords) {
  std::vector<obs::PlanOutcome> records;
  records.push_back(record_with_rate(1e8));
  records.push_back(record_with_rate(4e8));
  records.push_back(record_with_rate(2e8));
  // None of these may steer the fit: an aborted run, a single-rank service
  // record, and a record with no measured compute at all.
  records.push_back(record_with_rate(1e12, 4, /*aborted=*/true));
  records.push_back(record_with_rate(1e12, 1));
  records.push_back([] {
    obs::PlanOutcome r = record_with_rate(1e8);
    r.meas_compute_s = 0.0;
    return r;
  }());

  const Calibration cal = fit_calibration(records);
  EXPECT_TRUE(cal.valid);
  EXPECT_EQ(cal.samples, 3);
  EXPECT_DOUBLE_EQ(cal.rate_pps, 2e8);  // median, not mean
}

TEST(PlannerCalibration, BelowMinSamplesFitIsInvalidAndApplyIsNoOp) {
  const Calibration cal =
      fit_calibration({record_with_rate(1e8)});  // one lone record
  EXPECT_FALSE(cal.valid);
  EXPECT_EQ(cal.samples, 1);
  EXPECT_EQ(cal.cache_salt(), "-");

  const PlanRequest untouched = apply_calibration(PlanRequest{}, cal);
  const PlanRequest defaults;
  EXPECT_DOUBLE_EQ(untouched.compute_rate_pps, defaults.compute_rate_pps);
  EXPECT_DOUBLE_EQ(untouched.links.intra.alpha, defaults.links.intra.alpha);
  EXPECT_DOUBLE_EQ(untouched.links.inter.beta, defaults.links.inter.beta);
}

TEST(PlannerCalibration, AlphaBetaFitRecoversPlantedLinkModel) {
  // Synthesize executed wire times from a known α-β on both levels with
  // non-collinear (messages, bytes) shapes: least squares must recover the
  // planted coefficients (the data is exactly linear, so up to rounding).
  const double ia = 5e-6, ib = 2e-9, oa = 2e-5, obeta = 9e-9;
  const double msgs[4] = {10.0, 20.0, 40.0, 5.0};
  const double bytes[4] = {1e6, 3e6, 2e6, 8e6};
  std::vector<obs::PlanOutcome> records;
  for (int i = 0; i < 4; ++i) {
    obs::PlanOutcome r = record_with_rate(2e8);
    r.meas_intra_msgs = static_cast<std::int64_t>(msgs[i]);
    r.meas_intra_bytes = static_cast<std::int64_t>(bytes[i]);
    r.meas_intra_wire_s = ia * msgs[i] + ib * bytes[i];
    r.meas_inter_msgs = static_cast<std::int64_t>(msgs[i] * 2);
    r.meas_inter_bytes = static_cast<std::int64_t>(bytes[i] * 3);
    r.meas_inter_wire_s = oa * msgs[i] * 2 + obeta * bytes[i] * 3;
    records.push_back(r);
  }

  const Calibration cal = fit_calibration(records);
  ASSERT_TRUE(cal.valid);
  EXPECT_NEAR(cal.intra_alpha, ia, ia * 1e-6);
  EXPECT_NEAR(cal.intra_beta, ib, ib * 1e-6);
  EXPECT_NEAR(cal.inter_alpha, oa, oa * 1e-6);
  EXPECT_NEAR(cal.inter_beta, obeta, obeta * 1e-6);
}

TEST(PlannerCalibration, SaveLoadRoundTripsAndMissingFileIsInvalid) {
  Calibration cal;
  cal.valid = true;
  cal.samples = 7;
  cal.rate_pps = 3.25e8;
  cal.intra_alpha = 5e-7;
  cal.intra_beta = 2.5e-11;
  cal.inter_alpha = 1.5e-6;
  cal.inter_beta = 1.25e-10;

  const std::string path = testing::TempDir() + "lc_planner_cal.json";
  ASSERT_TRUE(save_calibration(cal, path));
  const Calibration loaded = load_calibration(path);
  EXPECT_TRUE(loaded.valid);
  EXPECT_EQ(loaded.samples, cal.samples);
  EXPECT_DOUBLE_EQ(loaded.rate_pps, cal.rate_pps);
  EXPECT_DOUBLE_EQ(loaded.intra_alpha, cal.intra_alpha);
  EXPECT_DOUBLE_EQ(loaded.intra_beta, cal.intra_beta);
  EXPECT_DOUBLE_EQ(loaded.inter_alpha, cal.inter_alpha);
  EXPECT_DOUBLE_EQ(loaded.inter_beta, cal.inter_beta);
  EXPECT_EQ(loaded.cache_salt(), cal.cache_salt());
  std::remove(path.c_str());

  EXPECT_FALSE(load_calibration(path).valid);  // gone → invalid, no throw
}

TEST(PlannerCalibration, ApplySubstitutesFittedRateAndLinks) {
  Calibration cal;
  cal.valid = true;
  cal.samples = 3;
  cal.rate_pps = 3.5e8;
  cal.intra_alpha = 4e-7;
  cal.intra_beta = 3e-11;
  cal.inter_alpha = 2e-6;
  cal.inter_beta = 2e-10;

  const PlanRequest req = apply_calibration(PlanRequest{}, cal);
  EXPECT_DOUBLE_EQ(req.compute_rate_pps, 3.5e8);
  EXPECT_DOUBLE_EQ(req.links.intra.alpha, 4e-7);
  EXPECT_DOUBLE_EQ(req.links.intra.beta, 3e-11);
  EXPECT_DOUBLE_EQ(req.links.inter.alpha, 2e-6);
  EXPECT_DOUBLE_EQ(req.links.inter.beta, 2e-10);
}

TEST(PlannerCalibration, EnvCalibrationRescalesPlansAndSaltsCacheKeys) {
  // Pin the candidate so both plans price the SAME pipeline; double the
  // compute rate and keep the default link model, and the planner's
  // compute price must exactly halve. The cache key must change with the
  // fit so stale cached plans cannot survive a recalibration.
  PlanRequest req = small_request();
  req.pinned = params_of(16, 2);
  const Planner planner;

  ::unsetenv("LC_CALIBRATION");
  reload_calibration();
  const ExecutionPlan before = planner.plan(req);
  const std::string key_before = cache_key(req, Mode::kAnalytic);
  EXPECT_NE(key_before.find("/cal=-"), std::string::npos);

  Calibration cal;
  cal.valid = true;
  cal.samples = 2;
  cal.rate_pps = 2.0 * PlanRequest{}.compute_rate_pps;
  cal.intra_alpha = comm::HierarchicalLinkModel{}.intra.alpha;
  cal.intra_beta = comm::HierarchicalLinkModel{}.intra.beta;
  cal.inter_alpha = comm::HierarchicalLinkModel{}.inter.alpha;
  cal.inter_beta = comm::HierarchicalLinkModel{}.inter.beta;
  const std::string path = testing::TempDir() + "lc_planner_env_cal.json";
  ASSERT_TRUE(save_calibration(cal, path));
  ::setenv("LC_CALIBRATION", path.c_str(), 1);
  reload_calibration();

  const ExecutionPlan after = planner.plan(req);
  EXPECT_EQ(after.params().subdomain, before.params().subdomain);
  EXPECT_NEAR(after.cost.compute_seconds, 0.5 * before.cost.compute_seconds,
              1e-12 * before.cost.compute_seconds);
  const std::string key_after = cache_key(req, Mode::kAnalytic);
  EXPECT_NE(key_after, key_before);
  EXPECT_NE(key_after.find("/cal=s2:"), std::string::npos);

  ::unsetenv("LC_CALIBRATION");
  reload_calibration();
  std::remove(path.c_str());
  EXPECT_EQ(cache_key(req, Mode::kAnalytic), key_before);
}

}  // namespace
}  // namespace lc::planner
