// Observability layer (DESIGN.md §13): log-bucketed histogram vs a
// sorted-vector oracle, trace export + nesting under concurrent emitters,
// and the measured-vs-model communication-volume accounting.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "comm/sim_cluster.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/pipeline.hpp"
#include "green/gaussian.hpp"
#include "obs/comm_volume.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "runtime/service.hpp"

namespace {

using namespace lc;

// Nearest-rank quantile over the raw samples: the exact digest the
// histogram approximates (one bucket is 2^(1/8) wide, so the bucket
// midpoint is within ~4.5% of any sample inside it).
double oracle_quantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  rank = std::clamp<std::size_t>(rank, 1, samples.size());
  return samples[rank - 1];
}

// --- Histogram vs sorted-vector oracle -----------------------------------

TEST(ObsHistogram, EmptySnapshotIsAllZero) {
  obs::Histogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.quantile(0.99), 0.0);
}

TEST(ObsHistogram, SingleSampleIsExactAtEveryQuantile) {
  obs::Histogram h;
  h.record(3.7);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.sum, 3.7);
  // min == max == 3.7, and quantiles clamp to [min, max].
  for (const double q : {0.01, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s.quantile(q), 3.7) << "q=" << q;
  }
}

TEST(ObsHistogram, QuantilesMatchSortedVectorOracle) {
  obs::Histogram h;
  std::vector<double> samples;
  SplitMix64 rng(42);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over ~7 decades: the latency-like regime the log
    // bucketing is designed for.
    const double v = std::pow(10.0, rng.uniform(-6.0, 1.0));
    samples.push_back(v);
    h.record(v);
  }
  const auto s = h.snapshot();
  ASSERT_EQ(s.count, samples.size());
  for (const double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const double want = oracle_quantile(samples, q);
    const double got = s.quantile(q);
    EXPECT_NEAR(got / want, 1.0, 0.06) << "q=" << q << " oracle=" << want
                                       << " histogram=" << got;
  }
  EXPECT_NEAR(s.mean(),
              std::accumulate(samples.begin(), samples.end(), 0.0) /
                  static_cast<double>(samples.size()),
              1e-9);
}

TEST(ObsHistogram, ExtremesLandInOverflowBucketsAndClamp) {
  obs::Histogram h;
  h.record(-1.0);     // non-positive → underflow bucket
  h.record(1e-300);   // below 2^-40 → underflow bucket
  h.record(1e300);    // above 2^40 → overflow bucket
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, -1.0);
  EXPECT_DOUBLE_EQ(s.max, 1e300);
  // Quantiles in the extreme buckets report the exact extremes instead of
  // a meaningless bucket midpoint.
  EXPECT_DOUBLE_EQ(s.quantile(0.01), -1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1e300);
}

TEST(ObsHistogram, TracksCountSumMinMax) {
  obs::Histogram h;
  for (const double v : {0.25, 4.0, 1.0}) h.record(v);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 5.25);
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

// --- Registry -------------------------------------------------------------

TEST(ObsRegistry, ReferencesStayValidAcrossReset) {
  auto& reg = obs::Registry::global();
  obs::Counter& c = reg.counter("obs_test.stable_counter");
  c.add(5);
  EXPECT_EQ(&c, &reg.counter("obs_test.stable_counter"));
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the cached reference still feeds the same counter
  EXPECT_EQ(reg.counter("obs_test.stable_counter").value(), 2u);
}

TEST(ObsRegistry, RendersJsonAndPrometheus) {
  auto& reg = obs::Registry::global();
  reg.counter("obs_test.render_counter").add(7);
  reg.gauge("obs_test.render_gauge").set(1.5);
  reg.histogram("obs_test.render_hist").record(0.125);
  const std::string json = reg.render_json();
  EXPECT_NE(json.find("\"obs_test.render_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.render_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.render_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  const std::string prom = reg.render_prometheus();
  EXPECT_NE(prom.find("lc_obs_test_render_counter 7"), std::string::npos);
  EXPECT_NE(prom.find("lc_obs_test_render_hist{quantile=\"0.99\"}"),
            std::string::npos);
}

// --- Tracer ---------------------------------------------------------------

TEST(ObsTrace, DisabledTracerRecordsNothingViaMacro) {
  obs::Tracer& tracer = obs::Tracer::global();
  ASSERT_FALSE(tracer.enabled());
  const std::size_t before = tracer.event_count();
  { LC_TRACE("obs_test.disabled_span"); }
  EXPECT_EQ(tracer.event_count(), before);
}

TEST(ObsTrace, ScopedSpanRecordsWhenEnabled) {
  obs::Tracer& tracer = obs::Tracer::global();
  const std::size_t before = tracer.event_count();
  tracer.enable();
  { LC_TRACE("obs_test.enabled_span"); }
  tracer.disable();
  EXPECT_GE(tracer.event_count(), before + 1);
}

TEST(ObsTrace, FullBufferDropsAndCounts) {
  obs::Tracer tracer;  // local instance: does not pollute the global one
  const auto capacity = obs::Tracer::kBufferCapacity;
  for (std::size_t i = 0; i < capacity + 100; ++i) {
    tracer.record("obs_test.flood", static_cast<std::int64_t>(i), 1);
  }
  EXPECT_EQ(tracer.event_count(), capacity);
  EXPECT_EQ(tracer.dropped(), 100u);
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// True when the spans of one thread form a properly nested forest (every
// pair of spans is either disjoint or one contains the other).
bool properly_nested(std::vector<obs::TraceEvent> events) {
  std::sort(events.begin(), events.end(),
            [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.start_ns + a.dur_ns > b.start_ns + b.dur_ns;
            });
  std::vector<std::int64_t> open_ends;
  for (const auto& ev : events) {
    const std::int64_t end = ev.start_ns + ev.dur_ns;
    while (!open_ends.empty() && ev.start_ns >= open_ends.back()) {
      open_ends.pop_back();
    }
    if (!open_ends.empty() && end > open_ends.back()) return false;
    open_ends.push_back(end);
  }
  return true;
}

TEST(ObsTrace, ConcurrentEmittersNestPerThreadAndExportValidJson) {
  obs::Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kOuter = 50;
  constexpr int kInner = 3;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kOuter; ++i) {
        const std::int64_t outer_start = tracer.now_ns();
        for (int j = 0; j < kInner; ++j) {
          const std::int64_t inner_start = tracer.now_ns();
          tracer.record("inner", inner_start,
                        tracer.now_ns() - inner_start);
        }
        tracer.record("outer", outer_start, tracer.now_ns() - outer_start);
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto per_thread = tracer.snapshot();
  ASSERT_EQ(per_thread.size(), static_cast<std::size_t>(kThreads));
  std::size_t total = 0;
  for (const auto& te : per_thread) {
    EXPECT_EQ(te.events.size(),
              static_cast<std::size_t>(kOuter * (kInner + 1)));
    EXPECT_TRUE(properly_nested(te.events)) << "tid=" << te.tid;
    total += te.events.size();
  }
  EXPECT_EQ(total, tracer.event_count());
  EXPECT_EQ(tracer.dropped(), 0u);

  const std::string json = tracer.render_chrome_trace();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Every event became exactly one line; the JSON closes cleanly.
  std::size_t lines = 0;
  for (std::string::size_type p = json.find("\"name\":");
       p != std::string::npos; p = json.find("\"name\":", p + 1)) {
    ++lines;
  }
  EXPECT_EQ(lines, total);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

// --- ScopedTimer ----------------------------------------------------------

TEST(ObsScopedTimer, RecordsIntoSinkOnDestruction) {
  SecondsAccumulator acc;
  {
    ScopedTimer timer(acc);
    double spin = 0.0;
    for (int i = 0; i < 1000; ++i) spin += static_cast<double>(i);
    volatile double sink = spin;
    (void)sink;
  }
  EXPECT_GT(acc.seconds, 0.0);

  obs::Histogram hist;
  { ScopedTimer timer(hist); }
  EXPECT_EQ(hist.snapshot().count, 1u);
}

// --- Communication volume vs the paper's model ----------------------------

core::LowCommParams uniform_params(i64 k, i64 r) {
  core::LowCommParams params;
  params.subdomain = k;
  params.far_rate = r;
  params.uniform_rate = r;  // uniform exterior → Eqn 6 applies exactly
  params.dense_halo = 0;
  params.batch = 512;
  return params;
}

TEST(ObsCommVolume, InteriorLatticeEqualsEqn6ForUniformRate) {
  const Grid3 grid = Grid3::cube(64);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
  core::LowCommConvolution engine(grid, kernel, uniform_params(16, 2));
  const obs::CommVolumeReport rep = obs::measure_comm_volume(engine, 4);
  EXPECT_EQ(rep.n, 64);
  EXPECT_EQ(rep.k, 16);
  EXPECT_DOUBLE_EQ(rep.r, 2.0);
  EXPECT_NEAR(rep.unique_over_model(), 1.0, 1e-12);
}

TEST(ObsCommVolume, PayloadCarriesOnlyFaceOverheadAtSmallGrid) {
  const Grid3 grid = Grid3::cube(64);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
  core::LowCommConvolution engine(grid, kernel, uniform_params(16, 2));
  const obs::CommVolumeReport rep = obs::measure_comm_volume(engine, 4);
  // Edge-inclusive octree faces cost (s/r+1)³ vs (s/r)³ per cell: the
  // measured payload must exceed the model, but by a bounded margin.
  EXPECT_GT(rep.measured_over_model(), 1.0);
  EXPECT_LT(rep.measured_over_model(), 1.35);
  EXPECT_GT(rep.dense_bytes, 0.0);
}

TEST(ObsCommVolume, AcceptanceConfigAgreesWithModelWithinTenPercent) {
  // The PR's acceptance configuration: N = 128, k = 32, uniform r = 2.
  const Grid3 grid = Grid3::cube(128);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
  core::LowCommConvolution engine(grid, kernel, uniform_params(32, 2));
  const obs::CommVolumeReport rep = obs::measure_comm_volume(engine, 4);
  EXPECT_TRUE(rep.within(0.10))
      << "measured/model = " << rep.measured_over_model();
  EXPECT_GT(rep.reduction_vs_dense(), 0.0);
}

TEST(ObsCommVolume, WireBytesMatchSimClusterMeasurement) {
  const Grid3 grid = Grid3::cube(32);
  const int ranks = 2;
  const auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
  const core::LowCommParams params = uniform_params(16, 2);

  RealField input(grid);
  SplitMix64 rng(11);
  for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);

  comm::SimCluster cluster(ranks);
  (void)core::distributed_lowcomm_convolve(cluster, input, grid, kernel,
                                           params);
  const std::size_t measured = cluster.stats().bytes_sent.load();

  core::LowCommConvolution engine(grid, kernel, params);
  EXPECT_EQ(measured, core::lowcomm_exchange_bytes(engine, ranks));

  const obs::CommVolumeReport rep =
      obs::measure_comm_volume(engine, ranks, measured);
  EXPECT_EQ(rep.wire_bytes, measured);
}

TEST(ObsCommVolume, HierarchicalExchangeCountersMatchLevelTraffic) {
  // The composed exchange classifies every send it issues into the global
  // exchange.inter_node_bytes / exchange.intra_node_bytes counters; their
  // deltas must equal both the static traffic mirror and the per-level
  // bytes the cluster actually accounted.
  const Grid3 grid = Grid3::cube(32);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
  const core::LowCommParams params = uniform_params(16, 2);

  RealField input(grid);
  SplitMix64 rng(14);
  for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);

  auto& reg = obs::Registry::global();
  const auto inter_before = reg.counter("exchange.inter_node_bytes").value();
  const auto intra_before = reg.counter("exchange.intra_node_bytes").value();

  const comm::Topology topo = comm::Topology::grouped(4, 2);
  comm::SimCluster cluster(topo);
  (void)core::distributed_lowcomm_convolve(cluster, input, grid, kernel,
                                           params,
                                           core::ExchangeRoute::kHierarchical);

  const auto inter_delta =
      reg.counter("exchange.inter_node_bytes").value() - inter_before;
  const auto intra_delta =
      reg.counter("exchange.intra_node_bytes").value() - intra_before;
  EXPECT_GT(inter_delta, 0u);
  EXPECT_GT(intra_delta, 0u);

  core::LowCommConvolution engine(grid, kernel, params);
  const comm::LevelTraffic mirror = core::lowcomm_exchange_traffic(
      engine, topo, core::ExchangeRoute::kHierarchical);
  EXPECT_EQ(inter_delta, mirror.inter_bytes);
  EXPECT_EQ(intra_delta, mirror.intra_bytes);

  const comm::LevelTraffic executed = cluster.stats().level_traffic();
  EXPECT_EQ(inter_delta, executed.inter_bytes);
  EXPECT_EQ(intra_delta, executed.intra_bytes);
}

TEST(ObsRankStats, PerRankCountersSumToAggregate) {
  const Grid3 grid = Grid3::cube(32);
  const int ranks = 4;
  const auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);

  RealField input(grid);
  SplitMix64 rng(12);
  for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);

  comm::SimCluster cluster(ranks);
  (void)core::distributed_lowcomm_convolve(cluster, input, grid, kernel,
                                           uniform_params(16, 2));

  std::size_t bytes_sent = 0, bytes_received = 0;
  std::size_t messages_sent = 0, messages_received = 0;
  for (int rank = 0; rank < ranks; ++rank) {
    const comm::RankCommStats rs = cluster.rank_stats(rank);
    bytes_sent += rs.bytes_sent;
    bytes_received += rs.bytes_received;
    messages_sent += rs.messages_sent;
    messages_received += rs.messages_received;
    EXPECT_GE(rs.barrier_wait_seconds, 0.0);
  }
  EXPECT_EQ(bytes_sent, cluster.stats().bytes_sent.load());
  EXPECT_EQ(bytes_sent, bytes_received);  // every send has one receiver
  EXPECT_EQ(messages_sent, cluster.stats().messages.load());
  EXPECT_EQ(messages_sent, messages_received);
}

// --- Service digests now come from the shared histogram -------------------

TEST(ObsService, LatencyDigestsComeFromHistogram) {
  runtime::ServiceConfig config;
  config.cache_results = true;
  runtime::ConvolutionService service(config);

  const Grid3 grid = Grid3::cube(32);
  RealField input(grid);
  SplitMix64 rng(13);
  for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);

  for (int i = 0; i < 3; ++i) {
    runtime::ConvolutionRequest req;
    req.input = input;
    req.kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
    req.params = uniform_params(16, 2);
    req.subdomain = 0;
    (void)service.run(std::move(req));
  }

  const runtime::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_GT(stats.latency_p50_seconds, 0.0);
  EXPECT_LE(stats.latency_p50_seconds, stats.latency_p95_seconds);
  EXPECT_LE(stats.latency_p95_seconds, stats.latency_p99_seconds);
  EXPECT_GE(stats.queue_p99_seconds, stats.queue_p50_seconds);
}

// --- Flow events, thread labels, dropped-event surfacing -------------------

TEST(ObsTrace, FlowPairRendersAsStitchableSendRecvArrow) {
  obs::Tracer tracer;  // local instance: does not pollute the global one
  tracer.record_flow("comm.msg.intra", 0xabcdULL, 4096, /*finish=*/false);
  tracer.record_flow("comm.msg.intra", 0xabcdULL, 4096, /*finish=*/true);

  const auto per_thread = tracer.snapshot();
  ASSERT_EQ(per_thread.size(), 1u);
  ASSERT_EQ(per_thread[0].events.size(), 2u);
  EXPECT_EQ(per_thread[0].events[0].phase, 's');
  EXPECT_EQ(per_thread[0].events[1].phase, 'f');
  EXPECT_EQ(per_thread[0].events[0].flow_id, 0xabcdULL);
  EXPECT_EQ(per_thread[0].events[0].bytes, 4096u);
  EXPECT_EQ(per_thread[0].events[0].dur_ns, 0);

  const std::string json = tracer.render_chrome_trace();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Both halves carry the shared hex id and the payload size; the finish
  // additionally binds to the enclosing slice so Perfetto draws the arrow.
  EXPECT_NE(json.find("\"id\":\"0xabcd\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"bytes\":4096}"), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

TEST(ObsTrace, ThreadLabelExportsThreadNameMetadata) {
  obs::Tracer tracer;
  tracer.set_thread_label("rank 7");
  tracer.record("obs_test.labeled_span", tracer.now_ns(), 10);

  const auto per_thread = tracer.snapshot();
  ASSERT_EQ(per_thread.size(), 1u);
  EXPECT_EQ(per_thread[0].label, "rank 7");

  const std::string json = tracer.render_chrome_trace();
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"rank 7\"}"), std::string::npos);
}

TEST(ObsTrace, DroppedEventsSurfaceInExportSnapshotAndCounter) {
  auto& counter = obs::Registry::global().counter("trace.dropped_events");
  const std::uint64_t counter_before = counter.value();

  obs::Tracer tracer;
  for (std::size_t i = 0; i < obs::Tracer::kBufferCapacity + 3; ++i) {
    tracer.record("obs_test.flood", static_cast<std::int64_t>(i), 1);
  }
  EXPECT_EQ(tracer.dropped(), 3u);
  EXPECT_EQ(counter.value() - counter_before, 3u);

  const auto per_thread = tracer.snapshot();
  ASSERT_EQ(per_thread.size(), 1u);
  EXPECT_EQ(per_thread[0].dropped, 3u);  // per-thread attribution survives

  // The loss is visible from the artifact alone.
  const std::string json = tracer.render_chrome_trace();
  EXPECT_NE(json.find("\"droppedEvents\":3,"), std::string::npos);
}

// --- Prometheus: real cumulative histogram next to the summary -------------

TEST(ObsRegistry, PrometheusEmitsCumulativeHistogramBuckets) {
  auto& reg = obs::Registry::global();
  obs::Histogram& h = reg.histogram("obs_test.bucket_hist");
  // Four samples across distinct log buckets plus a repeat: cumulative
  // counts must be monotone and end at the total.
  for (const double v : {0.001, 0.1, 0.1, 10.0, 1000.0}) h.record(v);

  const std::string prom = reg.render_prometheus();
  const std::string base = "lc_obs_test_bucket_hist";

  // The summary family is untouched (existing dashboards keep working).
  EXPECT_NE(prom.find("# TYPE " + base + " summary"), std::string::npos);
  EXPECT_NE(prom.find(base + "{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(prom.find(base + "_count 5"), std::string::npos);

  // The sibling _hist family is a real histogram with le-labeled buckets.
  EXPECT_NE(prom.find("# TYPE " + base + "_hist histogram"),
            std::string::npos);
  EXPECT_NE(prom.find(base + "_hist_bucket{le=\"+Inf\"} 5"),
            std::string::npos);
  EXPECT_NE(prom.find(base + "_hist_count 5"), std::string::npos);
  EXPECT_NE(prom.find(base + "_hist_sum "), std::string::npos);

  // Walk every bucket line: upper bounds strictly increasing, cumulative
  // counts non-decreasing, and the last finite bucket holds all 5 samples.
  const std::string prefix = base + "_hist_bucket{le=\"";
  double prev_upper = -1.0;
  unsigned long long prev_cum = 0;
  std::size_t bucket_lines = 0;
  for (std::string::size_type p = prom.find(prefix); p != std::string::npos;
       p = prom.find(prefix, p + 1)) {
    const char* s = prom.c_str() + p + prefix.size();
    if (std::strncmp(s, "+Inf", 4) == 0) continue;
    double upper = 0.0;
    unsigned long long cum = 0;
    ASSERT_EQ(std::sscanf(s, "%lf\"} %llu", &upper, &cum), 2);
    EXPECT_GT(upper, prev_upper);
    EXPECT_GE(cum, prev_cum);
    prev_upper = upper;
    prev_cum = cum;
    ++bucket_lines;
  }
  EXPECT_GE(bucket_lines, 4u);  // >= one line per distinct sample bucket
  EXPECT_EQ(prev_cum, 5u);
}

// --- Plan-vs-actual telemetry (DESIGN.md §18) ------------------------------

obs::PlanOutcome distinctive_outcome() {
  obs::PlanOutcome o;
  o.source = "pipeline";
  o.aborted = true;
  o.n = 128;
  o.ranks = 8;
  o.nodes = 2;
  o.k = 32;
  o.far_rate = 4;
  o.schedule = "banded";
  o.route = "hierarchical";
  o.wire = "quant12";
  o.batch = 256;
  o.pred_compute_s = 1.25;
  o.pred_point_passes = 2.5e8;
  o.pred_rate_pps = 2e8;
  o.pred_wire_s = 0.5;
  o.pred_intra_s = 0.125;
  o.pred_inter_s = 0.375;
  o.pred_bytes = 123456789;
  o.pred_intra_bytes = 23456789;
  o.pred_inter_bytes = 100000000;
  o.pred_intra_msgs = 96;
  o.pred_inter_msgs = 14;
  o.pred_memory_b = 1 << 30;
  o.pred_rel_error = 1.5e-3;
  o.meas_wall_s = 2.0;
  o.meas_compute_s = 1.5;
  o.meas_wire_s = 0.75;
  o.meas_intra_wire_s = 0.25;
  o.meas_inter_wire_s = 0.5;
  o.meas_bytes = 123456789;
  o.meas_intra_bytes = 23456789;
  o.meas_inter_bytes = 100000000;
  o.meas_intra_msgs = 96;
  o.meas_inter_msgs = 14;
  o.meas_memory_peak_b = (1 << 30) + 512;
  o.meas_max_quant_error = 7.5e-4;
  o.meas_barrier_wait_s = 0.0625;
  o.meas_recv_wait_s = 0.03125;
  return o;
}

TEST(ObsTelemetry, JsonLineRoundTripsEveryField) {
  const obs::PlanOutcome o = distinctive_outcome();
  const std::string line = obs::to_json_line(o);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(line.find('\n'), std::string::npos);  // single JSONL line

  obs::PlanOutcome r;
  ASSERT_TRUE(obs::parse_plan_outcome(line, r));
  EXPECT_EQ(r.v, o.v);
  EXPECT_EQ(r.source, o.source);
  EXPECT_EQ(r.aborted, o.aborted);
  EXPECT_EQ(r.n, o.n);
  EXPECT_EQ(r.ranks, o.ranks);
  EXPECT_EQ(r.nodes, o.nodes);
  EXPECT_EQ(r.k, o.k);
  EXPECT_EQ(r.far_rate, o.far_rate);
  EXPECT_EQ(r.schedule, o.schedule);
  EXPECT_EQ(r.route, o.route);
  EXPECT_EQ(r.wire, o.wire);
  EXPECT_EQ(r.batch, o.batch);
  EXPECT_DOUBLE_EQ(r.pred_compute_s, o.pred_compute_s);
  EXPECT_DOUBLE_EQ(r.pred_point_passes, o.pred_point_passes);
  EXPECT_DOUBLE_EQ(r.pred_rate_pps, o.pred_rate_pps);
  EXPECT_DOUBLE_EQ(r.pred_wire_s, o.pred_wire_s);
  EXPECT_DOUBLE_EQ(r.pred_intra_s, o.pred_intra_s);
  EXPECT_DOUBLE_EQ(r.pred_inter_s, o.pred_inter_s);
  EXPECT_EQ(r.pred_bytes, o.pred_bytes);
  EXPECT_EQ(r.pred_intra_bytes, o.pred_intra_bytes);
  EXPECT_EQ(r.pred_inter_bytes, o.pred_inter_bytes);
  EXPECT_EQ(r.pred_intra_msgs, o.pred_intra_msgs);
  EXPECT_EQ(r.pred_inter_msgs, o.pred_inter_msgs);
  EXPECT_EQ(r.pred_memory_b, o.pred_memory_b);
  EXPECT_DOUBLE_EQ(r.pred_rel_error, o.pred_rel_error);
  EXPECT_DOUBLE_EQ(r.meas_wall_s, o.meas_wall_s);
  EXPECT_DOUBLE_EQ(r.meas_compute_s, o.meas_compute_s);
  EXPECT_DOUBLE_EQ(r.meas_wire_s, o.meas_wire_s);
  EXPECT_DOUBLE_EQ(r.meas_intra_wire_s, o.meas_intra_wire_s);
  EXPECT_DOUBLE_EQ(r.meas_inter_wire_s, o.meas_inter_wire_s);
  EXPECT_EQ(r.meas_bytes, o.meas_bytes);
  EXPECT_EQ(r.meas_intra_bytes, o.meas_intra_bytes);
  EXPECT_EQ(r.meas_inter_bytes, o.meas_inter_bytes);
  EXPECT_EQ(r.meas_intra_msgs, o.meas_intra_msgs);
  EXPECT_EQ(r.meas_inter_msgs, o.meas_inter_msgs);
  EXPECT_EQ(r.meas_memory_peak_b, o.meas_memory_peak_b);
  EXPECT_DOUBLE_EQ(r.meas_max_quant_error, o.meas_max_quant_error);
  EXPECT_DOUBLE_EQ(r.meas_barrier_wait_s, o.meas_barrier_wait_s);
  EXPECT_DOUBLE_EQ(r.meas_recv_wait_s, o.meas_recv_wait_s);
}

// Repoint the global sink for one test, restoring the previous path on exit.
class ScopedTelemetryPath {
 public:
  explicit ScopedTelemetryPath(const std::string& path)
      : previous_(obs::TelemetrySink::global().path()) {
    obs::TelemetrySink::global().set_path(path);
    std::remove(path.c_str());  // each test starts with a fresh history
  }
  ~ScopedTelemetryPath() { obs::TelemetrySink::global().set_path(previous_); }

 private:
  std::string previous_;
};

TEST(ObsTelemetry, SinkAppendsLinesAndReaderSkipsGarbage) {
  const std::string path = testing::TempDir() + "lc_obs_telemetry_sink.jsonl";
  ScopedTelemetryPath scoped(path);
  ASSERT_TRUE(obs::telemetry_enabled());

  obs::record_plan_outcome(distinctive_outcome());
  obs::PlanOutcome second = distinctive_outcome();
  second.source = "service";
  second.aborted = false;
  obs::record_plan_outcome(second);
  {  // a torn / foreign line must be skipped by the reader, not fatal
    std::FILE* f = std::fopen(path.c_str(), "a");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"v\":1,\"source\":\"pipeline\",\"aborted\":fal", f);
    std::fclose(f);
  }

  const auto records = obs::read_plan_outcomes(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].source, "pipeline");
  EXPECT_TRUE(records[0].aborted);
  EXPECT_EQ(records[1].source, "service");
  EXPECT_FALSE(records[1].aborted);

  // The drift gauges updated as a side effect: pred/meas = 1.25/1.5.
  EXPECT_NEAR(obs::Registry::global()
                  .gauge("planner.pred_over_actual_compute")
                  .value(),
              1.25 / 1.5, 1e-12);
}

TEST(ObsTelemetry, DistributedConvolveEmitsOnePlanOutcome) {
  const std::string path =
      testing::TempDir() + "lc_obs_telemetry_pipeline.jsonl";
  ScopedTelemetryPath scoped(path);

  const Grid3 grid = Grid3::cube(32);
  const int ranks = 2;
  const auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
  RealField input(grid);
  SplitMix64 rng(15);
  for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);

  comm::SimCluster cluster(ranks);
  (void)core::distributed_lowcomm_convolve(cluster, input, grid, kernel,
                                           uniform_params(16, 2));

  const auto records = obs::read_plan_outcomes(path);
  ASSERT_EQ(records.size(), 1u);
  const obs::PlanOutcome& rec = records[0];
  EXPECT_EQ(rec.source, "pipeline");
  EXPECT_FALSE(rec.aborted);
  EXPECT_EQ(rec.n, 32);
  EXPECT_EQ(rec.k, 16);
  EXPECT_EQ(rec.ranks, ranks);
  EXPECT_EQ(rec.route, "flat");
  // The byte prediction is an exact mirror of the executed exchange.
  EXPECT_GT(rec.meas_bytes, 0);
  EXPECT_EQ(rec.pred_bytes, rec.meas_bytes);
  EXPECT_EQ(rec.meas_bytes,
            static_cast<std::int64_t>(cluster.stats().bytes_sent.load()));
  EXPECT_GT(rec.meas_compute_s, 0.0);
  EXPECT_GT(rec.pred_point_passes, 0.0);
  EXPECT_GT(rec.pred_rate_pps, 0.0);
}

TEST(ObsService, DriftStatsPairPredictedWithMeasuredSeconds) {
  ScopedTelemetryPath scoped("");  // keep this test off any ambient sink
  runtime::ConvolutionService service;

  const Grid3 grid = Grid3::cube(32);
  RealField input(grid);
  SplitMix64 rng(16);
  for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);

  runtime::ConvolutionRequest req;
  req.input = input;
  req.kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
  req.params = uniform_params(16, 2);
  req.subdomain = 0;
  const auto response = service.run(std::move(req));

  EXPECT_GT(response.stats.predicted_seconds, 0.0);
  EXPECT_GT(response.stats.measured_seconds, 0.0);
  EXPECT_GT(response.stats.pred_over_actual(), 0.0);

  const runtime::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.planned, 1u);
  EXPECT_GT(stats.drift_p50_ratio, 0.0);
  EXPECT_GE(stats.drift_p95_ratio, stats.drift_p50_ratio);
}

}  // namespace
