// Observability layer (DESIGN.md §13): log-bucketed histogram vs a
// sorted-vector oracle, trace export + nesting under concurrent emitters,
// and the measured-vs-model communication-volume accounting.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "comm/sim_cluster.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/pipeline.hpp"
#include "green/gaussian.hpp"
#include "obs/comm_volume.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/service.hpp"

namespace {

using namespace lc;

// Nearest-rank quantile over the raw samples: the exact digest the
// histogram approximates (one bucket is 2^(1/8) wide, so the bucket
// midpoint is within ~4.5% of any sample inside it).
double oracle_quantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  rank = std::clamp<std::size_t>(rank, 1, samples.size());
  return samples[rank - 1];
}

// --- Histogram vs sorted-vector oracle -----------------------------------

TEST(ObsHistogram, EmptySnapshotIsAllZero) {
  obs::Histogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.quantile(0.99), 0.0);
}

TEST(ObsHistogram, SingleSampleIsExactAtEveryQuantile) {
  obs::Histogram h;
  h.record(3.7);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.sum, 3.7);
  // min == max == 3.7, and quantiles clamp to [min, max].
  for (const double q : {0.01, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s.quantile(q), 3.7) << "q=" << q;
  }
}

TEST(ObsHistogram, QuantilesMatchSortedVectorOracle) {
  obs::Histogram h;
  std::vector<double> samples;
  SplitMix64 rng(42);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over ~7 decades: the latency-like regime the log
    // bucketing is designed for.
    const double v = std::pow(10.0, rng.uniform(-6.0, 1.0));
    samples.push_back(v);
    h.record(v);
  }
  const auto s = h.snapshot();
  ASSERT_EQ(s.count, samples.size());
  for (const double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const double want = oracle_quantile(samples, q);
    const double got = s.quantile(q);
    EXPECT_NEAR(got / want, 1.0, 0.06) << "q=" << q << " oracle=" << want
                                       << " histogram=" << got;
  }
  EXPECT_NEAR(s.mean(),
              std::accumulate(samples.begin(), samples.end(), 0.0) /
                  static_cast<double>(samples.size()),
              1e-9);
}

TEST(ObsHistogram, ExtremesLandInOverflowBucketsAndClamp) {
  obs::Histogram h;
  h.record(-1.0);     // non-positive → underflow bucket
  h.record(1e-300);   // below 2^-40 → underflow bucket
  h.record(1e300);    // above 2^40 → overflow bucket
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, -1.0);
  EXPECT_DOUBLE_EQ(s.max, 1e300);
  // Quantiles in the extreme buckets report the exact extremes instead of
  // a meaningless bucket midpoint.
  EXPECT_DOUBLE_EQ(s.quantile(0.01), -1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1e300);
}

TEST(ObsHistogram, TracksCountSumMinMax) {
  obs::Histogram h;
  for (const double v : {0.25, 4.0, 1.0}) h.record(v);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 5.25);
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

// --- Registry -------------------------------------------------------------

TEST(ObsRegistry, ReferencesStayValidAcrossReset) {
  auto& reg = obs::Registry::global();
  obs::Counter& c = reg.counter("obs_test.stable_counter");
  c.add(5);
  EXPECT_EQ(&c, &reg.counter("obs_test.stable_counter"));
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the cached reference still feeds the same counter
  EXPECT_EQ(reg.counter("obs_test.stable_counter").value(), 2u);
}

TEST(ObsRegistry, RendersJsonAndPrometheus) {
  auto& reg = obs::Registry::global();
  reg.counter("obs_test.render_counter").add(7);
  reg.gauge("obs_test.render_gauge").set(1.5);
  reg.histogram("obs_test.render_hist").record(0.125);
  const std::string json = reg.render_json();
  EXPECT_NE(json.find("\"obs_test.render_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.render_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.render_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  const std::string prom = reg.render_prometheus();
  EXPECT_NE(prom.find("lc_obs_test_render_counter 7"), std::string::npos);
  EXPECT_NE(prom.find("lc_obs_test_render_hist{quantile=\"0.99\"}"),
            std::string::npos);
}

// --- Tracer ---------------------------------------------------------------

TEST(ObsTrace, DisabledTracerRecordsNothingViaMacro) {
  obs::Tracer& tracer = obs::Tracer::global();
  ASSERT_FALSE(tracer.enabled());
  const std::size_t before = tracer.event_count();
  { LC_TRACE("obs_test.disabled_span"); }
  EXPECT_EQ(tracer.event_count(), before);
}

TEST(ObsTrace, ScopedSpanRecordsWhenEnabled) {
  obs::Tracer& tracer = obs::Tracer::global();
  const std::size_t before = tracer.event_count();
  tracer.enable();
  { LC_TRACE("obs_test.enabled_span"); }
  tracer.disable();
  EXPECT_GE(tracer.event_count(), before + 1);
}

TEST(ObsTrace, FullBufferDropsAndCounts) {
  obs::Tracer tracer;  // local instance: does not pollute the global one
  const auto capacity = obs::Tracer::kBufferCapacity;
  for (std::size_t i = 0; i < capacity + 100; ++i) {
    tracer.record("obs_test.flood", static_cast<std::int64_t>(i), 1);
  }
  EXPECT_EQ(tracer.event_count(), capacity);
  EXPECT_EQ(tracer.dropped(), 100u);
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// True when the spans of one thread form a properly nested forest (every
// pair of spans is either disjoint or one contains the other).
bool properly_nested(std::vector<obs::TraceEvent> events) {
  std::sort(events.begin(), events.end(),
            [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.start_ns + a.dur_ns > b.start_ns + b.dur_ns;
            });
  std::vector<std::int64_t> open_ends;
  for (const auto& ev : events) {
    const std::int64_t end = ev.start_ns + ev.dur_ns;
    while (!open_ends.empty() && ev.start_ns >= open_ends.back()) {
      open_ends.pop_back();
    }
    if (!open_ends.empty() && end > open_ends.back()) return false;
    open_ends.push_back(end);
  }
  return true;
}

TEST(ObsTrace, ConcurrentEmittersNestPerThreadAndExportValidJson) {
  obs::Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kOuter = 50;
  constexpr int kInner = 3;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kOuter; ++i) {
        const std::int64_t outer_start = tracer.now_ns();
        for (int j = 0; j < kInner; ++j) {
          const std::int64_t inner_start = tracer.now_ns();
          tracer.record("inner", inner_start,
                        tracer.now_ns() - inner_start);
        }
        tracer.record("outer", outer_start, tracer.now_ns() - outer_start);
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto per_thread = tracer.snapshot();
  ASSERT_EQ(per_thread.size(), static_cast<std::size_t>(kThreads));
  std::size_t total = 0;
  for (const auto& te : per_thread) {
    EXPECT_EQ(te.events.size(),
              static_cast<std::size_t>(kOuter * (kInner + 1)));
    EXPECT_TRUE(properly_nested(te.events)) << "tid=" << te.tid;
    total += te.events.size();
  }
  EXPECT_EQ(total, tracer.event_count());
  EXPECT_EQ(tracer.dropped(), 0u);

  const std::string json = tracer.render_chrome_trace();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Every event became exactly one line; the JSON closes cleanly.
  std::size_t lines = 0;
  for (std::string::size_type p = json.find("\"name\":");
       p != std::string::npos; p = json.find("\"name\":", p + 1)) {
    ++lines;
  }
  EXPECT_EQ(lines, total);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

// --- ScopedTimer ----------------------------------------------------------

TEST(ObsScopedTimer, RecordsIntoSinkOnDestruction) {
  SecondsAccumulator acc;
  {
    ScopedTimer timer(acc);
    double spin = 0.0;
    for (int i = 0; i < 1000; ++i) spin += static_cast<double>(i);
    volatile double sink = spin;
    (void)sink;
  }
  EXPECT_GT(acc.seconds, 0.0);

  obs::Histogram hist;
  { ScopedTimer timer(hist); }
  EXPECT_EQ(hist.snapshot().count, 1u);
}

// --- Communication volume vs the paper's model ----------------------------

core::LowCommParams uniform_params(i64 k, i64 r) {
  core::LowCommParams params;
  params.subdomain = k;
  params.far_rate = r;
  params.uniform_rate = r;  // uniform exterior → Eqn 6 applies exactly
  params.dense_halo = 0;
  params.batch = 512;
  return params;
}

TEST(ObsCommVolume, InteriorLatticeEqualsEqn6ForUniformRate) {
  const Grid3 grid = Grid3::cube(64);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
  core::LowCommConvolution engine(grid, kernel, uniform_params(16, 2));
  const obs::CommVolumeReport rep = obs::measure_comm_volume(engine, 4);
  EXPECT_EQ(rep.n, 64);
  EXPECT_EQ(rep.k, 16);
  EXPECT_DOUBLE_EQ(rep.r, 2.0);
  EXPECT_NEAR(rep.unique_over_model(), 1.0, 1e-12);
}

TEST(ObsCommVolume, PayloadCarriesOnlyFaceOverheadAtSmallGrid) {
  const Grid3 grid = Grid3::cube(64);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
  core::LowCommConvolution engine(grid, kernel, uniform_params(16, 2));
  const obs::CommVolumeReport rep = obs::measure_comm_volume(engine, 4);
  // Edge-inclusive octree faces cost (s/r+1)³ vs (s/r)³ per cell: the
  // measured payload must exceed the model, but by a bounded margin.
  EXPECT_GT(rep.measured_over_model(), 1.0);
  EXPECT_LT(rep.measured_over_model(), 1.35);
  EXPECT_GT(rep.dense_bytes, 0.0);
}

TEST(ObsCommVolume, AcceptanceConfigAgreesWithModelWithinTenPercent) {
  // The PR's acceptance configuration: N = 128, k = 32, uniform r = 2.
  const Grid3 grid = Grid3::cube(128);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
  core::LowCommConvolution engine(grid, kernel, uniform_params(32, 2));
  const obs::CommVolumeReport rep = obs::measure_comm_volume(engine, 4);
  EXPECT_TRUE(rep.within(0.10))
      << "measured/model = " << rep.measured_over_model();
  EXPECT_GT(rep.reduction_vs_dense(), 0.0);
}

TEST(ObsCommVolume, WireBytesMatchSimClusterMeasurement) {
  const Grid3 grid = Grid3::cube(32);
  const int ranks = 2;
  const auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
  const core::LowCommParams params = uniform_params(16, 2);

  RealField input(grid);
  SplitMix64 rng(11);
  for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);

  comm::SimCluster cluster(ranks);
  (void)core::distributed_lowcomm_convolve(cluster, input, grid, kernel,
                                           params);
  const std::size_t measured = cluster.stats().bytes_sent.load();

  core::LowCommConvolution engine(grid, kernel, params);
  EXPECT_EQ(measured, core::lowcomm_exchange_bytes(engine, ranks));

  const obs::CommVolumeReport rep =
      obs::measure_comm_volume(engine, ranks, measured);
  EXPECT_EQ(rep.wire_bytes, measured);
}

TEST(ObsCommVolume, HierarchicalExchangeCountersMatchLevelTraffic) {
  // The composed exchange classifies every send it issues into the global
  // exchange.inter_node_bytes / exchange.intra_node_bytes counters; their
  // deltas must equal both the static traffic mirror and the per-level
  // bytes the cluster actually accounted.
  const Grid3 grid = Grid3::cube(32);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
  const core::LowCommParams params = uniform_params(16, 2);

  RealField input(grid);
  SplitMix64 rng(14);
  for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);

  auto& reg = obs::Registry::global();
  const auto inter_before = reg.counter("exchange.inter_node_bytes").value();
  const auto intra_before = reg.counter("exchange.intra_node_bytes").value();

  const comm::Topology topo = comm::Topology::grouped(4, 2);
  comm::SimCluster cluster(topo);
  (void)core::distributed_lowcomm_convolve(cluster, input, grid, kernel,
                                           params,
                                           core::ExchangeRoute::kHierarchical);

  const auto inter_delta =
      reg.counter("exchange.inter_node_bytes").value() - inter_before;
  const auto intra_delta =
      reg.counter("exchange.intra_node_bytes").value() - intra_before;
  EXPECT_GT(inter_delta, 0u);
  EXPECT_GT(intra_delta, 0u);

  core::LowCommConvolution engine(grid, kernel, params);
  const comm::LevelTraffic mirror = core::lowcomm_exchange_traffic(
      engine, topo, core::ExchangeRoute::kHierarchical);
  EXPECT_EQ(inter_delta, mirror.inter_bytes);
  EXPECT_EQ(intra_delta, mirror.intra_bytes);

  const comm::LevelTraffic executed = cluster.stats().level_traffic();
  EXPECT_EQ(inter_delta, executed.inter_bytes);
  EXPECT_EQ(intra_delta, executed.intra_bytes);
}

TEST(ObsRankStats, PerRankCountersSumToAggregate) {
  const Grid3 grid = Grid3::cube(32);
  const int ranks = 4;
  const auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);

  RealField input(grid);
  SplitMix64 rng(12);
  for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);

  comm::SimCluster cluster(ranks);
  (void)core::distributed_lowcomm_convolve(cluster, input, grid, kernel,
                                           uniform_params(16, 2));

  std::size_t bytes_sent = 0, bytes_received = 0;
  std::size_t messages_sent = 0, messages_received = 0;
  for (int rank = 0; rank < ranks; ++rank) {
    const comm::RankCommStats rs = cluster.rank_stats(rank);
    bytes_sent += rs.bytes_sent;
    bytes_received += rs.bytes_received;
    messages_sent += rs.messages_sent;
    messages_received += rs.messages_received;
    EXPECT_GE(rs.barrier_wait_seconds, 0.0);
  }
  EXPECT_EQ(bytes_sent, cluster.stats().bytes_sent.load());
  EXPECT_EQ(bytes_sent, bytes_received);  // every send has one receiver
  EXPECT_EQ(messages_sent, cluster.stats().messages.load());
  EXPECT_EQ(messages_sent, messages_received);
}

// --- Service digests now come from the shared histogram -------------------

TEST(ObsService, LatencyDigestsComeFromHistogram) {
  runtime::ServiceConfig config;
  config.cache_results = true;
  runtime::ConvolutionService service(config);

  const Grid3 grid = Grid3::cube(32);
  RealField input(grid);
  SplitMix64 rng(13);
  for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);

  for (int i = 0; i < 3; ++i) {
    runtime::ConvolutionRequest req;
    req.input = input;
    req.kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
    req.params = uniform_params(16, 2);
    req.subdomain = 0;
    (void)service.run(std::move(req));
  }

  const runtime::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_GT(stats.latency_p50_seconds, 0.0);
  EXPECT_LE(stats.latency_p50_seconds, stats.latency_p95_seconds);
  EXPECT_LE(stats.latency_p95_seconds, stats.latency_p99_seconds);
  EXPECT_GE(stats.queue_p99_seconds, stats.queue_p50_seconds);
}

}  // namespace
