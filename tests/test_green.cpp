// Tests for the Green's-function kernels: Gaussian POC kernel, Poisson
// kernel, and the elastic Green operator of Eqn 3.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fft/convolution.hpp"
#include "fft/fft3d.hpp"
#include "green/elastic.hpp"
#include "green/gaussian.hpp"
#include "green/kernel.hpp"
#include "green/poisson.hpp"

namespace lc::green {
namespace {

TEST(Gaussian, FieldIsNormalizedAndPeaksAtOrigin) {
  const Grid3 g{32, 32, 32};
  const RealField f = gaussian_kernel_field(g, 2.0);
  double sum = 0.0;
  double maxv = 0.0;
  Index3 argmax;
  for_each_point(Box3::of(g), [&](const Index3& p) {
    sum += f(p);
    if (f(p) > maxv) {
      maxv = f(p);
      argmax = p;
    }
  });
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Origin-centred so the convolution response localises on the
  // sub-domain (the paper's N/2 centring is this kernel shifted by N/2).
  EXPECT_EQ(argmax, (Index3{0, 0, 0}));
}

TEST(Gaussian, RapidDecayProperty) {
  const Grid3 g{32, 32, 32};
  const RealField f = gaussian_kernel_field(g, 1.5);
  // Value 8 voxels from the peak is negligible.
  EXPECT_LT(f(8, 0, 0) / f(0, 0, 0), 1e-6);
}

TEST(Gaussian, PeriodicSymmetry) {
  const Grid3 g{32, 32, 32};
  const RealField f = gaussian_kernel_field(g, 2.0);
  EXPECT_DOUBLE_EQ(f(3, 0, 0), f(29, 0, 0));
  EXPECT_DOUBLE_EQ(f(0, 5, 1), f(0, 27, 31));
}

TEST(Gaussian, ConvolutionResponseLocalizesOnImpulse) {
  // A delta at p convolved with the kernel must peak at p — the property
  // the octree's "dense around the sub-domain" pattern depends on.
  const Grid3 g{32, 32, 32};
  RealField delta(g, 0.0);
  delta(20, 9, 13) = 1.0;
  fft::Fft3D plan(g);
  const GaussianSpectrum spec(g, 1.5);
  const RealField out =
      fft::convolve_with_spectrum(delta, spec.materialize(g), plan);
  Index3 argmax;
  double maxv = -1.0;
  for_each_point(Box3::of(g), [&](const Index3& p) {
    if (out(p) > maxv) {
      maxv = out(p);
      argmax = p;
    }
  });
  EXPECT_EQ(argmax, (Index3{20, 9, 13}));
}

TEST(Gaussian, SpectrumIsRealValued) {
  const Grid3 g{16, 16, 16};
  const RealField f = gaussian_kernel_field(g, 2.0);
  fft::Fft3D plan(g);
  const ComplexField hat = fft::forward_spectrum(f, plan);
  for (const auto& v : hat.span()) EXPECT_NEAR(v.imag(), 0.0, 1e-12);
}

TEST(Gaussian, OnTheFlySpectrumMatchesDenseTransform) {
  const Grid3 g{16, 16, 16};
  const GaussianSpectrum spec(g, 2.0);
  const RealField f = gaussian_kernel_field(g, 2.0);
  fft::Fft3D plan(g);
  const ComplexField want = fft::forward_spectrum(f, plan);
  for_each_point(Box3::of(g), [&](const Index3& p) {
    EXPECT_NEAR(std::abs(spec.eval(p, g) - want(p)), 0.0, 1e-10) << p.str();
  });
}

TEST(Gaussian, MaterializeMatchesEval) {
  const Grid3 g{8, 8, 8};
  const GaussianSpectrum spec(g, 1.0);
  const ComplexField dense = spec.materialize(g);
  for_each_point(Box3::of(g), [&](const Index3& p) {
    EXPECT_EQ(dense(p), spec.eval(p, g));
  });
}

TEST(Gaussian, WrongGridThrows) {
  const GaussianSpectrum spec(Grid3{8, 8, 8}, 1.0);
  EXPECT_THROW((void)spec.eval({0, 0, 0}, Grid3{16, 16, 16}), InvalidArgument);
  EXPECT_THROW(GaussianSpectrum(Grid3{8, 8, 8}, -1.0), InvalidArgument);
}

TEST(DenseSpectrum, WrapsField) {
  const Grid3 g{4, 4, 4};
  ComplexField f(g);
  f(1, 2, 3) = cplx{5.0, -1.0};
  const DenseSpectrum spec(std::move(f), "test");
  EXPECT_EQ(spec.eval({1, 2, 3}, g), (cplx{5.0, -1.0}));
  EXPECT_EQ(spec.name(), "test");
}

// --- Hermitian predicates & half-spectrum storage (DESIGN.md §16) ---------

TEST(Hermitian, KernelFlagsAndDenseAutoDetection) {
  const Grid3 g = Grid3::cube(8);
  EXPECT_TRUE(GaussianSpectrum(g, 1.0).hermitian());
  EXPECT_TRUE(PoissonGreenSpectrum().hermitian());
  EXPECT_TRUE(PoissonGreenSpectrum(/*discrete=*/true).hermitian());
  // DenseSpectrum has no closed form to reason about, so it scans the
  // stored bins for conjugate symmetry at construction.
  EXPECT_TRUE(
      DenseSpectrum(GaussianSpectrum(g, 1.0).materialize(g), "sym").hermitian());
  ComplexField f(g);
  f(1, 0, 0) = cplx{1.0, 2.0};  // mirror bin (7,0,0) left at zero
  EXPECT_FALSE(DenseSpectrum(std::move(f), "asym").hermitian());
}

TEST(HalfDenseSpectrum, StoresHalfGridAndMirrorsByConjugation) {
  const Grid3 g = Grid3::cube(8);
  const GaussianSpectrum gauss(g, 1.25);
  const HalfDenseSpectrum half(gauss.materialize_half(g), g, "gauss-half");
  EXPECT_TRUE(half.hermitian());
  EXPECT_EQ(half.half_spectrum().grid().nx, g.nx / 2 + 1);
  EXPECT_EQ(half.half_spectrum().size(),
            static_cast<std::size_t>((g.nx / 2 + 1) * g.ny * g.nz));
  // eval covers the FULL grid: bins past nx/2 come from the conjugate
  // mirror and must match the closed-form kernel everywhere.
  for (i64 x = 0; x < g.nx; ++x) {
    for (i64 y = 0; y < g.ny; ++y) {
      for (i64 z = 0; z < g.nz; ++z) {
        const cplx want = gauss.eval({x, y, z}, g);
        const cplx got = half.eval({x, y, z}, g);
        ASSERT_NEAR(got.real(), want.real(), 1e-12) << x << "," << y << "," << z;
        ASSERT_NEAR(got.imag(), want.imag(), 1e-12) << x << "," << y << "," << z;
      }
    }
  }
}

TEST(HalfDenseSpectrum, RejectsWrongShapes) {
  const Grid3 g = Grid3::cube(8);
  EXPECT_THROW(HalfDenseSpectrum(ComplexField(g), g, "full-sized"),
               InvalidArgument);
  const HalfDenseSpectrum half(GaussianSpectrum(g, 1.0).materialize_half(g), g);
  EXPECT_THROW((void)half.eval({0, 0, 0}, Grid3::cube(16)), InvalidArgument);
}

TEST(Poisson, SolvesManufacturedLaplaceProblem) {
  // u(x) = cos(2π x / N): -∇²u = (2π/N)² u (spectral). Convolving the RHS
  // with the spectral kernel must return u.
  const Grid3 g{16, 16, 16};
  const double w = 2.0 * std::numbers::pi / static_cast<double>(g.nx);
  RealField u(g);
  RealField rhs(g);
  for_each_point(Box3::of(g), [&](const Index3& p) {
    u(p) = std::cos(w * static_cast<double>(p.x));
    rhs(p) = w * w * u(p);
  });
  const PoissonGreenSpectrum kernel(false);
  fft::Fft3D plan(g);
  const ComplexField khat = kernel.materialize(g);
  const RealField got = fft::convolve_with_spectrum(rhs, khat, plan);
  EXPECT_LT(max_abs_error(got.span(), u.span()), 1e-10);
}

TEST(Poisson, DiscreteKernelSolvesSevenPointStencil) {
  const Grid3 g{16, 16, 16};
  // Random zero-mean RHS; solve with the FD kernel, then check the 7-point
  // Laplacian of the solution reproduces the RHS.
  RealField rhs(g);
  SplitMix64 rng(2);
  double mean = 0.0;
  for (auto& v : rhs.span()) {
    v = rng.uniform(-1, 1);
    mean += v;
  }
  mean /= static_cast<double>(g.size());
  for (auto& v : rhs.span()) v -= mean;

  const PoissonGreenSpectrum kernel(true);
  fft::Fft3D plan(g);
  const RealField u =
      fft::convolve_with_spectrum(rhs, kernel.materialize(g), plan);
  auto wrap = [&](i64 v, i64 n) { return (v % n + n) % n; };
  for_each_point(Box3::of(g), [&](const Index3& p) {
    const double lap =
        6.0 * u(p) - u(wrap(p.x - 1, g.nx), p.y, p.z) -
        u(wrap(p.x + 1, g.nx), p.y, p.z) - u(p.x, wrap(p.y - 1, g.ny), p.z) -
        u(p.x, wrap(p.y + 1, g.ny), p.z) - u(p.x, p.y, wrap(p.z - 1, g.nz)) -
        u(p.x, p.y, wrap(p.z + 1, g.nz));
    EXPECT_NEAR(lap, rhs(p), 1e-9) << p.str();
  });
}

TEST(Poisson, DcBinIsZero) {
  const PoissonGreenSpectrum a(false);
  const PoissonGreenSpectrum b(true);
  const Grid3 g{8, 8, 8};
  EXPECT_EQ(a.eval({0, 0, 0}, g), (cplx{0.0, 0.0}));
  EXPECT_EQ(b.eval({0, 0, 0}, g), (cplx{0.0, 0.0}));
}

TEST(Poisson, SpectrumDecaysWithFrequency) {
  const PoissonGreenSpectrum k(false);
  const Grid3 g{32, 32, 32};
  const double low = k.eval({1, 0, 0}, g).real();
  const double high = k.eval({8, 0, 0}, g).real();
  EXPECT_GT(low, high);
  EXPECT_NEAR(low / high, 64.0, 1e-9);  // 1/ω² scaling
}

class ElasticGreenTest : public ::testing::Test {
 protected:
  Lame ref_ = lame_from_young_poisson(100.0, 0.3);
};

TEST_F(ElasticGreenTest, ZeroFrequencyGivesZeroOperator) {
  const Green4 g0 = elastic_green_operator({0.0, 0.0, 0.0}, ref_);
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t b = 0; b < 6; ++b) EXPECT_EQ(g0.m[a][b], 0.0);
  }
}

TEST_F(ElasticGreenTest, MatchesEqn3ComponentwiseAtSampleFrequency) {
  const fft::Freq3 xi{0.7, -0.3, 1.1};
  const Green4 gamma = elastic_green_operator(xi, ref_);
  const double n2 = xi.norm_sq();
  const std::array<double, 3> v{xi.x, xi.y, xi.z};
  auto delta = [](std::size_t i, std::size_t j) { return i == j ? 1.0 : 0.0; };
  const double b =
      (ref_.lambda + ref_.mu) / (ref_.mu * (ref_.lambda + 2.0 * ref_.mu));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      for (std::size_t k = 0; k < 3; ++k) {
        for (std::size_t l = 0; l < 3; ++l) {
          const double want =
              (delta(k, i) * v[l] * v[j] + delta(l, i) * v[k] * v[j] +
               delta(k, j) * v[l] * v[i] + delta(l, j) * v[k] * v[i]) /
                  (4.0 * ref_.mu * n2) -
              b * v[i] * v[j] * v[k] * v[l] / (n2 * n2);
          EXPECT_NEAR(gamma.at(i, j, k, l), want, 1e-14)
              << i << j << k << l;
        }
      }
    }
  }
}

TEST_F(ElasticGreenTest, HasMajorSymmetry) {
  const Green4 gamma = elastic_green_operator({1.0, 2.0, -0.5}, ref_);
  EXPECT_TRUE(gamma.is_major_symmetric(1e-12));
}

TEST_F(ElasticGreenTest, ScalesInverselyWithFrequencySquared) {
  const fft::Freq3 xi{1.0, 0.5, -0.25};
  const fft::Freq3 xi2{2.0, 1.0, -0.5};
  const Green4 a = elastic_green_operator(xi, ref_);
  const Green4 b = elastic_green_operator(xi2, ref_);
  // Γ̂ is homogeneous of degree 0 in ξ direction and -... both terms scale
  // as 1/|ξ|² · ξξ → degree 0? term1: ξ²/|ξ|² degree 0; term2 ξ⁴/|ξ|⁴
  // degree 0. So Γ̂(2ξ) = Γ̂(ξ) / ... actually a/|ξ|² with ξξ on top:
  // doubling ξ multiplies numerators by 4 and |ξ|² by 4 → unchanged ×
  // the explicit 1/|ξ|² prefactor? Check numerically: Γ̂(2ξ)=Γ̂(ξ)/4? No:
  // fully homogeneous of degree -... measure it.
  const double ratio = a.at(0, 0, 0, 0) / b.at(0, 0, 0, 0);
  // Γ̂ is homogeneous of degree 0: scaling ξ leaves it unchanged.
  EXPECT_NEAR(ratio, 1.0, 1e-12);
}

TEST_F(ElasticGreenTest, ApplyGreenMatchesManualContraction) {
  const Green4 gamma = elastic_green_operator({0.9, -1.2, 0.4}, ref_);
  Sym2c sig;
  SplitMix64 rng(7);
  for (auto& v : sig.v) v = cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const Sym2c out = apply_green(gamma, sig);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i; j < 3; ++j) {
      cplx want{0.0, 0.0};
      for (std::size_t k = 0; k < 3; ++k) {
        for (std::size_t l = 0; l < 3; ++l) {
          want += gamma.at(i, j, k, l) * sig.at(k, l);
        }
      }
      EXPECT_NEAR(std::abs(out.at(i, j) - want), 0.0, 1e-12) << i << j;
    }
  }
}

TEST_F(ElasticGreenTest, RequiresPositiveShearModulus) {
  EXPECT_THROW((void)elastic_green_operator({1, 0, 0}, Lame{1.0, 0.0}),
               InvalidArgument);
}

TEST_F(ElasticGreenTest, SpatialGreenResponseDecays) {
  // Convolve a point stress source with Γ̂ on a periodic grid: the strain
  // response magnitude must decay away from the source — the property the
  // whole compression strategy rests on (paper §2.2, §3.2).
  const Grid3 g{32, 32, 32};
  fft::Fft3D plan(g);
  // Point source: σ_xx = δ at the grid centre.
  ComplexField sig_xx(g);
  sig_xx(16, 16, 16) = cplx{1.0, 0.0};
  plan.forward(sig_xx);
  // Apply Γ̂ bin-wise to the (xx-only) stress spectrum; keep ε̂_xx.
  ComplexField eps_xx(g);
  for_each_point(Box3::of(g), [&](const Index3& p) {
    const Green4 gamma = elastic_green_at_bin(p, g, ref_);
    Sym2c s;
    s.v[0] = sig_xx(p);
    eps_xx(p) = apply_green(gamma, s).v[0];
  });
  plan.inverse(eps_xx);
  const double near = std::abs(eps_xx(17, 16, 16).real());
  const double far = std::abs(eps_xx(28, 16, 16).real());
  EXPECT_GT(near, 10.0 * far);
}

}  // namespace
}  // namespace lc::green
