// Tests for the low-communication convolution core: decomposition, local
// convolver, accumulation, the end-to-end pipeline, and hyperparameters.
//
// The central correctness property: with rate-1 (lossless) sampling the
// sum of per-sub-domain local convolutions equals the dense convolution to
// machine precision; with real compression the error stays small for
// decaying kernels and shrinks as rates shrink.
#include <gtest/gtest.h>

#include "baseline/dense.hpp"
#include "common/rng.hpp"
#include "core/decomposition.hpp"
#include "core/hyperparams.hpp"
#include "core/pipeline.hpp"
#include "fft/convolution.hpp"
#include "green/gaussian.hpp"
#include "green/poisson.hpp"

namespace lc::core {
namespace {

RealField random_field(const Grid3& g, std::uint64_t seed) {
  RealField f(g);
  SplitMix64 rng(seed);
  for (auto& v : f.span()) v = rng.uniform(-1.0, 1.0);
  return f;
}

TEST(Decomposition, SplitsGridExactly) {
  const DomainDecomposition d(Grid3::cube(64), 16);
  EXPECT_EQ(d.count(), 64u);  // 4³
  std::size_t vol = 0;
  for (const auto& b : d.subdomains()) {
    EXPECT_EQ(b.extents(), Grid3::cube(16));
    vol += b.volume();
  }
  EXPECT_EQ(vol, Grid3::cube(64).size());
}

TEST(Decomposition, SingleDomainWhenKEqualsN) {
  const DomainDecomposition d(Grid3::cube(32), 32);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_EQ(d.subdomain(0), Box3::of(Grid3::cube(32)));
}

TEST(Decomposition, AssignmentsCoverAllWithoutOverlap) {
  const DomainDecomposition d(Grid3::cube(64), 16);
  for (const auto how : {Assignment::kBlockedMorton, Assignment::kRoundRobin}) {
    std::vector<int> owner(d.count(), -1);
    for (int r = 0; r < 3; ++r) {
      for (const auto i : d.assigned_to(r, 3, how)) {
        EXPECT_EQ(owner[i], -1);
        owner[i] = r;
      }
    }
    for (const int o : owner) EXPECT_NE(o, -1);
  }
}

TEST(Decomposition, BlockedMortonAssignmentIsSpatiallyCompact) {
  // 64 sub-domains over 8 ranks: each rank's blocked-Morton share must be
  // one 2x2x2 octant (a 32-cube), while round-robin scatters every rank
  // across the whole grid. Compactness is what makes node-grouped ranks
  // share octree cells — the locality the hierarchical exchange and the
  // planner's node-dedup model rely on.
  const DomainDecomposition d(Grid3::cube(64), 16);
  for (int r = 0; r < 8; ++r) {
    const auto mine = d.assigned_to(r, 8, Assignment::kBlockedMorton);
    ASSERT_EQ(mine.size(), 8u);
    Box3 hull = d.subdomain(mine.front());
    for (const auto i : mine) {
      const Box3& b = d.subdomain(i);
      hull.lo = {std::min(hull.lo.x, b.lo.x), std::min(hull.lo.y, b.lo.y),
                 std::min(hull.lo.z, b.lo.z)};
      hull.hi = {std::max(hull.hi.x, b.hi.x), std::max(hull.hi.y, b.hi.y),
                 std::max(hull.hi.z, b.hi.z)};
    }
    EXPECT_EQ(hull.extents().size(), Grid3::cube(32).size())
        << "rank " << r << " does not own a compact octant";
  }
  const auto scattered = d.assigned_to(0, 8, Assignment::kRoundRobin);
  EXPECT_EQ(scattered, (std::vector<std::size_t>{0, 8, 16, 24, 32, 40, 48, 56}));
}

TEST(Hyperparams, SubdomainDivisorsDescendAndDivide) {
  const auto divs = core::subdomain_divisors(96);
  ASSERT_FALSE(divs.empty());
  EXPECT_EQ(divs.front(), 96);
  EXPECT_EQ(divs.back(), 2);
  for (std::size_t i = 0; i + 1 < divs.size(); ++i) {
    EXPECT_GT(divs[i], divs[i + 1]);
  }
  for (const i64 k : divs) EXPECT_EQ(96 % k, 0);
}

TEST(Hyperparams, SelectedSubdomainAlwaysDividesN) {
  // N = 96 on an unlimited device: the pow2 memory probe reports 64, which
  // does not divide 96 — the advice must fall back to a real divisor, not
  // hand DomainDecomposition an illegal k.
  for (const i64 n : {i64{96}, i64{72}, i64{128}, i64{48}}) {
    const auto advice =
        core::select_hyperparams(n, device::DeviceSpec::unlimited());
    EXPECT_GE(advice.subdomain, 1);
    EXPECT_EQ(n % advice.subdomain, 0)
        << "k=" << advice.subdomain << " does not divide N=" << n;
    const DomainDecomposition d(Grid3::cube(n), advice.subdomain);
    EXPECT_GE(d.count(), 1u);
  }
}

TEST(Hyperparams, ImpossibleDeviceGivesClearError) {
  const device::DeviceSpec tiny{"toy", 1024};
  try {
    (void)core::select_hyperparams(4096, tiny);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("toy"), std::string::npos);
    EXPECT_NE(what.find("4096"), std::string::npos);
  }
}

TEST(Decomposition, RejectsIndivisibleShapes) {
  EXPECT_THROW(DomainDecomposition(Grid3::cube(64), 17), InvalidArgument);
  EXPECT_THROW(DomainDecomposition(Grid3{64, 64, 32}, 16), InvalidArgument);
  EXPECT_THROW(DomainDecomposition(Grid3::cube(64), 128), InvalidArgument);
}

// --- Local convolver ------------------------------------------------------

class LocalConvolverTest : public ::testing::Test {
 protected:
  static constexpr i64 kN = 32;
  Grid3 grid_ = Grid3::cube(kN);
  std::shared_ptr<green::GaussianSpectrum> kernel_ =
      std::make_shared<green::GaussianSpectrum>(grid_, 1.5);
  fft::Fft3D plan_{grid_};

  /// Dense reference: chunk zero-embedded, full FFT convolution.
  RealField reference(const RealField& chunk, const Index3& corner) {
    RealField padded(grid_, 0.0);
    padded.insert(chunk, corner);
    return fft::convolve_with_spectrum(padded, kernel_->materialize(grid_),
                                       plan_);
  }
};

TEST_F(LocalConvolverTest, LosslessSamplingMatchesDenseReferenceExactly) {
  const i64 k = 8;
  const Index3 corner{8, 16, 4};
  const RealField chunk = random_field(Grid3::cube(k), 11);
  auto tree = std::make_shared<sampling::Octree>(
      grid_, Box3::cube_at(corner, k), sampling::SamplingPolicy::uniform(1));

  LocalConvolver conv(grid_, kernel_);
  const auto compressed = conv.convolve_subdomain(chunk, corner, tree);
  const RealField got = compressed.reconstruct();
  const RealField want = reference(chunk, corner);
  EXPECT_LT(max_abs_error(got.span(), want.span()), 1e-10);
}

TEST_F(LocalConvolverTest, SubdomainRegionIsExactEvenWithCompression) {
  const i64 k = 8;
  const Index3 corner{16, 8, 16};
  const Box3 dom = Box3::cube_at(corner, k);
  const RealField chunk = random_field(Grid3::cube(k), 12);
  auto tree = std::make_shared<sampling::Octree>(
      grid_, dom, sampling::SamplingPolicy::paper_default(k, 8, 0));

  LocalConvolver conv(grid_, kernel_);
  const auto compressed = conv.convolve_subdomain(chunk, corner, tree);
  const RealField want = reference(chunk, corner);
  // The sub-domain is rate-1: samples there are exact convolution values.
  for_each_point(dom, [&](const Index3& p) {
    EXPECT_NEAR(compressed.value_at(p), want(p), 1e-10) << p.str();
  });
}

TEST_F(LocalConvolverTest, CompressedApproximationIsAccurateForDecayingKernel) {
  const i64 k = 8;
  const Index3 corner{12, 12, 12};
  const RealField chunk = random_field(Grid3::cube(k), 13);
  // Halo 3: the paper tunes the sampling to its ≤3% tolerance (§5.3).
  auto tree = std::make_shared<sampling::Octree>(
      grid_, Box3::cube_at(corner, k),
      sampling::SamplingPolicy::paper_default(k, 8, 0, 3));

  LocalConvolver conv(grid_, kernel_);
  const auto compressed = conv.convolve_subdomain(chunk, corner, tree);
  const RealField got = compressed.reconstruct();
  const RealField want = reference(chunk, corner);
  EXPECT_LT(relative_l2_error(got.span(), want.span()), 0.03);
}

TEST_F(LocalConvolverTest, BatchSizeDoesNotChangeTheResult) {
  const i64 k = 8;
  const Index3 corner{0, 0, 0};
  const RealField chunk = random_field(Grid3::cube(k), 14);
  auto tree = std::make_shared<sampling::Octree>(
      grid_, Box3::cube_at(corner, k), sampling::SamplingPolicy::uniform(2));

  LocalConvolverConfig small;
  small.batch = 16;
  LocalConvolverConfig big;
  big.batch = 4096;
  const auto a = LocalConvolver(grid_, kernel_, small)
                     .convolve_subdomain(chunk, corner, tree);
  const auto b = LocalConvolver(grid_, kernel_, big)
                     .convolve_subdomain(chunk, corner, tree);
  const auto sa = a.samples();
  const auto sb = b.samples();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_NEAR(sa[i], sb[i], 1e-12);
  }
}

TEST_F(LocalConvolverTest, SerialMatchesPooled) {
  const i64 k = 8;
  const Index3 corner{24, 0, 8};
  const RealField chunk = random_field(Grid3::cube(k), 15);
  auto tree = std::make_shared<sampling::Octree>(
      grid_, Box3::cube_at(corner, k), sampling::SamplingPolicy::uniform(4));

  LocalConvolverConfig serial;
  serial.pool = nullptr;
  const auto a =
      LocalConvolver(grid_, kernel_).convolve_subdomain(chunk, corner, tree);
  const auto b = LocalConvolver(grid_, kernel_, serial)
                     .convolve_subdomain(chunk, corner, tree);
  const auto sa = a.samples();
  const auto sb = b.samples();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_NEAR(sa[i], sb[i], 1e-12);
  }
}

TEST_F(LocalConvolverTest, RegistersPipelineBuffersOnDevice) {
  const i64 k = 8;
  device::DeviceContext ctx(device::DeviceSpec::unlimited());
  LocalConvolverConfig cfg;
  cfg.device = &ctx;
  cfg.batch = 64;
  auto tree = std::make_shared<sampling::Octree>(
      grid_, Box3::cube_at({0, 0, 0}, k),
      sampling::SamplingPolicy::paper_default(k, 8, 0));
  const RealField chunk = random_field(Grid3::cube(k), 16);
  (void)LocalConvolver(grid_, kernel_, cfg)
      .convolve_subdomain(chunk, {0, 0, 0}, tree);
  EXPECT_EQ(ctx.used_bytes(), 0u);  // everything released
  // Peak at least covers the slab.
  EXPECT_GE(ctx.peak_bytes(), 16u * kN * kN * k);
}

TEST_F(LocalConvolverTest, FailsWhenDeviceTooSmall) {
  const i64 k = 8;
  device::DeviceContext ctx({"tiny", 1 << 10});
  LocalConvolverConfig cfg;
  cfg.device = &ctx;
  auto tree = std::make_shared<sampling::Octree>(
      grid_, Box3::cube_at({0, 0, 0}, k), sampling::SamplingPolicy::uniform(4));
  const RealField chunk = random_field(Grid3::cube(k), 17);
  EXPECT_THROW((void)LocalConvolver(grid_, kernel_, cfg)
                   .convolve_subdomain(chunk, {0, 0, 0}, tree),
               ResourceExhausted);
  EXPECT_EQ(ctx.used_bytes(), 0u);  // partial reservations rolled back
}

TEST_F(LocalConvolverTest, RejectsMismatchedOctree) {
  const RealField chunk = random_field(Grid3::cube(8), 18);
  auto wrong = std::make_shared<sampling::Octree>(
      grid_, Box3::cube_at({8, 8, 8}, 8), sampling::SamplingPolicy::uniform(2));
  LocalConvolver conv(grid_, kernel_);
  EXPECT_THROW((void)conv.convolve_subdomain(chunk, {0, 0, 0}, wrong),
               InvalidArgument);
}

// --- Hermitian half-spectrum (real) path -----------------------------------

/// One-channel non-Hermitian operator: multiplies by i, so the spatial
/// result of a real input is imaginary — any r2c run would be wrong.
struct RotateOp final : SpectralOperator {
  [[nodiscard]] std::size_t channels() const override { return 1; }
  void apply(const Index3&, const Grid3&,
             std::span<cplx> values) const override {
    for (auto& v : values) v *= cplx{0.0, 1.0};
  }
  [[nodiscard]] std::string name() const override { return "rotate-i"; }
};

/// Six independent Gaussian channels through the default per-bin
/// apply_z_pencil path (no cross-channel mixing), Hermitian by symmetry.
struct DiagGaussOp final : SpectralOperator {
  std::shared_ptr<const green::GaussianSpectrum> k_;
  explicit DiagGaussOp(std::shared_ptr<const green::GaussianSpectrum> k)
      : k_(std::move(k)) {}
  [[nodiscard]] std::size_t channels() const override { return 6; }
  void apply(const Index3& bin, const Grid3& g,
             std::span<cplx> values) const override {
    const cplx v = k_->eval(bin, g);
    for (auto& x : values) x *= v;
  }
  [[nodiscard]] std::string name() const override { return "diag-gauss"; }
  [[nodiscard]] bool hermitian() const override { return true; }
};

TEST_F(LocalConvolverTest, RealPathDispatchFollowsOperatorAndConfig) {
  LocalConvolverConfig off;
  off.real = LocalConvolverConfig::RealPath::kOff;
  EXPECT_FALSE(LocalConvolver(grid_, kernel_, off).uses_real_path());
  LocalConvolverConfig force;
  force.real = LocalConvolverConfig::RealPath::kForce;
  EXPECT_TRUE(LocalConvolver(grid_, kernel_, force).uses_real_path());
  // kAuto + Hermitian kernel follows LC_REAL (unset in the test runner).
  EXPECT_TRUE(LocalConvolver(grid_, kernel_).uses_real_path());
  // A non-Hermitian operator never takes the real path; forcing it throws.
  auto rot = std::make_shared<RotateOp>();
  EXPECT_FALSE(LocalConvolver(grid_, rot).uses_real_path());
  EXPECT_THROW(LocalConvolver(grid_, rot, force), InvalidArgument);
}

TEST_F(LocalConvolverTest, RealPathMatchesComplexPathAndDenseReference) {
  const i64 k = 8;
  const Index3 corner{8, 16, 4};
  const RealField chunk = random_field(Grid3::cube(k), 31);
  auto tree = std::make_shared<sampling::Octree>(
      grid_, Box3::cube_at(corner, k), sampling::SamplingPolicy::uniform(1));
  LocalConvolverConfig real_cfg;
  real_cfg.real = LocalConvolverConfig::RealPath::kForce;
  LocalConvolverConfig cplx_cfg;
  cplx_cfg.real = LocalConvolverConfig::RealPath::kOff;
  const auto a = LocalConvolver(grid_, kernel_, real_cfg)
                     .convolve_subdomain(chunk, corner, tree);
  const auto b = LocalConvolver(grid_, kernel_, cplx_cfg)
                     .convolve_subdomain(chunk, corner, tree);
  const auto sa = a.samples();
  const auto sb = b.samples();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_NEAR(sa[i], sb[i], 1e-12) << i;
  }
  const RealField want = reference(chunk, corner);
  EXPECT_LT(max_abs_error(a.reconstruct().span(), want.span()), 1e-10);
}

TEST(LocalConvolverReal, MatchesComplexPathAcrossGridSizes) {
  for (const i64 n : {16, 64}) {
    const Grid3 g = Grid3::cube(n);
    const i64 k = 8;
    const Index3 corner{n / 2, 0, n / 4};
    auto kernel = std::make_shared<green::GaussianSpectrum>(g, 1.5);
    const RealField chunk = random_field(Grid3::cube(k), 32);
    auto tree = std::make_shared<sampling::Octree>(
        g, Box3::cube_at(corner, k), sampling::SamplingPolicy::uniform(2));
    LocalConvolverConfig real_cfg;
    real_cfg.real = LocalConvolverConfig::RealPath::kForce;
    LocalConvolverConfig cplx_cfg;
    cplx_cfg.real = LocalConvolverConfig::RealPath::kOff;
    const auto a = LocalConvolver(g, kernel, real_cfg)
                       .convolve_subdomain(chunk, corner, tree);
    const auto b = LocalConvolver(g, kernel, cplx_cfg)
                       .convolve_subdomain(chunk, corner, tree);
    const auto sa = a.samples();
    const auto sb = b.samples();
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      ASSERT_NEAR(sa[i], sb[i], 1e-12) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(LocalConvolverTest, RealPathHandlesPartialBatchTiles) {
  // batch=37 leaves ragged SoA tiles at every stage boundary.
  const i64 k = 8;
  const Index3 corner{24, 8, 0};
  const RealField chunk = random_field(Grid3::cube(k), 33);
  auto tree = std::make_shared<sampling::Octree>(
      grid_, Box3::cube_at(corner, k), sampling::SamplingPolicy::uniform(2));
  LocalConvolverConfig ragged;
  ragged.real = LocalConvolverConfig::RealPath::kForce;
  ragged.batch = 37;
  LocalConvolverConfig cplx_cfg;
  cplx_cfg.real = LocalConvolverConfig::RealPath::kOff;
  const auto a = LocalConvolver(grid_, kernel_, ragged)
                     .convolve_subdomain(chunk, corner, tree);
  const auto b = LocalConvolver(grid_, kernel_, cplx_cfg)
                     .convolve_subdomain(chunk, corner, tree);
  const auto sa = a.samples();
  const auto sb = b.samples();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_NEAR(sa[i], sb[i], 1e-12) << i;
  }
}

TEST_F(LocalConvolverTest, RealPathMultiChannelMatchesComplexPath) {
  const i64 k = 8;
  const Index3 corner{0, 16, 8};
  auto op = std::make_shared<DiagGaussOp>(kernel_);
  std::vector<RealField> chunks;
  for (std::size_t c = 0; c < op->channels(); ++c) {
    chunks.push_back(random_field(Grid3::cube(k), 40 + c));
  }
  auto tree = std::make_shared<sampling::Octree>(
      grid_, Box3::cube_at(corner, k), sampling::SamplingPolicy::uniform(1));
  LocalConvolverConfig real_cfg;
  real_cfg.real = LocalConvolverConfig::RealPath::kForce;
  LocalConvolverConfig cplx_cfg;
  cplx_cfg.real = LocalConvolverConfig::RealPath::kOff;
  const auto a = LocalConvolver(grid_, op, real_cfg)
                     .convolve_channels(chunks, corner, tree);
  const auto b = LocalConvolver(grid_, op, cplx_cfg)
                     .convolve_channels(chunks, corner, tree);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    const auto sa = a[c].samples();
    const auto sb = b[c].samples();
    for (std::size_t i = 0; i < sa.size(); ++i) {
      ASSERT_NEAR(sa[i], sb[i], 1e-12) << "c=" << c << " i=" << i;
    }
  }
}

TEST_F(LocalConvolverTest, LcRealOffEnvIsBitExactWithComplexConfig) {
  const i64 k = 8;
  const Index3 corner{8, 8, 8};
  const RealField chunk = random_field(Grid3::cube(k), 34);
  auto tree = std::make_shared<sampling::Octree>(
      grid_, Box3::cube_at(corner, k), sampling::SamplingPolicy::uniform(2));
  LocalConvolverConfig cplx_cfg;
  cplx_cfg.real = LocalConvolverConfig::RealPath::kOff;
  const auto want = LocalConvolver(grid_, kernel_, cplx_cfg)
                        .convolve_subdomain(chunk, corner, tree);
  ASSERT_EQ(setenv("LC_REAL", "off", 1), 0);
  const LocalConvolver env_engine(grid_, kernel_);  // kAuto, env says off
  ASSERT_EQ(unsetenv("LC_REAL"), 0);
  EXPECT_FALSE(env_engine.uses_real_path());
  const auto got = env_engine.convolve_subdomain(chunk, corner, tree);
  const auto sw = want.samples();
  const auto sg = got.samples();
  ASSERT_EQ(sw.size(), sg.size());
  for (std::size_t i = 0; i < sw.size(); ++i) {
    EXPECT_EQ(sw[i], sg[i]) << i;  // bit-exact: identical complex code path
  }
}

// --- End-to-end pipeline ---------------------------------------------------

TEST(LowCommPipeline, LosslessModeMatchesDenseConvolution) {
  const Grid3 g = Grid3::cube(16);
  auto kernel = std::make_shared<green::GaussianSpectrum>(g, 1.2);
  const RealField input = random_field(g, 21);

  LowCommParams params;
  params.subdomain = 8;
  params.uniform_rate = 1;  // lossless
  const LowCommConvolution engine(g, kernel, params);
  const LowCommResult result = engine.convolve(input);

  const RealField want = baseline::dense_convolve(input, *kernel);
  EXPECT_LT(max_abs_error(result.output.span(), want.span()), 1e-9);
}

TEST(LowCommPipeline, CompressedModeWithinPaperErrorTolerance) {
  const Grid3 g = Grid3::cube(32);
  auto kernel = std::make_shared<green::GaussianSpectrum>(g, 1.5);
  const RealField input = random_field(g, 22);

  LowCommParams params;
  params.subdomain = 8;
  params.far_rate = 8;
  params.dense_halo = 3;  // tuned to the paper's tolerance (§5.3)
  const LowCommConvolution engine(g, kernel, params);
  const LowCommResult result = engine.convolve(input);

  const RealField want = baseline::dense_convolve(input, *kernel);
  // Paper §5.3: approximation error ≤ 3%.
  EXPECT_LT(relative_l2_error(result.output.span(), want.span()), 0.03);
  EXPECT_GT(result.compression_ratio, 1.0);
  EXPECT_EQ(result.exchanged_bytes, result.compressed_samples * 8);
}

TEST(LowCommPipeline, ErrorDecreasesWithRate) {
  const Grid3 g = Grid3::cube(32);
  auto kernel = std::make_shared<green::GaussianSpectrum>(g, 1.5);
  const RealField input = random_field(g, 23);
  const RealField want = baseline::dense_convolve(input, *kernel);

  double prev_err = -1.0;
  for (const i64 rate : {8, 4, 2, 1}) {
    LowCommParams params;
    params.subdomain = 8;
    params.uniform_rate = rate;
    const auto result = LowCommConvolution(g, kernel, params).convolve(input);
    const double err = relative_l2_error(result.output.span(), want.span());
    if (prev_err >= 0.0) EXPECT_LE(err, prev_err + 1e-12) << rate;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-9);  // rate 1 is exact
}

TEST(LowCommPipeline, PoissonKernelAlsoWorks) {
  // The "similar PDE solvers benefit" claim: same pipeline, Poisson kernel.
  const Grid3 g = Grid3::cube(32);
  auto kernel = std::make_shared<green::PoissonGreenSpectrum>(true);
  RealField input = random_field(g, 24);
  // Zero-mean source (Poisson solvability on the torus).
  double mean = 0.0;
  for (const auto v : input.span()) mean += v;
  mean /= static_cast<double>(g.size());
  for (auto& v : input.span()) v -= mean;

  LowCommParams params;
  params.subdomain = 8;
  params.uniform_rate = 1;
  const auto result = LowCommConvolution(g, kernel, params).convolve(input);
  const RealField want = baseline::dense_convolve(input, *kernel);
  EXPECT_LT(max_abs_error(result.output.span(), want.span()), 1e-9);
}

TEST(LowCommPipeline, DistributedMatchesSingleProcess) {
  const Grid3 g = Grid3::cube(16);
  auto kernel = std::make_shared<green::GaussianSpectrum>(g, 1.2);
  const RealField input = random_field(g, 25);

  LowCommParams params;
  params.subdomain = 8;
  params.far_rate = 4;
  params.batch = 64;
  const auto single = LowCommConvolution(g, kernel, params).convolve(input);

  comm::SimCluster cluster(4);
  const RealField dist =
      distributed_lowcomm_convolve(cluster, input, g, kernel, params);
  EXPECT_LT(max_abs_error(dist.span(), single.output.span()), 1e-10);
  // Exactly one collective round: the sparse accumulation exchange.
  EXPECT_EQ(cluster.stats().collective_rounds.load(), 1u);
}

TEST(LowCommPipeline, DistributedExchangesOnlyCompressedBytes) {
  const Grid3 g = Grid3::cube(16);
  auto kernel = std::make_shared<green::GaussianSpectrum>(g, 1.2);
  const RealField input = random_field(g, 26);

  LowCommParams params;
  params.subdomain = 8;
  params.far_rate = 4;
  params.batch = 64;
  const LowCommConvolution engine(g, kernel, params);
  std::size_t full_payload_bytes = 0;
  for (std::size_t d = 0; d < engine.decomposition().count(); ++d) {
    full_payload_bytes += engine.octree_for(d)->total_samples() * sizeof(double);
  }

  comm::SimCluster cluster(2);
  (void)distributed_lowcomm_convolve(cluster, input, g, kernel, params);
  // The personalised exchange moves exactly the needed-cell bytes, which is
  // at most one copy of every payload (2 ranks) and usually less.
  EXPECT_EQ(cluster.stats().bytes_sent.load(),
            lowcomm_exchange_bytes(engine, 2));
  EXPECT_LE(cluster.stats().bytes_sent.load(), full_payload_bytes);
}

// --- Hyperparameters --------------------------------------------------------

TEST(Hyperparams, BatchRecommendationClampsAndGrows) {
  EXPECT_EQ(recommended_batch(64), 512u);
  EXPECT_EQ(recommended_batch(1024), 1024u);
  EXPECT_EQ(recommended_batch(100000), 32768u);
  EXPECT_GE(recommended_batch(2048), recommended_batch(256));
}

TEST(Hyperparams, FarRateFollowsProblemRatio) {
  EXPECT_EQ(recommended_far_rate(128, 32), 4);
  EXPECT_EQ(recommended_far_rate(1024, 32), 32);
  EXPECT_EQ(recommended_far_rate(64, 64), 2);   // clamp low
  EXPECT_EQ(recommended_far_rate(8192, 32), 32);  // clamp high
}

TEST(Hyperparams, FarRateBoundaryCases) {
  // N == k: one sub-domain covers everything; the ratio floors at the
  // clamp's low end rather than degenerating to 1.
  EXPECT_EQ(recommended_far_rate(32, 32), 2);
  EXPECT_EQ(recommended_far_rate(1, 1), 2);
  // k not dividing N: the heuristic works off the integer ratio; a 3:1
  // split rounds up to the next power of two.
  EXPECT_EQ(recommended_far_rate(96, 32), 4);   // 96/32 = 3 → 4
  EXPECT_EQ(recommended_far_rate(100, 32), 4);  // 100/32 = 3 → 4
  EXPECT_EQ(recommended_far_rate(33, 32), 2);   // 33/32 = 1 → clamp low
  // Clamp exactness at both rails.
  EXPECT_EQ(recommended_far_rate(64, 32), 2);
  EXPECT_EQ(recommended_far_rate(128, 2), 32);
}

TEST(Hyperparams, FarRateRejectsInvalidShapes) {
  EXPECT_THROW((void)recommended_far_rate(16, 32), InvalidArgument);  // n < k
  EXPECT_THROW((void)recommended_far_rate(16, 0), InvalidArgument);   // k < 1
  EXPECT_THROW((void)recommended_far_rate(16, -4), InvalidArgument);
}

TEST(Hyperparams, BatchRecommendationBoundaries) {
  // Below the floor, at the pow2 fixpoint, and above the ceiling.
  EXPECT_EQ(recommended_batch(1), 512u);
  EXPECT_EQ(recommended_batch(512), 512u);
  EXPECT_EQ(recommended_batch(513), 1024u);   // next_pow2 rounding
  EXPECT_EQ(recommended_batch(32768), 32768u);
  EXPECT_EQ(recommended_batch(32769), 32768u);  // clamp high
}

TEST(Hyperparams, SelectionFitsDevice) {
  const auto advice =
      select_hyperparams(512, device::DeviceSpec::v100_16gb());
  EXPECT_GT(advice.subdomain, 0);
  const auto plan = device::plan_local_pipeline(
      512, advice.subdomain,
      sampling::SamplingPolicy::paper_default(advice.subdomain),
      advice.batch);
  EXPECT_LE(plan.actual_total(), device::DeviceSpec::v100_16gb().capacity_bytes);
}

// --- Accumulator -------------------------------------------------------------

TEST(Accumulator, SumsContributions) {
  const Grid3 g = Grid3::cube(16);
  auto tree = std::make_shared<sampling::Octree>(
      g, Box3::cube_at({0, 0, 0}, 8), sampling::SamplingPolicy::uniform(1));
  RealField ones(g, 1.0);
  RealField twos(g, 2.0);
  std::vector<sampling::CompressedField> contributions;
  contributions.push_back(sampling::CompressedField::compress(ones, tree));
  contributions.push_back(sampling::CompressedField::compress(twos, tree));
  const RealField full = accumulate_full(contributions, g);
  for (const auto v : full.span()) EXPECT_DOUBLE_EQ(v, 3.0);

  const Box3 region{{4, 4, 4}, {12, 12, 12}};
  const RealField tile = accumulate_region(contributions, region);
  EXPECT_EQ(tile.grid(), region.extents());
  for (const auto v : tile.span()) EXPECT_DOUBLE_EQ(v, 3.0);
}

// Slab-parallel accumulation is bit-identical to serial, and accumulating a
// partition of the grid region by region reproduces one accumulate_full.
TEST(Accumulator, RegionTilingMatchesFullAndParallelIsBitIdentical) {
  const Grid3 g = Grid3::cube(32);
  const RealField input = random_field(g, 17);
  std::vector<sampling::CompressedField> contributions;
  for (const i64 corner : {i64{0}, i64{16}}) {
    auto tree = std::make_shared<sampling::Octree>(
        g, Box3::cube_at({corner, corner, corner}, 16),
        sampling::SamplingPolicy::paper_default(16, 8));
    contributions.push_back(sampling::CompressedField::compress(input, tree));
  }

  const RealField serial_full = accumulate_full(contributions, g);
  ThreadPool pool(4);
  const RealField parallel_full =
      accumulate_full(contributions, g, sampling::Interpolation::kTrilinear,
                      &pool);
  for (std::size_t i = 0; i < serial_full.span().size(); ++i) {
    ASSERT_EQ(serial_full.span()[i], parallel_full.span()[i]) << i;
  }

  // Partition the grid into uneven boxes; slab-parallel accumulate_region
  // over each tile, stitched together, must equal the serial full result.
  RealField stitched(g, 0.0);
  const std::vector<Box3> tiles = {
      {{0, 0, 0}, {32, 32, 7}},
      {{0, 0, 7}, {32, 13, 32}},
      {{0, 13, 7}, {32, 32, 32}},
  };
  for (const Box3& tile : tiles) {
    stitched.insert(accumulate_region(
                        contributions, tile,
                        sampling::Interpolation::kTrilinear, &pool),
                    tile.lo);
  }
  for (std::size_t i = 0; i < serial_full.span().size(); ++i) {
    ASSERT_EQ(serial_full.span()[i], stitched.span()[i]) << i;
  }
}

TEST(Accumulator, RejectsEmptyRegion) {
  std::vector<sampling::CompressedField> none;
  EXPECT_THROW((void)accumulate_region(none, Box3{{1, 1, 1}, {1, 2, 2}}),
               InvalidArgument);
}

}  // namespace
}  // namespace lc::core
