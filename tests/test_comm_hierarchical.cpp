// Tests for the topology-aware hierarchical exchange (ROADMAP item 1):
// node grouping, the composed node-multicast / all-to-all collectives, the
// per-level byte accounting, and the pipeline route equivalence (the
// hierarchical route must reproduce the flat exchange's result exactly —
// only the routing may change).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "comm/cost_model.hpp"
#include "comm/hierarchical.hpp"
#include "comm/sim_cluster.hpp"
#include "comm/topology.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "green/gaussian.hpp"

namespace lc::comm {
namespace {

TEST(Topology, FlatEveryRankItsOwnNode) {
  const Topology t = Topology::flat(4);
  EXPECT_EQ(t.ranks(), 4);
  EXPECT_EQ(t.nodes(), 4);
  EXPECT_TRUE(t.is_flat());
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(t.node_of(r), r);
    EXPECT_TRUE(t.is_leader(r));
    EXPECT_EQ(t.leader_of(r), r);
  }
  EXPECT_FALSE(t.same_node(0, 1));
  EXPECT_TRUE(t.same_node(2, 2));
}

TEST(Topology, GroupedContiguousBlocks) {
  const Topology t = Topology::grouped(8, 4);
  EXPECT_EQ(t.ranks(), 8);
  EXPECT_EQ(t.nodes(), 2);
  EXPECT_FALSE(t.is_flat());
  EXPECT_EQ(t.node_of(3), 0);
  EXPECT_EQ(t.node_of(4), 1);
  EXPECT_EQ(t.leader_of(1), 4);
  EXPECT_TRUE(t.is_leader(0));
  EXPECT_TRUE(t.is_leader(4));
  EXPECT_FALSE(t.is_leader(5));
  EXPECT_TRUE(t.same_node(1, 3));
  EXPECT_FALSE(t.same_node(3, 4));
  const auto m = t.members(1);
  ASSERT_EQ(m.size(), 4u);
  EXPECT_EQ(m.front(), 4);
  EXPECT_EQ(m.back(), 7);
}

TEST(Topology, RemainderRanksJoinLastNode) {
  const Topology t = Topology::grouped(10, 4);
  EXPECT_EQ(t.nodes(), 3);
  EXPECT_EQ(t.members(2).size(), 2u);
  EXPECT_EQ(t.node_of(9), 2);
  EXPECT_EQ(t.leader_of(2), 8);
}

TEST(Topology, RejectsBadShapes) {
  EXPECT_THROW(Topology::flat(0), InvalidArgument);
  EXPECT_THROW(Topology::grouped(4, 0), InvalidArgument);
  EXPECT_THROW(Topology::grouped(2, 4), InvalidArgument);
}

// Deterministic payload for (src rank, dst node, slot): both sides of every
// test below agree on it without communicating.
double bundle_value(int src, int dst_node, std::size_t j) {
  return 1000.0 * src + 10.0 * dst_node + static_cast<double>(j);
}

std::size_t bundle_len(int src, int dst_node, int nodes) {
  return static_cast<std::size_t>(src + dst_node * nodes + 1);
}

TEST(HierarchicalComm, NodeMulticastDeliversEverySourceBundle) {
  const Topology topo = Topology::grouped(6, 2);
  const int nodes = topo.nodes();
  SimCluster cluster(topo);
  cluster.run([&](Rank& rank) {
    const int me = rank.id();
    std::vector<std::vector<double>> outgoing(
        static_cast<std::size_t>(nodes));
    for (int d = 0; d < nodes; ++d) {
      auto& b = outgoing[static_cast<std::size_t>(d)];
      b.resize(bundle_len(me, d, nodes));
      for (std::size_t j = 0; j < b.size(); ++j) b[j] = bundle_value(me, d, j);
    }
    const auto incoming = node_multicast_exchange(
        rank, outgoing,
        [&](int src, int dst_node) { return bundle_len(src, dst_node, nodes); });

    // EVERY rank receives EVERY source's bundle for its own node — that is
    // the node-multicast contract (each receiver filters what it needs).
    const int my_node = rank.topology().node_of(me);
    ASSERT_EQ(incoming.size(), static_cast<std::size_t>(rank.size()));
    for (int src = 0; src < rank.size(); ++src) {
      const auto& b = incoming[static_cast<std::size_t>(src)];
      ASSERT_EQ(b.size(), bundle_len(src, my_node, nodes))
          << "src=" << src << " me=" << me;
      for (std::size_t j = 0; j < b.size(); ++j) {
        EXPECT_EQ(b[j], bundle_value(src, my_node, j));
      }
    }
  });
  EXPECT_EQ(cluster.stats().collective_rounds.load(), 1u);
}

TEST(HierarchicalComm, FlatTopologyDegeneratesToPersonalisedExchange) {
  // On a flat topology "node" == "rank": the collective must behave exactly
  // like a personalised all-to-all, one message per ordered pair.
  const int p = 4;
  SimCluster cluster(Topology::flat(p));
  cluster.run([&](Rank& rank) {
    const int me = rank.id();
    std::vector<std::vector<double>> outgoing(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      outgoing[static_cast<std::size_t>(d)] = {
          static_cast<double>(me * 100 + d)};
    }
    const auto incoming = node_multicast_exchange(
        rank, outgoing, [](int, int) { return std::size_t{1}; });
    for (int s = 0; s < p; ++s) {
      EXPECT_EQ(incoming[static_cast<std::size_t>(s)].at(0),
                static_cast<double>(s * 100 + me));
    }
  });
  EXPECT_EQ(cluster.stats().messages.load(),
            static_cast<std::size_t>(p * (p - 1)));
  EXPECT_EQ(cluster.stats().intra_bytes_sent.load(), 0u);
}

TEST(HierarchicalComm, AllToAllMatchesBuiltinExactly) {
  const Topology topo = Topology::grouped(6, 3);
  const int p = topo.ranks();
  const auto pair_len = [p](int src, int dst) {
    return static_cast<std::size_t>((src * p + dst) % 5 + 1);
  };
  SimCluster cluster(topo);
  cluster.run([&](Rank& rank) {
    const int me = rank.id();
    std::vector<std::vector<double>> outgoing(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      auto& b = outgoing[static_cast<std::size_t>(d)];
      b.resize(pair_len(me, d));
      for (std::size_t j = 0; j < b.size(); ++j) {
        b[j] = bundle_value(me, d, j);
      }
    }
    const auto via_hier = hierarchical_all_to_all(rank, outgoing, pair_len);
    const auto via_flat = rank.all_to_all(outgoing);
    ASSERT_EQ(via_hier.size(), via_flat.size());
    for (std::size_t s = 0; s < via_flat.size(); ++s) {
      EXPECT_EQ(via_hier[s], via_flat[s]) << "source " << s;
    }
  });
}

TEST(HierarchicalComm, PerLevelByteAccountingIsExact) {
  // Replay the schedule by hand for a 2-node/4-rank cluster with known
  // bundle sizes and demand the cluster's per-level counters match to the
  // byte: own-node multicast + non-leader gather + one inter message per
  // ordered node pair + leader redistribution.
  const Topology topo = Topology::grouped(4, 2);
  const int nodes = topo.nodes();
  const auto len = [nodes](int src, int dst_node) {
    return bundle_len(src, dst_node, nodes);
  };
  SimCluster cluster(topo);
  cluster.run([&](Rank& rank) {
    const int me = rank.id();
    std::vector<std::vector<double>> outgoing(
        static_cast<std::size_t>(nodes));
    for (int d = 0; d < nodes; ++d) {
      outgoing[static_cast<std::size_t>(d)].assign(len(me, d), 1.0);
    }
    (void)node_multicast_exchange(rank, outgoing, len);
  });

  std::size_t intra = 0, inter = 0, intra_msgs = 0, inter_msgs = 0;
  for (int me = 0; me < topo.ranks(); ++me) {
    const int my_node = topo.node_of(me);
    const auto members = topo.members(my_node);
    const std::size_t peers = members.size() - 1;
    intra += peers * len(me, my_node);  // own-node multicast
    intra_msgs += peers;
    if (!topo.is_leader(me)) {  // gather to leader
      for (int d = 0; d < nodes; ++d) {
        if (d != my_node) intra += len(me, d);
      }
      intra_msgs += 1;
      continue;
    }
    for (int d = 0; d < nodes; ++d) {  // leader: inter + redistribution
      if (d == my_node) continue;
      for (const int q : members) inter += len(q, d);
      inter_msgs += 1;
      std::size_t inbound = 0;
      for (const int q : topo.members(d)) inbound += len(q, my_node);
      intra += peers * inbound;
      intra_msgs += peers;
    }
  }
  const auto& s = cluster.stats();
  EXPECT_EQ(s.intra_bytes_sent.load(), intra * sizeof(double));
  EXPECT_EQ(s.inter_bytes_sent.load(), inter * sizeof(double));
  EXPECT_EQ(s.intra_messages.load(), intra_msgs);
  EXPECT_EQ(s.inter_messages.load(), inter_msgs);
  EXPECT_EQ(s.bytes_sent.load(), (intra + inter) * sizeof(double));
  EXPECT_EQ(s.bytes_received.load(), s.bytes_sent.load());
  EXPECT_EQ(s.messages_received.load(), s.messages.load());
}

TEST(HierarchicalComm, OracleMismatchThrows) {
  const Topology topo = Topology::grouped(4, 2);
  SimCluster cluster(topo);
  EXPECT_THROW(
      cluster.run([&](Rank& rank) {
        std::vector<std::vector<double>> outgoing(
            static_cast<std::size_t>(topo.nodes()),
            std::vector<double>(3, 0.0));
        // Oracle disagrees with the actual bundle sizes.
        (void)node_multicast_exchange(rank, outgoing,
                                      [](int, int) { return std::size_t{2}; });
      }),
      InvalidArgument);
}

class LowCommPipelineHierarchical : public ::testing::Test {
 protected:
  static core::LowCommParams params(i64 k, i64 rate) {
    core::LowCommParams p;
    p.subdomain = k;
    p.far_rate = rate;
    p.uniform_rate = rate;
    p.batch = 256;
    return p;
  }

  static RealField random_field(const Grid3& g, std::uint64_t seed) {
    RealField f(g);
    SplitMix64 rng(seed);
    for (auto& v : f.span()) v = rng.uniform(-1.0, 1.0);
    return f;
  }
};

TEST_F(LowCommPipelineHierarchical, RouteMatchesFlatExchange) {
  const Grid3 g = Grid3::cube(32);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
  const RealField input = random_field(g, 42);
  const auto p = params(16, 2);
  const Topology topo = Topology::grouped(4, 2);

  SimCluster flat_cluster(topo);
  const RealField flat = core::distributed_lowcomm_convolve(
      flat_cluster, input, g, kernel, p, core::ExchangeRoute::kFlat);
  SimCluster hier_cluster(topo);
  const RealField hier = core::distributed_lowcomm_convolve(
      hier_cluster, input, g, kernel, p, core::ExchangeRoute::kHierarchical);

  const auto fs = flat.span();
  const auto hs = hier.span();
  ASSERT_EQ(fs.size(), hs.size());
  for (std::size_t i = 0; i < fs.size(); ++i) {
    ASSERT_NEAR(fs[i], hs[i], 1e-12) << "at " << i;
  }
}

TEST_F(LowCommPipelineHierarchical, AutoRoutePicksTopology) {
  // kAuto on a grouped cluster must take the hierarchical schedule (visible
  // in the collapsed message count) and still equal the flat-route result.
  const Grid3 g = Grid3::cube(32);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
  const RealField input = random_field(g, 7);
  const auto p = params(16, 2);

  SimCluster grouped(Topology::grouped(4, 2));
  const RealField auto_routed =
      core::distributed_lowcomm_convolve(grouped, input, g, kernel, p);
  const comm::LevelTraffic want = core::lowcomm_exchange_traffic(
      core::LowCommConvolution(g, kernel, p), grouped.topology(),
      core::ExchangeRoute::kHierarchical);
  EXPECT_EQ(grouped.stats().messages.load(), want.total_messages());

  SimCluster flat_cluster(4);
  const RealField flat =
      core::distributed_lowcomm_convolve(flat_cluster, input, g, kernel, p);
  const auto as = auto_routed.span();
  const auto fs = flat.span();
  for (std::size_t i = 0; i < fs.size(); ++i) {
    ASSERT_NEAR(fs[i], as[i], 1e-12) << "at " << i;
  }
}

TEST_F(LowCommPipelineHierarchical, StaticTrafficMirrorsExecutedStats) {
  // The static per-level mirror must equal the executed per-level counters
  // byte for byte and message for message, on BOTH routes — that is the
  // header-free-framing guarantee (the wire carries no metadata, so the
  // whole schedule is computable offline).
  const Grid3 g = Grid3::cube(32);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
  const RealField input = random_field(g, 3);
  const auto p = params(16, 2);
  const Topology topo = Topology::grouped(4, 2);
  const core::LowCommConvolution engine(g, kernel, p);

  for (const auto route :
       {core::ExchangeRoute::kFlat, core::ExchangeRoute::kHierarchical}) {
    SimCluster cluster(topo);
    (void)core::distributed_lowcomm_convolve(cluster, input, g, kernel, p,
                                             route);
    const comm::LevelTraffic want =
        core::lowcomm_exchange_traffic(engine, topo, route);
    const comm::LevelTraffic got = cluster.stats().level_traffic();
    EXPECT_EQ(got.intra_bytes, want.intra_bytes);
    EXPECT_EQ(got.inter_bytes, want.inter_bytes);
    EXPECT_EQ(got.intra_messages, want.intra_messages);
    EXPECT_EQ(got.inter_messages, want.inter_messages);
  }
}

TEST_F(LowCommPipelineHierarchical, GroupedRouteCutsInterNodeBytes) {
  // The acceptance shape of the PR at test scale: with coarse cells
  // straddling several ranks' regions, packing per NODE dedups the
  // inter-node volume strictly below the flat route's. 12 ranks over the 64
  // sub-domains leave uneven Morton runs that straddle octants — under the
  // blocked assignment an octant-aligned rank count (e.g. 8) gives every
  // rank a cell-aligned cube, node-local sharing vanishes, and the two
  // routes tie on bytes (locality already captured the dedup win).
  const Grid3 g = Grid3::cube(64);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
  const auto p = params(16, 4);
  const core::LowCommConvolution engine(g, kernel, p);
  const Topology topo = Topology::grouped(12, 4);

  const auto flat =
      core::lowcomm_exchange_traffic(engine, topo, core::ExchangeRoute::kFlat);
  const auto hier = core::lowcomm_exchange_traffic(
      engine, topo, core::ExchangeRoute::kHierarchical);
  EXPECT_LT(hier.inter_bytes, flat.inter_bytes);
  EXPECT_LT(hier.inter_messages, flat.inter_messages);
  // Payload conservation: whatever the route, every (cell, destination
  // rank) pair still gets delivered — the flat wire volume lower-bounds
  // nothing about the hierarchical intra level, but the inter level can
  // only shrink (never grow) under node-union packing.
  EXPECT_LE(hier.inter_bytes, flat.inter_bytes);
}

// Wire-codec behaviour of the full distributed pipeline (DESIGN.md §17):
// route equivalence, static-mirror byte-exactness, and run-to-run
// determinism must all hold under every codec, not just fp64 passthrough.
class LowCommPipelineWire : public LowCommPipelineHierarchical {};

TEST_F(LowCommPipelineWire, FlatAndHierarchicalBitIdenticalUnderEveryCodec) {
  // Encoding is pure per cell and every contribution (own and remote) is
  // codec round-tripped on both routes, so flat and hierarchical must stay
  // BIT-identical under lossy codecs too — not merely close.
  const Grid3 g = Grid3::cube(32);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
  const RealField input = random_field(g, 21);
  const Topology topo = Topology::grouped(4, 2);

  for (const WireCodec codec : kAllWireCodecs) {
    auto p = params(16, 2);
    p.wire = codec;
    SimCluster flat_cluster(topo);
    const RealField flat = core::distributed_lowcomm_convolve(
        flat_cluster, input, g, kernel, p, core::ExchangeRoute::kFlat);
    SimCluster hier_cluster(topo);
    const RealField hier = core::distributed_lowcomm_convolve(
        hier_cluster, input, g, kernel, p, core::ExchangeRoute::kHierarchical);
    const auto fs = flat.span();
    const auto hs = hier.span();
    ASSERT_EQ(fs.size(), hs.size());
    for (std::size_t i = 0; i < fs.size(); ++i) {
      ASSERT_EQ(fs[i], hs[i]) << codec_name(codec) << " at " << i;
    }
  }
}

TEST_F(LowCommPipelineWire, StaticMirrorMatchesExecutedStatsUnderEveryCodec) {
  // The header-free framing contract extended to encoded payloads: the
  // static mirror must equal the executed per-level counters byte for byte
  // for every codec on both routes.
  const Grid3 g = Grid3::cube(32);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
  const RealField input = random_field(g, 22);
  const Topology topo = Topology::grouped(4, 2);

  for (const WireCodec codec : kAllWireCodecs) {
    auto p = params(16, 2);
    p.wire = codec;
    const core::LowCommConvolution engine(g, kernel, p);
    for (const auto route :
         {core::ExchangeRoute::kFlat, core::ExchangeRoute::kHierarchical}) {
      SimCluster cluster(topo);
      (void)core::distributed_lowcomm_convolve(cluster, input, g, kernel, p,
                                               route);
      const comm::LevelTraffic want =
          core::lowcomm_exchange_traffic(engine, topo, route);
      const comm::LevelTraffic got = cluster.stats().level_traffic();
      EXPECT_EQ(got.intra_bytes, want.intra_bytes) << codec_name(codec);
      EXPECT_EQ(got.inter_bytes, want.inter_bytes) << codec_name(codec);
      EXPECT_EQ(got.intra_messages, want.intra_messages) << codec_name(codec);
      EXPECT_EQ(got.inter_messages, want.inter_messages) << codec_name(codec);
    }
  }
}

TEST_F(LowCommPipelineWire, ExchangeBytesOracleMatchesFlatRunUnderQ16) {
  // lowcomm_exchange_bytes is the flat-topology wire-byte oracle; under a
  // codec it must still equal what a flat cluster actually records.
  const Grid3 g = Grid3::cube(32);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
  const RealField input = random_field(g, 23);
  auto p = params(16, 2);
  p.wire = WireCodec::kQ16;
  const core::LowCommConvolution engine(g, kernel, p);

  SimCluster cluster(Topology::flat(4));
  (void)core::distributed_lowcomm_convolve(cluster, input, g, kernel, p,
                                           core::ExchangeRoute::kFlat);
  EXPECT_EQ(cluster.stats().bytes_sent.load(),
            core::lowcomm_exchange_bytes(engine, 4));

  // And the 2-byte codec must actually cut the volume vs fp64: ≥2× fewer
  // wire bytes even with the per-cell scale headers.
  auto p_off = params(16, 2);
  p_off.wire = WireCodec::kOff;
  const core::LowCommConvolution engine_off(g, kernel, p_off);
  EXPECT_GE(core::lowcomm_exchange_bytes(engine_off, 4),
            2 * core::lowcomm_exchange_bytes(engine, 4));
}

TEST_F(LowCommPipelineWire, RepeatedRunsBitIdenticalUnderQ16) {
  // Decode→accumulate must stay bit-identical across repeated runs whatever
  // the thread interleaving (slot-based accumulation ordering, PR-6): the
  // codec adds per-cell encode/decode but no order-dependent arithmetic.
  const Grid3 g = Grid3::cube(32);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
  const RealField input = random_field(g, 24);
  auto p = params(16, 2);
  p.wire = WireCodec::kQ16;
  const Topology topo = Topology::grouped(4, 2);

  SimCluster first(topo);
  const RealField reference =
      core::distributed_lowcomm_convolve(first, input, g, kernel, p);
  for (int run = 1; run < 4; ++run) {
    SimCluster cluster(topo);
    const RealField again =
        core::distributed_lowcomm_convolve(cluster, input, g, kernel, p);
    const auto rs = reference.span();
    const auto as = again.span();
    ASSERT_EQ(rs.size(), as.size());
    for (std::size_t i = 0; i < rs.size(); ++i) {
      ASSERT_EQ(rs[i], as[i]) << "run " << run << " at " << i;
    }
  }
}

TEST_F(LowCommPipelineWire, LossyCodecsStayCloseToOff) {
  // End-to-end accuracy: the distributed result under each lossy codec must
  // stay within its analytic error scale of the bit-exact off result.
  const Grid3 g = Grid3::cube(32);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
  const RealField input = random_field(g, 25);
  const Topology topo = Topology::grouped(4, 2);

  auto p = params(16, 2);
  p.wire = WireCodec::kOff;
  SimCluster off_cluster(topo);
  const RealField off = core::distributed_lowcomm_convolve(
      off_cluster, input, g, kernel, p);

  for (const WireCodec codec :
       {WireCodec::kFp32, WireCodec::kFp16, WireCodec::kBf16,
        WireCodec::kQ16}) {
    p.wire = codec;
    SimCluster cluster(topo);
    const RealField got =
        core::distributed_lowcomm_convolve(cluster, input, g, kernel, p);
    const double err = relative_l2_error(got.span(), off.span());
    // codec_rel_error is the calibrated planner bound; the measured
    // end-to-end deviation must come in below it with margin to spare.
    EXPECT_LE(err, codec_rel_error(codec)) << codec_name(codec);
    EXPECT_GT(err, 0.0) << codec_name(codec);  // lossy codecs really quantise
  }
}

TEST(CostModelHierarchical, PredictedTimesSplitByLevel) {
  HierarchicalLinkModel links;
  links.intra = {1e-7, 1e-11};
  links.inter = {1e-6, 1e-10};
  LevelTraffic t;
  t.intra_bytes = 1000;
  t.inter_bytes = 500;
  t.intra_messages = 3;
  t.inter_messages = 2;
  const LevelTimes times = predict_exchange_times(t, links);
  EXPECT_DOUBLE_EQ(times.intra_seconds, 3 * 1e-7 + 1000 * 1e-11);
  EXPECT_DOUBLE_EQ(times.inter_seconds, 2 * 1e-6 + 500 * 1e-10);
  EXPECT_DOUBLE_EQ(times.total_seconds(),
                   times.intra_seconds + times.inter_seconds);
}

TEST(CostModelHierarchical, AnalyticModelsConserveVolumeAndShrinkInter) {
  const int p = 64;
  const double volume = 1.0e6;
  const auto flat1 = flat_exchange_traffic(p, 1, volume);
  EXPECT_EQ(flat1.intra_bytes, 0u);
  // Flat topology: everything inter, p(p-1) messages of V/(p-1) each.
  EXPECT_EQ(flat1.inter_messages, static_cast<std::size_t>(p * (p - 1)));
  EXPECT_NEAR(static_cast<double>(flat1.inter_bytes),
              static_cast<double>(p) * volume, 64.0);

  for (const int g : {2, 8, 32}) {
    const auto flat = flat_exchange_traffic(p, g, volume);
    const auto lo = hierarchical_exchange_traffic(p, g, volume, 1.0);
    const auto hi = hierarchical_exchange_traffic(
        p, g, volume, static_cast<double>(g));
    // Without overlap the inter level only re-routes (equal bytes, fewer
    // messages); with full overlap it shrinks by the dedup factor.
    EXPECT_NEAR(static_cast<double>(lo.inter_bytes),
                static_cast<double>(flat.inter_bytes), 64.0)
        << "g=" << g;
    EXPECT_LT(lo.inter_messages, flat.inter_messages) << "g=" << g;
    EXPECT_NEAR(static_cast<double>(hi.inter_bytes),
                static_cast<double>(flat.inter_bytes) / g, 64.0)
        << "g=" << g;
  }
  EXPECT_THROW(hierarchical_exchange_traffic(10, 4, 1.0, 1.0),
               InvalidArgument);
  EXPECT_THROW(hierarchical_exchange_traffic(8, 4, 1.0, 0.5),
               InvalidArgument);
}

}  // namespace
}  // namespace lc::comm
