// Unit and property tests for the 1D FFT substrate: radix-2, Bluestein,
// real transforms, pruned transforms — all validated against the direct DFT.
#include <gtest/gtest.h>

#include <complex>
#include <numbers>
#include <vector>

#include "common/rng.hpp"
#include "fft/dft_direct.hpp"
#include "fft/fft1d.hpp"
#include "fft/freq.hpp"
#include "fft/pruned.hpp"
#include "fft/real_fft.hpp"

namespace lc::fft {
namespace {

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return v;
}

double max_err(std::span<const cplx> a, std::span<const cplx> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(Pow2Helpers, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1000));
}

TEST(Pow2Helpers, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Freq, SignedFrequency) {
  EXPECT_EQ(signed_frequency(0, 8), 0);
  EXPECT_EQ(signed_frequency(3, 8), 3);
  EXPECT_EQ(signed_frequency(4, 8), 4);  // Nyquist kept positive
  EXPECT_EQ(signed_frequency(5, 8), -3);
  EXPECT_EQ(signed_frequency(7, 8), -1);
}

TEST(Freq, FrequencyVector) {
  const Grid3 g{8, 8, 8};
  const Freq3 f = frequency_vector({7, 1, 4}, g);
  EXPECT_DOUBLE_EQ(f.x, -1.0);
  EXPECT_DOUBLE_EQ(f.y, 1.0);
  EXPECT_DOUBLE_EQ(f.z, 4.0);
  EXPECT_DOUBLE_EQ(f.norm_sq(), 1.0 + 1.0 + 16.0);
}

// --- Parameterized forward/inverse correctness across lengths ------------

class Fft1DLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Fft1DLengths, ForwardMatchesDirectDft) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 100 + n);
  std::vector<cplx> want(n);
  dft_direct_forward(x, want);

  std::vector<cplx> got = x;
  Fft1D plan(n);
  plan.forward(got);
  EXPECT_LT(max_err(got, want), 1e-9 * static_cast<double>(n)) << "n=" << n;
}

TEST_P(Fft1DLengths, InverseMatchesDirectDft) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 200 + n);
  std::vector<cplx> want(n);
  dft_direct_inverse(x, want);

  std::vector<cplx> got = x;
  Fft1D plan(n);
  plan.inverse(got);
  EXPECT_LT(max_err(got, want), 1e-9 * static_cast<double>(n)) << "n=" << n;
}

TEST_P(Fft1DLengths, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 300 + n);
  std::vector<cplx> y = x;
  Fft1D plan(n);
  FftWorkspace ws;
  plan.forward(y, ws);
  plan.inverse(y, ws);
  EXPECT_LT(max_err(y, x), 1e-10 * static_cast<double>(n)) << "n=" << n;
}

TEST_P(Fft1DLengths, ParsevalHolds) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 400 + n);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  Fft1D plan(n);
  plan.forward(x);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-9 * time_energy * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(AllLengths, Fft1DLengths,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 30,
                                           32, 64, 100, 128, 243, 256, 1000,
                                           1024));

// --- Transform properties -------------------------------------------------

TEST(Fft1D, LinearityProperty) {
  const std::size_t n = 64;
  const auto x = random_signal(n, 1);
  const auto y = random_signal(n, 2);
  const cplx a{1.5, -0.5};
  const cplx b{-2.0, 0.25};

  Fft1D plan(n);
  std::vector<cplx> combo(n), fx = x, fy = y;
  for (std::size_t i = 0; i < n; ++i) combo[i] = a * x[i] + b * y[i];
  plan.forward(combo);
  plan.forward(fx);
  plan.forward(fy);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(combo[i] - (a * fx[i] + b * fy[i])), 1e-10);
  }
}

TEST(Fft1D, ImpulseGivesFlatSpectrum) {
  const std::size_t n = 32;
  std::vector<cplx> x(n, cplx{0.0, 0.0});
  x[0] = cplx{1.0, 0.0};
  Fft1D plan(n);
  plan.forward(x);
  for (const auto& v : x) EXPECT_LT(std::abs(v - cplx{1.0, 0.0}), 1e-12);
}

TEST(Fft1D, ShiftTheorem) {
  const std::size_t n = 64;
  const std::size_t shift = 5;
  const auto x = random_signal(n, 77);
  std::vector<cplx> shifted(n);
  for (std::size_t i = 0; i < n; ++i) shifted[(i + shift) % n] = x[i];

  Fft1D plan(n);
  std::vector<cplx> fx = x, fs = shifted;
  plan.forward(fx);
  plan.forward(fs);
  for (std::size_t k = 0; k < n; ++k) {
    const double phase = -2.0 * std::numbers::pi *
                         static_cast<double>(k * shift % n) / static_cast<double>(n);
    EXPECT_LT(std::abs(fs[k] - fx[k] * std::polar(1.0, phase)), 1e-9);
  }
}

TEST(Fft1D, WrongBufferSizeThrows) {
  Fft1D plan(16);
  std::vector<cplx> bad(15);
  EXPECT_THROW(plan.forward(bad), InvalidArgument);
}

TEST(Fft1D, StridedMatchesContiguous) {
  const std::size_t n = 32;
  const std::size_t pencils = 5;
  const std::size_t stride = 7;
  // Layout: element i of pencil p at buf[p + i*stride*pencils]? Use
  // elem_stride = pencils (interleaved pencils), pencil_stride = 1.
  std::vector<cplx> interleaved(n * pencils);
  std::vector<std::vector<cplx>> separate(pencils);
  SplitMix64 rng(5);
  for (std::size_t p = 0; p < pencils; ++p) {
    separate[p].resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const cplx v{rng.uniform(-1, 1), rng.uniform(-1, 1)};
      separate[p][i] = v;
      interleaved[i * pencils + p] = v;
    }
  }
  (void)stride;
  Fft1D plan(n);
  FftWorkspace ws;
  plan.forward_strided(interleaved.data(), pencils, 1, pencils, ws);
  for (std::size_t p = 0; p < pencils; ++p) {
    plan.forward(separate[p], ws);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LT(std::abs(interleaved[i * pencils + p] - separate[p][i]), 1e-10);
    }
  }
}

TEST(Fft1D, InverseStridedRoundTrip) {
  const std::size_t n = 16;
  const std::size_t pencils = 3;
  auto data = random_signal(n * pencils, 9);
  const auto orig = data;
  Fft1D plan(n);
  FftWorkspace ws;
  plan.forward_strided(data.data(), pencils, 1, pencils, ws);
  plan.inverse_strided(data.data(), pencils, 1, pencils, ws);
  EXPECT_LT(max_err(data, orig), 1e-10);
}

// --- Real transforms -------------------------------------------------------

class RealFftLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RealFftLengths, ForwardMatchesComplexDft) {
  const std::size_t n = GetParam();
  SplitMix64 rng(n);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);

  std::vector<cplx> full(n), want(n);
  for (std::size_t i = 0; i < n; ++i) full[i] = cplx{x[i], 0.0};
  dft_direct_forward(full, want);

  RealFft1D plan(n);
  FftWorkspace ws;
  std::vector<cplx> got(plan.spectrum_size());
  plan.forward(x, got, ws);
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_LT(std::abs(got[k] - want[k]), 1e-9) << "n=" << n << " k=" << k;
  }
}

TEST_P(RealFftLengths, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  SplitMix64 rng(n * 3 + 1);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);

  RealFft1D plan(n);
  FftWorkspace ws;
  std::vector<cplx> spec(plan.spectrum_size());
  std::vector<double> back(n);
  plan.forward(x, spec, ws);
  plan.inverse(spec, back, ws);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], x[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(RealLengths, RealFftLengths,
                         ::testing::Values(2, 3, 4, 6, 8, 9, 16, 15, 32, 64,
                                           100, 128, 256));

TEST(RealFft, HermitianEdgeBinsAreReal) {
  const std::size_t n = 64;
  SplitMix64 rng(1234);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  RealFft1D plan(n);
  FftWorkspace ws;
  std::vector<cplx> spec(plan.spectrum_size());
  plan.forward(x, spec, ws);
  EXPECT_NEAR(spec[0].imag(), 0.0, 1e-12);
  EXPECT_NEAR(spec[n / 2].imag(), 0.0, 1e-12);
}

// --- Pruned transforms ------------------------------------------------------

TEST(Pruned, InputPrunedMatchesPaddedTransform) {
  const std::size_t n = 128;
  const std::size_t k = 16;
  const std::size_t offset = 40;
  const auto chunk = random_signal(k, 55);

  std::vector<cplx> padded(n, cplx{0.0, 0.0});
  std::copy(chunk.begin(), chunk.end(), padded.begin() + offset);
  Fft1D plan(n);
  FftWorkspace ws;
  std::vector<cplx> want = padded;
  plan.forward(want, ws);

  std::vector<cplx> got(n);
  input_pruned_forward(plan, chunk, offset, got, ws);
  EXPECT_LT(max_err(got, want), 1e-12);
}

TEST(Pruned, InputPrunedRejectsOverflow) {
  Fft1D plan(16);
  FftWorkspace ws;
  std::vector<cplx> chunk(8), out(16);
  EXPECT_THROW(input_pruned_forward(plan, chunk, 10, out, ws), InvalidArgument);
}

TEST(Pruned, OutputPrunedBothStrategiesMatchFullInverse) {
  const std::size_t n = 64;
  auto spec = random_signal(n, 31);
  Fft1D plan(n);
  FftWorkspace ws;
  std::vector<cplx> full = spec;
  plan.inverse(full, ws);

  const std::vector<std::size_t> wanted{0, 3, 17, 31, 63};
  std::vector<cplx> got_direct(wanted.size());
  std::vector<cplx> got_full(wanted.size());
  output_pruned_inverse(plan, spec, wanted, got_direct, ws, PruneStrategy::kDirect);
  output_pruned_inverse(plan, spec, wanted, got_full, ws, PruneStrategy::kFullTransform);
  for (std::size_t i = 0; i < wanted.size(); ++i) {
    EXPECT_LT(std::abs(got_direct[i] - full[wanted[i]]), 1e-9);
    EXPECT_LT(std::abs(got_full[i] - full[wanted[i]]), 1e-12);
  }
}

TEST(Pruned, AutoStrategyPicksDirectForTinySubsets) {
  // Pow2 lengths: the batched radix path makes the full inverse cheaper
  // than even a single direct output (measured, see direct_prune_profitable).
  EXPECT_FALSE(direct_prune_profitable(1024, 1));
  EXPECT_FALSE(direct_prune_profitable(1024, 4));
  EXPECT_FALSE(direct_prune_profitable(1024, 512));
  // Bluestein lengths pay ~4x per transform; 1-2 outputs still go direct.
  EXPECT_TRUE(direct_prune_profitable(1000, 1));
  EXPECT_TRUE(direct_prune_profitable(1000, 2));
  EXPECT_FALSE(direct_prune_profitable(1000, 4));
  EXPECT_FALSE(direct_prune_profitable(1, 0));
}

TEST(Pruned, OutputPrunedRejectsBadIndex) {
  Fft1D plan(8);
  FftWorkspace ws;
  std::vector<cplx> spec(8);
  const std::vector<std::size_t> wanted{9};
  std::vector<cplx> out(1);
  EXPECT_THROW(
      output_pruned_inverse(plan, spec, wanted, out, ws, PruneStrategy::kDirect),
      InvalidArgument);
}

}  // namespace
}  // namespace lc::fft
