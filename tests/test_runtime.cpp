// Tests for the serving runtime: BufferArena recycling, ResourceCache LRU
// and byte accounting, and the ConvolutionService end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "core/accumulator.hpp"
#include "green/gaussian.hpp"
#include "obs/metrics.hpp"
#include "runtime/service.hpp"

namespace lc::runtime {
namespace {

// --- BufferArena -------------------------------------------------------------

TEST(BufferArena, ReusesReleasedBuffers) {
  BufferArena arena;
  {
    auto lease = arena.acquire(1 << 20);
    EXPECT_EQ(lease.size_bytes(), std::size_t{1} << 20);
    lease.as<double>()[0] = 1.0;  // storage is writable
  }
  auto stats = arena.stats();
  EXPECT_EQ(stats.acquires, 1u);
  EXPECT_EQ(stats.reuses, 0u);
  EXPECT_GE(stats.retained_bytes, std::size_t{1} << 20);

  // Same-size request comes from the pool, not malloc.
  auto again = arena.acquire(1 << 20);
  stats = arena.stats();
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.bytes_reused, std::size_t{1} << 20);
  EXPECT_EQ(stats.retained_bytes, 0u);
  EXPECT_GE(stats.outstanding_bytes, std::size_t{1} << 20);
}

TEST(BufferArena, RejectsOversizedPoolMatches) {
  BufferArena arena;
  { auto big = arena.acquire(1 << 20); }
  // A tiny request must NOT be served by the 1 MB pooled buffer (capacity
  // more than 2x the request would waste the slab on a pencil).
  auto tiny = arena.acquire(1024);
  EXPECT_EQ(arena.stats().reuses, 0u);
}

TEST(BufferArena, RetainLimitFreesExcess) {
  BufferArena arena(/*retain_limit_bytes=*/4096);
  { auto lease = arena.acquire(1 << 20); }
  // Released buffer exceeded the retain budget: freed, not pooled.
  EXPECT_EQ(arena.stats().retained_bytes, 0u);
  { auto lease = arena.acquire(1024); }
  EXPECT_GE(arena.stats().retained_bytes, 1024u);
}

TEST(BufferArena, TrimFreesIdleBuffers) {
  BufferArena arena;
  { auto lease = arena.acquire(1 << 16); }
  EXPECT_GT(arena.stats().retained_bytes, 0u);
  arena.trim();
  EXPECT_EQ(arena.stats().retained_bytes, 0u);
}

TEST(BufferArena, UnpooledLeaseHasSameInterface) {
  auto lease = BufferArena::unpooled(4096);
  EXPECT_EQ(lease.size_bytes(), 4096u);
  auto span = lease.as<double>();
  EXPECT_EQ(span.size(), 4096u / sizeof(double));
  span[0] = 2.5;
  EXPECT_EQ(span[0], 2.5);
  lease.release();
  EXPECT_TRUE(lease.empty());
}

TEST(BufferArena, ByteHookMirrorsFootprintExactly) {
  // The hook sees every growth/shrink of (retained + outstanding); wired to
  // a DeviceContext it must balance to zero when the arena dies.
  device::DeviceContext ctx({"mirror", 1ull << 30});
  {
    BufferArena arena(/*retain_limit_bytes=*/1ull << 30,
                      [&ctx](std::ptrdiff_t delta) {
                        if (delta > 0) {
                          ctx.register_alloc(static_cast<std::size_t>(delta));
                        } else {
                          ctx.register_free(static_cast<std::size_t>(-delta));
                        }
                      });
    auto a = arena.acquire(1 << 20);
    EXPECT_GE(ctx.used_bytes(), std::size_t{1} << 20);
    a.release();
    // Pooled, still resident: the mirror keeps counting it.
    EXPECT_GE(ctx.used_bytes(), std::size_t{1} << 20);
    auto b = arena.acquire(1 << 20);  // reuse: no new device bytes
    const std::size_t during = ctx.used_bytes();
    b.release();
    EXPECT_EQ(ctx.used_bytes(), during);
    arena.trim();
    EXPECT_EQ(ctx.used_bytes(), 0u);
  }
  EXPECT_EQ(ctx.used_bytes(), 0u);
}

TEST(BufferArena, ConcurrentAcquireReleaseIsConsistent) {
  BufferArena arena;
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arena, t] {
      for (int i = 0; i < kIters; ++i) {
        auto lease = arena.acquire(
            static_cast<std::size_t>(1024 * (1 + (t + i) % 4)));
        lease.as<std::byte>()[0] = std::byte{1};
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto stats = arena.stats();
  EXPECT_EQ(stats.acquires, static_cast<std::size_t>(kThreads * kIters));
  EXPECT_EQ(stats.outstanding_bytes, 0u);
}

// --- ResourceCache -----------------------------------------------------------

std::shared_ptr<const int> make_int(int v) {
  return std::make_shared<const int>(v);
}

TEST(ResourceCache, BuildsOnceThenHits) {
  ResourceCache cache;
  int builds = 0;
  const std::function<std::shared_ptr<const int>()> build = [&] {
    ++builds;
    return make_int(7);
  };
  auto a = cache.get_or_build<int>("k", 100, build);
  auto b = cache.get_or_build<int>("k", 100, build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(*a, 7);
  EXPECT_EQ(a.get(), b.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 100u);
}

TEST(ResourceCache, EvictsLeastRecentlyUsedFirst) {
  ResourceCache::Config cfg;
  cfg.byte_budget = 300;
  ResourceCache cache(cfg);
  (void)cache.get_or_build<int>("a", 100, [] { return make_int(1); });
  (void)cache.get_or_build<int>("b", 100, [] { return make_int(2); });
  (void)cache.get_or_build<int>("c", 100, [] { return make_int(3); });
  // Touch "a" so "b" becomes the coldest entry.
  EXPECT_NE(cache.peek("a"), nullptr);
  // Inserting "d" must evict exactly "b".
  (void)cache.get_or_build<int>("d", 100, [] { return make_int(4); });
  EXPECT_NE(cache.peek("a"), nullptr);
  EXPECT_EQ(cache.peek("b"), nullptr);
  EXPECT_NE(cache.peek("c"), nullptr);
  EXPECT_NE(cache.peek("d"), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.bytes, 300u);
  EXPECT_EQ(stats.entries, 3u);
}

TEST(ResourceCache, OversizedEntriesAreServedUncached) {
  ResourceCache::Config cfg;
  cfg.byte_budget = 100;
  ResourceCache cache(cfg);
  int builds = 0;
  const std::function<std::shared_ptr<const int>()> build = [&] {
    ++builds;
    return make_int(9);
  };
  auto a = cache.get_or_build<int>("big", 1000, build);
  auto b = cache.get_or_build<int>("big", 1000, build);
  EXPECT_EQ(*a, 9);
  EXPECT_EQ(builds, 2);  // never retained, so built per call
  const auto stats = cache.stats();
  EXPECT_EQ(stats.uncacheable, 2u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(ResourceCache, MirrorsBytesIntoDeviceExactly) {
  device::DeviceContext ctx({"cache-mirror", 1ull << 20});
  ResourceCache::Config cfg;
  cfg.byte_budget = 300;
  cfg.device = &ctx;
  {
    ResourceCache cache(cfg);
    (void)cache.get_or_build<int>("a", 120, [] { return make_int(1); });
    (void)cache.get_or_build<int>("b", 130, [] { return make_int(2); });
    EXPECT_EQ(ctx.used_bytes(), 250u);
    // "c" forces "a" out: 250 - 120 + 100 = 230.
    (void)cache.get_or_build<int>("c", 100, [] { return make_int(3); });
    EXPECT_EQ(ctx.used_bytes(), 230u);
    EXPECT_EQ(ctx.used_bytes(), cache.stats().bytes);
    cache.clear();
    EXPECT_EQ(ctx.used_bytes(), 0u);
  }
  EXPECT_EQ(ctx.used_bytes(), 0u);
}

TEST(ResourceCache, ConcurrentMissesBuildEachKeyOnce) {
  ResourceCache cache;
  constexpr int kKeys = 8;
  constexpr int kThreads = 8;
  std::atomic<int> builds{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &builds] {
      for (int k = 0; k < kKeys; ++k) {
        auto v = cache.get_or_build<int>(
            "key" + std::to_string(k), 10,
            [&builds, k]() -> std::shared_ptr<const int> {
              builds.fetch_add(1);
              return make_int(k);
            });
        EXPECT_EQ(*v, k);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(builds.load(), kKeys);
}

// --- ConvolutionService ------------------------------------------------------

RealField test_input(const Grid3& g) {
  RealField f(g, 0.0);
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = std::sin(0.37 * static_cast<double>(i)) +
           0.1 * static_cast<double>(i % 17);
  }
  return f;
}

core::LowCommParams small_params() {
  core::LowCommParams p;
  p.subdomain = 8;
  p.far_rate = 4;
  p.dense_halo = 2;
  p.batch = 256;
  return p;
}

ConvolutionRequest small_request(const Grid3& g) {
  ConvolutionRequest req;
  req.input = test_input(g);
  req.kernel = std::make_shared<green::GaussianSpectrum>(g, 1.5);
  req.params = small_params();
  return req;
}

TEST(ConvolutionService, MatchesDirectEngineAndHitsResultCache) {
  const Grid3 g = Grid3::cube(32);
  ConvolutionService service;

  // Ground truth from a directly driven engine.
  auto req = small_request(g);
  core::LocalConvolverConfig cfg;
  cfg.batch = req.params.batch;
  cfg.pool = nullptr;
  const core::LowCommConvolution direct(g, req.kernel, req.params, cfg);
  const core::LowCommResult expected = direct.convolve(req.input);

  const ConvolutionResponse cold = service.run(small_request(g));
  EXPECT_FALSE(cold.stats.result_cache_hit);
  EXPECT_EQ(cold.result.output.grid(), g);
  EXPECT_EQ(cold.result.compressed_samples, expected.compressed_samples);
  for (std::size_t i = 0; i < expected.output.size(); ++i) {
    ASSERT_DOUBLE_EQ(cold.result.output[i], expected.output[i]) << i;
  }

  const ConvolutionResponse warm = service.run(small_request(g));
  EXPECT_TRUE(warm.stats.result_cache_hit);
  for (std::size_t i = 0; i < expected.output.size(); ++i) {
    ASSERT_DOUBLE_EQ(warm.result.output[i], expected.output[i]) << i;
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.result_hits, 1u);
  EXPECT_GE(stats.waves, 1u);
}

TEST(ConvolutionService, EngineCacheHitWithoutResultCache) {
  const Grid3 g = Grid3::cube(32);
  ServiceConfig cfg;
  cfg.cache_results = false;
  ConvolutionService service(cfg);

  const ConvolutionResponse first = service.run(small_request(g));
  EXPECT_FALSE(first.stats.engine_cache_hit);
  const ConvolutionResponse second = service.run(small_request(g));
  EXPECT_TRUE(second.stats.engine_cache_hit);
  EXPECT_FALSE(second.stats.result_cache_hit);
  for (std::size_t i = 0; i < first.result.output.size(); ++i) {
    ASSERT_DOUBLE_EQ(second.result.output[i], first.result.output[i]) << i;
  }
  EXPECT_EQ(service.stats().result_hits, 0u);
}

TEST(ConvolutionService, HermitianKernelCachesHalfSpectrum) {
  const Grid3 g = Grid3::cube(32);
  auto& saved =
      obs::Registry::global().counter("spectrum.half_bytes_saved");

  ServiceConfig cfg;
  cfg.materialize_spectra = true;

  // LC_REAL on (unset): the Gaussian kernel is Hermitian, so the engine
  // materialises the half spectrum and books the bytes it saved.
  const auto before_on = saved.value();
  ConvolutionService on_service(cfg);
  const ConvolutionResponse on = on_service.run(small_request(g));
  EXPECT_GT(saved.value(), before_on);

  // LC_REAL=off: dense spectrum, counter untouched.
  ASSERT_EQ(setenv("LC_REAL", "off", 1), 0);
  ConvolutionService off_service(cfg);
  const auto before_off = saved.value();
  const ConvolutionResponse off = off_service.run(small_request(g));
  ASSERT_EQ(unsetenv("LC_REAL"), 0);
  EXPECT_EQ(saved.value(), before_off);

  // Both dispatches produce the same convolution (real-path tolerance).
  ASSERT_EQ(on.result.output.size(), off.result.output.size());
  for (std::size_t i = 0; i < on.result.output.size(); ++i) {
    ASSERT_NEAR(on.result.output[i], off.result.output[i], 1e-9) << i;
  }
}

TEST(ConvolutionService, SubdomainScopedRequestReturnsTile) {
  const Grid3 g = Grid3::cube(32);
  auto req = small_request(g);

  core::LocalConvolverConfig cfg;
  cfg.batch = req.params.batch;
  cfg.pool = nullptr;
  const core::LowCommConvolution direct(g, req.kernel, req.params, cfg);
  const std::size_t d = 3;
  std::vector<sampling::CompressedField> one;
  one.push_back(direct.convolve_one(req.input, d));
  const Box3& box = direct.decomposition().subdomain(d);
  const RealField expected =
      core::accumulate_region(one, box, req.params.interpolation);

  ConvolutionService service;
  auto scoped = small_request(g);
  scoped.subdomain = d;
  const ConvolutionResponse response = service.run(std::move(scoped));
  EXPECT_EQ(response.stats.subdomains, 1u);
  EXPECT_EQ(response.result.output.grid(), box.extents());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_DOUBLE_EQ(response.result.output[i], expected[i]) << i;
  }
}

TEST(ConvolutionService, QueueFullRejectsDeterministically) {
  const Grid3 g = Grid3::cube(16);
  ServiceConfig cfg;
  cfg.queue_capacity = 2;
  cfg.start_paused = true;
  ConvolutionService service(cfg);

  auto p = small_params();
  auto make = [&] {
    ConvolutionRequest req;
    req.input = test_input(g);
    req.kernel = std::make_shared<green::GaussianSpectrum>(g, 1.5);
    req.params = p;
    return req;
  };
  auto f1 = service.submit(make());
  auto f2 = service.submit(make());
  EXPECT_THROW((void)service.submit(make()), QueueFull);
  EXPECT_EQ(service.stats().rejected_queue_full, 1u);

  service.resume();
  EXPECT_EQ(f1.get().result.output.grid(), g);
  EXPECT_EQ(f2.get().result.output.grid(), g);
}

TEST(ConvolutionService, QueueDeadlineRejectsStaleRequests) {
  const Grid3 g = Grid3::cube(16);
  ServiceConfig cfg;
  cfg.start_paused = true;
  ConvolutionService service(cfg);

  ConvolutionRequest req;
  req.input = test_input(g);
  req.kernel = std::make_shared<green::GaussianSpectrum>(g, 1.5);
  req.params = small_params();
  req.queue_deadline_seconds = 0.01;
  auto future = service.submit(std::move(req));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.resume();
  EXPECT_THROW((void)future.get(), DeadlineExceeded);
  EXPECT_EQ(service.stats().rejected_deadline, 1u);
}

TEST(ConvolutionService, InvalidRequestFailsViaFuture) {
  const Grid3 g = Grid3::cube(16);
  ConvolutionService service;
  ConvolutionRequest req;
  req.input = test_input(g);
  req.kernel = std::make_shared<green::GaussianSpectrum>(g, 1.5);
  req.params = small_params();
  req.subdomain = 1000;  // out of range for a 16³ grid of 8³ sub-domains
  auto future = service.submit(std::move(req));
  EXPECT_THROW((void)future.get(), InvalidArgument);
  EXPECT_EQ(service.stats().failed, 1u);
}

TEST(ConvolutionService, ClearCachesForcesColdRebuild) {
  const Grid3 g = Grid3::cube(32);
  ConvolutionService service;
  (void)service.run(small_request(g));
  service.clear_caches();
  EXPECT_EQ(service.stats().cache.entries, 0u);
  const ConvolutionResponse again = service.run(small_request(g));
  EXPECT_FALSE(again.stats.result_cache_hit);
  EXPECT_FALSE(again.stats.engine_cache_hit);
}

TEST(ConvolutionService, StatsTableRendersEveryCounter) {
  const Grid3 g = Grid3::cube(16);
  ConvolutionService service;
  (void)service.run(small_request(g));
  const std::string rendered = service.stats_table().str();
  EXPECT_NE(rendered.find("submitted"), std::string::npos);
  EXPECT_NE(rendered.find("result-cache hits"), std::string::npos);
  EXPECT_NE(rendered.find("latency p95"), std::string::npos);
}

TEST(ConvolutionService, WaveBatchesQueuedRequests) {
  const Grid3 g = Grid3::cube(16);
  ServiceConfig cfg;
  cfg.start_paused = true;
  cfg.cache_results = false;  // force real work for every request
  ConvolutionService service(cfg);
  std::vector<std::future<ConvolutionResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(service.submit(small_request(g)));
  }
  service.resume();
  for (auto& f : futures) {
    EXPECT_EQ(f.get().result.output.grid(), g);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 4u);
  // All four requests fit one wave (max_wave default is 8), so the service
  // must have batched them instead of running four separate dispatches.
  EXPECT_LE(stats.waves, 2u);
  EXPECT_EQ(stats.wave_tasks, 4u * 8u);  // 16³ grid / 8³ sub-domains = 8 each
}

}  // namespace
}  // namespace lc::runtime
