// Tests for the simulated device and the memory model behind Tables 1/2/4.
#include <gtest/gtest.h>

#include "device/device.hpp"
#include "device/memory_model.hpp"

namespace lc::device {
namespace {

TEST(DeviceContext, TracksUsageAndPeak) {
  DeviceContext ctx({"test", 1000});
  ctx.register_alloc(400);
  EXPECT_EQ(ctx.used_bytes(), 400u);
  ctx.register_alloc(300);
  EXPECT_EQ(ctx.used_bytes(), 700u);
  EXPECT_EQ(ctx.peak_bytes(), 700u);
  ctx.register_free(300);
  EXPECT_EQ(ctx.used_bytes(), 400u);
  EXPECT_EQ(ctx.peak_bytes(), 700u);  // peak persists
  ctx.reset_peak();
  EXPECT_EQ(ctx.peak_bytes(), 400u);
}

TEST(DeviceContext, EnforcesCapacity) {
  DeviceContext ctx({"small", 100});
  ctx.register_alloc(80);
  EXPECT_THROW(ctx.register_alloc(21), ResourceExhausted);
  EXPECT_EQ(ctx.used_bytes(), 80u);  // failed alloc does not leak usage
  ctx.register_alloc(20);            // exactly fits
  EXPECT_EQ(ctx.used_bytes(), 100u);
}

TEST(DeviceBuffer, RaiiReturnsBytes) {
  DeviceContext ctx({"test", 1 << 20});
  {
    DeviceBuffer<double> buf(ctx, 1024);
    EXPECT_EQ(ctx.used_bytes(), 1024 * sizeof(double));
    EXPECT_EQ(buf.size(), 1024u);
    buf.data()[0] = 42.0;
    EXPECT_EQ(buf.span()[0], 42.0);
  }
  EXPECT_EQ(ctx.used_bytes(), 0u);
  EXPECT_EQ(ctx.peak_bytes(), 1024 * sizeof(double));
}

TEST(DeviceBuffer, MoveTransfersOwnership) {
  DeviceContext ctx({"test", 1 << 20});
  DeviceBuffer<double> a(ctx, 100);
  DeviceBuffer<double> b = std::move(a);
  EXPECT_EQ(ctx.used_bytes(), 100 * sizeof(double));
  b = DeviceBuffer<double>(ctx, 50);
  EXPECT_EQ(ctx.used_bytes(), 50 * sizeof(double));
}

TEST(DeviceSpec, PaperDevices) {
  EXPECT_EQ(DeviceSpec::v100_16gb().capacity_bytes, 16ull << 30);
  EXPECT_EQ(DeviceSpec::v100_32gb().capacity_bytes, 32ull << 30);
}

TEST(MemoryModel, Table1FormulasMatchPaperRows) {
  // Paper Table 1 values in GB (traditional = 8N³, ours = 8N²k).
  auto gb = [](std::size_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0);
  };
  EXPECT_DOUBLE_EQ(gb(traditional_fft_bytes(1024)), 8.0);
  EXPECT_DOUBLE_EQ(gb(traditional_fft_bytes(2048)), 64.0);
  EXPECT_DOUBLE_EQ(gb(traditional_fft_bytes(4096)), 512.0);
  EXPECT_DOUBLE_EQ(gb(traditional_fft_bytes(8192)), 4096.0);
  EXPECT_DOUBLE_EQ(gb(local_fft_slab_bytes(1024, 128)), 1.0);
  EXPECT_DOUBLE_EQ(gb(local_fft_slab_bytes(1024, 512)), 4.0);
  EXPECT_DOUBLE_EQ(gb(local_fft_slab_bytes(2048, 128)), 4.0);
  EXPECT_DOUBLE_EQ(gb(local_fft_slab_bytes(4096, 512)), 64.0);
  EXPECT_DOUBLE_EQ(gb(local_fft_slab_bytes(8192, 64)), 32.0);
  EXPECT_DOUBLE_EQ(gb(local_fft_slab_bytes(8192, 128)), 64.0);
}

TEST(MemoryModel, PipelinePlanComponentsAreConsistent) {
  const auto policy = sampling::SamplingPolicy::paper_default(32);
  // Complex-path pricing (real_path = false): the documented formulas.
  const PipelinePlan plan =
      plan_local_pipeline(256, 32, policy, 1024, /*real_path=*/false);
  EXPECT_EQ(plan.slab_bytes, 16u * 256 * 256 * 32);
  EXPECT_EQ(plan.chunk_bytes, 8u * 32 * 32 * 32);
  EXPECT_EQ(plan.pencil_bytes, 2u * 16 * 1024 * 256);
  EXPECT_GT(plan.payload_bytes, 8u * 32 * 32 * 32);  // at least the dense dom
  EXPECT_LT(plan.payload_bytes, 8u * 256 * 256 * 256);  // well below dense N³
  EXPECT_EQ(plan.actual_total(),
            plan.estimated_total() + plan.workspace_bytes);
  EXPECT_GT(plan.workspace_bytes, 0u);
}

TEST(MemoryModel, RealPathHalvesSlabAndStagingBytes) {
  const auto policy = sampling::SamplingPolicy::paper_default(32);
  const auto cplx_plan =
      plan_local_pipeline(256, 32, policy, 1024, /*real_path=*/false);
  const auto real_plan =
      plan_local_pipeline(256, 32, policy, 1024, /*real_path=*/true);
  // Half-spectrum planes hold (n/2+1)·n bins instead of n².
  EXPECT_EQ(real_plan.slab_bytes, 16u * 129 * 256 * 32);
  EXPECT_EQ(real_plan.staging_bytes,
            cplx_plan.staging_bytes / (256 * 256) * (129 * 256));
  // Pencils are full length-N z transforms on both paths.
  EXPECT_EQ(real_plan.pencil_bytes, cplx_plan.pencil_bytes);
  // Workspace gains the c2r store lane's N² real plane but still shrinks
  // overall (the dominant 2× slab term halves).
  EXPECT_LT(real_plan.workspace_bytes, cplx_plan.workspace_bytes);
  EXPECT_LT(real_plan.actual_total(), cplx_plan.actual_total());
}

TEST(MemoryModel, PlanScalesWithGridAndSubdomain) {
  const auto p32 = sampling::SamplingPolicy::paper_default(32);
  const auto p64 = sampling::SamplingPolicy::paper_default(64);
  const auto small = plan_local_pipeline(256, 32, p32, 1024);
  const auto bigger_k = plan_local_pipeline(256, 64, p64, 1024);
  const auto bigger_n = plan_local_pipeline(512, 32, p32, 1024);
  EXPECT_GT(bigger_k.actual_total(), small.actual_total());
  EXPECT_GT(bigger_n.actual_total(), small.actual_total());
}

TEST(MemoryModel, PaperScalePlanningIsFeasible) {
  // Planning at the paper's largest sizes must run without dense arrays.
  const auto policy = sampling::SamplingPolicy::paper_default(128);
  const PipelinePlan plan =
      plan_local_pipeline(8192, 128, policy, 32768, /*real_path=*/false);
  // Table 1: the slab alone is 64 GB at this shape.
  EXPECT_EQ(plan.slab_bytes, 16ull * 8192 * 8192 * 128);
}

TEST(MemoryModel, MaxAllowableKMatchesTable2Shape) {
  // Table 2 shape: allowable k grows with N at small N, then collapses at
  // N = 2048 (the N² slab term dominates); 2048 must still fit some k on
  // 32 GB (the paper's "8× more points than traditional cuFFT" result).
  const auto v16 = DeviceSpec::v100_16gb();
  const auto v32 = DeviceSpec::v100_32gb();
  const i64 k128 = max_allowable_k(128, v16, 512);
  const i64 k512 = max_allowable_k(512, v16, 1024);
  const i64 k1024 = max_allowable_k(1024, v32, 2048);
  const i64 k2048 = max_allowable_k(2048, v32, 4096);
  EXPECT_GE(k128, 64);
  EXPECT_GE(k512, 64);
  EXPECT_GT(k1024, 0);
  EXPECT_GT(k2048, 0);
  EXPECT_LT(k2048, k1024);  // the collapse at 2048
}

TEST(MemoryModel, RejectsBadShapes) {
  const auto policy = sampling::SamplingPolicy::paper_default(32);
  EXPECT_THROW((void)plan_local_pipeline(16, 32, policy, 64), InvalidArgument);
}

}  // namespace
}  // namespace lc::device
