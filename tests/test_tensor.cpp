// Unit tests for src/tensor: grids, boxes, fields, symmetric tensors.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/field.hpp"
#include "tensor/grid.hpp"
#include "tensor/sym_tensor.hpp"
#include "tensor/tensor_field.hpp"

namespace lc {
namespace {

TEST(Grid3, IndexRoundTrip) {
  const Grid3 g{4, 5, 6};
  std::size_t lin = 0;
  for (i64 z = 0; z < g.nz; ++z) {
    for (i64 y = 0; y < g.ny; ++y) {
      for (i64 x = 0; x < g.nx; ++x) {
        EXPECT_EQ(g.index(x, y, z), lin);
        EXPECT_EQ(g.unindex(lin), (Index3{x, y, z}));
        ++lin;
      }
    }
  }
  EXPECT_EQ(lin, g.size());
}

TEST(Grid3, XIsFastest) {
  const Grid3 g{8, 8, 8};
  EXPECT_EQ(g.index(1, 0, 0), g.index(0, 0, 0) + 1);
  EXPECT_EQ(g.index(0, 1, 0), g.index(0, 0, 0) + 8);
  EXPECT_EQ(g.index(0, 0, 1), g.index(0, 0, 0) + 64);
}

TEST(Grid3, Contains) {
  const Grid3 g{2, 3, 4};
  EXPECT_TRUE(g.contains({0, 0, 0}));
  EXPECT_TRUE(g.contains({1, 2, 3}));
  EXPECT_FALSE(g.contains({2, 0, 0}));
  EXPECT_FALSE(g.contains({0, -1, 0}));
}

TEST(Box3, VolumeAndEmpty) {
  const Box3 b{{1, 1, 1}, {3, 4, 5}};
  EXPECT_EQ(b.volume(), 2u * 3u * 4u);
  EXPECT_FALSE(b.empty());
  const Box3 e{{2, 2, 2}, {2, 5, 5}};
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.volume(), 0u);
}

TEST(Box3, Intersection) {
  const Box3 a{{0, 0, 0}, {4, 4, 4}};
  const Box3 b{{2, 2, 2}, {6, 6, 6}};
  const Box3 i = a.intersect(b);
  EXPECT_EQ(i, (Box3{{2, 2, 2}, {4, 4, 4}}));
  const Box3 far{{10, 10, 10}, {12, 12, 12}};
  EXPECT_TRUE(a.intersect(far).empty());
}

TEST(Box3, ContainsBox) {
  const Box3 a{{0, 0, 0}, {8, 8, 8}};
  EXPECT_TRUE(a.contains(Box3{{1, 1, 1}, {7, 7, 7}}));
  EXPECT_TRUE(a.contains(a));
  EXPECT_FALSE(a.contains(Box3{{1, 1, 1}, {9, 7, 7}}));
}

TEST(Box3, ChebyshevDistance) {
  const Box3 b{{4, 4, 4}, {8, 8, 8}};
  EXPECT_EQ(b.chebyshev_distance({5, 5, 5}), 0);
  EXPECT_EQ(b.chebyshev_distance({3, 5, 5}), 1);
  EXPECT_EQ(b.chebyshev_distance({10, 5, 5}), 3);
  EXPECT_EQ(b.chebyshev_distance({0, 0, 0}), 4);
  EXPECT_EQ(b.chebyshev_distance({10, 1, 5}), 3);
}

TEST(Box3, CubeAt) {
  const Box3 b = Box3::cube_at({2, 3, 4}, 5);
  EXPECT_EQ(b.extents(), (Grid3{5, 5, 5}));
  EXPECT_EQ(b.lo, (Index3{2, 3, 4}));
}

TEST(Box3, ForEachPointVisitsAllInOrder) {
  const Box3 b{{1, 1, 1}, {3, 3, 2}};
  std::vector<Index3> pts;
  for_each_point(b, [&](const Index3& p) { pts.push_back(p); });
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0], (Index3{1, 1, 1}));
  EXPECT_EQ(pts[1], (Index3{2, 1, 1}));
  EXPECT_EQ(pts[2], (Index3{1, 2, 1}));
}

TEST(Field, ExtractInsertRoundTrip) {
  const Grid3 g{8, 8, 8};
  RealField f(g);
  SplitMix64 rng(3);
  for (auto& v : f.span()) v = rng.uniform();

  const Box3 box{{2, 3, 1}, {6, 7, 5}};
  const RealField sub = f.extract(box);
  EXPECT_EQ(sub.grid(), box.extents());

  RealField g2(g, 0.0);
  g2.insert(sub, box.lo);
  for_each_point(box, [&](const Index3& p) { EXPECT_EQ(g2(p), f(p)); });
  // Outside the box stays zero.
  EXPECT_EQ(g2(0, 0, 0), 0.0);
}

TEST(Field, AccumulateAdds) {
  RealField f(Grid3{4, 4, 4}, 1.0);
  RealField s(Grid3{2, 2, 2}, 2.5);
  f.accumulate(s, {1, 1, 1});
  EXPECT_DOUBLE_EQ(f(1, 1, 1), 3.5);
  EXPECT_DOUBLE_EQ(f(2, 2, 2), 3.5);
  EXPECT_DOUBLE_EQ(f(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(f(3, 3, 3), 1.0);
}

TEST(Field, ExtractOutsideThrows) {
  RealField f(Grid3{4, 4, 4});
  EXPECT_THROW(f.extract(Box3{{2, 2, 2}, {5, 4, 4}}), InvalidArgument);
}

TEST(Field, Norms) {
  RealField f(Grid3{2, 1, 1});
  f(0, 0, 0) = 3.0;
  f(1, 0, 0) = 4.0;
  EXPECT_DOUBLE_EQ(l2_norm(f.span()), 5.0);
}

TEST(Field, RelativeL2Error) {
  RealField a(Grid3{2, 1, 1});
  RealField b(Grid3{2, 1, 1});
  a(0, 0, 0) = 1.1;
  a(1, 0, 0) = 2.0;
  b(0, 0, 0) = 1.0;
  b(1, 0, 0) = 2.0;
  const double err = relative_l2_error(a.span(), b.span());
  EXPECT_NEAR(err, 0.1 / std::sqrt(5.0), 1e-12);
  EXPECT_DOUBLE_EQ(relative_l2_error(a.span(), a.span()), 0.0);
}

TEST(Field, MaxAbsError) {
  RealField a(Grid3{3, 1, 1});
  RealField b(Grid3{3, 1, 1});
  a(1, 0, 0) = 2.0;
  b(1, 0, 0) = -1.0;
  EXPECT_DOUBLE_EQ(max_abs_error(a.span(), b.span()), 3.0);
}

TEST(Voigt, IndexPairsRoundTrip) {
  for (std::size_t a = 0; a < 6; ++a) {
    const auto [i, j] = voigt_pair(a);
    EXPECT_EQ(voigt_index(i, j), a);
    EXPECT_EQ(voigt_index(j, i), a);
  }
}

TEST(SymTensor2, SymmetricAccess) {
  Sym2 t;
  t.at(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(t.at(1, 0), 7.0);
  t.at(2, 1) = -2.0;
  EXPECT_DOUBLE_EQ(t.at(1, 2), -2.0);
}

TEST(SymTensor2, TraceAndSpherical) {
  const Sym2 s = Sym2::spherical(2.0);
  EXPECT_DOUBLE_EQ(s.trace(), 6.0);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 0.0);
}

TEST(SymTensor2, DdotCountsShearTwice) {
  Sym2 a;
  a.at(0, 1) = 1.0;  // a_xy = a_yx = 1
  EXPECT_DOUBLE_EQ(a.ddot(a), 2.0);
  Sym2 b;
  b.at(0, 0) = 1.0;
  EXPECT_DOUBLE_EQ(b.ddot(b), 1.0);
}

TEST(SymTensor2, NormMatchesFullContraction) {
  Sym2 a;
  a.at(0, 0) = 1.0;
  a.at(1, 2) = 2.0;
  // a:a = 1 + 2*(4) = 9
  EXPECT_DOUBLE_EQ(a.norm(), 3.0);
}

TEST(Stiffness, IsotropicHookesLaw) {
  const double lambda = 2.0;
  const double mu = 3.0;
  const Stiffness c = isotropic_stiffness(lambda, mu);
  Sym2 eps;
  eps.at(0, 0) = 0.1;
  eps.at(1, 1) = -0.2;
  eps.at(0, 1) = 0.05;
  const Sym2 sigma = c.ddot(eps);
  const double tr = eps.trace();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const double expect = lambda * tr * (i == j ? 1.0 : 0.0) + 2.0 * mu * eps.at(i, j);
      EXPECT_NEAR(sigma.at(i, j), expect, 1e-14) << i << "," << j;
    }
  }
}

TEST(Stiffness, IsotropicIsMajorSymmetric) {
  EXPECT_TRUE(isotropic_stiffness(1.3, 0.7).is_major_symmetric());
}

TEST(Stiffness, LameFromYoungPoisson) {
  const Lame p = lame_from_young_poisson(210.0, 0.3);
  EXPECT_NEAR(p.mu, 210.0 / 2.6, 1e-12);
  EXPECT_NEAR(p.lambda, 210.0 * 0.3 / (1.3 * 0.4), 1e-12);
  EXPECT_THROW((void)lame_from_young_poisson(-1.0, 0.3), InvalidArgument);
  EXPECT_THROW((void)lame_from_young_poisson(1.0, 0.5), InvalidArgument);
}

TEST(SymTensorField, SetGetRoundTrip) {
  SymTensorField f(Grid3{3, 3, 3});
  Sym2 t;
  t.at(0, 0) = 1.0;
  t.at(1, 2) = -4.0;
  f.set({1, 2, 0}, t);
  EXPECT_EQ(f.at({1, 2, 0}), t);
  EXPECT_EQ(f.at({0, 0, 0}), Sym2{});
}

TEST(SymTensorField, L2NormWeightsShear) {
  SymTensorField f(Grid3{1, 1, 1});
  Sym2 t;
  t.at(0, 1) = 1.0;
  f.set({0, 0, 0}, t);
  EXPECT_NEAR(f.l2_norm(), std::sqrt(2.0), 1e-14);
}

TEST(SymTensorField, RelativeError) {
  SymTensorField a(Grid3{2, 2, 2});
  SymTensorField b(Grid3{2, 2, 2});
  a.fill(Sym2::spherical(1.0));
  b.fill(Sym2::spherical(1.0));
  EXPECT_DOUBLE_EQ(a.relative_error_to(b), 0.0);
  a.fill(Sym2::spherical(1.1));
  EXPECT_NEAR(a.relative_error_to(b), 0.1, 1e-12);
}

}  // namespace
}  // namespace lc
