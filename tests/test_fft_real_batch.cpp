// Cross-validation of the batch-major r2c/c2r path (RealFft1D::forward_batch
// / inverse_batch / forward_batch_pruned) against the direct DFT oracle and
// the scalar one-pencil entry points: odd-n fallback, strided layouts,
// partial final tiles, pruned windows, and the Hermitian DC/Nyquist edge
// bins. Lengths cover the ISSUE 8 sweep N ∈ {15, 16, 27, 32, 64} plus the
// Bluestein-backed primes the pipeline can hit through padding choices.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "fft/dft_direct.hpp"
#include "fft/real_fft.hpp"

namespace lc::fft {
namespace {

constexpr std::size_t kTile = Fft1D::kBatchTile;

std::vector<double> random_reals(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

std::vector<cplx> direct_half_spectrum(std::span<const double> x) {
  std::vector<cplx> in(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) in[i] = cplx{x[i], 0.0};
  std::vector<cplx> full(x.size());
  dft_direct_forward(in, full);
  full.resize(x.size() / 2 + 1);
  return full;
}

struct Layout {
  std::size_t elem_stride;
  std::size_t pencil_stride;
};

class RealBatchLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RealBatchLengths, ForwardMatchesDirectDftAcrossLayoutsAndBatchSizes) {
  const std::size_t n = GetParam();
  const std::size_t sbins = n / 2 + 1;
  RealFft1D plan(n);
  FftWorkspace ws;
  for (std::size_t pencils :
       {std::size_t{1}, kTile - 1, kTile, kTile + 1, 2 * kTile + 3}) {
    const std::vector<Layout> in_layouts{{1, n}, {pencils, 1}, {3, 3 * n + 7}};
    const std::vector<Layout> out_layouts{
        {1, sbins}, {pencils, 1}, {2, 2 * sbins + 5}};
    for (std::size_t li = 0; li < in_layouts.size(); ++li) {
      const Layout ilay = in_layouts[li];
      const Layout olay = out_layouts[li];
      std::vector<double> in((pencils - 1) * ilay.pencil_stride +
                             (n - 1) * ilay.elem_stride + 1);
      std::vector<cplx> out((pencils - 1) * olay.pencil_stride +
                                (sbins - 1) * olay.elem_stride + 1,
                            cplx{42.0, -42.0});  // canary fill
      std::vector<std::vector<cplx>> want(pencils);
      for (std::size_t p = 0; p < pencils; ++p) {
        const auto x = random_reals(n, 7000 * n + 13 * p);
        want[p] = direct_half_spectrum(x);
        for (std::size_t i = 0; i < n; ++i) {
          in[p * ilay.pencil_stride + i * ilay.elem_stride] = x[i];
        }
      }
      plan.forward_batch(in.data(), ilay.elem_stride, ilay.pencil_stride,
                         out.data(), olay.elem_stride, olay.pencil_stride,
                         pencils, ws);
      for (std::size_t p = 0; p < pencils; ++p) {
        for (std::size_t b = 0; b < sbins; ++b) {
          const cplx got = out[p * olay.pencil_stride + b * olay.elem_stride];
          EXPECT_LT(std::abs(got - want[p][b]), 1e-12 * static_cast<double>(n))
              << "n=" << n << " pencils=" << pencils << " layout=" << li
              << " p=" << p << " bin=" << b;
        }
      }
    }
  }
}

TEST_P(RealBatchLengths, ForwardMatchesScalarEntryPoint) {
  const std::size_t n = GetParam();
  const std::size_t sbins = n / 2 + 1;
  RealFft1D plan(n);
  FftWorkspace ws;
  const std::size_t pencils = kTile + 1;  // partial final tile
  std::vector<double> in(n * pencils);
  for (std::size_t p = 0; p < pencils; ++p) {
    const auto x = random_reals(n, 8000 * n + p);
    std::copy(x.begin(), x.end(), in.begin() + p * n);
  }
  std::vector<cplx> got(sbins * pencils);
  plan.forward_batch(in.data(), 1, n, got.data(), 1, sbins, pencils, ws);
  std::vector<cplx> want(sbins);
  for (std::size_t p = 0; p < pencils; ++p) {
    plan.forward({in.data() + p * n, n}, want, ws);
    for (std::size_t b = 0; b < sbins; ++b) {
      EXPECT_LT(std::abs(got[p * sbins + b] - want[b]), 1e-13)
          << "n=" << n << " p=" << p << " bin=" << b;
    }
  }
}

TEST_P(RealBatchLengths, RoundTripBound) {
  const std::size_t n = GetParam();
  const std::size_t sbins = n / 2 + 1;
  RealFft1D plan(n);
  FftWorkspace ws;
  const std::size_t pencils = 2 * kTile + 3;
  // Interleaved pencils both ways — the z-pencil pattern of the slab stage.
  std::vector<double> buf(n * pencils);
  for (std::size_t p = 0; p < pencils; ++p) {
    const auto x = random_reals(n, 9000 * n + p);
    for (std::size_t i = 0; i < n; ++i) buf[i * pencils + p] = x[i];
  }
  const auto orig = buf;
  std::vector<cplx> spec(sbins * pencils);
  plan.forward_batch(buf.data(), pencils, 1, spec.data(), pencils, 1, pencils,
                     ws);
  plan.inverse_batch(spec.data(), pencils, 1, buf.data(), pencils, 1, pencils,
                     ws);
  double m = 0.0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    m = std::max(m, std::abs(buf[i] - orig[i]));
  }
  EXPECT_LT(m, 1e-12) << "n=" << n;
}

TEST_P(RealBatchLengths, DcAndNyquistBinsAreReal) {
  const std::size_t n = GetParam();
  const std::size_t sbins = n / 2 + 1;
  RealFft1D plan(n);
  FftWorkspace ws;
  const std::size_t pencils = kTile + 2;
  std::vector<double> in(n * pencils);
  for (std::size_t p = 0; p < pencils; ++p) {
    const auto x = random_reals(n, 11000 * n + p);
    std::copy(x.begin(), x.end(), in.begin() + p * n);
  }
  std::vector<cplx> spec(sbins * pencils);
  plan.forward_batch(in.data(), 1, n, spec.data(), 1, sbins, pencils, ws);
  for (std::size_t p = 0; p < pencils; ++p) {
    EXPECT_LT(std::abs(spec[p * sbins].imag()), 1e-12) << "DC, p=" << p;
    if (n % 2 == 0) {
      EXPECT_LT(std::abs(spec[p * sbins + sbins - 1].imag()), 1e-12)
          << "Nyquist, p=" << p;
    }
  }
}

// ISSUE 8 sweep (15/16/27/32/64: odd fallback, packed pow2, odd composite)
// plus tile-boundary and Bluestein-prime lengths.
INSTANTIATE_TEST_SUITE_P(AllLengths, RealBatchLengths,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 15, 16, 27, 31,
                                           32, 64, 100, 128));

TEST(RealBatch, PrunedForwardMatchesZeroPaddedFull) {
  for (std::size_t n : {std::size_t{64}, std::size_t{27}}) {
    const std::size_t sbins = n / 2 + 1;
    const std::size_t k = 10;
    const std::size_t offset = 5;
    const std::size_t pencils = kTile + 2;
    RealFft1D plan(n);
    FftWorkspace ws;
    // Input: pencil-interleaved nonzero window (the slab xy-stage pattern).
    std::vector<double> in(k * pencils);
    for (std::size_t p = 0; p < pencils; ++p) {
      const auto chunk = random_reals(k, 600 + p);
      for (std::size_t t = 0; t < k; ++t) in[t * pencils + p] = chunk[t];
    }
    std::vector<cplx> got(sbins * pencils);
    plan.forward_batch_pruned(in.data(), pencils, 1, k, offset, got.data(), 1,
                              sbins, pencils, ws);
    for (std::size_t p = 0; p < pencils; ++p) {
      std::vector<double> full(n, 0.0);
      for (std::size_t t = 0; t < k; ++t) {
        full[offset + t] = in[t * pencils + p];
      }
      const auto want = direct_half_spectrum(full);
      for (std::size_t b = 0; b < sbins; ++b) {
        EXPECT_LT(std::abs(got[p * sbins + b] - want[b]), 1e-12)
            << "n=" << n << " p=" << p << " bin=" << b;
      }
    }
  }
}

TEST(RealBatch, PrunedRejectsOverflow) {
  RealFft1D plan(16);
  FftWorkspace ws;
  std::vector<double> in(8);
  std::vector<cplx> out(9);
  EXPECT_THROW(plan.forward_batch_pruned(in.data(), 1, 8, 8, 10, out.data(), 1,
                                         9, 1, ws),
               InvalidArgument);
}

TEST(RealBatch, ZeroPencilsIsANoOp) {
  RealFft1D plan(32);
  FftWorkspace ws;
  plan.forward_batch(nullptr, 1, 32, nullptr, 1, 17, 0, ws);
  plan.inverse_batch(nullptr, 1, 17, nullptr, 1, 32, 0, ws);
}

TEST(RealBatch, InverseImplicitlyHermitianizes) {
  // c2r treats the half spectrum as authoritative; feeding it a spectrum
  // from a genuinely real signal must reproduce that signal even when the
  // stored edge bins carry tiny imaginary round-off.
  const std::size_t n = 32;
  const std::size_t sbins = n / 2 + 1;
  RealFft1D plan(n);
  FftWorkspace ws;
  const auto x = random_reals(n, 77);
  auto spec = direct_half_spectrum(x);
  spec[0] += cplx{0.0, 1e-13};          // perturb DC imag
  spec[sbins - 1] += cplx{0.0, -1e-13};  // perturb Nyquist imag
  std::vector<double> out(n);
  plan.inverse_batch(spec.data(), 1, sbins, out.data(), 1, n, 1, ws);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(out[i] - x[i]), 1e-12) << "i=" << i;
  }
}

}  // namespace
}  // namespace lc::fft
