// Cross-validation of the batch-major SoA FFT path (Fft1D::forward_batch /
// inverse_batch / forward_batch_pruned) against the direct DFT oracle and
// the scalar strided path: odd strides, non-pow2 (Bluestein) lengths, batch
// sizes around the tile width (1, B-1, B, B+1) and partial final tiles.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "fft/dft_direct.hpp"
#include "fft/fft1d.hpp"
#include "fft/pruned.hpp"

namespace lc::fft {
namespace {

constexpr std::size_t kTile = Fft1D::kBatchTile;

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return v;
}

double max_err(std::span<const cplx> a, std::span<const cplx> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

/// Strided pencil layout descriptor: element i of pencil p lives at
/// buf[p * pencil_stride + i * elem_stride].
struct Layout {
  std::size_t elem_stride;
  std::size_t pencil_stride;
};

/// Layouts covering the sweep axes the 3D pipeline actually uses, plus odd
/// strides: contiguous rows, interleaved pencils (the z-pencil pattern),
/// and deliberately odd element/pencil strides.
std::vector<Layout> layouts_for(std::size_t n, std::size_t pencils) {
  return {
      {1, n},            // contiguous rows (x sweep)
      {pencils, 1},      // fully interleaved (z-pencil pattern)
      {3, 3 * n + 7},    // odd element stride, odd pencil stride
      {2 * pencils + 1, 1},  // odd interleave
  };
}

std::size_t layout_extent(const Layout& lay, std::size_t n,
                          std::size_t pencils) {
  return (pencils - 1) * lay.pencil_stride + (n - 1) * lay.elem_stride + 1;
}

class BatchLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchLengths, ForwardMatchesDirectDftAcrossLayoutsAndBatchSizes) {
  const std::size_t n = GetParam();
  Fft1D plan(n);
  FftWorkspace ws;
  for (std::size_t pencils :
       {std::size_t{1}, kTile - 1, kTile, kTile + 1, 2 * kTile + 3}) {
    for (const Layout& lay : layouts_for(n, pencils)) {
      const std::size_t extent = layout_extent(lay, n, pencils);
      std::vector<cplx> buf(extent, cplx{42.0, -42.0});  // canary fill
      std::vector<std::vector<cplx>> want(pencils);
      for (std::size_t p = 0; p < pencils; ++p) {
        const auto x = random_signal(n, 1000 * n + 10 * p);
        want[p].resize(n);
        dft_direct_forward(x, want[p]);
        for (std::size_t i = 0; i < n; ++i) {
          buf[p * lay.pencil_stride + i * lay.elem_stride] = x[i];
        }
      }
      plan.forward_batch(buf.data(), lay.elem_stride, lay.pencil_stride,
                         pencils, ws);
      for (std::size_t p = 0; p < pencils; ++p) {
        for (std::size_t i = 0; i < n; ++i) {
          const cplx got = buf[p * lay.pencil_stride + i * lay.elem_stride];
          EXPECT_LT(std::abs(got - want[p][i]),
                    1e-9 * static_cast<double>(n))
              << "n=" << n << " pencils=" << pencils << " es="
              << lay.elem_stride << " ps=" << lay.pencil_stride << " p=" << p
              << " i=" << i;
        }
      }
    }
  }
}

TEST_P(BatchLengths, InverseMatchesDirectDft) {
  const std::size_t n = GetParam();
  Fft1D plan(n);
  FftWorkspace ws;
  const std::size_t pencils = kTile + 1;  // exercises a partial final tile
  const Layout lay{pencils, 1};
  std::vector<cplx> buf(layout_extent(lay, n, pencils));
  std::vector<std::vector<cplx>> want(pencils);
  for (std::size_t p = 0; p < pencils; ++p) {
    const auto x = random_signal(n, 2000 * n + p);
    want[p].resize(n);
    dft_direct_inverse(x, want[p]);
    for (std::size_t i = 0; i < n; ++i) {
      buf[p * lay.pencil_stride + i * lay.elem_stride] = x[i];
    }
  }
  plan.inverse_batch(buf.data(), lay.elem_stride, lay.pencil_stride, pencils,
                     ws);
  for (std::size_t p = 0; p < pencils; ++p) {
    for (std::size_t i = 0; i < n; ++i) {
      const cplx got = buf[p * lay.pencil_stride + i * lay.elem_stride];
      EXPECT_LT(std::abs(got - want[p][i]), 1e-9) << "n=" << n << " p=" << p;
    }
  }
}

TEST_P(BatchLengths, RoundTripBound) {
  const std::size_t n = GetParam();
  if (n > 512) GTEST_SKIP() << "round-trip bound asserted for n <= 512";
  Fft1D plan(n);
  FftWorkspace ws;
  const std::size_t pencils = kTile + 1;
  std::vector<cplx> buf(n * pencils);
  for (std::size_t p = 0; p < pencils; ++p) {
    const auto x = random_signal(n, 3000 * n + p);
    std::copy(x.begin(), x.end(), buf.begin() + p * n);
  }
  const auto orig = buf;
  plan.forward_batch(buf.data(), 1, n, pencils, ws);
  plan.inverse_batch(buf.data(), 1, n, pencils, ws);
  EXPECT_LT(max_err(buf, orig), 1e-12) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(AllLengths, BatchLengths,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 30,
                                           32, 64, 100, 128, 243, 256, 500,
                                           512, 1000, 1024));

TEST(BatchPath, MatchesScalarStridedPath) {
  const std::size_t n = 128;
  const std::size_t pencils = 2 * kTile + 5;
  Fft1D plan(n);
  FftWorkspace ws;
  auto a = random_signal(n * pencils, 99);
  auto b = a;
  plan.forward_batch(a.data(), pencils, 1, pencils, ws);
  plan.forward_strided(b.data(), pencils, 1, pencils, ws);
  EXPECT_LT(max_err(a, b), 1e-11);
}

TEST(BatchPath, PrunedForwardMatchesScalarPruned) {
  for (std::size_t n : {std::size_t{128}, std::size_t{100}}) {
    const std::size_t k = 16;
    const std::size_t offset = 33;
    const std::size_t pencils = kTile + 2;
    Fft1D plan(n);
    FftWorkspace ws;
    // Input: pencil-interleaved nonzero block (the slab z-stage pattern).
    std::vector<cplx> in(k * pencils);
    for (std::size_t p = 0; p < pencils; ++p) {
      const auto chunk = random_signal(k, 500 + p);
      for (std::size_t t = 0; t < k; ++t) in[t * pencils + p] = chunk[t];
    }
    std::vector<cplx> got(n * pencils);
    plan.forward_batch_pruned(in.data(), pencils, 1, k, offset, got.data(), n,
                              pencils, ws);
    for (std::size_t p = 0; p < pencils; ++p) {
      std::vector<cplx> chunk(k);
      for (std::size_t t = 0; t < k; ++t) chunk[t] = in[t * pencils + p];
      std::vector<cplx> want(n);
      input_pruned_forward(plan, chunk, offset, want, ws);
      EXPECT_LT(max_err({got.data() + p * n, n}, want), 1e-11)
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(BatchPath, PrunedRejectsOverflow) {
  Fft1D plan(16);
  FftWorkspace ws;
  std::vector<cplx> in(8), out(16);
  EXPECT_THROW(
      plan.forward_batch_pruned(in.data(), 1, 8, 8, 10, out.data(), 16, 1, ws),
      InvalidArgument);
}

TEST(BatchPath, ZeroPencilsIsANoOp) {
  Fft1D plan(32);
  FftWorkspace ws;
  plan.forward_batch(nullptr, 1, 32, 0, ws);
  plan.inverse_batch(nullptr, 1, 32, 0, ws);
}

TEST(BatchPath, LengthOneIdentity) {
  Fft1D plan(1);
  FftWorkspace ws;
  std::vector<cplx> buf{cplx{1.5, -2.5}, cplx{3.0, 4.0}};
  auto orig = buf;
  plan.forward_batch(buf.data(), 1, 1, 2, ws);
  plan.inverse_batch(buf.data(), 1, 1, 2, ws);
  EXPECT_EQ(buf[0], orig[0]);
  EXPECT_EQ(buf[1], orig[1]);
}

TEST(Simd, ComplexMulInplaceMatchesScalar) {
  const std::size_t n = 31;  // odd → exercises the tail loop
  auto a = random_signal(n, 7);
  const auto b = random_signal(n, 8);
  auto want = a;
  for (std::size_t i = 0; i < n; ++i) want[i] *= b[i];
  simd::complex_mul_inplace(a.data(), b.data(), n);
  EXPECT_LT(max_err(a, want), 1e-14);
}

TEST(Workspace, ScratchGrowthPreservesAlignmentAndSize) {
  FftWorkspace ws;
  auto s1 = ws.buffer_a(10);
  EXPECT_EQ(s1.size(), 10u);
  auto s2 = ws.buffer_a(1000);  // growth
  EXPECT_EQ(s2.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s2.data()) % kAlignment, 0u);
  auto s3 = ws.buffer_a(5);  // shrink request reuses capacity
  EXPECT_EQ(s3.size(), 5u);
  EXPECT_EQ(s3.data(), s2.data());
}

}  // namespace
}  // namespace lc::fft
