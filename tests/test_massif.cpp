// Tests for the MASSIF use case: microstructures, the elastic Green
// operator as a 6-channel spectral operator, and the fixed-point solver
// with dense (Algorithm 1) and low-communication (Algorithm 2) backends.
#include <gtest/gtest.h>

#include "massif/green_operator.hpp"
#include "massif/microstructure.hpp"
#include "massif/solver.hpp"

namespace lc::massif {
namespace {

Phase stiff_phase() { return Phase::isotropic("stiff", 200.0, 0.3); }
Phase soft_phase() { return Phase::isotropic("soft", 100.0, 0.3); }

Sym2 uniaxial_strain(double e) {
  Sym2 s;
  s.at(0, 0) = e;
  return s;
}

TEST(Phase, IsotropicStiffnessFromEngineeringConstants) {
  const Phase p = Phase::isotropic("steel", 210.0, 0.3);
  EXPECT_NEAR(p.lame.mu, 80.77, 0.01);
  // C_1111 = λ + 2μ
  EXPECT_NEAR(p.stiffness.at(0, 0, 0, 0), p.lame.lambda + 2.0 * p.lame.mu,
              1e-12);
  EXPECT_TRUE(p.stiffness.is_major_symmetric());
}

TEST(Microstructure, HomogeneousIsAllOnePhase) {
  const auto m = Microstructure::homogeneous(Grid3::cube(8), stiff_phase());
  EXPECT_EQ(m.volume_fractions().at(0), 1.0);
  EXPECT_EQ(m.phase_at({3, 4, 5}), 0);
}

TEST(Microstructure, CubicInclusionFraction) {
  const auto m = Microstructure::cubic_inclusion(Grid3::cube(16),
                                                 soft_phase(), stiff_phase(), 8);
  const auto frac = m.volume_fractions();
  EXPECT_NEAR(frac.at(1), 8.0 * 8.0 * 8.0 / (16.0 * 16.0 * 16.0), 1e-12);
  EXPECT_EQ(m.phase_at({8, 8, 8}), 1);  // centre inside inclusion
  EXPECT_EQ(m.phase_at({0, 0, 0}), 0);
}

TEST(Microstructure, RandomSpheresHitsTargetFraction) {
  const auto m = Microstructure::random_spheres(
      Grid3::cube(32), soft_phase(), stiff_phase(), 0.2, 3.0, 42);
  const double frac = m.volume_fractions().at(1);
  EXPECT_GT(frac, 0.15);
  EXPECT_LT(frac, 0.30);
}

TEST(Microstructure, RandomSpheresDeterministicBySeed) {
  const auto a = Microstructure::random_spheres(Grid3::cube(16), soft_phase(),
                                                stiff_phase(), 0.15, 2.0, 7);
  const auto b = Microstructure::random_spheres(Grid3::cube(16), soft_phase(),
                                                stiff_phase(), 0.15, 2.0, 7);
  for_each_point(Box3::of(Grid3::cube(16)), [&](const Index3& p) {
    EXPECT_EQ(a.phase_at(p), b.phase_at(p));
  });
}

TEST(Microstructure, LaminateAlternatesLayers) {
  const auto m =
      Microstructure::laminate(Grid3::cube(16), soft_phase(), stiff_phase(), 4);
  EXPECT_EQ(m.phase_at({0, 0, 0}), 0);
  EXPECT_EQ(m.phase_at({0, 0, 4}), 1);
  EXPECT_EQ(m.phase_at({0, 0, 8}), 0);
  EXPECT_NEAR(m.volume_fractions().at(0), 0.5, 1e-12);
}

TEST(Microstructure, ReferenceMediumIsMidpoint) {
  const auto m = Microstructure::laminate(Grid3::cube(8), soft_phase(),
                                          stiff_phase(), 2);
  const Lame ref = m.reference_medium();
  EXPECT_NEAR(ref.mu, (soft_phase().lame.mu + stiff_phase().lame.mu) / 2.0,
              1e-12);
}

TEST(Microstructure, RejectsBadVoxelData) {
  EXPECT_THROW(Microstructure(Grid3::cube(4), {stiff_phase()},
                              std::vector<std::uint8_t>(10, 0)),
               InvalidArgument);
  EXPECT_THROW(Microstructure(Grid3::cube(2), {stiff_phase()},
                              std::vector<std::uint8_t>(8, 3)),
               InvalidArgument);
}

TEST(ElasticGreenOperator, MatchesScalarComponentKernels) {
  const Lame ref{1.2, 0.9};
  const ElasticGreenOperator op(ref);
  const Grid3 g = Grid3::cube(8);
  ASSERT_EQ(op.channels(), 6u);

  std::array<core::cplx, 6> values;
  for (std::size_t a = 0; a < 6; ++a) {
    values[a] = core::cplx{0.1 * static_cast<double>(a + 1),
                           -0.2 * static_cast<double>(a)};
  }
  auto input = values;
  op.apply({1, 2, 3}, g, values);

  for (std::size_t a = 0; a < 6; ++a) {
    core::cplx want{0.0, 0.0};
    for (std::size_t b = 0; b < 6; ++b) {
      const ElasticGreenComponentKernel kab(a, b, ref);
      const double w = (b < 3) ? 1.0 : 2.0;
      want += w * kab.eval({1, 2, 3}, g) * input[b];
    }
    EXPECT_NEAR(std::abs(values[a] - want), 0.0, 1e-12) << a;
  }
}

TEST(ElasticGreenOperator, DcBinIsAnnihilated) {
  const ElasticGreenOperator op(Lame{1.0, 1.0});
  std::array<core::cplx, 6> values;
  values.fill(core::cplx{3.0, -1.0});
  op.apply({0, 0, 0}, Grid3::cube(8), values);
  for (const auto& v : values) EXPECT_EQ(v, (core::cplx{0.0, 0.0}));
}

// --- Solver ------------------------------------------------------------------

TEST(MassifSolver, HomogeneousConvergesImmediately) {
  const Grid3 g = Grid3::cube(8);
  const auto micro = Microstructure::homogeneous(g, stiff_phase());
  auto backend = std::make_shared<DenseGreenBackend>(
      g, micro.reference_medium(), nullptr);
  MassifSolver solver(micro, uniaxial_strain(0.01), backend);
  const SolveReport report = solver.solve();
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.iterations, 1);
  // Uniform material: σ = C : E everywhere.
  const Sym2 want = stiff_phase().stiffness.ddot(uniaxial_strain(0.01));
  const Sym2 got = solver.average_stress();
  for (std::size_t a = 0; a < 6; ++a) EXPECT_NEAR(got.v[a], want.v[a], 1e-10);
}

TEST(MassifSolver, TwoPhaseConvergesMonotonically) {
  const Grid3 g = Grid3::cube(16);
  const auto micro =
      Microstructure::cubic_inclusion(g, soft_phase(), stiff_phase(), 8);
  auto backend =
      std::make_shared<DenseGreenBackend>(g, micro.reference_medium());
  MassifSolver solver(micro, uniaxial_strain(0.01), backend,
                      {1e-5, 100});
  const SolveReport report = solver.solve();
  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.iterations, 1);
  // Strain-change residual decreases (fixed-point contraction).
  for (std::size_t i = 1; i < report.strain_change_history.size(); ++i) {
    EXPECT_LT(report.strain_change_history[i],
              report.strain_change_history[i - 1] * 1.5)
        << i;
  }
}

TEST(MassifSolver, MeanStrainStaysPrescribed) {
  const Grid3 g = Grid3::cube(16);
  const auto micro =
      Microstructure::cubic_inclusion(g, soft_phase(), stiff_phase(), 8);
  auto backend =
      std::make_shared<DenseGreenBackend>(g, micro.reference_medium());
  const Sym2 macro = uniaxial_strain(0.02);
  MassifSolver solver(micro, macro, backend, {1e-5, 100});
  (void)solver.solve();
  // Γ̂(0) = 0 keeps the volume-average strain equal to E at every iterate.
  for (std::size_t a = 0; a < 6; ++a) {
    double mean = 0.0;
    for (const auto v : solver.strain().component(a).span()) mean += v;
    mean /= static_cast<double>(g.size());
    EXPECT_NEAR(mean, macro.v[a], 1e-12) << a;
  }
}

TEST(MassifSolver, EffectiveStiffnessBetweenPhaseBounds) {
  const Grid3 g = Grid3::cube(16);
  const auto micro =
      Microstructure::random_spheres(g, soft_phase(), stiff_phase(), 0.3, 3.0, 9);
  auto backend =
      std::make_shared<DenseGreenBackend>(g, micro.reference_medium());
  const double e0 = 0.01;
  MassifSolver solver(micro, uniaxial_strain(e0), backend, {1e-5, 200});
  EXPECT_TRUE(solver.solve().converged);
  const double c_eff = solver.average_stress().at(0, 0) / e0;
  const double c_soft = soft_phase().stiffness.at(0, 0, 0, 0);
  const double c_stiff = stiff_phase().stiffness.at(0, 0, 0, 0);
  EXPECT_GT(c_eff, c_soft);  // stiffer than pure matrix (Reuss direction)
  EXPECT_LT(c_eff, c_stiff);  // softer than pure inclusion (Voigt direction)
}

TEST(MassifSolver, LosslessLowCommMatchesDenseExactly) {
  const Grid3 g = Grid3::cube(16);
  const auto micro =
      Microstructure::cubic_inclusion(g, soft_phase(), stiff_phase(), 8);
  const Lame ref = micro.reference_medium();
  const Sym2 macro = uniaxial_strain(0.01);

  auto dense = std::make_shared<DenseGreenBackend>(g, ref);
  MassifSolver ref_solver(micro, macro, dense, {1e-5, 60});
  const auto ref_report = ref_solver.solve();

  LowCommGreenBackend::Params params;
  params.subdomain = 8;
  params.uniform_rate = 1;  // lossless sampling
  params.batch = 64;
  auto lowcomm = std::make_shared<LowCommGreenBackend>(g, ref, params);
  MassifSolver lc_solver(micro, macro, lowcomm, {1e-5, 60});
  const auto lc_report = lc_solver.solve();

  EXPECT_TRUE(ref_report.converged);
  EXPECT_TRUE(lc_report.converged);
  EXPECT_EQ(lc_report.iterations, ref_report.iterations);
  EXPECT_LT(lc_solver.strain().relative_error_to(ref_solver.strain()), 1e-8);
}

TEST(MassifSolver, CompressedLowCommStaysWithinTolerance) {
  // 32³ grid: the smallest scale where a compressible far field exists
  // (on a 16³ torus with k=8 every point is within k/2 of the domain).
  const Grid3 g = Grid3::cube(32);
  const auto micro =
      Microstructure::cubic_inclusion(g, soft_phase(), stiff_phase(), 8);
  const Lame ref = micro.reference_medium();
  const Sym2 macro = uniaxial_strain(0.01);

  LowCommGreenBackend::Params params;
  params.subdomain = 16;
  params.far_rate = 4;
  params.dense_halo = 4;
  params.batch = 256;

  // Single-application convolution error — the quantity the paper bounds
  // at 3% (§5.3): Γ ∗ σ via the compressed pipeline vs the dense FFT.
  SymTensorField eps(g);
  eps.fill(macro);
  SymTensorField sig(g);
  for_each_point(Box3::of(g), [&](const Index3& p) {
    sig.set(p, micro.stiffness_at(p).ddot(eps.at(p)));
  });
  DenseGreenBackend dense_once(g, ref);
  LowCommGreenBackend lowcomm_once(g, ref, params);
  SymTensorField want(g);
  SymTensorField got(g);
  dense_once.apply(sig, want);
  lowcomm_once.apply(sig, got);
  EXPECT_LT(got.relative_error_to(want), 0.03);

  // Full fixed-point runs. The compression error bounds the reachable
  // residual, so the tolerance matches the approximation level; the paper
  // reports convergence is "not largely impacted" at its 3% error.
  auto dense = std::make_shared<DenseGreenBackend>(g, ref);
  MassifSolver ref_solver(micro, macro, dense, {5e-3, 30});
  (void)ref_solver.solve();

  auto lowcomm = std::make_shared<LowCommGreenBackend>(g, ref, params);
  MassifSolver lc_solver(micro, macro, lowcomm, {5e-3, 30});
  const auto report = lc_solver.solve();

  EXPECT_TRUE(report.converged);
  EXPECT_LT(lc_solver.strain().relative_error_to(ref_solver.strain()), 0.02);
  // Compression vs storing each sub-domain's full-resolution result.
  const std::size_t dense_per_domain =
      6u * 8u * sizeof(double) * g.size();  // 8 domains × 6 components
  EXPECT_GT(lowcomm->exchange_bytes_per_apply(), 0u);
  EXPECT_LT(lowcomm->exchange_bytes_per_apply(), dense_per_domain);
}

TEST(Sym4Algebra, InverseComposeIdentity) {
  const Stiffness c = isotropic_stiffness(2.3, 1.7);
  const auto inv = invert_sym4(c);
  const auto id = compose_sym4(inv, c);
  const auto want = identity_sym4();
  Sym2 e;
  e.at(0, 0) = 0.4;
  e.at(1, 2) = -0.7;
  e.at(0, 1) = 0.2;
  const Sym2 round = inv.ddot(c.ddot(e));
  for (std::size_t a = 0; a < 6; ++a) {
    EXPECT_NEAR(round.v[a], e.v[a], 1e-12) << a;
    EXPECT_NEAR(id.ddot(e).v[a], want.ddot(e).v[a], 1e-12) << a;
  }
  EXPECT_THROW((void)invert_sym4(SymTensor4<double>{}), InvalidArgument);
}

TEST(MassifSolver, CgSolvesTheLippmannSchwingerEquation) {
  // The true convergence check: the CG solution must satisfy
  // ε + Γ⁰∗(δC : ε) = E to solver tolerance (the basic scheme's
  // strain-change criterion can stall far from this).
  const Grid3 g = Grid3::cube(16);
  const auto micro =
      Microstructure::cubic_inclusion(g, soft_phase(), stiff_phase(), 8);
  const Lame ref = micro.reference_medium();
  const Sym2 macro = uniaxial_strain(0.01);
  auto backend = std::make_shared<DenseGreenBackend>(g, ref);
  MassifSolver solver(micro, macro, backend,
                      {1e-9, 200, Scheme::kConjugateGradient, ref});
  const auto report = solver.solve();
  ASSERT_TRUE(report.converged);

  // Recompute the equation residual from scratch.
  const Stiffness c0 = isotropic_stiffness(ref.lambda, ref.mu);
  SymTensorField tau(g);
  for_each_point(Box3::of(g), [&](const Index3& p) {
    Stiffness d = micro.stiffness_at(p);
    d -= c0;
    tau.set(p, d.ddot(solver.strain().at(p)));
  });
  SymTensorField gamma_tau(g);
  DenseGreenBackend(g, ref).apply(tau, gamma_tau);
  double num = 0.0;
  double den = 0.0;
  for_each_point(Box3::of(g), [&](const Index3& p) {
    Sym2 r = solver.strain().at(p);
    r += gamma_tau.at(p);
    r -= macro;
    num += r.ddot(r);
    den += macro.ddot(macro);
  });
  EXPECT_LT(std::sqrt(num / den), 1e-7);
}

TEST(MassifSolver, CgMatchesBasicAtLowContrast) {
  // At low contrast the basic scheme genuinely converges; both schemes
  // must then agree on the solution.
  const Grid3 g = Grid3::cube(16);
  const auto micro =
      Microstructure::cubic_inclusion(g, soft_phase(), stiff_phase(), 8);
  const Lame ref = micro.reference_medium();
  const Sym2 macro = uniaxial_strain(0.01);
  auto b1 = std::make_shared<DenseGreenBackend>(g, ref);
  MassifSolver basic(micro, macro, b1, {1e-8, 500});
  ASSERT_TRUE(basic.solve().converged);
  auto b2 = std::make_shared<DenseGreenBackend>(g, ref);
  MassifSolver cg(micro, macro, b2,
                  {1e-9, 200, Scheme::kConjugateGradient, ref});
  ASSERT_TRUE(cg.solve().converged);
  EXPECT_LT(cg.strain().relative_error_to(basic.strain()), 0.02);
  const double s_basic = basic.average_stress().at(0, 0);
  const double s_cg = cg.average_stress().at(0, 0);
  EXPECT_NEAR(s_cg, s_basic, 0.01 * std::abs(s_basic));
}

TEST(MassifSolver, CgNeedsFarFewerIterationsAtHighContrast) {
  const Grid3 g = Grid3::cube(16);
  const Phase very_stiff = Phase::isotropic("stiff20x", 2000.0, 0.3);
  const auto micro =
      Microstructure::cubic_inclusion(g, soft_phase(), very_stiff, 8);
  const Lame ref = micro.reference_medium();
  const Sym2 macro = uniaxial_strain(0.01);
  auto b1 = std::make_shared<DenseGreenBackend>(g, ref);
  MassifSolver basic(micro, macro, b1, {1e-5, 400});
  const auto basic_report = basic.solve();
  auto b2 = std::make_shared<DenseGreenBackend>(g, ref);
  MassifSolver cg(micro, macro, b2,
                  {1e-8, 400, Scheme::kConjugateGradient, ref});
  const auto cg_report = cg.solve();
  ASSERT_TRUE(cg_report.converged);
  EXPECT_LT(cg_report.iterations * 2, basic_report.iterations);
}

TEST(MassifSolver, CgHandlesHomogeneousImmediately) {
  const Grid3 g = Grid3::cube(8);
  const auto micro = Microstructure::homogeneous(g, stiff_phase());
  const Lame ref{micro.phases()[0].lame.lambda, micro.phases()[0].lame.mu};
  auto backend = std::make_shared<DenseGreenBackend>(g, ref, nullptr);
  MassifSolver solver(micro, uniaxial_strain(0.01), backend,
                      {1e-8, 50, Scheme::kConjugateGradient, ref});
  const auto report = solver.solve();
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.iterations, 1);
}

TEST(MassifSolver, CgRequiresReferenceMedium) {
  const Grid3 g = Grid3::cube(8);
  const auto micro = Microstructure::homogeneous(g, stiff_phase());
  auto backend =
      std::make_shared<DenseGreenBackend>(g, micro.reference_medium());
  SolverOptions opt;
  opt.scheme = Scheme::kConjugateGradient;  // reference left at zero
  EXPECT_THROW(MassifSolver(micro, uniaxial_strain(0.01), backend, opt),
               InvalidArgument);
}

TEST(Microstructure, GeometricReferenceMedium) {
  const auto m = Microstructure::laminate(Grid3::cube(8), soft_phase(),
                                          stiff_phase(), 2);
  const Lame gref = m.reference_medium_geometric();
  EXPECT_NEAR(gref.mu,
              std::sqrt(soft_phase().lame.mu * stiff_phase().lame.mu), 1e-12);
}

TEST(MassifSolver, RejectsZeroMacroStrain) {
  const Grid3 g = Grid3::cube(8);
  const auto micro = Microstructure::homogeneous(g, stiff_phase());
  auto backend =
      std::make_shared<DenseGreenBackend>(g, micro.reference_medium());
  MassifSolver solver(micro, Sym2{}, backend);
  EXPECT_THROW((void)solver.solve(), InvalidArgument);
}

}  // namespace
}  // namespace lc::massif
