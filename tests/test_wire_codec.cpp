// Wire codec tests (DESIGN.md §17): spelling/env parsing, per-codec
// round-trip error bounds against the analytic models, bit-exactness of the
// off codec's framing, SIMD-vs-scalar bit equality of the conversion rows,
// and the header-free framing contract (finish() checks on both ends).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "comm/wire_codec.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/runtime_flags.hpp"
#include "common/simd.hpp"
#include "core/pipeline.hpp"
#include "sampling/compressed_field.hpp"
#include "sampling/octree.hpp"

namespace lc::comm {
namespace {

std::vector<double> random_samples(std::size_t n, std::uint64_t seed,
                                   double lo = -1.0, double hi = 1.0) {
  std::vector<double> v(n);
  SplitMix64 rng(seed);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

/// Encode `cells` (each a span of samples) under `codec`, decode them back,
/// return the decoded cells. Checks framing invariants along the way.
std::vector<std::vector<double>> round_trip(
    WireCodec codec, const std::vector<std::vector<double>>& cells) {
  std::vector<double> wire;
  WireEncoder enc(codec, wire);
  std::size_t want_bytes = 0;
  for (const auto& c : cells) {
    enc.add_cell(c);
    want_bytes += encoded_cell_bytes(codec, c.size());
  }
  const std::size_t bytes = enc.finish();
  EXPECT_EQ(bytes, want_bytes);
  EXPECT_EQ(enc.encoded_bytes(), want_bytes);
  EXPECT_EQ(wire.size(), wire_doubles(want_bytes));

  WireDecoder dec(codec, wire);
  std::vector<std::vector<double>> out;
  for (const auto& c : cells) {
    out.emplace_back(c.size());
    dec.read_cell(out.back());
  }
  dec.finish();
  EXPECT_EQ(dec.consumed_bytes(), want_bytes);
  return out;
}

TEST(WireCodec, SpellingsRoundTripAndBadValueThrows) {
  for (const WireCodec codec : kAllWireCodecs) {
    EXPECT_EQ(parse_wire_codec(codec_name(codec)), codec);
  }
  try {
    (void)parse_wire_codec("fp8");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    // The error must quote the bad value and the accepted spellings so a
    // typo is diagnosable from the message alone.
    EXPECT_NE(std::string(e.what()).find("fp8"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("q16"), std::string::npos);
  }
}

TEST(WireCodec, EnvSelectsCodecAndRejectsTypos) {
  ASSERT_EQ(unsetenv("LC_WIRE"), 0);
  EXPECT_EQ(wire_codec_from_env(), WireCodec::kOff);
  for (const WireCodec codec : kAllWireCodecs) {
    ASSERT_EQ(setenv("LC_WIRE", codec_name(codec), 1), 0);
    EXPECT_EQ(wire_codec_from_env(), codec);
    // LowCommParams reads the env at construction.
    EXPECT_EQ(core::LowCommParams{}.wire, codec);
  }
  ASSERT_EQ(setenv("LC_WIRE", "Q16", 1), 0);  // spellings are lower-case
  EXPECT_THROW((void)wire_codec_from_env(), InvalidArgument);
  ASSERT_EQ(unsetenv("LC_WIRE"), 0);
}

TEST(WireCodec, SizeArithmetic) {
  EXPECT_EQ(codec_sample_bytes(WireCodec::kOff), 8u);
  EXPECT_EQ(codec_sample_bytes(WireCodec::kFp32), 4u);
  EXPECT_EQ(codec_sample_bytes(WireCodec::kFp16), 2u);
  EXPECT_EQ(codec_sample_bytes(WireCodec::kBf16), 2u);
  EXPECT_EQ(codec_sample_bytes(WireCodec::kQ16), 2u);
  EXPECT_EQ(codec_cell_header_bytes(WireCodec::kQ16), 8u);
  EXPECT_EQ(codec_cell_header_bytes(WireCodec::kBf16), 0u);
  EXPECT_EQ(encoded_cell_bytes(WireCodec::kQ16, 27), 8u + 54u);
  EXPECT_EQ(wire_doubles(0), 0u);
  EXPECT_EQ(wire_doubles(1), 1u);
  EXPECT_EQ(wire_doubles(8), 1u);
  EXPECT_EQ(wire_doubles(9), 2u);
}

TEST(WireCodec, OffIsBitExactPassthrough) {
  // The off codec's wire buffer must be byte-identical to the raw samples —
  // the structural guarantee that LC_WIRE=off reproduces the pre-codec wire
  // format bit for bit.
  const auto cell_a = random_samples(125, 1);
  const auto cell_b = random_samples(27, 2);
  std::vector<double> wire;
  WireEncoder enc(WireCodec::kOff, wire);
  enc.add_cell(cell_a);
  enc.add_cell(cell_b);
  EXPECT_EQ(enc.finish(), (125u + 27u) * 8u);
  EXPECT_EQ(enc.max_abs_error(), 0.0);
  ASSERT_EQ(wire.size(), 152u);
  EXPECT_EQ(std::memcmp(wire.data(), cell_a.data(), cell_a.size() * 8), 0);
  EXPECT_EQ(std::memcmp(wire.data() + cell_a.size(), cell_b.data(),
                        cell_b.size() * 8),
            0);
}

TEST(WireCodec, Fp32RoundTripWithinMantissaBound) {
  const auto cells = std::vector<std::vector<double>>{
      random_samples(129, 3, -100.0, 100.0), random_samples(1, 4)};
  const auto out = round_trip(WireCodec::kFp32, cells);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t i = 0; i < cells[c].size(); ++i) {
      const double x = cells[c][i];
      // Round-to-nearest float: |err| <= |x| * 2^-24.
      EXPECT_LE(std::abs(out[c][i] - x), std::abs(x) * 0x1p-24 + 1e-300)
          << "cell " << c << " sample " << i;
    }
  }
}

TEST(WireCodec, Fp16RoundTripWithinMantissaBoundAndClampsRange) {
  const auto cells = std::vector<std::vector<double>>{
      random_samples(200, 5, -10.0, 10.0)};
  const auto out = round_trip(WireCodec::kFp16, cells);
  for (std::size_t i = 0; i < cells[0].size(); ++i) {
    const double x = cells[0][i];
    // binary16 RNE: |err| <= |x| * 2^-11 for normals; subnormals bottom out
    // at the fixed quantum 2^-25.
    EXPECT_LE(std::abs(out[0][i] - x), std::abs(x) * 0x1p-11 + 0x1p-25)
        << "sample " << i;
  }
  // Out-of-range magnitudes saturate at ±65504 instead of overflowing.
  const std::vector<std::vector<double>> big{{1e9, -1e9, 7e4, -7e4}};
  const auto clamped = round_trip(WireCodec::kFp16, big);
  EXPECT_EQ(clamped[0][0], simd::kF16Max);
  EXPECT_EQ(clamped[0][1], -simd::kF16Max);
  EXPECT_EQ(clamped[0][2], simd::kF16Max);
  EXPECT_EQ(clamped[0][3], -simd::kF16Max);
}

TEST(WireCodec, Bf16RoundTripWithinMantissaBound) {
  const auto cells = std::vector<std::vector<double>>{
      random_samples(200, 6, -1e6, 1e6)};
  const auto out = round_trip(WireCodec::kBf16, cells);
  for (std::size_t i = 0; i < cells[0].size(); ++i) {
    const double x = cells[0][i];
    // bfloat16 RNE: 8-bit mantissa, |err| <= |x| * 2^-8 (float range, no
    // clamping needed for these magnitudes).
    EXPECT_LE(std::abs(out[0][i] - x), std::abs(x) * 0x1p-8 + 1e-300)
        << "sample " << i;
  }
}

TEST(WireCodec, Q16RoundTripWithinBlockScaleBound) {
  // Per-cell bound: |decoded - x| <= cell_max_abs / 65534. Cells with very
  // different dynamic ranges must each get their own scale.
  const auto cells = std::vector<std::vector<double>>{
      random_samples(125, 7, -1.0, 1.0), random_samples(64, 8, -1e-6, 1e-6),
      random_samples(27, 9, -1e4, 1e4)};
  std::vector<double> wire;
  WireEncoder enc(WireCodec::kQ16, wire);
  for (const auto& c : cells) enc.add_cell(c);
  enc.finish();

  WireDecoder dec(WireCodec::kQ16, wire);
  double tracked_max = 0.0;
  for (const auto& c : cells) {
    double max_abs = 0.0;
    for (const double x : c) max_abs = std::max(max_abs, std::abs(x));
    const double bound = max_abs / 65534.0;
    std::vector<double> out(c.size());
    dec.read_cell(out);
    for (std::size_t i = 0; i < c.size(); ++i) {
      const double err = std::abs(out[i] - c[i]);
      EXPECT_LE(err, bound * (1.0 + 1e-12)) << "sample " << i;
      tracked_max = std::max(tracked_max, err);
    }
  }
  dec.finish();
  // The encoder's error gauge must equal the actually realised max error.
  EXPECT_DOUBLE_EQ(enc.max_abs_error(), tracked_max);
}

TEST(WireCodec, Q16EncodesZerosAndConstantsExactly) {
  const std::vector<std::vector<double>> cells{
      std::vector<double>(64, 0.0), std::vector<double>(27, 3.25)};
  const auto out = round_trip(WireCodec::kQ16, cells);
  for (const double v : out[0]) EXPECT_EQ(v, 0.0);
  // A constant cell quantises to ±32767 exactly: scale * 32767 == max_abs.
  for (const double v : out[1]) EXPECT_DOUBLE_EQ(v, 3.25);
}

TEST(WireCodec, EncoderTracksMaxErrorAcrossCodecs) {
  for (const WireCodec codec : kAllWireCodecs) {
    const auto cell = random_samples(100, 11, -5.0, 5.0);
    std::vector<double> wire;
    WireEncoder enc(codec, wire);
    enc.add_cell(cell);
    enc.finish();
    WireDecoder dec(codec, wire);
    std::vector<double> out(cell.size());
    dec.read_cell(out);
    double realised = 0.0;
    for (std::size_t i = 0; i < cell.size(); ++i) {
      realised = std::max(realised, std::abs(out[i] - cell[i]));
    }
    EXPECT_DOUBLE_EQ(enc.max_abs_error(), realised)
        << "codec " << codec_name(codec);
    if (codec == WireCodec::kOff) {
      EXPECT_EQ(realised, 0.0);
    }
  }
}

TEST(WireCodec, FramingViolationsThrow) {
  std::vector<double> nonempty{1.0};
  EXPECT_THROW(WireEncoder(WireCodec::kOff, nonempty), InvalidArgument);

  // Decoder must consume the bundle exactly: reading too little (finish)
  // or too much (read_cell past the end) both throw.
  const auto cell = random_samples(10, 12);
  std::vector<double> wire;
  WireEncoder enc(WireCodec::kFp32, wire);
  enc.add_cell(cell);
  enc.finish();
  {
    // Under-read past the padding tolerance (framing is checked at wire-
    // double granularity — one fp32 sample short still lands in the final
    // padded double, two fall a whole double short).
    WireDecoder dec(WireCodec::kFp32, wire);
    std::vector<double> out(cell.size() - 2);
    dec.read_cell(out);
    EXPECT_THROW(dec.finish(), Error);
  }
  {
    WireDecoder dec(WireCodec::kFp32, wire);
    std::vector<double> out(cell.size() + 4);
    EXPECT_THROW(dec.read_cell(out), Error);
  }
}

TEST(WireCodec, VectorRowsBitEqualScalarReference) {
  // The dispatching rows must produce bit-identical results to the scalar
  // reference algorithms on every input class (normals, subnormal-bound
  // tinies, huge values, zeros, mixed signs) — determinism across machines
  // rides on this.
  std::vector<double> src = random_samples(1003, 13, -1.0, 1.0);
  const auto more = random_samples(64, 14, -1e9, 1e9);
  src.insert(src.end(), more.begin(), more.end());
  src.push_back(0.0);
  src.push_back(-0.0);
  src.push_back(1e-8);
  src.push_back(-3e-5);
  src.push_back(65504.0);
  src.push_back(-65505.0);
  src.push_back(6.1e-5);  // near the binary16 subnormal boundary
  src.push_back(5.9e-8);  // below the binary16 underflow threshold
  const std::size_t n = src.size();

  std::vector<float> f_vec(n), f_ref(n);
  simd::row_f64_to_f32(f_vec.data(), src.data(), n);
  simd::row_f64_to_f32_scalar(f_ref.data(), src.data(), n);
  EXPECT_EQ(std::memcmp(f_vec.data(), f_ref.data(), n * sizeof(float)), 0);

  std::vector<double> d_vec(n), d_ref(n);
  simd::row_f32_to_f64(d_vec.data(), f_vec.data(), n);
  simd::row_f32_to_f64_scalar(d_ref.data(), f_vec.data(), n);
  EXPECT_EQ(std::memcmp(d_vec.data(), d_ref.data(), n * sizeof(double)), 0);

  std::vector<std::uint16_t> h_vec(n), h_ref(n);
  simd::row_f64_to_f16(h_vec.data(), src.data(), n);
  simd::row_f64_to_f16_scalar(h_ref.data(), src.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(h_vec[i], h_ref[i]) << "f16 encode at " << i << " x=" << src[i];
  }
  simd::row_f16_to_f64(d_vec.data(), h_vec.data(), n);
  simd::row_f16_to_f64_scalar(d_ref.data(), h_vec.data(), n);
  EXPECT_EQ(std::memcmp(d_vec.data(), d_ref.data(), n * sizeof(double)), 0);

  simd::row_f64_to_bf16(h_vec.data(), src.data(), n);
  simd::row_f64_to_bf16_scalar(h_ref.data(), src.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(h_vec[i], h_ref[i]) << "bf16 encode at " << i << " x=" << src[i];
  }
  simd::row_bf16_to_f64(d_vec.data(), h_vec.data(), n);
  simd::row_bf16_to_f64_scalar(d_ref.data(), h_vec.data(), n);
  EXPECT_EQ(std::memcmp(d_vec.data(), d_ref.data(), n * sizeof(double)), 0);

  EXPECT_EQ(simd::row_max_abs(src.data(), n),
            simd::row_max_abs_scalar(src.data(), n));
}

TEST(WireCodec, F16BitAlgorithmExhaustiveRoundTrip) {
  // Every finite binary16 pattern must survive f16 -> f32 -> f16 exactly
  // (the decode is injective and the encode rounds to nearest).
  for (std::uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    if ((h & 0x7C00u) == 0x7C00u) continue;  // inf/NaN: not produced on wire
    const float f = simd::f16_bits_to_f32(h);
    const std::uint16_t back = simd::f32_to_f16_bits(f);
    if ((h & 0x7FFFu) == 0 && (back & 0x7FFFu) == 0) continue;  // ±0 merge
    ASSERT_EQ(back, h) << "bits " << bits;
  }
}

TEST(WireCodec, CompressedFieldEncodedBytesMatchEncoder) {
  // CompressedField::encoded_sample_bytes must agree with what a WireEncoder
  // actually produces for the whole field, for every codec.
  const Grid3 g = Grid3::cube(32);
  const sampling::SamplingPolicy policy =
      sampling::SamplingPolicy::uniform(2, 0);
  const auto tree = std::make_shared<const sampling::Octree>(
      g, Box3::cube_at({0, 0, 0}, 16), policy);
  sampling::CompressedField field(tree);
  SplitMix64 rng(15);
  for (auto& v : field.samples()) v = rng.uniform(-1.0, 1.0);

  EXPECT_EQ(field.encoded_sample_bytes(WireCodec::kOff), field.sample_bytes());
  for (const WireCodec codec : kAllWireCodecs) {
    std::vector<double> wire;
    WireEncoder enc(codec, wire);
    const auto cells = field.octree().cells();
    for (const auto& cell : cells) {
      enc.add_cell(field.samples().subspan(cell.sample_offset,
                                           cell.sample_count()));
    }
    EXPECT_EQ(enc.finish(), field.encoded_sample_bytes(codec))
        << "codec " << codec_name(codec);
  }
}

TEST(RuntimeFlags, EnvChoiceNamesVariableAndValueOnError) {
  ASSERT_EQ(setenv("LC_TEST_CHOICE", "bogus", 1), 0);
  try {
    (void)env_choice("LC_TEST_CHOICE", 0, {"alpha", "beta"});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("LC_TEST_CHOICE"), std::string::npos);
    EXPECT_NE(msg.find("bogus"), std::string::npos);
    EXPECT_NE(msg.find("alpha"), std::string::npos);
    EXPECT_NE(msg.find("beta"), std::string::npos);
  }
  ASSERT_EQ(setenv("LC_TEST_CHOICE", "beta", 1), 0);
  EXPECT_EQ(env_choice("LC_TEST_CHOICE", 0, {"alpha", "beta"}), 1u);
  ASSERT_EQ(unsetenv("LC_TEST_CHOICE"), 0);
  EXPECT_EQ(env_choice("LC_TEST_CHOICE", 1, {"alpha", "beta"}), 1u);
}

}  // namespace
}  // namespace lc::comm
