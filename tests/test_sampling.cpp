// Tests for the adaptive sampling substrate: policy, octree, metadata codec,
// compressed-field reconstruction.
#include <gtest/gtest.h>

#include <numbers>
#include <set>

#include "common/rng.hpp"
#include "sampling/compressed_field.hpp"
#include "sampling/octree.hpp"
#include "sampling/sampling_policy.hpp"

namespace lc::sampling {
namespace {

TEST(SamplingPolicy, PaperDefaultRates) {
  // §5.4: r=2 for distance <= k/2, r=8 for <= 4k, far rate beyond; the
  // sub-domain plus a small dense halo stay at full resolution.
  const i64 k = 32;
  const SamplingPolicy p = SamplingPolicy::paper_default(k, 16);
  EXPECT_EQ(p.rate_at_distance(0), 1);   // inside: full resolution
  EXPECT_EQ(p.rate_at_distance(1), 1);   // dense halo (default width 2)
  EXPECT_EQ(p.rate_at_distance(2), 1);
  EXPECT_EQ(p.rate_at_distance(3), 2);
  EXPECT_EQ(p.rate_at_distance(16), 2);  // k/2
  EXPECT_EQ(p.rate_at_distance(17), 8);
  EXPECT_EQ(p.rate_at_distance(128), 8);  // 4k
  EXPECT_EQ(p.rate_at_distance(129), 16);
  EXPECT_EQ(p.rate_at_distance(100000), 16);
}

TEST(SamplingPolicy, PaperDefaultDegeneratesGracefullyForTinyK) {
  // k small enough that k/2 <= halo: the rate-2 band disappears.
  const SamplingPolicy p = SamplingPolicy::paper_default(4, 16, 0, 2);
  EXPECT_EQ(p.rate_at_distance(1), 1);
  EXPECT_EQ(p.rate_at_distance(2), 1);
  EXPECT_EQ(p.rate_at_distance(3), 8);
  EXPECT_EQ(p.rate_at_distance(17), 16);
}

TEST(SamplingPolicy, UniformPolicy) {
  const SamplingPolicy p = SamplingPolicy::uniform(4);
  EXPECT_EQ(p.rate_at_distance(0), 1);
  EXPECT_EQ(p.rate_at_distance(1), 4);
  EXPECT_EQ(p.rate_at_distance(500), 4);
}

TEST(SamplingPolicy, BoundaryShellIsDense) {
  const Grid3 g{64, 64, 64};
  const Box3 dom = Box3::cube_at({16, 16, 16}, 16);
  const SamplingPolicy p = SamplingPolicy::paper_default(16, 16, 2);
  EXPECT_EQ(p.rate_at({0, 32, 32}, dom, g), 1);   // on the boundary shell
  EXPECT_EQ(p.rate_at({1, 32, 32}, dom, g), 1);   // band width 2
  EXPECT_EQ(p.rate_at({63, 32, 32}, dom, g), 1);  // far face too
  EXPECT_NE(p.rate_at({2, 32, 32}, dom, g), 1);   // just inside interior
}

TEST(SamplingPolicy, RejectsNonPow2Rates) {
  EXPECT_THROW(SamplingPolicy({{4, 3}}, 16), InvalidArgument);
  EXPECT_THROW(SamplingPolicy({}, 7), InvalidArgument);
}

TEST(SamplingPolicy, RejectsUnsortedBands) {
  EXPECT_THROW(SamplingPolicy({{8, 2}, {4, 4}}, 16), InvalidArgument);
}

TEST(SamplingPolicy, EffectiveExteriorRateBounds) {
  const Grid3 g{32, 32, 32};
  const Box3 dom = Box3::cube_at({8, 8, 8}, 8);
  const SamplingPolicy p = SamplingPolicy::uniform(4);
  const double r = p.effective_exterior_rate(g, dom);
  // Exterior sampled at rate 4 in each dim → effective rate slightly below
  // 4 because retained lattice points are counted exactly (ceil effects).
  EXPECT_GT(r, 2.5);
  EXPECT_LT(r, 4.5);
}

TEST(BoundaryDistance, Basics) {
  const Grid3 g{16, 16, 16};
  EXPECT_EQ(boundary_distance({0, 8, 8}, g), 0);
  EXPECT_EQ(boundary_distance({15, 8, 8}, g), 0);
  EXPECT_EQ(boundary_distance({8, 8, 8}, g), 7);
  EXPECT_EQ(boundary_distance({3, 8, 5}, g), 3);
}

class OctreeFixture : public ::testing::Test {
 protected:
  Grid3 grid_{64, 64, 64};
  Box3 dom_ = Box3::cube_at({16, 16, 16}, 16);
  SamplingPolicy policy_ = SamplingPolicy::paper_default(16, 16, 2);
  Octree tree_{grid_, dom_, policy_};
};

TEST_F(OctreeFixture, CellsTileTheGridExactly) {
  std::size_t vol = 0;
  for (const auto& c : tree_.cells()) vol += c.box().volume();
  EXPECT_EQ(vol, grid_.size());
  // Spot-check disjointness with point membership counting.
  SplitMix64 rng(17);
  for (int t = 0; t < 200; ++t) {
    const Index3 p{static_cast<i64>(rng.below(64)),
                   static_cast<i64>(rng.below(64)),
                   static_cast<i64>(rng.below(64))};
    int owners = 0;
    for (const auto& c : tree_.cells()) {
      if (c.box().contains(p)) ++owners;
    }
    EXPECT_EQ(owners, 1) << p.str();
  }
}

TEST_F(OctreeFixture, SubdomainIsFullResolution) {
  for_each_point(dom_, [&](const Index3& p) {
    EXPECT_EQ(tree_.cell_containing(p).rate, 1) << p.str();
  });
}

TEST_F(OctreeFixture, RatesFollowPolicy) {
  SplitMix64 rng(5);
  for (int t = 0; t < 300; ++t) {
    const Index3 p{static_cast<i64>(rng.below(64)),
                   static_cast<i64>(rng.below(64)),
                   static_cast<i64>(rng.below(64))};
    const OctreeCell& c = tree_.cell_containing(p);
    // Cell rate can be capped by cell side but never exceeds the policy
    // rate of any point it contains.
    const i64 want = policy_.rate_at(p, dom_, grid_);
    EXPECT_LE(c.rate, want) << p.str();
  }
}

TEST_F(OctreeFixture, CellRatesDivideSides) {
  for (const auto& c : tree_.cells()) {
    EXPECT_GT(c.side, 0);
    EXPECT_EQ(c.side % c.rate, 0);
    EXPECT_EQ(c.corner.x % c.rate, 0);  // globally aligned lattice
    EXPECT_EQ(c.corner.y % c.rate, 0);
    EXPECT_EQ(c.corner.z % c.rate, 0);
  }
}

TEST_F(OctreeFixture, SampleOffsetsArePrefixSums) {
  std::size_t expect = 0;
  for (const auto& c : tree_.cells()) {
    EXPECT_EQ(c.sample_offset, expect);
    expect += c.sample_count();
  }
  EXPECT_EQ(tree_.total_samples(), expect);
}

TEST_F(OctreeFixture, CompressionRatioAboveOne) {
  EXPECT_GT(tree_.compression_ratio(), 1.0);
  EXPECT_LT(static_cast<double>(tree_.total_samples()),
            static_cast<double>(grid_.size()));
}

TEST_F(OctreeFixture, MetadataRoundTrip) {
  const auto meta = tree_.encode_metadata();
  EXPECT_EQ(meta.size(), tree_.cells().size() * 5);
  const Octree back =
      Octree::decode_metadata(grid_, meta, tree_.total_samples());
  ASSERT_EQ(back.cells().size(), tree_.cells().size());
  for (std::size_t i = 0; i < back.cells().size(); ++i) {
    const auto& a = tree_.cells()[i];
    const auto& b = back.cells()[i];
    EXPECT_EQ(a.corner, b.corner);
    EXPECT_EQ(a.side, b.side);
    EXPECT_EQ(a.rate, b.rate);
    EXPECT_EQ(a.sample_offset, b.sample_offset);
  }
}

TEST_F(OctreeFixture, RetainedZPlanesIncludeSubdomainDensely) {
  const auto planes = tree_.retained_z_planes();
  std::set<i64> s(planes.begin(), planes.end());
  for (i64 z = dom_.lo.z; z < dom_.hi.z; ++z) EXPECT_TRUE(s.count(z)) << z;
  EXPECT_TRUE(std::is_sorted(planes.begin(), planes.end()));
  EXPECT_EQ(s.size(), planes.size());
  // With a dense boundary shell on the x/y faces every z carries samples;
  // without the shell, z planes are genuinely pruned.
  const Octree no_shell(grid_, dom_, SamplingPolicy::paper_default(16, 16, 0));
  EXPECT_LT(no_shell.retained_z_planes().size(),
            static_cast<std::size_t>(grid_.nz));
}

TEST(Octree, RequiresCubicPow2Grid) {
  const SamplingPolicy p = SamplingPolicy::uniform(2);
  EXPECT_THROW(Octree(Grid3{12, 12, 12}, Box3::cube_at({0, 0, 0}, 4), p),
               InvalidArgument);
  EXPECT_THROW(Octree(Grid3{8, 8, 16}, Box3::cube_at({0, 0, 0}, 4), p),
               InvalidArgument);
}

TEST(Octree, DecodeRejectsCorruptMetadata) {
  std::vector<std::int32_t> bad{0, 0, 0, 1};  // not a multiple of 5
  EXPECT_THROW(Octree::decode_metadata(Grid3{8, 8, 8}, bad, 10),
               InvalidArgument);
}

TEST(Octree, UniformRateOnePolicyGivesOneDenseCell) {
  const Grid3 g{16, 16, 16};
  const SamplingPolicy p = SamplingPolicy::uniform(1);
  const Octree t(g, Box3::cube_at({4, 4, 4}, 4), p);
  // Everything is rate 1 → root is a single uniform cell.
  ASSERT_EQ(t.cells().size(), 1u);
  EXPECT_EQ(t.total_samples(), g.size());
}

TEST(CompressedField, DenseCellRegionReconstructsExactly) {
  const Grid3 g{32, 32, 32};
  const Box3 dom = Box3::cube_at({8, 8, 8}, 8);
  auto tree = std::make_shared<Octree>(g, dom,
                                       SamplingPolicy::paper_default(8, 8, 0));
  RealField f(g);
  SplitMix64 rng(3);
  for (auto& v : f.span()) v = rng.uniform(-1, 1);

  const CompressedField c = CompressedField::compress(f, tree);
  const RealField back = c.reconstruct();
  // Inside the sub-domain (rate 1) reconstruction is exact.
  for_each_point(dom, [&](const Index3& p) {
    EXPECT_DOUBLE_EQ(back(p), f(p)) << p.str();
  });
}

TEST(CompressedField, SmoothFieldReconstructsAccurately) {
  const Grid3 g{32, 32, 32};
  const Box3 dom = Box3::cube_at({8, 8, 8}, 8);
  auto tree =
      std::make_shared<Octree>(g, dom, SamplingPolicy::paper_default(8, 8, 0));
  // Rapidly decaying field mimicking a Green's-function response: by the
  // time the coarse (rate 8) region starts the values are negligible —
  // this is exactly the data property the compression strategy exploits.
  RealField f(g);
  for_each_point(Box3::of(g), [&](const Index3& p) {
    const double dx = static_cast<double>(p.x) - 12.0;
    const double dy = static_cast<double>(p.y) - 12.0;
    const double dz = static_cast<double>(p.z) - 12.0;
    f(p) = std::exp(-(dx * dx + dy * dy + dz * dz) / 18.0);
  });
  const CompressedField c = CompressedField::compress(f, tree);
  const RealField back = c.reconstruct();
  EXPECT_LT(relative_l2_error(back.span(), f.span()), 0.05);
}

TEST(CompressedField, ValueAtMatchesReconstruct) {
  const Grid3 g{16, 16, 16};
  const Box3 dom = Box3::cube_at({4, 4, 4}, 4);
  auto tree =
      std::make_shared<Octree>(g, dom, SamplingPolicy::uniform(4));
  RealField f(g);
  SplitMix64 rng(8);
  for (auto& v : f.span()) v = rng.uniform(-1, 1);
  const CompressedField c = CompressedField::compress(f, tree);
  const RealField back = c.reconstruct();
  SplitMix64 prng(9);
  for (int t = 0; t < 100; ++t) {
    const Index3 p{static_cast<i64>(prng.below(16)),
                   static_cast<i64>(prng.below(16)),
                   static_cast<i64>(prng.below(16))};
    // The vectorized row path evaluates the same stencil in a different
    // summation order than the per-point value_at, so agreement is to
    // rounding, not bit-exact.
    EXPECT_NEAR(c.value_at(p), back(p), 1e-12) << p.str();
  }
}

// Property test for the vectorized row engine: reconstruct_add_rows must
// match the per-point scalar reference to rounding (1e-12) for every rate,
// region phase, boundary (wrapping) cell, and interpolation order.
TEST(CompressedField, RowEngineMatchesScalarReference) {
  const Grid3 g{32, 32, 32};
  RealField f(g);
  SplitMix64 rng(71);
  for (auto& v : f.span()) v = rng.uniform(-1, 1);

  const std::vector<std::shared_ptr<const Octree>> trees = {
      std::make_shared<Octree>(g, Box3::cube_at({8, 8, 8}, 8),
                               SamplingPolicy::uniform(2)),
      std::make_shared<Octree>(g, Box3::cube_at({8, 8, 8}, 8),
                               SamplingPolicy::uniform(4)),
      std::make_shared<Octree>(g, Box3::cube_at({16, 8, 8}, 8),
                               SamplingPolicy::uniform(8)),
      // Corner sub-domain: coarse cells touch the grid edge, so their
      // edge-inclusive lattices wrap periodically.
      std::make_shared<Octree>(g, Box3::cube_at({0, 0, 0}, 8),
                               SamplingPolicy::paper_default(8, 8)),
  };
  const std::vector<Box3> regions = {
      Box3::of(g),
      {{3, 1, 2}, {29, 30, 27}},     // odd offsets hit every (rate, phase)
      {{0, 0, 0}, {32, 32, 5}},      // thin slab
      {{13, 13, 13}, {14, 14, 14}},  // single point
  };
  for (std::size_t ti = 0; ti < trees.size(); ++ti) {
    const CompressedField c = CompressedField::compress(f, trees[ti]);
    for (std::size_t ri = 0; ri < regions.size(); ++ri) {
      const Box3& region = regions[ri];
      for (const auto interp :
           {Interpolation::kTrilinear, Interpolation::kTricubic}) {
        const std::size_t n = region.volume();
        // Non-zero prior contents: both paths must *add*, not overwrite.
        std::vector<double> rows(n), scalar(n);
        for (std::size_t i = 0; i < n; ++i) {
          rows[i] = scalar[i] = rng.uniform(-1, 1);
        }
        c.reconstruct_add_rows(rows, region, interp);
        c.reconstruct_add_scalar(scalar, region, interp);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_NEAR(rows[i], scalar[i], 1e-12)
              << "tree " << ti << " region " << ri << " interp "
              << static_cast<int>(interp) << " flat index " << i;
        }
      }
    }
  }
}

TEST(CompressedField, ReconstructAddAccumulates) {
  const Grid3 g{16, 16, 16};
  auto tree = std::make_shared<Octree>(g, Box3::cube_at({4, 4, 4}, 4),
                                       SamplingPolicy::uniform(2));
  RealField f(g, 1.0);
  const CompressedField c = CompressedField::compress(f, tree);
  const Box3 region{{2, 2, 2}, {10, 10, 10}};
  RealField out(region.extents(), 5.0);
  c.reconstruct_add(out, region);
  // Constant field interpolates exactly; 5 + 1 everywhere.
  for (const auto& v : out.span()) EXPECT_NEAR(v, 6.0, 1e-12);
}

TEST(CompressedField, ReconstructAddRejectsMismatchedRegion) {
  const Grid3 g{16, 16, 16};
  auto tree = std::make_shared<Octree>(g, Box3::cube_at({4, 4, 4}, 4),
                                       SamplingPolicy::uniform(2));
  CompressedField c(tree);
  RealField wrong(Grid3{4, 4, 4});
  EXPECT_THROW(c.reconstruct_add(wrong, Box3{{0, 0, 0}, {8, 8, 8}}),
               InvalidArgument);
}

TEST(CompressedField, PayloadBytesMatchSampleCount) {
  const Grid3 g{32, 32, 32};
  auto tree = std::make_shared<Octree>(g, Box3::cube_at({8, 8, 8}, 8),
                                       SamplingPolicy::uniform(4));
  CompressedField c(tree);
  EXPECT_EQ(c.sample_bytes(), tree->total_samples() * sizeof(double));
  EXPECT_EQ(c.metadata_bytes(), tree->cells().size() * 20);
  EXPECT_LT(c.sample_bytes(), g.size() * sizeof(double));
}

TEST(CompressedField, TricubicExactOnDenseCells) {
  const Grid3 g{16, 16, 16};
  auto tree = std::make_shared<Octree>(g, Box3::cube_at({4, 4, 4}, 8),
                                       SamplingPolicy::uniform(1));
  RealField f(g);
  SplitMix64 rng(21);
  for (auto& v : f.span()) v = rng.uniform(-1, 1);
  const CompressedField c = CompressedField::compress(f, tree);
  const RealField back = c.reconstruct(Interpolation::kTricubic);
  EXPECT_LT(max_abs_error(back.span(), f.span()), 1e-14);
}

TEST(CompressedField, TricubicReproducesLinearFieldsExactly) {
  // Catmull-Rom reproduces polynomials up to degree 3 on interior stencils
  // and degree 1 everywhere (clamped faces included).
  const Grid3 g{32, 32, 32};
  auto tree = std::make_shared<Octree>(g, Box3::cube_at({8, 8, 8}, 8),
                                       SamplingPolicy::uniform(4));
  RealField f(g);
  for_each_point(Box3::of(g), [&](const Index3& p) {
    f(p) = 0.5 * static_cast<double>(p.x) - 0.25 * static_cast<double>(p.y) +
           static_cast<double>(p.z);
  });
  const CompressedField c = CompressedField::compress(f, tree);
  // Check interior points away from the wrap seam (the linear field is not
  // periodic, so wrapped top-edge samples are excluded).
  for_each_point(Box3{{2, 2, 2}, {24, 24, 24}}, [&](const Index3& p) {
    EXPECT_NEAR(c.value_at(p, Interpolation::kTricubic), f(p), 1e-10)
        << p.str();
  });
}

TEST(CompressedField, TricubicBeatsTrilinearOnSmoothPeriodicFields) {
  // Corner sub-domain → the far half of the grid coarsens into large
  // rate-2 cells (9 samples per edge) with plenty of interior stencils,
  // where the cubic order pays off.
  const Grid3 g{32, 32, 32};
  auto tree = std::make_shared<Octree>(g, Box3::cube_at({0, 0, 0}, 8),
                                       SamplingPolicy::uniform(2));
  RealField f(g);
  const double w = 2.0 * std::numbers::pi / 32.0;
  for_each_point(Box3::of(g), [&](const Index3& p) {
    f(p) = std::sin(w * static_cast<double>(p.x)) *
           std::cos(w * static_cast<double>(p.y)) *
           std::sin(w * static_cast<double>(p.z) + 0.3);
  });
  const CompressedField c = CompressedField::compress(f, tree);
  const double linear =
      relative_l2_error(c.reconstruct(Interpolation::kTrilinear).span(),
                        f.span());
  const double cubic =
      relative_l2_error(c.reconstruct(Interpolation::kTricubic).span(),
                        f.span());
  EXPECT_LT(cubic, linear * 0.6);
  EXPECT_GT(linear, 0.0);
}

// Property sweep: compression error decreases as far rate decreases, over a
// family of rates.
class RateSweep : public ::testing::TestWithParam<i64> {};

TEST_P(RateSweep, ErrorShrinksWithRate) {
  const i64 rate = GetParam();
  const Grid3 g{32, 32, 32};
  const Box3 dom = Box3::cube_at({12, 12, 12}, 8);
  auto tree = std::make_shared<Octree>(g, dom, SamplingPolicy::uniform(rate));
  // Periodic field (convolution results are periodic; the octree's
  // edge-inclusive lattice wraps at the grid boundary).
  RealField f(g);
  const double w = 2.0 * std::numbers::pi / 32.0;
  for_each_point(Box3::of(g), [&](const Index3& p) {
    f(p) = std::sin(w * static_cast<double>(p.x)) *
           std::cos(2.0 * w * static_cast<double>(p.y)) *
           std::sin(w * static_cast<double>(p.z) + 0.5);
  });
  const CompressedField c = CompressedField::compress(f, tree);
  const double err = relative_l2_error(c.reconstruct().span(), f.span());
  // Error bound grows with rate; r=2 well below r=8 bound.
  const double bound = 0.02 * static_cast<double>(rate * rate);
  EXPECT_LT(err, bound) << "rate=" << rate;
  if (rate > 1) EXPECT_GT(err, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, RateSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace lc::sampling
