// Tests for the traditional baselines: dense single-node convolution and
// the distributed slab FFT with its two all-to-all transposes.
#include <gtest/gtest.h>

#include "baseline/dense.hpp"
#include "baseline/distributed_fft.hpp"
#include "common/rng.hpp"
#include "fft/convolution.hpp"
#include "green/gaussian.hpp"

namespace lc::baseline {
namespace {

RealField random_field(const Grid3& g, std::uint64_t seed) {
  RealField f(g);
  SplitMix64 rng(seed);
  for (auto& v : f.span()) v = rng.uniform(-1.0, 1.0);
  return f;
}

TEST(DenseBaseline, MatchesFftConvolutionHelpers) {
  const Grid3 g = Grid3::cube(16);
  const green::GaussianSpectrum kernel(g, 1.5);
  const RealField input = random_field(g, 1);

  const RealField got = dense_convolve(input, kernel);
  fft::Fft3D plan(g);
  const RealField want =
      fft::convolve_with_spectrum(input, kernel.materialize(g), plan);
  EXPECT_LT(max_abs_error(got.span(), want.span()), 1e-11);
}

TEST(DenseBaseline, RegistersDenseWorkingSet) {
  const Grid3 g = Grid3::cube(16);
  const green::GaussianSpectrum kernel(g, 1.5);
  device::DeviceContext ctx(device::DeviceSpec::unlimited());
  (void)dense_convolve(random_field(g, 2), kernel, nullptr, &ctx);
  EXPECT_EQ(ctx.used_bytes(), 0u);
  EXPECT_GE(ctx.peak_bytes(), 2u * 16 * g.size());  // field + workspace
}

TEST(DenseBaseline, CapacityLimitEnforced) {
  const Grid3 g = Grid3::cube(32);
  const green::GaussianSpectrum kernel(g, 1.5);
  device::DeviceContext tiny({"tiny", 1 << 10});
  EXPECT_THROW((void)dense_convolve(random_field(g, 3), kernel, nullptr, &tiny),
               ResourceExhausted);
}

TEST(DenseBaseline, R2CPathMatchesComplexPath) {
  const Grid3 g = Grid3::cube(16);
  const green::GaussianSpectrum kernel(g, 1.7);
  const RealField input = random_field(g, 5);
  const RealField complex_path = dense_convolve(input, kernel);
  const RealField real_path = dense_convolve_r2c(input, kernel);
  EXPECT_LT(max_abs_error(real_path.span(), complex_path.span()), 1e-10);
}

TEST(DenseBaseline, R2CPathRegistersHalfTheSpectrum) {
  const Grid3 g = Grid3::cube(16);
  const green::GaussianSpectrum kernel(g, 1.7);
  device::DeviceContext full_ctx(device::DeviceSpec::unlimited());
  device::DeviceContext half_ctx(device::DeviceSpec::unlimited());
  (void)dense_convolve(random_field(g, 6), kernel, nullptr, &full_ctx);
  (void)dense_convolve_r2c(random_field(g, 6), kernel, nullptr, &half_ctx);
  EXPECT_LT(half_ctx.peak_bytes(), full_ctx.peak_bytes());
  EXPECT_GT(half_ctx.peak_bytes(), full_ctx.peak_bytes() / 3);
}

TEST(DenseBaseline, FootprintFormulaAndMaxGrid) {
  EXPECT_EQ(dense_convolve_bytes(1024), 3ull * 8 * 1024 * 1024 * 1024);
  // Paper §5.1: traditional cuFFT handles up to 1024³ (not 2048³) on the
  // 32 GB V100.
  EXPECT_EQ(dense_max_grid(device::DeviceSpec::v100_32gb()), 1024);
  EXPECT_LT(dense_max_grid(device::DeviceSpec::v100_16gb()), 1024);
}

class DistributedFftTest : public ::testing::TestWithParam<int> {};

TEST_P(DistributedFftTest, MatchesDenseAcrossRankCounts) {
  const int workers = GetParam();
  const Grid3 g = Grid3::cube(16);
  auto kernel = std::make_shared<green::GaussianSpectrum>(g, 1.3);
  const RealField input = random_field(g, 7);

  comm::SimCluster cluster(workers);
  const RealField got = distributed_fft_convolve(cluster, input, kernel);
  const RealField want = dense_convolve(input, *kernel);
  EXPECT_LT(max_abs_error(got.span(), want.span()), 1e-10) << workers;
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistributedFftTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(DistributedFft, PerformsExactlyTwoAllToAllRounds) {
  const Grid3 g = Grid3::cube(16);
  auto kernel = std::make_shared<green::GaussianSpectrum>(g, 1.3);
  comm::SimCluster cluster(4);
  (void)distributed_fft_convolve(cluster, random_field(g, 8), kernel);
  // The paper's Fig 1a / Eqn 1: two all-to-all stages.
  EXPECT_EQ(cluster.stats().collective_rounds.load(), 2u);
}

TEST(DistributedFft, MovesTheWholeSpectrumTwice) {
  const Grid3 g = Grid3::cube(16);
  auto kernel = std::make_shared<green::GaussianSpectrum>(g, 1.3);
  const int workers = 4;
  comm::SimCluster cluster(workers);
  (void)distributed_fft_convolve(cluster, random_field(g, 9), kernel);
  // Each transpose moves the off-diagonal (p-1)/p share of N³ complex
  // values (2 doubles each); two transposes.
  const std::size_t n3 = g.size();
  const std::size_t expected =
      2 * (n3 * (workers - 1) / workers) * 2 * sizeof(double);
  EXPECT_EQ(cluster.stats().bytes_sent.load(), expected);
}

TEST(DistributedFft, RejectsIndivisibleRankCount) {
  const Grid3 g = Grid3::cube(16);
  auto kernel = std::make_shared<green::GaussianSpectrum>(g, 1.3);
  comm::SimCluster cluster(3);
  EXPECT_THROW(
      (void)distributed_fft_convolve(cluster, random_field(g, 10), kernel),
      InvalidArgument);
}

}  // namespace
}  // namespace lc::baseline
