#!/usr/bin/env python3
"""CI perf-smoke gate for the --json-probe micro-benchmarks.

Compares a freshly produced BENCH_<name>.json (from
`bench_fft_micro --json-probe` or `bench_sampling_micro --json-probe`)
against the committed baseline in bench/baselines/ and fails if any gated
row regressed by more than the threshold.

Gated rows: rows carrying a truthy "gated" field in the baseline. Probes
that predate the field (BENCH_fft_micro.json baselines) fall back to the
legacy heuristic: path == "batch" of the pow2 pencil cases. Everything else
is reported but informational (scalar is the reference path; Bluestein adds
noise from the chirp length's allocator behaviour).

Refreshing a baseline (after an intentional engine change, or when moving
CI to different hardware):

    cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-rel -j --target bench_fft_micro bench_sampling_micro
    (cd build-rel && ./bench/bench_fft_micro --json-probe)
    (cd build-rel && ./bench/bench_sampling_micro --json-probe)
    cp build-rel/BENCH_*.json bench/baselines/

Usage: check_perf_regression.py BASELINE.json CURRENT.json [--threshold 0.15]
"""

import argparse
import json
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        key = (row["case"], int(row["n"]), int(row["batch"]), row["path"])
        rows[key] = (float(row["mitems_per_s"]), row.get("gated"))
    return rows


def is_gated(key, gated_field):
    if gated_field is not None:
        return bool(int(gated_field))
    case, _n, _batch, path = key  # legacy probes without a "gated" field
    return path == "batch" and case == "pencil_pow2"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed fractional throughput drop on gated "
                         "rows (default 0.15)")
    args = ap.parse_args()

    base = load_rows(args.baseline)
    cur = load_rows(args.current)

    failures = []
    print(f"{'case':<22} {'n':>5} {'B':>4} {'path':<7} "
          f"{'base':>9} {'now':>9} {'ratio':>7}")
    for key in sorted(base):
        case, n, batch, path = key
        b, gated_field = base[key]
        gated = is_gated(key, gated_field)
        if key not in cur:
            print(f"{case:<22} {n:>5} {batch:>4} {path:<7} "
                  f"{b:>9.1f} {'MISSING':>9}")
            if gated:
                failures.append(f"{key}: row missing from current results")
            continue
        c = cur[key][0]
        ratio = c / b if b > 0 else float("inf")
        mark = ""
        if gated and c < b * (1.0 - args.threshold):
            mark = "  << REGRESSION"
            failures.append(
                f"{case} n={n} B={batch} {path}: {b:.1f} -> {c:.1f} "
                f"Mitems/s ({(1 - ratio) * 100:.1f}% drop, "
                f"limit {args.threshold * 100:.0f}%)")
        print(f"{case:<22} {n:>5} {batch:>4} {path:<7} "
              f"{b:>9.1f} {c:>9.1f} {ratio:>6.2f}x{mark}")

    if failures:
        print("\nPerf regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        print("\nIf the change is intentional, refresh the baseline "
              "(see this script's docstring).", file=sys.stderr)
        return 1
    print("\nPerf regression gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
