// Table 3: runtime of our compressed local method vs the traditional dense
// FFT convolution, with L2 approximation error, for a single sub-domain
// convolution (the paper's POC measures exactly this: one k³ sub-domain in
// an N³ grid, k = 32, r swept).
//
// Substitution note: the paper's columns are GPU (ours) vs CPU FFTW; we
// run both sides on the CPU, so absolute speedups are smaller than the
// paper's 4–24× (which include the GPU's raw advantage). The *shape* to
// reproduce: speedup grows with N (the dense method does O(N³ log N) work
// on the whole grid, ours O(N²·k + N²·planes) on slabs), and the
// approximation error stays ≤ 3%.
//
// Default sizes are laptop-scale (N ≤ 256); pass --full to add N = 512.
#include <cstdio>
#include <cstring>

#include "baseline/dense.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/hyperparams.hpp"
#include "core/pipeline.hpp"
#include "fft/convolution.hpp"
#include "green/gaussian.hpp"
#include "bench_json.hpp"

int main(int argc, char** argv) {
  using namespace lc;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  bench::JsonTable table("table3_speedup",
      "Table 3 — our method vs dense FFT, single sub-domain convolution");
  table.header({"N", "k", "r", "Ours (ms)", "Dense (ms)", "Speedup",
                "L2 error", "Paper speedup"});

  struct Row {
    i64 n;
    i64 k;
    i64 r;
    const char* paper;
  };
  std::vector<Row> rows = {{64, 32, 4, "-"},
                           {128, 32, 4, "4.17"},
                           {256, 32, 4, "11.91"},
                           {256, 32, 8, "-"}};
  if (full) {
    rows.push_back({512, 32, 4, "19.24"});
    rows.push_back({512, 32, 8, "21.46"});
  }

  for (const auto& row : rows) {
    const Grid3 g = Grid3::cube(row.n);
    auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);

    // One k³ sub-domain, centred (paper: sub-domain convolution POC).
    const Index3 corner{row.n / 2 - row.k / 2, row.n / 2 - row.k / 2,
                        row.n / 2 - row.k / 2};
    const Box3 dom = Box3::cube_at(corner, row.k);
    RealField chunk(Grid3::cube(row.k));
    SplitMix64 rng(static_cast<std::uint64_t>(row.n * 100 + row.r));
    for (auto& v : chunk.span()) v = rng.uniform(-1.0, 1.0);

    // Ours: compressed local pipeline.
    auto tree = std::make_shared<sampling::Octree>(
        g, dom,
        sampling::SamplingPolicy::paper_default(row.k, row.r, 0,
                                                /*dense_halo=*/3));
    core::LocalConvolverConfig cfg;
    cfg.batch = core::recommended_batch(row.n);
    core::LocalConvolver ours(g, kernel, cfg);
    Stopwatch sw_ours;
    const auto compressed = ours.convolve_subdomain(chunk, corner, tree);
    const double ours_ms = sw_ours.millis();

    // Dense: full-grid FFT convolution of the zero-embedded chunk.
    RealField padded(g, 0.0);
    padded.insert(chunk, corner);
    Stopwatch sw_dense;
    const RealField want = baseline::dense_convolve(padded, *kernel);
    const double dense_ms = sw_dense.millis();

    const RealField got = compressed.reconstruct();
    const double err = relative_l2_error(got.span(), want.span());

    table.row({std::to_string(row.n), std::to_string(row.k),
               std::to_string(row.r), format_fixed(ours_ms, 2),
               format_fixed(dense_ms, 2), format_fixed(dense_ms / ours_ms, 2),
               format_fixed(err * 100.0, 2) + "%", row.paper});
  }
  table.print();
  std::puts(
      "\nShape check: speedup grows with N; error <= 3% (paper §5.3)."
      "\nAbsolute paper speedups (4-24x) include the GPU/CPU hardware gap;"
      "\nhere both sides run on the same CPU. Pass --full for N = 512.");
  return 0;
}
