// Tiny machine-readable sidecar for the bench harnesses: every table bench
// prints its human TextTable as before AND drops a BENCH_<name>.json next
// to the working directory, so CI / plotting scripts consume results
// without scraping ASCII. Header-only, no dependencies.
//
// Usage mirrors TextTable so wiring a bench is three lines:
//   lc::bench::JsonWriter json("table3_speedup");
//   json.header({"N", "k", "ours_ms", ...});   // same order as the table
//   json.row({...});                           // alongside every table.row
//   json.write();                              // before returning
//
// Cells that parse fully as numbers are emitted as JSON numbers; anything
// else (units, "-", "1.29 GB") stays a JSON string.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hpp"

namespace lc::bench {

class JsonWriter {
 public:
  /// `name` names the output file: BENCH_<name>.json in the current
  /// working directory.
  explicit JsonWriter(std::string name) : name_(std::move(name)) {}

  /// Column keys; must be set before the first row.
  void header(std::vector<std::string> keys) { keys_ = std::move(keys); }

  /// One result row, cell-per-key in header order (ragged rows are
  /// truncated/padded against the header like TextTable's).
  void row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

  /// Free-form top-level annotation ("units": "ms", "mode": "--full", ...).
  void meta(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, value);
  }

  /// Write BENCH_<name>.json; returns the path (empty string on I/O
  /// failure — benches should not die because a sidecar could not open).
  std::string write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return "";
    std::fputs("{\n", f);
    std::fprintf(f, "  \"bench\": %s,\n", quoted(name_).c_str());
    // Provenance stamp: which commit produced this sidecar (the bench
    // CMakeLists resolves the short SHA at configure time). Baseline
    // checkers compare "rows" only, so refreshing a baseline updates the
    // stamp without ever failing a gate by itself.
#ifdef LC_GIT_SHA
    std::fprintf(f, "  \"git_sha\": %s,\n", quoted(LC_GIT_SHA).c_str());
#endif
    for (const auto& [key, value] : meta_) {
      std::fprintf(f, "  %s: %s,\n", quoted(key).c_str(),
                   quoted(value).c_str());
    }
    std::fputs("  \"rows\": [\n", f);
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fputs("    {", f);
      for (std::size_t c = 0; c < keys_.size(); ++c) {
        const std::string cell = c < rows_[r].size() ? rows_[r][c] : "";
        std::fprintf(f, "%s%s: %s", c == 0 ? "" : ", ",
                     quoted(keys_[c]).c_str(), value_of(cell).c_str());
      }
      std::fprintf(f, "}%s\n", r + 1 < rows_.size() ? "," : "");
    }
    std::fputs("  ]\n}\n", f);
    std::fclose(f);
    return path;
  }

 private:
  static std::string quoted(const std::string& s) {
    std::string out = "\"";
    for (const char ch : s) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
            out += buf;
          } else {
            out += ch;
          }
      }
    }
    out += '"';
    return out;
  }

  /// Numbers pass through bare; everything else is quoted. The character
  /// whitelist keeps strtod's "inf"/"nan" spellings (invalid JSON) quoted.
  static std::string value_of(const std::string& cell) {
    if (!cell.empty() &&
        cell.find_first_not_of("0123456789+-.eE") == std::string::npos) {
      char* end = nullptr;
      (void)std::strtod(cell.c_str(), &end);
      if (end != nullptr && *end == '\0') {
        return cell;  // the whole cell parsed as a number
      }
    }
    return quoted(cell);
  }

  std::string name_;
  std::vector<std::string> keys_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::pair<std::string, std::string>> meta_;
};

/// Drop-in TextTable replacement that mirrors every row into a JsonWriter:
/// swapping `TextTable table("title")` for
/// `bench::JsonTable table("name", "title")` is the whole migration of a
/// bench — print() renders the ASCII table as before and writes the
/// BENCH_<name>.json sidecar.
class JsonTable {
 public:
  JsonTable(std::string json_name, std::string title)
      : table_(std::move(title)), json_(std::move(json_name)) {}

  void header(std::vector<std::string> cells) {
    json_.header(cells);
    table_.header(std::move(cells));
  }
  void row(std::vector<std::string> cells) {
    json_.row(cells);
    table_.row(std::move(cells));
  }
  /// Extra JSON-only annotation (not rendered in the ASCII table).
  void meta(const std::string& key, const std::string& value) {
    json_.meta(key, value);
  }

  void print() const {
    table_.print();
    const std::string path = json_.write();
    if (!path.empty()) std::printf("[json] wrote %s\n", path.c_str());
  }

 private:
  TextTable table_;
  JsonWriter json_;
};

}  // namespace lc::bench
