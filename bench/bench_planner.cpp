// Auto-tuning planner bench + smoke gate (DESIGN.md §15, README
// "Auto-tuning").
//
// Default mode: plan the paper-scale serving shape — N = 128, P = 64 ranks
// on 8 nodes of 8 — print the ranked candidate table, then gate the
// acceptance criterion: the planner's pick must land within 10% of the best
// EXACT-priced total over an exhaustive sweep of the feasible block
// candidates (the planner only exact-prices its closed-form shortlist, so
// this checks the screening, not the sort). Also runs the assignment A/B:
// per-rank bounding-hull volume under blocked-Morton vs round-robin — the
// locality that makes node-granularity dedup real.
//
// --json-probe: plan N ∈ {64, 128}, emit BENCH_planner.json rows with the
// MODELED throughput of each pick (deterministic — the gate catches cost
// model drift, not machine noise) and die on any infeasible selection or a
// >10% gap.
//
// --assignment=roundrobin: run everything under the legacy round-robin
// assignment (sets LC_ASSIGNMENT before the first decomposition; the A/B
// companion invocation for CI or manual comparison).
//
// --fit-calibration HISTORY.jsonl [--calibration-out cal.json]
// [--drift-gate [--drift-against FRESH.jsonl]]: close the telemetry loop
// (DESIGN.md §18). Fits a compute rate + per-level α-β from a
// plan-vs-actual history, optionally saves the fit, and with --drift-gate
// checks (1) the calibrated compute prediction lands at most half as far
// from executed measurements (held-out records when --drift-against names a
// post-fit re-run) as the static-DeviceSpec default, and (2) the pick
// re-ranked under the fit stays within 10% of the exhaustive exact sweep.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "core/decomposition.hpp"
#include "obs/telemetry.hpp"
#include "planner/calibration.hpp"
#include "planner/planner.hpp"

namespace {

using namespace lc;

/// Exact-priced total (real octree traffic walk + the candidate's modeled
/// compute) — the oracle the acceptance gate compares against.
double exact_total(const planner::PlanRequest& req,
                   const planner::RankedCandidate& rc) {
  const auto traffic = core::lowcomm_exchange_traffic(
      Grid3::cube(req.n), rc.candidate.params, req.topology,
      rc.candidate.route);
  return rc.cost.compute_seconds +
         comm::predict_exchange_times(traffic, req.links).total_seconds();
}

planner::PlanRequest paper_request(i64 n, int ranks, int per_node) {
  planner::PlanRequest req;
  req.n = n;
  req.ranks = ranks;
  req.topology = comm::Topology::grouped(ranks, per_node);
  req.device = device::DeviceSpec::v100_32gb();
  // The planner applies LC_CALIBRATION internally; pre-applying here keeps
  // the bench's own exact_total pricing (which reads req.links directly) on
  // the same fitted link model the planner ranked with. No-op when unset.
  return planner::apply_calibration(req, planner::calibration_from_env());
}

/// Sweep floor: the exact traffic walk builds one octree per sub-domain, so
/// k below 16 at N = 128 (4096+ sub-domains) would turn a smoke bench into
/// minutes. The planner itself still enumerates every divisor.
constexpr i64 kSweepMinSubdomain = 16;

struct GateResult {
  bool ok = true;
  double pick_total = 0.0;
  double best_total = 0.0;
};

GateResult gate_pick_vs_exhaustive(const planner::PlanRequest& req,
                                   const planner::ExecutionPlan& plan) {
  GateResult gate;
  double best = std::numeric_limits<double>::infinity();
  std::size_t swept = 0, skipped = 0;
  for (const auto& rc : plan.ranked) {
    if (rc.candidate.kind != planner::DecompKind::kBlock ||
        !rc.cost.feasible) {
      continue;
    }
    if (rc.candidate.params.subdomain < kSweepMinSubdomain) {
      ++skipped;
      continue;
    }
    best = std::min(best, exact_total(req, rc));
    ++swept;
  }
  planner::RankedCandidate picked;
  picked.candidate = plan.choice;
  picked.cost = plan.cost;
  gate.pick_total = exact_total(req, picked);
  gate.best_total = best;
  if (skipped > 0) {
    std::printf("  (sweep covered %zu candidates; %zu below k=%lld skipped "
                "— octree walk cost, not a gate exemption)\n",
                swept, skipped,
                static_cast<long long>(kSweepMinSubdomain));
  }
  if (!(gate.pick_total <= 1.10 * best)) {
    std::printf("FAIL: pick %s exact total %.6f s vs sweep best %.6f s "
                "(>10%% gap)\n",
                plan.choice.name().c_str(), gate.pick_total, best);
    gate.ok = false;
  }
  if (plan.cost.memory_bytes > req.device.capacity_bytes) {
    std::printf("FAIL: pick is memory-infeasible (%zu > %zu bytes)\n",
                plan.cost.memory_bytes, req.device.capacity_bytes);
    gate.ok = false;
  }
  return gate;
}

void print_ranked(const planner::PlanRequest& req,
                  const planner::ExecutionPlan& plan, std::size_t top) {
  TextTable table("Ranked candidates, N=" + std::to_string(req.n) + ", P=" +
                  std::to_string(req.ranks) + ", " +
                  std::to_string(req.topology.nodes()) + " nodes (" +
                  planner::mode_name(plan.mode) + ")");
  table.header({"candidate", "feasible", "mem GB", "pred err", "wire MB",
                "wire ms", "compute s", "total s", "priced"});
  std::size_t shown = 0;
  for (const auto& rc : plan.ranked) {
    if (shown++ >= top) break;
    table.row(
        {rc.candidate.name(),
         rc.cost.feasible ? "yes" : "no: " + rc.cost.infeasible_reason,
         format_fixed(static_cast<double>(rc.cost.memory_bytes) / (1u << 30),
                      2),
         format_fixed(rc.cost.predicted_rel_error, 4),
         format_fixed(rc.cost.exchange_bytes / 1e6, 1),
         format_fixed(rc.cost.wire.total_seconds() * 1e3, 3),
         format_fixed(rc.cost.compute_seconds, 4),
         format_fixed(rc.cost.total_seconds(), 4),
         rc.cost.exact_traffic ? "exact" : "model"});
  }
  table.print();
}

void assignment_ab(i64 n, i64 k, int ranks) {
  // Locality A/B without re-running the process: per-rank bounding-hull
  // volume over owned sub-domains, in units of the owned volume. 1.0 =
  // perfectly compact; round-robin scatters ranks across the whole grid.
  const core::DomainDecomposition decomp(Grid3::cube(n), k);
  TextTable table("Assignment A/B: per-rank hull volume / owned volume (N=" +
                  std::to_string(n) + ", k=" + std::to_string(k) + ", P=" +
                  std::to_string(ranks) + ")");
  table.header({"assignment", "mean spread", "max spread"});
  for (const auto how :
       {core::Assignment::kBlockedMorton, core::Assignment::kRoundRobin}) {
    double mean = 0.0, worst = 0.0;
    for (int r = 0; r < ranks; ++r) {
      const auto mine = decomp.assigned_to(r, ranks, how);
      if (mine.empty()) continue;
      Box3 hull = decomp.subdomain(mine.front());
      for (const auto i : mine) {
        const Box3& b = decomp.subdomain(i);
        hull.lo = {std::min(hull.lo.x, b.lo.x), std::min(hull.lo.y, b.lo.y),
                   std::min(hull.lo.z, b.lo.z)};
        hull.hi = {std::max(hull.hi.x, b.hi.x), std::max(hull.hi.y, b.hi.y),
                   std::max(hull.hi.z, b.hi.z)};
      }
      const double spread =
          static_cast<double>(hull.extents().size()) /
          (static_cast<double>(mine.size()) * static_cast<double>(k * k * k));
      mean += spread / ranks;
      worst = std::max(worst, spread);
    }
    table.row({how == core::Assignment::kBlockedMorton ? "blocked-morton"
                                                       : "round-robin",
               format_fixed(mean, 2), format_fixed(worst, 2)});
  }
  table.print();
  std::puts("");
}

int run_json_probe() {
  bench::JsonTable table("planner",
                         "Planner picks, modeled throughput (deterministic)");
  table.header({"case", "n", "batch", "path", "mitems_per_s", "feasible",
                "gated"});
  table.meta("units", "mitems_per_s (modeled)");

  bool ok = true;
  for (const i64 n : {i64{64}, i64{128}}) {
    const planner::PlanRequest req = paper_request(n, 64, 8);
    const planner::Planner planner;
    const planner::ExecutionPlan plan = planner.plan(req);
    const GateResult gate = gate_pick_vs_exhaustive(req, plan);
    ok = ok && gate.ok;

    const bool feasible =
        plan.cost.feasible &&
        plan.cost.memory_bytes <= req.device.capacity_bytes;
    if (!feasible) {
      std::printf("FAIL: N=%lld pick infeasible\n", static_cast<long long>(n));
      ok = false;
    }
    const double mitems =
        static_cast<double>(Grid3::cube(n).size()) /
        std::max(plan.cost.total_seconds(), 1e-12) / 1e6;
    table.row({"planner_pick", std::to_string(n),
               std::to_string(plan.params().batch), "modeled",
               format_fixed(mitems, 1), feasible ? "1" : "0", "1"});
    // Informational row: the best baseline-FFT variant the pick beat.
    for (const auto& rc : plan.ranked) {
      if (rc.candidate.kind == planner::DecompKind::kBlock) continue;
      const double base_mitems =
          static_cast<double>(Grid3::cube(n).size()) /
          std::max(rc.cost.total_seconds(), 1e-12) / 1e6;
      table.row({"baseline_" + rc.candidate.name(), std::to_string(n),
                 std::to_string(plan.params().batch), "modeled",
                 format_fixed(base_mitems, 1), rc.cost.feasible ? "1" : "0",
                 "0"});
    }
  }
  table.print();
  return ok ? 0 : 1;
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

/// --fit-calibration: fit from a telemetry history, print/save the fit, and
/// (with --drift-gate) check the closed loop actually tightened compute
/// predictions. Prediction error is evaluated against EXECUTED records —
/// the held-out file from --drift-against when given (a re-run after the
/// fit: the honest closed loop), else the fit history itself. A serial
/// micro-probe would not do here: the history's measured compute includes
/// the concurrency the real runs execute under, which is exactly the
/// machine behaviour the calibration exists to capture.
int run_calibration(const std::string& history, const std::string& out,
                    bool drift_gate, const std::string& eval_path) {
  const planner::Calibration cal = planner::fit_calibration_file(history);
  if (!cal.valid) {
    std::printf("FAIL: %s yielded no usable fit (%d samples, min %d)\n",
                history.c_str(), cal.samples,
                planner::kMinCalibrationSamples);
    return 1;
  }
  const double static_rate = planner::PlanRequest{}.compute_rate_pps;
  std::printf(
      "calibration fit from %s:\n"
      "  samples      %d\n"
      "  rate_pps     %.6g point-passes/s (static default %.6g)\n"
      "  intra (α,β)  (%.4g s/msg, %.4g s/B)\n"
      "  inter (α,β)  (%.4g s/msg, %.4g s/B)\n",
      history.c_str(), cal.samples, cal.rate_pps, static_rate,
      cal.intra_alpha, cal.intra_beta, cal.inter_alpha, cal.inter_beta);
  if (!out.empty()) {
    if (!planner::save_calibration(cal, out)) {
      std::printf("FAIL: cannot write calibration to %s\n", out.c_str());
      return 1;
    }
    std::printf("  saved to     %s\n", out.c_str());
  }
  if (!drift_gate) return 0;
  bool ok = true;

  // Gate 1: calibrated compute predictions must sit at most half as far
  // from the executed measurement as the static-DeviceSpec rate (median
  // relative error over the distributed records), unless the static rate
  // was already accurate (<5%: nothing worth halving).
  const std::string eval_file = eval_path.empty() ? history : eval_path;
  std::vector<double> errs_cal, errs_static;
  for (const obs::PlanOutcome& r : obs::read_plan_outcomes(eval_file)) {
    if (r.aborted || r.ranks <= 1 || r.meas_compute_s <= 0.0 ||
        r.pred_point_passes <= 0.0) {
      continue;
    }
    const auto rel_err = [&](double rate) {
      return std::abs(r.pred_point_passes / rate - r.meas_compute_s) /
             r.meas_compute_s;
    };
    errs_cal.push_back(rel_err(cal.rate_pps));
    errs_static.push_back(rel_err(static_rate));
  }
  if (errs_cal.empty()) {
    std::printf("FAIL: %s has no distributed records to evaluate against\n",
                eval_file.c_str());
    return 1;
  }
  const double med_cal = median_of(errs_cal);
  const double med_static = median_of(errs_static);
  const bool drift_ok = med_static < 0.05 || med_cal <= 0.5 * med_static;
  std::printf(
      "\ndrift gate vs %s (%zu records%s): median compute error "
      "static %.1f%%, calibrated %.1f%% %s\n",
      eval_file.c_str(), errs_cal.size(),
      eval_path.empty() ? ", self-eval" : ", held out", 100.0 * med_static,
      100.0 * med_cal, drift_ok ? "OK" : "FAIL");
  ok = ok && drift_ok;

  // Gate 2: re-ranked under the fitted rates, the pick must still land
  // within 10% of the exhaustive exact sweep on the paper shapes.
  for (const i64 n : {i64{64}, i64{128}}) {
    const planner::PlanRequest cal_req =
        planner::apply_calibration(paper_request(n, 64, 8), cal);
    const planner::Planner planner;
    const planner::ExecutionPlan plan = planner.plan(cal_req);
    const GateResult gate = gate_pick_vs_exhaustive(cal_req, plan);
    std::printf("N=%lld calibrated pick %s: exact total %.6f s, sweep best "
                "%.6f s %s\n",
                static_cast<long long>(n), plan.choice.name().c_str(),
                gate.pick_total, gate.best_total, gate.ok ? "OK" : "FAIL");
    ok = ok && gate.ok;
  }
  if (ok) {
    std::puts("\ndrift gate: the fitted calibration halves compute "
              "prediction error on\nexecuted runs and keeps the re-ranked "
              "pick within 10% of the sweep.");
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assignment=roundrobin") == 0) {
      // Must precede the first decomposition: the process default latches
      // on first use (core::default_assignment).
      ::setenv("LC_ASSIGNMENT", "roundrobin", 1);
    }
  }
  std::string fit_path, cal_out, drift_against;
  bool drift_gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fit-calibration") == 0 && i + 1 < argc) {
      fit_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--calibration-out") == 0 && i + 1 < argc) {
      cal_out = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--drift-against") == 0 && i + 1 < argc) {
      drift_against = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--drift-gate") == 0) drift_gate = true;
  }
  if (!fit_path.empty()) {
    return run_calibration(fit_path, cal_out, drift_gate, drift_against);
  }

  const bool json_probe =
      argc > 1 && std::any_of(argv + 1, argv + argc, [](const char* a) {
        return std::strcmp(a, "--json-probe") == 0;
      });
  if (json_probe) return run_json_probe();

  const planner::PlanRequest req = paper_request(128, 64, 8);
  const planner::Planner planner;
  const planner::ExecutionPlan plan = planner.plan(req);

  std::printf("pick: %s  (mode %s)\n\n", plan.choice.name().c_str(),
              planner::mode_name(plan.mode));
  print_ranked(req, plan, 12);
  std::puts("");

  const GateResult gate = gate_pick_vs_exhaustive(req, plan);
  std::printf("acceptance: pick exact total %.6f s, sweep best %.6f s "
              "(gap %.1f%%)\n\n",
              gate.pick_total, gate.best_total,
              100.0 * (gate.pick_total / gate.best_total - 1.0));

  // 27 ranks: coprime with the 8-wide sub-domain grid, so the round-robin
  // stride visits every x/y/z coordinate and each rank's hull blows up to
  // the whole domain; blocked-Morton runs stay compact regardless.
  assignment_ab(128, 16, 27);

  std::puts(
      "Shape check: the pick is a feasible block plan within 10% of the\n"
      "exhaustive exact sweep; blocked-Morton ranks stay spatially compact\n"
      "(spread ~1) while round-robin scatters across the grid.");
  return gate.ok ? 0 : 1;
}
