// Micro-benchmarks of the FFT substrate: 1D radix-2 vs Bluestein, real vs
// complex transforms, 3D sweeps, strided pencils, and the input/output
// pruning ablation (full transform + subsample vs direct evaluation).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "fft/fft1d.hpp"
#include "fft/fft3d.hpp"
#include "fft/pruned.hpp"
#include "fft/real_fft.hpp"

namespace {

using namespace lc;
using namespace lc::fft;

std::vector<cplx> random_signal(std::size_t n) {
  SplitMix64 rng(n);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return v;
}

void BM_Fft1D_Pow2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fft1D plan(n);
  FftWorkspace ws;
  auto data = random_signal(n);
  for (auto _ : state) {
    plan.forward(data, ws);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft1D_Pow2)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Fft1D_Bluestein(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fft1D plan(n);
  FftWorkspace ws;
  auto data = random_signal(n);
  for (auto _ : state) {
    plan.forward(data, ws);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft1D_Bluestein)->Arg(255)->Arg(1000)->Arg(4095);

void BM_RealFft_Forward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RealFft1D plan(n);
  FftWorkspace ws;
  SplitMix64 rng(n);
  std::vector<double> in(n);
  for (auto& v : in) v = rng.uniform(-1, 1);
  std::vector<cplx> out(plan.spectrum_size());
  for (auto _ : state) {
    plan.forward(in, out, ws);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RealFft_Forward)->Arg(1024)->Arg(4096);

void BM_ComplexAsReal_Forward(benchmark::State& state) {
  // Baseline for BM_RealFft_Forward: same data through the complex path.
  const auto n = static_cast<std::size_t>(state.range(0));
  Fft1D plan(n);
  FftWorkspace ws;
  auto data = random_signal(n);
  for (auto& v : data) v = cplx{v.real(), 0.0};
  for (auto _ : state) {
    auto copy = data;
    plan.forward(copy, ws);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_ComplexAsReal_Forward)->Arg(1024)->Arg(4096);

void BM_Fft3D_Forward(benchmark::State& state) {
  const auto n = state.range(0);
  const Grid3 g = Grid3::cube(n);
  Fft3D plan(g);
  ComplexField f(g);
  SplitMix64 rng(7);
  for (auto& v : f.span()) v = cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto _ : state) {
    plan.forward(f);
    benchmark::DoNotOptimize(f.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.size()));
}
BENCHMARK(BM_Fft3D_Forward)->Arg(32)->Arg(64)->Arg(128);

void BM_InputPrunedForward(benchmark::State& state) {
  // k nonzero inputs in an N-point transform (the slab z-stage inner op).
  const std::size_t n = 1024;
  const auto k = static_cast<std::size_t>(state.range(0));
  Fft1D plan(n);
  FftWorkspace ws;
  const auto chunk = random_signal(k);
  std::vector<cplx> out(n);
  for (auto _ : state) {
    input_pruned_forward(plan, chunk, n / 2, out, ws);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_InputPrunedForward)->Arg(16)->Arg(64)->Arg(256);

void BM_OutputPruned_Direct(benchmark::State& state) {
  const std::size_t n = 1024;
  const auto wanted_count = static_cast<std::size_t>(state.range(0));
  Fft1D plan(n);
  FftWorkspace ws;
  const auto spec = random_signal(n);
  std::vector<std::size_t> wanted(wanted_count);
  for (std::size_t i = 0; i < wanted_count; ++i) {
    wanted[i] = i * (n / wanted_count);
  }
  std::vector<cplx> out(wanted_count);
  for (auto _ : state) {
    output_pruned_inverse(plan, spec, wanted, out, ws, PruneStrategy::kDirect);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_OutputPruned_Direct)->Arg(4)->Arg(16)->Arg(64);

void BM_OutputPruned_FullTransform(benchmark::State& state) {
  const std::size_t n = 1024;
  const auto wanted_count = static_cast<std::size_t>(state.range(0));
  Fft1D plan(n);
  FftWorkspace ws;
  const auto spec = random_signal(n);
  std::vector<std::size_t> wanted(wanted_count);
  for (std::size_t i = 0; i < wanted_count; ++i) {
    wanted[i] = i * (n / wanted_count);
  }
  std::vector<cplx> out(wanted_count);
  for (auto _ : state) {
    output_pruned_inverse(plan, spec, wanted, out, ws,
                          PruneStrategy::kFullTransform);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_OutputPruned_FullTransform)->Arg(4)->Arg(16)->Arg(64);

void BM_StridedPencils(benchmark::State& state) {
  // The z-pencil access pattern: stride = N², one plane of pencils.
  const std::size_t n = 64;
  Fft1D plan(n);
  FftWorkspace ws;
  auto data = random_signal(n * n * n);
  for (auto _ : state) {
    plan.forward_strided(data.data(), n * n, 1, n * n, ws);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_StridedPencils);

}  // namespace

BENCHMARK_MAIN();
