// Micro-benchmarks of the FFT substrate: 1D radix-2 vs Bluestein, real vs
// complex transforms, 3D sweeps, strided pencils, batch-major SIMD pencils
// vs the scalar path, and the input/output pruning ablation (full transform
// + subsample vs direct evaluation).
//
// Two modes:
//   (default)      google-benchmark over everything registered below.
//   --json-probe   deterministic best-of-N timing of the pencil scalar/batch
//                  pairs only; writes BENCH_fft_micro.json (bench_json.hpp)
//                  for the CI perf-smoke gate (bench/check_perf_regression.py).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "fft/fft1d.hpp"
#include "fft/fft3d.hpp"
#include "fft/pruned.hpp"
#include "fft/real_fft.hpp"

namespace {

using namespace lc;
using namespace lc::fft;

std::vector<cplx> random_signal(std::size_t n) {
  SplitMix64 rng(n);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return v;
}

void BM_Fft1D_Pow2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fft1D plan(n);
  FftWorkspace ws;
  auto data = random_signal(n);
  for (auto _ : state) {
    plan.forward(data, ws);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft1D_Pow2)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Fft1D_Bluestein(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fft1D plan(n);
  FftWorkspace ws;
  auto data = random_signal(n);
  for (auto _ : state) {
    plan.forward(data, ws);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft1D_Bluestein)->Arg(255)->Arg(1000)->Arg(4095);

void BM_RealFft_Forward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RealFft1D plan(n);
  FftWorkspace ws;
  SplitMix64 rng(n);
  std::vector<double> in(n);
  for (auto& v : in) v = rng.uniform(-1, 1);
  std::vector<cplx> out(plan.spectrum_size());
  for (auto _ : state) {
    plan.forward(in, out, ws);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RealFft_Forward)->Arg(1024)->Arg(4096);

void BM_ComplexAsReal_Forward(benchmark::State& state) {
  // Baseline for BM_RealFft_Forward: same data through the complex path.
  const auto n = static_cast<std::size_t>(state.range(0));
  Fft1D plan(n);
  FftWorkspace ws;
  auto data = random_signal(n);
  for (auto& v : data) v = cplx{v.real(), 0.0};
  for (auto _ : state) {
    auto copy = data;
    plan.forward(copy, ws);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_ComplexAsReal_Forward)->Arg(1024)->Arg(4096);

void BM_Fft3D_Forward(benchmark::State& state) {
  const auto n = state.range(0);
  const Grid3 g = Grid3::cube(n);
  Fft3D plan(g);
  ComplexField f(g);
  SplitMix64 rng(7);
  for (auto& v : f.span()) v = cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto _ : state) {
    plan.forward(f);
    benchmark::DoNotOptimize(f.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.size()));
}
BENCHMARK(BM_Fft3D_Forward)->Arg(32)->Arg(64)->Arg(128);

void BM_InputPrunedForward(benchmark::State& state) {
  // k nonzero inputs in an N-point transform (the slab z-stage inner op).
  const std::size_t n = 1024;
  const auto k = static_cast<std::size_t>(state.range(0));
  Fft1D plan(n);
  FftWorkspace ws;
  const auto chunk = random_signal(k);
  std::vector<cplx> out(n);
  for (auto _ : state) {
    input_pruned_forward(plan, chunk, n / 2, out, ws);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_InputPrunedForward)->Arg(16)->Arg(64)->Arg(256);

void BM_OutputPruned_Direct(benchmark::State& state) {
  const std::size_t n = 1024;
  const auto wanted_count = static_cast<std::size_t>(state.range(0));
  Fft1D plan(n);
  FftWorkspace ws;
  const auto spec = random_signal(n);
  std::vector<std::size_t> wanted(wanted_count);
  for (std::size_t i = 0; i < wanted_count; ++i) {
    wanted[i] = i * (n / wanted_count);
  }
  std::vector<cplx> out(wanted_count);
  for (auto _ : state) {
    output_pruned_inverse(plan, spec, wanted, out, ws, PruneStrategy::kDirect);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_OutputPruned_Direct)->Arg(4)->Arg(16)->Arg(64);

void BM_OutputPruned_FullTransform(benchmark::State& state) {
  const std::size_t n = 1024;
  const auto wanted_count = static_cast<std::size_t>(state.range(0));
  Fft1D plan(n);
  FftWorkspace ws;
  const auto spec = random_signal(n);
  std::vector<std::size_t> wanted(wanted_count);
  for (std::size_t i = 0; i < wanted_count; ++i) {
    wanted[i] = i * (n / wanted_count);
  }
  std::vector<cplx> out(wanted_count);
  for (auto _ : state) {
    output_pruned_inverse(plan, spec, wanted, out, ws,
                          PruneStrategy::kFullTransform);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_OutputPruned_FullTransform)->Arg(4)->Arg(16)->Arg(64);

void BM_StridedPencils(benchmark::State& state) {
  // The z-pencil access pattern: stride = N², one plane of pencils.
  const std::size_t n = 64;
  Fft1D plan(n);
  FftWorkspace ws;
  auto data = random_signal(n * n * n);
  for (auto _ : state) {
    plan.forward_strided(data.data(), n * n, 1, n * n, ws);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_StridedPencils);

void BM_PencilBatch_Scalar(benchmark::State& state) {
  // Reference: B contiguous pencils one at a time (scalar butterflies).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  Fft1D plan(n);
  FftWorkspace ws;
  auto data = random_signal(n * batch);
  for (auto _ : state) {
    plan.forward_strided(data.data(), 1, n, batch, ws);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * batch));
}
BENCHMARK(BM_PencilBatch_Scalar)
    ->Args({128, 8})->Args({128, 32})->Args({256, 8})->Args({256, 32});

void BM_PencilBatch_Simd(benchmark::State& state) {
  // Batch-major SoA path: SIMD lanes across pencils (kBatchTile at a time).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  Fft1D plan(n);
  FftWorkspace ws;
  auto data = random_signal(n * batch);
  for (auto _ : state) {
    plan.forward_batch(data.data(), 1, n, batch, ws);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * batch));
}
BENCHMARK(BM_PencilBatch_Simd)
    ->Args({128, 8})->Args({128, 32})->Args({256, 8})->Args({256, 32});

// ---------------------------------------------------------------------------
// --json-probe: deterministic pencil scalar/batch timings for the CI gate.

/// Median-free best-of-runs throughput of `op` over `items` complex items.
double probe_mitems(const std::function<void()>& op, std::size_t items) {
  using clock = std::chrono::steady_clock;
  op();  // warm caches and scratch
  // Calibrate rep count for ~30 ms per timed run.
  auto t0 = clock::now();
  op();
  double once = std::chrono::duration<double>(clock::now() - t0).count();
  const int reps = std::max(1, static_cast<int>(0.03 / std::max(once, 1e-7)));
  double best = 0.0;
  for (int run = 0; run < 3; ++run) {
    t0 = clock::now();
    for (int r = 0; r < reps; ++r) op();
    const double dt = std::chrono::duration<double>(clock::now() - t0).count();
    const double rate =
        static_cast<double>(items) * reps / dt / 1e6;  // Mitems/s
    best = std::max(best, rate);
  }
  return best;
}

int run_json_probe() {
  lc::bench::JsonWriter json("fft_micro");
  json.meta("simd_backend", std::string(simd::kBackend));
  json.meta("units", "mitems_per_s");
  json.header({"case", "n", "batch", "path", "mitems_per_s", "gated"});

  const auto emit = [&](const char* name, std::size_t n, std::size_t batch,
                        const char* path, bool gated,
                        const std::function<void()>& op) {
    const double rate = probe_mitems(op, n * batch);
    char num[32];
    std::snprintf(num, sizeof(num), "%.1f", rate);
    json.row({name, std::to_string(n), std::to_string(batch), path, num,
              gated ? "1" : "0"});
    std::printf("%-18s n=%-4zu B=%-3zu %-7s %8.1f Mitems/s%s\n", name, n,
                batch, path, rate, gated ? "  [gated]" : "");
  };

  struct Case {
    const char* name;
    std::size_t n;
    std::size_t batch;
  };
  // The pow2 batch rows are the regression gate; the Bluestein row is
  // informational (the chirp length's allocator behaviour adds noise), as
  // are the scalar rows (the reference path).
  const Case cases[] = {{"pencil_pow2", 128, 8},
                        {"pencil_pow2", 128, 32},
                        {"pencil_pow2", 256, 8},
                        {"pencil_pow2", 256, 32},
                        {"pencil_bluestein", 100, 32}};
  for (const auto& c : cases) {
    Fft1D plan(c.n);
    FftWorkspace ws;
    auto data = random_signal(c.n * c.batch);
    const bool gate = std::string_view(c.name) == "pencil_pow2";
    emit(c.name, c.n, c.batch, "scalar", false, [&] {
      plan.forward_strided(data.data(), 1, c.n, c.batch, ws);
    });
    emit(c.name, c.n, c.batch, "batch", gate, [&] {
      plan.forward_batch(data.data(), 1, c.n, c.batch, ws);
    });
  }

  // Real half-spectrum pencils (r2c forward / c2r inverse): the batched
  // rows are the LocalConvolver real-path substrate (LC_REAL) and gate
  // alongside the complex pencils; the per-pencil scalar rows are the
  // reference.
  struct RealCase {
    std::size_t n;
    std::size_t batch;
  };
  const RealCase rcases[] = {{128, 32}, {256, 32}};
  for (const auto& c : rcases) {
    RealFft1D plan(c.n);
    FftWorkspace ws;
    SplitMix64 rng(c.n);
    std::vector<double> in(c.n * c.batch);
    for (auto& v : in) v = rng.uniform(-1, 1);
    const std::size_t sbins = plan.spectrum_size();
    std::vector<cplx> spec(sbins * c.batch);
    std::vector<double> out(c.n * c.batch);
    emit("r2c_pow2", c.n, c.batch, "scalar", false, [&] {
      for (std::size_t p = 0; p < c.batch; ++p) {
        plan.forward(std::span(in).subspan(p * c.n, c.n),
                     std::span(spec).subspan(p * sbins, sbins), ws);
      }
    });
    emit("r2c_pow2", c.n, c.batch, "batch", true, [&] {
      plan.forward_batch(in.data(), 1, c.n, spec.data(), 1, sbins, c.batch,
                         ws);
    });
    emit("c2r_pow2", c.n, c.batch, "scalar", false, [&] {
      for (std::size_t p = 0; p < c.batch; ++p) {
        plan.inverse(std::span(std::as_const(spec)).subspan(p * sbins, sbins),
                     std::span(out).subspan(p * c.n, c.n), ws);
      }
    });
    emit("c2r_pow2", c.n, c.batch, "batch", true, [&] {
      plan.inverse_batch(spec.data(), 1, sbins, out.data(), 1, c.n, c.batch,
                         ws);
    });
  }
  const std::string path = json.write();
  if (path.empty()) {
    std::fprintf(stderr, "failed to write BENCH_fft_micro.json\n");
    return 1;
  }
  std::printf("[json] wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json-probe") return run_json_probe();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
