// Micro-benchmarks of the sampling substrate: octree construction,
// metadata codec, compression (gather) and reconstruction (interpolate).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "sampling/compressed_field.hpp"
#include "sampling/octree.hpp"

namespace {

using namespace lc;
using namespace lc::sampling;

void BM_OctreeBuild(benchmark::State& state) {
  const i64 n = state.range(0);
  const Grid3 g = Grid3::cube(n);
  const i64 k = n / 4;
  const Box3 dom = Box3::cube_at({k, k, k}, k);
  const SamplingPolicy policy = SamplingPolicy::paper_default(k, 16, 2);
  for (auto _ : state) {
    Octree tree(g, dom, policy);
    benchmark::DoNotOptimize(tree.total_samples());
  }
}
BENCHMARK(BM_OctreeBuild)->Arg(64)->Arg(128)->Arg(512)->Arg(2048);

void BM_MetadataCodec(benchmark::State& state) {
  const Grid3 g = Grid3::cube(128);
  const Octree tree(g, Box3::cube_at({32, 32, 32}, 32),
                    SamplingPolicy::paper_default(32, 16, 2));
  for (auto _ : state) {
    const auto meta = tree.encode_metadata();
    const Octree back = Octree::decode_metadata(g, meta, tree.total_samples());
    benchmark::DoNotOptimize(back.cells().data());
  }
}
BENCHMARK(BM_MetadataCodec);

void BM_Compress(benchmark::State& state) {
  const i64 n = state.range(0);
  const Grid3 g = Grid3::cube(n);
  auto tree = std::make_shared<Octree>(
      g, Box3::cube_at({n / 4, n / 4, n / 4}, n / 4),
      SamplingPolicy::paper_default(n / 4, 16, 2));
  RealField f(g);
  SplitMix64 rng(1);
  for (auto& v : f.span()) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    auto c = CompressedField::compress(f, tree);
    benchmark::DoNotOptimize(c.samples().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.size()));
}
BENCHMARK(BM_Compress)->Arg(64)->Arg(128);

void BM_Reconstruct(benchmark::State& state) {
  const i64 n = state.range(0);
  const Grid3 g = Grid3::cube(n);
  auto tree = std::make_shared<Octree>(
      g, Box3::cube_at({n / 4, n / 4, n / 4}, n / 4),
      SamplingPolicy::paper_default(n / 4, 16, 2));
  RealField f(g);
  SplitMix64 rng(2);
  for (auto& v : f.span()) v = rng.uniform(-1, 1);
  const CompressedField c = CompressedField::compress(f, tree);
  for (auto _ : state) {
    RealField out = c.reconstruct();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.size()));
}
BENCHMARK(BM_Reconstruct)->Arg(64)->Arg(128);

void BM_ReconstructRegion(benchmark::State& state) {
  // The accumulation inner op: reconstruct one k³ region.
  const i64 n = 128;
  const i64 k = 32;
  const Grid3 g = Grid3::cube(n);
  auto tree = std::make_shared<Octree>(
      g, Box3::cube_at({32, 32, 32}, k),
      SamplingPolicy::paper_default(k, 16, 2));
  RealField f(g);
  SplitMix64 rng(3);
  for (auto& v : f.span()) v = rng.uniform(-1, 1);
  const CompressedField c = CompressedField::compress(f, tree);
  const Box3 region = Box3::cube_at({64, 64, 64}, k);
  RealField out(region.extents());
  for (auto _ : state) {
    out.fill(0.0);
    c.reconstruct_add(out, region);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ReconstructRegion);

}  // namespace

BENCHMARK_MAIN();
