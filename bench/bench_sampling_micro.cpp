// Micro-benchmarks of the sampling substrate: octree construction,
// metadata codec, compression (gather) and reconstruction (interpolate).
//
// Modes:
//   (default)      google-benchmark suite
//   --json-probe   deterministic scalar/rows reconstruction timings written
//                  to BENCH_sampling_micro.json for the CI perf gate
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string_view>
#include <vector>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "sampling/compressed_field.hpp"
#include "sampling/octree.hpp"

namespace {

using namespace lc;
using namespace lc::sampling;

void BM_OctreeBuild(benchmark::State& state) {
  const i64 n = state.range(0);
  const Grid3 g = Grid3::cube(n);
  const i64 k = n / 4;
  const Box3 dom = Box3::cube_at({k, k, k}, k);
  const SamplingPolicy policy = SamplingPolicy::paper_default(k, 16, 2);
  for (auto _ : state) {
    Octree tree(g, dom, policy);
    benchmark::DoNotOptimize(tree.total_samples());
  }
}
BENCHMARK(BM_OctreeBuild)->Arg(64)->Arg(128)->Arg(512)->Arg(2048);

void BM_MetadataCodec(benchmark::State& state) {
  const Grid3 g = Grid3::cube(128);
  const Octree tree(g, Box3::cube_at({32, 32, 32}, 32),
                    SamplingPolicy::paper_default(32, 16, 2));
  for (auto _ : state) {
    const auto meta = tree.encode_metadata();
    const Octree back = Octree::decode_metadata(g, meta, tree.total_samples());
    benchmark::DoNotOptimize(back.cells().data());
  }
}
BENCHMARK(BM_MetadataCodec);

void BM_Compress(benchmark::State& state) {
  const i64 n = state.range(0);
  const Grid3 g = Grid3::cube(n);
  auto tree = std::make_shared<Octree>(
      g, Box3::cube_at({n / 4, n / 4, n / 4}, n / 4),
      SamplingPolicy::paper_default(n / 4, 16, 2));
  RealField f(g);
  SplitMix64 rng(1);
  for (auto& v : f.span()) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    auto c = CompressedField::compress(f, tree);
    benchmark::DoNotOptimize(c.samples().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.size()));
}
BENCHMARK(BM_Compress)->Arg(64)->Arg(128);

void BM_Reconstruct(benchmark::State& state) {
  const i64 n = state.range(0);
  const Grid3 g = Grid3::cube(n);
  auto tree = std::make_shared<Octree>(
      g, Box3::cube_at({n / 4, n / 4, n / 4}, n / 4),
      SamplingPolicy::paper_default(n / 4, 16, 2));
  RealField f(g);
  SplitMix64 rng(2);
  for (auto& v : f.span()) v = rng.uniform(-1, 1);
  const CompressedField c = CompressedField::compress(f, tree);
  for (auto _ : state) {
    RealField out = c.reconstruct();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.size()));
}
BENCHMARK(BM_Reconstruct)->Arg(64)->Arg(128);

void BM_ReconstructRegion(benchmark::State& state) {
  // The accumulation inner op: reconstruct one k³ region.
  const i64 n = 128;
  const i64 k = 32;
  const Grid3 g = Grid3::cube(n);
  auto tree = std::make_shared<Octree>(
      g, Box3::cube_at({32, 32, 32}, k),
      SamplingPolicy::paper_default(k, 16, 2));
  RealField f(g);
  SplitMix64 rng(3);
  for (auto& v : f.span()) v = rng.uniform(-1, 1);
  const CompressedField c = CompressedField::compress(f, tree);
  const Box3 region = Box3::cube_at({64, 64, 64}, k);
  RealField out(region.extents());
  for (auto _ : state) {
    out.fill(0.0);
    c.reconstruct_add(out, region);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ReconstructRegion);

// ---------------------------------------------------------------------------
// --json-probe: deterministic scalar/rows reconstruction timings for the
// CI gate (same shape as bench_fft_micro's probe).

/// Best-of-runs throughput of `op` over `items` grid points.
double probe_mitems(const std::function<void()>& op, std::size_t items) {
  using clock = std::chrono::steady_clock;
  op();  // warm caches and scratch
  auto t0 = clock::now();
  op();
  double once = std::chrono::duration<double>(clock::now() - t0).count();
  const int reps = std::max(1, static_cast<int>(0.03 / std::max(once, 1e-7)));
  double best = 0.0;
  for (int run = 0; run < 3; ++run) {
    t0 = clock::now();
    for (int r = 0; r < reps; ++r) op();
    const double dt = std::chrono::duration<double>(clock::now() - t0).count();
    const double rate = static_cast<double>(items) * reps / dt / 1e6;
    best = std::max(best, rate);
  }
  return best;
}

int run_json_probe() {
  lc::bench::JsonWriter json("sampling_micro");
  json.meta("simd_backend", std::string(simd::kBackend));
  json.meta("units", "mitems_per_s");
  // "gated" marks the rows the regression checker enforces (the vectorized
  // reconstruction path); scalar rows are the informational baseline.
  json.header({"case", "n", "batch", "path", "mitems_per_s", "gated"});

  const i64 n = 128;
  const Grid3 g = Grid3::cube(n);
  auto tree = std::make_shared<Octree>(
      g, Box3::cube_at({n / 4, n / 4, n / 4}, n / 4),
      SamplingPolicy::paper_default(n / 4, 16, 2));
  RealField f(g);
  SplitMix64 rng(2);
  for (auto& v : f.span()) v = rng.uniform(-1, 1);
  const CompressedField c = CompressedField::compress(f, tree);
  const Box3 region = Box3::of(g);
  std::vector<double> out(static_cast<std::size_t>(g.size()));

  struct Case {
    const char* name;
    Interpolation interp;
  };
  for (const auto& cs : {Case{"reconstruct_trilinear", Interpolation::kTrilinear},
                         Case{"reconstruct_tricubic", Interpolation::kTricubic}}) {
    double scalar_rate = 0.0;
    const auto run_path = [&](const char* path, bool gated, auto&& op) {
      const double rate =
          probe_mitems(op, static_cast<std::size_t>(g.size()));
      char num[32];
      std::snprintf(num, sizeof(num), "%.1f", rate);
      json.row({cs.name, std::to_string(n), "1", path, num,
                gated ? "1" : "0"});
      std::printf("%-22s n=%-4lld %-7s %8.1f Mitems/s\n", cs.name,
                  static_cast<long long>(n), path, rate);
      return rate;
    };
    scalar_rate = run_path("scalar", false, [&] {
      std::fill(out.begin(), out.end(), 0.0);
      c.reconstruct_add_scalar(out, region, cs.interp);
    });
    const double rows_rate = run_path("rows", true, [&] {
      std::fill(out.begin(), out.end(), 0.0);
      c.reconstruct_add_rows(out, region, cs.interp);
    });
    std::printf("%-22s rows/scalar speedup: %.2fx\n", cs.name,
                rows_rate / scalar_rate);
  }
  const std::string path = json.write();
  if (path.empty()) {
    std::fprintf(stderr, "failed to write BENCH_sampling_micro.json\n");
    return 1;
  }
  std::printf("[json] wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json-probe") return run_json_probe();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
