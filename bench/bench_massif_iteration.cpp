// MASSIF end-to-end (paper §2.2, §3.2): per-iteration cost and
// communication volume of Algorithm 1 (dense FFTs) vs Algorithm 2
// (low-communication) on a two-phase composite, plus convergence and the
// accuracy of the compressed solve — the "convolution error up to 3% did
// not largely impact convergence" claim (§5.3).
#include <cstdio>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "massif/solver.hpp"
#include "obs/cli.hpp"
#include "bench_json.hpp"

int main(int argc, char** argv) {
  using namespace lc;
  using namespace lc::massif;
  const auto obs_cli = obs::ObsCli::parse(argc, argv);

  const auto soft = Phase::isotropic("matrix", 100.0, 0.3);
  const auto stiff = Phase::isotropic("inclusion", 200.0, 0.3);
  Sym2 macro;
  macro.at(0, 0) = 0.01;

  bench::JsonTable table("massif_iteration","MASSIF Γ∗σ application — dense vs low-communication");
  table.header({"N", "backend", "k", "r/halo", "time (ms)", "rel. error",
                "exchange bytes", "dense all-to-all bytes"});
  for (const i64 n : {32, 64}) {
    const Grid3 g = Grid3::cube(n);
    const auto micro =
        Microstructure::random_spheres(g, soft, stiff, 0.2, 4.0, 7);
    const Lame ref = micro.reference_medium();

    SymTensorField eps(g);
    eps.fill(macro);
    SymTensorField sig(g);
    for_each_point(Box3::of(g), [&](const Index3& p) {
      sig.set(p, micro.stiffness_at(p).ddot(eps.at(p)));
    });

    DenseGreenBackend dense(g, ref);
    SymTensorField want(g);
    SecondsAccumulator dense_time;
    {
      ScopedTimer timer(dense_time);
      dense.apply(sig, want);
    }
    const double dense_ms = dense_time.millis();
    // Traditional distributed FFT moves the whole 6-component spectrum
    // through two all-to-alls per transform direction pair.
    const std::size_t dense_bytes = 6 * 2 * sizeof(double) * g.size() * 2;
    table.row({std::to_string(n), "dense (Alg. 1)", "-", "-",
               format_fixed(dense_ms, 1), "0", "-",
               std::to_string(dense_bytes)});

    LowCommGreenBackend::Params params;
    params.subdomain = n / 2;
    params.far_rate = 4;
    params.dense_halo = 4;
    params.batch = 512;
    LowCommGreenBackend lowcomm(g, ref, params);
    SymTensorField got(g);
    SecondsAccumulator lowcomm_time;
    {
      ScopedTimer timer(lowcomm_time);
      lowcomm.apply(sig, got);
    }
    const double ms = lowcomm_time.millis();
    table.row({std::to_string(n), "low-comm (Alg. 2)",
               std::to_string(params.subdomain), "4/4", format_fixed(ms, 1),
               format_fixed(got.relative_error_to(want) * 100.0, 2) + "%",
               std::to_string(lowcomm.exchange_bytes_per_apply()),
               std::to_string(dense_bytes)});
  }
  table.print();
  std::puts(
      "\nShape check: the compressed exchange undercuts the dense all-to-all\n"
      "volume once the grid is large enough to have a far field (N >= 64);\n"
      "CPU wall-clock favours the dense path at these tiny sizes — the\n"
      "method trades local recompute for communication, which pays off at\n"
      "cluster scale (see bench_comm_model).");

  const Grid3 g = Grid3::cube(32);
  const auto micro =
      Microstructure::random_spheres(g, soft, stiff, 0.2, 4.0, 7);
  const Lame ref = micro.reference_medium();

  // Full fixed-point convergence comparison.
  auto dense_backend = std::make_shared<DenseGreenBackend>(g, ref);
  MassifSolver ref_solver(micro, macro, dense_backend, {5e-3, 30});
  const auto ref_report = ref_solver.solve();

  LowCommGreenBackend::Params params;
  params.subdomain = 16;
  params.far_rate = 4;
  params.dense_halo = 4;
  params.batch = 512;
  auto lc_backend = std::make_shared<LowCommGreenBackend>(g, ref, params);
  MassifSolver lc_solver(micro, macro, lc_backend, {5e-3, 30});
  const auto lc_report = lc_solver.solve();

  std::printf(
      "\nFixed-point solve (tol 5e-3): dense %d iters (converged=%d), "
      "low-comm %d iters (converged=%d), strain error %.2f%%.\n",
      ref_report.iterations, ref_report.converged, lc_report.iterations,
      lc_report.converged,
      lc_solver.strain().relative_error_to(ref_solver.strain()) * 100.0);
  std::puts(
      "Shape check (§5.3): compressed convolution (~3% error) converges in a\n"
      "comparable iteration count to the dense reference.");

  // --- Scheme ablation (extension): basic vs conjugate-gradient ----------
  {
    const Phase very_stiff = Phase::isotropic("stiff20x", 2000.0, 0.3);
    const auto hc =
        Microstructure::cubic_inclusion(g, soft, very_stiff, 16);
    const Lame href = hc.reference_medium();
    auto b1 = std::make_shared<DenseGreenBackend>(g, href);
    MassifSolver basic(hc, macro, b1, {1e-5, 400});
    const auto basic_report = basic.solve();
    auto b2 = std::make_shared<DenseGreenBackend>(g, href);
    MassifSolver cg(hc, macro, b2,
                    {1e-8, 400, Scheme::kConjugateGradient, href});
    const auto cg_report = cg.solve();
    std::printf(
        "\nScheme ablation at contrast 20 (extension beyond the paper):\n"
        "  basic scheme: %d iterations (strain-change criterion)\n"
        "  CG on Lippmann-Schwinger: %d iterations (true residual 1e-8)\n",
        basic_report.iterations, cg_report.iterations);
    std::puts(
        "Both use one Green convolution per iteration, so the CG scheme\n"
        "multiplies every communication saving by its iteration saving.");
  }
  obs_cli.finish();
  return 0;
}
