// Table 1: back-of-envelope memory for the traditional FFT (full N³
// result) vs the domain-local FFT (N×N×k slab), at the paper's exact
// (N, k) rows. Values should match the paper bit-for-bit — they are the
// paper's own formulas (8 N³ and 8 N² k bytes, printed in GB).
#include <cstdio>

#include "common/table.hpp"
#include "device/memory_model.hpp"
#include "bench_json.hpp"

int main() {
  using namespace lc;

  bench::JsonTable table("table1_memory",
      "Table 1 — memory for traditional FFT vs domain-local FFT (GB)");
  table.header({"Problem size", "Domain size", "Traditional FFT [GB]",
                "Local FFT (ours) [GB]", "Spectrum c2c [GB]",
                "Spectrum r2c [GB]"});

  struct Row {
    i64 n;
    i64 k;
  };
  // The paper's exact rows.
  const Row rows[] = {{1024, 128}, {1024, 512}, {2048, 128}, {2048, 512},
                      {4096, 128}, {4096, 512}, {8192, 64},  {8192, 128}};
  for (const auto& r : rows) {
    table.row({std::to_string(r.n) + "^3", std::to_string(r.k) + "^3",
               format_bytes_gb(
                   static_cast<double>(device::traditional_fft_bytes(r.n)), 0),
               format_bytes_gb(static_cast<double>(
                                   device::local_fft_slab_bytes(r.n, r.k)),
                               0),
               format_bytes_gb(
                   static_cast<double>(device::local_fft_spectrum_bytes(
                       r.n, r.k, /*real_path=*/false)),
                   0),
               format_bytes_gb(
                   static_cast<double>(device::local_fft_spectrum_bytes(
                       r.n, r.k, /*real_path=*/true)),
                   1)});
  }
  table.print();
  std::puts(
      "\nPaper values (GB): traditional {8, 8, 64, 64, 512, 512, 4096, 4096};"
      "\n                   ours        {1, 4, 4, 16, 16, 64, 32, 64}."
      "\nSpectrum columns: the slab as stored in spectral space — full"
      "\ncomplex (2x the paper's real-slab figure) vs the LC_REAL Hermitian"
      "\nhalf-spectrum, which lands back at the paper's footprint (+ one"
      "\nNyquist column).");
  return 0;
}
