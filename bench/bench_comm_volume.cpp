// Measured vs modeled communication volume (paper Eqn 1 vs Eqn 6), the
// machine-checkable form of the paper's headline claim: walk the octrees a
// LowCommConvolution engine actually builds at N = 128 for k ∈ {16, 32, 64}
// and put the measured payload next to the Eqn 6 prediction and the dense
// all-to-all baseline. No convolution runs — the exchange volume is a
// property of the sampling pattern, so the bench stays cheap at every k.
//
// Shape checks (die on violation, so CI guards the model):
//   * measured payload within 10% of Eqn 6 at uniform rate r = 2 for
//     k >= 32 (the octree's edge-inclusive faces cost (s/r+1)³ vs (s/r)³
//     per cell, so the relative overhead shrinks as cells grow; the k = 16
//     and r = 4 rows exceed 10% by design — reported, not gated);
//   * the interior-lattice volume equals Eqn 6 exactly for uniform rates;
//   * reduction vs dense grows with k (bigger sub-domains → denser core but
//     fewer duplicated far fields per point).
#include <cmath>
#include <cstdio>

#include "common/table.hpp"
#include "green/gaussian.hpp"
#include "obs/cli.hpp"
#include "obs/comm_volume.hpp"
#include "bench_json.hpp"

int main(int argc, char** argv) {
  using namespace lc;
  const auto obs_cli = obs::ObsCli::parse(argc, argv);

  const i64 n = 128;
  const int workers = 8;
  const Grid3 g = Grid3::cube(n);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);

  bench::JsonTable table(
      "comm_volume",
      "Exchange volume, measured octrees vs Eqn 6 vs dense Eqn 1 (N=128)");
  table.header({"k", "r", "subdomains", "payload bytes", "model bytes",
                "dense bytes", "measured/model", "interior/model",
                "reduction vs dense"});
  table.meta("n", std::to_string(n));
  table.meta("workers", std::to_string(workers));

  bool ok = true;
  for (const i64 k : {i64{16}, i64{32}, i64{64}}) {
    for (const i64 r : {i64{2}, i64{4}}) {
      core::LowCommParams params;
      params.subdomain = k;
      params.far_rate = r;
      params.uniform_rate = r;  // uniform exterior → Eqn 6 applies exactly
      params.dense_halo = 0;
      core::LowCommConvolution engine(g, kernel, params);

      const obs::CommVolumeReport rep =
          obs::measure_comm_volume(engine, workers);
      table.row({std::to_string(k), std::to_string(r),
                 std::to_string(rep.subdomains),
                 std::to_string(rep.payload_bytes),
                 format_fixed(rep.model_bytes, 0),
                 format_fixed(rep.dense_bytes, 0),
                 format_fixed(rep.measured_over_model(), 4),
                 format_fixed(rep.unique_over_model(), 4),
                 format_fixed(rep.reduction_vs_dense(), 1)});

      if (r == 2 && k >= 32 && !rep.within(0.10)) {
        std::printf("FAIL: k=%lld r=2 measured/model %.4f outside 10%%\n",
                    static_cast<long long>(k), rep.measured_over_model());
        ok = false;
      }
      if (std::abs(rep.unique_over_model() - 1.0) > 1e-9) {
        std::printf("FAIL: k=%lld r=%lld interior lattice != Eqn 6 (%.6f)\n",
                    static_cast<long long>(k), static_cast<long long>(r),
                    rep.unique_over_model());
        ok = false;
      }
    }
  }
  table.print();

  std::puts(
      "\nShape check: the interior lattice matches Eqn 6 exactly (uniform\n"
      "rate); the full octree payload carries only the edge-inclusive face\n"
      "overhead ((s/r+1)^3 vs (s/r)^3), within 10% at r=2. The dense Eqn 1\n"
      "baseline is 2N^3 points however the domain is cut.");

  // --- Per-level wire bytes across node counts -----------------------------
  // P = 64 ranks regrouped from 64 nodes of 1 (flat) down to 2 nodes of 32:
  // the hierarchical route packs each cell once per destination NODE, so as
  // ranks fuse into nodes the inter-node wire volume falls while the flat
  // route keeps shipping one copy per destination RANK. Static mirror of
  // the executed schedule — no convolution runs.
  {
    const int ranks = 64;
    core::LowCommParams params;
    params.subdomain = 32;
    params.far_rate = 2;
    params.uniform_rate = 2;
    params.dense_halo = 0;
    core::LowCommConvolution engine(g, kernel, params);

    bench::JsonTable levels(
        "comm_volume_levels",
        "Per-level wire bytes vs node grouping (N=128, k=32, r=2, P=64)");
    levels.header({"nodes", "ranks/node", "intra bytes", "inter bytes",
                   "flat inter bytes", "inter vs flat", "dense/inter"});
    levels.meta("n", std::to_string(n));
    levels.meta("ranks", std::to_string(ranks));

    for (const int nodes : {64, 32, 16, 8, 4, 2}) {
      const int per_node = ranks / nodes;
      const comm::Topology topo = comm::Topology::grouped(ranks, per_node);
      const obs::CommVolumeReport rep = obs::measure_comm_volume(engine, topo);
      levels.row({std::to_string(nodes), std::to_string(per_node),
                  std::to_string(rep.intra_wire_bytes),
                  std::to_string(rep.inter_wire_bytes),
                  std::to_string(rep.flat_inter_wire_bytes),
                  format_fixed(rep.inter_reduction_vs_flat(), 2) + "x",
                  format_fixed(rep.inter_wire_bytes == 0
                                   ? 0.0
                                   : rep.dense_bytes /
                                         static_cast<double>(
                                             rep.inter_wire_bytes),
                               1) +
                      "x"});

      // Gate (the PR's acceptance shape): at 8 nodes x 8 ranks the
      // hierarchical inter-node volume must be strictly below BOTH the
      // flat route's inter-node bytes and its whole wire total.
      if (nodes == 8) {
        const std::size_t flat_total =
            core::lowcomm_exchange_traffic(engine, topo,
                                           core::ExchangeRoute::kFlat)
                .total_bytes();
        if (rep.inter_wire_bytes >= rep.flat_inter_wire_bytes ||
            rep.inter_wire_bytes >= flat_total) {
          std::printf(
              "FAIL: 8x8 hierarchical inter bytes %zu not below flat "
              "(inter %zu, total %zu)\n",
              rep.inter_wire_bytes, rep.flat_inter_wire_bytes, flat_total);
          ok = false;
        }
      }
    }
    levels.print();
    std::puts(
        "\nShape check: inter-node bytes fall monotonically as ranks fuse\n"
        "into nodes (each cell crosses the expensive link once per node,\n"
        "not once per rank); the flat route's inter volume barely moves.\n"
        "The dense Eqn 1 baseline is fixed, so the reduction vs dense grows\n"
        "with the grouping.");
  }

  obs_cli.finish();
  return ok ? 0 : 1;
}
