// Measured vs modeled communication volume (paper Eqn 1 vs Eqn 6), the
// machine-checkable form of the paper's headline claim: walk the octrees a
// LowCommConvolution engine actually builds at N = 128 for k ∈ {16, 32, 64}
// and put the measured payload next to the Eqn 6 prediction and the dense
// all-to-all baseline. No convolution runs — the exchange volume is a
// property of the sampling pattern, so the bench stays cheap at every k.
//
// Shape checks (die on violation, so CI guards the model):
//   * measured payload within 10% of Eqn 6 at uniform rate r = 2 for
//     k >= 32 (the octree's edge-inclusive faces cost (s/r+1)³ vs (s/r)³
//     per cell, so the relative overhead shrinks as cells grow; the k = 16
//     and r = 4 rows exceed 10% by design — reported, not gated);
//   * the interior-lattice volume equals Eqn 6 exactly for uniform rates;
//   * reduction vs dense grows with k (bigger sub-domains → denser core but
//     fewer duplicated far fields per point);
//   * the q16 wire codec cuts the exchanged bytes by >= 2x at the headline
//     shape (k = 32, r = 2), and the executed codec sweep (section 3) keeps
//     the end-to-end L2 error within 3% for every lossy codec while cutting
//     >= 2x — the PR's quantized-wire acceptance, machine-checked.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/dense.hpp"
#include "comm/topology.hpp"
#include "comm/wire_codec.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/accumulator.hpp"
#include "core/pipeline.hpp"
#include "green/gaussian.hpp"
#include "obs/cli.hpp"
#include "obs/comm_volume.hpp"
#include "bench_json.hpp"

namespace {

std::string format_sci(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3e", value);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lc;
  const auto obs_cli = obs::ObsCli::parse(argc, argv);

  const i64 n = 128;
  const int workers = 8;
  const Grid3 g = Grid3::cube(n);
  const auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);

  bench::JsonTable table(
      "comm_volume",
      "Exchange volume, measured octrees vs Eqn 6 vs dense Eqn 1 (N=128)");
  table.header({"k", "r", "subdomains", "payload bytes", "model bytes",
                "dense bytes", "q16 wire bytes", "off/q16", "measured/model",
                "interior/model", "reduction vs dense"});
  table.meta("n", std::to_string(n));
  table.meta("workers", std::to_string(workers));

  const comm::Topology flat = comm::Topology::flat(workers);

  bool ok = true;
  for (const i64 k : {i64{16}, i64{32}, i64{64}}) {
    for (const i64 r : {i64{2}, i64{4}}) {
      core::LowCommParams params;
      params.subdomain = k;
      params.far_rate = r;
      params.uniform_rate = r;  // uniform exterior → Eqn 6 applies exactly
      params.dense_halo = 0;
      params.wire = comm::WireCodec::kOff;  // pinned: rows must not depend
                                            // on the ambient LC_WIRE
      core::LowCommConvolution engine(g, kernel, params);

      const obs::CommVolumeReport rep =
          obs::measure_comm_volume(engine, workers);

      // Wire bytes under the q16 codec, from the same static mirror the
      // executed exchange is tested against (per-cell scale headers and
      // per-destination wire-double padding included).
      const std::size_t off_wire =
          core::lowcomm_exchange_traffic(engine, flat,
                                         core::ExchangeRoute::kFlat)
              .total_bytes();
      core::LowCommParams q16 = params;
      q16.wire = comm::WireCodec::kQ16;
      const std::size_t q16_wire =
          core::lowcomm_exchange_traffic(g, q16, flat,
                                         core::ExchangeRoute::kFlat)
              .total_bytes();

      table.row({std::to_string(k), std::to_string(r),
                 std::to_string(rep.subdomains),
                 std::to_string(rep.payload_bytes),
                 format_fixed(rep.model_bytes, 0),
                 format_fixed(rep.dense_bytes, 0),
                 std::to_string(q16_wire),
                 format_fixed(static_cast<double>(off_wire) /
                                  static_cast<double>(q16_wire),
                              2) +
                     "x",
                 format_fixed(rep.measured_over_model(), 4),
                 format_fixed(rep.unique_over_model(), 4),
                 format_fixed(rep.reduction_vs_dense(), 1)});

      if (r == 2 && k >= 32 && !rep.within(0.10)) {
        std::printf("FAIL: k=%lld r=2 measured/model %.4f outside 10%%\n",
                    static_cast<long long>(k), rep.measured_over_model());
        ok = false;
      }
      // Quantized-wire gate: q16 ships scale headers per cell but 2-byte
      // samples, so at the headline shape it must cut the wire >= 2x.
      if (r == 2 && k >= 32 && q16_wire * 2 > off_wire) {
        std::printf("FAIL: k=%lld r=2 q16 wire %zu not >= 2x below off %zu\n",
                    static_cast<long long>(k), q16_wire, off_wire);
        ok = false;
      }
      if (std::abs(rep.unique_over_model() - 1.0) > 1e-9) {
        std::printf("FAIL: k=%lld r=%lld interior lattice != Eqn 6 (%.6f)\n",
                    static_cast<long long>(k), static_cast<long long>(r),
                    rep.unique_over_model());
        ok = false;
      }
    }
  }
  table.print();

  std::puts(
      "\nShape check: the interior lattice matches Eqn 6 exactly (uniform\n"
      "rate); the full octree payload carries only the edge-inclusive face\n"
      "overhead ((s/r+1)^3 vs (s/r)^3), within 10% at r=2. The dense Eqn 1\n"
      "baseline is 2N^3 points however the domain is cut.");

  // --- Per-level wire bytes across node counts -----------------------------
  // P = 64 ranks regrouped from 64 nodes of 1 (flat) down to 2 nodes of 32:
  // the hierarchical route packs each cell once per destination NODE, so as
  // ranks fuse into nodes the inter-node wire volume falls while the flat
  // route keeps shipping one copy per destination RANK. Static mirror of
  // the executed schedule — no convolution runs.
  {
    const int ranks = 64;
    core::LowCommParams params;
    params.subdomain = 32;
    params.far_rate = 2;
    params.uniform_rate = 2;
    params.dense_halo = 0;
    params.wire = comm::WireCodec::kOff;  // pinned: baselined byte counts
    core::LowCommConvolution engine(g, kernel, params);

    bench::JsonTable levels(
        "comm_volume_levels",
        "Per-level wire bytes vs node grouping (N=128, k=32, r=2, P=64)");
    levels.header({"nodes", "ranks/node", "intra bytes", "inter bytes",
                   "flat inter bytes", "inter vs flat", "dense/inter"});
    levels.meta("n", std::to_string(n));
    levels.meta("ranks", std::to_string(ranks));

    for (const int nodes : {64, 32, 16, 8, 4, 2}) {
      const int per_node = ranks / nodes;
      const comm::Topology topo = comm::Topology::grouped(ranks, per_node);
      const obs::CommVolumeReport rep = obs::measure_comm_volume(engine, topo);
      levels.row({std::to_string(nodes), std::to_string(per_node),
                  std::to_string(rep.intra_wire_bytes),
                  std::to_string(rep.inter_wire_bytes),
                  std::to_string(rep.flat_inter_wire_bytes),
                  format_fixed(rep.inter_reduction_vs_flat(), 2) + "x",
                  format_fixed(rep.inter_wire_bytes == 0
                                   ? 0.0
                                   : rep.dense_bytes /
                                         static_cast<double>(
                                             rep.inter_wire_bytes),
                               1) +
                      "x"});

      // Gate (the PR's acceptance shape): at 8 nodes x 8 ranks the
      // hierarchical inter-node volume must be strictly below BOTH the
      // flat route's inter-node bytes and its whole wire total.
      if (nodes == 8) {
        const std::size_t flat_total =
            core::lowcomm_exchange_traffic(engine, topo,
                                           core::ExchangeRoute::kFlat)
                .total_bytes();
        if (rep.inter_wire_bytes >= rep.flat_inter_wire_bytes ||
            rep.inter_wire_bytes >= flat_total) {
          std::printf(
              "FAIL: 8x8 hierarchical inter bytes %zu not below flat "
              "(inter %zu, total %zu)\n",
              rep.inter_wire_bytes, rep.flat_inter_wire_bytes, flat_total);
          ok = false;
        }
      }
    }
    levels.print();
    std::puts(
        "\nShape check: inter-node bytes fall monotonically as ranks fuse\n"
        "into nodes (each cell crosses the expensive link once per node,\n"
        "not once per rank); the flat route's inter volume barely moves.\n"
        "The dense Eqn 1 baseline is fixed, so the reduction vs dense grows\n"
        "with the grouping.");
  }

  // --- Executed codec sweep: wire bytes vs end-to-end error ----------------
  // One pooled local-convolution pass over all 64 sub-domains at the
  // headline shape (k=32, r=2), then each codec round-trips every cell's
  // payload through the real WireEncoder/WireDecoder — exactly what the
  // exchange ships — before the shared accumulation. The L2 error is
  // measured against the dense spectral reference, so the rows separate
  // sampling error (the off row) from quantization error (the delta).
  // Gates (the PR's acceptance shape): every lossy codec cuts the wire
  // >= 2x vs off AND stays within 3% end-to-end L2; off adds zero error.
  // Not baselined: the L2 column is floating-point and may drift across
  // toolchains; the deterministic byte counts are baselined above.
  {
    const i64 k = 32;
    const i64 r = 2;
    core::LowCommParams params;
    params.subdomain = k;
    params.far_rate = r;  // banded paper policy (no uniform override): the
    params.dense_halo = 2;  // graded bands + a 2-voxel dense skin put the
                            // sampling error itself inside the 3% target
    params.wire = comm::WireCodec::kOff;
    core::LowCommConvolution engine(g, kernel, params);

    RealField input(g);
    SplitMix64 rng(7);
    for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);
    const RealField want = baseline::dense_convolve(input, *kernel);

    const std::size_t domains = engine.decomposition().count();
    std::vector<sampling::CompressedField> fields;
    fields.reserve(domains);
    for (std::size_t i = 0; i < domains; ++i) {
      fields.push_back(engine.convolve_one(input, i));
    }

    const comm::Topology flat8 = comm::Topology::flat(workers);
    const std::size_t off_wire =
        core::lowcomm_exchange_traffic(engine, flat8,
                                       core::ExchangeRoute::kFlat)
            .total_bytes();

    bench::JsonTable sweep(
        "comm_volume_codecs",
        "Executed codec sweep: wire bytes vs end-to-end error "
        "(N=128, k=32, r=2, P=8)");
    sweep.header({"codec", "wire bytes", "cut vs off", "L2 vs dense",
                  "max |quant err|"});
    sweep.meta("n", std::to_string(n));
    sweep.meta("workers", std::to_string(workers));

    for (const comm::WireCodec codec : comm::kAllWireCodecs) {
      core::LowCommParams pc = params;
      pc.wire = codec;
      const std::size_t wire =
          codec == comm::WireCodec::kOff
              ? off_wire
              : core::lowcomm_exchange_traffic(g, pc, flat8,
                                               core::ExchangeRoute::kFlat)
                    .total_bytes();

      // Round-trip every contribution through the codec, cell by cell,
      // mirroring the exchange's pack/unpack loops.
      std::vector<sampling::CompressedField> decoded;
      decoded.reserve(fields.size());
      double max_err = 0.0;
      for (const sampling::CompressedField& f : fields) {
        sampling::CompressedField out(f.octree_ptr());
        std::vector<double> buf;
        comm::WireEncoder enc(codec, buf);
        for (const auto& cell : f.octree().cells()) {
          enc.add_cell(f.samples().subspan(cell.sample_offset,
                                           cell.sample_count()));
        }
        enc.finish();
        comm::WireDecoder dec(codec, buf);
        for (const auto& cell : f.octree().cells()) {
          dec.read_cell(out.samples().subspan(cell.sample_offset,
                                              cell.sample_count()));
        }
        dec.finish();
        max_err = std::max(max_err, enc.max_abs_error());
        decoded.push_back(std::move(out));
      }

      const RealField got = core::accumulate_full(
          decoded, g, params.interpolation, &ThreadPool::global());
      const double l2 = relative_l2_error(got.span(), want.span());
      const double cut =
          static_cast<double>(off_wire) / static_cast<double>(wire);

      sweep.row({comm::codec_name(codec), std::to_string(wire),
                 format_fixed(cut, 2) + "x",
                 format_fixed(l2 * 100.0, 3) + "%", format_sci(max_err)});

      if (codec == comm::WireCodec::kOff && max_err != 0.0) {
        std::printf("FAIL: off codec introduced error %.3e\n", max_err);
        ok = false;
      }
      if (codec != comm::WireCodec::kOff &&
          codec != comm::WireCodec::kFp32 && wire * 2 > off_wire) {
        std::printf("FAIL: %s wire %zu not >= 2x below off %zu\n",
                    comm::codec_name(codec), wire, off_wire);
        ok = false;
      }
      if (l2 > 0.03) {
        std::printf("FAIL: %s end-to-end L2 %.4f%% above 3%%\n",
                    comm::codec_name(codec), l2 * 100.0);
        ok = false;
      }
    }
    sweep.print();
    std::puts(
        "\nShape check: the 2-byte codecs (fp16/bf16/q16) cut the wire >= 2x\n"
        "while the end-to-end error stays within 3% of the dense reference —\n"
        "quantization error rides far below the sampling error it joins.");
  }

  obs_cli.finish();
  return ok ? 0 : 1;
}
