// Figure 3: octree-based sampling pattern for a 32³ sub-domain inside a
// 128³ grid (the paper's exact configuration). The figure shows dense
// sampling on/near the sub-domain, downsampling by 2 in a band of width
// k/2, sparser sampling further out, and dense sampling again at the grid
// boundary. We regenerate it as a radial table: per distance band, the
// retained-sample density.
#include <cstdio>

#include "common/table.hpp"
#include "sampling/compressed_field.hpp"
#include "sampling/octree.hpp"
#include "bench_json.hpp"

int main() {
  using namespace lc;
  using namespace lc::sampling;

  const Grid3 g = Grid3::cube(128);
  const i64 k = 32;
  const Box3 dom = Box3::cube_at({48, 48, 48}, k);  // centred sub-domain
  const SamplingPolicy policy = SamplingPolicy::paper_default(
      k, /*far_rate=*/16, /*boundary_band=*/2);
  const Octree tree(g, dom, policy);

  // Count grid points and retained samples per Chebyshev-distance band.
  struct Band {
    i64 lo, hi;
    const char* label;
  };
  const Band bands[] = {{0, 0, "sub-domain (dist 0)"},
                        {1, 2, "dense halo (1..2)"},
                        {3, k / 2, "r=2 band (3..k/2)"},
                        {k / 2 + 1, 4 * k, "r=8 band (k/2+1..4k)"},
                        {4 * k + 1, 1 << 20, "far (r=16)"}};

  std::vector<std::size_t> points(5, 0), samples(5, 0), boundary_pts(1, 0),
      boundary_samples(1, 0);
  for (const auto& cell : tree.cells()) {
    for_each_point(cell.box(), [&](const Index3& p) {
      const bool on_lattice = (p.x - cell.corner.x) % cell.rate == 0 &&
                              (p.y - cell.corner.y) % cell.rate == 0 &&
                              (p.z - cell.corner.z) % cell.rate == 0;
      if (boundary_distance(p, g) < 2) {
        boundary_pts[0]++;
        if (on_lattice) boundary_samples[0]++;
        return;
      }
      const i64 d = torus_chebyshev_distance(dom, p, g);
      for (std::size_t b = 0; b < 5; ++b) {
        if (d >= bands[b].lo && d <= bands[b].hi) {
          points[b]++;
          if (on_lattice) samples[b]++;
          break;
        }
      }
    });
  }

  bench::JsonTable table("fig3_octree","Fig 3 — adaptive sampling pattern (32^3 sub-domain in 128^3)");
  table.header({"Region", "Grid points", "Samples", "Density", "Eff. rate"});
  auto emit = [&](const char* label, std::size_t pts, std::size_t smp) {
    if (pts == 0) return;
    const double density = static_cast<double>(smp) / static_cast<double>(pts);
    table.row({label, std::to_string(pts), std::to_string(smp),
               format_fixed(density * 100.0, 1) + "%",
               format_fixed(std::cbrt(1.0 / density), 1)});
  };
  for (std::size_t b = 0; b < 5; ++b) emit(bands[b].label, points[b], samples[b]);
  emit("grid boundary shell (dense)", boundary_pts[0], boundary_samples[0]);
  table.print();

  std::printf(
      "\nOctree: %zu cells, %zu samples of %zu grid points, compression "
      "ratio %.1fx, metadata %zu bytes (5 int32/cell).\n",
      tree.cells().size(), tree.total_samples(), g.size(),
      tree.compression_ratio(),
      tree.cells().size() * 5 * sizeof(std::int32_t));
  std::puts(
      "Shape check (paper Fig 3): full resolution on the sub-domain, rate 2 "
      "within k/2,\nsparser further out, dense again at the boundary shell.");
  return 0;
}
