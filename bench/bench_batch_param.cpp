// §5.4 "Batch parameter": the number of z-pencils B processed per batch.
//
// On the paper's GPU, B controls transform concurrency: 19.9% faster moving
// B 512→1024 at N = 256, 7.35% at N = 1024, 5-7% at N = 2048 — gains that
// saturate. On a CPU the transform throughput is occupancy-insensitive, so
// the runtime column here is expected to be nearly flat (we report it to
// show exactly that); what B does govern on every platform is the pencil
// working-set memory, which we report measured (device-tracked) and at
// paper scale (allocation plan).
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/local_convolver.hpp"
#include "device/memory_model.hpp"
#include "green/gaussian.hpp"
#include "bench_json.hpp"

int main() {
  using namespace lc;

  // --- Measured runtime + tracked memory vs B at N = 128 ------------------
  {
    const i64 n = 128;
    const i64 k = 32;
    const Grid3 g = Grid3::cube(n);
    auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
    const Index3 corner{n / 2 - k / 2, n / 2 - k / 2, n / 2 - k / 2};
    auto tree = std::make_shared<sampling::Octree>(
        g, Box3::cube_at(corner, k),
        sampling::SamplingPolicy::paper_default(k, 16, 0));
    RealField chunk(Grid3::cube(k));
    SplitMix64 rng(5);
    for (auto& v : chunk.span()) v = rng.uniform(-1.0, 1.0);

    bench::JsonTable table("batch_param_measured","§5.4 — batch parameter B (measured, N=128, k=32)");
    table.header({"B", "time (ms)", "pencil buffers (KB)", "peak device (MB)"});
    for (const std::size_t batch : {128u, 512u, 1024u, 4096u}) {
      device::DeviceContext ctx(device::DeviceSpec::unlimited());
      core::LocalConvolverConfig cfg;
      cfg.batch = batch;
      cfg.device = &ctx;
      core::LocalConvolver conv(g, kernel, cfg);
      (void)conv.convolve_subdomain(chunk, corner, tree);  // warm-up
      ctx.reset_peak();
      Stopwatch sw;
      (void)conv.convolve_subdomain(chunk, corner, tree);
      const double ms = sw.millis();
      table.row({std::to_string(batch), format_fixed(ms, 1),
                 std::to_string(2 * batch * n * 16 / 1024),
                 format_fixed(static_cast<double>(ctx.peak_bytes()) / 1e6, 1)});
    }
    table.print();
    std::puts(
        "Shape check: runtime ~flat on CPU (the paper's 5-20% B gains are\n"
        "GPU-occupancy effects); pencil working set grows linearly with B.\n");
  }

  // --- Paper-scale memory effect of B (allocation plan) -------------------
  {
    bench::JsonTable table("batch_param_planned","B vs device footprint at paper scale (plan, N=2048, k=64)");
    table.header({"B", "pencil buffers (MB)", "actual total (GB)"});
    for (const std::size_t batch : {1024u, 4096u, 8192u, 32768u}) {
      const auto plan = device::plan_local_pipeline(
          2048, 64, sampling::SamplingPolicy::uniform(64), batch);
      table.row({std::to_string(batch),
                 format_fixed(static_cast<double>(plan.pencil_bytes) / 1e6, 1),
                 format_bytes_gb(static_cast<double>(plan.actual_total()))});
    }
    table.print();
    std::puts(
        "Paper §5.4 uses B up to 32768 at N=2048; the pencil buffers stay a\n"
        "small slice of the slab-dominated footprint, so large B is cheap —\n"
        "consistent with the paper pushing B until concurrency saturates.");
  }
  return 0;
}
