// Table 4: estimated vs actual device memory while convolving one k³
// sub-domain of an N³ grid at downsampling rate r. "Estimated" is the
// algorithm-visible buffer plan (chunk + slab + plane staging + pencil
// batches + payload); "actual" adds the transform workspaces — our model
// of the cuFFT temporaries the paper blames for the gap.
//
// Two validations:
//   1. Paper-scale rows (N up to 2048) are evaluated analytically through
//      device::plan_local_pipeline — nothing is allocated.
//   2. A runnable row executes the real pipeline against a tracked
//      DeviceContext and shows the measured peak equals the plan's actual
//      total (the model is exact for our implementation).
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/hyperparams.hpp"
#include "core/local_convolver.hpp"
#include "device/memory_model.hpp"
#include "green/gaussian.hpp"
#include "bench_json.hpp"

int main() {
  using namespace lc;

  bench::JsonTable table("table4_memory_actual","Table 4 — estimated vs actual device memory (GB)");
  table.header({"N", "k", "r", "Estimated (GB)", "Actual (GB)", "Ratio",
                "Actual r2c (GB)", "Paper est/actual"});

  struct Row {
    i64 n;
    i64 k;
    i64 r;
    const char* paper;
  };
  const Row rows[] = {
      {512, 32, 16, "0.62 / 1.29"},  {1024, 32, 32, "2.49 / 4.33"},
      {2048, 8, 128, "3.52 / 5.67"}, {2048, 16, 128, "5.02 / 8.16"},
      {2048, 32, 128, "8.00 / 13.16"}, {2048, 32, 64, "9.97 / 16.20"},
      {2048, 64, 64, "15.92 / 26.20"},
  };
  for (const auto& row : rows) {
    const auto policy = sampling::SamplingPolicy::uniform(row.r);
    // Paper comparison columns price the full complex path (the paper's
    // cuFFT c2c pipeline); the r2c column is the LC_REAL half-spectrum
    // footprint of the same plan.
    const auto plan = device::plan_local_pipeline(
        row.n, row.k, policy, core::recommended_batch(row.n),
        /*real_path=*/false);
    const auto plan_r2c = device::plan_local_pipeline(
        row.n, row.k, policy, core::recommended_batch(row.n),
        /*real_path=*/true);
    const double est = static_cast<double>(plan.estimated_total());
    const double act = static_cast<double>(plan.actual_total());
    table.row({std::to_string(row.n), std::to_string(row.k),
               std::to_string(row.r), format_bytes_gb(est),
               format_bytes_gb(act), format_fixed(act / est, 2),
               format_bytes_gb(static_cast<double>(plan_r2c.actual_total())),
               row.paper});
  }
  table.print();

  // Measured validation at a runnable size, once per pipeline: the plan's
  // actual_total must equal the tracked peak for BOTH the complex and the
  // r2c half-spectrum registrations (the model mirrors the engine exactly).
  const i64 n = 64;
  const i64 k = 16;
  const i64 r = 4;
  const Grid3 g = Grid3::cube(n);
  auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
  auto tree = std::make_shared<sampling::Octree>(
      g, Box3::cube_at({0, 0, 0}, k), sampling::SamplingPolicy::uniform(r));
  RealField chunk(Grid3::cube(k));
  SplitMix64 rng(1);
  for (auto& v : chunk.span()) v = rng.uniform(-1.0, 1.0);
  bool mismatch = false;
  for (const bool real_path : {false, true}) {
    device::DeviceContext ctx(device::DeviceSpec::unlimited());
    core::LocalConvolverConfig cfg;
    cfg.batch = 512;
    cfg.device = &ctx;
    cfg.real = real_path ? core::LocalConvolverConfig::RealPath::kForce
                         : core::LocalConvolverConfig::RealPath::kOff;
    (void)core::LocalConvolver(g, kernel, cfg)
        .convolve_subdomain(chunk, {0, 0, 0}, tree);
    const auto plan = device::plan_local_pipeline(
        n, k, sampling::SamplingPolicy::uniform(r), cfg.batch, real_path);
    const bool match = ctx.peak_bytes() == plan.actual_total();
    mismatch = mismatch || !match;
    std::printf(
        "\nMeasured validation (N=%lld, k=%lld, r=%lld, %s): tracked peak "
        "%zu B, plan actual %zu B, plan estimated %zu B — %s.\n",
        static_cast<long long>(n), static_cast<long long>(k),
        static_cast<long long>(r), real_path ? "r2c" : "c2c",
        ctx.peak_bytes(), plan.actual_total(), plan.estimated_total(),
        match ? "match" : "MISMATCH");
  }
  std::puts(
      "Shape check: actual exceeds estimated by ~1.5-1.8x everywhere (paper: "
      "1.6-2.1x) — the cuFFT-temporaries gap.");
  return mismatch ? 1 : 0;
}
