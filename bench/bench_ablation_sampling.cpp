// Ablation: the accuracy / compression / exchange-volume trade-off of the
// sampling design choices (§5.3 "accuracy can be tuned", §5.4 r selection):
//   - uniform exterior rate r sweep (the Table 3 r column),
//   - dense halo width sweep (our accuracy knob around the sub-domain),
//   - banded paper policy vs uniform rate at equal far rate.
#include <cstdio>

#include "baseline/dense.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "green/gaussian.hpp"
#include "bench_json.hpp"

int main() {
  using namespace lc;

  const Grid3 g = Grid3::cube(64);
  auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
  RealField input(g);
  SplitMix64 rng(4);
  for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);
  const RealField want = baseline::dense_convolve(input, *kernel);

  auto run = [&](core::LowCommParams params) {
    const auto result =
        core::LowCommConvolution(g, kernel, params).convolve(input);
    return std::pair<double, core::LowCommResult>(
        relative_l2_error(result.output.span(), want.span()),
        std::move(const_cast<core::LowCommResult&>(result)));
  };

  {
    bench::JsonTable table("ablation_rate","Ablation A — uniform exterior rate r (k=16, halo via rate)");
    table.header({"r", "L2 error", "compression", "exchange bytes"});
    for (const i64 r : {1, 2, 4, 8}) {
      core::LowCommParams params;
      params.subdomain = 16;
      params.uniform_rate = r;
      params.batch = 512;
      auto [err, result] = run(params);
      table.row({std::to_string(r), format_fixed(err * 100.0, 3) + "%",
                 format_fixed(result.compression_ratio, 1) + "x",
                 std::to_string(result.exchanged_bytes)});
    }
    table.print();
    std::puts("Shape check: error 0 at r=1, grows with r; exchange shrinks.\n");
  }

  {
    bench::JsonTable table("ablation_halo","Ablation B — dense halo width (k=16, banded policy, far r=8)");
    table.header({"halo", "L2 error", "compression", "exchange bytes"});
    for (const i64 halo : {0, 2, 4, 8}) {
      core::LowCommParams params;
      params.subdomain = 16;
      params.far_rate = 8;
      params.dense_halo = halo;
      params.batch = 512;
      auto [err, result] = run(params);
      table.row({std::to_string(halo), format_fixed(err * 100.0, 3) + "%",
                 format_fixed(result.compression_ratio, 1) + "x",
                 std::to_string(result.exchanged_bytes)});
    }
    table.print();
    std::puts(
        "Shape check: a few voxels of dense halo buy most of the accuracy\n"
        "for a small payload increase.\n");
  }

  {
    bench::JsonTable table("ablation_interp",
        "Ablation D — reconstruction order (k=16, banded, far r=8, halo 2)");
    table.header({"interpolation", "L2 error", "exchange bytes"});
    for (const auto interp : {sampling::Interpolation::kTrilinear,
                              sampling::Interpolation::kTricubic}) {
      core::LowCommParams params;
      params.subdomain = 16;
      params.far_rate = 8;
      params.dense_halo = 2;
      params.batch = 512;
      params.interpolation = interp;
      auto [err, result] = run(params);
      table.row({interp == sampling::Interpolation::kTrilinear ? "trilinear"
                                                               : "tricubic",
                 format_fixed(err * 100.0, 3) + "%",
                 std::to_string(result.exchanged_bytes)});
    }
    table.print();
    std::puts(
        "Shape check: higher-order reconstruction lowers error at zero extra\n"
        "communication — the interpolation-methods extension the paper's\n"
        "future-work section anticipates.\n");
  }

  {
    bench::JsonTable table("ablation_policy","Ablation C — banded (paper Fig 3) vs uniform policy");
    table.header({"policy", "L2 error", "compression", "exchange bytes"});
    core::LowCommParams banded;
    banded.subdomain = 16;
    banded.far_rate = 8;
    banded.dense_halo = 2;
    banded.batch = 512;
    auto [berr, bres] = run(banded);
    table.row({"banded 1/2/8 (paper)", format_fixed(berr * 100.0, 3) + "%",
               format_fixed(bres.compression_ratio, 1) + "x",
               std::to_string(bres.exchanged_bytes)});
    core::LowCommParams uniform;
    uniform.subdomain = 16;
    uniform.uniform_rate = 8;
    uniform.batch = 512;
    auto [uerr, ures] = run(uniform);
    table.row({"uniform r=8", format_fixed(uerr * 100.0, 3) + "%",
               format_fixed(ures.compression_ratio, 1) + "x",
               std::to_string(ures.exchanged_bytes)});
    table.print();
    std::puts(
        "Shape check: the graded octree gets most of the uniform-rate\n"
        "compression at a fraction of its error — the point of Fig 3.");
  }
  return 0;
}
