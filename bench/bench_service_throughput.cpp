// Serving-layer throughput: what the ConvolutionService's caches buy on
// repeat traffic, at the paper's POC configuration (N = 128, k = 32,
// single-sub-domain requests — the unit of work a distributed worker
// issues per owned region).
//
// Three phases, same request shape throughout:
//   cold           — caches cleared before every request AND fresh input
//                    content: full plan/octree/engine build + full compute.
//   resource-warm  — fresh input content, hot resource caches: compute
//                    still runs, but plans/octrees/engines are reused.
//   warm           — identical request repeated: the content-addressed
//                    result cache answers without touching the pipeline.
//
// The acceptance bar for the runtime layer: warm throughput >= 2x cold.
#include <cstdio>
#include <cstring>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/hyperparams.hpp"
#include "green/gaussian.hpp"
#include "obs/cli.hpp"
#include "runtime/service.hpp"

int main(int argc, char** argv) {
  using namespace lc;
  const auto obs_cli = obs::ObsCli::parse(argc, argv);
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }

  const i64 n = 128;
  const i64 k = 32;
  const int cold_reps = full ? 8 : 4;
  const int warm_reps = full ? 32 : 12;
  const std::size_t subdomain = 0;  // box [0,32)³ of the 4×4×4 decomposition

  const Grid3 g = Grid3::cube(n);
  core::LowCommParams params;
  params.subdomain = k;
  params.far_rate = 4;
  params.dense_halo = 2;
  params.batch = core::recommended_batch(n);

  // One base input; per-request variants flip a value INSIDE the target
  // sub-domain so the content-addressed result key actually changes.
  RealField base(g, 0.0);
  SplitMix64 rng(20220812);
  for (auto& v : base.span()) v = rng.uniform(-1.0, 1.0);
  const auto variant = [&](int i) {
    RealField in = base;
    in(i % k, (i / k) % k, 0) += 1.0 + i;
    return in;
  };
  const auto request_with = [&](RealField in) {
    runtime::ConvolutionRequest req;
    req.input = std::move(in);
    req.kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
    req.params = params;
    req.subdomain = subdomain;
    return req;
  };

  runtime::ConvolutionService service;

  struct Phase {
    const char* name;
    int requests = 0;
    SecondsAccumulator time;  // ScopedTimer sink; replaces Stopwatch sums
  };
  Phase cold{.name = "cold"}, resource_warm{.name = "resource-warm"},
      warm{.name = "warm"};

  // --- cold: every request rebuilds the world -------------------------------
  for (int i = 0; i < cold_reps; ++i) {
    service.clear_caches();
    ScopedTimer timer(cold.time);
    (void)service.run(request_with(variant(i)));
    ++cold.requests;
  }

  // --- resource-warm: new content, hot plans/octrees/engines ----------------
  runtime::RequestStats sample_stats;  // last executed request's drift pair
  for (int i = 0; i < cold_reps; ++i) {
    ScopedTimer timer(resource_warm.time);
    const auto response =
        service.run(request_with(variant(1000 + i)));
    ++resource_warm.requests;
    if (response.stats.result_cache_hit) {
      std::puts("unexpected result-cache hit in resource-warm phase");
      return 1;
    }
    sample_stats = response.stats;
  }

  // --- warm: identical request, result cache answers ------------------------
  (void)service.run(request_with(variant(424242)));  // prime the entry
  for (int i = 0; i < warm_reps; ++i) {
    ScopedTimer timer(warm.time);
    const auto response = service.run(request_with(variant(424242)));
    ++warm.requests;
    if (!response.stats.result_cache_hit) {
      std::puts("expected a result-cache hit in warm phase");
      return 1;
    }
  }

  const auto rps = [](const Phase& p) {
    return p.time.seconds > 0.0 ? p.requests / p.time.seconds : 0.0;
  };
  const double cold_rps = rps(cold);

  bench::JsonTable table(
      "service_throughput",
      "ConvolutionService throughput — N=128, k=32, sub-domain requests");
  table.header({"phase", "requests", "ms/request", "requests/s",
                "speedup vs cold"});
  for (const Phase* p : {&cold, &resource_warm, &warm}) {
    table.row({p->name, std::to_string(p->requests),
               format_fixed(p->time.millis() / p->requests, 2),
               format_fixed(rps(*p), 2),
               format_fixed(rps(*p) / cold_rps, 2)});
  }
  table.meta("n", std::to_string(n));
  table.meta("k", std::to_string(k));
  table.print();

  std::puts("");
  service.stats_table().print();

  // Plan-vs-actual drift (DESIGN.md §18): how far the planner's compute
  // price sits from realized request time. Ratio > 1 = planner pessimistic.
  const auto sstats = service.stats();
  std::printf(
      "\nPlan-vs-actual drift: %zu planned requests, pred/actual p50 %.3f, "
      "p95 %.3f\nlast executed request: predicted %.4f s, measured %.4f s "
      "(ratio %.3f)\n",
      sstats.planned, sstats.drift_p50_ratio, sstats.drift_p95_ratio,
      sample_stats.predicted_seconds, sample_stats.measured_seconds,
      sample_stats.pred_over_actual());

  const double warm_speedup = rps(warm) / cold_rps;
  std::printf(
      "\nShape check: warm >= 2x cold (got %.2fx). Resource-warm sits\n"
      "between: it still pays the convolution, but reuses every plan,\n"
      "octree, spectrum, and engine. Pass --full for more repetitions.\n",
      warm_speedup);
  obs_cli.finish();
  return warm_speedup >= 2.0 ? 0 : 1;
}
