// Serving-layer throughput: what the ConvolutionService's caches buy on
// repeat traffic, at the paper's POC configuration (N = 128, k = 32,
// single-sub-domain requests — the unit of work a distributed worker
// issues per owned region).
//
// Three phases, same request shape throughout:
//   cold           — caches cleared before every request AND fresh input
//                    content: full plan/octree/engine build + full compute.
//   resource-warm  — fresh input content, hot resource caches: compute
//                    still runs, but plans/octrees/engines are reused.
//   warm           — identical request repeated: the content-addressed
//                    result cache answers without touching the pipeline.
//
// The acceptance bar for the runtime layer: warm throughput >= 2x cold.
#include <cstdio>
#include <cstring>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/hyperparams.hpp"
#include "green/gaussian.hpp"
#include "runtime/service.hpp"

int main(int argc, char** argv) {
  using namespace lc;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  const i64 n = 128;
  const i64 k = 32;
  const int cold_reps = full ? 8 : 4;
  const int warm_reps = full ? 32 : 12;
  const std::size_t subdomain = 0;  // box [0,32)³ of the 4×4×4 decomposition

  const Grid3 g = Grid3::cube(n);
  core::LowCommParams params;
  params.subdomain = k;
  params.far_rate = 4;
  params.dense_halo = 2;
  params.batch = core::recommended_batch(n);

  // One base input; per-request variants flip a value INSIDE the target
  // sub-domain so the content-addressed result key actually changes.
  RealField base(g, 0.0);
  SplitMix64 rng(20220812);
  for (auto& v : base.span()) v = rng.uniform(-1.0, 1.0);
  const auto variant = [&](int i) {
    RealField in = base;
    in(i % k, (i / k) % k, 0) += 1.0 + i;
    return in;
  };
  const auto request_with = [&](RealField in) {
    runtime::ConvolutionRequest req;
    req.input = std::move(in);
    req.kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
    req.params = params;
    req.subdomain = subdomain;
    return req;
  };

  runtime::ConvolutionService service;

  struct Phase {
    const char* name;
    int requests = 0;
    double total_ms = 0.0;
  };
  Phase cold{"cold"}, resource_warm{"resource-warm"}, warm{"warm"};

  // --- cold: every request rebuilds the world -------------------------------
  for (int i = 0; i < cold_reps; ++i) {
    service.clear_caches();
    Stopwatch sw;
    (void)service.run(request_with(variant(i)));
    cold.total_ms += sw.millis();
    ++cold.requests;
  }

  // --- resource-warm: new content, hot plans/octrees/engines ----------------
  for (int i = 0; i < cold_reps; ++i) {
    Stopwatch sw;
    const auto response =
        service.run(request_with(variant(1000 + i)));
    resource_warm.total_ms += sw.millis();
    ++resource_warm.requests;
    if (response.stats.result_cache_hit) {
      std::puts("unexpected result-cache hit in resource-warm phase");
      return 1;
    }
  }

  // --- warm: identical request, result cache answers ------------------------
  (void)service.run(request_with(variant(424242)));  // prime the entry
  for (int i = 0; i < warm_reps; ++i) {
    Stopwatch sw;
    const auto response = service.run(request_with(variant(424242)));
    warm.total_ms += sw.millis();
    ++warm.requests;
    if (!response.stats.result_cache_hit) {
      std::puts("expected a result-cache hit in warm phase");
      return 1;
    }
  }

  const auto rps = [](const Phase& p) {
    return p.total_ms > 0.0 ? 1e3 * p.requests / p.total_ms : 0.0;
  };
  const double cold_rps = rps(cold);

  bench::JsonTable table(
      "service_throughput",
      "ConvolutionService throughput — N=128, k=32, sub-domain requests");
  table.header({"phase", "requests", "ms/request", "requests/s",
                "speedup vs cold"});
  for (const Phase* p : {&cold, &resource_warm, &warm}) {
    table.row({p->name, std::to_string(p->requests),
               format_fixed(p->total_ms / p->requests, 2),
               format_fixed(rps(*p), 2),
               format_fixed(rps(*p) / cold_rps, 2)});
  }
  table.meta("n", std::to_string(n));
  table.meta("k", std::to_string(k));
  table.print();

  std::puts("");
  service.stats_table().print();

  const double warm_speedup = rps(warm) / cold_rps;
  std::printf(
      "\nShape check: warm >= 2x cold (got %.2fx). Resource-warm sits\n"
      "between: it still pays the convolution, but reuses every plan,\n"
      "octree, spectrum, and engine. Pass --full for more repetitions.\n",
      warm_speedup);
  return warm_speedup >= 2.0 ? 0 : 1;
}
