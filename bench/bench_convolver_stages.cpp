// Complex vs real half-spectrum LocalConvolver stage walls (DESIGN.md §16).
//
// Runs the same N=128 / k=32 single-channel Gaussian convolution through
// the full complex pipeline (RealPath::kOff, the bit-exact ground truth)
// and the Hermitian r2c/c2r pipeline (RealPath::kForce), reading the
// per-stage wall clocks from the "convolver.stageN_seconds" histograms.
// Serial pool, fixed seed: the work is deterministic, only the walls vary.
//
// Acceptance gate: the real path must be >= 1.5x faster on the combined
// stage1-3 wall (ISSUE/ROADMAP perf target). The binary exits nonzero when
// the best-of-5 speedup falls short. Also writes
// BENCH_convolver_stages.json (schema of check_perf_regression.py; the
// gated row is the real-path stage123 throughput) for the CI perf-smoke
// baseline comparison.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "core/local_convolver.hpp"
#include "green/gaussian.hpp"
#include "obs/metrics.hpp"
#include "sampling/octree.hpp"

namespace {

using namespace lc;
using namespace lc::core;

constexpr i64 kN = 128;
constexpr i64 kK = 32;
constexpr std::size_t kBatch = 512;
constexpr int kRuns = 5;
constexpr double kRequiredSpeedup = 1.5;

struct StageWall {
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  [[nodiscard]] double total() const { return s1 + s2 + s3; }
};

StageWall run_once(const LocalConvolver& engine,
                   std::span<const RealField> chunks, const Index3& corner,
                   const std::shared_ptr<const sampling::Octree>& tree) {
  auto& reg = obs::Registry::global();
  obs::Histogram& h1 = reg.histogram("convolver.stage1_seconds");
  obs::Histogram& h2 = reg.histogram("convolver.stage2_seconds");
  obs::Histogram& h3 = reg.histogram("convolver.stage3_seconds");
  const double b1 = h1.sum();
  const double b2 = h2.sum();
  const double b3 = h3.sum();
  const auto out = engine.convolve_channels(chunks, corner, tree);
  if (out.empty()) std::abort();  // keep the result observable
  return {h1.sum() - b1, h2.sum() - b2, h3.sum() - b3};
}

}  // namespace

int main() {
  const Grid3 g = Grid3::cube(kN);
  const Index3 corner{0, 0, 0};
  auto kernel = std::make_shared<green::GaussianSpectrum>(g, 1.5);
  auto tree = std::make_shared<sampling::Octree>(
      g, Box3::cube_at(corner, kK), sampling::SamplingPolicy::paper_default(kK));

  std::vector<RealField> chunks;
  chunks.emplace_back(Grid3::cube(kK));
  SplitMix64 rng(42);
  for (auto& v : chunks[0].span()) v = rng.uniform(-1.0, 1.0);

  LocalConvolverConfig real_cfg;
  real_cfg.real = LocalConvolverConfig::RealPath::kForce;
  real_cfg.batch = kBatch;
  real_cfg.pool = nullptr;  // serial: stage walls are pure compute
  LocalConvolverConfig cplx_cfg = real_cfg;
  cplx_cfg.real = LocalConvolverConfig::RealPath::kOff;

  const LocalConvolver real_engine(g, kernel, real_cfg);
  const LocalConvolver cplx_engine(g, kernel, cplx_cfg);

  // Warm plans, twiddles, and allocator pools once per engine.
  (void)run_once(cplx_engine, chunks, corner, tree);
  (void)run_once(real_engine, chunks, corner, tree);

  StageWall best_cplx;
  StageWall best_real;
  for (int run = 0; run < kRuns; ++run) {
    const StageWall c = run_once(cplx_engine, chunks, corner, tree);
    const StageWall r = run_once(real_engine, chunks, corner, tree);
    if (run == 0 || c.total() < best_cplx.total()) best_cplx = c;
    if (run == 0 || r.total() < best_real.total()) best_real = r;
  }

  const double speedup = best_cplx.total() / best_real.total();
  const auto points = static_cast<double>(g.size());  // N^3 results per call

  lc::bench::JsonWriter json("convolver_stages");
  json.meta("units", "mitems_per_s (N^3 results / stage wall)");
  json.meta("grid", "N=128 k=32 B=512 gaussian serial");
  json.header({"case", "n", "batch", "path", "mitems_per_s", "gated"});
  std::printf("%-10s %-8s %12s %12s %9s\n", "stage", "", "complex ms",
              "real ms", "speedup");
  const auto row = [&](const char* name, double cs, double rs, bool gated) {
    std::printf("%-10s %-8s %12.3f %12.3f %8.2fx\n", name, gated ? "[gated]" : "",
                cs * 1e3, rs * 1e3, cs / rs);
    char cm[32];
    char rm[32];
    std::snprintf(cm, sizeof(cm), "%.1f", points / cs / 1e6);
    std::snprintf(rm, sizeof(rm), "%.1f", points / rs / 1e6);
    json.row({name, "128", "512", "complex", cm, "0"});
    json.row({name, "128", "512", "real", rm, gated ? "1" : "0"});
  };
  row("stage1", best_cplx.s1, best_real.s1, false);
  row("stage2", best_cplx.s2, best_real.s2, false);
  row("stage3", best_cplx.s3, best_real.s3, false);
  row("stage123", best_cplx.total(), best_real.total(), true);

  const std::string path = json.write();
  if (path.empty()) {
    std::fprintf(stderr, "failed to write BENCH_convolver_stages.json\n");
    return 1;
  }
  std::printf("[json] wrote %s\n", path.c_str());

  if (speedup < kRequiredSpeedup) {
    std::fprintf(stderr,
                 "FAIL: real-path stage1-3 speedup %.2fx < required %.2fx\n",
                 speedup, kRequiredSpeedup);
    return 1;
  }
  std::printf("acceptance: real-path stage1-3 speedup %.2fx (>= %.2fx)\n",
              speedup, kRequiredSpeedup);
  return 0;
}
