// Table 2: the largest sub-domain size k whose local pipeline fits within
// a single device's memory, per grid size N — evaluated against the
// simulated V100 16 GB / 32 GB devices through the full allocation plan
// (slab + staging + pencil batches + payload + cuFFT-like workspace).
//
// Paper shape to reproduce: allowable k grows through N = 128..512 on the
// 16 GB part, stays large at N = 1024 on 32 GB, then collapses at N = 2048
// (the N²k slab term dominates) — yet some k still fits, which is the
// paper's "8× more points than traditional cuFFT on the same GPU"
// headline (§5.1), since the dense method tops out at N = 1024 on 32 GB.
#include <cstdio>

#include "baseline/dense.hpp"
#include "common/table.hpp"
#include "core/hyperparams.hpp"
#include "device/memory_model.hpp"
#include "bench_json.hpp"

int main() {
  using namespace lc;

  bench::JsonTable table("table2_allowable_k","Table 2 — allowable sub-domain size k per grid size N");
  table.header({"N", "Allowable k (ours)", "Device", "Paper k", "Dense fits?"});

  struct Row {
    i64 n;
    device::DeviceSpec spec;
    const char* paper;
  };
  const Row rows[] = {
      {128, device::DeviceSpec::v100_16gb(), "<= 64"},
      {256, device::DeviceSpec::v100_16gb(), "<= 128"},
      {512, device::DeviceSpec::v100_16gb(), "<= 256"},
      {1024, device::DeviceSpec::v100_32gb(), "<= 256"},
      {2048, device::DeviceSpec::v100_32gb(), "<= 64"},
  };
  for (const auto& r : rows) {
    const std::size_t batch = core::recommended_batch(r.n);
    const i64 k = device::max_allowable_k(r.n, r.spec, batch);
    const bool dense_fits =
        baseline::dense_convolve_bytes(r.n) <= r.spec.capacity_bytes;
    table.row({std::to_string(r.n), "<= " + std::to_string(k),
               r.spec.name, r.paper, dense_fits ? "yes" : "no"});
  }
  table.print();

  const i64 ours_max = 2048;
  const i64 dense_max =
      baseline::dense_max_grid(device::DeviceSpec::v100_32gb());
  std::printf(
      "\nHeadline (§5.1): ours scales to N = %lld vs dense cuFFT N = %lld on "
      "one 32 GB device → %.0fx more grid points.\n",
      static_cast<long long>(ours_max), static_cast<long long>(dense_max),
      static_cast<double>(ours_max * ours_max * ours_max) /
          static_cast<double>(dense_max * dense_max * dense_max));
  return 0;
}
