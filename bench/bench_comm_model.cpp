// Communication results (Fig 1 quantified; Eqns 1, 2, 6; §2.1):
//   1. Modelled per-node communication time — traditional 3D FFT
//      (2 all-to-alls, Eqn 1) vs our single sparse exchange (Eqn 6),
//      swept over N and P.
//   2. Executed byte/round counts on the simulated cluster — the
//      distributed slab FFT baseline vs the low-communication pipeline on
//      the same problem, same ranks.
//   3. The §2.1 communication-fraction shift: ~49% of runtime on CPUs
//      becomes ~97% when compute accelerates 43× (GPUs) with the network
//      unchanged.
#include <cstdio>
#include <utility>

#include "baseline/distributed_fft.hpp"
#include "comm/cost_model.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "green/gaussian.hpp"
#include "bench_json.hpp"

int main() {
  using namespace lc;

  // --- 1. Model sweep (Eqn 1 vs Eqn 6) -----------------------------------
  {
    bench::JsonTable table("comm_model_modelled","Eqn 1 vs Eqn 6 — modelled comm time per node (s)");
    table.header({"N", "P", "k", "r", "T_FFT (Eqn 1)", "T_ours (Eqn 6)",
                  "Reduction"});
    const double beta_link = 1e9;  // points/s per link
    for (const i64 n : {512, 1024, 2048, 4096}) {
      for (const int p : {16, 256, 4096}) {
        const i64 k = 32;
        const double r = 8.0;
        const double t_fft = comm::traditional_fft_comm_time(n, p, beta_link);
        const double t_ours = comm::lowcomm_comm_time(n, k, r, p, beta_link);
        table.row({std::to_string(n), std::to_string(p), std::to_string(k),
                   format_fixed(r, 0), format_fixed(t_fft, 4),
                   format_fixed(t_ours, 4),
                   format_fixed(t_fft / t_ours, 1) + "x"});
      }
    }
    table.print();
    std::puts("Shape check: ours wins by ~2 r^3 at large N (Eqn 6 < Eqn 1).\n");
  }

  // --- 2. Executed transfers on the simulated cluster ---------------------
  {
    bench::JsonTable table("comm_model_executed","Executed bytes/rounds — slab FFT vs low-comm (SimCluster)");
    table.header({"N", "ranks", "method", "bytes sent", "rounds", "messages"});
    for (const i64 n : {32, 64}) {
      const int ranks = 4;
      const Grid3 g = Grid3::cube(n);
      auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
      RealField input(g);
      SplitMix64 rng(static_cast<std::uint64_t>(n));
      for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);

      comm::SimCluster cluster(ranks);
      (void)baseline::distributed_fft_convolve(cluster, input, kernel);
      table.row({std::to_string(n), std::to_string(ranks), "slab FFT (trad.)",
                 std::to_string(cluster.stats().bytes_sent.load()),
                 std::to_string(cluster.stats().collective_rounds.load()),
                 std::to_string(cluster.stats().messages.load())});

      comm::SimCluster cluster2(ranks);
      core::LowCommParams params;
      params.subdomain = n / 2;
      params.far_rate = 4;
      params.batch = 512;
      (void)core::distributed_lowcomm_convolve(cluster2, input, g, kernel,
                                               params);
      table.row({std::to_string(n), std::to_string(ranks), "low-comm (ours)",
                 std::to_string(cluster2.stats().bytes_sent.load()),
                 std::to_string(cluster2.stats().collective_rounds.load()),
                 std::to_string(cluster2.stats().messages.load())});
    }
    table.print();
    std::puts(
        "Shape check: traditional needs 2 all-to-all rounds moving the whole\n"
        "spectrum twice; ours needs 1 round of compressed samples. Tiny grids\n"
        "(N=32) have nothing to compress; the crossover appears by N=64.\n");
  }

  // --- 2b. Executed per-level split: flat vs hierarchical routing ---------
  {
    bench::JsonTable table(
        "comm_model_levels_executed",
        "Executed per-level bytes — flat vs hierarchical route (SimCluster)");
    table.header({"N", "ranks", "nodes", "route", "intra bytes", "inter bytes",
                  "messages", "modelled (s)"});
    const i64 n = 64;
    const int ranks = 8;
    const Grid3 g = Grid3::cube(n);
    auto kernel = std::make_shared<green::GaussianSpectrum>(g, 2.0);
    RealField input(g);
    SplitMix64 rng(7);
    for (auto& v : input.span()) v = rng.uniform(-1.0, 1.0);
    core::LowCommParams params;
    params.subdomain = n / 4;
    params.far_rate = 4;
    // Uniform exterior rate: the banded paper policy on this small grid
    // tiles cells one-per-subdomain, so node-mates' needs are disjoint and
    // the union dedup has nothing to remove; the uniform policy's coarse
    // cells straddle subdomain boundaries, which is the regime the
    // hierarchical route is for (and the regime of Table 3's rows).
    params.uniform_rate = 4;
    params.batch = 512;

    for (const int per_node : {1, 2, 4}) {
      const comm::Topology topo = comm::Topology::grouped(ranks, per_node);
      for (const auto route :
           {core::ExchangeRoute::kFlat, core::ExchangeRoute::kHierarchical}) {
        comm::SimCluster cluster(topo);
        (void)core::distributed_lowcomm_convolve(cluster, input, g, kernel,
                                                 params, route);
        const auto& s = cluster.stats();
        table.row({std::to_string(n), std::to_string(ranks),
                   std::to_string(topo.nodes()),
                   route == core::ExchangeRoute::kFlat ? "flat" : "hier",
                   std::to_string(s.intra_bytes_sent.load()),
                   std::to_string(s.inter_bytes_sent.load()),
                   std::to_string(s.messages.load()),
                   format_fixed(s.modeled_seconds(), 6)});
      }
    }
    table.print();
    std::puts(
        "Shape check: with ranks grouped into nodes the hierarchical route\n"
        "moves fewer inter-node bytes than the flat per-rank exchange (each\n"
        "cell crosses the node boundary once) and collapses the inter-node\n"
        "message count to nodes*(nodes-1).\n");
  }

  // --- 2c. Analytic per-level sweep across node counts --------------------
  {
    bench::JsonTable table(
        "comm_model_levels",
        "Analytic per-level exchange time vs node count (Eqn 2 per level)");
    table.header({"P", "nodes", "route", "inter bytes", "T_exchange (s)",
                  "dense bytes (Eqn 1)"});
    const i64 n = 1024;
    const i64 k = 32;
    const double r = 8.0;
    const int p = 64;
    comm::HierarchicalLinkModel links;  // default: inter link 10x costlier
    const double volume =
        comm::lowcomm_exchange_points(n, k, r) * sizeof(double);
    // Total dense all-to-all volume (Eqn 1 numerator): 2 N^3 points, in
    // bytes — the like-for-like comparison for the total wire bytes below.
    const double dense_bytes = 2.0 * static_cast<double>(n) *
                               static_cast<double>(n) *
                               static_cast<double>(n) * sizeof(double);
    for (const int nodes : {64, 16, 8, 4, 2}) {
      const int per_node = p / nodes;
      const auto flat = comm::flat_exchange_traffic(p, per_node, volume);
      // Dedup 1 = disjoint member needs (the route only collapses the
      // message count); dedup g = every node-mate needs the same cells
      // (each cell crosses the inter link once instead of g times). Real
      // octree overlaps sit between the two (≈2x in the measured sweeps).
      const auto hier_lo =
          comm::hierarchical_exchange_traffic(p, per_node, volume, 1.0);
      const auto hier_hi = comm::hierarchical_exchange_traffic(
          p, per_node, volume, static_cast<double>(per_node));
      for (const auto& [route, t] :
           {std::pair{"flat", flat}, std::pair{"hier dedup=1", hier_lo},
            std::pair{"hier dedup=g", hier_hi}}) {
        const auto secs = comm::predict_exchange_times(t, links);
        table.row({std::to_string(p), std::to_string(nodes), route,
                   std::to_string(t.inter_bytes),
                   format_fixed(secs.total_seconds(), 6),
                   format_fixed(dense_bytes, 0)});
      }
    }
    table.print();
    std::puts(
        "Shape check: without overlap the hierarchical route matches the\n"
        "flat inter-node bytes while collapsing inter-node messages to\n"
        "nodes*(nodes-1); with per-node overlap the inter bytes drop by the\n"
        "dedup factor on top. Either way the exchange sits far under the\n"
        "dense Eqn 1 all-to-all at this N.\n");
  }

  // --- 3. §2.1 communication fractions ------------------------------------
  {
    bench::JsonTable table("comm_model_fraction","§2.1 — communication fraction, CPU vs 43x-accelerated");
    table.header({"platform", "comm fraction", "paper"});
    const i64 n = 1024;
    const int p = 4;
    const double beta_link = 2.2e9;
    const double cpu_rate = 1.15e9;  // grid points/s of FFT compute
    const double comm_time = comm::traditional_fft_comm_time(n, p, beta_link);
    const double points = static_cast<double>(n) * static_cast<double>(n) *
                          static_cast<double>(n) / p;
    const double cpu = comm::comm_fraction(comm_time, points, cpu_rate);
    const double gpu = comm::comm_fraction(comm_time, points, 43.0 * cpu_rate);
    table.row({"4 CPU nodes", format_fixed(cpu * 100.0, 1) + "%", "49.45%"});
    table.row({"4 GPU nodes (43x compute)", format_fixed(gpu * 100.0, 1) + "%",
               "97%"});
    table.print();
    std::puts(
        "Shape check: accelerating compute 43x with the same network pushes\n"
        "the communication share from ~half to ~all of the runtime.");
  }
  return 0;
}
