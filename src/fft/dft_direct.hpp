// O(n^2) direct discrete Fourier transforms and O(n^2) circular convolution.
//
// These are the correctness oracles for the fast paths: every FFT test in the
// repository ultimately validates against these.
#pragma once

#include <complex>
#include <span>

#include "tensor/field.hpp"

namespace lc::fft {

using cplx = std::complex<double>;

/// Direct forward DFT: X_k = sum_j x_j exp(-2πi jk/n).
void dft_direct_forward(std::span<const cplx> in, std::span<cplx> out);

/// Direct inverse DFT with 1/n normalisation.
void dft_direct_inverse(std::span<const cplx> in, std::span<cplx> out);

/// Direct 3D forward DFT on a complex field (tiny grids only; O(N^6)).
[[nodiscard]] ComplexField dft3_direct_forward(const ComplexField& in);

/// Direct 3D inverse DFT with 1/(nx·ny·nz) normalisation.
[[nodiscard]] ComplexField dft3_direct_inverse(const ComplexField& in);

/// Direct circular (periodic) convolution of two real fields on the same
/// grid: out(p) = sum_q a(q) b(p - q mod N). O(N^6); test-scale grids only.
[[nodiscard]] RealField circular_convolve_direct(const RealField& a,
                                                 const RealField& b);

}  // namespace lc::fft
