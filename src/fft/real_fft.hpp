// Real-to-complex (r2c) and complex-to-real (c2r) 1D transforms.
//
// Even lengths use the classic packed half-size complex FFT (two real
// samples per complex slot), halving both flops and twiddle memory relative
// to a full complex transform of the real data; odd lengths fall back to the
// complex path. The half-spectrum layout matches FFTW: n/2 + 1 bins, bin 0
// and bin n/2 (even n) purely real.
#pragma once

#include <span>

#include "fft/fft1d.hpp"

namespace lc::fft {

/// 1D real FFT plan of fixed length n >= 2. Thread-safe after construction;
/// scratch comes from the caller's FftWorkspace.
class RealFft1D {
 public:
  explicit RealFft1D(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  /// Number of half-spectrum bins: n/2 + 1.
  [[nodiscard]] std::size_t spectrum_size() const noexcept { return n_ / 2 + 1; }

  /// Forward r2c: `in` has n reals, `out` has n/2+1 complex bins.
  void forward(std::span<const double> in, std::span<cplx> out,
               FftWorkspace& ws) const;

  /// Inverse c2r with 1/n normalisation: `in` has n/2+1 bins (treated as a
  /// Hermitian half-spectrum), `out` has n reals.
  void inverse(std::span<const cplx> in, std::span<double> out,
               FftWorkspace& ws) const;

 private:
  std::size_t n_;
  bool packed_;                 // even-n half-size path
  Fft1D half_;                  // length n/2 (packed) or n (fallback)
  AlignedVector<cplx> unpack_;  // e^{-2πi k/n}, k in [0, n/2]
};

}  // namespace lc::fft
