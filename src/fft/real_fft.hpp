// Real-to-complex (r2c) and complex-to-real (c2r) 1D transforms.
//
// Even lengths use the classic packed half-size complex FFT (two real
// samples per complex slot), halving both flops and twiddle memory relative
// to a full complex transform of the real data; odd lengths fall back to the
// complex path. The half-spectrum layout matches FFTW: n/2 + 1 bins, bin 0
// and bin n/2 (even n) purely real.
//
// Besides the one-pencil scalar entry points, the plan exposes batch-major
// execution (`forward_batch` / `inverse_batch` / `forward_batch_pruned`)
// mirroring Fft1D's: kBatchTile pencils at a time are packed into the
// half-length complex plan's SoA tile engine (SIMD lanes across pencils),
// with the r2c unpack / c2r repack running per pencil around it. Odd
// lengths route the packed pairs through the full-length complex batch
// path (Bluestein under the hood), so any n >= 2 works.
#pragma once

#include <span>

#include "fft/fft1d.hpp"

namespace lc::fft {

/// 1D real FFT plan of fixed length n >= 2. Thread-safe after construction;
/// scratch comes from the caller's FftWorkspace.
class RealFft1D {
 public:
  explicit RealFft1D(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  /// Number of half-spectrum bins: n/2 + 1.
  [[nodiscard]] std::size_t spectrum_size() const noexcept { return n_ / 2 + 1; }

  /// Forward r2c: `in` has n reals, `out` has n/2+1 complex bins.
  void forward(std::span<const double> in, std::span<cplx> out,
               FftWorkspace& ws) const;

  /// Inverse c2r with 1/n normalisation: `in` has n/2+1 bins (treated as a
  /// Hermitian half-spectrum), `out` has n reals.
  void inverse(std::span<const cplx> in, std::span<double> out,
               FftWorkspace& ws) const;

  /// Batched strided r2c: pencil p real element t lives at
  /// in[p * in_pencil_stride + t * in_elem_stride]; half-spectrum bin i is
  /// written to out[p * out_pencil_stride + i * out_elem_stride]
  /// (spectrum_size() bins per pencil). Handles any strides and partial
  /// final tiles.
  void forward_batch(const double* in, std::size_t in_elem_stride,
                     std::size_t in_pencil_stride, cplx* out,
                     std::size_t out_elem_stride,
                     std::size_t out_pencil_stride, std::size_t pencils,
                     FftWorkspace& ws) const;

  /// Batched input-pruned r2c: pencil p has k nonzero reals at
  /// in[p * in_pencil_stride + t * in_elem_stride], t in [0, k), occupying
  /// logical indices [offset, offset + k) of an n-point real signal whose
  /// remaining entries are zero (the zero-padded sub-domain rows of the
  /// slab pipeline's xy stage; the zero rows are never gathered).
  void forward_batch_pruned(const double* in, std::size_t in_elem_stride,
                            std::size_t in_pencil_stride, std::size_t k,
                            std::size_t offset, cplx* out,
                            std::size_t out_elem_stride,
                            std::size_t out_pencil_stride,
                            std::size_t pencils, FftWorkspace& ws) const;

  /// Batched strided c2r with 1/n normalisation: pencil p half-spectrum bin
  /// i at in[p * in_pencil_stride + i * in_elem_stride] (treated as
  /// Hermitian), real element t written to
  /// out[p * out_pencil_stride + t * out_elem_stride].
  void inverse_batch(const cplx* in, std::size_t in_elem_stride,
                     std::size_t in_pencil_stride, double* out,
                     std::size_t out_elem_stride,
                     std::size_t out_pencil_stride, std::size_t pencils,
                     FftWorkspace& ws) const;

 private:
  std::size_t n_;
  bool packed_;                 // even-n half-size path
  Fft1D half_;                  // length n/2 (packed) or n (fallback)
  AlignedVector<cplx> unpack_;  // e^{-2πi k/n}, k in [0, n/2]
};

}  // namespace lc::fft
