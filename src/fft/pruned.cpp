#include "fft/pruned.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace lc::fft {

void input_pruned_forward(const Fft1D& plan, std::span<const cplx> nonzero,
                          std::size_t offset, std::span<cplx> out,
                          FftWorkspace& ws) {
  const std::size_t n = plan.size();
  LC_CHECK_ARG(out.size() == n, "output must hold the full spectrum");
  LC_CHECK_ARG(offset + nonzero.size() <= n, "nonzero block exceeds length");
  std::fill(out.begin(), out.end(), cplx{0.0, 0.0});
  std::copy(nonzero.begin(), nonzero.end(),
            out.begin() + static_cast<std::ptrdiff_t>(offset));
  plan.forward(out, ws);
}

bool direct_prune_profitable(std::size_t n, std::size_t wanted) noexcept {
  if (n < 2) return false;
  // Measured crossover (bench_fft_micro): each directly evaluated output
  // costs ~n complex exponentials, an FFT costs ~n log2 n cheap butterflies
  // — the polar() evaluations make direct ~10x more expensive per term, so
  // direct only wins for very small output sets.
  const double log2n = std::log2(static_cast<double>(n));
  return static_cast<double>(wanted) < 0.5 * log2n;
}

void output_pruned_inverse(const Fft1D& plan, std::span<const cplx> spectrum,
                           std::span<const std::size_t> wanted,
                           std::span<cplx> out, FftWorkspace& ws,
                           PruneStrategy strategy) {
  const std::size_t n = plan.size();
  LC_CHECK_ARG(spectrum.size() == n, "spectrum length != plan length");
  LC_CHECK_ARG(out.size() >= wanted.size(), "output too small");

  bool direct = false;
  switch (strategy) {
    case PruneStrategy::kAuto:
      direct = direct_prune_profitable(n, wanted.size());
      break;
    case PruneStrategy::kDirect:
      direct = true;
      break;
    case PruneStrategy::kFullTransform:
      direct = false;
      break;
  }

  if (direct) {
    const double w0 = 2.0 * std::numbers::pi / static_cast<double>(n);
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < wanted.size(); ++i) {
      const std::size_t j = wanted[i];
      LC_CHECK_ARG(j < n, "wanted index out of range");
      cplx acc{0.0, 0.0};
      for (std::size_t k = 0; k < n; ++k) {
        acc += spectrum[k] *
               std::polar(1.0, w0 * static_cast<double>((j * k) % n));
      }
      out[i] = acc * inv_n;
    }
    return;
  }

  auto buf = ws.buffer_b(n);
  std::copy(spectrum.begin(), spectrum.end(), buf.begin());
  plan.inverse(buf, ws);
  for (std::size_t i = 0; i < wanted.size(); ++i) {
    LC_CHECK_ARG(wanted[i] < n, "wanted index out of range");
    out[i] = buf[wanted[i]];
  }
}

}  // namespace lc::fft
