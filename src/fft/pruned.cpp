#include "fft/pruned.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace lc::fft {

void input_pruned_forward(const Fft1D& plan, std::span<const cplx> nonzero,
                          std::size_t offset, std::span<cplx> out,
                          FftWorkspace& ws) {
  const std::size_t n = plan.size();
  LC_CHECK_ARG(out.size() == n, "output must hold the full spectrum");
  LC_CHECK_ARG(offset + nonzero.size() <= n, "nonzero block exceeds length");
  std::fill(out.begin(), out.end(), cplx{0.0, 0.0});
  std::copy(nonzero.begin(), nonzero.end(),
            out.begin() + static_cast<std::ptrdiff_t>(offset));
  plan.forward(out, ws);
}

bool direct_prune_profitable(std::size_t n, std::size_t wanted) noexcept {
  if (n < 2) return false;
  // Measured crossover (bench_fft_micro, recurrence-based direct path at
  // ~15 ns/term): a direct output costs ~n phase-recurrence mul-adds, the
  // full inverse ~n log2 n butterflies. The batched radix path runs its
  // butterflies so cheaply that direct no longer wins for any pow2 output
  // count; Bluestein lengths pay ~4x more per transform, so tiny output
  // sets (1-2 bins at n ~ 1000) still favour direct evaluation.
  const double log2n = std::log2(static_cast<double>(n));
  const double crossover = is_pow2(n) ? 0.05 * log2n : 0.23 * log2n;
  return static_cast<double>(wanted) < crossover;
}

void output_pruned_inverse(const Fft1D& plan, std::span<const cplx> spectrum,
                           std::span<const std::size_t> wanted,
                           std::span<cplx> out, FftWorkspace& ws,
                           PruneStrategy strategy) {
  const std::size_t n = plan.size();
  LC_CHECK_ARG(spectrum.size() == n, "spectrum length != plan length");
  LC_CHECK_ARG(out.size() >= wanted.size(), "output too small");

  bool direct = false;
  switch (strategy) {
    case PruneStrategy::kAuto:
      direct = direct_prune_profitable(n, wanted.size());
      break;
    case PruneStrategy::kDirect:
      direct = true;
      break;
    case PruneStrategy::kFullTransform:
      direct = false;
      break;
  }

  if (direct) {
    const double w0 = 2.0 * std::numbers::pi / static_cast<double>(n);
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < wanted.size(); ++i) {
      const std::size_t j = wanted[i];
      LC_CHECK_ARG(j < n, "wanted index out of range");
      // Phase recurrence instead of a polar() per term: four independent
      // chains w_t advancing by step^4 keep the complex-multiply latency off
      // the critical path, and a periodic resync from polar() bounds the
      // rounding drift of the recurrence.
      constexpr std::size_t kLanes = 4;
      constexpr std::size_t kResync = 256 * kLanes;
      const cplx step = std::polar(1.0, w0 * static_cast<double>(j));
      const cplx step4 = (step * step) * (step * step);
      cplx w[kLanes];
      cplx acc[kLanes] = {};
      const auto resync = [&](std::size_t k) {
        for (std::size_t t = 0; t < kLanes; ++t) {
          w[t] = std::polar(1.0, w0 * static_cast<double>((j * (k + t)) % n));
        }
      };
      resync(0);
      std::size_t k = 0;
      for (; k + kLanes <= n; k += kLanes) {
        if (k != 0 && k % kResync == 0) resync(k);
        for (std::size_t t = 0; t < kLanes; ++t) {
          acc[t] += spectrum[k + t] * w[t];
          w[t] *= step4;
        }
      }
      cplx total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
      for (; k < n; ++k) {
        total += spectrum[k] *
                 std::polar(1.0, w0 * static_cast<double>((j * k) % n));
      }
      out[i] = total * inv_n;
    }
    return;
  }

  auto buf = ws.buffer_b(n);
  std::copy(spectrum.begin(), spectrum.end(), buf.begin());
  plan.inverse(buf, ws);
  for (std::size_t i = 0; i < wanted.size(); ++i) {
    LC_CHECK_ARG(wanted[i] < n, "wanted index out of range");
    out[i] = buf[wanted[i]];
  }
}

}  // namespace lc::fft
