#include "fft/fft1d.hpp"

#include <algorithm>
#include <numbers>

#include "common/check.hpp"

namespace lc::fft {

namespace {

std::span<cplx> ensure(AlignedVector<cplx>& v, std::size_t n) {
  if (v.size() < n) v.resize(n);
  return {v.data(), n};
}

}  // namespace

std::span<cplx> FftWorkspace::buffer_a(std::size_t n) { return ensure(a_, n); }
std::span<cplx> FftWorkspace::buffer_b(std::size_t n) { return ensure(b_, n); }
std::span<cplx> FftWorkspace::buffer_c(std::size_t n) { return ensure(c_, n); }
std::span<cplx> FftWorkspace::bluestein_buffer(std::size_t n) {
  return ensure(blue_, n);
}

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Bluestein chirp-z machinery: an n-point DFT as an m-point circular
/// convolution, m = next_pow2(2n - 1).
struct Fft1D::Bluestein {
  std::size_t m = 0;
  Fft1D fft_m;                    // radix-2 plan of length m
  AlignedVector<cplx> chirp;      // w_j = e^{-iπ j²/n}, j in [0, n)
  AlignedVector<cplx> kernel_hat; // FFT_m of the chirp-conjugate kernel

  explicit Bluestein(std::size_t n)
      : m(next_pow2(2 * n - 1)), fft_m(m), chirp(n), kernel_hat(m) {
    // j² mod 2n keeps the phase argument small for large j (the chirp has
    // period 2n in j²), preserving precision.
    const double w0 = std::numbers::pi / static_cast<double>(n);
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t jsq = (j * j) % (2 * n);
      chirp[j] = std::polar(1.0, -w0 * static_cast<double>(jsq));
    }
    AlignedVector<cplx> b(m, cplx{0.0, 0.0});
    b[0] = std::conj(chirp[0]);
    for (std::size_t j = 1; j < n; ++j) {
      b[j] = std::conj(chirp[j]);
      b[m - j] = std::conj(chirp[j]);
    }
    FftWorkspace ws;
    fft_m.forward({b.data(), m}, ws);
    std::copy(b.begin(), b.end(), kernel_hat.begin());
  }
};

Fft1D::Fft1D(std::size_t n) : n_(n), pow2_(is_pow2(n)) {
  LC_CHECK_ARG(n >= 1, "FFT length must be >= 1");
  if (pow2_) {
    // Bit-reversal permutation.
    bitrev_.resize(n);
    std::size_t bits = 0;
    while ((std::size_t{1} << bits) < n) ++bits;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t r = 0;
      for (std::size_t b = 0; b < bits; ++b) {
        r |= ((i >> b) & 1u) << (bits - 1 - b);
      }
      bitrev_[i] = r;
    }
    twiddle_.resize(std::max<std::size_t>(n / 2, 1));
    const double w0 = -2.0 * std::numbers::pi / static_cast<double>(n);
    for (std::size_t j = 0; j < twiddle_.size(); ++j) {
      twiddle_[j] = std::polar(1.0, w0 * static_cast<double>(j));
    }
  } else if (n > 1) {
    blue_ = std::make_unique<Bluestein>(n);
  }
}

Fft1D::~Fft1D() = default;
Fft1D::Fft1D(Fft1D&&) noexcept = default;
Fft1D& Fft1D::operator=(Fft1D&&) noexcept = default;

void Fft1D::radix2(std::span<cplx> data, bool inv) const {
  const std::size_t n = n_;
  // Bit-reverse reorder.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  // Iterative butterflies. For stage length `len`, the twiddle for butterfly
  // j is twiddle_[j * (n / len)] (conjugated for the inverse).
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t step = n / len;
    for (std::size_t blk = 0; blk < n; blk += len) {
      for (std::size_t j = 0; j < half; ++j) {
        cplx w = twiddle_[j * step];
        if (inv) w = std::conj(w);
        const cplx u = data[blk + j];
        const cplx t = data[blk + j + half] * w;
        data[blk + j] = u + t;
        data[blk + j + half] = u - t;
      }
    }
  }
}

void Fft1D::execute(std::span<cplx> inout, bool inv, FftWorkspace& ws) const {
  LC_CHECK_ARG(inout.size() == n_, "FFT buffer length != plan length");
  if (n_ == 1) {
    return;  // identity
  }
  if (pow2_) {
    radix2(inout, inv);
  } else {
    // Bluestein. The inverse is computed as conj(forward(conj(x)))/n, which
    // reuses the single precomputed forward chirp kernel.
    const Bluestein& bl = *blue_;
    auto a = ws.bluestein_buffer(bl.m);
    if (inv) {
      for (std::size_t j = 0; j < n_; ++j) a[j] = std::conj(inout[j]) * bl.chirp[j];
    } else {
      for (std::size_t j = 0; j < n_; ++j) a[j] = inout[j] * bl.chirp[j];
    }
    std::fill(a.begin() + static_cast<std::ptrdiff_t>(n_), a.end(), cplx{0.0, 0.0});
    bl.fft_m.radix2(a, /*inv=*/false);
    for (std::size_t j = 0; j < bl.m; ++j) a[j] *= bl.kernel_hat[j];
    bl.fft_m.radix2(a, /*inv=*/true);
    const double inv_m = 1.0 / static_cast<double>(bl.m);
    if (inv) {
      const double scale = inv_m / static_cast<double>(n_);
      for (std::size_t j = 0; j < n_; ++j) {
        inout[j] = std::conj(a[j] * bl.chirp[j]) * scale;
      }
    } else {
      for (std::size_t j = 0; j < n_; ++j) {
        inout[j] = a[j] * bl.chirp[j] * inv_m;
      }
    }
    return;
  }
  if (inv) {
    const double scale = 1.0 / static_cast<double>(n_);
    for (auto& x : inout) x *= scale;
  }
}

void Fft1D::forward(std::span<cplx> inout, FftWorkspace& ws) const {
  execute(inout, /*inv=*/false, ws);
}

void Fft1D::inverse(std::span<cplx> inout, FftWorkspace& ws) const {
  execute(inout, /*inv=*/true, ws);
}

void Fft1D::forward(std::span<cplx> inout) const {
  FftWorkspace ws;
  forward(inout, ws);
}

void Fft1D::inverse(std::span<cplx> inout) const {
  FftWorkspace ws;
  inverse(inout, ws);
}

namespace {

template <typename Exec>
void run_strided(std::size_t n, cplx* base, std::size_t elem_stride,
                 std::size_t pencil_stride, std::size_t pencils,
                 FftWorkspace& ws, Exec&& exec) {
  if (elem_stride == 1) {
    for (std::size_t p = 0; p < pencils; ++p) {
      exec(std::span<cplx>(base + p * pencil_stride, n));
    }
    return;
  }
  auto scratch = ws.buffer_c(n);
  for (std::size_t p = 0; p < pencils; ++p) {
    cplx* pen = base + p * pencil_stride;
    for (std::size_t i = 0; i < n; ++i) scratch[i] = pen[i * elem_stride];
    exec(scratch);
    for (std::size_t i = 0; i < n; ++i) pen[i * elem_stride] = scratch[i];
  }
}

}  // namespace

void Fft1D::forward_strided(cplx* base, std::size_t elem_stride,
                            std::size_t pencil_stride, std::size_t pencils,
                            FftWorkspace& ws) const {
  run_strided(n_, base, elem_stride, pencil_stride, pencils, ws,
              [&](std::span<cplx> s) { forward(s, ws); });
}

void Fft1D::inverse_strided(cplx* base, std::size_t elem_stride,
                            std::size_t pencil_stride, std::size_t pencils,
                            FftWorkspace& ws) const {
  run_strided(n_, base, elem_stride, pencil_stride, pencils, ws,
              [&](std::span<cplx> s) { inverse(s, ws); });
}

}  // namespace lc::fft
