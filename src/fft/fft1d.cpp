#include "fft/fft1d.hpp"

#include <algorithm>
#include <bit>
#include <numbers>

#include "common/check.hpp"
#include "common/simd.hpp"

namespace lc::fft {

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Bluestein chirp-z machinery: an n-point DFT as an m-point circular
/// convolution, m = next_pow2(2n - 1).
struct Fft1D::Bluestein {
  std::size_t m = 0;
  Fft1D fft_m;                    // radix plan of length m
  AlignedVector<cplx> chirp;      // w_j = e^{-iπ j²/n}, j in [0, n)
  AlignedVector<cplx> kernel_hat; // FFT_m of the chirp-conjugate kernel

  explicit Bluestein(std::size_t n)
      : m(next_pow2(2 * n - 1)), fft_m(m), chirp(n), kernel_hat(m) {
    // j² mod 2n keeps the phase argument small for large j (the chirp has
    // period 2n in j²), preserving precision.
    const double w0 = std::numbers::pi / static_cast<double>(n);
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t jsq = (j * j) % (2 * n);
      chirp[j] = std::polar(1.0, -w0 * static_cast<double>(jsq));
    }
    AlignedVector<cplx> b(m, cplx{0.0, 0.0});
    b[0] = std::conj(chirp[0]);
    for (std::size_t j = 1; j < n; ++j) {
      b[j] = std::conj(chirp[j]);
      b[m - j] = std::conj(chirp[j]);
    }
    FftWorkspace ws;
    fft_m.forward({b.data(), m}, ws);
    std::copy(b.begin(), b.end(), kernel_hat.begin());
  }
};

Fft1D::Fft1D(std::size_t n) : n_(n), pow2_(is_pow2(n)) {
  LC_CHECK_ARG(n >= 1, "FFT length must be >= 1");
  if (pow2_) {
    LC_CHECK_ARG(n <= (std::size_t{1} << 31), "FFT length too large");
    // Bit-reversal permutation plus the swap-pair list that replaces the
    // per-call i < bitrev(i) scan (the permutation is an involution, so the
    // pairs with i < j cover it exactly once).
    bitrev_.resize(n);
    std::size_t bits = 0;
    while ((std::size_t{1} << bits) < n) ++bits;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t r = 0;
      for (std::size_t b = 0; b < bits; ++b) {
        r |= ((i >> b) & 1u) << (bits - 1 - b);
      }
      bitrev_[i] = static_cast<std::uint32_t>(r);
      if (i < r) {
        swap_pairs_.emplace_back(static_cast<std::uint32_t>(i),
                                 static_cast<std::uint32_t>(r));
      }
    }
    twiddle_.resize(std::max<std::size_t>(n / 2, 1));
    const double w0 = -2.0 * std::numbers::pi / static_cast<double>(n);
    for (std::size_t j = 0; j < twiddle_.size(); ++j) {
      twiddle_[j] = std::polar(1.0, w0 * static_cast<double>(j));
    }
  } else if (n > 1) {
    blue_ = std::make_unique<Bluestein>(n);
  }
}

Fft1D::~Fft1D() = default;
Fft1D::Fft1D(Fft1D&&) noexcept = default;
Fft1D& Fft1D::operator=(Fft1D&&) noexcept = default;

namespace {

/// Scalar butterfly passes over data already in bit-reversed (DIT) order.
///
/// Two consecutive radix-2 stages (lengths 2h and 4h) are fused into one
/// radix-4 pass: each element is loaded and stored once per pass instead of
/// twice, halving memory traffic. The stage-2 twiddle at offset j + h is
/// W((j+h)·n/4h) = ∓i · W(j·n/4h), so only two table twiddles are read per
/// butterfly and the third is derived by a re/im swap. When log2 n is odd a
/// twiddle-free radix-2 head pass runs first.
///
/// NC != 0 pins the length at compile time: every loop bound becomes a
/// constant and the compiler fully unrolls the pass structure — these
/// instantiations are the "codelets" used for n <= 32.
template <bool Inv, std::size_t NC>
void scalar_passes(cplx* d, std::size_t n_rt, const cplx* tw) {
  const std::size_t n = NC != 0 ? NC : n_rt;
  std::size_t h = 1;
  if (std::countr_zero(n) & 1u) {
    for (std::size_t i = 0; i < n; i += 2) {
      const cplx u = d[i];
      const cplx t = d[i + 1];
      d[i] = u + t;
      d[i + 1] = u - t;
    }
    h = 2;
  }
  for (; 4 * h <= n; h *= 4) {
    const std::size_t step2 = n / (4 * h);  // twiddle step of the 4h stage
    for (std::size_t blk = 0; blk < n; blk += 4 * h) {
      for (std::size_t j = 0; j < h; ++j) {
        cplx w2 = tw[j * step2];
        cplx w1 = tw[2 * j * step2];
        if (Inv) {
          w1 = std::conj(w1);
          w2 = std::conj(w2);
        }
        const cplx w3 = Inv ? cplx{-w2.imag(), w2.real()}   // +i · w2
                            : cplx{w2.imag(), -w2.real()};  // -i · w2
        cplx* p = d + blk + j;
        const cplx a = p[0];
        const cplx b = p[h];
        const cplx c = p[2 * h];
        const cplx e = p[3 * h];
        const cplx t0 = b * w1;
        const cplx t1 = e * w1;
        const cplx a1 = a + t0;
        const cplx b1 = a - t0;
        const cplx c1 = c + t1;
        const cplx e1 = c - t1;
        const cplx t2 = c1 * w2;
        const cplx t3 = e1 * w3;
        p[0] = a1 + t2;
        p[2 * h] = a1 - t2;
        p[h] = b1 + t3;
        p[3 * h] = b1 - t3;
      }
    }
  }
}

template <bool Inv>
void scalar_dispatch(cplx* d, std::size_t n, const cplx* tw) {
  switch (n) {
    case 2: scalar_passes<Inv, 2>(d, n, tw); break;
    case 4: scalar_passes<Inv, 4>(d, n, tw); break;
    case 8: scalar_passes<Inv, 8>(d, n, tw); break;
    case 16: scalar_passes<Inv, 16>(d, n, tw); break;
    case 32: scalar_passes<Inv, 32>(d, n, tw); break;
    default: scalar_passes<Inv, 0>(d, n, tw); break;
  }
}

constexpr std::size_t kB = Fft1D::kBatchTile;

/// Swap two SoA tile rows (kBatchTile doubles each) in both planes.
inline void swap_tile_rows(double* re, double* im, std::size_t i,
                           std::size_t j) noexcept {
  using namespace simd;
  double* a = re + i * kB;
  double* b = re + j * kB;
  double* c = im + i * kB;
  double* e = im + j * kB;
  for (std::size_t l = 0; l < kB; l += kLanes) {
    const Vd va = load(a + l), vb = load(b + l);
    store(a + l, vb);
    store(b + l, va);
    const Vd vc = load(c + l), ve = load(e + l);
    store(c + l, ve);
    store(e + l, vc);
  }
}

/// Multiply tile row i by the broadcast complex w in place.
inline void scale_tile_row(double* re, double* im, std::size_t i, double wr,
                           double wi) noexcept {
  using namespace simd;
  double* rr = re + i * kB;
  double* ri = im + i * kB;
  const Vd vwr = broadcast(wr);
  const Vd vwi = broadcast(wi);
  for (std::size_t l = 0; l < kB; l += kLanes) {
    const Vd xr = load(rr + l);
    const Vd xi = load(ri + l);
    store(rr + l, fmsub(xr, vwr, mul(xi, vwi)));
    store(ri + l, fmadd(xr, vwi, mul(xi, vwr)));
  }
}

}  // namespace

void Fft1D::radix_dit(std::span<cplx> data, bool inv) const {
  cplx* d = data.data();
  for (const auto& [i, j] : swap_pairs_) std::swap(d[i], d[j]);
  if (inv) {
    scalar_dispatch<true>(d, n_, twiddle_.data());
  } else {
    scalar_dispatch<false>(d, n_, twiddle_.data());
  }
}

void Fft1D::execute(std::span<cplx> inout, bool inv, FftWorkspace& ws) const {
  LC_CHECK_ARG(inout.size() == n_, "FFT buffer length != plan length");
  if (n_ == 1) {
    return;  // identity
  }
  if (pow2_) {
    radix_dit(inout, inv);
  } else {
    // Bluestein. The inverse is computed as conj(forward(conj(x)))/n, which
    // reuses the single precomputed forward chirp kernel.
    const Bluestein& bl = *blue_;
    auto a = ws.bluestein_buffer(bl.m);
    if (inv) {
      for (std::size_t j = 0; j < n_; ++j) a[j] = std::conj(inout[j]) * bl.chirp[j];
    } else {
      for (std::size_t j = 0; j < n_; ++j) a[j] = inout[j] * bl.chirp[j];
    }
    std::fill(a.begin() + static_cast<std::ptrdiff_t>(n_), a.end(), cplx{0.0, 0.0});
    bl.fft_m.radix_dit(a, /*inv=*/false);
    simd::complex_mul_inplace(a.data(), bl.kernel_hat.data(), bl.m);
    bl.fft_m.radix_dit(a, /*inv=*/true);
    const double inv_m = 1.0 / static_cast<double>(bl.m);
    if (inv) {
      const double scale = inv_m / static_cast<double>(n_);
      for (std::size_t j = 0; j < n_; ++j) {
        inout[j] = std::conj(a[j] * bl.chirp[j]) * scale;
      }
    } else {
      for (std::size_t j = 0; j < n_; ++j) {
        inout[j] = a[j] * bl.chirp[j] * inv_m;
      }
    }
    return;
  }
  if (inv) {
    const double scale = 1.0 / static_cast<double>(n_);
    for (auto& x : inout) x *= scale;
  }
}

void Fft1D::forward(std::span<cplx> inout, FftWorkspace& ws) const {
  execute(inout, /*inv=*/false, ws);
}

void Fft1D::inverse(std::span<cplx> inout, FftWorkspace& ws) const {
  execute(inout, /*inv=*/true, ws);
}

void Fft1D::forward(std::span<cplx> inout) const {
  FftWorkspace ws;
  forward(inout, ws);
}

void Fft1D::inverse(std::span<cplx> inout) const {
  FftWorkspace ws;
  inverse(inout, ws);
}

namespace {

template <typename Exec>
void run_strided(std::size_t n, cplx* base, std::size_t elem_stride,
                 std::size_t pencil_stride, std::size_t pencils,
                 FftWorkspace& ws, Exec&& exec) {
  if (elem_stride == 1) {
    for (std::size_t p = 0; p < pencils; ++p) {
      exec(std::span<cplx>(base + p * pencil_stride, n));
    }
    return;
  }
  auto scratch = ws.buffer_c(n);
  for (std::size_t p = 0; p < pencils; ++p) {
    cplx* pen = base + p * pencil_stride;
    for (std::size_t i = 0; i < n; ++i) scratch[i] = pen[i * elem_stride];
    exec(scratch);
    for (std::size_t i = 0; i < n; ++i) pen[i * elem_stride] = scratch[i];
  }
}

}  // namespace

void Fft1D::forward_strided(cplx* base, std::size_t elem_stride,
                            std::size_t pencil_stride, std::size_t pencils,
                            FftWorkspace& ws) const {
  run_strided(n_, base, elem_stride, pencil_stride, pencils, ws,
              [&](std::span<cplx> s) { forward(s, ws); });
}

void Fft1D::inverse_strided(cplx* base, std::size_t elem_stride,
                            std::size_t pencil_stride, std::size_t pencils,
                            FftWorkspace& ws) const {
  run_strided(n_, base, elem_stride, pencil_stride, pencils, ws,
              [&](std::span<cplx> s) { inverse(s, ws); });
}

// ---------------------------------------------------------------------------
// Batch-major SoA engine
// ---------------------------------------------------------------------------

void Fft1D::tile_passes(double* re, double* im, bool inv) const {
  using namespace simd;
  const std::size_t n = n_;
  const cplx* tw = twiddle_.data();
  const double sgn = inv ? -1.0 : 1.0;  // conjugate twiddles for the inverse
  std::size_t h = 1;
  if (std::countr_zero(n) & 1u) {
    // Twiddle-free radix-2 head pass when the stage count is odd.
    for (std::size_t i = 0; i < n; i += 2) {
      double* ar = re + i * kB;
      double* ai = im + i * kB;
      double* br = ar + kB;
      double* bi = ai + kB;
      for (std::size_t l = 0; l < kB; l += kLanes) {
        const Vd xr = load(ar + l), xi = load(ai + l);
        const Vd yr = load(br + l), yi = load(bi + l);
        store(ar + l, add(xr, yr));
        store(ai + l, add(xi, yi));
        store(br + l, sub(xr, yr));
        store(bi + l, sub(xi, yi));
      }
    }
    h = 2;
  }
  // Fused radix-4 passes (same structure as scalar_passes) with SIMD lanes
  // across the kBatchTile pencils of the tile: twiddles are broadcast, so
  // the complex butterflies are plain mul/fma on the split planes — no
  // in-register shuffles.
  for (; 4 * h <= n; h *= 4) {
    const std::size_t step2 = n / (4 * h);
    for (std::size_t blk = 0; blk < n; blk += 4 * h) {
      for (std::size_t j = 0; j < h; ++j) {
        const cplx cw2 = tw[j * step2];
        const cplx cw1 = tw[2 * j * step2];
        const double w1r = cw1.real(), w1i = sgn * cw1.imag();
        const double w2r = cw2.real(), w2i = sgn * cw2.imag();
        const double w3r = inv ? -w2i : w2i;  // w3 = ∓i · w2
        const double w3i = inv ? w2r : -w2r;
        const std::size_t r0 = (blk + j) * kB;
        double* ar = re + r0;
        double* ai = im + r0;
        double* br = ar + h * kB;
        double* bi = ai + h * kB;
        double* cr = ar + 2 * h * kB;
        double* ci = ai + 2 * h * kB;
        double* er = ar + 3 * h * kB;
        double* ei = ai + 3 * h * kB;
        const Vd vw1r = broadcast(w1r), vw1i = broadcast(w1i);
        const Vd vw2r = broadcast(w2r), vw2i = broadcast(w2i);
        const Vd vw3r = broadcast(w3r), vw3i = broadcast(w3i);
        for (std::size_t l = 0; l < kB; l += kLanes) {
          const Vd xbr = load(br + l), xbi = load(bi + l);
          const Vd xer = load(er + l), xei = load(ei + l);
          const Vd t0r = fmsub(xbr, vw1r, mul(xbi, vw1i));
          const Vd t0i = fmadd(xbr, vw1i, mul(xbi, vw1r));
          const Vd t1r = fmsub(xer, vw1r, mul(xei, vw1i));
          const Vd t1i = fmadd(xer, vw1i, mul(xei, vw1r));
          const Vd xar = load(ar + l), xai = load(ai + l);
          const Vd xcr = load(cr + l), xci = load(ci + l);
          const Vd a1r = add(xar, t0r), a1i = add(xai, t0i);
          const Vd b1r = sub(xar, t0r), b1i = sub(xai, t0i);
          const Vd c1r = add(xcr, t1r), c1i = add(xci, t1i);
          const Vd e1r = sub(xcr, t1r), e1i = sub(xci, t1i);
          const Vd t2r = fmsub(c1r, vw2r, mul(c1i, vw2i));
          const Vd t2i = fmadd(c1r, vw2i, mul(c1i, vw2r));
          const Vd t3r = fmsub(e1r, vw3r, mul(e1i, vw3i));
          const Vd t3i = fmadd(e1r, vw3i, mul(e1i, vw3r));
          store(ar + l, add(a1r, t2r));
          store(ai + l, add(a1i, t2i));
          store(cr + l, sub(a1r, t2r));
          store(ci + l, sub(a1i, t2i));
          store(br + l, add(b1r, t3r));
          store(bi + l, add(b1i, t3i));
          store(er + l, sub(b1r, t3r));
          store(ei + l, sub(b1i, t3i));
        }
      }
    }
  }
}

/// Gather + transform + scatter of one pow2 tile. Input pencil p has k
/// (possibly pruned) nonzero elements at in[p·ips + t·ies] occupying
/// logical rows [offset, offset+k); output written to out[p·ops + i·oes].
/// The bit-reversal permutation is folded into the gather (bitrev is an
/// involution, so the tile row for logical index s is simply bitrev[s]).
/// Gather/scatter loop order follows the smaller stride so strided z-pencil
/// tiles read/write kBatchTile-contiguous cache lines once per element row
/// instead of walking each pencil separately.
void Fft1D::batch_pruned_pow2_tile(const cplx* in, std::size_t ies,
                                   std::size_t ips, std::size_t k,
                                   std::size_t offset, cplx* out,
                                   std::size_t oes, std::size_t ops,
                                   std::size_t tb, bool inv,
                                   FftWorkspace& ws) const {
  const std::size_t n = n_;
  auto re = ws.tile_re(n * kB);
  auto im = ws.tile_im(n * kB);
  if (k < n || tb < kB) {
    std::fill(re.begin(), re.end(), 0.0);
    std::fill(im.begin(), im.end(), 0.0);
  }
  if (ies == 1) {
    for (std::size_t p = 0; p < tb; ++p) {
      const cplx* src = in + p * ips;
      for (std::size_t t = 0; t < k; ++t) {
        const std::size_t row = bitrev_[offset + t];
        re[row * kB + p] = src[t].real();
        im[row * kB + p] = src[t].imag();
      }
    }
  } else {
    for (std::size_t t = 0; t < k; ++t) {
      const cplx* src = in + t * ies;
      const std::size_t row = bitrev_[offset + t];
      double* rr = &re[row * kB];
      double* ri = &im[row * kB];
      for (std::size_t p = 0; p < tb; ++p) {
        rr[p] = src[p * ips].real();
        ri[p] = src[p * ips].imag();
      }
    }
  }

  tile_passes(re.data(), im.data(), inv);

  const double scale = inv ? 1.0 / static_cast<double>(n) : 1.0;
  if (oes == 1) {
    for (std::size_t p = 0; p < tb; ++p) {
      cplx* dst = out + p * ops;
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = cplx{re[i * kB + p] * scale, im[i * kB + p] * scale};
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      cplx* dst = out + i * oes;
      const double* rr = &re[i * kB];
      const double* ri = &im[i * kB];
      for (std::size_t p = 0; p < tb; ++p) {
        dst[p * ops] = cplx{rr[p] * scale, ri[p] * scale};
      }
    }
  }
}

/// Batched Bluestein tile: the chirp pre-multiply is fused into the gather
/// (rows outside the nonzero window [offset, offset+k) are zeroed, never
/// read), both m-length transforms run through tile_passes, and the chirp
/// post-multiply + normalisation is fused into the scatter.
void Fft1D::batch_pruned_bluestein_tile(const cplx* in, std::size_t ies,
                                        std::size_t ips, std::size_t k,
                                        std::size_t offset, cplx* out,
                                        std::size_t oes, std::size_t ops,
                                        std::size_t tb, bool inv,
                                        FftWorkspace& ws) const {
  const Bluestein& bl = *blue_;
  const Fft1D& fm = bl.fft_m;
  const std::size_t m = bl.m;
  auto re = ws.tile_re(m * kB);
  auto im = ws.tile_im(m * kB);

  // Gather in fft_m bit-reversed row order, multiplied by the chirp.
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t src = fm.bitrev_[i];
    double* rr = &re[i * kB];
    double* ri = &im[i * kB];
    if (src >= offset && src < offset + k) {
      const cplx ch = bl.chirp[src];
      const cplx* s = in + (src - offset) * ies;
      for (std::size_t p = 0; p < tb; ++p) {
        cplx x = s[p * ips];
        if (inv) x = std::conj(x);
        x *= ch;
        rr[p] = x.real();
        ri[p] = x.imag();
      }
      for (std::size_t p = tb; p < kB; ++p) rr[p] = ri[p] = 0.0;
    } else {
      for (std::size_t p = 0; p < kB; ++p) rr[p] = ri[p] = 0.0;
    }
  }

  fm.tile_passes(re.data(), im.data(), /*inv=*/false);
  for (std::size_t i = 0; i < m; ++i) {
    scale_tile_row(re.data(), im.data(), i, bl.kernel_hat[i].real(),
                   bl.kernel_hat[i].imag());
  }
  // The second transform needs bit-reversed input again.
  for (const auto& [i, j] : fm.swap_pairs_) {
    swap_tile_rows(re.data(), im.data(), i, j);
  }
  fm.tile_passes(re.data(), im.data(), /*inv=*/true);

  const double inv_m = 1.0 / static_cast<double>(m);
  const double scale =
      inv ? inv_m / static_cast<double>(n_) : inv_m;
  auto emit = [&](std::size_t j, std::size_t p) {
    const cplx chs = bl.chirp[j] * scale;
    const cplx a{re[j * kB + p], im[j * kB + p]};
    const cplx o = a * chs;
    return inv ? std::conj(o) : o;
  };
  if (oes == 1) {
    for (std::size_t p = 0; p < tb; ++p) {
      cplx* dst = out + p * ops;
      for (std::size_t j = 0; j < n_; ++j) dst[j] = emit(j, p);
    }
  } else {
    for (std::size_t j = 0; j < n_; ++j) {
      cplx* dst = out + j * oes;
      for (std::size_t p = 0; p < tb; ++p) dst[p * ops] = emit(j, p);
    }
  }
}

void Fft1D::execute_batch(cplx* base, std::size_t elem_stride,
                          std::size_t pencil_stride, std::size_t pencils,
                          bool inv, FftWorkspace& ws) const {
  if (n_ == 1) return;  // identity (1/n scale is also 1)
  for (std::size_t p0 = 0; p0 < pencils; p0 += kB) {
    const std::size_t tb = std::min(kB, pencils - p0);
    cplx* tile = base + p0 * pencil_stride;
    if (pow2_) {
      batch_pruned_pow2_tile(tile, elem_stride, pencil_stride, n_, 0, tile,
                             elem_stride, pencil_stride, tb, inv, ws);
    } else {
      batch_pruned_bluestein_tile(tile, elem_stride, pencil_stride, n_, 0,
                                  tile, elem_stride, pencil_stride, tb, inv,
                                  ws);
    }
  }
}

void Fft1D::forward_batch(cplx* base, std::size_t elem_stride,
                          std::size_t pencil_stride, std::size_t pencils,
                          FftWorkspace& ws) const {
  execute_batch(base, elem_stride, pencil_stride, pencils, /*inv=*/false, ws);
}

void Fft1D::inverse_batch(cplx* base, std::size_t elem_stride,
                          std::size_t pencil_stride, std::size_t pencils,
                          FftWorkspace& ws) const {
  execute_batch(base, elem_stride, pencil_stride, pencils, /*inv=*/true, ws);
}

void Fft1D::forward_batch_pruned(const cplx* in, std::size_t in_elem_stride,
                                 std::size_t in_pencil_stride, std::size_t k,
                                 std::size_t offset, cplx* out,
                                 std::size_t out_pencil_stride,
                                 std::size_t pencils, FftWorkspace& ws) const {
  LC_CHECK_ARG(offset + k <= n_, "nonzero block exceeds length");
  if (n_ == 1) {
    for (std::size_t p = 0; p < pencils; ++p) {
      out[p * out_pencil_stride] =
          k == 1 ? in[p * in_pencil_stride] : cplx{0.0, 0.0};
    }
    return;
  }
  for (std::size_t p0 = 0; p0 < pencils; p0 += kB) {
    const std::size_t tb = std::min(kB, pencils - p0);
    const cplx* tin = in + p0 * in_pencil_stride;
    cplx* tout = out + p0 * out_pencil_stride;
    if (pow2_) {
      batch_pruned_pow2_tile(tin, in_elem_stride, in_pencil_stride, k, offset,
                             tout, 1, out_pencil_stride, tb, /*inv=*/false,
                             ws);
    } else {
      batch_pruned_bluestein_tile(tin, in_elem_stride, in_pencil_stride, k,
                                  offset, tout, 1, out_pencil_stride, tb,
                                  /*inv=*/false, ws);
    }
  }
}

}  // namespace lc::fft
