#include "fft/real_fft.hpp"

#include <numbers>

#include "common/check.hpp"

namespace lc::fft {

RealFft1D::RealFft1D(std::size_t n)
    : n_(n), packed_(n % 2 == 0 && n >= 4), half_(packed_ ? n / 2 : n) {
  LC_CHECK_ARG(n >= 2, "real FFT length must be >= 2");
  unpack_.resize(n / 2 + 1);
  const double w0 = -2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t k = 0; k < unpack_.size(); ++k) {
    unpack_[k] = std::polar(1.0, w0 * static_cast<double>(k));
  }
}

void RealFft1D::forward(std::span<const double> in, std::span<cplx> out,
                        FftWorkspace& ws) const {
  LC_CHECK_ARG(in.size() == n_, "r2c input length != plan length");
  LC_CHECK_ARG(out.size() >= spectrum_size(), "r2c output too small");
  if (!packed_) {
    auto buf = ws.buffer_a(n_);
    for (std::size_t j = 0; j < n_; ++j) buf[j] = cplx{in[j], 0.0};
    half_.forward(buf, ws);
    for (std::size_t k = 0; k < spectrum_size(); ++k) out[k] = buf[k];
    return;
  }
  const std::size_t h = n_ / 2;
  auto z = ws.buffer_b(h);
  for (std::size_t j = 0; j < h; ++j) z[j] = cplx{in[2 * j], in[2 * j + 1]};
  half_.forward(z, ws);
  // Unpack: X_k = (Z_k + conj(Z_{h-k}))/2 - (i/2) W^k (Z_k - conj(Z_{h-k})).
  const cplx half_i{0.0, -0.5};
  for (std::size_t k = 0; k <= h; ++k) {
    const cplx zk = (k == h) ? z[0] : z[k];
    const cplx zc = std::conj(z[(h - k) % h]);
    out[k] = 0.5 * (zk + zc) + half_i * unpack_[k] * (zk - zc);
  }
}

void RealFft1D::inverse(std::span<const cplx> in, std::span<double> out,
                        FftWorkspace& ws) const {
  LC_CHECK_ARG(in.size() >= spectrum_size(), "c2r input too small");
  LC_CHECK_ARG(out.size() == n_, "c2r output length != plan length");
  if (!packed_) {
    auto buf = ws.buffer_a(n_);
    buf[0] = in[0];
    for (std::size_t k = 1; k < spectrum_size(); ++k) {
      buf[k] = in[k];
      buf[n_ - k] = std::conj(in[k]);
    }
    half_.inverse(buf, ws);
    for (std::size_t j = 0; j < n_; ++j) out[j] = buf[j].real();
    return;
  }
  const std::size_t h = n_ / 2;
  auto z = ws.buffer_b(h);
  // Repack: Z_k = E_k + i W^{-k} O'_k where E_k = (X_k + conj(X_{h-k}))/2 and
  // O'_k = (X_k - conj(X_{h-k}))/2; W^{-k} = conj(unpack_[k]).
  for (std::size_t k = 0; k < h; ++k) {
    const cplx xk = in[k];
    const cplx xc = std::conj(in[h - k]);
    const cplx e = 0.5 * (xk + xc);
    const cplx o = 0.5 * (xk - xc);
    z[k] = e + cplx{0.0, 1.0} * std::conj(unpack_[k]) * o;
  }
  half_.inverse(z, ws);
  for (std::size_t j = 0; j < h; ++j) {
    out[2 * j] = z[j].real();
    out[2 * j + 1] = z[j].imag();
  }
}

// ---------------------------------------------------------------------------
// Batch-major execution
//
// Each tile packs up to Fft1D::kBatchTile pencils into contiguous
// half-length (packed) or full-length (fallback) complex pencils in
// buffer_a, runs the complex batch engine (SIMD lanes across pencils), and
// unpacks per pencil. buffer_a is safe here: Fft1D's batch path touches
// only the SoA tile planes and the Bluestein buffer.
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kTile = Fft1D::kBatchTile;
}  // namespace

void RealFft1D::forward_batch_pruned(const double* in,
                                     std::size_t in_elem_stride,
                                     std::size_t in_pencil_stride,
                                     std::size_t k, std::size_t offset,
                                     cplx* out, std::size_t out_elem_stride,
                                     std::size_t out_pencil_stride,
                                     std::size_t pencils,
                                     FftWorkspace& ws) const {
  LC_CHECK_ARG(offset + k <= n_, "nonzero block exceeds length");
  const std::size_t h = packed_ ? n_ / 2 : n_;
  const std::size_t sbins = spectrum_size();
  auto z = ws.buffer_a(kTile * h);
  for (std::size_t p0 = 0; p0 < pencils; p0 += kTile) {
    const std::size_t tb = std::min(kTile, pencils - p0);
    // Pack the k-sample window into zeroed packed/complex pencils (a full
    // window overwrites every slot, so skip the fill); component writes go
    // through the double view of cplx.
    if (k < n_) {
      std::fill(z.begin(), z.begin() + static_cast<std::ptrdiff_t>(tb * h),
                cplx{0.0, 0.0});
    }
    auto* zd = reinterpret_cast<double*>(z.data());
    for (std::size_t p = 0; p < tb; ++p) {
      const double* src = in + (p0 + p) * in_pencil_stride;
      if (packed_) {
        double* dst = zd + 2 * p * h;
        for (std::size_t t = 0; t < k; ++t) {
          dst[offset + t] = src[t * in_elem_stride];
        }
      } else {
        cplx* dst = z.data() + p * h;
        for (std::size_t t = 0; t < k; ++t) {
          dst[offset + t] = cplx{src[t * in_elem_stride], 0.0};
        }
      }
    }
    half_.forward_batch(z.data(), 1, h, tb, ws);
    // Unpack each pencil's half spectrum into the caller's layout.
    const cplx half_i{0.0, -0.5};
    for (std::size_t p = 0; p < tb; ++p) {
      cplx* dst = out + (p0 + p) * out_pencil_stride;
      const cplx* zp = z.data() + p * h;
      if (packed_) {
        for (std::size_t b = 0; b <= h; ++b) {
          const cplx zk = (b == h) ? zp[0] : zp[b];
          const cplx zc = std::conj(zp[(h - b) % h]);
          dst[b * out_elem_stride] =
              0.5 * (zk + zc) + half_i * unpack_[b] * (zk - zc);
        }
      } else {
        for (std::size_t b = 0; b < sbins; ++b) {
          dst[b * out_elem_stride] = zp[b];
        }
      }
    }
  }
}

void RealFft1D::forward_batch(const double* in, std::size_t in_elem_stride,
                              std::size_t in_pencil_stride, cplx* out,
                              std::size_t out_elem_stride,
                              std::size_t out_pencil_stride,
                              std::size_t pencils, FftWorkspace& ws) const {
  forward_batch_pruned(in, in_elem_stride, in_pencil_stride, n_, 0, out,
                       out_elem_stride, out_pencil_stride, pencils, ws);
}

void RealFft1D::inverse_batch(const cplx* in, std::size_t in_elem_stride,
                              std::size_t in_pencil_stride, double* out,
                              std::size_t out_elem_stride,
                              std::size_t out_pencil_stride,
                              std::size_t pencils, FftWorkspace& ws) const {
  const std::size_t h = packed_ ? n_ / 2 : n_;
  const std::size_t sbins = spectrum_size();
  auto z = ws.buffer_a(kTile * h);
  for (std::size_t p0 = 0; p0 < pencils; p0 += kTile) {
    const std::size_t tb = std::min(kTile, pencils - p0);
    for (std::size_t p = 0; p < tb; ++p) {
      const cplx* src = in + (p0 + p) * in_pencil_stride;
      cplx* zp = z.data() + p * h;
      if (packed_) {
        // Repack (same math as the scalar inverse).
        for (std::size_t b = 0; b < h; ++b) {
          const cplx xk = src[b * in_elem_stride];
          const cplx xc = std::conj(src[(h - b) * in_elem_stride]);
          const cplx e = 0.5 * (xk + xc);
          const cplx o = 0.5 * (xk - xc);
          zp[b] = e + cplx{0.0, 1.0} * std::conj(unpack_[b]) * o;
        }
      } else {
        zp[0] = src[0];
        for (std::size_t b = 1; b < sbins; ++b) {
          zp[b] = src[b * in_elem_stride];
          zp[n_ - b] = std::conj(src[b * in_elem_stride]);
        }
      }
    }
    half_.inverse_batch(z.data(), 1, h, tb, ws);
    for (std::size_t p = 0; p < tb; ++p) {
      double* dst = out + (p0 + p) * out_pencil_stride;
      const cplx* zp = z.data() + p * h;
      if (packed_) {
        for (std::size_t j = 0; j < h; ++j) {
          dst[2 * j * out_elem_stride] = zp[j].real();
          dst[(2 * j + 1) * out_elem_stride] = zp[j].imag();
        }
      } else {
        for (std::size_t j = 0; j < n_; ++j) {
          dst[j * out_elem_stride] = zp[j].real();
        }
      }
    }
  }
}

}  // namespace lc::fft
