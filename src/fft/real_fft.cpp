#include "fft/real_fft.hpp"

#include <numbers>

#include "common/check.hpp"

namespace lc::fft {

RealFft1D::RealFft1D(std::size_t n)
    : n_(n), packed_(n % 2 == 0 && n >= 4), half_(packed_ ? n / 2 : n) {
  LC_CHECK_ARG(n >= 2, "real FFT length must be >= 2");
  unpack_.resize(n / 2 + 1);
  const double w0 = -2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t k = 0; k < unpack_.size(); ++k) {
    unpack_[k] = std::polar(1.0, w0 * static_cast<double>(k));
  }
}

void RealFft1D::forward(std::span<const double> in, std::span<cplx> out,
                        FftWorkspace& ws) const {
  LC_CHECK_ARG(in.size() == n_, "r2c input length != plan length");
  LC_CHECK_ARG(out.size() >= spectrum_size(), "r2c output too small");
  if (!packed_) {
    auto buf = ws.buffer_a(n_);
    for (std::size_t j = 0; j < n_; ++j) buf[j] = cplx{in[j], 0.0};
    half_.forward(buf, ws);
    for (std::size_t k = 0; k < spectrum_size(); ++k) out[k] = buf[k];
    return;
  }
  const std::size_t h = n_ / 2;
  auto z = ws.buffer_b(h);
  for (std::size_t j = 0; j < h; ++j) z[j] = cplx{in[2 * j], in[2 * j + 1]};
  half_.forward(z, ws);
  // Unpack: X_k = (Z_k + conj(Z_{h-k}))/2 - (i/2) W^k (Z_k - conj(Z_{h-k})).
  const cplx half_i{0.0, -0.5};
  for (std::size_t k = 0; k <= h; ++k) {
    const cplx zk = (k == h) ? z[0] : z[k];
    const cplx zc = std::conj(z[(h - k) % h]);
    out[k] = 0.5 * (zk + zc) + half_i * unpack_[k] * (zk - zc);
  }
}

void RealFft1D::inverse(std::span<const cplx> in, std::span<double> out,
                        FftWorkspace& ws) const {
  LC_CHECK_ARG(in.size() >= spectrum_size(), "c2r input too small");
  LC_CHECK_ARG(out.size() == n_, "c2r output length != plan length");
  if (!packed_) {
    auto buf = ws.buffer_a(n_);
    buf[0] = in[0];
    for (std::size_t k = 1; k < spectrum_size(); ++k) {
      buf[k] = in[k];
      buf[n_ - k] = std::conj(in[k]);
    }
    half_.inverse(buf, ws);
    for (std::size_t j = 0; j < n_; ++j) out[j] = buf[j].real();
    return;
  }
  const std::size_t h = n_ / 2;
  auto z = ws.buffer_b(h);
  // Repack: Z_k = E_k + i W^{-k} O'_k where E_k = (X_k + conj(X_{h-k}))/2 and
  // O'_k = (X_k - conj(X_{h-k}))/2; W^{-k} = conj(unpack_[k]).
  for (std::size_t k = 0; k < h; ++k) {
    const cplx xk = in[k];
    const cplx xc = std::conj(in[h - k]);
    const cplx e = 0.5 * (xk + xc);
    const cplx o = 0.5 * (xk - xc);
    z[k] = e + cplx{0.0, 1.0} * std::conj(unpack_[k]) * o;
  }
  half_.inverse(z, ws);
  for (std::size_t j = 0; j < h; ++j) {
    out[2 * j] = z[j].real();
    out[2 * j + 1] = z[j].imag();
  }
}

}  // namespace lc::fft
