// 1D complex-to-complex FFT plans.
//
// Power-of-two lengths use an iterative in-place Cooley-Tukey with a
// precomputed twiddle table: fused radix-4 passes (radix-2 head stage when
// log2 n is odd), fully unrolled codelets for n <= 32, and a precomputed
// swap-pair list instead of a per-call bit-reversal scan. Arbitrary lengths
// use Bluestein's chirp-z algorithm on top of the radix path.
//
// Besides the classic one-pencil-at-a-time entry points, the plan exposes a
// batch-major execution path (`forward_batch` / `inverse_batch`): up to
// kBatchTile strided pencils are transposed into an SoA tile (separate
// real/imaginary planes, kBatchTile doubles per element row), the butterfly
// passes run with SIMD lanes across *pencils* (see common/simd.hpp), and
// results are scattered back. This maps onto the paper's batching parameter
// B and needs no shuffles inside the butterflies. The batched Bluestein
// path reuses the same tile kernel at the chirp length m.
//
// Plans are immutable after construction and safe to share across threads;
// all mutable scratch lives in a caller-provided FftWorkspace (one per
// thread), so parallel pencil loops never contend or allocate in steady
// state.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/aligned.hpp"
#include "tensor/grid.hpp"

namespace lc::fft {

using cplx = std::complex<double>;

/// Per-thread scratch buffers for FFT execution. Grows on demand
/// (geometric, uninitialized — see AlignedScratch), never shrinks; reuse
/// one instance across many transforms.
class FftWorkspace {
 public:
  /// Scratch span of at least n elements (contents unspecified). Buffers
  /// a/b/c are for callers; `bluestein_buffer` is reserved for Fft1D's
  /// internal chirp-z path so caller scratch never aliases it.
  [[nodiscard]] std::span<cplx> buffer_a(std::size_t n) { return a_.ensure(n); }
  [[nodiscard]] std::span<cplx> buffer_b(std::size_t n) { return b_.ensure(n); }
  [[nodiscard]] std::span<cplx> buffer_c(std::size_t n) { return c_.ensure(n); }
  [[nodiscard]] std::span<cplx> bluestein_buffer(std::size_t n) {
    return blue_.ensure(n);
  }

  /// SoA tile planes for the batch-major path (reserved for Fft1D):
  /// n doubles each of real / imaginary lanes.
  [[nodiscard]] std::span<double> tile_re(std::size_t n) {
    return tile_re_.ensure(n);
  }
  [[nodiscard]] std::span<double> tile_im(std::size_t n) {
    return tile_im_.ensure(n);
  }

 private:
  AlignedScratch<cplx> a_;
  AlignedScratch<cplx> b_;
  AlignedScratch<cplx> c_;
  AlignedScratch<cplx> blue_;
  AlignedScratch<double> tile_re_;
  AlignedScratch<double> tile_im_;
};

/// Immutable 1D FFT plan of fixed length n >= 1 (any n).
class Fft1D {
 public:
  /// Pencils per SoA tile of the batch path (lanes of the batched
  /// butterflies). A tile holds 2 * n * kBatchTile doubles, sized so that
  /// tiles for the pencil lengths the paper uses (n <= 512) stay L1/L2
  /// resident; see DESIGN.md §11.
  static constexpr std::size_t kBatchTile = 8;

  explicit Fft1D(std::size_t n);
  ~Fft1D();
  Fft1D(Fft1D&&) noexcept;
  Fft1D& operator=(Fft1D&&) noexcept;
  Fft1D(const Fft1D&) = delete;
  Fft1D& operator=(const Fft1D&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// In-place forward transform X_k = sum_j x_j e^{-2πi jk/n}.
  void forward(std::span<cplx> inout, FftWorkspace& ws) const;

  /// In-place inverse transform with 1/n normalisation.
  void inverse(std::span<cplx> inout, FftWorkspace& ws) const;

  /// Convenience overloads with a local workspace (allocates; avoid in hot
  /// loops — in-tree hot paths must pass a shared FftWorkspace).
  void forward(std::span<cplx> inout) const;
  void inverse(std::span<cplx> inout) const;

  /// Batched strided execution, one pencil at a time (scalar butterflies):
  /// pencil p element i lives at base[p * pencil_stride + i * elem_stride].
  /// Each pencil is gathered into contiguous scratch, transformed, and
  /// scattered back. Contiguous pencils (elem_stride == 1) are transformed
  /// in place without copying. Prefer forward_batch/inverse_batch in hot
  /// loops — kept as the scalar reference path (and for benchmarks).
  void forward_strided(cplx* base, std::size_t elem_stride,
                       std::size_t pencil_stride, std::size_t pencils,
                       FftWorkspace& ws) const;
  void inverse_strided(cplx* base, std::size_t elem_stride,
                       std::size_t pencil_stride, std::size_t pencils,
                       FftWorkspace& ws) const;

  /// Batch-major execution: same addressing as forward_strided, but pencils
  /// are processed kBatchTile at a time through an SoA tile with SIMD lanes
  /// running across pencils. Handles any n (pow2 radix passes, else batched
  /// Bluestein), any strides, and partial final tiles.
  void forward_batch(cplx* base, std::size_t elem_stride,
                     std::size_t pencil_stride, std::size_t pencils,
                     FftWorkspace& ws) const;
  void inverse_batch(cplx* base, std::size_t elem_stride,
                     std::size_t pencil_stride, std::size_t pencils,
                     FftWorkspace& ws) const;

  /// Batched input-pruned forward (out-of-place): pencil p has k nonzero
  /// inputs at in[p * in_pencil_stride + t * in_elem_stride], t in [0, k),
  /// occupying logical indices [offset, offset + k) of an n-point signal
  /// whose remaining entries are zero. Writes the full n-length spectrum of
  /// pencil p to out[p * out_pencil_stride + 0..n). The zero rows are never
  /// gathered, so the cost is the transform plus a k-row gather.
  void forward_batch_pruned(const cplx* in, std::size_t in_elem_stride,
                            std::size_t in_pencil_stride, std::size_t k,
                            std::size_t offset, cplx* out,
                            std::size_t out_pencil_stride, std::size_t pencils,
                            FftWorkspace& ws) const;

 private:
  struct Bluestein;

  void execute(std::span<cplx> inout, bool inv, FftWorkspace& ws) const;
  void radix_dit(std::span<cplx> data, bool inv) const;

  // Batch-major internals. `tile_passes` runs the butterfly passes over one
  // SoA tile whose rows are already in bit-reversed order; gather/scatter
  // helpers fold the permutation into the transpose.
  void execute_batch(cplx* base, std::size_t elem_stride,
                     std::size_t pencil_stride, std::size_t pencils, bool inv,
                     FftWorkspace& ws) const;
  void tile_passes(double* re, double* im, bool inv) const;
  void batch_pruned_pow2_tile(const cplx* in, std::size_t ies, std::size_t ips,
                              std::size_t k, std::size_t offset, cplx* out,
                              std::size_t oes, std::size_t ops, std::size_t tb,
                              bool inv, FftWorkspace& ws) const;
  void batch_pruned_bluestein_tile(const cplx* in, std::size_t ies,
                                   std::size_t ips, std::size_t k,
                                   std::size_t offset, cplx* out,
                                   std::size_t oes, std::size_t ops,
                                   std::size_t tb, bool inv,
                                   FftWorkspace& ws) const;

  std::size_t n_ = 0;
  bool pow2_ = false;
  std::vector<std::uint32_t> bitrev_;  // bit-reversal permutation (pow2 only)
  std::vector<std::pair<std::uint32_t, std::uint32_t>>
      swap_pairs_;                    // i < bitrev(i) pairs, scan-free reorder
  AlignedVector<cplx> twiddle_;       // e^{-2πi j/n}, j in [0, n/2) (pow2 only)
  std::unique_ptr<Bluestein> blue_;   // non-pow2 path
};

/// True iff n is a power of two.
[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

}  // namespace lc::fft
