// 1D complex-to-complex FFT plans.
//
// Power-of-two lengths use an iterative in-place radix-2 Cooley-Tukey with a
// precomputed twiddle table and bit-reversal permutation. Arbitrary lengths
// use Bluestein's chirp-z algorithm on top of the radix-2 path.
//
// Plans are immutable after construction and safe to share across threads;
// all mutable scratch lives in a caller-provided FftWorkspace (one per
// thread), so parallel pencil loops never contend or allocate.
#pragma once

#include <complex>
#include <memory>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "tensor/grid.hpp"

namespace lc::fft {

using cplx = std::complex<double>;

/// Per-thread scratch buffers for FFT execution. Grows on demand, never
/// shrinks; reuse one instance across many transforms.
class FftWorkspace {
 public:
  /// Scratch span of at least n elements (contents unspecified). Buffers
  /// a/b/c are for callers; `bluestein_buffer` is reserved for Fft1D's
  /// internal chirp-z path so caller scratch never aliases it.
  [[nodiscard]] std::span<cplx> buffer_a(std::size_t n);
  [[nodiscard]] std::span<cplx> buffer_b(std::size_t n);
  [[nodiscard]] std::span<cplx> buffer_c(std::size_t n);
  [[nodiscard]] std::span<cplx> bluestein_buffer(std::size_t n);

 private:
  AlignedVector<cplx> a_;
  AlignedVector<cplx> b_;
  AlignedVector<cplx> c_;
  AlignedVector<cplx> blue_;
};

/// Immutable 1D FFT plan of fixed length n >= 1 (any n).
class Fft1D {
 public:
  explicit Fft1D(std::size_t n);
  ~Fft1D();
  Fft1D(Fft1D&&) noexcept;
  Fft1D& operator=(Fft1D&&) noexcept;
  Fft1D(const Fft1D&) = delete;
  Fft1D& operator=(const Fft1D&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// In-place forward transform X_k = sum_j x_j e^{-2πi jk/n}.
  void forward(std::span<cplx> inout, FftWorkspace& ws) const;

  /// In-place inverse transform with 1/n normalisation.
  void inverse(std::span<cplx> inout, FftWorkspace& ws) const;

  /// Convenience overloads with a local workspace (allocates; avoid in hot
  /// loops).
  void forward(std::span<cplx> inout) const;
  void inverse(std::span<cplx> inout) const;

  /// Batched strided execution: pencil p element i lives at
  /// base[p * pencil_stride + i * elem_stride]. Each pencil is gathered into
  /// contiguous scratch, transformed, and scattered back. Contiguous pencils
  /// (elem_stride == 1) are transformed in place without copying.
  void forward_strided(cplx* base, std::size_t elem_stride,
                       std::size_t pencil_stride, std::size_t pencils,
                       FftWorkspace& ws) const;
  void inverse_strided(cplx* base, std::size_t elem_stride,
                       std::size_t pencil_stride, std::size_t pencils,
                       FftWorkspace& ws) const;

 private:
  struct Bluestein;

  void execute(std::span<cplx> inout, bool inv, FftWorkspace& ws) const;
  void radix2(std::span<cplx> data, bool inv) const;

  std::size_t n_ = 0;
  bool pow2_ = false;
  std::vector<std::size_t> bitrev_;   // bit-reversal permutation (pow2 only)
  AlignedVector<cplx> twiddle_;       // e^{-2πi j/n}, j in [0, n/2) (pow2 only)
  std::unique_ptr<Bluestein> blue_;   // non-pow2 path
};

/// True iff n is a power of two.
[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

}  // namespace lc::fft
