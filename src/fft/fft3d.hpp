// 3D complex FFT as three sweeps of 1D transforms (x rows, y pencils,
// z pencils), parallelised across a thread pool with per-thread workspaces.
//
// This is the building block both for the dense "traditional" baseline and
// for the slab stages of the low-communication pipeline.
#pragma once

#include "common/thread_pool.hpp"
#include "fft/fft1d.hpp"
#include "tensor/field.hpp"

namespace lc::fft {

/// Immutable 3D FFT plan for a fixed grid. Thread-safe execution.
class Fft3D {
 public:
  /// Build a plan for grid `g`; `pool` is used for intra-transform
  /// parallelism (nullptr → single-threaded).
  explicit Fft3D(const Grid3& g, ThreadPool* pool = &ThreadPool::global());

  [[nodiscard]] const Grid3& grid() const noexcept { return grid_; }

  /// In-place forward 3D DFT.
  void forward(ComplexField& f) const;
  /// In-place inverse 3D DFT with 1/(nx·ny·nz) normalisation.
  void inverse(ComplexField& f) const;

  /// Transform along a single axis only (0 = x, 1 = y, 2 = z); used by the
  /// staged slab pipeline which interleaves compression between axes.
  void transform_axis(ComplexField& f, int axis, bool inverse) const;

 private:
  void sweep(ComplexField& f, int axis, bool inv) const;

  Grid3 grid_;
  ThreadPool* pool_;
  Fft1D fx_;
  Fft1D fy_;
  Fft1D fz_;
};

/// Forward-transform a real field into a full complex spectrum (convenience
/// for kernels and baselines).
[[nodiscard]] ComplexField forward_spectrum(const RealField& f,
                                            const Fft3D& plan);

/// Inverse-transform a spectrum and take the real part.
[[nodiscard]] RealField inverse_real(ComplexField spectrum, const Fft3D& plan);

}  // namespace lc::fft
