// 3D complex FFT as three sweeps of 1D transforms (x rows, y pencils,
// z pencils), parallelised across a thread pool with per-thread workspaces.
//
// This is the building block both for the dense "traditional" baseline and
// for the slab stages of the low-communication pipeline.
#pragma once

#include <memory>

#include "common/thread_pool.hpp"
#include "fft/fft1d.hpp"
#include "fft/lazy_plan.hpp"
#include "tensor/field.hpp"

namespace lc::fft {

/// Immutable 3D FFT plan for a fixed grid. Thread-safe execution.
/// Construction is O(1): per-axis twiddle tables are built lazily (and
/// thread-safely) on the first sweep of each axis, and axes of equal length
/// share one table, so a cubic grid builds a single 1D plan on first use.
class Fft3D {
 public:
  /// Build a plan for grid `g`; `pool` is used for intra-transform
  /// parallelism (nullptr → single-threaded).
  explicit Fft3D(const Grid3& g, ThreadPool* pool = &ThreadPool::global());

  [[nodiscard]] const Grid3& grid() const noexcept { return grid_; }

  /// Has the 1D plan for `axis` (0 = x, 1 = y, 2 = z) been built yet?
  [[nodiscard]] bool axis_plan_built(int axis) const;

  /// In-place forward 3D DFT.
  void forward(ComplexField& f) const;
  /// In-place inverse 3D DFT with 1/(nx·ny·nz) normalisation.
  void inverse(ComplexField& f) const;

  /// Transform along a single axis only (0 = x, 1 = y, 2 = z); used by the
  /// staged slab pipeline which interleaves compression between axes.
  void transform_axis(ComplexField& f, int axis, bool inverse) const;

 private:
  void sweep(ComplexField& f, int axis, bool inv) const;

  Grid3 grid_;
  ThreadPool* pool_;
  // Shared when axis lengths coincide (always, for cubic grids).
  std::shared_ptr<LazyPlan<Fft1D>> fx_;
  std::shared_ptr<LazyPlan<Fft1D>> fy_;
  std::shared_ptr<LazyPlan<Fft1D>> fz_;
};

/// Forward-transform a real field into a full complex spectrum (convenience
/// for kernels and baselines).
[[nodiscard]] ComplexField forward_spectrum(const RealField& f,
                                            const Fft3D& plan);

/// Inverse-transform a spectrum and take the real part.
[[nodiscard]] RealField inverse_real(ComplexField spectrum, const Fft3D& plan);

}  // namespace lc::fft
