#include "fft/dft_direct.hpp"

#include <numbers>

#include "common/check.hpp"

namespace lc::fft {

namespace {

void dft_direct(std::span<const cplx> in, std::span<cplx> out, double sign,
                bool normalize) {
  LC_CHECK_ARG(in.size() == out.size(), "DFT size mismatch");
  LC_CHECK_ARG(in.data() != out.data(), "direct DFT cannot run in place");
  const std::size_t n = in.size();
  const double w0 = sign * 2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double phase = w0 * static_cast<double>((j * k) % n);
      acc += in[j] * std::polar(1.0, phase);
    }
    out[k] = normalize ? acc / static_cast<double>(n) : acc;
  }
}

}  // namespace

void dft_direct_forward(std::span<const cplx> in, std::span<cplx> out) {
  dft_direct(in, out, -1.0, false);
}

void dft_direct_inverse(std::span<const cplx> in, std::span<cplx> out) {
  dft_direct(in, out, +1.0, true);
}

namespace {

ComplexField dft3_direct(const ComplexField& in, double sign, bool normalize) {
  const Grid3& g = in.grid();
  ComplexField out(g);
  const double wx = sign * 2.0 * std::numbers::pi / static_cast<double>(g.nx);
  const double wy = sign * 2.0 * std::numbers::pi / static_cast<double>(g.ny);
  const double wz = sign * 2.0 * std::numbers::pi / static_cast<double>(g.nz);
  for (i64 kz = 0; kz < g.nz; ++kz) {
    for (i64 ky = 0; ky < g.ny; ++ky) {
      for (i64 kx = 0; kx < g.nx; ++kx) {
        cplx acc{0.0, 0.0};
        for (i64 z = 0; z < g.nz; ++z) {
          for (i64 y = 0; y < g.ny; ++y) {
            for (i64 x = 0; x < g.nx; ++x) {
              const double phase = wx * static_cast<double>((x * kx) % g.nx) +
                                   wy * static_cast<double>((y * ky) % g.ny) +
                                   wz * static_cast<double>((z * kz) % g.nz);
              acc += in(x, y, z) * std::polar(1.0, phase);
            }
          }
        }
        out(kx, ky, kz) =
            normalize ? acc / static_cast<double>(g.size()) : acc;
      }
    }
  }
  return out;
}

}  // namespace

ComplexField dft3_direct_forward(const ComplexField& in) {
  return dft3_direct(in, -1.0, false);
}

ComplexField dft3_direct_inverse(const ComplexField& in) {
  return dft3_direct(in, +1.0, true);
}

RealField circular_convolve_direct(const RealField& a, const RealField& b) {
  LC_CHECK_ARG(a.grid() == b.grid(), "convolution grids differ");
  const Grid3& g = a.grid();
  RealField out(g);
  for (i64 pz = 0; pz < g.nz; ++pz) {
    for (i64 py = 0; py < g.ny; ++py) {
      for (i64 px = 0; px < g.nx; ++px) {
        double acc = 0.0;
        for (i64 qz = 0; qz < g.nz; ++qz) {
          const i64 rz = ((pz - qz) % g.nz + g.nz) % g.nz;
          for (i64 qy = 0; qy < g.ny; ++qy) {
            const i64 ry = ((py - qy) % g.ny + g.ny) % g.ny;
            for (i64 qx = 0; qx < g.nx; ++qx) {
              const i64 rx = ((px - qx) % g.nx + g.nx) % g.nx;
              acc += a(qx, qy, qz) * b(rx, ry, rz);
            }
          }
        }
        out(px, py, pz) = acc;
      }
    }
  }
  return out;
}

}  // namespace lc::fft
