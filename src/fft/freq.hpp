// Frequency-grid conventions shared by kernels and transforms.
#pragma once

#include <cstddef>

#include "tensor/grid.hpp"

namespace lc::fft {

/// Signed integer frequency of DFT bin j on an n-point transform:
/// j in [0, n/2] maps to j, bins above n/2 map to the negative alias j - n.
[[nodiscard]] constexpr i64 signed_frequency(i64 j, i64 n) noexcept {
  return (j <= n / 2) ? j : j - n;
}

/// Angular frequency (radians per sample) of bin j: 2π·signed_frequency/n.
[[nodiscard]] double angular_frequency(i64 j, i64 n) noexcept;

/// 3D frequency vector of bin (jx, jy, jz) on grid g, in cycles-per-domain
/// units (each component is the signed integer frequency).
struct Freq3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  [[nodiscard]] double norm_sq() const noexcept { return x * x + y * y + z * z; }
};

[[nodiscard]] Freq3 frequency_vector(const Index3& bin, const Grid3& g) noexcept;

}  // namespace lc::fft
