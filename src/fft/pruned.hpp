// Pruned 1D transforms.
//
// Input pruning: a length-n transform whose input has only k contiguous
// nonzero samples never materialises a padded array anywhere but in a
// per-thread scratch pencil — this is the paper's "zero structure is
// implicit in the 1D calls; padding is applied to the 1D data, and not to
// the full 3D array".
//
// Output pruning: the compressed inverse stage only needs a subset of
// output samples (the octree's retained planes). Two strategies are
// provided — full transform + subsample, or direct evaluation of just the
// wanted bins — with an automatic cost-based choice.
#pragma once

#include <span>

#include "fft/fft1d.hpp"

namespace lc::fft {

/// Forward transform of a length-n signal that is zero outside
/// [offset, offset + nonzero.size()). Writes the full n-bin spectrum to
/// `out`. Equivalent to zero-padding and a full transform, without ever
/// building the padded signal outside scratch.
void input_pruned_forward(const Fft1D& plan, std::span<const cplx> nonzero,
                          std::size_t offset, std::span<cplx> out,
                          FftWorkspace& ws);

/// How to evaluate an output-pruned inverse transform.
enum class PruneStrategy {
  kAuto,           ///< pick per call from the wanted-count / n ratio
  kFullTransform,  ///< inverse FFT then subsample (O(n log n))
  kDirect,         ///< evaluate each wanted bin directly (O(n · wanted))
};

/// Inverse transform evaluated only at `wanted` output indices (each < n),
/// with 1/n normalisation. Results are written to out[i] for wanted[i].
void output_pruned_inverse(const Fft1D& plan, std::span<const cplx> spectrum,
                           std::span<const std::size_t> wanted,
                           std::span<cplx> out, FftWorkspace& ws,
                           PruneStrategy strategy = PruneStrategy::kAuto);

/// The crossover: direct evaluation wins when wanted < ~2·log2(n).
[[nodiscard]] bool direct_prune_profitable(std::size_t n, std::size_t wanted) noexcept;

}  // namespace lc::fft
