// Lazily constructed 1D plan holders.
//
// 3D plans used to build all per-axis twiddle tables in their constructors,
// even when a caller only ever runs one axis (transform_axis) or one
// direction. A serving runtime constructs many plans speculatively (cache
// cold paths, per-request engines), so construction must be O(1): the table
// build is deferred to first use of the axis, double-checked-locked via
// std::call_once so concurrent first users race safely and build exactly
// once. Axes of equal length share one holder (cubic grids build one table
// instead of three).
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>

namespace lc::fft {

/// Thread-safe lazily-built wrapper around an immutable 1D plan type
/// (Fft1D, RealFft1D, ...). `get()` builds on first call; `built()` is a
/// race-free probe (tests and cost accounting).
template <typename Plan>
class LazyPlan {
 public:
  explicit LazyPlan(std::size_t n) : n_(n) {}

  [[nodiscard]] std::size_t length() const noexcept { return n_; }

  [[nodiscard]] const Plan& get() const {
    std::call_once(once_, [this] {
      plan_.emplace(n_);
      built_.store(true, std::memory_order_release);
    });
    return *plan_;
  }

  [[nodiscard]] bool built() const noexcept {
    return built_.load(std::memory_order_acquire);
  }

 private:
  std::size_t n_;
  mutable std::once_flag once_;
  mutable std::optional<Plan> plan_;
  mutable std::atomic<bool> built_{false};
};

}  // namespace lc::fft
