// 3D real-to-complex / complex-to-real transforms.
//
// Real input makes the spectrum Hermitian, so only nx/2+1 bins along x are
// stored ("half spectrum", FFTW layout). The x axis uses the packed real
// 1D transform; y and z are complex sweeps over the half grid. Roughly
// halves both the flops and the working set of spectrum-domain pipelines
// relative to the complex path — the RDFT the paper's Fig 5 pseudocode
// calls for.
#pragma once

#include <memory>

#include "common/thread_pool.hpp"
#include "fft/fft1d.hpp"
#include "fft/lazy_plan.hpp"
#include "fft/real_fft.hpp"
#include "tensor/field.hpp"

namespace lc::fft {

/// Immutable 3D r2c/c2r plan for a fixed grid. Thread-safe execution.
/// Construction is O(1): the packed-real x plan and the complex y/z plans
/// are built lazily on first use (y and z share one table when ny == nz).
class RealFft3D {
 public:
  explicit RealFft3D(const Grid3& g, ThreadPool* pool = &ThreadPool::global());

  [[nodiscard]] const Grid3& grid() const noexcept { return grid_; }
  /// Half-spectrum extents: (nx/2 + 1, ny, nz).
  [[nodiscard]] const Grid3& spectrum_grid() const noexcept { return sgrid_; }

  /// Forward transform into a newly allocated half spectrum.
  [[nodiscard]] ComplexField forward(const RealField& in) const;

  /// Inverse transform (1/(nx·ny·nz) normalisation) back to a real field.
  /// `spectrum` is taken by value: the y/z inverse sweeps run in place.
  [[nodiscard]] RealField inverse(ComplexField spectrum) const;

 private:
  void sweep_yz(ComplexField& s, bool inv) const;

  Grid3 grid_;
  Grid3 sgrid_;
  ThreadPool* pool_;
  std::shared_ptr<LazyPlan<RealFft1D>> fx_;
  std::shared_ptr<LazyPlan<Fft1D>> fy_;
  std::shared_ptr<LazyPlan<Fft1D>> fz_;
};

}  // namespace lc::fft
