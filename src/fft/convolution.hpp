// Dense FFT-based circular convolution on full 3D grids. Serves as the
// single-node reference implementation ("traditional FFT" in the paper) that
// the low-communication pipeline is validated and benchmarked against.
#pragma once

#include "fft/fft3d.hpp"
#include "tensor/field.hpp"

namespace lc::fft {

/// Pointwise multiply spectra: a *= b.
void pointwise_multiply(ComplexField& a, const ComplexField& b);

/// Dense circular convolution of two real fields via three full 3D FFTs.
[[nodiscard]] RealField fft_circular_convolve(const RealField& a,
                                              const RealField& b,
                                              const Fft3D& plan);

/// Dense circular convolution of a real field with a precomputed kernel
/// spectrum (forward FFT, pointwise multiply, inverse FFT).
[[nodiscard]] RealField convolve_with_spectrum(const RealField& input,
                                               const ComplexField& kernel_hat,
                                               const Fft3D& plan);

}  // namespace lc::fft
