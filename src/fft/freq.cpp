#include "fft/freq.hpp"

#include <numbers>

namespace lc::fft {

double angular_frequency(i64 j, i64 n) noexcept {
  return 2.0 * std::numbers::pi * static_cast<double>(signed_frequency(j, n)) /
         static_cast<double>(n);
}

Freq3 frequency_vector(const Index3& bin, const Grid3& g) noexcept {
  return Freq3{static_cast<double>(signed_frequency(bin.x, g.nx)),
               static_cast<double>(signed_frequency(bin.y, g.ny)),
               static_cast<double>(signed_frequency(bin.z, g.nz))};
}

}  // namespace lc::fft
