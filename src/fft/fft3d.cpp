#include "fft/fft3d.hpp"

#include "common/check.hpp"

namespace lc::fft {

Fft3D::Fft3D(const Grid3& g, ThreadPool* pool) : grid_(g), pool_(pool) {
  LC_CHECK_ARG(g.nx >= 1 && g.ny >= 1 && g.nz >= 1, "empty FFT grid");
  fx_ = std::make_shared<LazyPlan<Fft1D>>(static_cast<std::size_t>(g.nx));
  fy_ = g.ny == g.nx
            ? fx_
            : std::make_shared<LazyPlan<Fft1D>>(static_cast<std::size_t>(g.ny));
  fz_ = g.nz == g.nx ? fx_
        : g.nz == g.ny
            ? fy_
            : std::make_shared<LazyPlan<Fft1D>>(static_cast<std::size_t>(g.nz));
}

bool Fft3D::axis_plan_built(int axis) const {
  LC_CHECK_ARG(axis >= 0 && axis <= 2, "axis must be 0, 1 or 2");
  return (axis == 0 ? fx_ : axis == 1 ? fy_ : fz_)->built();
}

void Fft3D::sweep(ComplexField& f, int axis, bool inv) const {
  LC_CHECK_ARG(f.grid() == grid_, "field grid != plan grid");
  const auto nx = static_cast<std::size_t>(grid_.nx);
  const auto ny = static_cast<std::size_t>(grid_.ny);
  const auto nz = static_cast<std::size_t>(grid_.nz);
  cplx* base = f.data();

  // Each parallel block gets its own workspace; plans are shared read-only.
  auto run_blocks = [&](std::size_t count,
                        const std::function<void(std::size_t, std::size_t,
                                                 FftWorkspace&)>& body) {
    if (pool_ == nullptr || pool_->size() <= 1 || count <= 1) {
      FftWorkspace ws;
      body(0, count, ws);
      return;
    }
    pool_->parallel_for_blocks(0, count, [&](std::size_t lo, std::size_t hi) {
      FftWorkspace ws;
      body(lo, hi, ws);
    });
  };

  switch (axis) {
    case 0: {  // x rows: contiguous, one row per (y, z)
      const Fft1D& fx = fx_->get();
      const std::size_t rows = ny * nz;
      run_blocks(rows, [&](std::size_t lo, std::size_t hi, FftWorkspace& ws) {
        cplx* p = base + lo * nx;
        const std::size_t n = hi - lo;
        if (inv) {
          fx.inverse_batch(p, 1, nx, n, ws);
        } else {
          fx.forward_batch(p, 1, nx, n, ws);
        }
      });
      break;
    }
    case 1: {  // y pencils: elem stride nx; one slab per z
      const Fft1D& fy = fy_->get();
      run_blocks(nz, [&](std::size_t lo, std::size_t hi, FftWorkspace& ws) {
        for (std::size_t z = lo; z < hi; ++z) {
          cplx* p = base + z * nx * ny;
          if (inv) {
            fy.inverse_batch(p, nx, 1, nx, ws);
          } else {
            fy.forward_batch(p, nx, 1, nx, ws);
          }
        }
      });
      break;
    }
    case 2: {  // z pencils: elem stride nx*ny; one pencil per (x, y)
      const Fft1D& fz = fz_->get();
      const std::size_t plane = nx * ny;
      run_blocks(plane, [&](std::size_t lo, std::size_t hi, FftWorkspace& ws) {
        cplx* p = base + lo;
        if (inv) {
          fz.inverse_batch(p, plane, 1, hi - lo, ws);
        } else {
          fz.forward_batch(p, plane, 1, hi - lo, ws);
        }
      });
      break;
    }
    default:
      LC_CHECK_ARG(false, "axis must be 0, 1 or 2");
  }
}

void Fft3D::forward(ComplexField& f) const {
  sweep(f, 0, false);
  sweep(f, 1, false);
  sweep(f, 2, false);
}

void Fft3D::inverse(ComplexField& f) const {
  sweep(f, 2, true);
  sweep(f, 1, true);
  sweep(f, 0, true);
}

void Fft3D::transform_axis(ComplexField& f, int axis, bool inverse) const {
  sweep(f, axis, inverse);
}

ComplexField forward_spectrum(const RealField& f, const Fft3D& plan) {
  ComplexField c(f.grid());
  const auto src = f.span();
  const auto dst = c.span();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = cplx{src[i], 0.0};
  plan.forward(c);
  return c;
}

RealField inverse_real(ComplexField spectrum, const Fft3D& plan) {
  plan.inverse(spectrum);
  RealField out(spectrum.grid());
  const auto src = spectrum.span();
  const auto dst = out.span();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i].real();
  return out;
}

}  // namespace lc::fft
