#include "fft/convolution.hpp"

#include "common/check.hpp"
#include "common/simd.hpp"

namespace lc::fft {

void pointwise_multiply(ComplexField& a, const ComplexField& b) {
  LC_CHECK_ARG(a.grid() == b.grid(), "spectrum grids differ");
  auto pa = a.span();
  const auto pb = b.span();
  simd::complex_mul_inplace(pa.data(), pb.data(), pa.size());
}

RealField fft_circular_convolve(const RealField& a, const RealField& b,
                                const Fft3D& plan) {
  LC_CHECK_ARG(a.grid() == b.grid(), "convolution grids differ");
  LC_CHECK_ARG(a.grid() == plan.grid(), "plan grid mismatch");
  ComplexField ha = forward_spectrum(a, plan);
  const ComplexField hb = forward_spectrum(b, plan);
  pointwise_multiply(ha, hb);
  return inverse_real(std::move(ha), plan);
}

RealField convolve_with_spectrum(const RealField& input,
                                 const ComplexField& kernel_hat,
                                 const Fft3D& plan) {
  LC_CHECK_ARG(input.grid() == kernel_hat.grid(), "kernel grid mismatch");
  LC_CHECK_ARG(input.grid() == plan.grid(), "plan grid mismatch");
  ComplexField h = forward_spectrum(input, plan);
  pointwise_multiply(h, kernel_hat);
  return inverse_real(std::move(h), plan);
}

}  // namespace lc::fft
