#include "fft/real_fft3d.hpp"

#include "common/check.hpp"

namespace lc::fft {

RealFft3D::RealFft3D(const Grid3& g, ThreadPool* pool)
    : grid_(g), sgrid_{g.nx / 2 + 1, g.ny, g.nz}, pool_(pool) {
  LC_CHECK_ARG(g.nx >= 2 && g.ny >= 1 && g.nz >= 1, "grid too small for r2c");
  fx_ = std::make_shared<LazyPlan<RealFft1D>>(static_cast<std::size_t>(g.nx));
  fy_ = std::make_shared<LazyPlan<Fft1D>>(static_cast<std::size_t>(g.ny));
  fz_ = g.nz == g.ny
            ? fy_
            : std::make_shared<LazyPlan<Fft1D>>(static_cast<std::size_t>(g.nz));
}

namespace {

void run_blocks(ThreadPool* pool, std::size_t count,
                const std::function<void(std::size_t, std::size_t,
                                         FftWorkspace&)>& body) {
  if (pool == nullptr || pool->size() <= 1 || count <= 1) {
    FftWorkspace ws;
    body(0, count, ws);
    return;
  }
  pool->parallel_for_blocks(0, count, [&](std::size_t lo, std::size_t hi) {
    FftWorkspace ws;
    body(lo, hi, ws);
  });
}

}  // namespace

void RealFft3D::sweep_yz(ComplexField& s, bool inv) const {
  const auto hx = static_cast<std::size_t>(sgrid_.nx);
  const auto ny = static_cast<std::size_t>(sgrid_.ny);
  const auto nz = static_cast<std::size_t>(sgrid_.nz);
  cplx* base = s.data();

  const Fft1D& fy = fy_->get();
  const Fft1D& fz = fz_->get();
  if (!inv) {
    // y pencils (stride hx) per z-slab, then z pencils (stride hx·ny).
    run_blocks(pool_, nz, [&](std::size_t lo, std::size_t hi, FftWorkspace& ws) {
      for (std::size_t z = lo; z < hi; ++z) {
        fy.forward_batch(base + z * hx * ny, hx, 1, hx, ws);
      }
    });
    run_blocks(pool_, hx * ny,
               [&](std::size_t lo, std::size_t hi, FftWorkspace& ws) {
                 fz.forward_batch(base + lo, hx * ny, 1, hi - lo, ws);
               });
  } else {
    run_blocks(pool_, hx * ny,
               [&](std::size_t lo, std::size_t hi, FftWorkspace& ws) {
                 fz.inverse_batch(base + lo, hx * ny, 1, hi - lo, ws);
               });
    run_blocks(pool_, nz, [&](std::size_t lo, std::size_t hi, FftWorkspace& ws) {
      for (std::size_t z = lo; z < hi; ++z) {
        fy.inverse_batch(base + z * hx * ny, hx, 1, hx, ws);
      }
    });
  }
}

ComplexField RealFft3D::forward(const RealField& in) const {
  LC_CHECK_ARG(in.grid() == grid_, "field grid != plan grid");
  ComplexField s(sgrid_);
  const auto nx = static_cast<std::size_t>(grid_.nx);
  const auto hx = static_cast<std::size_t>(sgrid_.nx);
  const std::size_t rows = static_cast<std::size_t>(grid_.ny) *
                           static_cast<std::size_t>(grid_.nz);
  const RealFft1D& fx = fx_->get();
  run_blocks(pool_, rows, [&](std::size_t lo, std::size_t hi, FftWorkspace& ws) {
    for (std::size_t row = lo; row < hi; ++row) {
      fx.forward({in.data() + row * nx, nx}, {s.data() + row * hx, hx}, ws);
    }
  });
  sweep_yz(s, /*inv=*/false);
  return s;
}

RealField RealFft3D::inverse(ComplexField spectrum) const {
  LC_CHECK_ARG(spectrum.grid() == sgrid_, "spectrum grid != plan grid");
  sweep_yz(spectrum, /*inv=*/true);
  RealField out(grid_);
  const auto nx = static_cast<std::size_t>(grid_.nx);
  const auto hx = static_cast<std::size_t>(sgrid_.nx);
  const std::size_t rows = static_cast<std::size_t>(grid_.ny) *
                           static_cast<std::size_t>(grid_.nz);
  const RealFft1D& fx = fx_->get();
  run_blocks(pool_, rows, [&](std::size_t lo, std::size_t hi, FftWorkspace& ws) {
    for (std::size_t row = lo; row < hi; ++row) {
      fx.inverse({spectrum.data() + row * hx, hx}, {out.data() + row * nx, nx},
                 ws);
    }
  });
  return out;
}

}  // namespace lc::fft
