#include "device/memory_model.hpp"

#include <complex>

namespace lc::device {

namespace {

constexpr std::size_t kReal = sizeof(double);
constexpr std::size_t kComplex = sizeof(std::complex<double>);

std::size_t cube(i64 n) {
  return static_cast<std::size_t>(n) * static_cast<std::size_t>(n) *
         static_cast<std::size_t>(n);
}

std::size_t square(i64 n) {
  return static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
}

}  // namespace

std::size_t traditional_fft_bytes(i64 n) { return kReal * cube(n); }

std::size_t local_fft_slab_bytes(i64 n, i64 k) {
  return kReal * square(n) * static_cast<std::size_t>(k);
}

namespace {

/// Elements per spectral z-slice: the full N² plane, or the Hermitian
/// half plane (nx/2+1)·N when the r2c/c2r path is active. Must mirror
/// LocalConvolver's `spec_elems` exactly (bench_table4 asserts measured
/// peak == planned actual).
std::size_t spec_plane_elems(i64 n, bool real_path) {
  return real_path ? (static_cast<std::size_t>(n) / 2 + 1) *
                         static_cast<std::size_t>(n)
                   : square(n);
}

}  // namespace

std::size_t local_fft_spectrum_bytes(i64 n, i64 k, bool real_path) {
  return kComplex * spec_plane_elems(n, real_path) *
         static_cast<std::size_t>(k);
}

PipelinePlan plan_local_pipeline(i64 n, i64 k,
                                 const sampling::SamplingPolicy& policy,
                                 std::size_t batch, bool real_path) {
  LC_CHECK_ARG(k >= 1 && k <= n, "sub-domain size outside grid");
  const Grid3 grid = Grid3::cube(n);
  // Octree construction touches only cell metadata (no dense arrays), so
  // planning at paper-scale N (up to 8192³) is cheap.
  const sampling::Octree tree(grid, Box3::cube_at({0, 0, 0}, k), policy);

  PipelinePlan plan;
  plan.chunk_bytes = kReal * cube(k);
  plan.slab_bytes =
      kComplex * spec_plane_elems(n, real_path) * static_cast<std::size_t>(k);
  plan.staging_bytes = kComplex * spec_plane_elems(n, real_path) *
                       tree.retained_z_planes().size();
  plan.pencil_bytes = 2 * kComplex * batch * static_cast<std::size_t>(n);
  plan.payload_bytes = kReal * tree.total_samples();
  plan.metadata_bytes = tree.cells().size() * 5 * sizeof(std::int32_t);
  // cuFFT-like workspace: double-precision c2c plans may require scratch up
  // to twice the transform size — the batched 2D plan mirrors the slab
  // (×2), the batched 1D z-plan one pencil batch, plus (real path) the N²
  // real plane the c2r store lane writes. This is the paper's "temporaries
  // in the midst of calculations" (Table 4).
  plan.workspace_bytes = 2 * plan.slab_bytes + plan.pencil_bytes / 2 +
                         (real_path ? kReal * square(n) : 0);
  return plan;
}

PipelinePlan estimate_local_pipeline(i64 n, i64 k, i64 far_rate,
                                     std::size_t batch, bool real_path) {
  LC_CHECK_ARG(k >= 1 && k <= n, "sub-domain size outside grid");
  LC_CHECK_ARG(far_rate >= 1, "far rate must be >= 1");
  const auto r = static_cast<std::size_t>(far_rate);

  PipelinePlan plan;
  plan.chunk_bytes = kReal * cube(k);
  plan.slab_bytes =
      kComplex * spec_plane_elems(n, real_path) * static_cast<std::size_t>(k);
  // Dense core planes plus one exterior plane every r grid planes.
  const std::size_t planes =
      std::min(static_cast<std::size_t>(n),
               static_cast<std::size_t>(k) +
                   (static_cast<std::size_t>(n - k) + r - 1) / r + 1);
  plan.staging_bytes = kComplex * spec_plane_elems(n, real_path) * planes;
  plan.pencil_bytes = 2 * kComplex * batch * static_cast<std::size_t>(n);
  // Eqn 6: the dense k³ core plus the rate-r downsampled exterior.
  plan.payload_bytes =
      kReal * (cube(k) + (cube(n) - cube(k)) / (r * r * r));
  const std::size_t tile = static_cast<std::size_t>(std::max(k, far_rate));
  plan.metadata_bytes =
      (cube(n) / (tile * tile * tile) + 64) * 5 * sizeof(std::int32_t);
  plan.workspace_bytes = 2 * plan.slab_bytes + plan.pencil_bytes / 2 +
                         (real_path ? kReal * square(n) : 0);
  return plan;
}

i64 planning_far_rate(i64 n, i64 k) {
  LC_CHECK_ARG(k >= 1 && n >= k, "bad (n, k)");
  std::size_t r = 2;
  while (r < static_cast<std::size_t>(n / k) && r < 128) r *= 2;
  return static_cast<i64>(r);
}

i64 max_allowable_k(i64 n, const DeviceSpec& spec, std::size_t batch) {
  i64 best = 0;
  for (i64 k = 2; k <= n; k *= 2) {
    const auto policy =
        sampling::SamplingPolicy::uniform(planning_far_rate(n, k));
    const PipelinePlan plan = plan_local_pipeline(n, k, policy, batch);
    if (plan.actual_total() <= spec.capacity_bytes) best = k;
  }
  return best;
}

}  // namespace lc::device
