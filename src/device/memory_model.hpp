// Analytic memory model of the local convolution pipeline (Tables 1, 2, 4).
//
// Table 1 uses the paper's own back-of-envelope formulas: a traditional FFT
// stores the full-resolution N³ result (8·N³ bytes double precision); the
// domain-local method keeps an N×N×k slab (8·N²·k bytes).
//
// Tables 2 and 4 need the *full* allocation plan of our pipeline. Every
// buffer the LocalConvolver touches is enumerated here so feasibility (does
// it fit in device capacity?) and the estimated-vs-actual gap (plan
// workspaces — the stand-in for cuFFT's internal temporaries) can be
// evaluated at paper-scale N without allocating anything.
#pragma once

#include <cstddef>

#include "common/runtime_flags.hpp"
#include "device/device.hpp"
#include "sampling/octree.hpp"

namespace lc::device {

/// Sizes (bytes) of each buffer class in one sub-domain's local pipeline.
struct PipelinePlan {
  std::size_t chunk_bytes = 0;      ///< k³ real input chunk
  std::size_t slab_bytes = 0;       ///< N×N×k complex slab (xy stage)
  std::size_t staging_bytes = 0;    ///< N² complex per retained z-plane
  std::size_t pencil_bytes = 0;     ///< 2 × B×N complex z-pencil batches
  std::size_t payload_bytes = 0;    ///< compressed sample payload (double)
  std::size_t metadata_bytes = 0;   ///< octree metadata (5 int32 / cell)
  std::size_t workspace_bytes = 0;  ///< FFT plan temporaries (cuFFT-like)

  /// The analytic estimate (what a back-of-envelope would claim): all
  /// algorithm-visible buffers, no library internals.
  [[nodiscard]] std::size_t estimated_total() const noexcept {
    return chunk_bytes + slab_bytes + staging_bytes + pencil_bytes +
           payload_bytes + metadata_bytes;
  }
  /// What a real run reaches at peak: estimate plus transform workspaces —
  /// the paper's "difference ... due to the use of CUFFT, which creates
  /// temporaries in the midst of calculations" (Table 4).
  [[nodiscard]] std::size_t actual_total() const noexcept {
    return estimated_total() + workspace_bytes;
  }
};

/// Table 1, column "traditional FFT": full-resolution double result.
[[nodiscard]] std::size_t traditional_fft_bytes(i64 n);

/// Table 1, column "local FFT (ours)": the N×N×k slab.
[[nodiscard]] std::size_t local_fft_slab_bytes(i64 n, i64 k);

/// Spectrum footprint of the slab as the pipeline actually stores it:
/// complex bins, the full N×N×k (c2c) or the Hermitian half (N/2+1)×N×k
/// (r2c, DESIGN.md §16). The r2c footprint lands within one Nyquist
/// column of the paper's 8·N²·k real-slab figure.
[[nodiscard]] std::size_t local_fft_spectrum_bytes(i64 n, i64 k,
                                                   bool real_path);

/// Full allocation plan of the local pipeline for one k³ sub-domain of an
/// n³ grid under `policy`, with z-pencil batch size `batch`. `real_path`
/// prices the Hermitian half-spectrum pipeline (slab/staging hold only the
/// nx/2+1 x-bins, plus the c2r store lane's N² real plane) and defaults to
/// the LC_REAL dispatch so plans match what a Hermitian-operator engine
/// actually allocates; pass false to price the full complex path.
[[nodiscard]] PipelinePlan plan_local_pipeline(
    i64 n, i64 k, const sampling::SamplingPolicy& policy, std::size_t batch,
    bool real_path = real_path_enabled());

/// Octree-free analytic variant of plan_local_pipeline for ANY grid side
/// (the real octree requires a power-of-two n): payload from the uniform
/// Eqn 6 closed form k³ + (n³−k³)/r³, retained planes from the dense core
/// plus the rate-r exterior, cell metadata from the coarse tiling. The
/// dominant slab / pencil / workspace terms are identical to the exact
/// plan's. Used where n may not be a power of two (the divisor fallback in
/// core::select_hyperparams).
[[nodiscard]] PipelinePlan estimate_local_pipeline(
    i64 n, i64 k, i64 far_rate, std::size_t batch,
    bool real_path = real_path_enabled());

/// Planning downsampling rate: the paper coarsens r with the problem ratio
/// (r = 4 at N/k = 4 up to r = 128 at N = 2048 in Table 4). Clamped to
/// [2, 128].
[[nodiscard]] i64 planning_far_rate(i64 n, i64 k);

/// Largest power-of-two sub-domain size k <= n for which the pipeline's
/// actual_total fits in `spec`'s capacity (0 if none), under the uniform
/// planning rate above. Reproduces Table 2's "Allowable k" column.
[[nodiscard]] i64 max_allowable_k(i64 n, const DeviceSpec& spec,
                                  std::size_t batch);

}  // namespace lc::device
