// Simulated accelerator device (substitutes for the paper's V100 GPUs).
//
// Tables 2 and 4 of the paper are *memory-capacity* results: which (N, k)
// combinations fit on a 16 GB / 32 GB device, and how far actual usage
// (with cuFFT's internal temporaries) exceeds the analytic estimate. Both
// depend only on allocation sizes, which DeviceContext tracks exactly: every
// buffer the local pipeline uses is drawn from the device, allocations
// beyond capacity throw ResourceExhausted, and a high-water mark records
// peak usage.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <string>

#include "common/aligned.hpp"
#include "common/check.hpp"

namespace lc::device {

/// Static description of a device.
struct DeviceSpec {
  std::string name;
  std::size_t capacity_bytes = 0;

  /// The paper's evaluation devices (§4 "Hardware setup").
  static DeviceSpec v100_16gb() {
    return {"NVIDIA V100 16GB", 16ull << 30};
  }
  static DeviceSpec v100_32gb() {
    return {"NVIDIA V100 32GB (DGX-2)", 32ull << 30};
  }
  /// Unlimited device for correctness runs where capacity is irrelevant.
  static DeviceSpec unlimited() {
    return {"host", static_cast<std::size_t>(-1)};
  }
};

/// Byte-tracked, capacity-limited allocation context. Thread-safe: the
/// runtime service registers allocations from many concurrent requests
/// against one device budget, so the capacity check and the usage update
/// form a single atomic step (CAS loop), and the peak is maintained with a
/// monotonic fetch-max.
class DeviceContext {
 public:
  explicit DeviceContext(DeviceSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t used_bytes() const noexcept {
    return used_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t peak_bytes() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }
  void reset_peak() noexcept {
    peak_.store(used_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

  /// Register an allocation; throws ResourceExhausted beyond capacity.
  void register_alloc(std::size_t bytes) {
    std::size_t cur = used_.load(std::memory_order_relaxed);
    do {
      if (bytes > spec_.capacity_bytes - cur || cur > spec_.capacity_bytes) {
        throw ResourceExhausted(
            "device '" + spec_.name + "' out of memory: requested " +
            std::to_string(bytes) + " B with " + std::to_string(cur) +
            " B in use of " + std::to_string(spec_.capacity_bytes) + " B");
      }
    } while (!used_.compare_exchange_weak(cur, cur + bytes,
                                          std::memory_order_relaxed));
    const std::size_t now = cur + bytes;
    std::size_t p = peak_.load(std::memory_order_relaxed);
    while (now > p &&
           !peak_.compare_exchange_weak(p, now, std::memory_order_relaxed)) {
    }
  }

  void register_free(std::size_t bytes) noexcept {
    const std::size_t prev =
        used_.fetch_sub(bytes, std::memory_order_relaxed);
    LC_ASSERT(bytes <= prev);
    (void)prev;
  }

 private:
  DeviceSpec spec_;
  std::atomic<std::size_t> used_{0};
  std::atomic<std::size_t> peak_{0};
};

/// RAII device buffer of T. Movable, non-copyable; returns its bytes to the
/// context on destruction.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(DeviceContext& ctx, std::size_t count)
      : ctx_(&ctx), bytes_(count * sizeof(T)) {
    ctx_->register_alloc(bytes_);
    data_.resize(count);
  }
  ~DeviceBuffer() { release(); }

  DeviceBuffer(DeviceBuffer&& o) noexcept
      : ctx_(o.ctx_), bytes_(o.bytes_), data_(std::move(o.data_)) {
    o.ctx_ = nullptr;
    o.bytes_ = 0;
  }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      ctx_ = o.ctx_;
      bytes_ = o.bytes_;
      data_ = std::move(o.data_);
      o.ctx_ = nullptr;
      o.bytes_ = 0;
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<T> span() noexcept {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data_.data(), data_.size()};
  }

 private:
  void release() noexcept {
    if (ctx_ != nullptr) {
      ctx_->register_free(bytes_);
      ctx_ = nullptr;
    }
  }

  DeviceContext* ctx_ = nullptr;
  std::size_t bytes_ = 0;
  AlignedVector<T> data_;
};

}  // namespace lc::device
