// The MASSIF convolution step as spectral operators.
//
// ElasticGreenOperator is the 6-channel per-bin contraction
// Δε̂ = Γ̂(ξ) : σ̂(ξ) (paper Algorithm 1/2, Eqn 3), evaluated on the fly
// from the closed form — nothing per-bin is precomputed or stored, the
// paper's key memory saving for the kernel.
//
// ElasticGreenComponentKernel exposes a single Γ̂ Voigt component as a
// scalar kernel for per-component pipelines and ablation benches.
#pragma once

#include "core/spectral_operator.hpp"
#include "green/elastic.hpp"

namespace lc::massif {

/// Six-channel operator: channels are the Voigt components of σ̂ on input
/// and of Δε̂ = Γ̂ : σ̂ on output. The DC bin (ξ = 0) maps to zero (the
/// macroscopic strain is prescribed separately by the fixed-point scheme).
class ElasticGreenOperator final : public core::SpectralOperator {
 public:
  explicit ElasticGreenOperator(const Lame& reference) : ref_(reference) {
    LC_CHECK_ARG(reference.mu > 0.0, "reference shear modulus must be > 0");
  }

  [[nodiscard]] std::size_t channels() const override { return 6; }

  void apply(const Index3& bin, const Grid3& g,
             std::span<core::cplx> values) const override {
    const Green4 gamma = green::elastic_green_at_bin(bin, g, ref_);
    Sym2c sigma;
    for (std::size_t a = 0; a < 6; ++a) sigma.v[a] = values[a];
    const Sym2c eps = green::apply_green(gamma, sigma);
    for (std::size_t a = 0; a < 6; ++a) values[a] = eps.v[a];
  }

  [[nodiscard]] std::string name() const override { return "elastic-green"; }
  /// NOT Hermitian as binned, despite Γ̂ being real and even in ω: the
  /// signed-frequency convention maps the Nyquist bin n/2 to +π on every
  /// axis, so cross terms like ξ_x ξ_y at a mirrored bin pair (x, n/2, z) /
  /// (n−x, n/2, n−z) keep the SAME sign of ξ_y where conjugate symmetry
  /// needs the opposite — Γ̂(mirror(bin)) ≠ Γ̂(−ω(bin)) on the Nyquist
  /// planes. The complex pipeline applies that convention everywhere and
  /// keeps .real() at the end (matching the dense MASSIF reference
  /// bit-for-bit); an r2c half-spectrum run would implicitly Hermitianize
  /// and diverge by O(1/n). So this operator stays on the complex path.
  [[nodiscard]] bool hermitian() const override { return false; }

  [[nodiscard]] const Lame& reference() const noexcept { return ref_; }

 private:
  Lame ref_;
};

/// Scalar kernel view of one Γ̂ Voigt component (a, b in 0..5).
class ElasticGreenComponentKernel final : public green::KernelSpectrum {
 public:
  ElasticGreenComponentKernel(std::size_t a, std::size_t b,
                              const Lame& reference)
      : a_(a), b_(b), ref_(reference) {
    LC_CHECK_ARG(a < 6 && b < 6, "Voigt indices range");
  }

  [[nodiscard]] green::cplx eval(const Index3& bin,
                                 const Grid3& g) const override {
    return {green::elastic_green_at_bin(bin, g, ref_).m[a_][b_], 0.0};
  }

  [[nodiscard]] std::string name() const override {
    return "gamma[" + std::to_string(a_) + "][" + std::to_string(b_) + "]";
  }
  /// Same Nyquist cross-term asymmetry as ElasticGreenOperator (see above):
  /// real and even in ω, but not conjugate-symmetric as binned.
  [[nodiscard]] bool hermitian() const override { return false; }

 private:
  std::size_t a_;
  std::size_t b_;
  Lame ref_;
};

}  // namespace lc::massif
