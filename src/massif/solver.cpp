#include "massif/solver.hpp"

#include <cmath>

#include "common/check.hpp"
#include "core/accumulator.hpp"

namespace lc::massif {

// --- Dense backend (Algorithm 1) -------------------------------------------

DenseGreenBackend::DenseGreenBackend(const Grid3& grid, const Lame& reference,
                                     ThreadPool* pool)
    : grid_(grid), ref_(reference), plan_(grid, pool) {}

void DenseGreenBackend::apply(const SymTensorField& sigma,
                              SymTensorField& delta_eps) {
  LC_CHECK_ARG(sigma.grid() == grid_, "stress grid mismatch");
  // Forward FFT of all six Voigt components.
  std::array<ComplexField, 6> hat;
  for (std::size_t a = 0; a < 6; ++a) {
    hat[a] = fft::forward_spectrum(sigma.component(a), plan_);
  }
  // Per-bin contraction Δε̂ = Γ̂ : σ̂ (DC bin maps to zero inside Γ̂).
  for_each_point(Box3::of(grid_), [&](const Index3& p) {
    const Green4 gamma = green::elastic_green_at_bin(p, grid_, ref_);
    Sym2c s;
    const std::size_t lin = grid_.index(p);
    for (std::size_t a = 0; a < 6; ++a) s.v[a] = hat[a][lin];
    const Sym2c e = green::apply_green(gamma, s);
    for (std::size_t a = 0; a < 6; ++a) hat[a][lin] = e.v[a];
  });
  // Inverse FFT back to strain increments.
  for (std::size_t a = 0; a < 6; ++a) {
    delta_eps.component(a) = fft::inverse_real(std::move(hat[a]), plan_);
  }
}

// --- Low-communication backend (Algorithm 2) --------------------------------

LowCommGreenBackend::LowCommGreenBackend(const Grid3& grid,
                                         const Lame& reference, Params params)
    : decomp_(grid, params.subdomain),
      params_(params),
      convolver_(grid, std::make_shared<ElasticGreenOperator>(reference),
                 [&params] {
                   core::LocalConvolverConfig cfg;
                   cfg.batch = params.batch;
                   cfg.pool = params.pool;
                   cfg.device = params.device;
                   return cfg;
                 }()),
      octrees_(decomp_.count()) {
  const sampling::SamplingPolicy policy =
      params_.uniform_rate.has_value()
          ? sampling::SamplingPolicy::uniform(*params_.uniform_rate)
          : sampling::SamplingPolicy::paper_default(
                params_.subdomain, params_.far_rate, /*boundary_band=*/0,
                params_.dense_halo);
  for (std::size_t d = 0; d < decomp_.count(); ++d) {
    octrees_[d] = std::make_shared<sampling::Octree>(
        grid, decomp_.subdomain(d), policy);
  }
}

std::size_t LowCommGreenBackend::exchange_bytes_per_apply() const {
  std::size_t bytes = 0;
  for (const auto& tree : octrees_) {
    bytes += 6 * tree->total_samples() * sizeof(double);
  }
  return bytes;
}

void LowCommGreenBackend::apply(const SymTensorField& sigma,
                                SymTensorField& delta_eps) {
  LC_CHECK_ARG(sigma.grid() == decomp_.grid(), "stress grid mismatch");
  // Per-component contribution lists across all sub-domains.
  std::array<std::vector<sampling::CompressedField>, 6> contributions;

  for (std::size_t d = 0; d < decomp_.count(); ++d) {
    const Box3& box = decomp_.subdomain(d);
    std::vector<RealField> chunks;
    chunks.reserve(6);
    for (std::size_t a = 0; a < 6; ++a) {
      chunks.push_back(sigma.component(a).extract(box));
    }
    auto results = convolver_.convolve_channels(chunks, box.lo, octrees_[d]);
    for (std::size_t a = 0; a < 6; ++a) {
      contributions[a].push_back(std::move(results[a]));
    }
  }
  // Accumulation: the single (simulated) exchange + interpolation step.
  for (std::size_t a = 0; a < 6; ++a) {
    delta_eps.component(a) = core::accumulate_full(
        contributions[a], decomp_.grid(), params_.interpolation, params_.pool);
  }
}

// --- Fixed-point solver -------------------------------------------------------

MassifSolver::MassifSolver(const Microstructure& micro,
                           const Sym2& macro_strain,
                           std::shared_ptr<GreenConvolutionBackend> backend,
                           SolverOptions options)
    : micro_(micro),
      macro_(macro_strain),
      backend_(std::move(backend)),
      options_(options),
      eps_(micro.grid()),
      sig_(micro.grid()) {
  LC_CHECK_ARG(backend_ != nullptr, "null backend");
  LC_CHECK_ARG(options_.tolerance > 0.0, "tolerance must be positive");
  if (options_.scheme == Scheme::kConjugateGradient) {
    LC_CHECK_ARG(options_.reference.mu > 0.0,
                 "the CG scheme needs the backend's reference medium");
  }
  eps_.fill(macro_);
  update_stress();
}

void MassifSolver::update_stress() {
  for_each_point(Box3::of(micro_.grid()), [&](const Index3& p) {
    sig_.set(p, micro_.stiffness_at(p).ddot(eps_.at(p)));
  });
}

SolveReport MassifSolver::solve() {
  return options_.scheme == Scheme::kConjugateGradient ? solve_cg()
                                                       : solve_basic();
}

SolveReport MassifSolver::solve_basic() {
  SolveReport report;
  const double macro_norm =
      macro_.norm() * std::sqrt(static_cast<double>(micro_.grid().size()));
  LC_CHECK_ARG(macro_norm > 0.0, "macroscopic strain must be nonzero");

  SymTensorField delta(micro_.grid());
  for (int it = 0; it < options_.max_iterations; ++it) {
    backend_->apply(sig_, delta);
    // ε ← ε − Δε
    for (std::size_t a = 0; a < 6; ++a) {
      auto e = eps_.component(a).span();
      const auto d = delta.component(a).span();
      for (std::size_t i = 0; i < e.size(); ++i) e[i] -= d[i];
    }
    update_stress();

    const double change = delta.l2_norm() / macro_norm;
    report.strain_change_history.push_back(change);
    report.iterations = it + 1;
    if (change < options_.tolerance) {
      report.converged = true;
      break;
    }
  }
  return report;
}

namespace {

/// Energy-weighted inner product over symmetric tensor fields
/// (off-diagonal Voigt slots count twice, matching the ddot convention).
double field_dot(const SymTensorField& a, const SymTensorField& b) {
  double acc = 0.0;
  for (std::size_t c = 0; c < 6; ++c) {
    const double w = (c < 3) ? 1.0 : 2.0;
    const auto pa = a.component(c).span();
    const auto pb = b.component(c).span();
    for (std::size_t i = 0; i < pa.size(); ++i) acc += w * pa[i] * pb[i];
  }
  return acc;
}

/// y += s * x
void field_axpy(SymTensorField& y, double s, const SymTensorField& x) {
  for (std::size_t c = 0; c < 6; ++c) {
    auto py = y.component(c).span();
    const auto px = x.component(c).span();
    for (std::size_t i = 0; i < py.size(); ++i) py[i] += s * px[i];
  }
}

}  // namespace

SolveReport MassifSolver::solve_cg() {
  // Lippmann–Schwinger: (I + Γ⁰ δC) ε = E with δC = C(x) − C0, solved for
  // the zero-mean fluctuation e = ε − E:
  //   A e = b,   A x = x + Γ⁰∗(δC : x),   b = −Γ⁰∗(δC : E).
  // Γ⁰∗· always returns zero-mean fields, so A preserves the fluctuation
  // space and b lies in it. One backend convolution per CG iteration —
  // the same per-iteration cost as the basic scheme.
  SolveReport report;
  LC_CHECK_ARG(macro_.norm() > 0.0, "macroscopic strain must be nonzero");
  const Grid3& g = micro_.grid();
  const Stiffness c0 =
      isotropic_stiffness(options_.reference.lambda, options_.reference.mu);
  std::vector<Stiffness> delta_c;
  delta_c.reserve(micro_.phases().size());
  for (const auto& phase : micro_.phases()) {
    Stiffness d = phase.stiffness;
    d -= c0;
    delta_c.push_back(d);
  }

  SymTensorField tau(g);  // scratch: δC : x
  auto apply_green_dc = [&](const SymTensorField& x, SymTensorField& out) {
    for_each_point(Box3::of(g), [&](const Index3& p) {
      tau.set(p, delta_c[micro_.phase_at(p)].ddot(x.at(p)));
    });
    backend_->apply(tau, out);
  };

  // b = −Γ⁰∗(δC : E)
  SymTensorField macro_field(g);
  macro_field.fill(macro_);
  SymTensorField b(g);
  apply_green_dc(macro_field, b);
  for (std::size_t c = 0; c < 6; ++c) {
    for (auto& v : b.component(c).span()) v = -v;
  }
  const double b_norm = std::sqrt(field_dot(b, b));
  if (b_norm == 0.0) {
    // Homogeneous material: ε = E is already the solution.
    report.converged = true;
    report.iterations = 1;
    report.strain_change_history.push_back(0.0);
    update_stress();
    return report;
  }

  SymTensorField e(g);       // fluctuation iterate (starts at zero)
  SymTensorField r = b;      // residual
  SymTensorField p = r;      // search direction
  SymTensorField ap(g);      // A p
  double rr = field_dot(r, r);

  for (int it = 0; it < options_.max_iterations; ++it) {
    apply_green_dc(p, ap);        // Γ⁰∗(δC : p)
    field_axpy(ap, 1.0, p);       // A p = p + Γ⁰∗(δC : p)
    const double p_ap = field_dot(p, ap);
    LC_CHECK(p_ap != 0.0, "CG breakdown: p·Ap == 0");
    const double alpha = rr / p_ap;
    field_axpy(e, alpha, p);
    field_axpy(r, -alpha, ap);
    const double rr_new = field_dot(r, r);
    const double rel = std::sqrt(rr_new) / b_norm;
    report.strain_change_history.push_back(rel);
    report.iterations = it + 1;
    if (rel < options_.tolerance) {
      report.converged = true;
      break;
    }
    const double beta = rr_new / rr;
    rr = rr_new;
    // p = r + beta p
    for (std::size_t c = 0; c < 6; ++c) {
      auto pp = p.component(c).span();
      const auto pr = r.component(c).span();
      for (std::size_t i = 0; i < pp.size(); ++i) {
        pp[i] = pr[i] + beta * pp[i];
      }
    }
  }

  // ε = E + e; recompute stress from the converged strain.
  eps_ = macro_field;
  field_axpy(eps_, 1.0, e);
  update_stress();
  return report;
}

Sym2 MassifSolver::average_stress() const {
  Sym2 avg;
  for (std::size_t a = 0; a < 6; ++a) {
    double acc = 0.0;
    for (const auto v : sig_.component(a).span()) acc += v;
    avg.v[a] = acc / static_cast<double>(micro_.grid().size());
  }
  return avg;
}

}  // namespace lc::massif
