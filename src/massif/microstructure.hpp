// Composite microstructures for the MASSIF use case (paper §2.2): a 3D
// voxel grid of material phases, each phase an isotropic elastic material.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tensor/field.hpp"
#include "tensor/sym_tensor.hpp"

namespace lc::massif {

/// One material phase: isotropic elasticity.
struct Phase {
  std::string name;
  Lame lame;
  Stiffness stiffness;

  static Phase isotropic(std::string name, double young, double poisson);
};

/// Voxelised multi-phase material on a 3D grid.
class Microstructure {
 public:
  Microstructure(const Grid3& grid, std::vector<Phase> phases,
                 std::vector<std::uint8_t> phase_of_voxel);

  [[nodiscard]] const Grid3& grid() const noexcept { return grid_; }
  [[nodiscard]] const std::vector<Phase>& phases() const noexcept {
    return phases_;
  }
  [[nodiscard]] std::uint8_t phase_at(const Index3& p) const noexcept {
    return voxels_[grid_.index(p)];
  }
  [[nodiscard]] const Stiffness& stiffness_at(const Index3& p) const noexcept {
    return phases_[voxels_[grid_.index(p)]].stiffness;
  }

  /// Volume fraction of each phase.
  [[nodiscard]] std::vector<double> volume_fractions() const;

  /// Reference medium for the Moulinec–Suquet scheme: the midpoint of the
  /// extreme phase moduli (the classic convergence-optimal choice for the
  /// basic scheme).
  [[nodiscard]] Lame reference_medium() const;

  /// Geometric-mean reference medium — the convergence-optimal choice for
  /// the Eyre–Milton accelerated scheme (rate ~ sqrt(contrast) instead of
  /// ~contrast).
  [[nodiscard]] Lame reference_medium_geometric() const;

  // --- Generators (deterministic; reproducible by seed) -------------------

  /// Single-phase material (the solver must converge in one iteration).
  static Microstructure homogeneous(const Grid3& grid, const Phase& phase);

  /// Matrix with one centred cubic inclusion of side `inclusion_side`.
  static Microstructure cubic_inclusion(const Grid3& grid, const Phase& matrix,
                                        const Phase& inclusion,
                                        i64 inclusion_side);

  /// Matrix with randomly placed spherical inclusions targeting the given
  /// volume fraction (the paper's "discretized microstructure of a
  /// composite material").
  static Microstructure random_spheres(const Grid3& grid, const Phase& matrix,
                                       const Phase& inclusion,
                                       double target_fraction, double radius,
                                       std::uint64_t seed);

  /// Alternating z-layers (laminate): has a classic analytic bound
  /// structure and exercises strongly anisotropic fields.
  static Microstructure laminate(const Grid3& grid, const Phase& a,
                                 const Phase& b, i64 layer_thickness);

 private:
  Grid3 grid_;
  std::vector<Phase> phases_;
  std::vector<std::uint8_t> voxels_;
};

}  // namespace lc::massif
