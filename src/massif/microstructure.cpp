#include "massif/microstructure.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace lc::massif {

Phase Phase::isotropic(std::string name, double young, double poisson) {
  Phase p;
  p.name = std::move(name);
  p.lame = lame_from_young_poisson(young, poisson);
  p.stiffness = isotropic_stiffness(p.lame.lambda, p.lame.mu);
  return p;
}

Microstructure::Microstructure(const Grid3& grid, std::vector<Phase> phases,
                               std::vector<std::uint8_t> phase_of_voxel)
    : grid_(grid), phases_(std::move(phases)), voxels_(std::move(phase_of_voxel)) {
  LC_CHECK_ARG(!phases_.empty(), "need at least one phase");
  LC_CHECK_ARG(voxels_.size() == grid.size(), "voxel array size mismatch");
  for (const auto v : voxels_) {
    LC_CHECK_ARG(v < phases_.size(), "voxel references unknown phase");
  }
}

std::vector<double> Microstructure::volume_fractions() const {
  std::vector<double> frac(phases_.size(), 0.0);
  for (const auto v : voxels_) frac[v] += 1.0;
  for (auto& f : frac) f /= static_cast<double>(voxels_.size());
  return frac;
}

Lame Microstructure::reference_medium() const {
  double lo_mu = phases_[0].lame.mu;
  double hi_mu = lo_mu;
  double lo_la = phases_[0].lame.lambda;
  double hi_la = lo_la;
  for (const auto& p : phases_) {
    lo_mu = std::min(lo_mu, p.lame.mu);
    hi_mu = std::max(hi_mu, p.lame.mu);
    lo_la = std::min(lo_la, p.lame.lambda);
    hi_la = std::max(hi_la, p.lame.lambda);
  }
  return Lame{(lo_la + hi_la) / 2.0, (lo_mu + hi_mu) / 2.0};
}

Lame Microstructure::reference_medium_geometric() const {
  double lo_mu = phases_[0].lame.mu;
  double hi_mu = lo_mu;
  double lo_la = phases_[0].lame.lambda;
  double hi_la = lo_la;
  for (const auto& p : phases_) {
    lo_mu = std::min(lo_mu, p.lame.mu);
    hi_mu = std::max(hi_mu, p.lame.mu);
    lo_la = std::min(lo_la, p.lame.lambda);
    hi_la = std::max(hi_la, p.lame.lambda);
  }
  LC_CHECK_ARG(lo_mu > 0.0 && lo_la > 0.0,
               "geometric reference needs positive moduli");
  return Lame{std::sqrt(lo_la * hi_la), std::sqrt(lo_mu * hi_mu)};
}

Microstructure Microstructure::homogeneous(const Grid3& grid,
                                           const Phase& phase) {
  return Microstructure(grid, {phase},
                        std::vector<std::uint8_t>(grid.size(), 0));
}

Microstructure Microstructure::cubic_inclusion(const Grid3& grid,
                                               const Phase& matrix,
                                               const Phase& inclusion,
                                               i64 inclusion_side) {
  LC_CHECK_ARG(inclusion_side >= 1 && inclusion_side <= grid.nx,
               "inclusion larger than grid");
  std::vector<std::uint8_t> vox(grid.size(), 0);
  const Index3 corner{(grid.nx - inclusion_side) / 2,
                      (grid.ny - inclusion_side) / 2,
                      (grid.nz - inclusion_side) / 2};
  for_each_point(Box3::cube_at(corner, inclusion_side),
                 [&](const Index3& p) { vox[grid.index(p)] = 1; });
  return Microstructure(grid, {matrix, inclusion}, std::move(vox));
}

Microstructure Microstructure::random_spheres(const Grid3& grid,
                                              const Phase& matrix,
                                              const Phase& inclusion,
                                              double target_fraction,
                                              double radius,
                                              std::uint64_t seed) {
  LC_CHECK_ARG(target_fraction > 0.0 && target_fraction < 1.0,
               "fraction must be in (0, 1)");
  LC_CHECK_ARG(radius >= 1.0, "radius must be >= 1 voxel");
  std::vector<std::uint8_t> vox(grid.size(), 0);
  SplitMix64 rng(seed);
  std::size_t filled = 0;
  const auto target =
      static_cast<std::size_t>(target_fraction * static_cast<double>(grid.size()));
  const double r2 = radius * radius;
  int attempts = 0;
  while (filled < target && attempts < 10000) {
    ++attempts;
    const Index3 c{static_cast<i64>(rng.below(static_cast<std::uint64_t>(grid.nx))),
                   static_cast<i64>(rng.below(static_cast<std::uint64_t>(grid.ny))),
                   static_cast<i64>(rng.below(static_cast<std::uint64_t>(grid.nz)))};
    const auto ir = static_cast<i64>(radius) + 1;
    for (i64 dz = -ir; dz <= ir; ++dz) {
      for (i64 dy = -ir; dy <= ir; ++dy) {
        for (i64 dx = -ir; dx <= ir; ++dx) {
          if (static_cast<double>(dx * dx + dy * dy + dz * dz) > r2) continue;
          // Periodic placement (the solver's boundary conditions are
          // periodic, so inclusions may wrap).
          const Index3 p{((c.x + dx) % grid.nx + grid.nx) % grid.nx,
                         ((c.y + dy) % grid.ny + grid.ny) % grid.ny,
                         ((c.z + dz) % grid.nz + grid.nz) % grid.nz};
          auto& v = vox[grid.index(p)];
          if (v == 0) {
            v = 1;
            ++filled;
          }
        }
      }
    }
  }
  return Microstructure(grid, {matrix, inclusion}, std::move(vox));
}

Microstructure Microstructure::laminate(const Grid3& grid, const Phase& a,
                                        const Phase& b, i64 layer_thickness) {
  LC_CHECK_ARG(layer_thickness >= 1, "layer thickness must be >= 1");
  std::vector<std::uint8_t> vox(grid.size(), 0);
  for_each_point(Box3::of(grid), [&](const Index3& p) {
    vox[grid.index(p)] =
        static_cast<std::uint8_t>((p.z / layer_thickness) % 2);
  });
  return Microstructure(grid, {a, b}, std::move(vox));
}

}  // namespace lc::massif
