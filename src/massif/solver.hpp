// MASSIF: fixed-point FFT homogenisation solver for Hooke's law in
// composite microstructures (paper §2.2, Algorithms 1 and 2) — the
// Moulinec–Suquet basic scheme.
//
//   ε⁰(x) = E (prescribed macroscopic strain)
//   repeat:  σ(x)   = C(x) : ε(x)
//            Δε̂(ξ)  = Γ̂(ξ) : σ̂(ξ),  Δε̂(0) = 0
//            ε(x)  ←  ε(x) − Δε(x)
//   until ‖Δε‖ / ‖E‖ < tolerance.
//
// Two interchangeable convolution backends compute Δε = Γ ∗ σ:
//   - DenseGreenBackend: full 3D FFTs of all six stress components
//     (Algorithm 1, the traditional path);
//   - LowCommGreenBackend: per-sub-domain local convolution with octree
//     compression and sparse accumulation (Algorithm 2, this paper).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/decomposition.hpp"
#include "core/local_convolver.hpp"
#include "fft/fft3d.hpp"
#include "massif/green_operator.hpp"
#include "massif/microstructure.hpp"
#include "tensor/tensor_field.hpp"

namespace lc::massif {

/// Strategy interface for the Γ ∗ σ convolution inside one iteration.
class GreenConvolutionBackend {
 public:
  virtual ~GreenConvolutionBackend() = default;

  /// Compute delta_eps = Γ ∗ sigma (all six Voigt components).
  virtual void apply(const SymTensorField& sigma,
                     SymTensorField& delta_eps) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Algorithm 1: dense full-grid FFTs.
class DenseGreenBackend final : public GreenConvolutionBackend {
 public:
  DenseGreenBackend(const Grid3& grid, const Lame& reference,
                    ThreadPool* pool = &ThreadPool::global());

  void apply(const SymTensorField& sigma, SymTensorField& delta_eps) override;
  [[nodiscard]] std::string name() const override { return "dense"; }

 private:
  Grid3 grid_;
  Lame ref_;
  fft::Fft3D plan_;
};

/// Algorithm 2: domain-decomposed local convolution with compression.
class LowCommGreenBackend final : public GreenConvolutionBackend {
 public:
  /// `subdomain`, `uniform_rate`/`far_rate`, `dense_halo` parameterise the
  /// decomposition and sampling exactly as core::LowCommParams does.
  struct Params {
    i64 subdomain = 16;
    i64 far_rate = 8;
    i64 dense_halo = 2;
    std::optional<i64> uniform_rate;
    std::size_t batch = 1024;
    sampling::Interpolation interpolation =
        sampling::Interpolation::kTrilinear;
    device::DeviceContext* device = nullptr;
    ThreadPool* pool = &ThreadPool::global();
  };

  LowCommGreenBackend(const Grid3& grid, const Lame& reference, Params params);

  void apply(const SymTensorField& sigma, SymTensorField& delta_eps) override;
  [[nodiscard]] std::string name() const override { return "lowcomm"; }

  /// Payload bytes one full Γ ∗ σ application would exchange (6 channels ×
  /// all sub-domains) — the per-iteration communication volume.
  [[nodiscard]] std::size_t exchange_bytes_per_apply() const;

 private:
  core::DomainDecomposition decomp_;
  Params params_;
  core::LocalConvolver convolver_;
  std::vector<std::shared_ptr<const sampling::Octree>> octrees_;
};

/// Convergence/progress report of one solve.
struct SolveReport {
  bool converged = false;
  int iterations = 0;
  std::vector<double> strain_change_history;  ///< ‖Δε‖/‖E‖ per iteration
};

/// Fixed-point update rule.
enum class Scheme {
  /// Moulinec–Suquet basic scheme (paper Algorithm 1): ε ← ε − Γ⁰∗σ.
  /// Convergence rate degrades linearly with the phase contrast.
  kBasic,
  /// Conjugate-gradient acceleration (Zeman et al. 2010): solve the
  /// Lippmann–Schwinger system (I + Γ⁰ δC) ε = E, δC = C(x) − C0, with CG
  /// — one Γ⁰ convolution per iteration, but iteration counts that scale
  /// ~sqrt(contrast). An extension beyond the paper (its legacy MASSIF
  /// uses the basic scheme); composes with either convolution backend.
  kConjugateGradient,
};

/// Solver options.
struct SolverOptions {
  double tolerance = 1e-6;
  int max_iterations = 200;
  Scheme scheme = Scheme::kBasic;
  /// Reference medium (λ0, μ0) used to form δC = C − C0 for the CG scheme;
  /// must match the backend's reference. Ignored by the basic scheme.
  Lame reference{};
};

/// The fixed-point solver, generic over the convolution backend.
class MassifSolver {
 public:
  MassifSolver(const Microstructure& micro, const Sym2& macro_strain,
               std::shared_ptr<GreenConvolutionBackend> backend,
               SolverOptions options = {});

  /// Run the chosen scheme to convergence (or max_iterations).
  SolveReport solve();

  [[nodiscard]] const SymTensorField& strain() const noexcept { return eps_; }
  [[nodiscard]] const SymTensorField& stress() const noexcept { return sig_; }
  [[nodiscard]] const Sym2& macro_strain() const noexcept { return macro_; }

  /// Volume-averaged stress (the homogenised response ⟨σ⟩ = C_eff : E).
  [[nodiscard]] Sym2 average_stress() const;

 private:
  void update_stress();
  SolveReport solve_basic();
  SolveReport solve_cg();

  const Microstructure& micro_;
  Sym2 macro_;
  std::shared_ptr<GreenConvolutionBackend> backend_;
  SolverOptions options_;
  SymTensorField eps_;
  SymTensorField sig_;
};

}  // namespace lc::massif
