// Cache-line / SIMD aligned allocation for numeric buffers.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace lc {

/// Allocation alignment used for all large numeric buffers (bytes).
/// 64 matches both AVX-512 vectors and common cache-line size, so adjacent
/// per-thread buffers never share a line (avoids false sharing).
inline constexpr std::size_t kAlignment = 64;

/// Standard-conforming allocator returning `kAlignment`-aligned storage.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    const std::size_t bytes = ((n * sizeof(T) + kAlignment - 1) / kAlignment) * kAlignment;
    void* p = std::aligned_alloc(kAlignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// Vector with SIMD/cache-line aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Grow-only aligned scratch buffer for transform workspaces.
///
/// Unlike AlignedVector::resize, ensure() never value-initializes: scratch
/// contents are unspecified by contract, so zeroing them is pure memset tax
/// (O(n) per growth, which repeated mixed-size transforms used to pay on
/// every size bump). Capacity grows geometrically (2x) so a sequence of
/// increasing requests settles after O(log n) allocations, and old contents
/// are NOT carried over on growth.
template <typename T>
class AlignedScratch {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "AlignedScratch holds raw uninitialized storage");

 public:
  AlignedScratch() = default;
  ~AlignedScratch() { std::free(buf_); }
  AlignedScratch(AlignedScratch&& o) noexcept
      : buf_(o.buf_), capacity_(o.capacity_) {
    o.buf_ = nullptr;
    o.capacity_ = 0;
  }
  AlignedScratch& operator=(AlignedScratch&& o) noexcept {
    if (this != &o) {
      std::free(buf_);
      buf_ = o.buf_;
      capacity_ = o.capacity_;
      o.buf_ = nullptr;
      o.capacity_ = 0;
    }
    return *this;
  }
  AlignedScratch(const AlignedScratch&) = delete;
  AlignedScratch& operator=(const AlignedScratch&) = delete;

  /// Span of at least n elements, contents unspecified (kAlignment-aligned).
  [[nodiscard]] std::span<T> ensure(std::size_t n) {
    if (n > capacity_) {
      const std::size_t want = std::max(n, 2 * capacity_);
      const std::size_t bytes =
          ((want * sizeof(T) + kAlignment - 1) / kAlignment) * kAlignment;
      void* p = std::aligned_alloc(kAlignment, bytes);
      if (p == nullptr) throw std::bad_alloc();
      std::free(buf_);
      buf_ = static_cast<T*>(p);
      capacity_ = bytes / sizeof(T);
    }
    return {buf_, n};
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  T* buf_ = nullptr;
  std::size_t capacity_ = 0;
};

}  // namespace lc
