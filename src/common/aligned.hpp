// Cache-line / SIMD aligned allocation for numeric buffers.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace lc {

/// Allocation alignment used for all large numeric buffers (bytes).
/// 64 matches both AVX-512 vectors and common cache-line size, so adjacent
/// per-thread buffers never share a line (avoids false sharing).
inline constexpr std::size_t kAlignment = 64;

/// Standard-conforming allocator returning `kAlignment`-aligned storage.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    const std::size_t bytes = ((n * sizeof(T) + kAlignment - 1) / kAlignment) * kAlignment;
    void* p = std::aligned_alloc(kAlignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// Vector with SIMD/cache-line aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace lc
