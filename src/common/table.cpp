#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace lc {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  os << "=== " << title_ << " ===\n";
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string();
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cell;
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (auto w : width) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void TextTable::print() const { std::fputs(str().c_str(), stdout); }

std::string format_bytes_gb(double bytes, int precision) {
  return format_fixed(bytes / (1024.0 * 1024.0 * 1024.0), precision);
}

std::string format_fixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace lc
