// Plain-text table formatter used by the bench harnesses to print the same
// rows the paper's tables report.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lc {

/// Column-aligned ASCII table with a title, header and rows of strings.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// Set the header row.
  void header(std::vector<std::string> cells);

  /// Append a data row. Row width may be ragged; missing cells print empty.
  void row(std::vector<std::string> cells);

  /// Render the full table (title, rule, header, rows).
  [[nodiscard]] std::string str() const;

  /// Render and write to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a byte count using binary units ("1.29 GB" style, matching the
/// paper's tables which use GB).
[[nodiscard]] std::string format_bytes_gb(double bytes, int precision = 2);

/// Format a double with fixed precision.
[[nodiscard]] std::string format_fixed(double value, int precision = 2);

}  // namespace lc
