#include "common/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lc {

namespace {

// Pool-wide metrics (shared across pools: the global pool dominates and the
// registry aggregates process-wide). queue_wait is the time a task sat in
// tasks_ before a worker picked it up; busy_ns / tasks give utilization when
// divided by workers × wall time.
struct PoolMetrics {
  obs::Histogram& queue_wait = obs::Registry::global().histogram(
      "pool.queue_wait_seconds");
  obs::Counter& tasks = obs::Registry::global().counter("pool.tasks");
  obs::Counter& busy_ns = obs::Registry::global().counter("pool.busy_ns");

  static PoolMetrics& get() {
    static PoolMetrics m;
    return m;
  }
};

// Which pool (if any) owns the current thread. Lets parallel_for_blocks
// reject re-entrant calls from its own workers, which would otherwise
// deadlock: the caller blocks on completion while occupying the very worker
// slot its sub-tasks need.
thread_local const ThreadPool* t_worker_of = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    LC_CHECK(!stopping_, "submit() on a stopping pool");
    tasks_.push(QueuedTask{std::move(task), std::chrono::steady_clock::now()});
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

bool ThreadPool::on_worker_thread() const noexcept {
  return t_worker_of == this;
}

void ThreadPool::worker_loop() {
  t_worker_of = this;
  PoolMetrics& metrics = PoolMetrics::get();
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    const auto picked_up = std::chrono::steady_clock::now();
    metrics.queue_wait.record(
        std::chrono::duration<double>(picked_up - task.enqueued).count());
    {
      LC_TRACE("pool.task");
      task.fn();
    }
    metrics.tasks.add();
    metrics.busy_ns.add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - picked_up)
            .count()));
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_blocks(begin, end,
                      [&body](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) body(i);
                      });
}

void ThreadPool::parallel_for_blocks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  LC_CHECK(!on_worker_thread(),
           "parallel_for_blocks called from inside one of this pool's own "
           "workers; this would deadlock — use a separate pool for nesting");
  const std::size_t n = end - begin;
  const std::size_t blocks = std::min(n, size());
  if (blocks <= 1) {
    body(begin, end);
    return;
  }

  // Completion state shared with the workers. Everything here lives on the
  // caller's stack, so the protocol must guarantee the caller cannot wake
  // and return while any worker still touches it: the counter decrement is
  // the worker's LAST access and happens under done_mutex, which makes the
  // waiter's predicate (remaining == 0) observable only after the final
  // worker is done with the condition variable and about to release the
  // mutex. (The previous design decremented an atomic outside the lock and
  // raced teardown against the final notify — see tests/stress.)
  std::exception_ptr first_error;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = blocks;  // guarded by done_mutex

  const std::size_t chunk = (n + blocks - 1) / blocks;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = begin + b * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    submit([&, lo, hi] {
      std::exception_ptr error;
      try {
        if (lo < hi) body(lo, hi);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard lock(done_mutex);
      if (error && !first_error) first_error = std::move(error);
      if (--remaining == 0) done_cv.notify_all();
    });
  }

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace lc
