#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/check.hpp"

namespace lc {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    LC_CHECK(!stopping_, "submit() on a stopping pool");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_blocks(begin, end,
                      [&body](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) body(i);
                      });
}

void ThreadPool::parallel_for_blocks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t blocks = std::min(n, size());
  if (blocks <= 1) {
    body(begin, end);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<std::size_t> remaining{blocks};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  const std::size_t chunk = (n + blocks - 1) / blocks;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = begin + b * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    submit([&, lo, hi] {
      try {
        if (lo < hi) body(lo, hi);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace lc
