// Error-handling primitives shared by every lowcomm3d module.
//
// The library reports contract violations and unsatisfiable requests by
// throwing exceptions derived from `lc::Error`; hot inner loops use
// `LC_ASSERT`, which compiles away in NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lc {

/// Base class for all errors thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad sizes, null spans, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A resource limit was exceeded (e.g. simulated device memory capacity).
class ResourceExhausted : public Error {
 public:
  explicit ResourceExhausted(const std::string& what) : Error(what) {}
};

/// An internal invariant failed; indicates a bug in the library itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "LC_CHECK_ARG") throw InvalidArgument(os.str());
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace lc

/// Validate a caller-supplied argument; throws lc::InvalidArgument on failure.
/// Always on, including release builds: these guard the public API surface.
#define LC_CHECK_ARG(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::lc::detail::throw_check_failure("LC_CHECK_ARG", #expr, __FILE__,     \
                                        __LINE__, (msg));                    \
    }                                                                        \
  } while (false)

/// Validate an internal invariant; throws lc::InternalError on failure.
#define LC_CHECK(expr, msg)                                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::lc::detail::throw_check_failure("LC_CHECK", #expr, __FILE__,         \
                                        __LINE__, (msg));                    \
    }                                                                        \
  } while (false)

/// Debug-only assertion for hot paths; disappears under NDEBUG.
#ifdef NDEBUG
#define LC_ASSERT(expr) ((void)0)
#else
#define LC_ASSERT(expr)                                                      \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::lc::detail::throw_check_failure("LC_ASSERT", #expr, __FILE__,        \
                                        __LINE__, std::string());            \
    }                                                                        \
  } while (false)
#endif
