// A small work-stealing-free thread pool with a blocking parallel_for.
//
// Used for shared-memory parallelism inside one simulated "worker node"
// (batched pencil FFTs, pointwise kernels). Distributed parallelism across
// nodes is modelled separately by comm::SimCluster.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lc {

/// Fixed-size thread pool. Tasks are `void()` callables; `parallel_for`
/// partitions an index range into contiguous blocks, one per worker.
class ThreadPool {
 public:
  /// Create a pool with `threads` workers (0 → hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run `body(i)` for i in [begin, end), partitioned into contiguous
  /// blocks across the pool. Blocks until complete. Exceptions thrown by
  /// `body` are rethrown on the calling thread (first one wins) and the
  /// pool remains usable afterwards. Must NOT be called from one of this
  /// pool's own worker threads (throws lc::InternalError; such a call
  /// would deadlock waiting on a worker slot the caller occupies).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Like parallel_for but hands each worker a [blockBegin, blockEnd)
  /// range, letting the body amortise per-block setup. Same blocking,
  /// exception, and no-reentrancy contract as parallel_for.
  void parallel_for_blocks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// True when the calling thread is one of this pool's workers (the
  /// re-entrancy guard parallel_for uses; exposed for callers that want to
  /// degrade to serial execution instead of throwing).
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// Process-wide default pool, sized to hardware concurrency.
  static ThreadPool& global();

 private:
  // Each queued task carries its enqueue time so the worker can account
  // queue wait (obs metric "pool.queue_wait_seconds") when it picks it up.
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace lc
