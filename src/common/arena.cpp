#include "common/arena.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace lc {

BufferArena::Lease& BufferArena::Lease::operator=(Lease&& o) noexcept {
  if (this != &o) {
    release();
    arena_ = std::exchange(o.arena_, nullptr);
    buf_ = std::move(o.buf_);
    bytes_ = std::exchange(o.bytes_, 0);
  }
  return *this;
}

void BufferArena::Lease::release() noexcept {
  if (bytes_ == 0 && buf_.empty()) return;
  if (arena_ != nullptr) {
    arena_->give_back(std::move(buf_), bytes_);
    arena_ = nullptr;
  }
  buf_ = AlignedVector<std::byte>();
  bytes_ = 0;
}

BufferArena::BufferArena(std::size_t retain_limit_bytes, ByteHook byte_hook)
    : retain_limit_(retain_limit_bytes), byte_hook_(std::move(byte_hook)) {}

BufferArena::~BufferArena() { trim(); }

BufferArena::Lease BufferArena::acquire(std::size_t bytes) {
  LC_CHECK_ARG(bytes > 0, "arena lease must be non-empty");
  Lease lease;
  lease.bytes_ = bytes;
  {
    std::lock_guard lock(mutex_);
    ++stats_.acquires;
    auto it = free_.lower_bound(bytes);
    // Accept a pooled buffer only when it doesn't waste more than half its
    // capacity on this request; oversized leftovers stay pooled for bigger
    // requests.
    if (it != free_.end() && it->first <= bytes * 2) {
      lease.arena_ = this;
      lease.buf_ = std::move(it->second);
      // The pooled buffer's size may trail this (larger) request even
      // though its capacity covers it; grow in place so as<T>() spans
      // live elements.
      if (lease.buf_.size() < bytes) lease.buf_.resize(bytes);
      stats_.retained_bytes -= it->first;
      stats_.outstanding_bytes += it->first;
      stats_.bytes_reused += bytes;
      ++stats_.reuses;
      free_.erase(it);
      return lease;
    }
  }
  // Fresh allocation outside the lock; footprint grows by the capacity.
  if (byte_hook_) byte_hook_(static_cast<std::ptrdiff_t>(bytes));
  try {
    lease.buf_.resize(bytes);
  } catch (...) {
    if (byte_hook_) byte_hook_(-static_cast<std::ptrdiff_t>(bytes));
    throw;
  }
  lease.arena_ = this;
  // Account the actual capacity so release() balances exactly even if the
  // vector over-allocated.
  const std::size_t cap = lease.buf_.capacity();
  if (cap != bytes && byte_hook_) {
    byte_hook_(static_cast<std::ptrdiff_t>(cap) -
               static_cast<std::ptrdiff_t>(bytes));
  }
  {
    std::lock_guard lock(mutex_);
    stats_.bytes_allocated += cap;
    stats_.outstanding_bytes += cap;
  }
  return lease;
}

BufferArena::Lease BufferArena::unpooled(std::size_t bytes) {
  LC_CHECK_ARG(bytes > 0, "arena lease must be non-empty");
  Lease lease;
  lease.buf_.resize(bytes);
  lease.bytes_ = bytes;
  return lease;  // arena_ stays null → freed on release
}

void BufferArena::give_back(AlignedVector<std::byte> buf,
                            std::size_t /*bytes*/) noexcept {
  const std::size_t cap = buf.capacity();
  bool kept = false;
  {
    std::lock_guard lock(mutex_);
    stats_.outstanding_bytes -= cap;
    if (stats_.retained_bytes + cap <= retain_limit_) {
      stats_.retained_bytes += cap;
      free_.emplace(cap, std::move(buf));
      kept = true;
    }
  }
  if (!kept) {
    buf = AlignedVector<std::byte>();  // free before reporting shrink
    if (byte_hook_) byte_hook_(-static_cast<std::ptrdiff_t>(cap));
  }
}

void BufferArena::trim() {
  std::multimap<std::size_t, AlignedVector<std::byte>> doomed;
  std::size_t freed = 0;
  {
    std::lock_guard lock(mutex_);
    doomed.swap(free_);
    freed = stats_.retained_bytes;
    stats_.retained_bytes = 0;
  }
  doomed.clear();
  if (byte_hook_ && freed > 0) byte_hook_(-static_cast<std::ptrdiff_t>(freed));
}

BufferArena::Stats BufferArena::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace lc
