// Deterministic, seedable random number generation.
//
// All workload generators in the repository draw from this engine so every
// test and bench is reproducible bit-for-bit across runs and platforms.
#pragma once

#include <cstdint>

namespace lc {

/// SplitMix64: tiny, fast, high-quality 64-bit generator. Used directly and
/// as the seeding procedure for workload generators.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) noexcept { return next() % n; }

 private:
  std::uint64_t state_;
};

}  // namespace lc
