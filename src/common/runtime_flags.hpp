// Process-wide execution-path flags read from the environment.
//
// Every LC_* choice flag goes through env_choice(): unset picks the
// default, a listed spelling picks that value, and anything else throws
// InvalidArgument naming the variable, the bad value, and the accepted
// spellings — a silent fallback hid typos like LC_PLANNER=prob for whole
// runs. The flags sharing the helper:
//
//   LC_REAL=auto|off                    half-spectrum dispatch (DESIGN.md §16)
//   LC_PLANNER=analytic|probe|off       planner mode (planner::mode_from_env)
//   LC_ASSIGNMENT=blockedmorton|roundrobin   rank-assignment A/B switch
//   LC_WIRE=off|fp32|fp16|bf16|q16      exchange payload codec (DESIGN.md §17)
#pragma once

#include <cstdlib>
#include <initializer_list>
#include <string>
#include <string_view>

#include "common/check.hpp"

namespace lc {

/// Parse the choice-valued environment variable `name`: returns the index
/// of the matching spelling in `allowed` (or `fallback_index` when unset).
/// Throws InvalidArgument on an unrecognised value.
[[nodiscard]] inline std::size_t env_choice(
    const char* name, std::size_t fallback_index,
    std::initializer_list<std::string_view> allowed) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback_index;
  const std::string_view v(env);
  std::size_t i = 0;
  for (const std::string_view a : allowed) {
    if (v == a) return i;
    ++i;
  }
  std::string msg(name);
  msg += "='";
  msg += v;
  msg += "' is not a recognised value (expected one of:";
  for (const std::string_view a : allowed) {
    msg += ' ';
    msg += a;
  }
  msg += ')';
  throw InvalidArgument(msg);
}

/// True unless LC_REAL=off. Read per call (engine construction only, never
/// inner loops) so tests can toggle the environment between engines.
[[nodiscard]] inline bool real_path_enabled() {
  return env_choice("LC_REAL", 0, {"auto", "off"}) == 0;
}

}  // namespace lc
