// Process-wide execution-path flags read from the environment.
//
// LC_REAL=auto|off gates the Hermitian half-spectrum (r2c/c2r) execution
// path of the local pipeline (DESIGN.md §16). `auto` (the default) lets
// engines whose spectral operator is Hermitian-symmetric transform only
// the nx/2+1 x-bins; `off` forces the full complex path everywhere — the
// bit-exact ground truth the real path is validated against.
#pragma once

#include <cstdlib>
#include <cstring>

namespace lc {

/// True unless LC_REAL=off. Read per call (engine construction only, never
/// inner loops) so tests can toggle the environment between engines.
[[nodiscard]] inline bool real_path_enabled() noexcept {
  const char* env = std::getenv("LC_REAL");
  return env == nullptr || std::strcmp(env, "off") != 0;
}

}  // namespace lc
