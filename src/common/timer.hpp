// Monotonic wall-clock timing helpers used by benches and solvers.
#pragma once

#include <chrono>

namespace lc {

/// Simple monotonic stopwatch. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII timer: measures the enclosing scope and feeds the elapsed seconds
/// to `sink.record(double)` on destruction. Any sink with that shape works
/// — obs::Histogram for distributions, SecondsAccumulator for plain totals:
///
///   obs::Histogram latency;
///   { ScopedTimer timer(latency); run_request(); }   // records once
template <typename Sink>
class ScopedTimer {
 public:
  explicit ScopedTimer(Sink& sink) noexcept : sink_(sink) {}
  ~ScopedTimer() { sink_.record(watch_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Sink& sink_;
  Stopwatch watch_;
};

/// Minimal ScopedTimer sink: running total of recorded seconds. Replaces
/// the benches' `Stopwatch sw; ...; total += sw.seconds()` boilerplate.
struct SecondsAccumulator {
  double seconds = 0.0;
  void record(double s) noexcept { seconds += s; }
  [[nodiscard]] double millis() const noexcept { return seconds * 1e3; }
};

}  // namespace lc
