// BufferArena: a thread-safe recycling pool for large scratch buffers.
//
// The local convolution pipeline needs tens of megabytes of slab / staging /
// pencil scratch per request. Allocating them fresh every time pays both
// malloc and first-touch page-fault cost; a serving runtime issues thousands
// of such requests, so the arena keeps released buffers on a free list and
// hands them back to the next request of a compatible size. Buffers are
// leased RAII-style; a lease can also be created "unpooled" so call sites
// keep a single code path whether or not an arena is wired in.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <span>

#include "common/aligned.hpp"

namespace lc {

/// Recycling pool of aligned byte buffers. All methods are thread-safe.
class BufferArena {
 public:
  /// Cumulative and instantaneous accounting (bytes_reused is the total
  /// demand served from the free list — the "bytes reused" a service
  /// reports).
  struct Stats {
    std::size_t acquires = 0;          ///< total acquire() calls
    std::size_t reuses = 0;            ///< acquires served from the pool
    std::size_t bytes_allocated = 0;   ///< cumulative fresh allocation
    std::size_t bytes_reused = 0;      ///< cumulative pooled bytes served
    std::size_t retained_bytes = 0;    ///< currently pooled (idle) bytes
    std::size_t outstanding_bytes = 0; ///< currently leased bytes
  };

  /// Signed byte delta applied whenever the arena's total footprint
  /// (retained + outstanding) grows or shrinks — the hook a runtime uses to
  /// mirror arena memory into a device::DeviceContext without this layer
  /// depending on device. May throw on growth (e.g. ResourceExhausted); the
  /// triggering acquire() then fails without leaking accounting.
  using ByteHook = std::function<void(std::ptrdiff_t delta)>;

  /// RAII lease of one buffer. Returns the buffer to its arena (or frees
  /// it, for unpooled leases) on destruction or release().
  class Lease {
   public:
    Lease() = default;
    ~Lease() { release(); }
    Lease(Lease&& o) noexcept { *this = std::move(o); }
    Lease& operator=(Lease&& o) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    /// Usable size (the byte count passed to acquire, not the capacity).
    [[nodiscard]] std::size_t size_bytes() const noexcept { return bytes_; }
    [[nodiscard]] bool empty() const noexcept { return bytes_ == 0; }

    /// The leased storage viewed as a span of T (kAlignment-aligned).
    template <typename T>
    [[nodiscard]] std::span<T> as() noexcept {
      return {reinterpret_cast<T*>(buf_.data()), bytes_ / sizeof(T)};
    }

    /// Return the buffer early (no-op on an empty lease).
    void release() noexcept;

   private:
    friend class BufferArena;
    BufferArena* arena_ = nullptr;  // nullptr → unpooled
    AlignedVector<std::byte> buf_;
    std::size_t bytes_ = 0;
  };

  /// `retain_limit_bytes` caps the idle free-list size: buffers released
  /// beyond it are freed instead of pooled.
  explicit BufferArena(std::size_t retain_limit_bytes = 1ull << 30,
                       ByteHook byte_hook = nullptr);
  ~BufferArena();

  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  /// Lease a buffer of at least `bytes`. Reuses the smallest pooled buffer
  /// whose capacity is within 2× of the request (avoiding pathological
  /// waste), else allocates fresh. Contents are unspecified.
  [[nodiscard]] Lease acquire(std::size_t bytes);

  /// One-shot plain allocation with the same Lease interface (no pooling);
  /// lets callers use arena-or-heap uniformly.
  [[nodiscard]] static Lease unpooled(std::size_t bytes);

  /// Free every idle pooled buffer (leased buffers are unaffected).
  void trim();

  [[nodiscard]] Stats stats() const;

 private:
  void give_back(AlignedVector<std::byte> buf, std::size_t bytes) noexcept;

  mutable std::mutex mutex_;
  std::multimap<std::size_t, AlignedVector<std::byte>> free_;  // capacity → buf
  Stats stats_;
  std::size_t retain_limit_;
  ByteHook byte_hook_;
};

}  // namespace lc
