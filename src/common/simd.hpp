// Portable double-precision SIMD wrapper for the FFT compute engine.
//
// One vector type `Vd` of `kLanes` doubles with the handful of operations
// the batched butterflies need: load/store, broadcast, +, -, *, and fused
// multiply-add/subtract. Backend is chosen at configure time:
//
//   - AVX2 + FMA (x86):  4 lanes  (enabled when the compiler sets __AVX2__,
//                                   e.g. via -march=native; see LC_SIMD in
//                                   the top-level CMakeLists)
//   - NEON (aarch64):    2 lanes
//   - scalar fallback:   1 lane   (forced with -DLC_SIMD_SCALAR=1, cmake
//                                   -DLC_SIMD=off; also the default when no
//                                   vector ISA is detected)
//
// The batch-major FFT path keeps real and imaginary planes separate (SoA),
// so complex arithmetic is plain mul/fma on independent vectors and no
// backend needs shuffle or permute support. The only interleaved-complex
// helper is `complex_mul_inplace`, used by the spectral pointwise multiply.
#pragma once

#include <complex>
#include <cstddef>

#if !defined(LC_SIMD_SCALAR) && defined(__AVX2__) && defined(__FMA__)
#define LC_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(LC_SIMD_SCALAR) && defined(__ARM_NEON)
#define LC_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace lc::simd {

#if defined(LC_SIMD_AVX2)

inline constexpr std::size_t kLanes = 4;
inline constexpr const char* kBackend = "avx2";

using Vd = __m256d;

inline Vd load(const double* p) noexcept { return _mm256_loadu_pd(p); }
inline void store(double* p, Vd v) noexcept { _mm256_storeu_pd(p, v); }
inline Vd broadcast(double x) noexcept { return _mm256_set1_pd(x); }
inline Vd add(Vd a, Vd b) noexcept { return _mm256_add_pd(a, b); }
inline Vd sub(Vd a, Vd b) noexcept { return _mm256_sub_pd(a, b); }
inline Vd mul(Vd a, Vd b) noexcept { return _mm256_mul_pd(a, b); }
/// a*b + c
inline Vd fmadd(Vd a, Vd b, Vd c) noexcept { return _mm256_fmadd_pd(a, b, c); }
/// a*b - c
inline Vd fmsub(Vd a, Vd b, Vd c) noexcept { return _mm256_fmsub_pd(a, b, c); }

#elif defined(LC_SIMD_NEON)

inline constexpr std::size_t kLanes = 2;
inline constexpr const char* kBackend = "neon";

using Vd = float64x2_t;

inline Vd load(const double* p) noexcept { return vld1q_f64(p); }
inline void store(double* p, Vd v) noexcept { vst1q_f64(p, v); }
inline Vd broadcast(double x) noexcept { return vdupq_n_f64(x); }
inline Vd add(Vd a, Vd b) noexcept { return vaddq_f64(a, b); }
inline Vd sub(Vd a, Vd b) noexcept { return vsubq_f64(a, b); }
inline Vd mul(Vd a, Vd b) noexcept { return vmulq_f64(a, b); }
inline Vd fmadd(Vd a, Vd b, Vd c) noexcept { return vfmaq_f64(c, a, b); }
inline Vd fmsub(Vd a, Vd b, Vd c) noexcept {
  return vnegq_f64(vfmsq_f64(c, a, b));  // -(c - a*b) = a*b - c
}

#else

inline constexpr std::size_t kLanes = 1;
inline constexpr const char* kBackend = "scalar";

using Vd = double;

inline Vd load(const double* p) noexcept { return *p; }
inline void store(double* p, Vd v) noexcept { *p = v; }
inline Vd broadcast(double x) noexcept { return x; }
inline Vd add(Vd a, Vd b) noexcept { return a + b; }
inline Vd sub(Vd a, Vd b) noexcept { return a - b; }
inline Vd mul(Vd a, Vd b) noexcept { return a * b; }
inline Vd fmadd(Vd a, Vd b, Vd c) noexcept { return a * b + c; }
inline Vd fmsub(Vd a, Vd b, Vd c) noexcept { return a * b - c; }

#endif

/// dst[i] = w * src[i] for i in [0, n): first term of a weighted row sum.
inline void row_scale(double* dst, const double* src, double w,
                      std::size_t n) noexcept {
  const Vd vw = broadcast(w);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) store(dst + i, mul(vw, load(src + i)));
  for (; i < n; ++i) dst[i] = w * src[i];
}

/// dst[i] += w * src[i] for i in [0, n): the row-interpolation axpy.
inline void row_axpy(double* dst, const double* src, double w,
                     std::size_t n) noexcept {
  const Vd vw = broadcast(w);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    store(dst + i, fmadd(vw, load(src + i), load(dst + i)));
  }
  for (; i < n; ++i) dst[i] += w * src[i];
}

/// dst[i] += w0[i]*c0 + w1[i]*c1 + w2[i]*c2 + w3[i]*c3 for i in [0, n):
/// the per-phase x-row kernel of separable interpolation — four broadcast
/// stencil values against four per-point weight lanes.
inline void row_weighted4_add(double* dst, const double* w0, const double* w1,
                              const double* w2, const double* w3, double c0,
                              double c1, double c2, double c3,
                              std::size_t n) noexcept {
  const Vd v0 = broadcast(c0);
  const Vd v1 = broadcast(c1);
  const Vd v2 = broadcast(c2);
  const Vd v3 = broadcast(c3);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    Vd acc = load(dst + i);
    acc = fmadd(load(w0 + i), v0, acc);
    acc = fmadd(load(w1 + i), v1, acc);
    acc = fmadd(load(w2 + i), v2, acc);
    acc = fmadd(load(w3 + i), v3, acc);
    store(dst + i, acc);
  }
  for (; i < n; ++i) {
    dst[i] += w0[i] * c0 + w1[i] * c1 + w2[i] * c2 + w3[i] * c3;
  }
}

/// Two-tap variant of row_weighted4_add: dst[i] += w1[i]·c1 + w2[i]·c2.
/// The linear-interpolation fast path — taps 0 and 3 of a trilinear
/// stencil are identically zero, so skipping them halves the fmadds.
inline void row_weighted2_add(double* dst, const double* w1, const double* w2,
                              double c1, double c2, std::size_t n) noexcept {
  const Vd v1 = broadcast(c1);
  const Vd v2 = broadcast(c2);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    Vd acc = load(dst + i);
    acc = fmadd(load(w1 + i), v1, acc);
    acc = fmadd(load(w2 + i), v2, acc);
    store(dst + i, acc);
  }
  for (; i < n; ++i) {
    dst[i] += w1[i] * c1 + w2[i] * c2;
  }
}

/// dst[i] += a + (b - a)·t[i]: one linear-interpolation row with broadcast
/// endpoints and a per-point fraction lane (the single-interval-cell fast
/// path of octree reconstruction).
inline void row_lerp_add(double* dst, const double* t, double a, double b,
                         std::size_t n) noexcept {
  const Vd va = broadcast(a);
  const Vd vd = broadcast(b - a);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    store(dst + i, add(load(dst + i), fmadd(vd, load(t + i), va)));
  }
  const double d = b - a;
  for (; i < n; ++i) dst[i] += a + d * t[i];
}

/// Pointwise in-place complex multiply on interleaved storage:
/// a[i] *= b[i] for i in [0, n). The vector path multiplies kLanes/2
/// complex values per step without deinterleaving (dup-even / dup-odd +
/// fmaddsub); the tail and the scalar backend use plain complex math.
inline void complex_mul_inplace(std::complex<double>* a,
                                const std::complex<double>* b,
                                std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(LC_SIMD_AVX2)
  auto* pa = reinterpret_cast<double*>(a);
  const auto* pb = reinterpret_cast<const double*>(b);
  for (; i + 2 <= n; i += 2) {
    const __m256d va = _mm256_loadu_pd(pa + 2 * i);
    const __m256d vb = _mm256_loadu_pd(pb + 2 * i);
    const __m256d br = _mm256_movedup_pd(vb);          // [b0r b0r b1r b1r]
    const __m256d bi = _mm256_permute_pd(vb, 0xF);     // [b0i b0i b1i b1i]
    const __m256d as = _mm256_permute_pd(va, 0x5);     // [a0i a0r a1i a1r]
    // even lanes: ar*br - ai*bi; odd lanes: ai*br + ar*bi
    _mm256_storeu_pd(pa + 2 * i,
                     _mm256_fmaddsub_pd(va, br, _mm256_mul_pd(as, bi)));
  }
#endif
  for (; i < n; ++i) a[i] *= b[i];
}

}  // namespace lc::simd
