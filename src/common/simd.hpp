// Portable double-precision SIMD wrapper for the FFT compute engine.
//
// One vector type `Vd` of `kLanes` doubles with the handful of operations
// the batched butterflies need: load/store, broadcast, +, -, *, and fused
// multiply-add/subtract. Backend is chosen at configure time:
//
//   - AVX2 + FMA (x86):  4 lanes  (enabled when the compiler sets __AVX2__,
//                                   e.g. via -march=native; see LC_SIMD in
//                                   the top-level CMakeLists)
//   - NEON (aarch64):    2 lanes
//   - scalar fallback:   1 lane   (forced with -DLC_SIMD_SCALAR=1, cmake
//                                   -DLC_SIMD=off; also the default when no
//                                   vector ISA is detected)
//
// The batch-major FFT path keeps real and imaginary planes separate (SoA),
// so complex arithmetic is plain mul/fma on independent vectors and no
// backend needs shuffle or permute support. The only interleaved-complex
// helper is `complex_mul_inplace`, used by the spectral pointwise multiply.
#pragma once

#include <bit>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if !defined(LC_SIMD_SCALAR) && defined(__AVX2__) && defined(__FMA__)
#define LC_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(LC_SIMD_SCALAR) && defined(__ARM_NEON)
#define LC_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace lc::simd {

#if defined(LC_SIMD_AVX2)

inline constexpr std::size_t kLanes = 4;
inline constexpr const char* kBackend = "avx2";

using Vd = __m256d;

inline Vd load(const double* p) noexcept { return _mm256_loadu_pd(p); }
inline void store(double* p, Vd v) noexcept { _mm256_storeu_pd(p, v); }
inline Vd broadcast(double x) noexcept { return _mm256_set1_pd(x); }
inline Vd add(Vd a, Vd b) noexcept { return _mm256_add_pd(a, b); }
inline Vd sub(Vd a, Vd b) noexcept { return _mm256_sub_pd(a, b); }
inline Vd mul(Vd a, Vd b) noexcept { return _mm256_mul_pd(a, b); }
/// a*b + c
inline Vd fmadd(Vd a, Vd b, Vd c) noexcept { return _mm256_fmadd_pd(a, b, c); }
/// a*b - c
inline Vd fmsub(Vd a, Vd b, Vd c) noexcept { return _mm256_fmsub_pd(a, b, c); }

#elif defined(LC_SIMD_NEON)

inline constexpr std::size_t kLanes = 2;
inline constexpr const char* kBackend = "neon";

using Vd = float64x2_t;

inline Vd load(const double* p) noexcept { return vld1q_f64(p); }
inline void store(double* p, Vd v) noexcept { vst1q_f64(p, v); }
inline Vd broadcast(double x) noexcept { return vdupq_n_f64(x); }
inline Vd add(Vd a, Vd b) noexcept { return vaddq_f64(a, b); }
inline Vd sub(Vd a, Vd b) noexcept { return vsubq_f64(a, b); }
inline Vd mul(Vd a, Vd b) noexcept { return vmulq_f64(a, b); }
inline Vd fmadd(Vd a, Vd b, Vd c) noexcept { return vfmaq_f64(c, a, b); }
inline Vd fmsub(Vd a, Vd b, Vd c) noexcept {
  return vnegq_f64(vfmsq_f64(c, a, b));  // -(c - a*b) = a*b - c
}

#else

inline constexpr std::size_t kLanes = 1;
inline constexpr const char* kBackend = "scalar";

using Vd = double;

inline Vd load(const double* p) noexcept { return *p; }
inline void store(double* p, Vd v) noexcept { *p = v; }
inline Vd broadcast(double x) noexcept { return x; }
inline Vd add(Vd a, Vd b) noexcept { return a + b; }
inline Vd sub(Vd a, Vd b) noexcept { return a - b; }
inline Vd mul(Vd a, Vd b) noexcept { return a * b; }
inline Vd fmadd(Vd a, Vd b, Vd c) noexcept { return a * b + c; }
inline Vd fmsub(Vd a, Vd b, Vd c) noexcept { return a * b - c; }

#endif

/// dst[i] = w * src[i] for i in [0, n): first term of a weighted row sum.
inline void row_scale(double* dst, const double* src, double w,
                      std::size_t n) noexcept {
  const Vd vw = broadcast(w);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) store(dst + i, mul(vw, load(src + i)));
  for (; i < n; ++i) dst[i] = w * src[i];
}

/// dst[i] += w * src[i] for i in [0, n): the row-interpolation axpy.
inline void row_axpy(double* dst, const double* src, double w,
                     std::size_t n) noexcept {
  const Vd vw = broadcast(w);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    store(dst + i, fmadd(vw, load(src + i), load(dst + i)));
  }
  for (; i < n; ++i) dst[i] += w * src[i];
}

/// dst[i] += w0[i]*c0 + w1[i]*c1 + w2[i]*c2 + w3[i]*c3 for i in [0, n):
/// the per-phase x-row kernel of separable interpolation — four broadcast
/// stencil values against four per-point weight lanes.
inline void row_weighted4_add(double* dst, const double* w0, const double* w1,
                              const double* w2, const double* w3, double c0,
                              double c1, double c2, double c3,
                              std::size_t n) noexcept {
  const Vd v0 = broadcast(c0);
  const Vd v1 = broadcast(c1);
  const Vd v2 = broadcast(c2);
  const Vd v3 = broadcast(c3);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    Vd acc = load(dst + i);
    acc = fmadd(load(w0 + i), v0, acc);
    acc = fmadd(load(w1 + i), v1, acc);
    acc = fmadd(load(w2 + i), v2, acc);
    acc = fmadd(load(w3 + i), v3, acc);
    store(dst + i, acc);
  }
  for (; i < n; ++i) {
    dst[i] += w0[i] * c0 + w1[i] * c1 + w2[i] * c2 + w3[i] * c3;
  }
}

/// Two-tap variant of row_weighted4_add: dst[i] += w1[i]·c1 + w2[i]·c2.
/// The linear-interpolation fast path — taps 0 and 3 of a trilinear
/// stencil are identically zero, so skipping them halves the fmadds.
inline void row_weighted2_add(double* dst, const double* w1, const double* w2,
                              double c1, double c2, std::size_t n) noexcept {
  const Vd v1 = broadcast(c1);
  const Vd v2 = broadcast(c2);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    Vd acc = load(dst + i);
    acc = fmadd(load(w1 + i), v1, acc);
    acc = fmadd(load(w2 + i), v2, acc);
    store(dst + i, acc);
  }
  for (; i < n; ++i) {
    dst[i] += w1[i] * c1 + w2[i] * c2;
  }
}

/// dst[i] += a + (b - a)·t[i]: one linear-interpolation row with broadcast
/// endpoints and a per-point fraction lane (the single-interval-cell fast
/// path of octree reconstruction).
inline void row_lerp_add(double* dst, const double* t, double a, double b,
                         std::size_t n) noexcept {
  const Vd va = broadcast(a);
  const Vd vd = broadcast(b - a);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    store(dst + i, add(load(dst + i), fmadd(vd, load(t + i), va)));
  }
  const double d = b - a;
  for (; i < n; ++i) dst[i] += a + d * t[i];
}

/// Pointwise in-place complex multiply on interleaved storage:
/// a[i] *= b[i] for i in [0, n). The vector path multiplies kLanes/2
/// complex values per step without deinterleaving (dup-even / dup-odd +
/// fmaddsub); the tail and the scalar backend use plain complex math.
inline void complex_mul_inplace(std::complex<double>* a,
                                const std::complex<double>* b,
                                std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(LC_SIMD_AVX2)
  auto* pa = reinterpret_cast<double*>(a);
  const auto* pb = reinterpret_cast<const double*>(b);
  for (; i + 2 <= n; i += 2) {
    const __m256d va = _mm256_loadu_pd(pa + 2 * i);
    const __m256d vb = _mm256_loadu_pd(pb + 2 * i);
    const __m256d br = _mm256_movedup_pd(vb);          // [b0r b0r b1r b1r]
    const __m256d bi = _mm256_permute_pd(vb, 0xF);     // [b0i b0i b1i b1i]
    const __m256d as = _mm256_permute_pd(va, 0x5);     // [a0i a0r a1i a1r]
    // even lanes: ar*br - ai*bi; odd lanes: ai*br + ar*bi
    _mm256_storeu_pd(pa + 2 * i,
                     _mm256_fmaddsub_pd(va, br, _mm256_mul_pd(as, bi)));
  }
#endif
  for (; i < n; ++i) a[i] *= b[i];
}

// ---------------------------------------------------------------------------
// Narrow-precision row conversions for the exchange wire codec
// (comm/wire_codec.hpp, DESIGN.md §17). The scalar bit algorithms below are
// the ground truth; the AVX2/F16C fast paths are property-tested bit-equal
// against them (tests/test_wire_codec.cpp), and the LC_SIMD=off build runs
// the scalar forms exclusively. NaN payloads are not supported by the wire
// formats (fields are finite by construction); conversions assume finite
// inputs.

/// IEEE binary16 bits of `f`, round-to-nearest-even with saturation: any
/// float that would round to ±inf encodes as ±65504 (the wire codec also
/// clamps before converting, making this branch a backstop).
[[nodiscard]] inline std::uint16_t f32_to_f16_bits(float f) noexcept {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  const auto sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
  const std::uint32_t abs = bits & 0x7FFFFFFFu;
  if (abs >= 0x477FF000u) {  // rounds to >= 2^16 under RNE: saturate
    return static_cast<std::uint16_t>(sign | 0x7BFFu);
  }
  if (abs < 0x38800000u) {  // below the smallest normal half: subnormal/zero
    if (abs < 0x33000000u) return sign;  // < 2^-25 underflows to ±0
    const std::uint32_t m24 = (abs & 0x7FFFFFu) | 0x800000u;
    const int s = 126 - static_cast<int>(abs >> 23);  // 14..24
    std::uint32_t m = m24 >> s;
    const std::uint32_t rem = m24 & ((1u << s) - 1u);
    const std::uint32_t half = 1u << (s - 1);
    if (rem > half || (rem == half && (m & 1u))) ++m;
    return static_cast<std::uint16_t>(sign | m);  // m == 1024 rolls to 2^-14
  }
  const std::uint32_t exp = abs >> 23;  // normal: rebias 127 → 15, RNE
  std::uint32_t h = ((exp - 112u) << 10) | ((abs >> 13) & 0x3FFu);
  const std::uint32_t rem = abs & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;
  return static_cast<std::uint16_t>(sign | h);
}

/// Exact widening of binary16 bits (every half is a float).
[[nodiscard]] inline float f16_bits_to_f32(std::uint16_t h) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  const std::uint32_t man = h & 0x3FFu;
  std::uint32_t bits;
  if (exp == 0) {
    if (man == 0) {
      bits = sign;
    } else {  // subnormal half: value = man · 2^-24, renormalise
      const int b = 31 - std::countl_zero(man);  // position of the top bit
      bits = sign | (static_cast<std::uint32_t>(103 + b) << 23) |
             ((man << (23 - b)) & 0x7FFFFFu);
    }
  } else if (exp == 31) {
    bits = sign | 0x7F800000u | (man << 13);
  } else {
    bits = sign | ((exp + 112u) << 23) | (man << 13);
  }
  return std::bit_cast<float>(bits);
}

/// bfloat16 bits of `f` (top 16 bits of the float, round-to-nearest-even).
[[nodiscard]] inline std::uint16_t f32_to_bf16_bits(float f) noexcept {
  std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  bits += 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<std::uint16_t>(bits >> 16);
}

/// Exact widening of bfloat16 bits.
[[nodiscard]] inline float bf16_bits_to_f32(std::uint16_t h) noexcept {
  return std::bit_cast<float>(static_cast<std::uint32_t>(h) << 16);
}

/// Largest finite binary16 value; f64→f16 rows clamp here before encoding.
inline constexpr double kF16Max = 65504.0;

// Scalar reference forms — always compiled, dispatch targets under
// LC_SIMD=off, and the bit-equality oracle for the vector paths.

inline void row_f64_to_f32_scalar(float* dst, const double* src,
                                  std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<float>(src[i]);
}

inline void row_f32_to_f64_scalar(double* dst, const float* src,
                                  std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<double>(src[i]);
}

inline void row_f64_to_f16_scalar(std::uint16_t* dst, const double* src,
                                  std::size_t n) noexcept {
  const auto lo = static_cast<float>(-kF16Max);
  const auto hi = static_cast<float>(kF16Max);
  for (std::size_t i = 0; i < n; ++i) {
    // max/min ordering matches the vector path's (NaN would clamp to lo).
    float f = static_cast<float>(src[i]);
    f = f > lo ? f : lo;
    f = f < hi ? f : hi;
    dst[i] = f32_to_f16_bits(f);
  }
}

inline void row_f16_to_f64_scalar(double* dst, const std::uint16_t* src,
                                  std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<double>(f16_bits_to_f32(src[i]));
  }
}

inline void row_f64_to_bf16_scalar(std::uint16_t* dst, const double* src,
                                   std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = f32_to_bf16_bits(static_cast<float>(src[i]));
  }
}

inline void row_bf16_to_f64_scalar(double* dst, const std::uint16_t* src,
                                   std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<double>(bf16_bits_to_f32(src[i]));
  }
}

[[nodiscard]] inline double row_max_abs_scalar(const double* src,
                                               std::size_t n) noexcept {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = src[i] < 0.0 ? -src[i] : src[i];
    if (a > m) m = a;
  }
  return m;
}

// Dispatching row forms: AVX2 (+F16C where available) fast paths with the
// scalar reference as tail and fallback. f64↔f32 conversions are IEEE-exact
// in both paths; the f16/bf16 paths are bit-equal by the property tests.

/// dst[i] = (float)src[i] (round-to-nearest-even narrowing).
inline void row_f64_to_f32(float* dst, const double* src,
                           std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(LC_SIMD_AVX2)
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(dst + i, _mm256_cvtpd_ps(_mm256_loadu_pd(src + i)));
  }
#endif
  row_f64_to_f32_scalar(dst + i, src + i, n - i);
}

/// dst[i] = (double)src[i] (exact widening).
inline void row_f32_to_f64(double* dst, const float* src,
                           std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(LC_SIMD_AVX2)
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_cvtps_pd(_mm_loadu_ps(src + i)));
  }
#endif
  row_f32_to_f64_scalar(dst + i, src + i, n - i);
}

/// dst[i] = binary16 bits of clamp(src[i], ±65504), RNE.
inline void row_f64_to_f16(std::uint16_t* dst, const double* src,
                           std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(LC_SIMD_AVX2) && defined(__F16C__)
  const __m128 lo = _mm_set1_ps(static_cast<float>(-kF16Max));
  const __m128 hi = _mm_set1_ps(static_cast<float>(kF16Max));
  for (; i + 4 <= n; i += 4) {
    __m128 f = _mm256_cvtpd_ps(_mm256_loadu_pd(src + i));
    f = _mm_min_ps(_mm_max_ps(f, lo), hi);
    const __m128i h = _mm_cvtps_ph(f, _MM_FROUND_TO_NEAREST_INT);
    std::memcpy(dst + i, &h, 4 * sizeof(std::uint16_t));
  }
#endif
  row_f64_to_f16_scalar(dst + i, src + i, n - i);
}

/// dst[i] = (double) value of binary16 bits src[i] (exact widening).
inline void row_f16_to_f64(double* dst, const std::uint16_t* src,
                           std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(LC_SIMD_AVX2) && defined(__F16C__)
  for (; i + 4 <= n; i += 4) {
    __m128i h = _mm_setzero_si128();
    std::memcpy(&h, src + i, 4 * sizeof(std::uint16_t));
    _mm256_storeu_pd(dst + i, _mm256_cvtps_pd(_mm_cvtph_ps(h)));
  }
#endif
  row_f16_to_f64_scalar(dst + i, src + i, n - i);
}

/// dst[i] = bfloat16 bits of (float)src[i], RNE (integer twiddle — the
/// vector and scalar paths are bit-identical by construction).
inline void row_f64_to_bf16(std::uint16_t* dst, const double* src,
                            std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(LC_SIMD_AVX2)
  const __m128i bias = _mm_set1_epi32(0x7FFF);
  const __m128i one = _mm_set1_epi32(1);
  for (; i + 4 <= n; i += 4) {
    const __m128i b =
        _mm_castps_si128(_mm256_cvtpd_ps(_mm256_loadu_pd(src + i)));
    const __m128i lsb = _mm_and_si128(_mm_srli_epi32(b, 16), one);
    const __m128i r =
        _mm_srli_epi32(_mm_add_epi32(b, _mm_add_epi32(bias, lsb)), 16);
    const __m128i packed = _mm_packus_epi32(r, r);  // 4 × u16 in the low half
    std::memcpy(dst + i, &packed, 4 * sizeof(std::uint16_t));
  }
#endif
  row_f64_to_bf16_scalar(dst + i, src + i, n - i);
}

/// dst[i] = (double) value of bfloat16 bits src[i] (exact widening).
inline void row_bf16_to_f64(double* dst, const std::uint16_t* src,
                            std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(LC_SIMD_AVX2)
  for (; i + 4 <= n; i += 4) {
    __m128i h = _mm_setzero_si128();
    std::memcpy(&h, src + i, 4 * sizeof(std::uint16_t));
    const __m128i w = _mm_slli_epi32(_mm_cvtepu16_epi32(h), 16);
    _mm256_storeu_pd(dst + i, _mm256_cvtps_pd(_mm_castsi128_ps(w)));
  }
#endif
  row_bf16_to_f64_scalar(dst + i, src + i, n - i);
}

/// max_i |src[i]| (0 for an empty row) — the per-cell block scale of the
/// q16 wire codec. Max is exact, so the vector path equals the scalar one.
[[nodiscard]] inline double row_max_abs(const double* src,
                                        std::size_t n) noexcept {
  std::size_t i = 0;
  double m = 0.0;
#if defined(LC_SIMD_AVX2)
  if (n >= 4) {
    const __m256d sign = _mm256_set1_pd(-0.0);
    __m256d acc = _mm256_setzero_pd();
    for (; i + 4 <= n; i += 4) {
      acc = _mm256_max_pd(acc, _mm256_andnot_pd(sign, _mm256_loadu_pd(src + i)));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    m = lanes[0];
    for (int l = 1; l < 4; ++l) {
      if (lanes[l] > m) m = lanes[l];
    }
  }
#endif
  const double tail = row_max_abs_scalar(src + i, n - i);
  return tail > m ? tail : m;
}

}  // namespace lc::simd
