// Portable double-precision SIMD wrapper for the FFT compute engine.
//
// One vector type `Vd` of `kLanes` doubles with the handful of operations
// the batched butterflies need: load/store, broadcast, +, -, *, and fused
// multiply-add/subtract. Backend is chosen at configure time:
//
//   - AVX2 + FMA (x86):  4 lanes  (enabled when the compiler sets __AVX2__,
//                                   e.g. via -march=native; see LC_SIMD in
//                                   the top-level CMakeLists)
//   - NEON (aarch64):    2 lanes
//   - scalar fallback:   1 lane   (forced with -DLC_SIMD_SCALAR=1, cmake
//                                   -DLC_SIMD=off; also the default when no
//                                   vector ISA is detected)
//
// The batch-major FFT path keeps real and imaginary planes separate (SoA),
// so complex arithmetic is plain mul/fma on independent vectors and no
// backend needs shuffle or permute support. The only interleaved-complex
// helper is `complex_mul_inplace`, used by the spectral pointwise multiply.
#pragma once

#include <complex>
#include <cstddef>

#if !defined(LC_SIMD_SCALAR) && defined(__AVX2__) && defined(__FMA__)
#define LC_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(LC_SIMD_SCALAR) && defined(__ARM_NEON)
#define LC_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace lc::simd {

#if defined(LC_SIMD_AVX2)

inline constexpr std::size_t kLanes = 4;
inline constexpr const char* kBackend = "avx2";

using Vd = __m256d;

inline Vd load(const double* p) noexcept { return _mm256_loadu_pd(p); }
inline void store(double* p, Vd v) noexcept { _mm256_storeu_pd(p, v); }
inline Vd broadcast(double x) noexcept { return _mm256_set1_pd(x); }
inline Vd add(Vd a, Vd b) noexcept { return _mm256_add_pd(a, b); }
inline Vd sub(Vd a, Vd b) noexcept { return _mm256_sub_pd(a, b); }
inline Vd mul(Vd a, Vd b) noexcept { return _mm256_mul_pd(a, b); }
/// a*b + c
inline Vd fmadd(Vd a, Vd b, Vd c) noexcept { return _mm256_fmadd_pd(a, b, c); }
/// a*b - c
inline Vd fmsub(Vd a, Vd b, Vd c) noexcept { return _mm256_fmsub_pd(a, b, c); }

#elif defined(LC_SIMD_NEON)

inline constexpr std::size_t kLanes = 2;
inline constexpr const char* kBackend = "neon";

using Vd = float64x2_t;

inline Vd load(const double* p) noexcept { return vld1q_f64(p); }
inline void store(double* p, Vd v) noexcept { vst1q_f64(p, v); }
inline Vd broadcast(double x) noexcept { return vdupq_n_f64(x); }
inline Vd add(Vd a, Vd b) noexcept { return vaddq_f64(a, b); }
inline Vd sub(Vd a, Vd b) noexcept { return vsubq_f64(a, b); }
inline Vd mul(Vd a, Vd b) noexcept { return vmulq_f64(a, b); }
inline Vd fmadd(Vd a, Vd b, Vd c) noexcept { return vfmaq_f64(c, a, b); }
inline Vd fmsub(Vd a, Vd b, Vd c) noexcept {
  return vnegq_f64(vfmsq_f64(c, a, b));  // -(c - a*b) = a*b - c
}

#else

inline constexpr std::size_t kLanes = 1;
inline constexpr const char* kBackend = "scalar";

using Vd = double;

inline Vd load(const double* p) noexcept { return *p; }
inline void store(double* p, Vd v) noexcept { *p = v; }
inline Vd broadcast(double x) noexcept { return x; }
inline Vd add(Vd a, Vd b) noexcept { return a + b; }
inline Vd sub(Vd a, Vd b) noexcept { return a - b; }
inline Vd mul(Vd a, Vd b) noexcept { return a * b; }
inline Vd fmadd(Vd a, Vd b, Vd c) noexcept { return a * b + c; }
inline Vd fmsub(Vd a, Vd b, Vd c) noexcept { return a * b - c; }

#endif

/// Pointwise in-place complex multiply on interleaved storage:
/// a[i] *= b[i] for i in [0, n). The vector path multiplies kLanes/2
/// complex values per step without deinterleaving (dup-even / dup-odd +
/// fmaddsub); the tail and the scalar backend use plain complex math.
inline void complex_mul_inplace(std::complex<double>* a,
                                const std::complex<double>* b,
                                std::size_t n) noexcept {
  std::size_t i = 0;
#if defined(LC_SIMD_AVX2)
  auto* pa = reinterpret_cast<double*>(a);
  const auto* pb = reinterpret_cast<const double*>(b);
  for (; i + 2 <= n; i += 2) {
    const __m256d va = _mm256_loadu_pd(pa + 2 * i);
    const __m256d vb = _mm256_loadu_pd(pb + 2 * i);
    const __m256d br = _mm256_movedup_pd(vb);          // [b0r b0r b1r b1r]
    const __m256d bi = _mm256_permute_pd(vb, 0xF);     // [b0i b0i b1i b1i]
    const __m256d as = _mm256_permute_pd(va, 0x5);     // [a0i a0r a1i a1r]
    // even lanes: ar*br - ai*bi; odd lanes: ai*br + ar*bi
    _mm256_storeu_pd(pa + 2 * i,
                     _mm256_fmaddsub_pd(va, br, _mm256_mul_pd(as, bi)));
  }
#endif
  for (; i < n; ++i) a[i] *= b[i];
}

}  // namespace lc::simd
