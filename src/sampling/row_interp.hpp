// Separable row-based interpolation tables for CompressedField's
// vectorized reconstruction engine.
//
// For a coarse octree cell (rate r > 1) the per-point work of trilinear /
// Catmull-Rom interpolation factors per axis: the 4-tap weight vector of a
// grid coordinate depends only on its phase (offset mod r) within the
// retained lattice, plus a boundary degradation that depends on the base
// sample index. An AxisTable materialises {base index, 4 weights} for every
// coordinate of a cell/region overlap ONCE — per (rate, phase) the weights
// are computed a single time and stamped across the range — replacing the
// per-point div/mod + weight evaluation of the scalar path. The weights are
// stored SoA (w0..w3 planes) so the x-axis kernel can run whole rows through
// simd::row_weighted4_add with the 4 stencil values broadcast per base run.
//
// Weight semantics match CompressedField's scalar reference exactly:
// w[j] multiplies the sample at lattice index base + j - 1 (j = 0..3);
// trilinear and boundary-degraded cubic axes use {0, 1-f, f, 0}, interior
// cubic axes the Catmull-Rom kernel. Zero-weight taps may index one sample
// outside the lattice; consumers either skip them (y/z row gather) or pad
// the gathered row with guard elements (x kernel), so the products are
// exact zeros and the row engine reproduces the scalar result to rounding.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/aligned.hpp"
#include "common/check.hpp"
#include "tensor/grid.hpp"

namespace lc::sampling::detail {

/// Catmull-Rom weights for fractional position t in [0, 1): taps -1..2.
[[nodiscard]] inline std::array<double, 4> catmull_rom_weights(
    double t) noexcept {
  const double t2 = t * t;
  const double t3 = t2 * t;
  return {(-t3 + 2.0 * t2 - t) * 0.5, (3.0 * t3 - 5.0 * t2 + 2.0) * 0.5,
          (-3.0 * t3 + 4.0 * t2 + t) * 0.5, (t3 - t2) * 0.5};
}

/// Per-axis interpolation table over one cell/region overlap range.
struct AxisTable {
  std::vector<std::int32_t> base;  ///< base sample index per coordinate
  AlignedVector<double> w[4];      ///< SoA tap weights per coordinate

  [[nodiscard]] std::size_t size() const noexcept { return base.size(); }

  /// Build the table for grid coordinates [lo, hi) of a cell with the given
  /// corner coordinate, rate and samples-per-edge e. `cubic` selects
  /// Catmull-Rom on interior stencils (degrading to linear where the 4-tap
  /// stencil would leave the lattice — same rule as the scalar reference).
  void build(i64 lo, i64 hi, i64 corner, i64 rate, i64 e, bool cubic) {
    const auto n = static_cast<std::size_t>(hi - lo);
    base.resize(n);
    for (auto& plane : w) plane.resize(n);

    // One weight evaluation per (rate, phase), not per point.
    const auto r = static_cast<std::size_t>(rate);
    phase_cubic_.resize(r);
    phase_linear_.resize(r);
    const double inv_r = 1.0 / static_cast<double>(rate);
    for (std::size_t ph = 0; ph < r; ++ph) {
      const double f = static_cast<double>(ph) * inv_r;
      phase_linear_[ph] = {0.0, 1.0 - f, f, 0.0};
      phase_cubic_[ph] = cubic ? catmull_rom_weights(f) : phase_linear_[ph];
    }

    for (std::size_t i = 0; i < n; ++i) {
      const i64 off = (lo + static_cast<i64>(i)) - corner;
      LC_ASSERT(off >= 0);
      const i64 b = off / rate;
      const auto ph = static_cast<std::size_t>(off - b * rate);
      const bool interior = b >= 1 && b + 2 <= e - 1;
      const auto& taps = interior ? phase_cubic_[ph] : phase_linear_[ph];
      base[i] = static_cast<std::int32_t>(b);
      for (int j = 0; j < 4; ++j) w[j][i] = taps[static_cast<std::size_t>(j)];
    }
  }

 private:
  // Scratch kept across build() calls so reuse over many cells of the same
  // rate does not reallocate.
  std::vector<std::array<double, 4>> phase_cubic_;
  std::vector<std::array<double, 4>> phase_linear_;
};

}  // namespace lc::sampling::detail
