// Octree-based adaptive multi-resolution sampling (paper §3.2 step 3, Fig 3).
//
// The octree partitions the (cubic, power-of-two) grid into axis-aligned
// cubic cells, each carrying one downsampling rate from the SamplingPolicy.
// A downsampled cell (rate r > 1) of side s retains an *edge-inclusive*
// lattice of (s/r + 1)^3 samples at {corner + r·(i,j,k)}, the top plane
// wrapping periodically at the grid edge; the inclusive top face lets every
// interior point interpolate trilinearly without reaching into neighbouring
// cells. Dense cells (rate 1) store exactly their s^3 grid points. Cells
// are aligned so corner % rate == 0, keeping the retained lattice globally
// consistent across same-rate neighbours.
//
// Metadata follows the paper's wire format: five integers per cell —
// the corner coordinates (x, y, z), the downsampling rate, and the running
// total of samples in all preceding cells ("helps to decode the octree");
// the cell side is implied (side = rate · cbrt(count)).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sampling/sampling_policy.hpp"
#include "tensor/grid.hpp"

namespace lc::sampling {

/// One leaf cell of the sampling octree.
struct OctreeCell {
  Index3 corner;
  i64 side = 0;               ///< cube edge length
  i64 rate = 1;               ///< downsampling rate (1 = dense)
  std::size_t sample_offset = 0;  ///< index of this cell's first sample

  /// Samples per edge: side for dense cells, side/rate + 1 (edge-inclusive)
  /// for downsampled cells.
  [[nodiscard]] constexpr i64 samples_per_edge() const noexcept {
    return rate == 1 ? side : side / rate + 1;
  }
  /// Total samples in the cell.
  [[nodiscard]] constexpr std::size_t sample_count() const noexcept {
    const i64 e = samples_per_edge();
    return static_cast<std::size_t>(e) * static_cast<std::size_t>(e) *
           static_cast<std::size_t>(e);
  }
  [[nodiscard]] constexpr Box3 box() const noexcept {
    return Box3::cube_at(corner, side);
  }
  /// Linear index (within the cell payload) of sample (ix, iy, iz).
  [[nodiscard]] constexpr std::size_t sample_index(i64 ix, i64 iy,
                                                   i64 iz) const noexcept {
    const i64 e = samples_per_edge();
    return static_cast<std::size_t>((iz * e + iy) * e + ix);
  }
};

/// Adaptive sampling octree over a cubic power-of-two grid.
class Octree {
 public:
  /// Build by recursive subdivision: a node becomes a leaf when the policy
  /// assigns one uniform rate to its whole extent (rates capped at the cell
  /// side so every leaf keeps at least one sample).
  Octree(const Grid3& grid, const Box3& subdomain,
         const SamplingPolicy& policy);

  [[nodiscard]] const Grid3& grid() const noexcept { return grid_; }
  [[nodiscard]] const Box3& subdomain() const noexcept { return subdomain_; }
  [[nodiscard]] std::span<const OctreeCell> cells() const noexcept {
    return cells_;
  }
  [[nodiscard]] std::size_t total_samples() const noexcept { return total_; }

  /// Compression ratio: grid points per retained sample.
  [[nodiscard]] double compression_ratio() const noexcept {
    return static_cast<double>(grid_.size()) / static_cast<double>(total_);
  }

  /// The paper's 5-int-per-cell metadata encoding.
  [[nodiscard]] std::vector<std::int32_t> encode_metadata() const;

  /// Rebuild an octree (cells only) from encoded metadata. `total_samples`
  /// is the payload length, needed to size the final cell.
  static Octree decode_metadata(const Grid3& grid,
                                std::span<const std::int32_t> metadata,
                                std::size_t total_samples);

  /// Sorted union of z coordinates carrying at least one sample. The slab
  /// pipeline only inverse-transforms these planes.
  [[nodiscard]] std::vector<i64> retained_z_planes() const;

  /// Cell containing point p (cells tile the grid). O(log cells): leaves
  /// are stored in Morton (octant-recursion) order, so the containing cell
  /// is the predecessor of p's interleaved key in the sorted key array.
  [[nodiscard]] const OctreeCell& cell_containing(const Index3& p) const;

 private:
  Octree(const Grid3& grid, const Box3& subdomain);  // for decode
  void build(const Index3& corner, i64 side, const SamplingPolicy& policy);
  void finalize_offsets();
  /// Fill cell_keys_ with per-cell Morton corner keys (the binary-search
  /// index behind cell_containing). No-op on non-pow2 grids, where
  /// cell_containing falls back to a linear scan.
  void build_lookup();

  Grid3 grid_;
  Box3 subdomain_;
  std::vector<OctreeCell> cells_;
  std::vector<std::uint64_t> cell_keys_;
  int levels_ = 0;
  std::size_t total_ = 0;
};

}  // namespace lc::sampling
