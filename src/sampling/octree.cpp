#include "sampling/octree.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.hpp"
#include "fft/fft1d.hpp"

namespace lc::sampling {

namespace {

/// Per-axis *periodic* distance range: min/max over v in [a_lo, a_hi) of
/// torus_axis_distance(v, b_lo, b_hi, n). The distance function is zero on
/// the domain interval and unimodal on the complement arc (it rises to a
/// single peak midway around the ring), so the extrema over any interval
/// are attained at the interval endpoints or at the arc peak.
std::pair<i64, i64> torus_axis_range(i64 a_lo, i64 a_hi, i64 b_lo, i64 b_hi,
                                     i64 n) {
  auto f = [&](i64 v) { return torus_axis_distance(v, b_lo, b_hi, n); };
  const i64 arc = n - (b_hi - b_lo);  // complement length
  if (arc <= 0) return {0, 0};        // domain covers the whole ring

  const bool overlaps = a_lo < b_hi && b_lo < a_hi;
  const i64 min_d = overlaps ? 0 : std::min(f(a_lo), f(a_hi - 1));

  i64 max_d = std::max(f(a_lo), f(a_hi - 1));
  // Arc positions j = 1..arc sit at ring coordinate (b_hi - 1 + j) mod n
  // with distance min(j, arc + 1 - j); the peak is at j ≈ (arc + 1) / 2.
  for (const i64 j : {(arc + 1) / 2, arc + 1 - (arc + 1) / 2}) {
    const i64 v = (b_hi - 1 + j) % n;
    if (v >= a_lo && v < a_hi) {
      max_d = std::max(max_d, std::min(j, arc + 1 - j));
    }
  }
  return {min_d, max_d};
}

/// Range of the periodic Chebyshev distance from points of `cell` to `dom`
/// on the torus of side n (cubic grids).
std::pair<i64, i64> chebyshev_range(const Box3& cell, const Box3& dom,
                                    i64 n) {
  const auto [minx, maxx] =
      torus_axis_range(cell.lo.x, cell.hi.x, dom.lo.x, dom.hi.x, n);
  const auto [miny, maxy] =
      torus_axis_range(cell.lo.y, cell.hi.y, dom.lo.y, dom.hi.y, n);
  const auto [minz, maxz] =
      torus_axis_range(cell.lo.z, cell.hi.z, dom.lo.z, dom.hi.z, n);
  return {std::max({minx, miny, minz}), std::max({maxx, maxy, maxz})};
}

/// Band classification of a distance: -1 inside the sub-domain, band index
/// otherwise, bands.size() for the far region. Class index is monotone in
/// distance, so a cell's distance range [min_d, max_d] covers exactly the
/// classes [class(min_d), class(max_d)].
int band_class(i64 dist, const std::vector<RateBand>& bands) {
  if (dist <= 0) return -1;
  for (std::size_t i = 0; i < bands.size(); ++i) {
    if (dist <= bands[i].max_distance) return static_cast<int>(i);
  }
  return static_cast<int>(bands.size());
}

/// Rate of a band class.
i64 class_rate(int cls, const SamplingPolicy& policy) {
  if (cls < 0) return 1;
  if (cls < static_cast<int>(policy.bands().size())) {
    return policy.bands()[static_cast<std::size_t>(cls)].rate;
  }
  return policy.far_rate();
}

/// True iff every class in [class(min_d), class(max_d)] has the same rate.
bool rate_uniform_over(i64 min_d, i64 max_d, const SamplingPolicy& policy) {
  const int c0 = band_class(min_d, policy.bands());
  const int c1 = band_class(max_d, policy.bands());
  const i64 r0 = class_rate(c0, policy);
  for (int c = c0 + 1; c <= c1; ++c) {
    if (class_rate(c, policy) != r0) return false;
  }
  return true;
}

/// Interleaved (z, y, x) Morton key of a point at `levels` bits per axis.
/// The build recursion visits octants z-major/x-minor, so leaf corners come
/// out in ascending key order and each leaf of side s covers the contiguous
/// key range [key(corner), key(corner) + s³).
std::uint64_t morton_key(const Index3& p, int levels) noexcept {
  std::uint64_t key = 0;
  for (int b = levels - 1; b >= 0; --b) {
    key = (key << 3) |
          (static_cast<std::uint64_t>((p.z >> b) & 1) << 2) |
          (static_cast<std::uint64_t>((p.y >> b) & 1) << 1) |
          static_cast<std::uint64_t>((p.x >> b) & 1);
  }
  return key;
}

}  // namespace

Octree::Octree(const Grid3& grid, const Box3& subdomain)
    : grid_(grid), subdomain_(subdomain) {}

Octree::Octree(const Grid3& grid, const Box3& subdomain,
               const SamplingPolicy& policy)
    : grid_(grid), subdomain_(subdomain) {
  LC_CHECK_ARG(grid.nx == grid.ny && grid.ny == grid.nz,
               "octree requires a cubic grid");
  LC_CHECK_ARG(fft::is_pow2(static_cast<std::size_t>(grid.nx)),
               "octree requires a power-of-two grid side");
  LC_CHECK_ARG(Box3::of(grid).contains(subdomain) && !subdomain.empty(),
               "sub-domain must be a non-empty box inside the grid");
  build({0, 0, 0}, grid.nx, policy);
  finalize_offsets();
  build_lookup();
}

void Octree::build_lookup() {
  cell_keys_.clear();
  if (grid_.nx != grid_.ny || grid_.ny != grid_.nz ||
      !fft::is_pow2(static_cast<std::size_t>(grid_.nx))) {
    return;  // linear-scan fallback
  }
  levels_ = std::countr_zero(static_cast<std::uint64_t>(grid_.nx));
  cell_keys_.reserve(cells_.size());
  for (const auto& c : cells_) {
    cell_keys_.push_back(morton_key(c.corner, levels_));
  }
  LC_ASSERT(std::is_sorted(cell_keys_.begin(), cell_keys_.end()));
}

void Octree::build(const Index3& corner, i64 side,
                   const SamplingPolicy& policy) {
  const Box3 cell = Box3::cube_at(corner, side);
  const auto [min_d, max_d] = chebyshev_range(cell, subdomain_, grid_.nx);

  // Boundary-shell classification (dense band at the grid edge).
  const i64 band = policy.boundary_band();
  bool shell_uniform = true;
  bool in_shell = false;
  if (band > 0) {
    auto bd = [&](i64 lo, i64 hi, i64 n) {
      // min over [lo, hi) of min(v, n-1-v), and an upper bound of the max.
      const i64 min_v = std::min(lo, n - hi);
      const i64 max_v = std::min(hi - 1, n - 1 - lo);  // safe upper bound
      return std::pair<i64, i64>(min_v, max_v);
    };
    const auto [minx, maxx] = bd(cell.lo.x, cell.hi.x, grid_.nx);
    const auto [miny, maxy] = bd(cell.lo.y, cell.hi.y, grid_.ny);
    const auto [minz, maxz] = bd(cell.lo.z, cell.hi.z, grid_.nz);
    const i64 min_bd = std::min({minx, miny, minz});
    const i64 max_bd_bound = std::min({maxx, maxy, maxz});
    if (min_bd >= band) {
      in_shell = false;  // entirely outside the shell
    } else if (max_bd_bound < band) {
      in_shell = true;  // entirely inside the shell
    } else {
      shell_uniform = (side == 1);
      in_shell = min_bd < band;  // only used when side == 1 (then exact)
    }
  }

  const bool rate_uniform = rate_uniform_over(min_d, max_d, policy);

  if ((rate_uniform || in_shell) && shell_uniform) {
    OctreeCell leaf;
    leaf.corner = corner;
    leaf.side = side;
    leaf.rate = in_shell ? 1 : std::min<i64>(policy.rate_at_distance(min_d), side);
    cells_.push_back(leaf);
    return;
  }
  if (side == 1) {
    cells_.push_back(OctreeCell{corner, 1, 1, 0});
    return;
  }

  const i64 h = side / 2;
  for (i64 dz = 0; dz < 2; ++dz) {
    for (i64 dy = 0; dy < 2; ++dy) {
      for (i64 dx = 0; dx < 2; ++dx) {
        build({corner.x + dx * h, corner.y + dy * h, corner.z + dz * h}, h,
              policy);
      }
    }
  }
}

void Octree::finalize_offsets() {
  total_ = 0;
  for (auto& c : cells_) {
    c.sample_offset = total_;
    total_ += c.sample_count();
  }
}

std::vector<std::int32_t> Octree::encode_metadata() const {
  std::vector<std::int32_t> meta;
  meta.reserve(cells_.size() * 5);
  for (const auto& c : cells_) {
    meta.push_back(static_cast<std::int32_t>(c.corner.x));
    meta.push_back(static_cast<std::int32_t>(c.corner.y));
    meta.push_back(static_cast<std::int32_t>(c.corner.z));
    meta.push_back(static_cast<std::int32_t>(c.rate));
    meta.push_back(static_cast<std::int32_t>(c.sample_offset));
  }
  return meta;
}

Octree Octree::decode_metadata(const Grid3& grid,
                               std::span<const std::int32_t> metadata,
                               std::size_t total_samples) {
  LC_CHECK_ARG(metadata.size() % 5 == 0,
               "metadata length must be a multiple of 5");
  const std::size_t n = metadata.size() / 5;
  LC_CHECK_ARG(n > 0, "empty metadata");
  Octree tree(grid, Box3::of(grid));
  tree.cells_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    OctreeCell c;
    c.corner = {metadata[5 * i + 0], metadata[5 * i + 1], metadata[5 * i + 2]};
    c.rate = metadata[5 * i + 3];
    c.sample_offset = static_cast<std::size_t>(metadata[5 * i + 4]);
    const std::size_t next = (i + 1 < n)
                                 ? static_cast<std::size_t>(metadata[5 * i + 9])
                                 : total_samples;
    const std::size_t count = next - c.sample_offset;
    // count is an exact cube by construction; the side follows from the
    // stored rate (dense cells: side = edge; coarse cells store an
    // edge-inclusive lattice: side = rate * (edge - 1)).
    const auto edge = static_cast<i64>(
        std::llround(std::cbrt(static_cast<double>(count))));
    LC_CHECK_ARG(static_cast<std::size_t>(edge) * edge * edge == count,
                 "corrupt metadata: sample count not a cube");
    c.side = (c.rate == 1) ? edge : c.rate * (edge - 1);
    tree.cells_.push_back(c);
  }
  tree.total_ = total_samples;
  tree.build_lookup();
  return tree;
}

std::vector<i64> Octree::retained_z_planes() const {
  std::vector<char> keep(static_cast<std::size_t>(grid_.nz), 0);
  for (const auto& c : cells_) {
    for (i64 iz = 0; iz < c.samples_per_edge(); ++iz) {
      // Edge-inclusive lattices wrap at the grid top (periodic result).
      keep[static_cast<std::size_t>((c.corner.z + iz * c.rate) % grid_.nz)] = 1;
    }
  }
  std::vector<i64> planes;
  for (i64 z = 0; z < grid_.nz; ++z) {
    if (keep[static_cast<std::size_t>(z)]) planes.push_back(z);
  }
  return planes;
}

const OctreeCell& Octree::cell_containing(const Index3& p) const {
  LC_CHECK_ARG(grid_.contains(p), "point outside grid");
  if (!cell_keys_.empty()) {
    // Each leaf of side s covers the contiguous key range
    // [key(corner), key(corner) + s³), so the containing cell is the
    // predecessor of p's key in the sorted corner-key array.
    const std::uint64_t key = morton_key(p, levels_);
    const auto it =
        std::upper_bound(cell_keys_.begin(), cell_keys_.end(), key);
    if (it != cell_keys_.begin()) {
      const auto idx = static_cast<std::size_t>(it - cell_keys_.begin()) - 1;
      const OctreeCell& c = cells_[idx];
      if (c.box().contains(p)) return c;
    }
  } else {
    for (const auto& c : cells_) {
      if (c.box().contains(p)) return c;
    }
  }
  throw InternalError("octree cells do not tile the grid at " + p.str());
}

}  // namespace lc::sampling
