#include "sampling/sampling_policy.hpp"

#include "common/check.hpp"
#include "fft/fft1d.hpp"

namespace lc::sampling {

SamplingPolicy::SamplingPolicy(std::vector<RateBand> bands, i64 far_rate,
                               i64 boundary_band)
    : bands_(std::move(bands)), far_rate_(far_rate),
      boundary_band_(boundary_band) {
  LC_CHECK_ARG(far_rate_ >= 1, "far rate must be >= 1");
  LC_CHECK_ARG(fft::is_pow2(static_cast<std::size_t>(far_rate_)),
               "rates must be powers of two");
  LC_CHECK_ARG(boundary_band_ >= 0, "boundary band must be >= 0");
  i64 prev = -1;
  for (const auto& b : bands_) {
    LC_CHECK_ARG(b.max_distance > prev, "bands must be sorted by distance");
    LC_CHECK_ARG(b.rate >= 1 &&
                     fft::is_pow2(static_cast<std::size_t>(b.rate)),
                 "rates must be powers of two >= 1");
    prev = b.max_distance;
  }
}

SamplingPolicy SamplingPolicy::paper_default(i64 k, i64 far_rate,
                                             i64 boundary_band,
                                             i64 dense_halo) {
  LC_CHECK_ARG(k >= 1, "sub-domain size must be >= 1");
  LC_CHECK_ARG(dense_halo >= 0, "halo must be >= 0");
  std::vector<RateBand> bands;
  if (dense_halo > 0) bands.push_back({dense_halo, 1});
  if (k / 2 > dense_halo) bands.push_back({k / 2, 2});
  if (4 * k > std::max(k / 2, dense_halo)) bands.push_back({4 * k, 8});
  return SamplingPolicy(std::move(bands), far_rate, boundary_band);
}

SamplingPolicy SamplingPolicy::uniform(i64 rate, i64 boundary_band) {
  return SamplingPolicy({}, rate, boundary_band);
}

i64 SamplingPolicy::rate_at_distance(i64 dist) const noexcept {
  if (dist <= 0) return 1;  // on or inside the sub-domain: full resolution
  for (const auto& b : bands_) {
    if (dist <= b.max_distance) return b.rate;
  }
  return far_rate_;
}

i64 SamplingPolicy::rate_at(const Index3& p, const Box3& subdomain,
                            const Grid3& grid) const noexcept {
  if (boundary_band_ > 0 && boundary_distance(p, grid) < boundary_band_) {
    return 1;
  }
  // Periodic distance: circular-convolution responses wrap, so sampling
  // density must too.
  return rate_at_distance(torus_chebyshev_distance(subdomain, p, grid));
}

double SamplingPolicy::effective_exterior_rate(const Grid3& grid,
                                               const Box3& subdomain) const {
  // Count retained samples outside the sub-domain exactly and invert:
  // (exterior volume / exterior samples)^(1/3).
  std::size_t exterior_points = 0;
  std::size_t exterior_samples = 0;
  for_each_point(Box3::of(grid), [&](const Index3& p) {
    if (subdomain.contains(p)) return;
    ++exterior_points;
    const i64 r = rate_at(p, subdomain, grid);
    // A point is retained iff all its coordinates are multiples of r.
    if (p.x % r == 0 && p.y % r == 0 && p.z % r == 0) ++exterior_samples;
  });
  if (exterior_samples == 0) return 1.0;
  return std::cbrt(static_cast<double>(exterior_points) /
                   static_cast<double>(exterior_samples));
}

}  // namespace lc::sampling
