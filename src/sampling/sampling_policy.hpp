// Adaptive multi-resolution sampling policy (paper §3.2 step 3, §5.4, Fig 3).
//
// The policy maps a grid point to a downsampling rate, as a function of its
// Chebyshev distance from the sub-domain and its distance from the grid
// boundary:
//   - the sub-domain itself is always kept at full resolution (rate 1),
//   - a band of width k/2 around it is downsampled by 2,
//   - out to 4k the rate is 8,
//   - beyond that a far rate (16 or 32) applies,
//   - a thin shell at the grid boundary is densely sampled again (the
//     paper's "edges of the grid, subject to specific boundary conditions,
//     are densely sampled").
#pragma once

#include <vector>

#include "tensor/grid.hpp"

namespace lc::sampling {

/// Distance band: Chebyshev distances d with d <= max_distance get `rate`.
struct RateBand {
  i64 max_distance = 0;
  i64 rate = 1;
};

/// Piecewise-constant distance → downsampling-rate schedule.
class SamplingPolicy {
 public:
  /// Build a custom policy. Bands must be sorted by max_distance and have
  /// power-of-two rates >= 1; distances beyond the last band use far_rate.
  SamplingPolicy(std::vector<RateBand> bands, i64 far_rate,
                 i64 boundary_band = 0);

  /// The paper's hyperparameters (§5.4) for sub-domain size k:
  /// rate 2 within k/2 of the sub-domain, 8 out to 4k, `far_rate` beyond,
  /// dense again within `boundary_band` of the grid edge. `dense_halo`
  /// extends the sub-domain's full resolution a few voxels outward so the
  /// kernel's immediate support (where the response is large and varies
  /// fastest) is captured exactly.
  static SamplingPolicy paper_default(i64 k, i64 far_rate = 16,
                                      i64 boundary_band = 2,
                                      i64 dense_halo = 2);

  /// Uniform rate everywhere outside the sub-domain (for sweeps over a
  /// single r, as in Table 3 where one rate r is reported per row).
  static SamplingPolicy uniform(i64 rate, i64 boundary_band = 0);

  /// Downsampling rate for a point at Chebyshev distance `dist` from the
  /// sub-domain (dist 0 = inside → always 1).
  [[nodiscard]] i64 rate_at_distance(i64 dist) const noexcept;

  /// Rate for a concrete point, accounting for the dense boundary shell.
  [[nodiscard]] i64 rate_at(const Index3& p, const Box3& subdomain,
                            const Grid3& grid) const noexcept;

  [[nodiscard]] i64 boundary_band() const noexcept { return boundary_band_; }
  [[nodiscard]] i64 far_rate() const noexcept { return far_rate_; }
  [[nodiscard]] const std::vector<RateBand>& bands() const noexcept {
    return bands_;
  }

  /// Average downsampling rate over the exterior of the sub-domain, used by
  /// the communication model (Eqn 6 uses a single effective r).
  [[nodiscard]] double effective_exterior_rate(const Grid3& grid,
                                               const Box3& subdomain) const;

 private:
  std::vector<RateBand> bands_;
  i64 far_rate_;
  i64 boundary_band_;
};

/// Distance of point p from the nearest grid boundary face.
[[nodiscard]] constexpr i64 boundary_distance(const Index3& p,
                                              const Grid3& g) noexcept {
  const i64 dx = std::min(p.x, g.nx - 1 - p.x);
  const i64 dy = std::min(p.y, g.ny - 1 - p.y);
  const i64 dz = std::min(p.z, g.nz - 1 - p.z);
  return std::min({dx, dy, dz});
}

}  // namespace lc::sampling
