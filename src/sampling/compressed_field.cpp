#include "sampling/compressed_field.hpp"

#include <algorithm>
#include <array>

#include "common/check.hpp"

namespace lc::sampling {

CompressedField::CompressedField(std::shared_ptr<const Octree> tree)
    : tree_(std::move(tree)) {
  LC_CHECK_ARG(tree_ != nullptr, "null octree");
  samples_.assign(tree_->total_samples(), 0.0);
}

CompressedField CompressedField::compress(const RealField& full,
                                          std::shared_ptr<const Octree> tree) {
  LC_CHECK_ARG(tree != nullptr, "null octree");
  LC_CHECK_ARG(full.grid() == tree->grid(), "field grid != octree grid");
  const Grid3& g = full.grid();
  CompressedField out(std::move(tree));
  for (const auto& c : out.tree_->cells()) {
    const i64 e = c.samples_per_edge();
    double* dst = out.samples_.data() + c.sample_offset;
    for (i64 iz = 0; iz < e; ++iz) {
      const i64 z = (c.corner.z + iz * c.rate) % g.nz;  // wrap top planes
      for (i64 iy = 0; iy < e; ++iy) {
        const i64 y = (c.corner.y + iy * c.rate) % g.ny;
        for (i64 ix = 0; ix < e; ++ix) {
          *dst++ = full((c.corner.x + ix * c.rate) % g.nx, y, z);
        }
      }
    }
  }
  return out;
}

namespace {

/// Catmull-Rom weights for fractional position t in [0, 1): w[-1..2].
std::array<double, 4> catmull_rom_weights(double t) {
  const double t2 = t * t;
  const double t3 = t2 * t;
  return {(-t3 + 2.0 * t2 - t) * 0.5, (3.0 * t3 - 5.0 * t2 + 2.0) * 0.5,
          (-3.0 * t3 + 4.0 * t2 + t) * 0.5, (t3 - t2) * 0.5};
}

}  // namespace

double CompressedField::interpolate_in_cell(const OctreeCell& cell,
                                            std::span<const double> payload,
                                            const Index3& p,
                                            Interpolation interp) {
  const std::span<const double> s =
      payload.subspan(cell.sample_offset, cell.sample_count());
  if (cell.rate == 1) {  // dense cell: exact lookup
    return s[cell.sample_index(p.x - cell.corner.x, p.y - cell.corner.y,
                               p.z - cell.corner.z)];
  }
  // Edge-inclusive lattice: base+1 is always a stored sample.
  const i64 e = cell.samples_per_edge();
  const double inv_r = 1.0 / static_cast<double>(cell.rate);
  auto split = [&](i64 coord, i64 corner) {
    const i64 off = coord - corner;
    const i64 base = off / cell.rate;
    const double frac = static_cast<double>(off - base * cell.rate) * inv_r;
    return std::pair<i64, double>(base, frac);
  };
  const auto [bx, fx] = split(p.x, cell.corner.x);
  const auto [by, fy] = split(p.y, cell.corner.y);
  const auto [bz, fz] = split(p.z, cell.corner.z);

  auto at = [&](i64 ix, i64 iy, i64 iz) {
    return s[cell.sample_index(ix, iy, iz)];
  };

  if (interp == Interpolation::kTrilinear) {
    const i64 bx1 = bx + 1;
    const i64 by1 = by + 1;
    const i64 bz1 = bz + 1;
    const double c00 = at(bx, by, bz) * (1 - fx) + at(bx1, by, bz) * fx;
    const double c10 = at(bx, by1, bz) * (1 - fx) + at(bx1, by1, bz) * fx;
    const double c01 = at(bx, by, bz1) * (1 - fx) + at(bx1, by, bz1) * fx;
    const double c11 = at(bx, by1, bz1) * (1 - fx) + at(bx1, by1, bz1) * fx;
    const double c0 = c00 * (1 - fy) + c10 * fy;
    const double c1 = c01 * (1 - fy) + c11 * fy;
    return c0 * (1 - fz) + c1 * fz;
  }

  // Tricubic Catmull-Rom on the 4³ stencil around the base sample. Axes
  // whose stencil would leave the cell's lattice reduce to linear order
  // (clamping the stencil instead would break even linear reproduction:
  // duplicated sample positions violate the first moment condition).
  auto axis_weights = [&](i64 b, double t) {
    if (b >= 1 && b + 2 <= e - 1) return catmull_rom_weights(t);
    return std::array<double, 4>{0.0, 1.0 - t, t, 0.0};
  };
  const auto wx = axis_weights(bx, fx);
  const auto wy = axis_weights(by, fy);
  const auto wz = axis_weights(bz, fz);
  auto clamp_idx = [&](i64 v) { return std::clamp<i64>(v, 0, e - 1); };
  double acc = 0.0;
  for (int dz = -1; dz <= 2; ++dz) {
    const double wzv = wz[static_cast<std::size_t>(dz + 1)];
    if (wzv == 0.0) continue;
    const i64 iz = clamp_idx(bz + dz);
    for (int dy = -1; dy <= 2; ++dy) {
      const double wyz = wy[static_cast<std::size_t>(dy + 1)] * wzv;
      if (wyz == 0.0) continue;
      const i64 iy = clamp_idx(by + dy);
      for (int dx = -1; dx <= 2; ++dx) {
        const double w = wx[static_cast<std::size_t>(dx + 1)];
        if (w == 0.0) continue;
        acc += w * wyz * at(clamp_idx(bx + dx), iy, iz);
      }
    }
  }
  return acc;
}

double CompressedField::value_at(const Index3& p, Interpolation interp) const {
  const OctreeCell& cell = tree_->cell_containing(p);
  return interpolate_in_cell(cell, samples(), p, interp);
}

void CompressedField::reconstruct_add(RealField& out, const Box3& region,
                                      Interpolation interp) const {
  LC_CHECK_ARG(out.grid() == region.extents(),
               "output field must tile the region exactly");
  LC_CHECK_ARG(Box3::of(tree_->grid()).contains(region),
               "region outside compressed grid");
  const auto payload = samples();
  for (const auto& c : tree_->cells()) {
    const Box3 overlap = c.box().intersect(region);
    if (overlap.empty()) continue;
    if (c.rate == 1) {
      // Dense cell: direct copy of the stored lattice (it is the grid).
      const i64 e = c.samples_per_edge();
      for (i64 z = overlap.lo.z; z < overlap.hi.z; ++z) {
        const i64 iz = z - c.corner.z;
        for (i64 y = overlap.lo.y; y < overlap.hi.y; ++y) {
          const i64 iy = y - c.corner.y;
          const double* src = payload.data() + c.sample_offset +
                              static_cast<std::size_t>((iz * e + iy) * e +
                                                       (overlap.lo.x - c.corner.x));
          double* dst = &out(overlap.lo.x - region.lo.x, y - region.lo.y,
                             z - region.lo.z);
          for (i64 x = 0; x < overlap.hi.x - overlap.lo.x; ++x) dst[x] += src[x];
        }
      }
    } else {
      for_each_point(overlap, [&](const Index3& p) {
        out(p.x - region.lo.x, p.y - region.lo.y, p.z - region.lo.z) +=
            interpolate_in_cell(c, payload, p, interp);
      });
    }
  }
}

RealField CompressedField::reconstruct(Interpolation interp) const {
  RealField out(tree_->grid(), 0.0);
  reconstruct_add(out, Box3::of(tree_->grid()), interp);
  return out;
}

}  // namespace lc::sampling
