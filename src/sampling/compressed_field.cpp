#include "sampling/compressed_field.hpp"

#include <algorithm>
#include <array>

#include "common/check.hpp"
#include "common/simd.hpp"
#include "obs/trace.hpp"
#include "sampling/row_interp.hpp"

namespace lc::sampling {

CompressedField::CompressedField(std::shared_ptr<const Octree> tree)
    : tree_(std::move(tree)) {
  LC_CHECK_ARG(tree_ != nullptr, "null octree");
  samples_.assign(tree_->total_samples(), 0.0);
}

CompressedField CompressedField::compress(const RealField& full,
                                          std::shared_ptr<const Octree> tree) {
  LC_TRACE("sampling.compress");
  LC_CHECK_ARG(tree != nullptr, "null octree");
  LC_CHECK_ARG(full.grid() == tree->grid(), "field grid != octree grid");
  const Grid3& g = full.grid();
  CompressedField out(std::move(tree));
  for (const auto& c : out.tree_->cells()) {
    const i64 e = c.samples_per_edge();
    const i64 r = c.rate;
    // Wrap handling hoisted out of the gather loops: cells sit inside the
    // grid, so only the edge-inclusive top lattice plane of a coarse cell
    // can wrap (corner + side == n → index 0), and only on that one plane.
    const bool xwrap = c.corner.x + (e - 1) * r >= g.nx;
    const i64 ex = xwrap ? e - 1 : e;
    double* dst = out.samples_.data() + c.sample_offset;
    for (i64 iz = 0; iz < e; ++iz) {
      i64 z = c.corner.z + iz * r;
      if (z >= g.nz) z = 0;
      for (i64 iy = 0; iy < e; ++iy) {
        i64 y = c.corner.y + iy * r;
        if (y >= g.ny) y = 0;
        const double* src = &full(c.corner.x, y, z);
        if (r == 1) {
          std::copy(src, src + e, dst);
        } else {
          for (i64 ix = 0; ix < ex; ++ix) dst[ix] = src[ix * r];
          if (xwrap) dst[e - 1] = full(0, y, z);
        }
        dst += e;
      }
    }
  }
  return out;
}

double CompressedField::interpolate_in_cell(const OctreeCell& cell,
                                            std::span<const double> payload,
                                            const Index3& p,
                                            Interpolation interp) {
  const std::span<const double> s =
      payload.subspan(cell.sample_offset, cell.sample_count());
  if (cell.rate == 1) {  // dense cell: exact lookup
    return s[cell.sample_index(p.x - cell.corner.x, p.y - cell.corner.y,
                               p.z - cell.corner.z)];
  }
  // Edge-inclusive lattice: base+1 is always a stored sample.
  const i64 e = cell.samples_per_edge();
  const double inv_r = 1.0 / static_cast<double>(cell.rate);
  auto split = [&](i64 coord, i64 corner) {
    const i64 off = coord - corner;
    const i64 base = off / cell.rate;
    const double frac = static_cast<double>(off - base * cell.rate) * inv_r;
    return std::pair<i64, double>(base, frac);
  };
  const auto [bx, fx] = split(p.x, cell.corner.x);
  const auto [by, fy] = split(p.y, cell.corner.y);
  const auto [bz, fz] = split(p.z, cell.corner.z);

  auto at = [&](i64 ix, i64 iy, i64 iz) {
    return s[cell.sample_index(ix, iy, iz)];
  };

  if (interp == Interpolation::kTrilinear) {
    const i64 bx1 = bx + 1;
    const i64 by1 = by + 1;
    const i64 bz1 = bz + 1;
    const double c00 = at(bx, by, bz) * (1 - fx) + at(bx1, by, bz) * fx;
    const double c10 = at(bx, by1, bz) * (1 - fx) + at(bx1, by1, bz) * fx;
    const double c01 = at(bx, by, bz1) * (1 - fx) + at(bx1, by, bz1) * fx;
    const double c11 = at(bx, by1, bz1) * (1 - fx) + at(bx1, by1, bz1) * fx;
    const double c0 = c00 * (1 - fy) + c10 * fy;
    const double c1 = c01 * (1 - fy) + c11 * fy;
    return c0 * (1 - fz) + c1 * fz;
  }

  // Tricubic Catmull-Rom on the 4³ stencil around the base sample. Axes
  // whose stencil would leave the cell's lattice reduce to linear order
  // (clamping the stencil instead would break even linear reproduction:
  // duplicated sample positions violate the first moment condition).
  auto axis_weights = [&](i64 b, double t) {
    if (b >= 1 && b + 2 <= e - 1) return detail::catmull_rom_weights(t);
    return std::array<double, 4>{0.0, 1.0 - t, t, 0.0};
  };
  const auto wx = axis_weights(bx, fx);
  const auto wy = axis_weights(by, fy);
  const auto wz = axis_weights(bz, fz);
  auto clamp_idx = [&](i64 v) { return std::clamp<i64>(v, 0, e - 1); };
  double acc = 0.0;
  for (int dz = -1; dz <= 2; ++dz) {
    const double wzv = wz[static_cast<std::size_t>(dz + 1)];
    if (wzv == 0.0) continue;
    const i64 iz = clamp_idx(bz + dz);
    for (int dy = -1; dy <= 2; ++dy) {
      const double wyz = wy[static_cast<std::size_t>(dy + 1)] * wzv;
      if (wyz == 0.0) continue;
      const i64 iy = clamp_idx(by + dy);
      for (int dx = -1; dx <= 2; ++dx) {
        const double w = wx[static_cast<std::size_t>(dx + 1)];
        if (w == 0.0) continue;
        acc += w * wyz * at(clamp_idx(bx + dx), iy, iz);
      }
    }
  }
  return acc;
}

double CompressedField::value_at(const Index3& p, Interpolation interp) const {
  const OctreeCell& cell = tree_->cell_containing(p);
  return interpolate_in_cell(cell, samples(), p, interp);
}

namespace {

/// Dense (rate-1) cell: the stored lattice IS the grid — add rows directly.
void add_dense_cell(const OctreeCell& c, std::span<const double> payload,
                    std::span<double> out, const Box3& region,
                    const Box3& overlap) {
  const Grid3 rext = region.extents();
  const i64 e = c.samples_per_edge();
  const i64 len = overlap.hi.x - overlap.lo.x;
  for (i64 z = overlap.lo.z; z < overlap.hi.z; ++z) {
    const i64 iz = z - c.corner.z;
    for (i64 y = overlap.lo.y; y < overlap.hi.y; ++y) {
      const i64 iy = y - c.corner.y;
      const double* src = payload.data() + c.sample_offset +
                          static_cast<std::size_t>((iz * e + iy) * e +
                                                   (overlap.lo.x - c.corner.x));
      double* dst = out.data() +
                    rext.index(overlap.lo.x - region.lo.x, y - region.lo.y,
                               z - region.lo.z);
      simd::row_axpy(dst, src, 1.0, static_cast<std::size_t>(len));
    }
  }
}

/// Single-interval coarse cell (samples_per_edge == 2, i.e. side == rate):
/// no axis ever has interior cubic support, so both interpolation orders
/// reduce to trilinear from the cell's 8 corner samples. Evaluated directly
/// — the paper-default octree fragments band boundaries into thousands of
/// such cells, where the general table machinery costs more than the cell.
void add_corner_cell(const OctreeCell& c, std::span<const double> payload,
                     std::span<double> out, const Box3& region,
                     const Box3& overlap, AlignedVector<double>& xfrac) {
  const Grid3 rext = region.extents();
  const double inv_r = 1.0 / static_cast<double>(c.rate);
  const double* s = payload.data() + c.sample_offset;
  const auto xlen = static_cast<std::size_t>(overlap.hi.x - overlap.lo.x);
  // Fractional x positions of the overlap columns, shared by every row.
  if (xfrac.size() < xlen) xfrac.resize(xlen);
  for (std::size_t i = 0; i < xlen; ++i) {
    xfrac[i] = static_cast<double>(overlap.lo.x + static_cast<i64>(i) -
                                   c.corner.x) *
               inv_r;
  }
  for (i64 z = overlap.lo.z; z < overlap.hi.z; ++z) {
    const double fz = static_cast<double>(z - c.corner.z) * inv_r;
    // Blend the two corner planes along z: a<x><y>.
    const double a00 = s[0] + (s[4] - s[0]) * fz;
    const double a10 = s[1] + (s[5] - s[1]) * fz;
    const double a01 = s[2] + (s[6] - s[2]) * fz;
    const double a11 = s[3] + (s[7] - s[3]) * fz;
    for (i64 y = overlap.lo.y; y < overlap.hi.y; ++y) {
      const double fy = static_cast<double>(y - c.corner.y) * inv_r;
      const double c0 = a00 + (a01 - a00) * fy;
      const double c1 = a10 + (a11 - a10) * fy;
      double* dst = out.data() +
                    rext.index(overlap.lo.x - region.lo.x, y - region.lo.y,
                               z - region.lo.z);
      simd::row_lerp_add(dst, xfrac.data(), c0, c1, xlen);
    }
  }
}

}  // namespace

void CompressedField::reconstruct_add_rows(std::span<double> out,
                                           const Box3& region,
                                           Interpolation interp) const {
  LC_CHECK_ARG(out.size() == region.volume(),
               "output span must tile the region exactly");
  LC_CHECK_ARG(Box3::of(tree_->grid()).contains(region),
               "region outside compressed grid");
  const auto payload = samples();
  const Grid3 rext = region.extents();
  const bool cubic = interp == Interpolation::kTricubic;

  // Scratch reused across cells. `crow` holds one y/z-combined sample row
  // with one front and two back guard elements so the 4-tap x kernel never
  // reads out of bounds; guard taps carry exact zero weights, so their
  // (finite) contents never contribute.
  detail::AxisTable xt;
  detail::AxisTable yt;
  detail::AxisTable zt;
  AlignedVector<double> crow;
  AlignedVector<double> xfrac;

  for (const auto& c : tree_->cells()) {
    const Box3 overlap = c.box().intersect(region);
    if (overlap.empty()) continue;
    if (c.rate == 1) {
      add_dense_cell(c, payload, out, region, overlap);
      continue;
    }

    const i64 e = c.samples_per_edge();
    if (e == 2) {
      add_corner_cell(c, payload, out, region, overlap, xfrac);
      continue;
    }
    xt.build(overlap.lo.x, overlap.hi.x, c.corner.x, c.rate, e, cubic);
    yt.build(overlap.lo.y, overlap.hi.y, c.corner.y, c.rate, e, cubic);
    zt.build(overlap.lo.z, overlap.hi.z, c.corner.z, c.rate, e, cubic);
    if (crow.size() < static_cast<std::size_t>(e) + 3) {
      crow.assign(static_cast<std::size_t>(e) + 3, 0.0);
    }
    double* crow_p = crow.data() + 1;
    const double* s = payload.data() + c.sample_offset;
    const auto ue = static_cast<std::size_t>(e);
    const auto xlen = static_cast<std::size_t>(overlap.hi.x - overlap.lo.x);

    for (i64 z = overlap.lo.z; z < overlap.hi.z; ++z) {
      const auto zi = static_cast<std::size_t>(z - overlap.lo.z);
      const i64 bz = zt.base[zi];
      for (i64 y = overlap.lo.y; y < overlap.hi.y; ++y) {
        const auto yi = static_cast<std::size_t>(y - overlap.lo.y);
        const i64 by = yt.base[yi];

        // Collapse the y/z stencil: crow[ix] = Σ wz·wy · s[ix, iy, iz].
        bool first = true;
        for (int dz = 0; dz < 4; ++dz) {
          const double wzv = zt.w[dz][zi];
          if (wzv == 0.0) continue;
          const i64 iz = bz - 1 + dz;
          for (int dy = 0; dy < 4; ++dy) {
            const double wyz = yt.w[dy][yi] * wzv;
            if (wyz == 0.0) continue;
            const i64 iy = by - 1 + dy;
            const double* srow = s + static_cast<std::size_t>((iz * e + iy) * e);
            if (first) {
              simd::row_scale(crow_p, srow, wyz, ue);
              first = false;
            } else {
              simd::row_axpy(crow_p, srow, wyz, ue);
            }
          }
        }

        // Evaluate the whole x-row: coordinates sharing a base sample form
        // runs of up to `rate` points — broadcast the 4 stencil values once
        // per run and sweep the per-point weight lanes with SIMD.
        double* orow = out.data() +
                       rext.index(overlap.lo.x - region.lo.x, y - region.lo.y,
                                  z - region.lo.z);
        std::size_t i = 0;
        while (i < xlen) {
          const std::int32_t b = xt.base[i];
          std::size_t j = i + 1;
          while (j < xlen && xt.base[j] == b) ++j;
          if (cubic) {
            simd::row_weighted4_add(orow + i, xt.w[0].data() + i,
                                    xt.w[1].data() + i, xt.w[2].data() + i,
                                    xt.w[3].data() + i, crow_p[b - 1],
                                    crow_p[b], crow_p[b + 1], crow_p[b + 2],
                                    j - i);
          } else {
            // Trilinear taps 0/3 are identically zero along every axis.
            simd::row_weighted2_add(orow + i, xt.w[1].data() + i,
                                    xt.w[2].data() + i, crow_p[b],
                                    crow_p[b + 1], j - i);
          }
          i = j;
        }
      }
    }
  }
}

void CompressedField::reconstruct_add_scalar(std::span<double> out,
                                             const Box3& region,
                                             Interpolation interp) const {
  LC_CHECK_ARG(out.size() == region.volume(),
               "output span must tile the region exactly");
  LC_CHECK_ARG(Box3::of(tree_->grid()).contains(region),
               "region outside compressed grid");
  const auto payload = samples();
  const Grid3 rext = region.extents();
  for (const auto& c : tree_->cells()) {
    const Box3 overlap = c.box().intersect(region);
    if (overlap.empty()) continue;
    if (c.rate == 1) {
      add_dense_cell(c, payload, out, region, overlap);
    } else {
      for_each_point(overlap, [&](const Index3& p) {
        out[rext.index(p.x - region.lo.x, p.y - region.lo.y,
                       p.z - region.lo.z)] +=
            interpolate_in_cell(c, payload, p, interp);
      });
    }
  }
}

void CompressedField::reconstruct_add_into(std::span<double> out,
                                           const Box3& region,
                                           Interpolation interp) const {
  LC_TRACE("sampling.reconstruct_add");
#if defined(LC_SIMD_SCALAR)
  reconstruct_add_scalar(out, region, interp);
#else
  reconstruct_add_rows(out, region, interp);
#endif
}

void CompressedField::reconstruct_add(RealField& out, const Box3& region,
                                      Interpolation interp) const {
  LC_CHECK_ARG(out.grid() == region.extents(),
               "output field must tile the region exactly");
  reconstruct_add_into(out.span(), region, interp);
}

RealField CompressedField::reconstruct(Interpolation interp) const {
  RealField out(tree_->grid(), 0.0);
  reconstruct_add(out, Box3::of(tree_->grid()), interp);
  return out;
}

}  // namespace lc::sampling
