// CompressedField: the octree-sampled representation of a convolution
// result (paper §4, "Octrees for adaptive sampling").
//
// Payload layout: samples are stored cell by cell in octree order; within a
// cell, sample (ix, iy, iz) of the (side/rate)^3 lattice is at
// sample_offset + (iz·e + iy)·e + ix with e = side/rate, x fastest —
// mirroring the dense field layout so plane-by-plane writers stream.
#pragma once

#include <memory>

#include "comm/wire_codec.hpp"
#include "common/aligned.hpp"
#include "sampling/octree.hpp"
#include "tensor/field.hpp"

namespace lc::sampling {

/// Reconstruction order. Trilinear matches the paper's POC; tricubic
/// (Catmull-Rom) is the higher-order option the paper's future-work
/// section anticipates — noticeably lower error on smooth far fields for
/// the same sample payload (see bench_ablation_sampling).
enum class Interpolation {
  kTrilinear,
  kTricubic,
};

/// An adaptively sampled scalar field: shared octree + sample payload.
class CompressedField {
 public:
  /// Zero-initialised payload over `tree`'s sampling pattern.
  explicit CompressedField(std::shared_ptr<const Octree> tree);

  /// Sample a dense field through the octree (gathers the retained lattice).
  static CompressedField compress(const RealField& full,
                                  std::shared_ptr<const Octree> tree);

  [[nodiscard]] const Octree& octree() const noexcept { return *tree_; }
  [[nodiscard]] std::shared_ptr<const Octree> octree_ptr() const noexcept {
    return tree_;
  }
  [[nodiscard]] std::span<double> samples() noexcept {
    return {samples_.data(), samples_.size()};
  }
  [[nodiscard]] std::span<const double> samples() const noexcept {
    return {samples_.data(), samples_.size()};
  }

  /// Raw payload size in bytes (every sample as a full double — the
  /// in-memory representation, and the wire format of the off codec).
  [[nodiscard]] std::size_t sample_bytes() const noexcept {
    return samples_.size() * sizeof(double);
  }
  /// Payload size in bytes as `codec` encodes it (per-cell q16 scale
  /// headers included; wire padding happens per bundle, not per field).
  /// Equals sample_bytes() for WireCodec::kOff — the codec-aware figure
  /// comm-volume reports quote instead of hardcoding sizeof(double).
  [[nodiscard]] std::size_t encoded_sample_bytes(
      comm::WireCodec codec) const noexcept {
    return samples_.size() * comm::codec_sample_bytes(codec) +
           tree_->cells().size() * comm::codec_cell_header_bytes(codec);
  }
  /// Octree cell count (per-cell sample counts live on octree().cells()).
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return tree_->cells().size();
  }
  /// Metadata size in bytes (5 int32 per cell).
  [[nodiscard]] std::size_t metadata_bytes() const noexcept {
    return tree_->cells().size() * 5 * sizeof(std::int32_t);
  }

  /// Interpolated value at grid point p (within p's cell; tricubic clamps
  /// its 4-point stencil at cell faces, degrading gracefully to lower
  /// order there).
  [[nodiscard]] double value_at(
      const Index3& p, Interpolation interp = Interpolation::kTrilinear) const;

  /// Add the interpolated reconstruction over `region` into `out`, where
  /// `out` is a tight field covering exactly `region` of the global grid.
  /// Dispatches to the vectorized row engine (reconstruct_add_rows), or to
  /// the scalar per-point reference when the build forces LC_SIMD=off.
  void reconstruct_add(RealField& out, const Box3& region,
                       Interpolation interp = Interpolation::kTrilinear) const;

  /// Raw-span variant of reconstruct_add for external tilers (the z-slab
  /// workers of core::accumulate_region): `out` is x-fastest tight storage
  /// of exactly region.volume() doubles covering `region`.
  void reconstruct_add_into(std::span<double> out, const Box3& region,
                            Interpolation interp) const;

  /// The vectorized engine: per-axis weight/index tables built once per
  /// cell overlap (row_interp.hpp), sample rows combined with SIMD
  /// fmadd kernels, whole x-rows evaluated per (rate, phase) run.
  void reconstruct_add_rows(std::span<double> out, const Box3& region,
                            Interpolation interp) const;

  /// The scalar per-point reference path (one interpolate_in_cell call per
  /// grid point). Kept callable in every build: it is the ground truth the
  /// row engine is property-tested against, and the default path under
  /// LC_SIMD=off.
  void reconstruct_add_scalar(std::span<double> out, const Box3& region,
                              Interpolation interp) const;

  /// Reconstruct the full grid (dense); convenience for error measurement.
  [[nodiscard]] RealField reconstruct(
      Interpolation interp = Interpolation::kTrilinear) const;

 private:
  static double interpolate_in_cell(const OctreeCell& cell,
                                    std::span<const double> payload,
                                    const Index3& p, Interpolation interp);

  std::shared_ptr<const Octree> tree_;
  AlignedVector<double> samples_;
};

}  // namespace lc::sampling
