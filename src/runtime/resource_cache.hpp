// ResourceCache: the keyed plan/resource cache of the serving runtime.
//
// Everything the convolution pipeline builds that is reusable across
// requests — 1D FFT plans and their twiddle tables, per-sub-domain octrees,
// materialised kernel spectra, whole LowCommConvolution engines, and
// (optionally) content-addressed results — lives here under a string key.
// Entries are built exactly once under a striped build mutex (concurrent
// misses on *different* keys build in parallel; concurrent misses on the
// same stripe serialise and the losers find the winner's entry), LRU-evicted
// against a byte budget, and mirrored byte-for-byte into an optional
// device::DeviceContext so cache residency shows up in the same capacity
// accounting as pipeline buffers. This is the P3DFFT/OpenFFT "pre-initialise
// once, transform many times" idea lifted to the serving layer.
#pragma once

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "device/device.hpp"

namespace lc::runtime {

/// Cache-wide counters (a snapshot; see ResourceCache::stats()).
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;    ///< entries displaced by the byte budget
  std::size_t uncacheable = 0;  ///< builds too large to retain
  std::size_t bytes = 0;        ///< resident bytes now
  std::size_t entries = 0;      ///< resident entries now

  [[nodiscard]] double hit_rate() const noexcept {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Thread-safe keyed LRU cache of shared immutable resources.
class ResourceCache {
 public:
  struct Config {
    std::size_t byte_budget = 512ull << 20;
    /// Optional device mirror: every resident byte is register_alloc'ed
    /// here and register_free'd on eviction/clear, so cache + workspace
    /// share one capacity number.
    device::DeviceContext* device = nullptr;
    std::size_t stripes = 16;  ///< build-mutex stripes
  };

  // (Delegation instead of a `= {}` default argument: GCC cannot evaluate
  // a braced default for a nested aggregate inside its enclosing class.)
  ResourceCache() : ResourceCache(Config{}) {}
  explicit ResourceCache(Config config);
  ~ResourceCache();

  ResourceCache(const ResourceCache&) = delete;
  ResourceCache& operator=(const ResourceCache&) = delete;

  /// Return the entry under `key`, building it with `build` on a miss.
  /// `bytes` is the entry's accounted size. Entries larger than the budget
  /// are returned but not retained (counted as uncacheable).
  template <typename T>
  [[nodiscard]] std::shared_ptr<const T> get_or_build(
      const std::string& key, std::size_t bytes,
      const std::function<std::shared_ptr<const T>()>& build) {
    return std::static_pointer_cast<const T>(get_or_build_erased(
        key, bytes,
        [&]() -> std::shared_ptr<const void> { return build(); }));
  }

  /// Lookup without building; nullptr on miss. Counts toward hit/miss.
  [[nodiscard]] std::shared_ptr<const void> peek(const std::string& key);

  /// Drop every entry (device bytes are returned).
  void clear();

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t byte_budget() const noexcept {
    return config_.byte_budget;
  }

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru_it;  // position in lru_ (front = hot)
  };

  [[nodiscard]] std::shared_ptr<const void> get_or_build_erased(
      const std::string& key, std::size_t bytes,
      const std::function<std::shared_ptr<const void>()>& build);

  /// Insert under the global lock, evicting LRU entries to fit. Returns
  /// false if the entry cannot fit (too big, or the device refused).
  bool insert_locked(const std::string& key,
                     std::shared_ptr<const void> value, std::size_t bytes,
                     std::vector<std::shared_ptr<const void>>& doomed);

  Config config_;
  mutable std::mutex mutex_;                    // map + lru + stats
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;                  // front = most recent
  CacheStats stats_;
  std::vector<std::mutex> build_stripes_;
};

}  // namespace lc::runtime
