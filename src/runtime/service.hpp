// ConvolutionService: a multi-tenant serving runtime for low-communication
// 3D convolution.
//
// The paper's pipeline is phrased per call: build plans, build octrees,
// convolve, throw everything away. A serving deployment answers *streams*
// of requests over a handful of (N, k, kernel) configurations, so nearly
// all of that setup is redundant across calls. The service owns the pieces
// that make repeat requests cheap:
//
//   * a keyed ResourceCache of FFT plans (+ twiddle tables), per-sub-domain
//     octrees, materialised kernel spectra, whole convolution engines, and
//     content-addressed results — built once under striped mutexes and
//     LRU-evicted against a byte budget that is mirrored into the
//     simulated device's capacity accounting;
//   * a BufferArena recycling slab/pencil scratch between requests;
//   * a bounded job queue + dispatcher thread that admits requests (with
//     caller-visible QueueFull / DeadlineExceeded rejection), batches the
//     sub-domain convolutions of concurrently queued requests into shared
//     parallel_for waves over one ThreadPool, and accumulates per-region
//     tiles in a second wave;
//   * per-request and service-wide statistics (queue wait, cache hit rate,
//     arena bytes reused, p50/p95/p99 latency via the obs histograms)
//     rendered via the table helpers.
#pragma once

#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/pipeline.hpp"
#include "device/device.hpp"
#include "obs/metrics.hpp"
#include "planner/planner.hpp"
#include "runtime/resource_cache.hpp"

namespace lc::runtime {

/// Admission rejection: the bounded queue is at capacity.
class QueueFull : public Error {
 public:
  explicit QueueFull(const std::string& what) : Error(what) {}
};

/// Admission rejection: the request's queue deadline expired before a
/// dispatch wave picked it up.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what) : Error(what) {}
};

/// Service tuning knobs.
struct ServiceConfig {
  /// Bounded admission queue; submit() beyond this throws QueueFull.
  std::size_t queue_capacity = 64;
  /// Max requests drained into one dispatch wave (their sub-domain tasks
  /// share the wave's parallel_for). 0 → drain everything available.
  std::size_t max_wave = 8;
  /// Byte budget of the plan/octree/spectrum/engine/result cache.
  std::size_t cache_budget_bytes = 512ull << 20;
  /// Idle bytes the workspace arena may retain between requests.
  std::size_t arena_retain_bytes = 256ull << 20;
  /// Memoise full responses by content hash (exact-replay hits skip the
  /// pipeline entirely — the serving layer's biggest win).
  bool cache_results = true;
  /// Materialise kernel spectra into cached dense tables instead of
  /// evaluating the closed form per bin (trades device bytes for per-bin
  /// work; only worth it for expensive kernels).
  bool materialize_spectra = false;
  /// Simulated device the service accounts all resident bytes against.
  device::DeviceSpec device = device::DeviceSpec::unlimited();
  /// Execution-planner mode (defaults to the LC_PLANNER environment
  /// variable). kOff dispatches every request with exactly its own params —
  /// the pre-planner behaviour, bit for bit. Otherwise request params are
  /// resolved through the planner first: explicit params are validated /
  /// repaired (an illegal k that does not divide N, an over-budget batch),
  /// and `params.subdomain == 0` asks for a full auto-tuned plan. Winning
  /// plans are cached in the resource cache (runtime/plan_provider.hpp).
  planner::Mode planner_mode = planner::mode_from_env();
  /// Pool the dispatch waves fan out on (nullptr → serial waves).
  ThreadPool* pool = &ThreadPool::global();
  /// Start with dispatch paused (deterministic admission tests).
  bool start_paused = false;
};

/// One convolution request. `input` must cover the full params-implied
/// grid; `subdomain`, when set, restricts the work to that sub-domain and
/// the response output is the accumulated tile over its box (the
/// distributed serving pattern: each worker requests only the regions it
/// owns).
struct ConvolutionRequest {
  RealField input;
  std::shared_ptr<const green::KernelSpectrum> kernel;
  core::LowCommParams params;
  std::optional<std::size_t> subdomain;
  /// Max seconds the request may wait in the queue before it is rejected
  /// with DeadlineExceeded instead of being dispatched.
  std::optional<double> queue_deadline_seconds;
};

/// Per-request measurements, returned alongside the result.
struct RequestStats {
  double queue_seconds = 0.0;   ///< admission → wave pickup
  double run_seconds = 0.0;     ///< wave pickup → response ready
  /// Planner-modeled seconds for this request's share of the plan (its
  /// sub-domain count over the full decomposition). 0 when the planner is
  /// off or the response came from the result cache.
  double predicted_seconds = 0.0;
  /// Realized seconds the prediction is compared against (run_seconds for
  /// executed requests; 0 for result-cache hits, which ran nothing).
  double measured_seconds = 0.0;
  bool result_cache_hit = false;
  bool engine_cache_hit = false;
  bool plan_cache_hit = false;  ///< execution plan found warm in the cache
  std::size_t subdomains = 0;   ///< sub-domain tasks this request spanned

  /// predicted_seconds / measured_seconds (0 when either is unknown) — the
  /// per-request plan-vs-actual drift ratio. >1 = planner pessimistic.
  [[nodiscard]] double pred_over_actual() const noexcept {
    return (predicted_seconds > 0.0 && measured_seconds > 0.0)
               ? predicted_seconds / measured_seconds
               : 0.0;
  }
};

/// Response: the convolution result plus this request's stats.
struct ConvolutionResponse {
  core::LowCommResult result;
  RequestStats stats;
};

/// Service-wide counters and latency digests.
struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;            ///< completed exceptionally
  std::size_t rejected_queue_full = 0;
  std::size_t rejected_deadline = 0;
  std::size_t result_hits = 0;
  std::size_t engine_hits = 0;
  std::size_t waves = 0;             ///< dispatch waves executed
  std::size_t wave_tasks = 0;        ///< sub-domain tasks across all waves
  double queue_p50_seconds = 0.0;
  double queue_p95_seconds = 0.0;
  double queue_p99_seconds = 0.0;
  double latency_p50_seconds = 0.0;
  double latency_p95_seconds = 0.0;
  double latency_p99_seconds = 0.0;
  std::size_t planned = 0;           ///< executed requests with a plan price
  /// Digest of per-request predicted/measured drift ratios (1.0 = the
  /// planner's compute model nailed it; only planned, executed requests
  /// contribute). 0 until the first planned request completes.
  double drift_p50_ratio = 0.0;
  double drift_p95_ratio = 0.0;
  CacheStats cache;                  ///< resource-cache snapshot
  BufferArena::Stats arena;          ///< workspace-arena snapshot
  std::size_t device_used_bytes = 0;
  std::size_t device_peak_bytes = 0;
};

/// Multi-tenant convolution service (see file comment).
class ConvolutionService {
 public:
  explicit ConvolutionService(ServiceConfig config = {});
  ~ConvolutionService();

  ConvolutionService(const ConvolutionService&) = delete;
  ConvolutionService& operator=(const ConvolutionService&) = delete;

  /// Admit a request; throws QueueFull when the queue is at capacity.
  /// The future resolves with the response, or with the pipeline's
  /// exception (DeadlineExceeded if the queue deadline expired first).
  [[nodiscard]] std::future<ConvolutionResponse> submit(
      ConvolutionRequest request);

  /// submit() + wait: the blocking convenience used by examples/benches.
  [[nodiscard]] ConvolutionResponse run(ConvolutionRequest request);

  /// Halt / resume dispatch (queued requests stay queued while paused).
  void pause();
  void resume();

  /// Block until the queue is drained and no wave is in flight (while
  /// paused: until the in-flight wave finishes; queued jobs stay queued).
  void wait_idle();

  /// Drop every cached resource and trim the arena (cold-start state).
  void clear_caches();

  [[nodiscard]] ServiceStats stats() const;
  /// The stats rendered as a table (bench/ops output).
  [[nodiscard]] TextTable stats_table() const;

  [[nodiscard]] const device::DeviceContext& device() const noexcept {
    return device_;
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Job;
  struct Wave;

  void dispatcher_loop();
  void run_wave(Wave& wave);
  [[nodiscard]] std::shared_ptr<const core::LowCommConvolution> engine_for(
      const ConvolutionRequest& request, const std::string& engine_key,
      bool& cache_hit);

  ServiceConfig config_;
  device::DeviceContext device_;
  BufferArena arena_;
  ResourceCache cache_;
  planner::Planner planner_;

  mutable std::mutex mutex_;  // queue + counters
  std::condition_variable dispatch_cv_;
  std::condition_variable idle_cv_;
  std::vector<std::unique_ptr<Job>> queue_;
  bool paused_ = false;
  bool stopping_ = false;
  std::size_t in_flight_ = 0;  // jobs picked up, response not yet delivered

  ServiceStats counters_;  // digest fields recomputed in stats()
  // Per-instance latency histograms (not in the global registry: two
  // services in one process must not pollute each other's digests).
  // Lock-free record() — waves never take mutex_ just to log a sample.
  obs::Histogram queue_hist_;
  obs::Histogram latency_hist_;
  obs::Histogram drift_hist_;  // predicted/measured ratio per planned request

  std::thread dispatcher_;
};

}  // namespace lc::runtime
