// Cached planner lookups for the serving runtime: winning ExecutionPlans
// live in the same ResourceCache as FFT plans / octrees / engines, keyed by
// planner::cache_key (shape, topology, device, accuracy, mode, pinned
// knobs). A warm lookup skips candidate enumeration entirely — observable
// via the "planner.cache_hits" counter.
#pragma once

#include <memory>

#include "planner/planner.hpp"
#include "runtime/resource_cache.hpp"

namespace lc::runtime {

/// Resolve `request` to a plan through `cache`, running `planner.plan()`
/// only on a cold key. `cache_hit` (optional) reports whether the plan was
/// already resident. Increments "planner.cache_hits"/"planner.cache_misses"
/// in the global registry.
[[nodiscard]] std::shared_ptr<const planner::ExecutionPlan> plan_cached(
    ResourceCache& cache, const planner::Planner& planner,
    const planner::PlanRequest& request, bool* cache_hit = nullptr);

}  // namespace lc::runtime
