#include "runtime/plan_provider.hpp"

#include "obs/metrics.hpp"

namespace lc::runtime {

std::shared_ptr<const planner::ExecutionPlan> plan_cached(
    ResourceCache& cache, const planner::Planner& planner,
    const planner::PlanRequest& request, bool* cache_hit) {
  static obs::Counter& hits =
      obs::Registry::global().counter("planner.cache_hits");
  static obs::Counter& misses =
      obs::Registry::global().counter("planner.cache_misses");

  const std::string key = planner::cache_key(request, planner.config().mode);
  // Plans are small (the ranked list dominates); accounted at a flat
  // estimate like the octree entries.
  const std::size_t bytes = sizeof(planner::ExecutionPlan) + 8192;
  bool built = false;
  auto plan = cache.get_or_build<planner::ExecutionPlan>(
      key, bytes, [&]() -> std::shared_ptr<const planner::ExecutionPlan> {
        built = true;
        return std::make_shared<const planner::ExecutionPlan>(
            planner.plan(request));
      });
  (built ? misses : hits).add(1);
  if (cache_hit != nullptr) *cache_hit = !built;
  return plan;
}

}  // namespace lc::runtime
