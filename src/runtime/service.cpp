#include "runtime/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <utility>

#include "common/check.hpp"
#include "common/runtime_flags.hpp"
#include "core/accumulator.hpp"
#include "fft/fft1d.hpp"
#include "fft/real_fft.hpp"
#include "green/kernel.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "planner/calibration.hpp"
#include "runtime/plan_provider.hpp"
#include "sampling/octree.hpp"

namespace lc::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// FNV-1a over raw bytes; two different seeds give a 128-bit content hash
/// (collisions across distinct inputs are what would make the result cache
/// silently wrong, so 64 bits is not enough headroom for long-lived
/// deployments).
std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string content_hash(std::span<const double> values) {
  const void* data = values.data();
  const std::size_t len = values.size() * sizeof(double);
  char buf[2 * 16 + 1];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(
                    fnv1a(data, len, 0xcbf29ce484222325ull)),
                static_cast<unsigned long long>(
                    fnv1a(data, len, 0x9e3779b97f4a7c15ull)));
  return buf;
}

/// Every parameter that changes the numerical result or the resources an
/// engine builds must appear here; two requests with equal keys may share
/// an engine, octrees, and (given equal content hashes) results.
std::string engine_key_of(const ConvolutionRequest& request) {
  const Grid3& g = request.input.grid();
  const core::LowCommParams& p = request.params;
  std::string key = "engine/n=" + std::to_string(g.nx);
  key += "/k=" + std::to_string(p.subdomain);
  key += "/r=" + std::to_string(p.far_rate);
  key += "/bb=" + std::to_string(p.boundary_band);
  key += "/dh=" + std::to_string(p.dense_halo);
  key += "/B=" + std::to_string(p.batch);
  key += "/interp=" +
         std::to_string(static_cast<int>(p.interpolation));
  key += "/ur=" +
         (p.uniform_rate ? std::to_string(*p.uniform_rate) : std::string("-"));
  // Single-process convolves never hit the wire, but the engine's reported
  // exchanged_bytes (and cached LowCommResults derived from this key) are
  // priced under the codec — don't share them across LC_WIRE changes.
  key += std::string("/wire=") + comm::codec_name(p.wire);
  key += "/kernel=" + request.kernel->cache_key();
  return key;
}

/// Octrees depend on the sampling policy but not on the kernel or batch.
std::string octree_key_of(const ConvolutionRequest& request, std::size_t d) {
  const Grid3& g = request.input.grid();
  const core::LowCommParams& p = request.params;
  std::string key = "octree/n=" + std::to_string(g.nx);
  key += "/k=" + std::to_string(p.subdomain);
  key += "/r=" + std::to_string(p.far_rate);
  key += "/bb=" + std::to_string(p.boundary_band);
  key += "/dh=" + std::to_string(p.dense_halo);
  key += "/ur=" +
         (p.uniform_rate ? std::to_string(*p.uniform_rate) : std::string("-"));
  key += "/d=" + std::to_string(d);
  return key;
}

std::size_t plan_bytes_estimate(std::size_t n) {
  if (fft::is_pow2(n)) {
    return sizeof(fft::Fft1D) + n / 2 * sizeof(std::complex<double>) +
           n * sizeof(std::size_t);
  }
  // Bluestein path: chirp tables + convolution spectrum at next_pow2(2n).
  return sizeof(fft::Fft1D) +
         3 * fft::next_pow2(2 * n) * sizeof(std::complex<double>);
}

constexpr std::size_t kOctreeBytesEstimate = 32 * 1024;

}  // namespace

/// One admitted request and the state threaded through its wave.
struct ConvolutionService::Job {
  ConvolutionRequest request;
  std::promise<ConvolutionResponse> promise;
  Clock::time_point enqueued;
  std::int64_t enqueue_ns = 0;  // tracer clock at submit; 0 → tracing off

  // Filled in by run_wave.
  RequestStats stats;
  std::string engine_key;
  std::string result_key;  // empty when result caching is off
  // The resolved execution plan (null under planner::Mode::kOff) and the
  // compute rate its price was quoted at — the plan-vs-actual telemetry
  // pairs these with the realized run time at response delivery.
  std::shared_ptr<const planner::ExecutionPlan> plan;
  double plan_rate_pps = 0.0;
  std::shared_ptr<const core::LowCommConvolution> engine;
  std::vector<std::size_t> subdomains;  // sub-domain indices to convolve
  // One slot per sub-domain task (CompressedField has no empty state, so
  // slots are optional until the convolve wave fills them).
  std::vector<std::optional<sampling::CompressedField>> slots;
  std::vector<sampling::CompressedField> contributions;
  std::vector<std::exception_ptr> task_errors;  // one per slot
  Clock::time_point picked_up;
  bool responded = false;

  void respond(ConvolutionResponse response) {
    responded = true;
    promise.set_value(std::move(response));
  }
  void fail(std::exception_ptr error) {
    responded = true;
    promise.set_exception(std::move(error));
  }
};

struct ConvolutionService::Wave {
  std::vector<std::unique_ptr<Job>> jobs;
};

ConvolutionService::ConvolutionService(ServiceConfig config)
    : config_(config),
      device_(config.device),
      arena_(config.arena_retain_bytes,
             [this](std::ptrdiff_t delta) {
               if (delta > 0) {
                 device_.register_alloc(static_cast<std::size_t>(delta));
               } else if (delta < 0) {
                 device_.register_free(static_cast<std::size_t>(-delta));
               }
             }),
      cache_(ResourceCache::Config{config.cache_budget_bytes, &device_, 16}),
      planner_([&config] {
        planner::PlannerConfig pc;
        pc.mode = config.planner_mode;
        return planner::Planner(pc);
      }()),
      paused_(config.start_paused) {
  LC_CHECK_ARG(config_.queue_capacity >= 1, "queue capacity must be >= 1");
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

ConvolutionService::~ConvolutionService() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  dispatch_cv_.notify_all();
  dispatcher_.join();
  // Reject anything still queued; callers holding futures must not hang.
  for (auto& job : queue_) {
    job->fail(std::make_exception_ptr(
        QueueFull("convolution service stopped before dispatch")));
  }
  queue_.clear();
}

std::future<ConvolutionResponse> ConvolutionService::submit(
    ConvolutionRequest request) {
  LC_CHECK_ARG(request.kernel != nullptr, "request kernel is null");
  LC_CHECK_ARG(!request.input.empty(), "request input is empty");
  auto job = std::make_unique<Job>();
  job->request = std::move(request);
  job->enqueued = Clock::now();
  if (obs::Tracer::global().enabled()) {
    job->enqueue_ns = obs::Tracer::global().now_ns();
  }
  auto future = job->promise.get_future();
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      throw QueueFull("convolution service is shutting down");
    }
    if (queue_.size() >= config_.queue_capacity) {
      ++counters_.rejected_queue_full;
      throw QueueFull("convolution service queue is full (" +
                      std::to_string(config_.queue_capacity) +
                      " requests waiting)");
    }
    queue_.push_back(std::move(job));
    ++counters_.submitted;
  }
  dispatch_cv_.notify_one();
  return future;
}

ConvolutionResponse ConvolutionService::run(ConvolutionRequest request) {
  return submit(std::move(request)).get();
}

void ConvolutionService::pause() {
  std::lock_guard lock(mutex_);
  paused_ = true;
}

void ConvolutionService::resume() {
  {
    std::lock_guard lock(mutex_);
    paused_ = false;
  }
  dispatch_cv_.notify_all();
}

void ConvolutionService::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] {
    return (queue_.empty() || paused_) && in_flight_ == 0;
  });
}

void ConvolutionService::clear_caches() {
  cache_.clear();
  arena_.trim();
}

void ConvolutionService::dispatcher_loop() {
  for (;;) {
    Wave wave;
    {
      std::unique_lock lock(mutex_);
      dispatch_cv_.wait(lock, [this] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (stopping_) return;
      const std::size_t take =
          config_.max_wave == 0 ? queue_.size()
                                : std::min(queue_.size(), config_.max_wave);
      wave.jobs.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        wave.jobs.push_back(std::move(queue_[i]));
      }
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(take));
      in_flight_ += take;
      ++counters_.waves;
    }

    run_wave(wave);

    {
      std::lock_guard lock(mutex_);
      in_flight_ -= wave.jobs.size();
    }
    idle_cv_.notify_all();
  }
}

std::shared_ptr<const core::LowCommConvolution>
ConvolutionService::engine_for(const ConvolutionRequest& request,
                               const std::string& engine_key,
                               bool& cache_hit) {
  const Grid3& grid = request.input.grid();

  // Hermitian kernels under LC_REAL=auto run the half-spectrum pipeline, so
  // the cached materialisation stores only the (nx/2+1)·ny·nz half grid —
  // half the ResourceCache bytes of a full DenseSpectrum.
  const bool real_dispatch = real_path_enabled() && request.kernel->hermitian();
  std::shared_ptr<const green::KernelSpectrum> kernel = request.kernel;
  if (config_.materialize_spectra) {
    const std::size_t full_bytes =
        grid.size() * sizeof(std::complex<double>) +
        sizeof(green::DenseSpectrum);
    if (real_dispatch) {
      const std::string spectrum_key =
          "spectrum-half/n=" + std::to_string(grid.nx) +
          "/kernel=" + kernel->cache_key();
      const Grid3 half{grid.nx / 2 + 1, grid.ny, grid.nz};
      const std::size_t bytes =
          half.size() * sizeof(std::complex<double>) +
          sizeof(green::HalfDenseSpectrum);
      kernel = cache_.get_or_build<green::HalfDenseSpectrum>(
          spectrum_key, bytes,
          [&]() -> std::shared_ptr<const green::HalfDenseSpectrum> {
            obs::Registry::global()
                .counter("spectrum.half_bytes_saved")
                .add(full_bytes - bytes);
            return std::make_shared<green::HalfDenseSpectrum>(
                request.kernel->materialize_half(grid), grid,
                request.kernel->name());
          });
    } else {
      const std::string spectrum_key =
          "spectrum/n=" + std::to_string(grid.nx) +
          "/kernel=" + kernel->cache_key();
      kernel = cache_.get_or_build<green::DenseSpectrum>(
          spectrum_key, full_bytes,
          [&]() -> std::shared_ptr<const green::DenseSpectrum> {
            return std::make_shared<green::DenseSpectrum>(
                request.kernel->materialize(grid), request.kernel->name());
          });
    }
  }

  // The length-N plan is the most reusable resource of all: every engine
  // over an N³ grid shares one, whatever its kernel or sampling policy.
  const std::size_t n = static_cast<std::size_t>(grid.nx);
  const auto plan = cache_.get_or_build<fft::Fft1D>(
      "plan/n=" + std::to_string(n), plan_bytes_estimate(n),
      [&]() -> std::shared_ptr<const fft::Fft1D> {
        return std::make_shared<fft::Fft1D>(n);
      });
  // The r2c/c2r plan rides the same cache when the real path is active
  // (its embedded half-length complex plan is the heavy part).
  std::shared_ptr<const fft::RealFft1D> real_plan;
  if (real_dispatch) {
    real_plan = cache_.get_or_build<fft::RealFft1D>(
        "plan-real/n=" + std::to_string(n), plan_bytes_estimate(n / 2) + n / 2,
        [&]() -> std::shared_ptr<const fft::RealFft1D> {
          return std::make_shared<fft::RealFft1D>(n);
        });
  }

  // Engines are accounted at metadata size only: their heavy parts (plan,
  // spectrum, octrees) are separate cache entries with their own budgets.
  const auto params = request.params;
  const std::size_t engine_bytes =
      sizeof(core::LowCommConvolution) + 4096;
  bool built = false;
  auto engine = cache_.get_or_build<core::LowCommConvolution>(
      engine_key, engine_bytes,
      [&]() -> std::shared_ptr<const core::LowCommConvolution> {
        built = true;
        core::LocalConvolverConfig cfg;
        cfg.batch = params.batch;
        // The service parallelises ACROSS (request, sub-domain) tasks from
        // the dispatcher; engines must stay serial inside or the wave's
        // parallel_for would nest.
        cfg.pool = nullptr;
        cfg.device = &device_;
        cfg.arena = &arena_;
        cfg.plan = plan;
        cfg.real_plan = real_plan;
        return std::make_shared<core::LowCommConvolution>(grid, kernel,
                                                          params, cfg);
      });
  cache_hit = !built;
  return engine;
}

void ConvolutionService::run_wave(Wave& wave) {
  LC_TRACE("service.wave");
  const Clock::time_point wave_start = Clock::now();

  // Admission bookkeeping + result-cache short-circuit, job by job.
  {
  LC_TRACE("service.admission");
  for (auto& job : wave.jobs) {
    job->picked_up = wave_start;
    job->stats.queue_seconds =
        std::chrono::duration<double>(wave_start - job->enqueued).count();
    queue_hist_.record(job->stats.queue_seconds);
    const auto& deadline = job->request.queue_deadline_seconds;
    if (deadline && job->stats.queue_seconds > *deadline) {
      std::lock_guard lock(mutex_);
      ++counters_.rejected_deadline;
      job->fail(std::make_exception_ptr(DeadlineExceeded(
          "request waited " + format_fixed(job->stats.queue_seconds, 3) +
          " s in queue, deadline was " + format_fixed(*deadline, 3) + " s")));
      continue;
    }

    try {
      if (config_.planner_mode != planner::Mode::kOff) {
        // Resolve the request's params through the planner: explicit params
        // are validated / repaired, subdomain == 0 asks for a full search.
        // Keyed cache lookup — repeat shapes skip enumeration entirely.
        planner::PlanRequest preq;
        preq.n = job->request.input.grid().nx;
        preq.device = config_.device;
        preq.base = job->request.params;
        if (job->request.params.subdomain != 0) {
          preq.pinned = job->request.params;
        }
        const auto plan =
            plan_cached(cache_, planner_, preq, &job->stats.plan_cache_hit);
        job->request.params = plan->params();
        job->plan = plan;
        // The rate the plan's compute price is quoted at: the request
        // default unless a calibration fit overrides it (plan cache keys
        // are salted with the calibration, so a cached plan always matches
        // the currently loaded fit).
        job->plan_rate_pps =
            planner::apply_calibration(preq, planner::calibration_from_env())
                .compute_rate_pps;
      }
      job->engine_key = engine_key_of(job->request);
      if (config_.cache_results) {
        std::string scope = "full";
        std::string hash;
        if (job->request.subdomain) {
          scope = "d=" + std::to_string(*job->request.subdomain);
          // A sub-domain's contribution depends only on the input inside
          // its box, so hash just the chunk: requests over different full
          // fields that agree on this sub-domain still share the entry.
          const core::DomainDecomposition decomp(
              job->request.input.grid(), job->request.params.subdomain);
          LC_CHECK_ARG(*job->request.subdomain < decomp.count(),
                       "request sub-domain index out of range");
          const RealField chunk = job->request.input.extract(
              decomp.subdomain(*job->request.subdomain));
          hash = content_hash(chunk.span());
        } else {
          hash = content_hash(job->request.input.span());
        }
        job->result_key =
            "result/" + job->engine_key + "/" + scope + "/in=" + hash;
        if (auto cached = cache_.peek(job->result_key)) {
          const auto& result =
              *std::static_pointer_cast<const core::LowCommResult>(cached);
          job->stats.result_cache_hit = true;
          job->stats.subdomains = 0;
          job->stats.run_seconds = seconds_since(wave_start);
          {
            std::lock_guard lock(mutex_);
            ++counters_.result_hits;
            ++counters_.completed;
          }
          latency_hist_.record(job->stats.queue_seconds +
                               job->stats.run_seconds);
          if (job->enqueue_ns != 0 && obs::Tracer::global().enabled()) {
            obs::Tracer::global().record(
                "service.request", job->enqueue_ns,
                obs::Tracer::global().now_ns() - job->enqueue_ns);
          }
          job->respond(ConvolutionResponse{result, job->stats});
          continue;
        }
      }

      bool engine_hit = false;
      job->engine = engine_for(job->request, job->engine_key, engine_hit);
      job->stats.engine_cache_hit = engine_hit;
      if (engine_hit) {
        std::lock_guard lock(mutex_);
        ++counters_.engine_hits;
      }

      const auto& decomp = job->engine->decomposition();
      if (job->request.subdomain) {
        LC_CHECK_ARG(*job->request.subdomain < decomp.count(),
                     "request sub-domain index out of range");
        job->subdomains = {*job->request.subdomain};
      } else {
        job->subdomains.resize(decomp.count());
        for (std::size_t d = 0; d < decomp.count(); ++d) {
          job->subdomains[d] = d;
        }
      }
      job->stats.subdomains = job->subdomains.size();
      if (job->plan != nullptr && decomp.count() > 0) {
        // The plan prices the full decomposition (its single-rank request
        // owns every sub-domain); a sub-domain-scoped request executes only
        // its share of that work.
        job->stats.predicted_seconds =
            job->plan->cost.compute_seconds *
            static_cast<double>(job->subdomains.size()) /
            static_cast<double>(decomp.count());
      }
      job->slots.resize(job->subdomains.size());
    } catch (...) {
      std::lock_guard lock(mutex_);
      ++counters_.failed;
      job->fail(std::current_exception());
    }
  }
  }  // service.admission

  // Flatten every live job's sub-domain work into one shared task list —
  // this is the wave: concurrently queued requests batch into a single
  // parallel_for instead of running their own pools back to back.
  struct Task {
    Job* job;
    std::size_t slot;  // index into job->subdomains / contributions
  };
  std::vector<Task> tasks;
  for (auto& job : wave.jobs) {
    if (job->responded) continue;
    job->task_errors.assign(job->subdomains.size(), nullptr);
    for (std::size_t i = 0; i < job->subdomains.size(); ++i) {
      tasks.push_back(Task{job.get(), i});
    }
  }

  const auto convolve_task = [&](std::size_t t) {
    LC_TRACE("service.task");
    Task& task = tasks[t];
    Job& job = *task.job;
    const std::size_t d = job.subdomains[task.slot];
    try {
      // Octrees outlive engines in the cache: a re-built engine re-adopts
      // them instead of re-deriving the sampling pattern. Accounted at a
      // flat estimate — cell counts aren't known before building and stay
      // small (tens of bytes per cell).
      const auto tree = cache_.get_or_build<sampling::Octree>(
          octree_key_of(job.request, d), kOctreeBytesEstimate,
          [&]() -> std::shared_ptr<const sampling::Octree> {
            const auto& decomp = job.engine->decomposition();
            return std::make_shared<sampling::Octree>(
                decomp.grid(), decomp.subdomain(d),
                job.request.params.make_policy());
          });
      job.engine->seed_octree(d, tree);
      job.slots[task.slot].emplace(
          job.engine->convolve_one(job.request.input, d));
    } catch (...) {
      job.task_errors[task.slot] = std::current_exception();
    }
  };

  ThreadPool* pool = config_.pool;
  const bool can_parallel =
      pool != nullptr && pool->size() > 1 && !pool->on_worker_thread();
  {
    LC_TRACE("service.convolve_wave");
    if (can_parallel && tasks.size() > 1) {
      pool->parallel_for(0, tasks.size(), convolve_task);
    } else {
      for (std::size_t t = 0; t < tasks.size(); ++t) convolve_task(t);
    }
  }
  {
    std::lock_guard lock(mutex_);
    counters_.wave_tasks += tasks.size();
  }

  // Accumulation wave: per-sub-domain tiles of each full-domain job (the
  // boxes are disjoint, so tile inserts need no locking), or the single
  // tile of a sub-domain-scoped job.
  struct AccTask {
    Job* job;
    std::size_t slot;
    RealField* output;
  };
  std::vector<AccTask> acc_tasks;
  std::vector<std::unique_ptr<RealField>> outputs;
  for (auto& job : wave.jobs) {
    if (job->responded) continue;
    std::exception_ptr first_error;
    for (const auto& err : job->task_errors) {
      if (err != nullptr) {
        first_error = err;
        break;
      }
    }
    if (first_error != nullptr) {
      std::lock_guard lock(mutex_);
      ++counters_.failed;
      job->fail(first_error);
      continue;
    }
    job->contributions.reserve(job->slots.size());
    for (auto& slot : job->slots) {
      job->contributions.push_back(std::move(*slot));
    }
    job->slots.clear();
    outputs.push_back(std::make_unique<RealField>());
    RealField* out = outputs.back().get();
    if (job->request.subdomain) {
      acc_tasks.push_back(AccTask{job.get(), 0, out});
    } else {
      *out = RealField(job->request.input.grid(), 0.0);
      for (std::size_t i = 0; i < job->subdomains.size(); ++i) {
        acc_tasks.push_back(AccTask{job.get(), i, out});
      }
    }
  }

  const auto accumulate_task = [&](std::size_t t) {
    AccTask& task = acc_tasks[t];
    Job& job = *task.job;
    try {
      const auto& decomp = job.engine->decomposition();
      const Box3& box = decomp.subdomain(job.subdomains[task.slot]);
      RealField tile = core::accumulate_region(
          job.contributions, box, job.request.params.interpolation);
      if (job.request.subdomain) {
        *task.output = std::move(tile);  // the tile IS the response
      } else {
        task.output->insert(tile, box.lo);
      }
    } catch (...) {
      job.task_errors[task.slot] = std::current_exception();
    }
  };
  {
    LC_TRACE("service.accumulate_wave");
    if (can_parallel && acc_tasks.size() > 1) {
      pool->parallel_for(0, acc_tasks.size(), accumulate_task);
    } else {
      for (std::size_t t = 0; t < acc_tasks.size(); ++t) accumulate_task(t);
    }
  }

  // Deliver responses (and optionally memoise them).
  std::size_t out_index = 0;
  for (auto& job : wave.jobs) {
    if (job->responded) continue;
    RealField* out = outputs[out_index++].get();
    std::exception_ptr first_error;
    for (const auto& err : job->task_errors) {
      if (err != nullptr) {
        first_error = err;
        break;
      }
    }
    if (first_error != nullptr) {
      std::lock_guard lock(mutex_);
      ++counters_.failed;
      job->fail(first_error);
      continue;
    }

    core::LowCommResult result;
    result.output = std::move(*out);
    for (const auto& c : job->contributions) {
      result.compressed_samples += c.samples().size();
      result.exchanged_bytes += c.sample_bytes();
    }
    result.compression_ratio =
        static_cast<double>(job->contributions.size()) *
        static_cast<double>(job->request.input.grid().size()) /
        static_cast<double>(result.compressed_samples);

    job->stats.run_seconds = seconds_since(wave_start);
    job->stats.measured_seconds = job->stats.run_seconds;

    if (config_.cache_results && !job->result_key.empty()) {
      const std::size_t bytes =
          result.output.size() * sizeof(double) + sizeof(core::LowCommResult);
      auto shared = std::make_shared<const core::LowCommResult>(result);
      // get_or_build with a capture-by-copy builder: inserts our result (or
      // adopts a concurrent twin — identical by construction).
      (void)cache_.get_or_build<core::LowCommResult>(
          job->result_key, bytes,
          [&shared]() -> std::shared_ptr<const core::LowCommResult> {
            return shared;
          });
    }

    {
      std::lock_guard lock(mutex_);
      ++counters_.completed;
      if (job->stats.predicted_seconds > 0.0) ++counters_.planned;
    }
    if (const double ratio = job->stats.pred_over_actual(); ratio > 0.0) {
      drift_hist_.record(ratio);
    }
    if (job->plan != nullptr) {
      // Plan-vs-actual record for the serving path (result-cache hits and
      // planner-off requests never reach here — nothing was predicted).
      // Ranks/nodes are 1: the service convolves locally; its records feed
      // the drift gauges and digests but not the distributed-rate fit.
      obs::PlanOutcome rec;
      rec.source = "service";
      const core::LowCommParams& p = job->request.params;
      rec.n = job->request.input.grid().nx;
      rec.ranks = 1;
      rec.nodes = 1;
      rec.k = p.subdomain;
      rec.far_rate = static_cast<int>(p.far_rate);
      rec.schedule =
          job->plan->choice.schedule == planner::RateSchedule::kUniform
              ? "uniform"
              : "banded";
      rec.route = "local";
      rec.wire = comm::codec_name(p.wire);
      rec.batch = p.batch;
      rec.pred_compute_s = job->stats.predicted_seconds;
      rec.pred_rate_pps = job->plan_rate_pps;
      rec.pred_point_passes =
          job->stats.predicted_seconds * job->plan_rate_pps;
      rec.pred_wire_s = job->plan->cost.wire.total_seconds();
      rec.pred_intra_s = job->plan->cost.wire.intra_seconds;
      rec.pred_inter_s = job->plan->cost.wire.inter_seconds;
      rec.pred_bytes =
          static_cast<std::int64_t>(job->plan->cost.exchange_bytes);
      rec.pred_memory_b =
          static_cast<std::int64_t>(job->plan->cost.memory_bytes);
      rec.pred_rel_error = job->plan->cost.predicted_rel_error;
      rec.meas_wall_s = job->stats.queue_seconds + job->stats.run_seconds;
      rec.meas_compute_s = job->stats.measured_seconds;
      rec.meas_memory_peak_b =
          static_cast<std::int64_t>(device_.peak_bytes());
      obs::record_plan_outcome(rec);
    }
    latency_hist_.record(job->stats.queue_seconds + job->stats.run_seconds);
    if (job->enqueue_ns != 0 && obs::Tracer::global().enabled()) {
      obs::Tracer::global().record(
          "service.request", job->enqueue_ns,
          obs::Tracer::global().now_ns() - job->enqueue_ns);
    }
    job->respond(ConvolutionResponse{std::move(result), job->stats});
  }
}

ServiceStats ConvolutionService::stats() const {
  ServiceStats out;
  {
    std::lock_guard lock(mutex_);
    out = counters_;
  }
  const obs::Histogram::Snapshot queue_snap = queue_hist_.snapshot();
  const obs::Histogram::Snapshot latency_snap = latency_hist_.snapshot();
  out.queue_p50_seconds = queue_snap.quantile(0.50);
  out.queue_p95_seconds = queue_snap.quantile(0.95);
  out.queue_p99_seconds = queue_snap.quantile(0.99);
  out.latency_p50_seconds = latency_snap.quantile(0.50);
  out.latency_p95_seconds = latency_snap.quantile(0.95);
  out.latency_p99_seconds = latency_snap.quantile(0.99);
  const obs::Histogram::Snapshot drift_snap = drift_hist_.snapshot();
  out.drift_p50_ratio = drift_snap.quantile(0.50);
  out.drift_p95_ratio = drift_snap.quantile(0.95);
  out.cache = cache_.stats();
  out.arena = arena_.stats();
  out.device_used_bytes = device_.used_bytes();
  out.device_peak_bytes = device_.peak_bytes();
  return out;
}

TextTable ConvolutionService::stats_table() const {
  const ServiceStats s = stats();
  TextTable table("ConvolutionService stats");
  table.header({"metric", "value"});
  table.row({"submitted", std::to_string(s.submitted)});
  table.row({"completed", std::to_string(s.completed)});
  table.row({"failed", std::to_string(s.failed)});
  table.row({"rejected (queue full)",
             std::to_string(s.rejected_queue_full)});
  table.row({"rejected (deadline)", std::to_string(s.rejected_deadline)});
  table.row({"result-cache hits", std::to_string(s.result_hits)});
  table.row({"engine-cache hits", std::to_string(s.engine_hits)});
  table.row({"dispatch waves", std::to_string(s.waves)});
  table.row({"wave tasks", std::to_string(s.wave_tasks)});
  table.row({"cache hit rate", format_fixed(s.cache.hit_rate(), 3)});
  table.row({"cache bytes", format_bytes_gb(
                                static_cast<double>(s.cache.bytes))});
  table.row({"cache evictions", std::to_string(s.cache.evictions)});
  table.row({"arena bytes reused",
             format_bytes_gb(static_cast<double>(s.arena.bytes_reused))});
  table.row({"arena reuse count", std::to_string(s.arena.reuses)});
  table.row({"queue wait p50 (s)", format_fixed(s.queue_p50_seconds, 4)});
  table.row({"queue wait p95 (s)", format_fixed(s.queue_p95_seconds, 4)});
  table.row({"queue wait p99 (s)", format_fixed(s.queue_p99_seconds, 4)});
  table.row({"latency p50 (s)", format_fixed(s.latency_p50_seconds, 4)});
  table.row({"latency p95 (s)", format_fixed(s.latency_p95_seconds, 4)});
  table.row({"latency p99 (s)", format_fixed(s.latency_p99_seconds, 4)});
  table.row({"planned requests", std::to_string(s.planned)});
  table.row({"pred/actual p50", format_fixed(s.drift_p50_ratio, 3)});
  table.row({"pred/actual p95", format_fixed(s.drift_p95_ratio, 3)});
  table.row({"device used", format_bytes_gb(
                                static_cast<double>(s.device_used_bytes))});
  table.row({"device peak", format_bytes_gb(
                                static_cast<double>(s.device_peak_bytes))});
  return table;
}

}  // namespace lc::runtime
