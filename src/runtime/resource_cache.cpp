#include "runtime/resource_cache.hpp"

#include <utility>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace lc::runtime {

namespace {

// Registry mirror of CacheStats, aggregated across ResourceCache instances
// so `--metrics` snapshots show cache behaviour without plumbing a cache
// handle to the exporter. Exact per-instance numbers stay in stats().
struct CacheMetrics {
  obs::Counter& hits = obs::Registry::global().counter("cache.hits");
  obs::Counter& misses = obs::Registry::global().counter("cache.misses");
  obs::Counter& evictions = obs::Registry::global().counter("cache.evictions");
  obs::Counter& uncacheable =
      obs::Registry::global().counter("cache.uncacheable");
  obs::Gauge& bytes = obs::Registry::global().gauge("cache.bytes");
  obs::Gauge& entries = obs::Registry::global().gauge("cache.entries");

  static CacheMetrics& get() {
    static CacheMetrics m;
    return m;
  }
};

}  // namespace

ResourceCache::ResourceCache(Config config)
    : config_(config),
      build_stripes_(config.stripes == 0 ? 1 : config.stripes) {}

ResourceCache::~ResourceCache() { clear(); }

std::shared_ptr<const void> ResourceCache::peek(const std::string& key) {
  std::lock_guard lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    CacheMetrics::get().misses.add();
    return nullptr;
  }
  ++stats_.hits;
  CacheMetrics::get().hits.add();
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.value;
}

std::shared_ptr<const void> ResourceCache::get_or_build_erased(
    const std::string& key, std::size_t bytes,
    const std::function<std::shared_ptr<const void>()>& build) {
  // Fast path: resident entry.
  {
    std::lock_guard lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++stats_.hits;
      CacheMetrics::get().hits.add();
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.value;
    }
  }

  // Miss: serialise builders of the same stripe so a key is built once
  // even under a thundering herd, while different stripes proceed freely.
  const std::size_t stripe =
      std::hash<std::string>{}(key) % build_stripes_.size();
  std::lock_guard build_lock(build_stripes_[stripe]);

  // Re-check: another thread may have built it while we waited.
  {
    std::lock_guard lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++stats_.hits;
      CacheMetrics::get().hits.add();
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.value;
    }
    ++stats_.misses;
    CacheMetrics::get().misses.add();
  }

  std::shared_ptr<const void> value = build();
  LC_CHECK(value != nullptr, "resource builder returned null");

  // Destroy evicted values outside the lock (they may be big).
  std::vector<std::shared_ptr<const void>> doomed;
  {
    std::lock_guard lock(mutex_);
    if (!insert_locked(key, value, bytes, doomed)) {
      ++stats_.uncacheable;
      CacheMetrics::get().uncacheable.add();
    }
  }
  return value;
}

bool ResourceCache::insert_locked(
    const std::string& key, std::shared_ptr<const void> value,
    std::size_t bytes, std::vector<std::shared_ptr<const void>>& doomed) {
  if (bytes > config_.byte_budget) return false;

  // Make room: evict from the cold end until the newcomer fits.
  while (stats_.bytes + bytes > config_.byte_budget && !lru_.empty()) {
    const std::string& victim_key = lru_.back();
    auto vit = map_.find(victim_key);
    LC_CHECK(vit != map_.end(), "LRU entry missing from map");
    stats_.bytes -= vit->second.bytes;
    --stats_.entries;
    ++stats_.evictions;
    CacheMetrics& metrics = CacheMetrics::get();
    metrics.evictions.add();
    metrics.bytes.add(-static_cast<double>(vit->second.bytes));
    metrics.entries.add(-1.0);
    if (config_.device != nullptr) {
      config_.device->register_free(vit->second.bytes);
    }
    doomed.push_back(std::move(vit->second.value));
    map_.erase(vit);
    lru_.pop_back();
  }

  if (config_.device != nullptr) {
    try {
      config_.device->register_alloc(bytes);
    } catch (const ResourceExhausted&) {
      // Device is full with non-cache allocations; serve uncached.
      return false;
    }
  }
  lru_.push_front(key);
  Entry entry;
  entry.value = std::move(value);
  entry.bytes = bytes;
  entry.lru_it = lru_.begin();
  map_.emplace(key, std::move(entry));
  stats_.bytes += bytes;
  ++stats_.entries;
  CacheMetrics& metrics = CacheMetrics::get();
  metrics.bytes.add(static_cast<double>(bytes));
  metrics.entries.add(1.0);
  return true;
}

void ResourceCache::clear() {
  std::vector<std::shared_ptr<const void>> doomed;
  std::lock_guard lock(mutex_);
  doomed.reserve(map_.size());
  for (auto& [key, entry] : map_) {
    if (config_.device != nullptr) {
      config_.device->register_free(entry.bytes);
    }
    doomed.push_back(std::move(entry.value));
  }
  map_.clear();
  lru_.clear();
  CacheMetrics& metrics = CacheMetrics::get();
  metrics.bytes.add(-static_cast<double>(stats_.bytes));
  metrics.entries.add(-static_cast<double>(stats_.entries));
  stats_.bytes = 0;
  stats_.entries = 0;
}

CacheStats ResourceCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace lc::runtime
