#include "tensor/field.hpp"

#include <algorithm>

namespace lc {

double relative_l2_error(std::span<const double> approx,
                         std::span<const double> reference) {
  LC_CHECK_ARG(approx.size() == reference.size(),
               "relative_l2_error: size mismatch");
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < approx.size(); ++i) {
    const double d = approx[i] - reference[i];
    num += d * d;
    den += reference[i] * reference[i];
  }
  if (den == 0.0) return std::sqrt(num);
  return std::sqrt(num / den);
}

double max_abs_error(std::span<const double> a, std::span<const double> b) {
  LC_CHECK_ARG(a.size() == b.size(), "max_abs_error: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

}  // namespace lc
