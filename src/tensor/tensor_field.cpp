#include "tensor/tensor_field.hpp"

namespace lc {

double SymTensorField::relative_error_to(const SymTensorField& ref) const {
  LC_CHECK_ARG(grid_ == ref.grid_, "tensor field grids differ");
  double num = 0.0;
  double den = 0.0;
  for (std::size_t a = 0; a < 6; ++a) {
    const double w = (a < 3) ? 1.0 : 2.0;
    const auto mine = comp_[a].span();
    const auto other = ref.comp_[a].span();
    for (std::size_t i = 0; i < mine.size(); ++i) {
      const double d = mine[i] - other[i];
      num += w * d * d;
      den += w * other[i] * other[i];
    }
  }
  if (den == 0.0) return std::sqrt(num);
  return std::sqrt(num / den);
}

}  // namespace lc
