#include "tensor/sym_tensor.hpp"

#include <cmath>
#include <utility>

namespace lc {

Stiffness isotropic_stiffness(double lambda, double mu) {
  Stiffness c;
  auto delta = [](std::size_t i, std::size_t j) { return i == j ? 1.0 : 0.0; };
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i; j < 3; ++j) {
      for (std::size_t k = 0; k < 3; ++k) {
        for (std::size_t l = k; l < 3; ++l) {
          c.at(i, j, k, l) = lambda * delta(i, j) * delta(k, l) +
                             mu * (delta(i, k) * delta(j, l) +
                                   delta(i, l) * delta(j, k));
        }
      }
    }
  }
  return c;
}

namespace {

/// Voigt matrix of the linear map e → C : e (folds the shear-doubling
/// weights of the implicit (k,l)+(l,k) sum into the columns).
std::array<std::array<double, 6>, 6> weighted_matrix(
    const SymTensor4<double>& c) {
  std::array<std::array<double, 6>, 6> m{};
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t b = 0; b < 6; ++b) {
      m[a][b] = c.m[a][b] * (b < 3 ? 1.0 : 2.0);
    }
  }
  return m;
}

SymTensor4<double> from_weighted(
    const std::array<std::array<double, 6>, 6>& m) {
  SymTensor4<double> c;
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t b = 0; b < 6; ++b) {
      c.m[a][b] = m[a][b] / (b < 3 ? 1.0 : 2.0);
    }
  }
  return c;
}

}  // namespace

SymTensor4<double> invert_sym4(const SymTensor4<double>& c) {
  // Gauss-Jordan with partial pivoting on the 6x6 weighted matrix.
  auto a = weighted_matrix(c);
  std::array<std::array<double, 6>, 6> inv{};
  for (std::size_t i = 0; i < 6; ++i) inv[i][i] = 1.0;

  for (std::size_t col = 0; col < 6; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < 6; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    LC_CHECK_ARG(std::abs(a[pivot][col]) > 1e-300,
                 "rank-4 tensor is singular");
    std::swap(a[col], a[pivot]);
    std::swap(inv[col], inv[pivot]);
    const double d = a[col][col];
    for (std::size_t j = 0; j < 6; ++j) {
      a[col][j] /= d;
      inv[col][j] /= d;
    }
    for (std::size_t r = 0; r < 6; ++r) {
      if (r == col) continue;
      const double f = a[r][col];
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < 6; ++j) {
        a[r][j] -= f * a[col][j];
        inv[r][j] -= f * inv[col][j];
      }
    }
  }
  return from_weighted(inv);
}

SymTensor4<double> compose_sym4(const SymTensor4<double>& a,
                                const SymTensor4<double>& b) {
  const auto aw = weighted_matrix(a);
  const auto bw = weighted_matrix(b);
  std::array<std::array<double, 6>, 6> t{};
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < 6; ++k) acc += aw[i][k] * bw[k][j];
      t[i][j] = acc;
    }
  }
  return from_weighted(t);
}

SymTensor4<double> identity_sym4() {
  SymTensor4<double> id;
  for (std::size_t a = 0; a < 6; ++a) id.m[a][a] = (a < 3) ? 1.0 : 0.5;
  return id;
}

Lame lame_from_young_poisson(double E, double nu) {
  LC_CHECK_ARG(E > 0.0, "Young's modulus must be positive");
  LC_CHECK_ARG(nu > -1.0 && nu < 0.5, "Poisson ratio outside (-1, 0.5)");
  Lame p;
  p.lambda = E * nu / ((1.0 + nu) * (1.0 - 2.0 * nu));
  p.mu = E / (2.0 * (1.0 + nu));
  return p;
}

}  // namespace lc
