// Symmetric rank-2 tensors (stress/strain at a voxel) and rank-4 tensors
// with minor symmetries (stiffness, Green's operator), in Voigt storage.
//
// Voigt component order used throughout: (xx, yy, zz, yz, xz, xy).
// Rank-4 tensors store raw tensor components C_ijkl (not engineering
// constants); all symmetry doubling factors are applied inside the
// contraction routines so callers never see them.
#pragma once

#include <array>
#include <cmath>
#include <complex>
#include <cstddef>

#include "common/check.hpp"

namespace lc {

/// Map a symmetric index pair (i, j), i,j in {0,1,2}, to a Voigt slot 0..5.
[[nodiscard]] constexpr std::size_t voigt_index(std::size_t i, std::size_t j) noexcept {
  // (0,0)->0 (1,1)->1 (2,2)->2 (1,2)/(2,1)->3 (0,2)/(2,0)->4 (0,1)/(1,0)->5
  if (i == j) return i;
  const std::size_t s = i + j;  // 3 -> yz, 2 -> xz, 1 -> xy
  if (s == 3) return 3;
  if (s == 2) return 4;
  return 5;
}

/// Inverse of voigt_index: Voigt slot -> (i, j) with i <= j.
[[nodiscard]] constexpr std::array<std::size_t, 2> voigt_pair(std::size_t a) noexcept {
  constexpr std::array<std::array<std::size_t, 2>, 6> table{
      {{0, 0}, {1, 1}, {2, 2}, {1, 2}, {0, 2}, {0, 1}}};
  return table[a];
}

/// Symmetric 3x3 tensor of T (double for spatial fields, complex for spectra).
template <typename T>
struct SymTensor2 {
  std::array<T, 6> v{};  // Voigt order (xx, yy, zz, yz, xz, xy)

  constexpr SymTensor2() = default;

  /// Access by tensor indices; symmetric.
  [[nodiscard]] constexpr T& at(std::size_t i, std::size_t j) noexcept {
    return v[voigt_index(i, j)];
  }
  [[nodiscard]] constexpr const T& at(std::size_t i, std::size_t j) const noexcept {
    return v[voigt_index(i, j)];
  }
  [[nodiscard]] constexpr T& operator[](std::size_t a) noexcept { return v[a]; }
  [[nodiscard]] constexpr const T& operator[](std::size_t a) const noexcept { return v[a]; }

  /// Identity (Kronecker delta) scaled by s.
  static constexpr SymTensor2 spherical(T s) {
    SymTensor2 t;
    t.v[0] = t.v[1] = t.v[2] = s;
    return t;
  }

  [[nodiscard]] constexpr T trace() const noexcept { return v[0] + v[1] + v[2]; }

  constexpr SymTensor2& operator+=(const SymTensor2& o) noexcept {
    for (std::size_t a = 0; a < 6; ++a) v[a] += o.v[a];
    return *this;
  }
  constexpr SymTensor2& operator-=(const SymTensor2& o) noexcept {
    for (std::size_t a = 0; a < 6; ++a) v[a] -= o.v[a];
    return *this;
  }
  constexpr SymTensor2& operator*=(T s) noexcept {
    for (std::size_t a = 0; a < 6; ++a) v[a] *= s;
    return *this;
  }
  friend constexpr SymTensor2 operator+(SymTensor2 a, const SymTensor2& b) noexcept {
    return a += b;
  }
  friend constexpr SymTensor2 operator-(SymTensor2 a, const SymTensor2& b) noexcept {
    return a -= b;
  }
  friend constexpr SymTensor2 operator*(SymTensor2 a, T s) noexcept { return a *= s; }

  friend constexpr bool operator==(const SymTensor2&, const SymTensor2&) = default;

  /// Full double contraction a : b = a_ij b_ij (off-diagonals count twice).
  [[nodiscard]] constexpr T ddot(const SymTensor2& o) const noexcept {
    T acc = v[0] * o.v[0] + v[1] * o.v[1] + v[2] * o.v[2];
    acc += T(2) * (v[3] * o.v[3] + v[4] * o.v[4] + v[5] * o.v[5]);
    return acc;
  }

  /// Frobenius norm sqrt(a : a); only for real T.
  [[nodiscard]] double norm() const noexcept
    requires std::is_floating_point_v<T>
  {
    return std::sqrt(ddot(*this));
  }
};

using Sym2 = SymTensor2<double>;
using Sym2c = SymTensor2<std::complex<double>>;

/// Rank-4 tensor with minor symmetries C_ijkl = C_jikl = C_ijlk, stored as a
/// 6x6 Voigt matrix of raw tensor components. Major symmetry (C_ijkl =
/// C_klij) is not enforced structurally, but holds for stiffness and Green
/// operators; `is_major_symmetric` checks it.
template <typename T>
struct SymTensor4 {
  std::array<std::array<T, 6>, 6> m{};  // m[a][b] = C_{pair(a) pair(b)}

  [[nodiscard]] constexpr T& at(std::size_t i, std::size_t j, std::size_t k,
                                std::size_t l) noexcept {
    return m[voigt_index(i, j)][voigt_index(k, l)];
  }
  [[nodiscard]] constexpr const T& at(std::size_t i, std::size_t j, std::size_t k,
                                      std::size_t l) const noexcept {
    return m[voigt_index(i, j)][voigt_index(k, l)];
  }

  constexpr SymTensor4& operator+=(const SymTensor4& o) noexcept {
    for (std::size_t a = 0; a < 6; ++a)
      for (std::size_t b = 0; b < 6; ++b) m[a][b] += o.m[a][b];
    return *this;
  }
  constexpr SymTensor4& operator-=(const SymTensor4& o) noexcept {
    for (std::size_t a = 0; a < 6; ++a)
      for (std::size_t b = 0; b < 6; ++b) m[a][b] -= o.m[a][b];
    return *this;
  }
  constexpr SymTensor4& operator*=(T s) noexcept {
    for (std::size_t a = 0; a < 6; ++a)
      for (std::size_t b = 0; b < 6; ++b) m[a][b] *= s;
    return *this;
  }

  friend constexpr bool operator==(const SymTensor4&, const SymTensor4&) = default;

  /// Double contraction (C : e)_ij = C_ijkl e_kl. The factor 2 on shear
  /// slots accounts for the (k,l)+(l,k) pair in the implicit sum.
  template <typename U>
  [[nodiscard]] constexpr auto ddot(const SymTensor2<U>& e) const noexcept {
    using R = decltype(T{} * U{});
    SymTensor2<R> out;
    for (std::size_t a = 0; a < 6; ++a) {
      R acc{};
      for (std::size_t b = 0; b < 6; ++b) {
        const R term = m[a][b] * e.v[b];
        acc += (b < 3) ? term : R(2) * term;
      }
      out.v[a] = acc;
    }
    return out;
  }

  /// Check major symmetry C_ijkl == C_klij within `tol`.
  [[nodiscard]] bool is_major_symmetric(double tol = 1e-12) const noexcept {
    for (std::size_t a = 0; a < 6; ++a) {
      for (std::size_t b = 0; b < 6; ++b) {
        if (std::abs(m[a][b] - m[b][a]) > tol) return false;
      }
    }
    return true;
  }
};

using Stiffness = SymTensor4<double>;
using Green4 = SymTensor4<double>;

/// Isotropic stiffness C_ijkl = λ δij δkl + μ (δik δjl + δil δjk).
[[nodiscard]] Stiffness isotropic_stiffness(double lambda, double mu);

/// Inverse of a rank-4 tensor as a map on symmetric rank-2 tensors:
/// invert_sym4(C).ddot(C.ddot(e)) == e. Throws InvalidArgument if the map
/// is singular. (Compliance tensor of a stiffness, and the (C + C0)⁻¹
/// factor of accelerated fixed-point schemes.)
[[nodiscard]] SymTensor4<double> invert_sym4(const SymTensor4<double>& c);

/// Composition of rank-4 maps: compose(A, B).ddot(e) == A.ddot(B.ddot(e)).
[[nodiscard]] SymTensor4<double> compose_sym4(const SymTensor4<double>& a,
                                              const SymTensor4<double>& b);

/// Identity map on symmetric rank-2 tensors.
[[nodiscard]] SymTensor4<double> identity_sym4();

/// Lamé parameters from Young's modulus E and Poisson ratio ν.
struct Lame {
  double lambda = 0.0;
  double mu = 0.0;
};
[[nodiscard]] Lame lame_from_young_poisson(double E, double nu);

}  // namespace lc
