// Field<T>: an owning 3D array over a Grid3, plus region copy helpers and
// norms. The workhorse container of the library.
#pragma once

#include <cmath>
#include <complex>
#include <span>

#include "common/aligned.hpp"
#include "common/check.hpp"
#include "tensor/grid.hpp"

namespace lc {

/// Owning, aligned, dense 3D array with x-fastest layout.
template <typename T>
class Field {
 public:
  Field() = default;
  explicit Field(const Grid3& grid, T init = T{})
      : grid_(grid), data_(grid.size(), init) {}

  [[nodiscard]] const Grid3& grid() const noexcept { return grid_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T& operator()(i64 x, i64 y, i64 z) noexcept {
    LC_ASSERT(grid_.contains({x, y, z}));
    return data_[grid_.index(x, y, z)];
  }
  [[nodiscard]] const T& operator()(i64 x, i64 y, i64 z) const noexcept {
    LC_ASSERT(grid_.contains({x, y, z}));
    return data_[grid_.index(x, y, z)];
  }
  [[nodiscard]] T& operator()(const Index3& p) noexcept { return (*this)(p.x, p.y, p.z); }
  [[nodiscard]] const T& operator()(const Index3& p) const noexcept {
    return (*this)(p.x, p.y, p.z);
  }
  [[nodiscard]] T& operator[](std::size_t lin) noexcept { return data_[lin]; }
  [[nodiscard]] const T& operator[](std::size_t lin) const noexcept { return data_[lin]; }

  [[nodiscard]] std::span<T> span() noexcept { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Extract a sub-box into a new tight field.
  [[nodiscard]] Field extract(const Box3& box) const {
    LC_CHECK_ARG(Box3::of(grid_).contains(box), "extract box outside field");
    Field out(box.extents());
    for (i64 z = box.lo.z; z < box.hi.z; ++z) {
      for (i64 y = box.lo.y; y < box.hi.y; ++y) {
        const T* src = &(*this)(box.lo.x, y, z);
        T* dst = &out(0, y - box.lo.y, z - box.lo.z);
        std::copy(src, src + (box.hi.x - box.lo.x), dst);
      }
    }
    return out;
  }

  /// Copy `src` (a tight field) into this field at `corner`.
  void insert(const Field& src, const Index3& corner) {
    const Box3 box{corner,
                   {corner.x + src.grid().nx, corner.y + src.grid().ny,
                    corner.z + src.grid().nz}};
    LC_CHECK_ARG(Box3::of(grid_).contains(box), "insert box outside field");
    for (i64 z = 0; z < src.grid().nz; ++z) {
      for (i64 y = 0; y < src.grid().ny; ++y) {
        const T* s = &src(0, y, z);
        std::copy(s, s + src.grid().nx, &(*this)(corner.x, corner.y + y, corner.z + z));
      }
    }
  }

  /// Add `src` (a tight field) into this field at `corner`.
  void accumulate(const Field& src, const Index3& corner) {
    const Box3 box{corner,
                   {corner.x + src.grid().nx, corner.y + src.grid().ny,
                    corner.z + src.grid().nz}};
    LC_CHECK_ARG(Box3::of(grid_).contains(box), "accumulate box outside field");
    for (i64 z = 0; z < src.grid().nz; ++z) {
      for (i64 y = 0; y < src.grid().ny; ++y) {
        const T* s = &src(0, y, z);
        T* d = &(*this)(corner.x, corner.y + y, corner.z + z);
        for (i64 x = 0; x < src.grid().nx; ++x) d[x] += s[x];
      }
    }
  }

  friend bool operator==(const Field&, const Field&) = default;

 private:
  Grid3 grid_;
  AlignedVector<T> data_;
};

using RealField = Field<double>;
using ComplexField = Field<std::complex<double>>;

/// Squared L2 norm of a span of reals or complexes.
template <typename T>
[[nodiscard]] double l2_norm_sq(std::span<T> v) {
  using V = std::remove_const_t<T>;
  double acc = 0.0;
  for (const auto& x : v) {
    if constexpr (std::is_same_v<V, std::complex<double>>) {
      acc += std::norm(x);
    } else {
      acc += static_cast<double>(x) * static_cast<double>(x);
    }
  }
  return acc;
}

/// L2 norm.
template <typename T>
[[nodiscard]] double l2_norm(std::span<T> v) {
  return std::sqrt(l2_norm_sq(v));
}

/// Relative L2 error ||a - b|| / ||b||. Returns ||a|| if b is zero.
[[nodiscard]] double relative_l2_error(std::span<const double> approx,
                                       std::span<const double> reference);

/// Maximum absolute difference.
[[nodiscard]] double max_abs_error(std::span<const double> a,
                                   std::span<const double> b);

}  // namespace lc
