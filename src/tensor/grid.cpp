#include "tensor/grid.hpp"

#include <sstream>

namespace lc {

std::string Index3::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Index3& p) {
  return os << '(' << p.x << ", " << p.y << ", " << p.z << ')';
}

std::string Grid3::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Grid3& g) {
  return os << g.nx << 'x' << g.ny << 'x' << g.nz;
}

std::string Box3::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Box3& b) {
  return os << '[' << b.lo << ", " << b.hi << ')';
}

}  // namespace lc
