// 3D index space descriptions: Index3 points, Grid3 extents, Box3 regions.
//
// Convention used across the library: x is the fastest-varying dimension in
// memory, z the slowest. Linear index of (x, y, z) on an (nx, ny, nz) grid is
// (z * ny + y) * nx + x.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>

#include "common/check.hpp"

namespace lc {

using i64 = std::int64_t;

/// A 3D integer point or offset.
struct Index3 {
  i64 x = 0;
  i64 y = 0;
  i64 z = 0;

  friend constexpr bool operator==(const Index3&, const Index3&) = default;

  constexpr Index3 operator+(const Index3& o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Index3 operator-(const Index3& o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }

  [[nodiscard]] std::string str() const;
};

std::ostream& operator<<(std::ostream& os, const Index3& p);

/// Extents of a 3D grid. Also provides linear indexing.
struct Grid3 {
  i64 nx = 0;
  i64 ny = 0;
  i64 nz = 0;

  constexpr Grid3() = default;
  constexpr Grid3(i64 nx_, i64 ny_, i64 nz_) : nx(nx_), ny(ny_), nz(nz_) {}
  /// Cubic grid of side n.
  static constexpr Grid3 cube(i64 n) { return {n, n, n}; }

  friend constexpr bool operator==(const Grid3&, const Grid3&) = default;

  [[nodiscard]] constexpr std::size_t size() const noexcept {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
           static_cast<std::size_t>(nz);
  }

  [[nodiscard]] constexpr bool contains(const Index3& p) const noexcept {
    return p.x >= 0 && p.x < nx && p.y >= 0 && p.y < ny && p.z >= 0 && p.z < nz;
  }

  /// Linear index of (x, y, z); x fastest.
  [[nodiscard]] constexpr std::size_t index(i64 x, i64 y, i64 z) const noexcept {
    return (static_cast<std::size_t>(z) * static_cast<std::size_t>(ny) +
            static_cast<std::size_t>(y)) *
               static_cast<std::size_t>(nx) +
           static_cast<std::size_t>(x);
  }
  [[nodiscard]] constexpr std::size_t index(const Index3& p) const noexcept {
    return index(p.x, p.y, p.z);
  }

  /// Inverse of index(): recover (x, y, z) from a linear offset.
  [[nodiscard]] constexpr Index3 unindex(std::size_t lin) const noexcept {
    const auto unx = static_cast<std::size_t>(nx);
    const auto uny = static_cast<std::size_t>(ny);
    return Index3{static_cast<i64>(lin % unx),
                  static_cast<i64>((lin / unx) % uny),
                  static_cast<i64>(lin / (unx * uny))};
  }

  [[nodiscard]] std::string str() const;
};

std::ostream& operator<<(std::ostream& os, const Grid3& g);

/// Half-open axis-aligned box [lo, hi) in index space.
struct Box3 {
  Index3 lo;
  Index3 hi;

  friend constexpr bool operator==(const Box3&, const Box3&) = default;

  /// Box covering a full grid.
  static constexpr Box3 of(const Grid3& g) {
    return {{0, 0, 0}, {g.nx, g.ny, g.nz}};
  }
  /// Cube of side k with corner at `corner`.
  static constexpr Box3 cube_at(const Index3& corner, i64 k) {
    return {corner, {corner.x + k, corner.y + k, corner.z + k}};
  }

  [[nodiscard]] constexpr Grid3 extents() const noexcept {
    return {hi.x - lo.x, hi.y - lo.y, hi.z - lo.z};
  }
  [[nodiscard]] constexpr bool empty() const noexcept {
    return hi.x <= lo.x || hi.y <= lo.y || hi.z <= lo.z;
  }
  [[nodiscard]] constexpr std::size_t volume() const noexcept {
    return empty() ? 0 : extents().size();
  }
  [[nodiscard]] constexpr bool contains(const Index3& p) const noexcept {
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y &&
           p.z >= lo.z && p.z < hi.z;
  }
  [[nodiscard]] constexpr bool contains(const Box3& b) const noexcept {
    return b.empty() || (lo.x <= b.lo.x && b.hi.x <= hi.x && lo.y <= b.lo.y &&
                         b.hi.y <= hi.y && lo.z <= b.lo.z && b.hi.z <= hi.z);
  }

  /// Intersection (possibly empty).
  [[nodiscard]] constexpr Box3 intersect(const Box3& b) const noexcept {
    Box3 r{{std::max(lo.x, b.lo.x), std::max(lo.y, b.lo.y), std::max(lo.z, b.lo.z)},
           {std::min(hi.x, b.hi.x), std::min(hi.y, b.hi.y), std::min(hi.z, b.hi.z)}};
    return r;
  }

  /// Chebyshev (L-infinity) distance from point p to this box; 0 if inside.
  [[nodiscard]] constexpr i64 chebyshev_distance(const Index3& p) const noexcept {
    auto axis = [](i64 v, i64 lo_, i64 hi_) -> i64 {
      if (v < lo_) return lo_ - v;
      if (v >= hi_) return v - (hi_ - 1);
      return 0;
    };
    const i64 dx = axis(p.x, lo.x, hi.x);
    const i64 dy = axis(p.y, lo.y, hi.y);
    const i64 dz = axis(p.z, lo.z, hi.z);
    return std::max({dx, dy, dz});
  }

  [[nodiscard]] std::string str() const;
};

std::ostream& operator<<(std::ostream& os, const Box3& b);

/// Distance from coordinate v to the interval [lo, hi-1] on a ring of size
/// n (periodic wrap in both directions). 0 if v is inside.
[[nodiscard]] constexpr i64 torus_axis_distance(i64 v, i64 lo, i64 hi,
                                                i64 n) noexcept {
  if (v >= lo && v < hi) return 0;
  const i64 down = ((lo - v) % n + n) % n;      // steps forward to reach lo
  const i64 up = ((v - (hi - 1)) % n + n) % n;  // steps back from hi-1
  return std::min(down, up);
}

/// Chebyshev distance from point p to box b on the 3-torus of `g`.
/// This is the right distance notion for circular convolution: a response
/// wraps around the grid, so a sub-domain near one face influences the
/// opposite face at small *periodic* distance.
[[nodiscard]] constexpr i64 torus_chebyshev_distance(const Box3& b,
                                                     const Index3& p,
                                                     const Grid3& g) noexcept {
  const i64 dx = torus_axis_distance(p.x, b.lo.x, b.hi.x, g.nx);
  const i64 dy = torus_axis_distance(p.y, b.lo.y, b.hi.y, g.ny);
  const i64 dz = torus_axis_distance(p.z, b.lo.z, b.hi.z, g.nz);
  return std::max({dx, dy, dz});
}

/// Visit every point of a box in memory order (x fastest).
template <typename F>
void for_each_point(const Box3& b, F&& f) {
  for (i64 z = b.lo.z; z < b.hi.z; ++z) {
    for (i64 y = b.lo.y; y < b.hi.y; ++y) {
      for (i64 x = b.lo.x; x < b.hi.x; ++x) {
        f(Index3{x, y, z});
      }
    }
  }
}

}  // namespace lc
