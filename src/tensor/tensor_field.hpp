// A field of symmetric rank-2 tensors stored structure-of-arrays: six dense
// scalar component fields over the same grid. SoA keeps each component
// contiguous so it can be handed straight to the FFT substrate.
#pragma once

#include <array>

#include "tensor/field.hpp"
#include "tensor/sym_tensor.hpp"

namespace lc {

/// Symmetric tensor field over a 3D grid, one dense array per Voigt slot.
class SymTensorField {
 public:
  SymTensorField() = default;
  explicit SymTensorField(const Grid3& grid) {
    for (auto& c : comp_) c = RealField(grid);
    grid_ = grid;
  }

  [[nodiscard]] const Grid3& grid() const noexcept { return grid_; }

  /// Dense scalar field of Voigt component a (0..5).
  [[nodiscard]] RealField& component(std::size_t a) noexcept { return comp_[a]; }
  [[nodiscard]] const RealField& component(std::size_t a) const noexcept {
    return comp_[a];
  }

  /// Tensor value at a voxel (gathers the six components).
  [[nodiscard]] Sym2 at(const Index3& p) const noexcept {
    Sym2 t;
    for (std::size_t a = 0; a < 6; ++a) t.v[a] = comp_[a](p);
    return t;
  }
  void set(const Index3& p, const Sym2& t) noexcept {
    for (std::size_t a = 0; a < 6; ++a) comp_[a](p) = t.v[a];
  }

  /// Fill every voxel with the same tensor.
  void fill(const Sym2& t) {
    for (std::size_t a = 0; a < 6; ++a) comp_[a].fill(t.v[a]);
  }

  /// Frobenius L2 norm over the whole field: sqrt(sum_x e(x) : e(x)).
  [[nodiscard]] double l2_norm() const {
    double acc = 0.0;
    for (std::size_t a = 0; a < 6; ++a) {
      const double n = l2_norm_sq(comp_[a].span());
      acc += (a < 3) ? n : 2.0 * n;
    }
    return std::sqrt(acc);
  }

  /// Relative L2 distance to another field of the same shape.
  [[nodiscard]] double relative_error_to(const SymTensorField& ref) const;

 private:
  Grid3 grid_;
  std::array<RealField, 6> comp_;
};

}  // namespace lc
