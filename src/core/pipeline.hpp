// LowCommConvolution: the paper's end-to-end method (Fig 1b, Fig 2) as a
// library API.
//
// Single-process form: decompose → locally convolve each sub-domain with
// compression → accumulate. Distributed form: the same pipeline SPMD over a
// simulated cluster, where the *only* global exchange is one all-gather of
// the compressed payloads (compare baseline::DistributedFftConvolution,
// which needs an all-to-all inside every transform).
#pragma once

#include <memory>
#include <mutex>
#include <optional>

#include "comm/sim_cluster.hpp"
#include "comm/wire_codec.hpp"
#include "core/accumulator.hpp"
#include "core/decomposition.hpp"
#include "core/local_convolver.hpp"

namespace lc::core {

/// Hyperparameters of the method (paper §5.4).
struct LowCommParams {
  i64 subdomain = 32;         ///< k: sub-domain edge length
  i64 far_rate = 16;          ///< coarsest downsampling rate
  i64 boundary_band = 0;      ///< dense shell width at the grid edge
  i64 dense_halo = 2;         ///< full-resolution skin beyond the sub-domain
  std::size_t batch = 1024;   ///< B: z-pencils per batch
  /// Reconstruction order used at accumulation time.
  sampling::Interpolation interpolation = sampling::Interpolation::kTrilinear;
  /// Override the banded paper policy with a single uniform exterior rate
  /// (Table 3 reports one r per row).
  std::optional<i64> uniform_rate;
  /// Wire codec for the exchange payloads (DESIGN.md §17). Defaults from
  /// LC_WIRE at construction (off = bit-exact fp64 passthrough); the
  /// planner enumerates it as a plan dimension. Only the wire
  /// representation changes — octree sampling, local compute, and the
  /// accumulation schedule are identical under every codec.
  comm::WireCodec wire = comm::wire_codec_from_env();

  /// The sampling policy these parameters induce for sub-domain size k.
  [[nodiscard]] sampling::SamplingPolicy make_policy() const;
};

/// Outcome of a convolution run, with the measurements the paper reports.
struct LowCommResult {
  RealField output;                  ///< accumulated approximate result
  std::size_t compressed_samples = 0;  ///< total retained samples, all domains
  std::size_t exchanged_bytes = 0;   ///< payload bytes crossing workers
  double compression_ratio = 0.0;    ///< grid points per retained sample
};

/// Single-worker (or shared-memory) low-communication convolution engine.
class LowCommConvolution {
 public:
  LowCommConvolution(const Grid3& grid,
                     std::shared_ptr<const green::KernelSpectrum> kernel,
                     LowCommParams params, LocalConvolverConfig config = {});

  [[nodiscard]] const DomainDecomposition& decomposition() const noexcept {
    return decomp_;
  }
  [[nodiscard]] const LowCommParams& params() const noexcept { return params_; }

  /// Convolve `input` with the kernel. Sub-domains are dispatched across
  /// the configured thread pool (LocalConvolverConfig::pool; each worker
  /// runs the local FFT pipeline serially inside its sub-domain), and the
  /// final accumulation runs z-slab-parallel on the same pool. With a null
  /// pool everything runs sequentially on this thread, as the paper's POC
  /// does on one GPU.
  [[nodiscard]] LowCommResult convolve(const RealField& input) const;

  /// Compress one sub-domain's contribution (building block for the
  /// distributed path and for MASSIF's inner loop).
  [[nodiscard]] sampling::CompressedField convolve_one(
      const RealField& input, std::size_t subdomain_index) const;

  /// Octree for sub-domain i (cached; shared across calls).
  [[nodiscard]] std::shared_ptr<const sampling::Octree> octree_for(
      std::size_t subdomain_index) const;

  /// Pre-seed the octree slot for sub-domain i with an externally cached
  /// tree (runtime::ConvolutionService reuse hook: octrees survive engine
  /// eviction in the service's resource cache and are re-adopted here).
  /// The tree must match this engine's grid and sub-domain box; a slot
  /// already populated is left untouched.
  void seed_octree(std::size_t subdomain_index,
                   std::shared_ptr<const sampling::Octree> tree) const;

 private:
  // One lazily-built octree per sub-domain. Each slot carries its own
  // once_flag, so parallel sub-domain workers resolving different slots
  // never serialize on a shared lock, and repeat lookups of a built slot
  // are a single synchronized load inside std::call_once's fast path.
  struct OctreeSlot {
    std::once_flag once;
    std::shared_ptr<const sampling::Octree> tree;
  };

  DomainDecomposition decomp_;
  LowCommParams params_;
  LocalConvolver convolver_;
  mutable std::vector<OctreeSlot> octrees_;
};

/// How distributed_lowcomm_convolve routes its single sample exchange.
enum class ExchangeRoute {
  kAuto,          ///< hierarchical on grouped topologies, flat otherwise
  kFlat,          ///< one message per ordered rank pair (Rank::all_to_all)
  kHierarchical,  ///< node-multicast exchange (comm/hierarchical.hpp)
};

/// Distributed run over a simulated cluster: ranks convolve their assigned
/// sub-domains locally, then exchange compressed samples in ONE
/// personalised exchange — each octree cell's samples travel only to the
/// ranks whose regions intersect that cell (the paper's "only sparse
/// samples are exchanged at the end"). Each rank accumulates the regions of
/// its own sub-domains. Returns the assembled full field (stitched in
/// shared memory for verification) and leaves the byte / round counts in
/// `cluster.stats()`.
///
/// On a grouped topology the default route packs each cell ONCE per
/// destination NODE (the union of its member ranks' needs) and ships it
/// through the node leaders, so a cell needed by several ranks of a node
/// crosses the inter-node link once instead of once per rank. The numeric
/// result is identical to the flat route — only the routing changes.
[[nodiscard]] RealField distributed_lowcomm_convolve(
    comm::SimCluster& cluster, const RealField& input, const Grid3& grid,
    std::shared_ptr<const green::KernelSpectrum> kernel,
    const LowCommParams& params, ExchangeRoute route = ExchangeRoute::kAuto);

/// Exact number of wire bytes the personalised exchange above moves across
/// the network for `workers` ranks (self-delivery excluded) — the
/// executable counterpart of Eqn 6's "k³ + sparse samples" volume, priced
/// under the engine's wire codec (encoded bundle bytes, rounded up to
/// whole wire doubles per destination buffer exactly as executed).
[[nodiscard]] std::size_t lowcomm_exchange_bytes(
    const LowCommConvolution& engine, int workers);

/// Static per-level WIRE traffic of the exchange `route` would execute on
/// `topo` — computed from the deterministic octrees alone, without running
/// anything. Mirrors the message schedule exactly (empty messages
/// included), so the returned bytes/messages equal the deltas SimCluster's
/// per-level CommStats records for the exchange collective, and feed
/// comm::predict_exchange_times for per-level α-β predictions.
[[nodiscard]] comm::LevelTraffic lowcomm_exchange_traffic(
    const LowCommConvolution& engine, const comm::Topology& topo,
    ExchangeRoute route = ExchangeRoute::kAuto);

/// Same static traffic mirror, computed from (grid, params) alone — no
/// engine, kernel, or FFT plan needed. The octrees are deterministic in the
/// sampling policy, so this is exactly what an engine-backed run would move;
/// the planner prices candidate plans with it.
[[nodiscard]] comm::LevelTraffic lowcomm_exchange_traffic(
    const Grid3& grid, const LowCommParams& params, const comm::Topology& topo,
    ExchangeRoute route = ExchangeRoute::kAuto);

}  // namespace lc::core
