// SpectralOperator: the per-frequency-bin operation applied between the
// forward and inverse transforms of the local pipeline.
//
// A scalar convolution multiplies one channel by a kernel spectrum value;
// MASSIF's convolution step contracts the rank-4 Green operator Γ̂ with the
// six Voigt components of the stress spectrum (paper Algorithm 2 line 4).
// Both are "apply a small dense operator to the C channel values at bin ξ",
// which is exactly this interface.
#pragma once

#include <memory>
#include <string>

#include "green/kernel.hpp"

namespace lc::core {

using fft::cplx;

/// In-place per-bin operator on a fixed number of channels.
class SpectralOperator {
 public:
  virtual ~SpectralOperator() = default;

  /// Number of simultaneous channels (1 for scalar convolution, 6 for
  /// symmetric-tensor fields in Voigt form).
  [[nodiscard]] virtual std::size_t channels() const = 0;

  /// Transform the channel values at DFT bin `bin` of grid `g` in place.
  virtual void apply(const Index3& bin, const Grid3& g,
                     std::span<cplx> values) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Adapts a scalar KernelSpectrum to the operator interface (1 channel).
class ScalarKernelOperator final : public SpectralOperator {
 public:
  explicit ScalarKernelOperator(
      std::shared_ptr<const green::KernelSpectrum> kernel)
      : kernel_(std::move(kernel)) {
    LC_CHECK_ARG(kernel_ != nullptr, "null kernel");
  }

  [[nodiscard]] std::size_t channels() const override { return 1; }

  void apply(const Index3& bin, const Grid3& g,
             std::span<cplx> values) const override {
    values[0] *= kernel_->eval(bin, g);
  }

  [[nodiscard]] std::string name() const override { return kernel_->name(); }

  [[nodiscard]] const green::KernelSpectrum& kernel() const noexcept {
    return *kernel_;
  }

 private:
  std::shared_ptr<const green::KernelSpectrum> kernel_;
};

}  // namespace lc::core
