// SpectralOperator: the per-frequency-bin operation applied between the
// forward and inverse transforms of the local pipeline.
//
// A scalar convolution multiplies one channel by a kernel spectrum value;
// MASSIF's convolution step contracts the rank-4 Green operator Γ̂ with the
// six Voigt components of the stress spectrum (paper Algorithm 2 line 4).
// Both are "apply a small dense operator to the C channel values at bin ξ",
// which is exactly this interface.
#pragma once

#include <algorithm>
#include <array>
#include <memory>
#include <string>

#include "common/simd.hpp"
#include "green/kernel.hpp"

namespace lc::core {

using fft::cplx;

/// In-place per-bin operator on a fixed number of channels.
class SpectralOperator {
 public:
  virtual ~SpectralOperator() = default;

  /// Number of simultaneous channels (1 for scalar convolution, 6 for
  /// symmetric-tensor fields in Voigt form).
  [[nodiscard]] virtual std::size_t channels() const = 0;

  /// Transform the channel values at DFT bin `bin` of grid `g` in place.
  virtual void apply(const Index3& bin, const Grid3& g,
                     std::span<cplx> values) const = 0;

  /// Apply the operator to a whole z-pencil of bins (x, y, z0 + t) for
  /// t in [0, n): channel c of bin t lives at values[c * channel_stride + t].
  /// The default gathers each bin's channels and calls apply(); operators
  /// backed by a kernel spectrum override it to run one vectorized pass per
  /// pencil instead of n virtual calls (the slab pipeline's hot loop).
  virtual void apply_z_pencil(i64 x, i64 y, i64 z0, const Grid3& g,
                              cplx* values, std::size_t n,
                              std::size_t channel_stride) const {
    const std::size_t nc = channels();
    constexpr std::size_t kMaxStack = 16;
    LC_CHECK_ARG(nc <= kMaxStack, "too many channels for pencil dispatch");
    std::array<cplx, kMaxStack> bin{};
    for (std::size_t t = 0; t < n; ++t) {
      for (std::size_t c = 0; c < nc; ++c) {
        bin[c] = values[c * channel_stride + t];
      }
      apply({x, y, z0 + static_cast<i64>(t)}, g, std::span(bin.data(), nc));
      for (std::size_t c = 0; c < nc; ++c) {
        values[c * channel_stride + t] = bin[c];
      }
    }
  }

  [[nodiscard]] virtual std::string name() const = 0;

  /// True iff the operator maps Hermitian-symmetric channel spectra to
  /// Hermitian-symmetric channel spectra — the precondition for the
  /// half-spectrum (r2c/c2r) pipeline, which computes only the
  /// x ∈ [0, nx/2] bins and lets c2r reconstitute the mirror half
  /// (DESIGN.md §16). Defaults to false: the complex path is always valid.
  [[nodiscard]] virtual bool hermitian() const { return false; }
};

/// Adapts a scalar KernelSpectrum to the operator interface (1 channel).
class ScalarKernelOperator final : public SpectralOperator {
 public:
  explicit ScalarKernelOperator(
      std::shared_ptr<const green::KernelSpectrum> kernel)
      : kernel_(std::move(kernel)) {
    LC_CHECK_ARG(kernel_ != nullptr, "null kernel");
  }

  [[nodiscard]] std::size_t channels() const override { return 1; }

  void apply(const Index3& bin, const Grid3& g,
             std::span<cplx> values) const override {
    values[0] *= kernel_->eval(bin, g);
  }

  void apply_z_pencil(i64 x, i64 y, i64 z0, const Grid3& g, cplx* values,
                      std::size_t n,
                      std::size_t /*channel_stride*/) const override {
    // Chunked so the kernel run stays in a stack buffer; the multiply is
    // the SIMD complex pointwise pass shared with fft::pointwise_multiply.
    constexpr std::size_t kChunk = 256;
    std::array<cplx, kChunk> run;
    for (std::size_t t0 = 0; t0 < n; t0 += kChunk) {
      const std::size_t len = std::min(kChunk, n - t0);
      kernel_->eval_z_run({x, y, z0 + static_cast<i64>(t0)}, g,
                          std::span(run.data(), len));
      simd::complex_mul_inplace(values + t0, run.data(), len);
    }
  }

  [[nodiscard]] std::string name() const override { return kernel_->name(); }
  [[nodiscard]] bool hermitian() const override {
    return kernel_->hermitian();
  }

  [[nodiscard]] const green::KernelSpectrum& kernel() const noexcept {
    return *kernel_;
  }

 private:
  std::shared_ptr<const green::KernelSpectrum> kernel_;
};

}  // namespace lc::core
