// Hyperparameter selection heuristics (paper §5.4).
//
// The paper hand-tunes three knobs: the sub-domain size k (largest slab
// that fits device memory), the downsampling rate r (problem-size and
// accuracy dependent; they use r = 4 at N = 128..512 up to r = 32 at
// N = 1024), and the batch parameter B (hundreds to tens of thousands of
// pencils, bigger helps until transform concurrency saturates). These
// helpers encode those rules so callers get sensible defaults, and
// bench_batch_param ablates B explicitly.
#pragma once

#include <vector>

#include "device/memory_model.hpp"
#include "tensor/grid.hpp"

namespace lc::core {

/// Suggested hyperparameters for an n³ problem on a given device.
struct HyperparamAdvice {
  i64 subdomain = 0;       ///< k
  i64 far_rate = 0;        ///< coarsest r
  std::size_t batch = 0;   ///< B
};

/// Batch heuristic: B grows with the plane size and saturates — the paper
/// sees 19.9% gains moving 512→1024 at N=256 but only 5-7% at N=2048.
[[nodiscard]] std::size_t recommended_batch(i64 n);

/// Rate heuristic: coarsen proportionally to N/k (the paper uses r=4 for
/// N/k = 4..16 and r=32 for N/k = 32), clamped to [2, 32].
[[nodiscard]] i64 recommended_far_rate(i64 n, i64 k);

/// Divisors of n that are usable sub-domain sizes (2 <= k <= n), descending.
/// DomainDecomposition requires k | n, so these are the only legal k values.
[[nodiscard]] std::vector<i64> subdomain_divisors(i64 n);

/// Full advice: k maximised against device capacity, then r and B derived.
/// The returned k always divides n (the pow2 memory probe can land on a k
/// that DomainDecomposition would reject for non-pow2 n; this falls back to
/// the largest memory-feasible divisor instead) and throws InvalidArgument
/// with a capacity message when no divisor fits the device.
[[nodiscard]] HyperparamAdvice select_hyperparams(
    i64 n, const device::DeviceSpec& spec);

}  // namespace lc::core
