#include "core/local_convolver.hpp"

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/runtime_flags.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lc::core {

LocalConvolver::LocalConvolver(const Grid3& grid,
                               std::shared_ptr<const SpectralOperator> op,
                               LocalConvolverConfig config)
    : grid_(grid), op_(std::move(op)), config_(std::move(config)) {
  LC_CHECK_ARG(grid.nx == grid.ny && grid.ny == grid.nz,
               "local convolver requires a cubic grid");
  LC_CHECK_ARG(op_ != nullptr, "null spectral operator");
  LC_CHECK_ARG(op_->channels() >= 1, "operator needs at least one channel");
  LC_CHECK_ARG(config_.batch >= 1, "batch must be >= 1");
  if (config_.plan != nullptr) {
    LC_CHECK_ARG(config_.plan->size() == static_cast<std::size_t>(grid.nx),
                 "injected plan length != grid side");
    fft_n_ = config_.plan;
  } else {
    fft_n_ = std::make_shared<fft::Fft1D>(static_cast<std::size_t>(grid.nx));
  }
  using RealPath = LocalConvolverConfig::RealPath;
  if (config_.real == RealPath::kForce) {
    LC_CHECK_ARG(op_->hermitian(),
                 "RealPath::kForce requires a Hermitian operator");
  }
  real_path_ = config_.real != RealPath::kOff && op_->hermitian() &&
               (config_.real == RealPath::kForce || real_path_enabled());
  if (real_path_) {
    if (config_.real_plan != nullptr) {
      LC_CHECK_ARG(
          config_.real_plan->size() == static_cast<std::size_t>(grid.nx),
          "injected real plan length != grid side");
      rfft_n_ = config_.real_plan;
    } else {
      rfft_n_ =
          std::make_shared<fft::RealFft1D>(static_cast<std::size_t>(grid.nx));
    }
  }
}

LocalConvolver::LocalConvolver(
    const Grid3& grid, std::shared_ptr<const green::KernelSpectrum> kernel,
    LocalConvolverConfig config)
    : LocalConvolver(grid,
                     std::make_shared<ScalarKernelOperator>(std::move(kernel)),
                     config) {}

namespace {

/// (cell index, lattice z-index) pairs, grouped by absolute z-plane.
std::vector<std::vector<std::pair<std::size_t, i64>>> cells_by_plane(
    const sampling::Octree& tree) {
  const i64 nz = tree.grid().nz;
  std::vector<std::vector<std::pair<std::size_t, i64>>> by_plane(
      static_cast<std::size_t>(nz));
  const auto cells = tree.cells();
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const auto& c = cells[ci];
    for (i64 iz = 0; iz < c.samples_per_edge(); ++iz) {
      const i64 z = (c.corner.z + iz * c.rate) % nz;
      by_plane[static_cast<std::size_t>(z)].emplace_back(ci, iz);
    }
  }
  return by_plane;
}

// Per-stage wall-time distributions ("convolver.stageN_seconds"): one
// sample per convolve_channels call, so p95 across sub-domains/requests is
// meaningful. The matching LC_TRACE spans give the same breakdown per call
// in the Perfetto timeline.
struct ConvolverMetrics {
  obs::Histogram& stage1 = obs::Registry::global().histogram(
      "convolver.stage1_seconds");
  obs::Histogram& stage2 = obs::Registry::global().histogram(
      "convolver.stage2_seconds");
  obs::Histogram& stage3 = obs::Registry::global().histogram(
      "convolver.stage3_seconds");

  static ConvolverMetrics& get() {
    static ConvolverMetrics m;
    return m;
  }
};

void run_blocks(ThreadPool* pool, std::size_t count,
                const std::function<void(std::size_t, std::size_t,
                                         fft::FftWorkspace&)>& body) {
  // Degrade to serial when already running on one of the pool's own workers
  // (LowCommConvolution::convolve parallelizes across sub-domains on the
  // same pool; nesting parallel_for would deadlock-throw).
  if (pool == nullptr || pool->size() <= 1 || count <= 1 ||
      pool->on_worker_thread()) {
    fft::FftWorkspace ws;
    body(0, count, ws);
    return;
  }
  pool->parallel_for_blocks(0, count, [&](std::size_t lo, std::size_t hi) {
    fft::FftWorkspace ws;
    body(lo, hi, ws);
  });
}

}  // namespace

std::vector<sampling::CompressedField> LocalConvolver::convolve_channels(
    std::span<const RealField> chunks, const Index3& corner,
    std::shared_ptr<const sampling::Octree> tree) const {
  LC_TRACE("convolver.convolve_channels");
  const std::size_t nchan = op_->channels();
  LC_CHECK_ARG(tree != nullptr, "null octree");
  LC_CHECK_ARG(tree->grid() == grid_, "octree grid != convolver grid");
  LC_CHECK_ARG(chunks.size() == nchan, "one chunk per operator channel");
  const i64 n = grid_.nx;
  const i64 k = chunks[0].grid().nx;
  for (const auto& c : chunks) {
    LC_CHECK_ARG(c.grid() == Grid3::cube(k), "chunks must be equal cubes");
  }
  const Box3 dom = Box3::cube_at(corner, k);
  LC_CHECK_ARG(Box3::of(grid_).contains(dom), "chunk box outside grid");
  LC_CHECK_ARG(tree->subdomain() == dom,
               "octree sub-domain must match the chunk box");

  const auto un = static_cast<std::size_t>(n);
  const auto uk = static_cast<std::size_t>(k);
  const std::size_t plane_elems = un * un;
  // Real path: spectral planes hold only the nx/2+1 x-bins (Hermitian
  // half-spectrum), y-major so a z-pencil is a unit-stride run of p.
  const std::size_t nxh = un / 2 + 1;
  const std::size_t spec_elems = real_path_ ? nxh * un : plane_elems;
  const std::vector<i64> planes = tree->retained_z_planes();

  // --- Device-registered buffer footprint (scaled by channel count) ------
  ScopedDeviceAlloc chunk_mem(config_.device,
                              nchan * chunks[0].size() * sizeof(double));
  ScopedDeviceAlloc slab_mem(config_.device,
                             nchan * spec_elems * uk * sizeof(cplx));
  ScopedDeviceAlloc staging_mem(
      config_.device, nchan * spec_elems * planes.size() * sizeof(cplx));
  ScopedDeviceAlloc pencil_mem(
      config_.device, 2 * nchan * config_.batch * un * sizeof(cplx));
  // cuFFT-like plan workspace model: double-precision c2c plans may need
  // scratch up to twice the transform size — 2× one slab for the batched
  // 2D plan plus one pencil batch for the z-plan, plus (real path) the N²
  // real plane the c2r store lane writes (see device::memory_model; the
  // two models are kept identical so measured peaks match plans).
  ScopedDeviceAlloc workspace_mem(
      config_.device,
      2 * spec_elems * uk * sizeof(cplx) + config_.batch * un * sizeof(cplx) +
          (real_path_ ? plane_elems * sizeof(double) : 0));

  std::vector<sampling::CompressedField> results;
  results.reserve(nchan);
  for (std::size_t c = 0; c < nchan; ++c) results.emplace_back(tree);
  ScopedDeviceAlloc payload_mem(config_.device,
                                nchan * results[0].sample_bytes());
  // Octree cell metadata (5 int32 per cell, shared across channels) — the
  // sampling callbacks read it on-device, and the memory model prices it.
  ScopedDeviceAlloc metadata_mem(
      config_.device, tree->cells().size() * 5 * sizeof(std::int32_t));

  // Slab / staging scratch comes from the arena when one is wired in, so a
  // serving runtime recycles these multi-MB buffers between requests
  // instead of re-faulting fresh pages. The unpooled fallback keeps one
  // code path.
  const std::size_t slab_elems = nchan * spec_elems * uk;
  auto slab_lease = config_.arena != nullptr
                        ? config_.arena->acquire(slab_elems * sizeof(cplx))
                        : BufferArena::unpooled(slab_elems * sizeof(cplx));
  const std::span<cplx> slab = slab_lease.as<cplx>();
  // Stage 1 scatters only the k×k chunk rows; everything else must be zero
  // (recycled buffers carry the previous request's data).
  std::fill(slab.begin(), slab.end(), cplx{0.0, 0.0});
  const auto slab_of = [&](std::size_t ch) {
    return slab.data() + ch * spec_elems * uk;
  };

  // --- Stage 1: zero-pad xy per slice, 2D transform into slabs ------------
  {
  LC_TRACE("convolver.stage1_xy");
  ScopedTimer stage_timer(ConvolverMetrics::get().stage1);
  run_blocks(
      config_.pool, uk * nchan,
      [&](std::size_t lo, std::size_t hi, fft::FftWorkspace& ws) {
        LC_TRACE("convolver.stage1.block");
        for (std::size_t job = lo; job < hi; ++job) {
          const std::size_t ch = job / uk;
          const auto zl = static_cast<i64>(job % uk);
          cplx* plane = slab_of(ch) + static_cast<std::size_t>(zl) * spec_elems;
          if (real_path_) {
            // r2c straight off the chunk rows: the pruned window supplies
            // the x zero-padding (no complex scatter at all), rows outside
            // [corner.y, corner.y + k) keep the slab's zero fill.
            rfft_n_->forward_batch_pruned(
                &chunks[ch](0, 0, zl), 1, uk, uk,
                static_cast<std::size_t>(corner.x),
                plane + static_cast<std::size_t>(corner.y) * nxh, 1, nxh, uk,
                ws);
            // y transform: the nx/2+1 retained x-bins, full length N.
            fft_n_->forward_batch(plane, nxh, 1, nxh, ws);
            continue;
          }
          // Scatter the chunk slice; the rest of the plane stays zero.
          for (i64 y = 0; y < k; ++y) {
            cplx* row = plane +
                        static_cast<std::size_t>(corner.y + y) * un +
                        static_cast<std::size_t>(corner.x);
            for (i64 x = 0; x < k; ++x) {
              row[x] = cplx{chunks[ch](x, y, zl), 0.0};
            }
          }
          // x transform: only the k nonzero rows need transforming.
          fft_n_->forward_batch(plane + static_cast<std::size_t>(corner.y) * un,
                                1, un, static_cast<std::size_t>(k), ws);
          // y transform: all N pencils (x spectra fill the whole row).
          fft_n_->forward_batch(plane, un, 1, un, ws);
        }
      });
  }

  // --- Stage 2: batched z pencils with the per-bin operator ---------------
  // Staging needs no zero fill: every pencil writes every retained plane.
  const std::size_t staging_elems = nchan * planes.size() * spec_elems;
  auto staging_lease =
      config_.arena != nullptr
          ? config_.arena->acquire(staging_elems * sizeof(cplx))
          : BufferArena::unpooled(staging_elems * sizeof(cplx));
  const std::span<cplx> staging = staging_lease.as<cplx>();
  const auto staging_plane = [&](std::size_t ch, std::size_t i) {
    return staging.data() + (ch * planes.size() + i) * spec_elems;
  };

  // Real path: half as many z-pencils — the tentpole FLOP saving. Pencil
  // p decodes as (x, y) = (p % nxh, p / nxh) on the half plane.
  const std::size_t xbins = real_path_ ? nxh : un;
  const std::size_t pencils = spec_elems;
  const std::size_t batches = (pencils + config_.batch - 1) / config_.batch;
  {
  LC_TRACE("convolver.stage2_z");
  ScopedTimer stage_timer(ConvolverMetrics::get().stage2);
  run_blocks(
      config_.pool, batches,
      [&](std::size_t blo, std::size_t bhi, fft::FftWorkspace& ws) {
        LC_TRACE("convolver.stage2.block");
        // Batch-major pencil scratch, layout [channel][pencil][z]:
        // channel ch of pencil p is the contiguous run
        // zbuf[(ch * config_.batch + p) * n .. +n). One lease per block.
        const std::size_t zbuf_elems = nchan * config_.batch * un;
        auto zbuf_lease =
            config_.arena != nullptr
                ? config_.arena->acquire(zbuf_elems * sizeof(cplx))
                : BufferArena::unpooled(zbuf_elems * sizeof(cplx));
        cplx* zbuf = zbuf_lease.as<cplx>().data();
        const std::size_t chan_stride = config_.batch * un;
        for (std::size_t b = blo; b < bhi; ++b) {
          const std::size_t p0 = b * config_.batch;
          const std::size_t np = std::min(pencils, p0 + config_.batch) - p0;
          // Input-pruned forward z transforms, kBatchTile pencils per SIMD
          // tile (offset = global corner.z; only k inputs are nonzero).
          for (std::size_t ch = 0; ch < nchan; ++ch) {
            fft_n_->forward_batch_pruned(
                slab_of(ch) + p0, spec_elems, 1, static_cast<std::size_t>(k),
                static_cast<std::size_t>(corner.z), zbuf + ch * chan_stride,
                un, np, ws);
          }
          // Per-bin operator, one vectorized pass per pencil (on the real
          // path this is the Γ̂·half-spectrum fusion: only x ≤ nx/2 bins
          // are ever multiplied).
          for (std::size_t p = 0; p < np; ++p) {
            const i64 x = static_cast<i64>((p0 + p) % xbins);
            const i64 y = static_cast<i64>((p0 + p) / xbins);
            op_->apply_z_pencil(x, y, 0, grid_, zbuf + p * un, un,
                                chan_stride);
          }
          // Inverse z transforms; keep only the retained planes (the
          // "store callback" of Fig 4).
          for (std::size_t ch = 0; ch < nchan; ++ch) {
            fft_n_->inverse_batch(zbuf + ch * chan_stride, 1, un, np, ws);
            for (std::size_t i = 0; i < planes.size(); ++i) {
              cplx* dst = staging_plane(ch, i) + p0;
              const cplx* src =
                  zbuf + ch * chan_stride + static_cast<std::size_t>(planes[i]);
              for (std::size_t p = 0; p < np; ++p) dst[p] = src[p * un];
            }
          }
        }
      });
  }
  slab_lease.release();  // slab memory is dead after the z stage

  // --- Stage 3: per retained plane, 2D inverse + octree sampling ----------
  const auto by_plane = cells_by_plane(*tree);
  const auto cells = tree->cells();
  {
  LC_TRACE("convolver.stage3_planes");
  ScopedTimer stage_timer(ConvolverMetrics::get().stage3);
  run_blocks(
      config_.pool, planes.size() * nchan,
      [&](std::size_t lo, std::size_t hi, fft::FftWorkspace& ws) {
        LC_TRACE("convolver.stage3.block");
        // Real path: the c2r inverse's store lane writes into one leased
        // N² real plane per block — the octree sampling below reads it
        // directly, so the full complex plane never exists.
        auto rplane_lease =
            !real_path_ ? BufferArena::Lease{}
            : config_.arena != nullptr
                ? config_.arena->acquire(plane_elems * sizeof(double))
                : BufferArena::unpooled(plane_elems * sizeof(double));
        double* rplane = rplane_lease.as<double>().data();
        for (std::size_t job = lo; job < hi; ++job) {
          const std::size_t ch = job / planes.size();
          const std::size_t i = job % planes.size();
          cplx* plane = staging_plane(ch, i);
          if (real_path_) {
            // Inverse y over the nx/2+1 x-bins, then c2r rows (fused
            // Hermitian mirror + real store).
            fft_n_->inverse_batch(plane, nxh, 1, nxh, ws);
            rfft_n_->inverse_batch(plane, 1, nxh, rplane, 1, un, un, ws);
          } else {
            // Inverse y (pencils, stride N), then inverse x (rows).
            fft_n_->inverse_batch(plane, un, 1, un, ws);
            fft_n_->inverse_batch(plane, 1, un, un, ws);
          }
          auto payload = results[ch].samples();
          // Store callback: extract this plane's octree lattice samples.
          for (const auto& [ci, iz] :
               by_plane[static_cast<std::size_t>(planes[i])]) {
            const auto& c = cells[ci];
            const i64 e = c.samples_per_edge();
            for (i64 iy = 0; iy < e; ++iy) {
              const i64 yy = (c.corner.y + iy * c.rate) % n;
              for (i64 ix = 0; ix < e; ++ix) {
                const i64 xx = (c.corner.x + ix * c.rate) % n;
                const std::size_t at = static_cast<std::size_t>(yy) * un +
                                       static_cast<std::size_t>(xx);
                payload[c.sample_offset + c.sample_index(ix, iy, iz)] =
                    real_path_ ? rplane[at] : plane[at].real();
              }
            }
          }
        }
      });
  }

  return results;
}

sampling::CompressedField LocalConvolver::convolve_subdomain(
    const RealField& chunk, const Index3& corner,
    std::shared_ptr<const sampling::Octree> tree) const {
  LC_CHECK_ARG(op_->channels() == 1,
               "scalar convolve_subdomain needs a 1-channel operator");
  auto results = convolve_channels({&chunk, 1}, corner, std::move(tree));
  return std::move(results[0]);
}

}  // namespace lc::core
