// LocalConvolver: FFT-based convolution of one k³ sub-domain against a
// global N³ spectral operator, computed entirely inside one worker, with
// the result compressed by octree sampling during the inverse stages
// (paper §3.2 steps 2–3, Fig 2, Fig 4).
//
// Program flow (mirrors the paper's CUDA/cuFFT structure):
//   1. xy stage  — the k nonzero z-slices of each channel are zero-padded
//      to N×N (padding is per 1D call; the full padded N³ array never
//      exists) and 2D-transformed into an N×N×k slab per channel.
//   2. z stage   — B pencils at a time ("batch parameter", §5.4): each
//      (ξx, ξy) pencil is input-pruned forward-transformed to length N
//      (only k inputs are nonzero), the spectral operator is applied per
//      bin across channels (scalar kernel multiply, or MASSIF's Γ̂ : σ̂
//      contraction), the pencil is inverse-transformed, and only the
//      octree's retained z-planes are scattered into staging — the
//      load/store-callback role of the cuFFT callbacks in Fig 4.
//   3. plane stage — each retained z-plane is 2D inverse-transformed and
//      the octree's (x, y) lattice samples are stored into the compressed
//      payload. The dense N³ result is never materialised.
//
// Every sample the pipeline keeps is an *exact* value of the circular
// convolution; approximation error enters only at interpolation time.
#pragma once

#include <memory>
#include <vector>

#include "common/arena.hpp"
#include "common/thread_pool.hpp"
#include "core/spectral_operator.hpp"
#include "device/device.hpp"
#include "fft/fft1d.hpp"
#include "fft/real_fft.hpp"
#include "sampling/compressed_field.hpp"

namespace lc::core {

/// Tuning and instrumentation knobs for the local pipeline.
struct LocalConvolverConfig {
  /// Hermitian half-spectrum dispatch (DESIGN.md §16). kAuto — the default
  /// — takes the r2c/c2r path whenever the operator is Hermitian-symmetric
  /// and LC_REAL != off, transforming only the nx/2+1 x-bins; kOff forces
  /// the full complex path (the bit-exact ground truth the real path is
  /// validated against); kForce requires a Hermitian operator and throws
  /// otherwise.
  enum class RealPath { kAuto, kOff, kForce };

  /// z-pencils transformed per batch (the paper's B; §5.4).
  std::size_t batch = 1024;
  /// Thread pool for intra-worker parallelism (nullptr → serial).
  ThreadPool* pool = &ThreadPool::global();
  /// Optional simulated device; when set, all pipeline buffers are
  /// registered against its capacity and peak tracking.
  device::DeviceContext* device = nullptr;
  /// Pre-built length-N plan shared across engines (the runtime plan
  /// cache's reuse hook); must match the grid side. Null → build our own.
  std::shared_ptr<const fft::Fft1D> plan;
  /// Pre-built length-N r2c/c2r plan (plan-cache hook for the real path);
  /// must match the grid side. Null → built on demand when active.
  std::shared_ptr<const fft::RealFft1D> real_plan;
  /// Optional scratch recycler: slab and staging buffers are leased from it
  /// instead of allocated per call. Null → plain per-call allocation.
  BufferArena* arena = nullptr;
  /// See RealPath; kAuto consults lc::real_path_enabled() (LC_REAL).
  RealPath real = RealPath::kAuto;
};

/// Immutable local convolution engine for a fixed grid and operator.
class LocalConvolver {
 public:
  LocalConvolver(const Grid3& grid,
                 std::shared_ptr<const SpectralOperator> op,
                 LocalConvolverConfig config = {});

  /// Scalar-kernel convenience constructor.
  LocalConvolver(const Grid3& grid,
                 std::shared_ptr<const green::KernelSpectrum> kernel,
                 LocalConvolverConfig config = {});

  [[nodiscard]] const Grid3& grid() const noexcept { return grid_; }
  [[nodiscard]] const LocalConvolverConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const SpectralOperator& op() const noexcept { return *op_; }

  /// True when this engine runs the Hermitian half-spectrum (r2c/c2r)
  /// pipeline — decided once at construction from config().real, LC_REAL,
  /// and the operator's hermitian() predicate.
  [[nodiscard]] bool uses_real_path() const noexcept { return real_path_; }

  /// Convolve C tight k³ channel chunks whose origin sits at `corner` of
  /// the global grid, compressing each channel's N³ result through `tree`
  /// (whose sub-domain must be the chunk box).
  [[nodiscard]] std::vector<sampling::CompressedField> convolve_channels(
      std::span<const RealField> chunks, const Index3& corner,
      std::shared_ptr<const sampling::Octree> tree) const;

  /// Single-channel convenience overload.
  [[nodiscard]] sampling::CompressedField convolve_subdomain(
      const RealField& chunk, const Index3& corner,
      std::shared_ptr<const sampling::Octree> tree) const;

 private:
  Grid3 grid_;
  std::shared_ptr<const SpectralOperator> op_;
  LocalConvolverConfig config_;
  // Length-N plan shared by every axis (cubic grid); either injected via
  // LocalConvolverConfig::plan or built here.
  std::shared_ptr<const fft::Fft1D> fft_n_;
  // Length-N r2c/c2r plan for the x axis; non-null iff real_path_.
  std::shared_ptr<const fft::RealFft1D> rfft_n_;
  bool real_path_ = false;
};

/// RAII registration of `bytes` against an optional device context.
class ScopedDeviceAlloc {
 public:
  ScopedDeviceAlloc(device::DeviceContext* ctx, std::size_t bytes)
      : ctx_(ctx), bytes_(bytes) {
    if (ctx_ != nullptr) ctx_->register_alloc(bytes_);
  }
  ~ScopedDeviceAlloc() {
    if (ctx_ != nullptr) ctx_->register_free(bytes_);
  }
  ScopedDeviceAlloc(const ScopedDeviceAlloc&) = delete;
  ScopedDeviceAlloc& operator=(const ScopedDeviceAlloc&) = delete;

 private:
  device::DeviceContext* ctx_;
  std::size_t bytes_;
};

}  // namespace lc::core
