#include "core/hyperparams.hpp"

#include <algorithm>

#include "fft/fft1d.hpp"

namespace lc::core {

std::size_t recommended_batch(i64 n) {
  const auto b = static_cast<std::size_t>(std::max<i64>(n, 1));
  return std::clamp<std::size_t>(fft::next_pow2(b), 512, 32768);
}

i64 recommended_far_rate(i64 n, i64 k) {
  LC_CHECK_ARG(k >= 1 && n >= k, "bad (n, k)");
  const auto ratio = static_cast<i64>(
      fft::next_pow2(static_cast<std::size_t>(std::max<i64>(n / k, 2))));
  return std::clamp<i64>(ratio, 2, 32);
}

HyperparamAdvice select_hyperparams(i64 n, const device::DeviceSpec& spec) {
  HyperparamAdvice advice;
  advice.batch = recommended_batch(n);
  advice.subdomain = device::max_allowable_k(n, spec, advice.batch);
  LC_CHECK_ARG(advice.subdomain >= 1,
               "problem does not fit the device at any sub-domain size");
  advice.far_rate = recommended_far_rate(n, advice.subdomain);
  return advice;
}

}  // namespace lc::core
