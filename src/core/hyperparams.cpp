#include "core/hyperparams.hpp"

#include <algorithm>

#include "fft/fft1d.hpp"

namespace lc::core {

namespace {

/// actual_total of the local pipeline at (n, k) fits the device — the same
/// feasibility test device::max_allowable_k applies to its pow2 probes. The
/// exact plan needs a real octree (pow2 sides only); other n use the
/// analytic estimate, whose dominant slab / workspace terms are identical.
bool fits_device(i64 n, i64 k, std::size_t batch,
                 const device::DeviceSpec& spec) {
  const i64 rate = device::planning_far_rate(n, k);
  const auto plan =
      fft::is_pow2(static_cast<std::size_t>(n))
          ? device::plan_local_pipeline(
                n, k, sampling::SamplingPolicy::uniform(rate), batch)
          : device::estimate_local_pipeline(n, k, rate, batch);
  return plan.actual_total() <= spec.capacity_bytes;
}

}  // namespace

std::size_t recommended_batch(i64 n) {
  const auto b = static_cast<std::size_t>(std::max<i64>(n, 1));
  return std::clamp<std::size_t>(fft::next_pow2(b), 512, 32768);
}

i64 recommended_far_rate(i64 n, i64 k) {
  LC_CHECK_ARG(k >= 1 && n >= k, "bad (n, k)");
  const auto ratio = static_cast<i64>(
      fft::next_pow2(static_cast<std::size_t>(std::max<i64>(n / k, 2))));
  return std::clamp<i64>(ratio, 2, 32);
}

std::vector<i64> subdomain_divisors(i64 n) {
  LC_CHECK_ARG(n >= 2, "grid side must be >= 2");
  std::vector<i64> divs;
  for (i64 k = n; k >= 2; --k) {
    if (n % k == 0) divs.push_back(k);
  }
  return divs;
}

HyperparamAdvice select_hyperparams(i64 n, const device::DeviceSpec& spec) {
  HyperparamAdvice advice;
  advice.batch = recommended_batch(n);
  // The pow2 memory probe only works on pow2 grids (its pipeline plans
  // build real octrees); elsewhere it would also recommend sizes that
  // cannot divide n.
  i64 k = fft::is_pow2(static_cast<std::size_t>(n))
              ? device::max_allowable_k(n, spec, advice.batch)
              : 0;
  if (k < 1 || n % k != 0) {
    // The probe found headroom at a size DomainDecomposition would reject
    // (k must divide n), or could not run at all; take the largest divisor
    // that still fits instead.
    k = 0;
    for (const i64 d : subdomain_divisors(n)) {
      if (fits_device(n, d, advice.batch, spec)) {
        k = d;
        break;
      }
    }
  }
  LC_CHECK_ARG(
      k >= 1,
      "no sub-domain size k dividing N=" + std::to_string(n) +
          " fits device '" + spec.name + "' (capacity " +
          std::to_string(spec.capacity_bytes) +
          " bytes); reduce N or use a larger device");
  advice.subdomain = k;
  advice.far_rate = recommended_far_rate(n, advice.subdomain);
  return advice;
}

}  // namespace lc::core
