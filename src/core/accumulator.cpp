#include "core/accumulator.hpp"

#include "common/check.hpp"

namespace lc::core {

RealField accumulate_region(
    const std::vector<sampling::CompressedField>& contributions,
    const Box3& region, sampling::Interpolation interp) {
  LC_CHECK_ARG(!region.empty(), "empty accumulation region");
  RealField out(region.extents(), 0.0);
  for (const auto& c : contributions) {
    c.reconstruct_add(out, region, interp);
  }
  return out;
}

RealField accumulate_full(
    const std::vector<sampling::CompressedField>& contributions,
    const Grid3& grid, sampling::Interpolation interp) {
  RealField out(grid, 0.0);
  for (const auto& c : contributions) {
    LC_CHECK_ARG(c.octree().grid() == grid, "contribution grid mismatch");
    c.reconstruct_add(out, Box3::of(grid), interp);
  }
  return out;
}

}  // namespace lc::core
