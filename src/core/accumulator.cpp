#include "core/accumulator.hpp"

#include "common/check.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lc::core {

RealField accumulate_region(
    const std::vector<sampling::CompressedField>& contributions,
    const Box3& region, sampling::Interpolation interp, ThreadPool* pool) {
  LC_TRACE("accumulate.region");
  static obs::Histogram& region_seconds =
      obs::Registry::global().histogram("accumulate.region_seconds");
  ScopedTimer region_timer(region_seconds);
  LC_CHECK_ARG(!region.empty(), "empty accumulation region");
  RealField out(region.extents(), 0.0);
  const Grid3 ext = region.extents();
  const std::size_t plane =
      static_cast<std::size_t>(ext.nx) * static_cast<std::size_t>(ext.ny);
  const auto nz = static_cast<std::size_t>(ext.nz);

  // One z-slab of the region: a contiguous, exclusively-owned span of `out`.
  auto slab = [&](std::size_t zlo, std::size_t zhi) {
    LC_TRACE("accumulate.slab");
    const Box3 tile{{region.lo.x, region.lo.y,
                     region.lo.z + static_cast<i64>(zlo)},
                    {region.hi.x, region.hi.y,
                     region.lo.z + static_cast<i64>(zhi)}};
    const auto span = out.span().subspan(zlo * plane, (zhi - zlo) * plane);
    for (const auto& c : contributions) {
      c.reconstruct_add_into(span, tile, interp);
    }
  };

  if (pool == nullptr || pool->size() <= 1 || nz <= 1 ||
      pool->on_worker_thread()) {
    slab(0, nz);
  } else {
    pool->parallel_for_blocks(0, nz, slab);
  }
  return out;
}

RealField accumulate_full(
    const std::vector<sampling::CompressedField>& contributions,
    const Grid3& grid, sampling::Interpolation interp, ThreadPool* pool) {
  for (const auto& c : contributions) {
    LC_CHECK_ARG(c.octree().grid() == grid, "contribution grid mismatch");
  }
  return accumulate_region(contributions, Box3::of(grid), interp, pool);
}

}  // namespace lc::core
