// Accumulation of sub-domain results (paper §3.2 step 4, Algorithm 2 line 6):
// every sub-domain's compressed convolution contribution is interpolated
// onto each target region and summed. By linearity of convolution the sum
// over all sub-domain contributions equals the full convolution.
//
// Threading contract: when a pool is supplied, the output region is split
// into z-slab tiles dispatched on ThreadPool::parallel_for_blocks; each tile
// is a disjoint contiguous span of the output (x-fastest layout makes z-slabs
// contiguous), so workers never share a write destination and no atomics are
// needed. Within a tile, contributions are added in their vector order — the
// per-point addition order is identical to the serial path, so parallel and
// serial accumulation produce bit-identical results. Calls from inside a
// pool worker (e.g. the runtime service's accumulate tasks, SimCluster
// ranks) degrade to serial automatically.
#pragma once

#include <vector>

#include "common/thread_pool.hpp"
#include "sampling/compressed_field.hpp"

namespace lc::core {

/// Sum the interpolated reconstructions of `contributions` over `region`,
/// returning a tight field covering the region. `pool` enables z-slab
/// parallel accumulation (nullptr → serial).
[[nodiscard]] RealField accumulate_region(
    const std::vector<sampling::CompressedField>& contributions,
    const Box3& region,
    sampling::Interpolation interp = sampling::Interpolation::kTrilinear,
    ThreadPool* pool = nullptr);

/// Assemble a full dense grid by accumulating every contribution everywhere
/// (test/verification path; a production run only accumulates the regions
/// it owns).
[[nodiscard]] RealField accumulate_full(
    const std::vector<sampling::CompressedField>& contributions,
    const Grid3& grid,
    sampling::Interpolation interp = sampling::Interpolation::kTrilinear,
    ThreadPool* pool = nullptr);

}  // namespace lc::core
