// Accumulation of sub-domain results (paper §3.2 step 4, Algorithm 2 line 6):
// every sub-domain's compressed convolution contribution is interpolated
// onto each target region and summed. By linearity of convolution the sum
// over all sub-domain contributions equals the full convolution.
#pragma once

#include <vector>

#include "sampling/compressed_field.hpp"

namespace lc::core {

/// Sum the interpolated reconstructions of `contributions` over `region`,
/// returning a tight field covering the region.
[[nodiscard]] RealField accumulate_region(
    const std::vector<sampling::CompressedField>& contributions,
    const Box3& region,
    sampling::Interpolation interp = sampling::Interpolation::kTrilinear);

/// Assemble a full dense grid by accumulating every contribution everywhere
/// (test/verification path; a production run only accumulates the regions
/// it owns).
[[nodiscard]] RealField accumulate_full(
    const std::vector<sampling::CompressedField>& contributions,
    const Grid3& grid,
    sampling::Interpolation interp = sampling::Interpolation::kTrilinear);

}  // namespace lc::core
