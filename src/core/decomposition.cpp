#include "core/decomposition.hpp"

#include "common/check.hpp"

namespace lc::core {

DomainDecomposition::DomainDecomposition(const Grid3& grid, i64 k)
    : grid_(grid), k_(k) {
  LC_CHECK_ARG(grid.nx == grid.ny && grid.ny == grid.nz,
               "decomposition requires a cubic grid");
  LC_CHECK_ARG(k >= 1 && k <= grid.nx, "sub-domain size outside grid");
  LC_CHECK_ARG(grid.nx % k == 0, "grid side must be divisible by k");
  const i64 per_axis = grid.nx / k;
  boxes_.reserve(static_cast<std::size_t>(per_axis * per_axis * per_axis));
  for (i64 z = 0; z < per_axis; ++z) {
    for (i64 y = 0; y < per_axis; ++y) {
      for (i64 x = 0; x < per_axis; ++x) {
        boxes_.push_back(Box3::cube_at({x * k, y * k, z * k}, k));
      }
    }
  }
}

std::vector<std::size_t> DomainDecomposition::assigned_to(int rank,
                                                          int workers) const {
  LC_CHECK_ARG(workers >= 1 && rank >= 0 && rank < workers,
               "bad rank/worker count");
  std::vector<std::size_t> mine;
  for (std::size_t i = static_cast<std::size_t>(rank); i < boxes_.size();
       i += static_cast<std::size_t>(workers)) {
    mine.push_back(i);
  }
  return mine;
}

}  // namespace lc::core
