#include "core/decomposition.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "common/check.hpp"
#include "common/runtime_flags.hpp"

namespace lc::core {

namespace {

/// Interleave the low 21 bits of (x, y, z) into one Morton key. per-axis
/// coordinates here are sub-domain block coordinates (< 2^21 always).
std::uint64_t morton3(std::uint64_t x, std::uint64_t y, std::uint64_t z) {
  std::uint64_t key = 0;
  for (int b = 0; b < 21; ++b) {
    key |= ((x >> b) & 1u) << (3 * b);
    key |= ((y >> b) & 1u) << (3 * b + 1);
    key |= ((z >> b) & 1u) << (3 * b + 2);
  }
  return key;
}

}  // namespace

Assignment default_assignment() {
  static const Assignment chosen =
      env_choice("LC_ASSIGNMENT", 0, {"blockedmorton", "roundrobin"}) == 1
          ? Assignment::kRoundRobin
          : Assignment::kBlockedMorton;
  return chosen;
}

DomainDecomposition::DomainDecomposition(const Grid3& grid, i64 k)
    : grid_(grid), k_(k) {
  LC_CHECK_ARG(grid.nx == grid.ny && grid.ny == grid.nz,
               "decomposition requires a cubic grid");
  LC_CHECK_ARG(k >= 1 && k <= grid.nx, "sub-domain size outside grid");
  LC_CHECK_ARG(grid.nx % k == 0, "grid side must be divisible by k");
  const i64 per_axis = grid.nx / k;
  boxes_.reserve(static_cast<std::size_t>(per_axis * per_axis * per_axis));
  for (i64 z = 0; z < per_axis; ++z) {
    for (i64 y = 0; y < per_axis; ++y) {
      for (i64 x = 0; x < per_axis; ++x) {
        boxes_.push_back(Box3::cube_at({x * k, y * k, z * k}, k));
      }
    }
  }
  // Morton (octant-interleaved) order of the boxes: the sort key interleaves
  // the block coordinates, so consecutive positions are spatial neighbours.
  morton_order_.resize(boxes_.size());
  std::iota(morton_order_.begin(), morton_order_.end(), std::size_t{0});
  std::sort(morton_order_.begin(), morton_order_.end(),
            [&](std::size_t a, std::size_t b) {
              const Index3& la = boxes_[a].lo;
              const Index3& lb = boxes_[b].lo;
              return morton3(static_cast<std::uint64_t>(la.x / k),
                             static_cast<std::uint64_t>(la.y / k),
                             static_cast<std::uint64_t>(la.z / k)) <
                     morton3(static_cast<std::uint64_t>(lb.x / k),
                             static_cast<std::uint64_t>(lb.y / k),
                             static_cast<std::uint64_t>(lb.z / k));
            });
}

std::vector<std::size_t> DomainDecomposition::assigned_to(int rank,
                                                          int workers) const {
  return assigned_to(rank, workers, default_assignment());
}

std::vector<std::size_t> DomainDecomposition::assigned_to(
    int rank, int workers, Assignment how) const {
  LC_CHECK_ARG(workers >= 1 && rank >= 0 && rank < workers,
               "bad rank/worker count");
  std::vector<std::size_t> mine;
  if (how == Assignment::kRoundRobin) {
    for (std::size_t i = static_cast<std::size_t>(rank); i < boxes_.size();
         i += static_cast<std::size_t>(workers)) {
      mine.push_back(i);
    }
    return mine;
  }
  // Blocked assignment: rank r owns the r-th contiguous run of the Morton
  // order, so each rank's sub-domains form one compact spatial cluster and
  // rank blocks (= nodes under Topology::grouped) cluster too.
  const std::size_t count = boxes_.size();
  const std::size_t p = static_cast<std::size_t>(workers);
  const std::size_t r = static_cast<std::size_t>(rank);
  const std::size_t begin = count * r / p;
  const std::size_t end = count * (r + 1) / p;
  mine.assign(morton_order_.begin() + static_cast<std::ptrdiff_t>(begin),
              morton_order_.begin() + static_cast<std::ptrdiff_t>(end));
  std::sort(mine.begin(), mine.end());
  return mine;
}

}  // namespace lc::core
