// Domain decomposition (paper §3.2 step 1): the N³ grid is split into k³
// sub-domains; each worker processes one or more sub-domains locally.
#pragma once

#include <vector>

#include "tensor/grid.hpp"

namespace lc::core {

/// Regular volumetric decomposition of a cubic grid into cubic sub-domains.
class DomainDecomposition {
 public:
  /// Split `grid` (cubic, side divisible by k) into k³ boxes, ordered
  /// x-fastest.
  DomainDecomposition(const Grid3& grid, i64 k);

  [[nodiscard]] const Grid3& grid() const noexcept { return grid_; }
  [[nodiscard]] i64 subdomain_size() const noexcept { return k_; }
  [[nodiscard]] std::size_t count() const noexcept { return boxes_.size(); }
  [[nodiscard]] const std::vector<Box3>& subdomains() const noexcept {
    return boxes_;
  }
  [[nodiscard]] const Box3& subdomain(std::size_t i) const {
    return boxes_.at(i);
  }

  /// Round-robin assignment of sub-domain indices to `workers` ranks.
  [[nodiscard]] std::vector<std::size_t> assigned_to(int rank,
                                                     int workers) const;

 private:
  Grid3 grid_;
  i64 k_;
  std::vector<Box3> boxes_;
};

}  // namespace lc::core
