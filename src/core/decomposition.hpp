// Domain decomposition (paper §3.2 step 1): the N³ grid is split into k³
// sub-domains; each worker processes one or more sub-domains locally.
#pragma once

#include <vector>

#include "tensor/grid.hpp"

namespace lc::core {

/// How sub-domain indices map onto ranks.
enum class Assignment {
  /// Contiguous runs of the Morton (octant-interleaved) order per rank:
  /// each rank owns a compact spatial block, so neighbouring sub-domains —
  /// whose octree cells overlap the most — land on the same rank (and, with
  /// block-grouped topologies, the same node). This is what makes the
  /// planner's node-locality assumptions real.
  kBlockedMorton,
  /// Legacy strided round-robin (rank, rank+P, ...). Kept as the A/B
  /// baseline for benches; spatially maximally scattered.
  kRoundRobin,
};

/// Process-wide default assignment: kBlockedMorton unless the environment
/// sets LC_ASSIGNMENT=roundrobin (read once, first call wins).
[[nodiscard]] Assignment default_assignment();

/// Regular volumetric decomposition of a cubic grid into cubic sub-domains.
class DomainDecomposition {
 public:
  /// Split `grid` (cubic, side divisible by k) into k³ boxes, ordered
  /// x-fastest.
  DomainDecomposition(const Grid3& grid, i64 k);

  [[nodiscard]] const Grid3& grid() const noexcept { return grid_; }
  [[nodiscard]] i64 subdomain_size() const noexcept { return k_; }
  [[nodiscard]] std::size_t count() const noexcept { return boxes_.size(); }
  [[nodiscard]] const std::vector<Box3>& subdomains() const noexcept {
    return boxes_;
  }
  [[nodiscard]] const Box3& subdomain(std::size_t i) const {
    return boxes_.at(i);
  }

  /// Sub-domain indices (ascending) owned by `rank` out of `workers` under
  /// the process default assignment. Every caller of the exchange — packing,
  /// the static traffic mirror, and the executed collective — must route
  /// through the same assignment or the framing would disagree.
  [[nodiscard]] std::vector<std::size_t> assigned_to(int rank,
                                                     int workers) const;

  /// Same, with the assignment scheme explicit (bench A/B hooks).
  [[nodiscard]] std::vector<std::size_t> assigned_to(int rank, int workers,
                                                     Assignment how) const;

 private:
  Grid3 grid_;
  i64 k_;
  std::vector<Box3> boxes_;
  std::vector<std::size_t> morton_order_;  // box indices in Morton order
};

}  // namespace lc::core
