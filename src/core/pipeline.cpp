#include "core/pipeline.hpp"

#include <atomic>
#include <bit>
#include <cmath>
#include <functional>
#include <optional>
#include <span>

#include "comm/hierarchical.hpp"
#include "comm/wire_codec.hpp"
#include "common/check.hpp"
#include "common/runtime_flags.hpp"
#include "common/timer.hpp"
#include "device/memory_model.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sampling/octree.hpp"

namespace lc::core {

namespace {

// End-to-end pipeline metrics: one "pipeline.convolve_seconds" sample per
// convolve() call; the counters accumulate the compressed-exchange volume
// the comm-volume report reads back per run.
struct PipelineMetrics {
  obs::Histogram& convolve_seconds = obs::Registry::global().histogram(
      "pipeline.convolve_seconds");
  obs::Counter& subdomains = obs::Registry::global().counter(
      "pipeline.subdomains");
  obs::Counter& compressed_samples = obs::Registry::global().counter(
      "pipeline.compressed_samples");
  obs::Counter& exchanged_bytes = obs::Registry::global().counter(
      "pipeline.exchanged_bytes");

  static PipelineMetrics& get() {
    static PipelineMetrics m;
    return m;
  }
};

}  // namespace

sampling::SamplingPolicy LowCommParams::make_policy() const {
  if (uniform_rate.has_value()) {
    return sampling::SamplingPolicy::uniform(*uniform_rate, boundary_band);
  }
  return sampling::SamplingPolicy::paper_default(subdomain, far_rate,
                                                 boundary_band, dense_halo);
}

LowCommConvolution::LowCommConvolution(
    const Grid3& grid, std::shared_ptr<const green::KernelSpectrum> kernel,
    LowCommParams params, LocalConvolverConfig config)
    : decomp_(grid, params.subdomain),
      params_(params),
      convolver_(grid, std::move(kernel), config),
      octrees_(decomp_.count()) {}

std::shared_ptr<const sampling::Octree> LowCommConvolution::octree_for(
    std::size_t subdomain_index) const {
  LC_CHECK_ARG(subdomain_index < decomp_.count(), "sub-domain index range");
  OctreeSlot& slot = octrees_[subdomain_index];
  std::call_once(slot.once, [&] {
    slot.tree = std::make_shared<sampling::Octree>(
        decomp_.grid(), decomp_.subdomain(subdomain_index),
        params_.make_policy());
  });
  return slot.tree;
}

void LowCommConvolution::seed_octree(
    std::size_t subdomain_index,
    std::shared_ptr<const sampling::Octree> tree) const {
  LC_CHECK_ARG(subdomain_index < decomp_.count(), "sub-domain index range");
  LC_CHECK_ARG(tree != nullptr, "null octree");
  LC_CHECK_ARG(tree->grid() == decomp_.grid() &&
                   tree->subdomain() == decomp_.subdomain(subdomain_index),
               "seeded octree does not match the sub-domain");
  OctreeSlot& slot = octrees_[subdomain_index];
  std::call_once(slot.once, [&] { slot.tree = std::move(tree); });
}

sampling::CompressedField LowCommConvolution::convolve_one(
    const RealField& input, std::size_t subdomain_index) const {
  LC_TRACE("pipeline.subdomain");
  LC_CHECK_ARG(input.grid() == decomp_.grid(), "input grid mismatch");
  const Box3& box = decomp_.subdomain(subdomain_index);
  const RealField chunk = input.extract(box);
  return convolver_.convolve_subdomain(chunk, box.lo,
                                       octree_for(subdomain_index));
}

LowCommResult LowCommConvolution::convolve(const RealField& input) const {
  LC_TRACE("pipeline.convolve");
  ScopedTimer convolve_timer(PipelineMetrics::get().convolve_seconds);
  const std::size_t count = decomp_.count();
  ThreadPool* pool = convolver_.config().pool;
  std::vector<std::optional<sampling::CompressedField>> slots(count);
  auto run = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t d = lo; d < hi; ++d) {
      slots[d].emplace(convolve_one(input, d));
    }
  };
  // Outer parallelism over sub-domains: the local convolver detects it is
  // running on one of the pool's own workers and degrades its internal
  // stages to serial, so each worker owns one sub-domain end to end.
  if (pool == nullptr || pool->size() <= 1 || count <= 1 ||
      pool->on_worker_thread()) {
    run(0, count);
  } else {
    pool->parallel_for_blocks(0, count, run);
  }

  std::vector<sampling::CompressedField> contributions;
  contributions.reserve(count);
  std::size_t samples = 0;
  std::size_t bytes = 0;
  for (auto& slot : slots) {
    samples += slot->samples().size();
    bytes += slot->encoded_sample_bytes(params_.wire);
    contributions.push_back(std::move(*slot));
  }
  PipelineMetrics& metrics = PipelineMetrics::get();
  metrics.subdomains.add(count);
  metrics.compressed_samples.add(samples);
  metrics.exchanged_bytes.add(bytes);
  LowCommResult result{accumulate_full(contributions, decomp_.grid(),
                                       params_.interpolation, pool),
                       samples, bytes, 0.0};
  // Ratio versus storing every sub-domain's full-resolution N³ result.
  result.compression_ratio =
      static_cast<double>(decomp_.count()) *
      static_cast<double>(decomp_.grid().size()) /
      static_cast<double>(samples);
  return result;
}

namespace {

/// Per-cell destination bitmask for one octree: bit r of mask(cell) is set
/// iff the cell's box overlaps a sub-domain owned by rank r. Built in ONE
/// pass over (cells × sub-domains) and queried O(1) afterwards — replacing
/// the per-(cell, destination, owned-box) overlap tests the exchange loops
/// used to repeat for every use site.
class CellDestMasks {
 public:
  CellDestMasks(const sampling::Octree& tree,
                const DomainDecomposition& decomp,
                std::span<const int> owner_of, int workers) {
    const auto cells = tree.cells();
    words_ = (static_cast<std::size_t>(workers) + 63) / 64;
    bits_.assign(cells.size() * words_, 0);
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
      const Box3 box = cells[ci].box();
      for (std::size_t d = 0; d < decomp.count(); ++d) {
        if (box.intersect(decomp.subdomain(d)).empty()) continue;
        const auto r = static_cast<std::size_t>(owner_of[d]);
        bits_[ci * words_ + r / 64] |= std::uint64_t{1} << (r % 64);
      }
    }
  }

  [[nodiscard]] bool needed(std::size_t cell, int rank) const noexcept {
    const auto r = static_cast<std::size_t>(rank);
    return (bits_[cell * words_ + r / 64] >> (r % 64)) & 1u;
  }

  /// Number of destination ranks needing this cell, excluding `self`.
  [[nodiscard]] int fanout_excluding(std::size_t cell, int self) const
      noexcept {
    int n = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      n += std::popcount(bits_[cell * words_ + w]);
    }
    return n - (needed(cell, self) ? 1 : 0);
  }

 private:
  std::size_t words_ = 0;
  std::vector<std::uint64_t> bits_;
};

/// owner_of[d] = rank owning sub-domain d under the active assignment.
std::vector<int> invert_assignment(
    const DomainDecomposition& decomp,
    const std::vector<std::vector<std::size_t>>& owned) {
  std::vector<int> owner_of(decomp.count(), 0);
  for (std::size_t r = 0; r < owned.size(); ++r) {
    for (const std::size_t d : owned[r]) owner_of[d] = static_cast<int>(r);
  }
  return owner_of;
}

/// Sub-domain owners at node granularity: CellDestMasks built over this
/// (with workers = topo.nodes()) answers "which NODES need this cell" —
/// the union over each node's member ranks that drives the per-node packing
/// dedup of the hierarchical route.
std::vector<int> node_owner_of(const std::vector<int>& owner_of,
                               const comm::Topology& topo) {
  std::vector<int> node_of(owner_of.size());
  for (std::size_t d = 0; d < owner_of.size(); ++d) {
    node_of[d] = topo.node_of(owner_of[d]);
  }
  return node_of;
}

/// Source of per-sub-domain octrees for the traffic walkers below: an
/// engine's cached slots, or trees built on the fly from (grid, params)
/// when no engine exists (the planner's pricing path).
using OctreeSource =
    std::function<std::shared_ptr<const sampling::Octree>(std::size_t)>;

/// sizes[src][D] = WIRE DOUBLES rank src ships to node D under
/// node-granularity packing and the active wire codec: the encoded bytes of
/// every packed cell, rounded up to whole doubles once per bundle (exactly
/// the WireEncoder framing). Every rank computes the full table from the
/// deterministic octrees — this is the size oracle that frames the
/// hierarchical exchange without any metadata crossing the wire.
std::vector<std::vector<std::size_t>> node_bundle_sizes(
    const DomainDecomposition& decomp, const OctreeSource& octree_for,
    const std::vector<std::vector<std::size_t>>& owned,
    const std::vector<int>& node_owners, const comm::Topology& topo,
    comm::WireCodec codec) {
  const int nodes = topo.nodes();
  std::vector<std::vector<std::size_t>> bytes(
      owned.size(),
      std::vector<std::size_t>(static_cast<std::size_t>(nodes), 0));
  for (std::size_t src = 0; src < owned.size(); ++src) {
    for (const std::size_t d : owned[src]) {
      const auto tree = octree_for(d);
      const CellDestMasks masks(*tree, decomp, node_owners, nodes);
      const auto cells = tree->cells();
      for (std::size_t ci = 0; ci < cells.size(); ++ci) {
        for (int n = 0; n < nodes; ++n) {
          if (masks.needed(ci, n)) {
            bytes[src][static_cast<std::size_t>(n)] +=
                comm::encoded_cell_bytes(codec, cells[ci].sample_count());
          }
        }
      }
    }
  }
  for (auto& per_node : bytes) {
    for (std::size_t& b : per_node) b = comm::wire_doubles(b);
  }
  return bytes;
}

bool routes_hierarchically(ExchangeRoute route, const comm::Topology& topo) {
  if (route == ExchangeRoute::kFlat) return false;
  if (route == ExchangeRoute::kHierarchical) return true;
  return !topo.is_flat();
}

comm::LevelTraffic exchange_traffic_impl(const DomainDecomposition& decomp,
                                         const OctreeSource& octree_for,
                                         const comm::Topology& topo,
                                         ExchangeRoute route,
                                         comm::WireCodec codec) {
  const int workers = topo.ranks();
  std::vector<std::vector<std::size_t>> owned(
      static_cast<std::size_t>(workers));
  for (int r = 0; r < workers; ++r) {
    owned[static_cast<std::size_t>(r)] = decomp.assigned_to(r, workers);
  }
  const std::vector<int> owner_of = invert_assignment(decomp, owned);

  comm::LevelTraffic t;
  const auto count = [&](bool inter, std::size_t doubles,
                         std::size_t msgs = 1) {
    if (inter) {
      t.inter_bytes += doubles * sizeof(double);
      t.inter_messages += msgs;
    } else {
      t.intra_bytes += doubles * sizeof(double);
      t.intra_messages += msgs;
    }
  };

  if (!routes_hierarchically(route, topo)) {
    // Flat route: one message per ordered rank pair (empty ones included —
    // all_to_all ships them too), classified by node co-residency. Encoded
    // bytes accumulate per pair buffer and round up to whole wire doubles
    // once per buffer — exactly the WireEncoder framing the run executes.
    std::vector<std::vector<std::size_t>> pair(
        static_cast<std::size_t>(workers),
        std::vector<std::size_t>(static_cast<std::size_t>(workers), 0));
    for (int src = 0; src < workers; ++src) {
      for (const std::size_t d : owned[static_cast<std::size_t>(src)]) {
        const auto tree = octree_for(d);
        const CellDestMasks masks(*tree, decomp, owner_of, workers);
        const auto cells = tree->cells();
        for (std::size_t ci = 0; ci < cells.size(); ++ci) {
          for (int dst = 0; dst < workers; ++dst) {
            if (masks.needed(ci, dst)) {
              pair[static_cast<std::size_t>(src)]
                  [static_cast<std::size_t>(dst)] +=
                  comm::encoded_cell_bytes(codec, cells[ci].sample_count());
            }
          }
        }
      }
    }
    for (int src = 0; src < workers; ++src) {
      for (int dst = 0; dst < workers; ++dst) {
        if (dst == src) continue;
        count(!topo.same_node(src, dst),
              comm::wire_doubles(pair[static_cast<std::size_t>(src)]
                                     [static_cast<std::size_t>(dst)]));
      }
    }
    return t;
  }

  // Hierarchical route: replay node_multicast_exchange's schedule on the
  // oracle sizes — own-node multicast, non-leader gather, one inter message
  // per ordered node pair, leader redistribution.
  const std::vector<int> node_owners = node_owner_of(owner_of, topo);
  const auto sizes =
      node_bundle_sizes(decomp, octree_for, owned, node_owners, topo, codec);
  for (int me = 0; me < workers; ++me) {
    const int my_node = topo.node_of(me);
    const auto members = topo.members(my_node);
    const auto peers = members.size() - 1;
    count(false, peers * sizes[static_cast<std::size_t>(me)]
                             [static_cast<std::size_t>(my_node)],
          peers);
    if (!topo.is_leader(me)) {
      std::size_t remote = 0;
      for (int d = 0; d < topo.nodes(); ++d) {
        if (d != my_node) {
          remote +=
              sizes[static_cast<std::size_t>(me)][static_cast<std::size_t>(d)];
        }
      }
      count(false, remote);
      continue;
    }
    for (int d = 0; d < topo.nodes(); ++d) {
      if (d == my_node) continue;
      std::size_t combined = 0;
      for (const int q : members) {
        combined +=
            sizes[static_cast<std::size_t>(q)][static_cast<std::size_t>(d)];
      }
      // Leaders exchange one combined message per ordered node pair, then
      // forward each received bundle to every local peer.
      count(!topo.same_node(me, topo.leader_of(d)), combined);
      std::size_t inbound = 0;
      for (const int q : topo.members(d)) {
        inbound += sizes[static_cast<std::size_t>(q)]
                        [static_cast<std::size_t>(my_node)];
      }
      count(false, peers * inbound, peers);
    }
  }
  return t;
}

}  // namespace

std::size_t lowcomm_exchange_bytes(const LowCommConvolution& engine,
                                   int workers) {
  // The flat-route mirror on a trivial topology: per ordered rank pair,
  // encoded bundle bytes rounded to whole wire doubles, self-delivery
  // excluded — byte-identical to what a flat SimCluster run records.
  return exchange_traffic_impl(
             engine.decomposition(),
             [&](std::size_t d) { return engine.octree_for(d); },
             comm::Topology::flat(workers), ExchangeRoute::kFlat,
             engine.params().wire)
      .total_bytes();
}

comm::LevelTraffic lowcomm_exchange_traffic(const LowCommConvolution& engine,
                                            const comm::Topology& topo,
                                            ExchangeRoute route) {
  return exchange_traffic_impl(
      engine.decomposition(),
      [&](std::size_t d) { return engine.octree_for(d); }, topo, route,
      engine.params().wire);
}

comm::LevelTraffic lowcomm_exchange_traffic(const Grid3& grid,
                                            const LowCommParams& params,
                                            const comm::Topology& topo,
                                            ExchangeRoute route) {
  const DomainDecomposition decomp(grid, params.subdomain);
  const auto policy = params.make_policy();
  return exchange_traffic_impl(
      decomp,
      [&](std::size_t d) {
        return std::make_shared<const sampling::Octree>(
            grid, decomp.subdomain(d), policy);
      },
      topo, route, params.wire);
}

namespace {

/// Point-in-time copy of the cluster counters the telemetry record diffs
/// (CommStats aggregates plus the per-rank wait totals summed over ranks).
struct ClusterCounters {
  std::size_t bytes = 0;
  std::size_t intra_bytes = 0;
  std::size_t inter_bytes = 0;
  std::size_t intra_msgs = 0;
  std::size_t inter_msgs = 0;
  std::int64_t modeled_ns = 0;
  std::int64_t intra_modeled_ns = 0;
  std::int64_t inter_modeled_ns = 0;
  std::int64_t barrier_wait_ns = 0;
  std::int64_t recv_wait_ns = 0;
};

ClusterCounters snapshot_counters(const comm::SimCluster& cluster) {
  const comm::CommStats& s = cluster.stats();
  ClusterCounters c;
  c.bytes = s.bytes_sent.load();
  c.intra_bytes = s.intra_bytes_sent.load();
  c.inter_bytes = s.inter_bytes_sent.load();
  c.intra_msgs = s.intra_messages.load();
  c.inter_msgs = s.inter_messages.load();
  c.modeled_ns = s.modeled_nanos.load();
  c.intra_modeled_ns = s.intra_modeled_nanos.load();
  c.inter_modeled_ns = s.inter_modeled_nanos.load();
  for (int r = 0; r < cluster.size(); ++r) {
    const comm::RankCommStats rs = cluster.rank_stats(r);
    c.barrier_wait_ns += rs.barrier_wait_ns;
    c.recv_wait_ns += rs.recv_wait_ns;
  }
  return c;
}

}  // namespace

RealField distributed_lowcomm_convolve(
    comm::SimCluster& cluster, const RealField& input, const Grid3& grid,
    std::shared_ptr<const green::KernelSpectrum> kernel,
    const LowCommParams& params, ExchangeRoute route) {
  const int workers = cluster.size();
  const bool hier = routes_hierarchically(route, cluster.topology());
  RealField assembled(grid, 0.0);
  std::mutex assemble_mutex;

  // Plan-vs-actual telemetry (DESIGN.md §18): when LC_TELEMETRY is active,
  // freeze the cost-model predictions for THIS (params, topology, route)
  // before running — exact static traffic mirror, per-level α-β times at
  // the cluster's own link models, the shared compute formula at the static
  // default rate (the planner's 2e8 point-passes/s baseline; drift against
  // it is exactly what the calibration fitter learns from) — then diff the
  // executed counters into the measured side. Gated on the sink because the
  // static mirror walks every octree, which is not free on hot test paths.
  const bool telemetry = obs::telemetry_enabled();
  obs::Tracer& tracer = obs::Tracer::global();
  obs::PlanOutcome rec;
  ClusterCounters before;
  std::atomic<std::int64_t> max_local_convolve_ns{0};
  std::atomic<std::size_t> max_device_peak{0};
  if (telemetry) {
    rec.source = "pipeline";
    rec.n = grid.nx;
    rec.ranks = workers;
    rec.nodes = cluster.topology().nodes();
    rec.k = params.subdomain;
    rec.far_rate = static_cast<int>(params.far_rate);
    rec.schedule = params.uniform_rate ? "uniform" : "banded";
    rec.route = hier ? "hierarchical" : "flat";
    rec.wire = comm::codec_name(params.wire);
    rec.batch = static_cast<std::int64_t>(params.batch);

    const auto traffic = lowcomm_exchange_traffic(
        grid, params, cluster.topology(),
        hier ? ExchangeRoute::kHierarchical : ExchangeRoute::kFlat);
    rec.pred_bytes = static_cast<std::int64_t>(traffic.total_bytes());
    rec.pred_intra_bytes = static_cast<std::int64_t>(traffic.intra_bytes);
    rec.pred_inter_bytes = static_cast<std::int64_t>(traffic.inter_bytes);
    rec.pred_intra_msgs = static_cast<std::int64_t>(traffic.intra_messages);
    rec.pred_inter_msgs = static_cast<std::int64_t>(traffic.inter_messages);
    const auto times = comm::predict_exchange_times(traffic, cluster.links());
    rec.pred_intra_s = times.intra_seconds;
    rec.pred_inter_s = times.inter_seconds;
    rec.pred_wire_s = times.total_seconds();

    // Compute model: representative central sub-domain octree, the same
    // formula the planner prices with (obs::modeled_point_passes). The
    // half-spectrum scale follows what this run will actually execute.
    const DomainDecomposition decomp(grid, params.subdomain);
    const i64 blocks = grid.nx / params.subdomain;
    const i64 c0 = (blocks / 2) * params.subdomain;
    const sampling::Octree central(
        grid, Box3::cube_at({c0, c0, c0}, params.subdomain),
        params.make_policy());
    const double owned =
        std::ceil(static_cast<double>(decomp.count()) /
                  static_cast<double>(std::max(workers, 1)));
    const bool half = real_path_enabled() && kernel->hermitian();
    rec.pred_point_passes =
        owned * obs::modeled_point_passes(grid.nx, params.subdomain,
                                          central.retained_z_planes().size(),
                                          half);
    rec.pred_rate_pps = 2e8;  // PlanRequest::compute_rate_pps default
    rec.pred_compute_s = rec.pred_point_passes / rec.pred_rate_pps;
    rec.pred_memory_b = static_cast<std::int64_t>(
        device::plan_local_pipeline(grid.nx, params.subdomain,
                                    params.make_policy(), params.batch)
            .actual_total());
    before = snapshot_counters(cluster);
  }
  const std::int64_t wall_start = tracer.now_ns();

  const auto emit_outcome = [&](bool aborted) {
    rec.aborted = aborted;
    rec.meas_wall_s =
        static_cast<double>(tracer.now_ns() - wall_start) * 1e-9;
    rec.meas_compute_s =
        static_cast<double>(max_local_convolve_ns.load()) * 1e-9;
    const ClusterCounters after = snapshot_counters(cluster);
    rec.meas_bytes = static_cast<std::int64_t>(after.bytes - before.bytes);
    rec.meas_intra_bytes =
        static_cast<std::int64_t>(after.intra_bytes - before.intra_bytes);
    rec.meas_inter_bytes =
        static_cast<std::int64_t>(after.inter_bytes - before.inter_bytes);
    rec.meas_intra_msgs =
        static_cast<std::int64_t>(after.intra_msgs - before.intra_msgs);
    rec.meas_inter_msgs =
        static_cast<std::int64_t>(after.inter_msgs - before.inter_msgs);
    rec.meas_wire_s =
        static_cast<double>(after.modeled_ns - before.modeled_ns) * 1e-9;
    rec.meas_intra_wire_s =
        static_cast<double>(after.intra_modeled_ns - before.intra_modeled_ns) *
        1e-9;
    rec.meas_inter_wire_s =
        static_cast<double>(after.inter_modeled_ns - before.inter_modeled_ns) *
        1e-9;
    rec.meas_barrier_wait_s =
        static_cast<double>(after.barrier_wait_ns - before.barrier_wait_ns) *
        1e-9;
    rec.meas_recv_wait_s =
        static_cast<double>(after.recv_wait_ns - before.recv_wait_ns) * 1e-9;
    rec.meas_memory_peak_b =
        static_cast<std::int64_t>(max_device_peak.load());
    rec.meas_max_quant_error =
        obs::Registry::global().gauge("exchange.max_quant_error").value();
    obs::record_plan_outcome(rec);
  };

  const auto body = [&](comm::Rank& rank) {
    // Every rank builds the same deterministic engine; octrees are
    // reproducible from (grid, params), so only payloads need to travel
    // and both sides agree on the framing without any metadata exchange.
    LocalConvolverConfig cfg;
    cfg.batch = params.batch;
    cfg.pool = nullptr;  // ranks are already threads; keep them single-core
    // Telemetry measures the per-rank allocation peak through a private
    // DeviceContext (unlimited spec: tracking only, never admission).
    device::DeviceContext rank_device(device::DeviceSpec::unlimited());
    if (telemetry) cfg.device = &rank_device;
    LowCommConvolution engine(grid, kernel, params, cfg);
    const auto& decomp = engine.decomposition();
    std::vector<std::vector<std::size_t>> owned(
        static_cast<std::size_t>(workers));
    for (int r = 0; r < workers; ++r) {
      owned[static_cast<std::size_t>(r)] = decomp.assigned_to(r, workers);
    }
    const auto& mine = owned[static_cast<std::size_t>(rank.id())];
    const std::vector<int> owner_of = invert_assignment(decomp, owned);
    const int me = rank.id();

    // Local convolution of my sub-domains. The destination bitmasks are
    // computed once per local octree (rank-granularity for the flat route,
    // node-granularity for the hierarchical one); the pack loops below
    // query them O(1) per (cell, destination) instead of re-intersecting
    // owned boxes.
    std::vector<sampling::CompressedField> local;
    local.reserve(mine.size());
    {
      LC_TRACE("exchange.local_convolve");
      const std::int64_t t0 = tracer.now_ns();
      for (const std::size_t d : mine) {
        local.push_back(engine.convolve_one(input, d));
      }
      // Telemetry's measured compute is the slowest rank's local-convolve
      // time — the quantity the compute model predicts (lock-free max).
      const std::int64_t took = tracer.now_ns() - t0;
      std::int64_t cur = max_local_convolve_ns.load(std::memory_order_relaxed);
      while (cur < took && !max_local_convolve_ns.compare_exchange_weak(
                               cur, took, std::memory_order_relaxed)) {
      }
    }

    static obs::Counter& samples_shipped =
        obs::Registry::global().counter("exchange.samples_shipped");
    static obs::Counter& payload_bytes =
        obs::Registry::global().counter("exchange.payload_bytes");
    static obs::Counter& bytes_saved =
        obs::Registry::global().counter("exchange.bytes_saved");
    static obs::Gauge& max_quant_error =
        obs::Registry::global().gauge("exchange.max_quant_error");
    // Unique payload leaving a rank, under the active codec: raw samples
    // shipped keep counting doubles (the pre-codec figure), payload_bytes
    // counts actual wire bytes, and their difference accumulates into
    // bytes_saved (saturating: tiny q16 cells can cost more than raw).
    const auto count_outgoing = [&](const comm::WireEncoder& enc,
                                    const std::vector<double>& buf) {
      samples_shipped.add(enc.raw_bytes() / sizeof(double));
      payload_bytes.add(buf.size() * sizeof(double));
      const std::size_t wire = buf.size() * sizeof(double);
      bytes_saved.add(enc.raw_bytes() > wire ? enc.raw_bytes() - wire : 0);
      max_quant_error.record_max(enc.max_abs_error());
    };

    // The single global exchange of the method (Fig 1b): per destination,
    // only the cells whose boxes intersect that destination's regions.
    std::vector<sampling::CompressedField> contributions;
    contributions.reserve(decomp.count());
    if (hier) {
      // Hierarchical route: pack each cell ONCE per destination NODE — the
      // union of its member ranks' needs — and let the node-multicast
      // exchange ship it across the inter-node link a single time. Every
      // rank of the destination node receives the node bundle and keeps
      // what its own regions intersect.
      const comm::Topology& topo = rank.topology();
      const int nodes = topo.nodes();
      const int my_node = topo.node_of(me);
      const std::vector<int> node_owners = node_owner_of(owner_of, topo);
      std::vector<std::vector<double>> outgoing(
          static_cast<std::size_t>(nodes));
      {
        LC_TRACE("exchange.pack");
        std::vector<CellDestMasks> local_masks;
        local_masks.reserve(mine.size());
        for (const auto& c : local) {
          local_masks.emplace_back(c.octree(), decomp, node_owners, nodes);
        }
        for (int dst = 0; dst < nodes; ++dst) {
          auto& buf = outgoing[static_cast<std::size_t>(dst)];
          comm::WireEncoder enc(params.wire, buf);
          for (std::size_t i = 0; i < mine.size(); ++i) {
            const auto cells = local[i].octree().cells();
            const auto payload = local[i].samples();
            for (std::size_t ci = 0; ci < cells.size(); ++ci) {
              if (!local_masks[i].needed(ci, dst)) continue;
              enc.add_cell(payload.subspan(cells[ci].sample_offset,
                                           cells[ci].sample_count()));
            }
          }
          enc.finish();
          // Unique payload leaving this rank: each node bundle is packed
          // (and counted) once however many ranks receive it; the own-node
          // bundle only counts when node-mates exist to receive it.
          if (dst != my_node || topo.members(my_node).size() > 1) {
            count_outgoing(enc, buf);
          }
        }
      }
      const auto sizes = node_bundle_sizes(
          decomp, [&](std::size_t d) { return engine.octree_for(d); }, owned,
          node_owners, topo, params.wire);
      std::vector<std::vector<double>> bundles;
      {
        LC_TRACE("exchange.hierarchical");
        bundles = comm::node_multicast_exchange(
            rank, outgoing, [&](int src, int dst_node) {
              return sizes[static_cast<std::size_t>(src)]
                          [static_cast<std::size_t>(dst_node)];
            });
      }

      // Rebuild the partial remote contributions from the node bundles:
      // the framing is the node-granularity mask, so cells my node-mates
      // need are copied too (harmless — accumulation over my regions never
      // reads them), and cells nobody here needs stay zero.
      LC_TRACE("exchange.unpack_accumulate");
      for (int src = 0; src < workers; ++src) {
        const auto& buf = bundles[static_cast<std::size_t>(src)];
        comm::WireDecoder dec(params.wire, buf);
        for (const std::size_t d : owned[static_cast<std::size_t>(src)]) {
          sampling::CompressedField c(engine.octree_for(d));
          auto dst_payload = c.samples();
          const CellDestMasks masks(c.octree(), decomp, node_owners, nodes);
          const auto cells = c.octree().cells();
          for (std::size_t ci = 0; ci < cells.size(); ++ci) {
            if (!masks.needed(ci, my_node)) continue;
            const auto& cell = cells[ci];
            dec.read_cell(dst_payload.subspan(cell.sample_offset,
                                              cell.sample_count()));
          }
          contributions.push_back(std::move(c));
        }
        dec.finish();
      }
    } else {
      std::vector<std::vector<double>> outgoing(
          static_cast<std::size_t>(workers));
      {
        LC_TRACE("exchange.pack");
        std::vector<CellDestMasks> local_masks;
        local_masks.reserve(mine.size());
        for (const auto& c : local) {
          local_masks.emplace_back(c.octree(), decomp, owner_of, workers);
        }
        for (int dst = 0; dst < workers; ++dst) {
          auto& buf = outgoing[static_cast<std::size_t>(dst)];
          comm::WireEncoder enc(params.wire, buf);
          for (std::size_t i = 0; i < mine.size(); ++i) {
            const auto cells = local[i].octree().cells();
            const auto payload = local[i].samples();
            for (std::size_t ci = 0; ci < cells.size(); ++ci) {
              if (!local_masks[i].needed(ci, dst)) continue;
              enc.add_cell(payload.subspan(cells[ci].sample_offset,
                                           cells[ci].sample_count()));
            }
          }
          enc.finish();
          if (dst != me) {
            count_outgoing(enc, buf);
          }
        }
      }
      std::vector<std::vector<double>> incoming;
      {
        LC_TRACE("exchange.all_to_all");
        incoming = rank.all_to_all(outgoing);
      }

      // Rebuild the partial remote contributions: cells not received stay
      // zero, but accumulation over my regions never reads them.
      LC_TRACE("exchange.unpack_accumulate");
      for (int src = 0; src < workers; ++src) {
        const auto& buf = incoming[static_cast<std::size_t>(src)];
        comm::WireDecoder dec(params.wire, buf);
        for (const std::size_t d : owned[static_cast<std::size_t>(src)]) {
          sampling::CompressedField c(engine.octree_for(d));
          auto dst_payload = c.samples();
          const CellDestMasks masks(c.octree(), decomp, owner_of, workers);
          const auto cells = c.octree().cells();
          for (std::size_t ci = 0; ci < cells.size(); ++ci) {
            if (!masks.needed(ci, me)) continue;
            const auto& cell = cells[ci];
            dec.read_cell(dst_payload.subspan(cell.sample_offset,
                                              cell.sample_count()));
          }
          contributions.push_back(std::move(c));
        }
        dec.finish();
      }
    }

    // Accumulate the regions this rank owns; stitch into the shared result
    // (simulating the distributed output staying in place).
    for (const std::size_t d : mine) {
      const Box3& box = decomp.subdomain(d);
      const RealField tile =
          accumulate_region(contributions, box, params.interpolation);
      std::lock_guard lock(assemble_mutex);
      assembled.insert(tile, box.lo);
    }
    if (telemetry) {
      const std::size_t peak = rank_device.peak_bytes();
      std::size_t cur = max_device_peak.load(std::memory_order_relaxed);
      while (cur < peak && !max_device_peak.compare_exchange_weak(
                               cur, peak, std::memory_order_relaxed)) {
      }
    }
  };

  if (!telemetry) {
    cluster.run(body);
    return assembled;
  }
  try {
    cluster.run(body);
  } catch (...) {
    // A rank abort still produces a well-formed record: the predictions
    // stand, the measured side reflects whatever executed before the
    // unwind, and aborted=true marks it unusable for calibration.
    emit_outcome(true);
    throw;
  }
  emit_outcome(false);
  return assembled;
}

}  // namespace lc::core
