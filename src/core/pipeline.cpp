#include "core/pipeline.hpp"

#include "common/check.hpp"

namespace lc::core {

sampling::SamplingPolicy LowCommParams::make_policy() const {
  if (uniform_rate.has_value()) {
    return sampling::SamplingPolicy::uniform(*uniform_rate, boundary_band);
  }
  return sampling::SamplingPolicy::paper_default(subdomain, far_rate,
                                                 boundary_band, dense_halo);
}

LowCommConvolution::LowCommConvolution(
    const Grid3& grid, std::shared_ptr<const green::KernelSpectrum> kernel,
    LowCommParams params, LocalConvolverConfig config)
    : decomp_(grid, params.subdomain),
      params_(params),
      convolver_(grid, std::move(kernel), config),
      octrees_(decomp_.count()) {}

std::shared_ptr<const sampling::Octree> LowCommConvolution::octree_for(
    std::size_t subdomain_index) const {
  LC_CHECK_ARG(subdomain_index < decomp_.count(), "sub-domain index range");
  std::lock_guard lock(octree_mutex_);
  auto& slot = octrees_[subdomain_index];
  if (slot == nullptr) {
    slot = std::make_shared<sampling::Octree>(
        decomp_.grid(), decomp_.subdomain(subdomain_index),
        params_.make_policy());
  }
  return slot;
}

void LowCommConvolution::seed_octree(
    std::size_t subdomain_index,
    std::shared_ptr<const sampling::Octree> tree) const {
  LC_CHECK_ARG(subdomain_index < decomp_.count(), "sub-domain index range");
  LC_CHECK_ARG(tree != nullptr, "null octree");
  LC_CHECK_ARG(tree->grid() == decomp_.grid() &&
                   tree->subdomain() == decomp_.subdomain(subdomain_index),
               "seeded octree does not match the sub-domain");
  std::lock_guard lock(octree_mutex_);
  auto& slot = octrees_[subdomain_index];
  if (slot == nullptr) slot = std::move(tree);
}

sampling::CompressedField LowCommConvolution::convolve_one(
    const RealField& input, std::size_t subdomain_index) const {
  LC_CHECK_ARG(input.grid() == decomp_.grid(), "input grid mismatch");
  const Box3& box = decomp_.subdomain(subdomain_index);
  const RealField chunk = input.extract(box);
  return convolver_.convolve_subdomain(chunk, box.lo,
                                       octree_for(subdomain_index));
}

LowCommResult LowCommConvolution::convolve(const RealField& input) const {
  std::vector<sampling::CompressedField> contributions;
  contributions.reserve(decomp_.count());
  std::size_t samples = 0;
  std::size_t bytes = 0;
  for (std::size_t d = 0; d < decomp_.count(); ++d) {
    contributions.push_back(convolve_one(input, d));
    samples += contributions.back().samples().size();
    bytes += contributions.back().sample_bytes();
  }
  LowCommResult result{accumulate_full(contributions, decomp_.grid(), params_.interpolation), samples,
                       bytes, 0.0};
  // Ratio versus storing every sub-domain's full-resolution N³ result.
  result.compression_ratio =
      static_cast<double>(decomp_.count()) *
      static_cast<double>(decomp_.grid().size()) /
      static_cast<double>(samples);
  return result;
}

namespace {

/// Does `cell` overlap any sub-domain owned by rank `dst`?
bool cell_needed_by(const sampling::OctreeCell& cell,
                    const DomainDecomposition& decomp,
                    const std::vector<std::size_t>& owned) {
  for (const std::size_t d : owned) {
    if (!cell.box().intersect(decomp.subdomain(d)).empty()) return true;
  }
  return false;
}

}  // namespace

std::size_t lowcomm_exchange_bytes(const LowCommConvolution& engine,
                                   int workers) {
  const auto& decomp = engine.decomposition();
  std::vector<std::vector<std::size_t>> owned(
      static_cast<std::size_t>(workers));
  for (int r = 0; r < workers; ++r) {
    owned[static_cast<std::size_t>(r)] = decomp.assigned_to(r, workers);
  }
  std::size_t bytes = 0;
  for (int src = 0; src < workers; ++src) {
    for (const std::size_t d : owned[static_cast<std::size_t>(src)]) {
      const auto tree = engine.octree_for(d);
      for (const auto& cell : tree->cells()) {
        for (int dst = 0; dst < workers; ++dst) {
          if (dst == src) continue;  // self-delivery is free
          if (cell_needed_by(cell, decomp, owned[static_cast<std::size_t>(dst)])) {
            bytes += cell.sample_count() * sizeof(double);
          }
        }
      }
    }
  }
  return bytes;
}

RealField distributed_lowcomm_convolve(
    comm::SimCluster& cluster, const RealField& input, const Grid3& grid,
    std::shared_ptr<const green::KernelSpectrum> kernel,
    const LowCommParams& params) {
  const int workers = cluster.size();
  RealField assembled(grid, 0.0);
  std::mutex assemble_mutex;

  cluster.run([&](comm::Rank& rank) {
    // Every rank builds the same deterministic engine; octrees are
    // reproducible from (grid, params), so only payloads need to travel
    // and both sides agree on the framing without any metadata exchange.
    LocalConvolverConfig cfg;
    cfg.batch = params.batch;
    cfg.pool = nullptr;  // ranks are already threads; keep them single-core
    LowCommConvolution engine(grid, kernel, params, cfg);
    const auto& decomp = engine.decomposition();
    std::vector<std::vector<std::size_t>> owned(
        static_cast<std::size_t>(workers));
    for (int r = 0; r < workers; ++r) {
      owned[static_cast<std::size_t>(r)] = decomp.assigned_to(r, workers);
    }
    const auto& mine = owned[static_cast<std::size_t>(rank.id())];

    // Local convolution of my sub-domains.
    std::vector<sampling::CompressedField> local;
    local.reserve(mine.size());
    for (const std::size_t d : mine) {
      local.push_back(engine.convolve_one(input, d));
    }

    // The single global exchange of the method (Fig 1b): per destination,
    // only the cells whose boxes intersect that destination's regions.
    std::vector<std::vector<double>> outgoing(
        static_cast<std::size_t>(workers));
    for (int dst = 0; dst < workers; ++dst) {
      auto& buf = outgoing[static_cast<std::size_t>(dst)];
      for (std::size_t i = 0; i < mine.size(); ++i) {
        const auto& tree = local[i].octree();
        const auto payload = local[i].samples();
        for (const auto& cell : tree.cells()) {
          if (!cell_needed_by(cell, decomp,
                              owned[static_cast<std::size_t>(dst)])) {
            continue;
          }
          const auto s = payload.subspan(cell.sample_offset,
                                         cell.sample_count());
          buf.insert(buf.end(), s.begin(), s.end());
        }
      }
    }
    const auto incoming = rank.all_to_all(outgoing);

    // Rebuild the partial remote contributions: cells not received stay
    // zero, but accumulation over my regions never reads them.
    std::vector<sampling::CompressedField> contributions;
    contributions.reserve(decomp.count());
    for (int src = 0; src < workers; ++src) {
      const auto& buf = incoming[static_cast<std::size_t>(src)];
      std::size_t offset = 0;
      for (const std::size_t d : owned[static_cast<std::size_t>(src)]) {
        sampling::CompressedField c(engine.octree_for(d));
        auto dst_payload = c.samples();
        for (const auto& cell : c.octree().cells()) {
          if (!cell_needed_by(cell, decomp, mine)) continue;
          LC_CHECK(offset + cell.sample_count() <= buf.size(),
                   "payload framing mismatch");
          std::copy(buf.begin() + static_cast<std::ptrdiff_t>(offset),
                    buf.begin() + static_cast<std::ptrdiff_t>(
                                      offset + cell.sample_count()),
                    dst_payload.begin() +
                        static_cast<std::ptrdiff_t>(cell.sample_offset));
          offset += cell.sample_count();
        }
        contributions.push_back(std::move(c));
      }
      LC_CHECK(offset == buf.size(), "payload framing mismatch");
    }

    // Accumulate the regions this rank owns; stitch into the shared result
    // (simulating the distributed output staying in place).
    for (const std::size_t d : mine) {
      const Box3& box = decomp.subdomain(d);
      const RealField tile = accumulate_region(contributions, box, params.interpolation);
      std::lock_guard lock(assemble_mutex);
      assembled.insert(tile, box.lo);
    }
  });
  return assembled;
}

}  // namespace lc::core
