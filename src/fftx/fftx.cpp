#include "fftx/fftx.hpp"

#include "common/check.hpp"
#include "fft/fft3d.hpp"

namespace lc::fftx {

std::string SubPlan::describe() const {
  switch (kind_) {
    case Kind::kDftR2C:
      return "dft_r2c(padded cube -> slab)";
    case Kind::kPointwiseC2C:
      return "pointwise_c2c(" + (op_ ? op_->name() : std::string("?")) + ")";
    case Kind::kDftC2RSampled:
      return "dft_c2r(adaptive_sampling callback)";
    case Kind::kCopyOut:
      return "copy(copy_offset callback)";
  }
  return "?";
}

PlanFactory::PlanFactory(const Grid3& grid, unsigned mode,
                         core::LocalConvolverConfig config)
    : grid_(grid), mode_(mode), config_(config) {
  LC_CHECK_ARG((mode & (FFTX_MODE_OBSERVE | FFTX_HIGH_PERFORMANCE)) != 0,
               "mode must include OBSERVE or HIGH_PERFORMANCE");
}

fftx_plan_sub PlanFactory::plan_guru_dft_r2c(const Box3& subdomain,
                                             unsigned flags) {
  LC_CHECK_ARG(Box3::of(grid_).contains(subdomain) && !subdomain.empty(),
               "sub-domain outside grid");
  auto sub = std::shared_ptr<SubPlan>(
      new SubPlan(SubPlan::Kind::kDftR2C, flags));
  sub->subdomain_ = subdomain;
  return sub;
}

fftx_plan_sub PlanFactory::plan_guru_pointwise_c2c(
    std::shared_ptr<const core::SpectralOperator> op, unsigned flags) {
  LC_CHECK_ARG(op != nullptr, "null operator");
  LC_CHECK_ARG((flags & FFTX_PW_POINTWISE) != 0,
               "pointwise sub-plan needs FFTX_PW_POINTWISE");
  auto sub = std::shared_ptr<SubPlan>(
      new SubPlan(SubPlan::Kind::kPointwiseC2C, flags));
  sub->op_ = std::move(op);
  return sub;
}

fftx_plan_sub PlanFactory::plan_guru_pointwise_c2c(
    std::shared_ptr<const green::KernelSpectrum> kernel, unsigned flags) {
  return plan_guru_pointwise_c2c(
      std::make_shared<core::ScalarKernelOperator>(std::move(kernel)), flags);
}

fftx_plan_sub PlanFactory::plan_guru_dft_c2r(
    std::shared_ptr<const sampling::Octree> tree, unsigned flags) {
  LC_CHECK_ARG(tree != nullptr, "null octree");
  LC_CHECK_ARG(tree->grid() == grid_, "octree grid mismatch");
  auto sub = std::shared_ptr<SubPlan>(
      new SubPlan(SubPlan::Kind::kDftC2RSampled, flags));
  sub->tree_ = std::move(tree);
  return sub;
}

fftx_plan_sub PlanFactory::plan_guru_copy(unsigned flags) {
  return std::shared_ptr<SubPlan>(new SubPlan(SubPlan::Kind::kCopyOut, flags));
}

fftx_plan PlanFactory::plan_compose(std::vector<fftx_plan_sub> subs,
                                    unsigned top_flags) {
  LC_CHECK_ARG(subs.size() == 4, "MASSIF pipeline composes four sub-plans");
  const std::array<SubPlan::Kind, 4> want{
      SubPlan::Kind::kDftR2C, SubPlan::Kind::kPointwiseC2C,
      SubPlan::Kind::kDftC2RSampled, SubPlan::Kind::kCopyOut};
  for (std::size_t i = 0; i < 4; ++i) {
    LC_CHECK_ARG(subs[i] != nullptr, "null sub-plan");
    LC_CHECK_ARG(subs[i]->kind() == want[i],
                 "sub-plan " + std::to_string(i) + " out of order: " +
                     subs[i]->describe());
    LC_CHECK_ARG((subs[i]->flags() & FFTX_FLAG_SUBPLAN) != 0,
                 "sub-plans must carry FFTX_FLAG_SUBPLAN");
  }
  LC_CHECK_ARG(subs[2]->tree_->subdomain() == subs[0]->subdomain_,
               "sampling octree must target the r2c sub-domain");
  const unsigned mode = (top_flags & FFTX_HIGH_PERFORMANCE) != 0
                            ? FFTX_HIGH_PERFORMANCE
                            : mode_;
  return std::shared_ptr<ComposedPlan>(
      new ComposedPlan(grid_, std::move(subs), mode, config_));
}

ComposedPlan::ComposedPlan(Grid3 grid, std::vector<fftx_plan_sub> subs,
                           unsigned flags, core::LocalConvolverConfig config)
    : grid_(grid), subs_(std::move(subs)), flags_(flags) {
  subdomain_ = subs_[0]->subdomain_;
  op_ = subs_[1]->op_;
  tree_ = subs_[2]->tree_;
  if ((flags_ & FFTX_HIGH_PERFORMANCE) != 0) {
    fused_ = std::make_unique<core::LocalConvolver>(grid_, op_, config);
  }
}

std::string ComposedPlan::describe() const {
  std::string out = "fftx_plan{";
  for (const auto& s : subs_) out += s->describe() + "; ";
  out += (flags_ & FFTX_HIGH_PERFORMANCE) != 0 ? "HIGH_PERFORMANCE"
                                               : "OBSERVE";
  return out + "}";
}

sampling::CompressedField ComposedPlan::execute(const RealField& chunk) const {
  LC_CHECK_ARG(chunk.grid() == subdomain_.extents(),
               "chunk shape must match the r2c sub-domain");
  LC_CHECK_ARG(op_->channels() == 1,
               "fftx facade executes scalar pipelines (one channel)");
  trace_.clear();
  if ((flags_ & FFTX_HIGH_PERFORMANCE) != 0) {
    return execute_fused(chunk);
  }
  return execute_observe(chunk);
}

sampling::CompressedField ComposedPlan::execute_fused(
    const RealField& chunk) const {
  // The "generated code" path: one fused, pruned, batched kernel.
  return fused_->convolve_subdomain(chunk, subdomain_.lo, tree_);
}

sampling::CompressedField ComposedPlan::execute_observe(
    const RealField& chunk) const {
  // Reference interpretation, one sub-plan at a time, with a trace.
  fft::Fft3D plan(grid_);

  trace_.push_back(subs_[0]->describe());
  RealField padded(grid_, 0.0);
  padded.insert(chunk, subdomain_.lo);
  ComplexField spec = fft::forward_spectrum(padded, plan);

  trace_.push_back(subs_[1]->describe());
  for_each_point(Box3::of(grid_), [&](const Index3& p) {
    core::cplx v[1] = {spec(p)};
    op_->apply(p, grid_, v);
    spec(p) = v[0];
  });

  trace_.push_back(subs_[2]->describe());
  const RealField dense = fft::inverse_real(std::move(spec), plan);

  trace_.push_back(subs_[3]->describe());
  return sampling::CompressedField::compress(dense, tree_);
}

}  // namespace lc::fftx
