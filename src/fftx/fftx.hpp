// Mini-FFTX (paper §6, Fig 5): a plan/sub-plan specification API for
// FFT-based pipelines with complex data mappings — padding, pointwise
// kernels, adaptive-sampling "callbacks" and copy-out — that decouples the
// algorithm specification from its execution strategy.
//
// The paper's Fig 5 composes four sub-plans for the MASSIF convolution:
//   plans[0] = fftx_plan_guru_dft_r2c(...)        // small cube → slab
//   plans[1] = fftx_plan_guru_pointwise_c2c(...)  // Γ̂ / kernel multiply
//   plans[2] = fftx_plan_guru_dft_c2r(...)        // inverse + sampling cb
//   plans[3] = fftx_plan_guru_copy(...)           // copy_offset cb
//   p = fftx_plan_compose(numsubplans, plans, MY_FFTX_MODE_TOP)
//
// We reproduce that structure. Two execution backends interpret one and
// the same composed plan:
//   - FFTX_MODE_OBSERVE: a straightforward dense reference execution that
//     records an operation trace (what the paper's observe mode is for);
//   - FFTX_HIGH_PERFORMANCE: the fused, input/output-pruned, batched
//     LocalConvolver pipeline (standing in for the SPIRAL-generated code).
// Both produce identical compressed results — the "specification vs
// optimization" decoupling, made testable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/local_convolver.hpp"
#include "core/spectral_operator.hpp"
#include "sampling/compressed_field.hpp"

namespace lc::fftx {

/// Plan flags (named after the paper's Fig 5 macros).
enum Flags : unsigned {
  FFTX_MODE_OBSERVE = 1u << 0,
  FFTX_ESTIMATE = 1u << 1,
  FFTX_HIGH_PERFORMANCE = 1u << 2,
  FFTX_FLAG_SUBPLAN = 1u << 3,
  FFTX_PW_POINTWISE = 1u << 4,
};

/// One step of a composed pipeline.
class SubPlan {
 public:
  enum class Kind { kDftR2C, kPointwiseC2C, kDftC2RSampled, kCopyOut };

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] unsigned flags() const noexcept { return flags_; }
  [[nodiscard]] std::string describe() const;

 private:
  friend class PlanFactory;
  SubPlan(Kind kind, unsigned flags) : kind_(kind), flags_(flags) {}

  Kind kind_;
  unsigned flags_;
  // Step payloads (only the relevant ones are set per kind).
  Box3 subdomain_{};
  std::shared_ptr<const core::SpectralOperator> op_;
  std::shared_ptr<const sampling::Octree> tree_;

  friend class ComposedPlan;
};

using fftx_plan_sub = std::shared_ptr<SubPlan>;

/// A fully composed pipeline: validated sub-plan sequence + backend choice.
class ComposedPlan {
 public:
  /// Execute on a tight k³ input chunk; the result is the adaptively
  /// sampled N³ convolution (the "output array" of Fig 5).
  [[nodiscard]] sampling::CompressedField execute(const RealField& chunk) const;

  /// Operation trace of the most recent observe-mode execution (empty in
  /// high-performance mode — the fused pipeline has no step boundaries).
  [[nodiscard]] const std::vector<std::string>& trace() const noexcept {
    return trace_;
  }

  [[nodiscard]] unsigned flags() const noexcept { return flags_; }
  [[nodiscard]] const Grid3& grid() const noexcept { return grid_; }
  [[nodiscard]] std::string describe() const;

 private:
  friend class PlanFactory;
  ComposedPlan(Grid3 grid, std::vector<fftx_plan_sub> subs, unsigned flags,
               core::LocalConvolverConfig config);

  sampling::CompressedField execute_observe(const RealField& chunk) const;
  sampling::CompressedField execute_fused(const RealField& chunk) const;

  Grid3 grid_;
  std::vector<fftx_plan_sub> subs_;
  unsigned flags_;
  Box3 subdomain_;
  std::shared_ptr<const core::SpectralOperator> op_;
  std::shared_ptr<const sampling::Octree> tree_;
  std::unique_ptr<core::LocalConvolver> fused_;
  mutable std::vector<std::string> trace_;
};

using fftx_plan = std::shared_ptr<ComposedPlan>;

/// Factory bound to an environment (fftx_init / fftx_shutdown in Fig 5).
class PlanFactory {
 public:
  /// `mode` selects the execution strategy for composed plans.
  explicit PlanFactory(const Grid3& grid, unsigned mode = FFTX_MODE_OBSERVE,
                       core::LocalConvolverConfig config = {});

  /// RDFT of the small cube into the (implicitly padded) slab.
  [[nodiscard]] fftx_plan_sub plan_guru_dft_r2c(const Box3& subdomain,
                                                unsigned flags);

  /// Pointwise multiply / contraction with an on-the-fly operator
  /// (the `complex_scaling` callback of Fig 5).
  [[nodiscard]] fftx_plan_sub plan_guru_pointwise_c2c(
      std::shared_ptr<const core::SpectralOperator> op, unsigned flags);
  [[nodiscard]] fftx_plan_sub plan_guru_pointwise_c2c(
      std::shared_ptr<const green::KernelSpectrum> kernel, unsigned flags);

  /// Inverse RDFT with the `adaptive_sampling` callback: results are kept
  /// only on the octree lattice.
  [[nodiscard]] fftx_plan_sub plan_guru_dft_c2r(
      std::shared_ptr<const sampling::Octree> tree, unsigned flags);

  /// The `copy_offset` callback step: places samples at their location in
  /// the output layout.
  [[nodiscard]] fftx_plan_sub plan_guru_copy(unsigned flags);

  /// Validate and fuse the sub-plans into an executable pipeline.
  [[nodiscard]] fftx_plan plan_compose(std::vector<fftx_plan_sub> subs,
                                       unsigned top_flags);

 private:
  Grid3 grid_;
  unsigned mode_;
  core::LocalConvolverConfig config_;
};

}  // namespace lc::fftx
