#include "green/kernel.hpp"

#include "common/check.hpp"

namespace lc::green {

ComplexField KernelSpectrum::materialize(const Grid3& g) const {
  ComplexField out(g);
  for_each_point(Box3::of(g), [&](const Index3& p) { out(p) = eval(p, g); });
  return out;
}

DenseSpectrum::DenseSpectrum(ComplexField spectrum, std::string name)
    : hat_(std::move(spectrum)), name_(std::move(name)) {}

cplx DenseSpectrum::eval(const Index3& bin, const Grid3& g) const {
  LC_CHECK_ARG(hat_.grid() == g, "dense spectrum grid mismatch");
  return hat_(bin);
}

void DenseSpectrum::eval_z_run(const Index3& start, const Grid3& g,
                               std::span<cplx> out) const {
  LC_CHECK_ARG(hat_.grid() == g, "dense spectrum grid mismatch");
  for (std::size_t t = 0; t < out.size(); ++t) {
    out[t] = hat_({start.x, start.y, start.z + static_cast<i64>(t)});
  }
}

}  // namespace lc::green
