#include "green/kernel.hpp"

#include "common/check.hpp"

namespace lc::green {

ComplexField KernelSpectrum::materialize(const Grid3& g) const {
  ComplexField out(g);
  for_each_point(Box3::of(g), [&](const Index3& p) { out(p) = eval(p, g); });
  return out;
}

ComplexField KernelSpectrum::materialize_half(const Grid3& g) const {
  const Grid3 half{g.nx / 2 + 1, g.ny, g.nz};
  ComplexField out(half);
  // Bin indices on the half grid are valid full-grid indices, so eval()
  // needs no half-aware variant.
  for_each_point(Box3::of(half), [&](const Index3& p) { out(p) = eval(p, g); });
  return out;
}

namespace {

/// Hermitian-symmetry scan: |Ĝ((N−ξ) mod N) − conj(Ĝ(ξ))| ≤ 1e-12·max|Ĝ|
/// at every bin. Only bins with x ≤ nx/2 are visited (the mirror pair
/// covers the rest).
bool spectrum_is_hermitian(const ComplexField& hat) {
  const Grid3& g = hat.grid();
  double scale = 1.0;
  for (const cplx& v : hat.span()) scale = std::max(scale, std::abs(v));
  const double tol = 1e-12 * scale;
  for (i64 z = 0; z < g.nz; ++z) {
    for (i64 y = 0; y < g.ny; ++y) {
      for (i64 x = 0; x <= g.nx / 2; ++x) {
        const cplx mirror =
            hat((g.nx - x) % g.nx, (g.ny - y) % g.ny, (g.nz - z) % g.nz);
        if (std::abs(mirror - std::conj(hat(x, y, z))) > tol) return false;
      }
    }
  }
  return true;
}

}  // namespace

DenseSpectrum::DenseSpectrum(ComplexField spectrum, std::string name)
    : hat_(std::move(spectrum)),
      name_(std::move(name)),
      hermitian_(spectrum_is_hermitian(hat_)) {}

cplx DenseSpectrum::eval(const Index3& bin, const Grid3& g) const {
  LC_CHECK_ARG(hat_.grid() == g, "dense spectrum grid mismatch");
  return hat_(bin);
}

void DenseSpectrum::eval_z_run(const Index3& start, const Grid3& g,
                               std::span<cplx> out) const {
  LC_CHECK_ARG(hat_.grid() == g, "dense spectrum grid mismatch");
  for (std::size_t t = 0; t < out.size(); ++t) {
    out[t] = hat_({start.x, start.y, start.z + static_cast<i64>(t)});
  }
}

HalfDenseSpectrum::HalfDenseSpectrum(ComplexField half, const Grid3& full,
                                     std::string name)
    : hat_(std::move(half)), full_(full), name_(std::move(name)) {
  const Grid3 want{full.nx / 2 + 1, full.ny, full.nz};
  LC_CHECK_ARG(hat_.grid() == want, "half spectrum shape mismatch");
}

cplx HalfDenseSpectrum::eval(const Index3& bin, const Grid3& g) const {
  LC_CHECK_ARG(g == full_, "half spectrum grid mismatch");
  if (bin.x <= full_.nx / 2) return hat_(bin);
  // Mirror half by conjugate symmetry.
  return std::conj(hat_(full_.nx - bin.x, (full_.ny - bin.y) % full_.ny,
                        (full_.nz - bin.z) % full_.nz));
}

void HalfDenseSpectrum::eval_z_run(const Index3& start, const Grid3& g,
                                   std::span<cplx> out) const {
  LC_CHECK_ARG(g == full_, "half spectrum grid mismatch");
  if (start.x <= full_.nx / 2) {
    // Stored half: contiguous z run straight off the table.
    for (std::size_t t = 0; t < out.size(); ++t) {
      out[t] = hat_({start.x, start.y, start.z + static_cast<i64>(t)});
    }
    return;
  }
  for (std::size_t t = 0; t < out.size(); ++t) {
    out[t] = eval({start.x, start.y, start.z + static_cast<i64>(t)}, g);
  }
}

}  // namespace lc::green
