// Green's function of Poisson's equation (paper Eqn 5): G = 1/(4π|x|),
// i.e. the inverse-Laplacian spectral kernel 1/|ω|^2, used by the Poisson
// solver example and by tests of the "similar PDE solvers benefit" claim.
#pragma once

#include "green/kernel.hpp"

namespace lc::green {

/// Spectral inverse negative Laplacian: Ĝ(ξ) = 1/|ω(ξ)|², Ĝ(0) = 0, where
/// ω are angular frequencies on the periodic grid. Convolving a source f
/// with this kernel solves -∇²u = f (spectral Laplacian) with zero-mean u.
class PoissonGreenSpectrum final : public KernelSpectrum {
 public:
  /// `discrete` selects the 7-point finite-difference eigenvalues
  /// (4 sin²(ω/2) per axis) instead of the spectral ω²; the paper's PDE
  /// family includes both discretisations.
  explicit PoissonGreenSpectrum(bool discrete = false) : discrete_(discrete) {}

  [[nodiscard]] cplx eval(const Index3& bin, const Grid3& g) const override;
  [[nodiscard]] std::string name() const override {
    return discrete_ ? "poisson-fd" : "poisson-spectral";
  }
  /// 1/|ω|² is real and even in ξ → Hermitian (both discretisations).
  [[nodiscard]] bool hermitian() const override { return true; }

 private:
  bool discrete_;
};

}  // namespace lc::green
