// Convolution-kernel abstraction (paper §3.2 "Choice of convolution kernel").
//
// Kernels are evaluated in the frequency domain, bin by bin, so the slab
// pipeline can multiply spectra on the fly without ever materialising an
// N^3 kernel array — the paper's "the closed form of the Green's function
// ... can be computed on-the-fly during convolution, further reducing
// memory requirement".
#pragma once

#include <complex>
#include <memory>
#include <span>
#include <string>

#include "fft/fft3d.hpp"
#include "tensor/field.hpp"

namespace lc::green {

using cplx = std::complex<double>;

/// A scalar convolution kernel given by its DFT on an N^3 grid.
class KernelSpectrum {
 public:
  virtual ~KernelSpectrum() = default;

  /// Spectrum value at DFT bin (jx, jy, jz) of grid `g`.
  [[nodiscard]] virtual cplx eval(const Index3& bin, const Grid3& g) const = 0;

  /// Fill out[t] = eval({start.x, start.y, start.z + t}, g) for a run of
  /// bins along z. The default loops eval(); kernels whose spectrum is a
  /// table lookup or factorises per axis (Gaussian, dense) override it so
  /// the slab pipeline's per-bin multiply becomes one vectorized pass per
  /// pencil instead of nz virtual calls.
  virtual void eval_z_run(const Index3& start, const Grid3& g,
                          std::span<cplx> out) const {
    for (std::size_t t = 0; t < out.size(); ++t) {
      out[t] = eval({start.x, start.y, start.z + static_cast<i64>(t)}, g);
    }
  }

  /// Human-readable kernel name (for bench output).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Identity string for resource caching (runtime::ConvolutionService):
  /// two kernels with the same cache_key are assumed interchangeable, so
  /// parameterised kernels MUST fold every parameter into the key (the
  /// default is name(), which suffices only for parameter-free kernels).
  [[nodiscard]] virtual std::string cache_key() const { return name(); }

  /// True iff the spectrum is Hermitian-symmetric on every grid it accepts:
  /// Ĝ((N − ξ) mod N) == conj(Ĝ(ξ)), i.e. the spatial kernel is real. This
  /// is the precondition for the half-spectrum (r2c/c2r) execution path,
  /// which stores only the x ∈ [0, nx/2] bins and lets c2r supply the
  /// mirror half (DESIGN.md §16). Defaults to false — the full complex
  /// path is always valid.
  [[nodiscard]] virtual bool hermitian() const { return false; }

  /// Materialise the full dense spectrum (test/baseline use).
  [[nodiscard]] ComplexField materialize(const Grid3& g) const;

  /// Materialise only the Hermitian half grid: a (nx/2 + 1) × ny × nz field
  /// holding Ĝ at bins x ∈ [0, nx/2]. Only meaningful for hermitian()
  /// kernels (the dropped mirror bins are then redundant); halves the
  /// cached-spectrum bytes relative to materialize().
  [[nodiscard]] ComplexField materialize_half(const Grid3& g) const;
};

/// Dense spectrum wrapper: adapts a precomputed ComplexField to the
/// KernelSpectrum interface (e.g. a numerically transformed kernel).
class DenseSpectrum final : public KernelSpectrum {
 public:
  explicit DenseSpectrum(ComplexField spectrum, std::string name = "dense");

  [[nodiscard]] cplx eval(const Index3& bin, const Grid3& g) const override;
  void eval_z_run(const Index3& start, const Grid3& g,
                  std::span<cplx> out) const override;
  [[nodiscard]] std::string name() const override { return name_; }
  /// Detected at construction: a numerically transformed real kernel is
  /// Hermitian to rounding, which the scan accepts (1e-12 relative).
  [[nodiscard]] bool hermitian() const override { return hermitian_; }

  [[nodiscard]] const ComplexField& spectrum() const noexcept { return hat_; }

 private:
  ComplexField hat_;
  std::string name_;
  bool hermitian_;
};

/// Half-grid dense spectrum: a materialised Hermitian spectrum storing only
/// the x ∈ [0, nx/2] bins of logical grid `full` ((nx/2+1) · ny · nz values
/// — half the ResourceCache footprint of DenseSpectrum). eval() serves the
/// mirror half via conjugate symmetry, so it remains a drop-in
/// KernelSpectrum for the complex path too.
class HalfDenseSpectrum final : public KernelSpectrum {
 public:
  /// `half` must have shape (full.nx/2 + 1, full.ny, full.nz) — typically
  /// the result of materialize_half(full).
  HalfDenseSpectrum(ComplexField half, const Grid3& full,
                    std::string name = "dense-half");

  [[nodiscard]] cplx eval(const Index3& bin, const Grid3& g) const override;
  void eval_z_run(const Index3& start, const Grid3& g,
                  std::span<cplx> out) const override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] bool hermitian() const override { return true; }

  [[nodiscard]] const ComplexField& half_spectrum() const noexcept {
    return hat_;
  }

 private:
  ComplexField hat_;  // (nx/2+1) × ny × nz, x-fastest
  Grid3 full_;        // logical full grid
  std::string name_;
};

}  // namespace lc::green
