// Convolution-kernel abstraction (paper §3.2 "Choice of convolution kernel").
//
// Kernels are evaluated in the frequency domain, bin by bin, so the slab
// pipeline can multiply spectra on the fly without ever materialising an
// N^3 kernel array — the paper's "the closed form of the Green's function
// ... can be computed on-the-fly during convolution, further reducing
// memory requirement".
#pragma once

#include <complex>
#include <memory>
#include <span>
#include <string>

#include "fft/fft3d.hpp"
#include "tensor/field.hpp"

namespace lc::green {

using cplx = std::complex<double>;

/// A scalar convolution kernel given by its DFT on an N^3 grid.
class KernelSpectrum {
 public:
  virtual ~KernelSpectrum() = default;

  /// Spectrum value at DFT bin (jx, jy, jz) of grid `g`.
  [[nodiscard]] virtual cplx eval(const Index3& bin, const Grid3& g) const = 0;

  /// Fill out[t] = eval({start.x, start.y, start.z + t}, g) for a run of
  /// bins along z. The default loops eval(); kernels whose spectrum is a
  /// table lookup or factorises per axis (Gaussian, dense) override it so
  /// the slab pipeline's per-bin multiply becomes one vectorized pass per
  /// pencil instead of nz virtual calls.
  virtual void eval_z_run(const Index3& start, const Grid3& g,
                          std::span<cplx> out) const {
    for (std::size_t t = 0; t < out.size(); ++t) {
      out[t] = eval({start.x, start.y, start.z + static_cast<i64>(t)}, g);
    }
  }

  /// Human-readable kernel name (for bench output).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Identity string for resource caching (runtime::ConvolutionService):
  /// two kernels with the same cache_key are assumed interchangeable, so
  /// parameterised kernels MUST fold every parameter into the key (the
  /// default is name(), which suffices only for parameter-free kernels).
  [[nodiscard]] virtual std::string cache_key() const { return name(); }

  /// Materialise the full dense spectrum (test/baseline use).
  [[nodiscard]] ComplexField materialize(const Grid3& g) const;
};

/// Dense spectrum wrapper: adapts a precomputed ComplexField to the
/// KernelSpectrum interface (e.g. a numerically transformed kernel).
class DenseSpectrum final : public KernelSpectrum {
 public:
  explicit DenseSpectrum(ComplexField spectrum, std::string name = "dense");

  [[nodiscard]] cplx eval(const Index3& bin, const Grid3& g) const override;
  void eval_z_run(const Index3& start, const Grid3& g,
                  std::span<cplx> out) const override;
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] const ComplexField& spectrum() const noexcept { return hat_; }

 private:
  ComplexField hat_;
  std::string name_;
};

}  // namespace lc::green
