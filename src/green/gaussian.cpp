#include "green/gaussian.hpp"

#include <cmath>
#include <cstdio>
#include <map>

#include "common/check.hpp"
#include "fft/dft_direct.hpp"
#include "fft/fft1d.hpp"

namespace lc::green {

namespace {

/// 1D periodic Gaussian centred at the origin:
/// g_j = exp(-d(j)² / (2σ²)) with d(j) = min(j, n - j), normalised to unit
/// sum. Centring at the origin keeps the convolution response localised on
/// the sub-domain — the property the octree sampling pattern relies on.
/// (The paper centres its POC Gaussian at N/2+1, which also yields a real
/// DFT but shifts the circular-convolution output by N/2; the two are
/// related by that known shift, which a real deployment compensates when
/// placing samples. We bake the compensation into the kernel itself.)
std::vector<double> axis_gaussian(i64 n, double sigma) {
  std::vector<double> g(static_cast<std::size_t>(n));
  double sum = 0.0;
  for (i64 j = 0; j < n; ++j) {
    const double d = static_cast<double>(std::min(j, n - j));
    g[static_cast<std::size_t>(j)] = std::exp(-d * d / (2.0 * sigma * sigma));
    sum += g[static_cast<std::size_t>(j)];
  }
  for (auto& v : g) v /= sum;
  return g;
}

/// Real 1D DFT of the origin-centred axis Gaussian. The signal is even
/// (g_j = g_{n-j}), so the spectrum is real; we compute it numerically and
/// keep the real part (the imaginary part is zero to rounding). Plan and
/// workspace are supplied by the caller so the three axis spectra of one
/// kernel share them instead of allocating per call.
std::vector<double> axis_spectrum(i64 n, double sigma, const fft::Fft1D& plan,
                                  fft::FftWorkspace& ws) {
  const auto g = axis_gaussian(n, sigma);
  std::vector<cplx> buf(g.size());
  for (std::size_t j = 0; j < g.size(); ++j) buf[j] = cplx{g[j], 0.0};
  plan.forward(buf, ws);
  std::vector<double> spec(g.size());
  for (std::size_t k = 0; k < g.size(); ++k) spec[k] = buf[k].real();
  return spec;
}

}  // namespace

RealField gaussian_kernel_field(const Grid3& g, double sigma) {
  LC_CHECK_ARG(sigma > 0.0, "sigma must be positive");
  const auto gx = axis_gaussian(g.nx, sigma);
  const auto gy = axis_gaussian(g.ny, sigma);
  const auto gz = axis_gaussian(g.nz, sigma);
  RealField out(g);
  for (i64 z = 0; z < g.nz; ++z) {
    for (i64 y = 0; y < g.ny; ++y) {
      const double gyz = gy[static_cast<std::size_t>(y)] *
                         gz[static_cast<std::size_t>(z)];
      for (i64 x = 0; x < g.nx; ++x) {
        out(x, y, z) = gx[static_cast<std::size_t>(x)] * gyz;
      }
    }
  }
  return out;
}

GaussianSpectrum::GaussianSpectrum(const Grid3& g, double sigma)
    : grid_(g), sigma_(sigma) {
  LC_CHECK_ARG(sigma > 0.0, "sigma must be positive");
  // One workspace serves all three axis transforms, and equal-sized axes
  // reuse the same plan (cubic grids pay for one plan, not three).
  fft::FftWorkspace ws;
  std::map<i64, fft::Fft1D> plans;
  const auto plan_for = [&](i64 n) -> const fft::Fft1D& {
    return plans.try_emplace(n, static_cast<std::size_t>(n)).first->second;
  };
  axis_x_ = axis_spectrum(g.nx, sigma, plan_for(g.nx), ws);
  axis_y_ = axis_spectrum(g.ny, sigma, plan_for(g.ny), ws);
  axis_z_ = axis_spectrum(g.nz, sigma, plan_for(g.nz), ws);
}

void GaussianSpectrum::eval_z_run(const Index3& start, const Grid3& g,
                                  std::span<cplx> out) const {
  LC_CHECK_ARG(g == grid_, "Gaussian spectrum grid mismatch");
  const double xy = axis_x_[static_cast<std::size_t>(start.x)] *
                    axis_y_[static_cast<std::size_t>(start.y)];
  const auto* az = axis_z_.data() + static_cast<std::size_t>(start.z);
  for (std::size_t t = 0; t < out.size(); ++t) {
    out[t] = cplx{xy * az[t], 0.0};
  }
}

std::string GaussianSpectrum::cache_key() const {
  // sigma is part of the identity: two tenants with different widths must
  // never share cached spectra or engines.
  char buf[96];
  std::snprintf(buf, sizeof(buf), "gaussian/sigma=%.17g", sigma_);
  return buf;
}

cplx GaussianSpectrum::eval(const Index3& bin, const Grid3& g) const {
  LC_CHECK_ARG(g == grid_, "Gaussian spectrum grid mismatch");
  return cplx{axis_x_[static_cast<std::size_t>(bin.x)] *
                  axis_y_[static_cast<std::size_t>(bin.y)] *
                  axis_z_[static_cast<std::size_t>(bin.z)],
              0.0};
}

}  // namespace lc::green
