#include "green/elastic.hpp"

#include <array>

#include "common/check.hpp"

namespace lc::green {

using cplx = std::complex<double>;

Green4 elastic_green_operator(const fft::Freq3& omega, const Lame& ref) {
  LC_CHECK_ARG(ref.mu > 0.0, "reference shear modulus must be positive");
  Green4 gamma;  // zero-initialised
  const std::array<double, 3> xi{omega.x, omega.y, omega.z};
  const double norm_sq = omega.norm_sq();
  if (norm_sq == 0.0) return gamma;

  const double mu0 = ref.mu;
  const double lambda0 = ref.lambda;
  const double a = 1.0 / (4.0 * mu0 * norm_sq);
  const double b =
      (lambda0 + mu0) / (mu0 * (lambda0 + 2.0 * mu0) * norm_sq * norm_sq);
  auto delta = [](std::size_t i, std::size_t j) { return i == j ? 1.0 : 0.0; };

  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i; j < 3; ++j) {
      for (std::size_t k = 0; k < 3; ++k) {
        for (std::size_t l = k; l < 3; ++l) {
          const double term1 = delta(k, i) * xi[l] * xi[j] +
                               delta(l, i) * xi[k] * xi[j] +
                               delta(k, j) * xi[l] * xi[i] +
                               delta(l, j) * xi[k] * xi[i];
          gamma.at(i, j, k, l) =
              a * term1 - b * xi[i] * xi[j] * xi[k] * xi[l];
        }
      }
    }
  }
  return gamma;
}

Green4 elastic_green_at_bin(const Index3& bin, const Grid3& g,
                            const Lame& ref) {
  const fft::Freq3 omega{fft::angular_frequency(bin.x, g.nx),
                         fft::angular_frequency(bin.y, g.ny),
                         fft::angular_frequency(bin.z, g.nz)};
  return elastic_green_operator(omega, ref);
}

Sym2c apply_green(const Green4& gamma, const Sym2c& sigma_hat) {
  Sym2c out;
  for (std::size_t a = 0; a < 6; ++a) {
    cplx acc{0.0, 0.0};
    for (std::size_t b = 0; b < 6; ++b) {
      const cplx term = gamma.m[a][b] * sigma_hat.v[b];
      acc += (b < 3) ? term : 2.0 * term;
    }
    out.v[a] = acc;
  }
  return out;
}

}  // namespace lc::green
