// The elastic Green's operator Γ̂ of the MASSIF / Moulinec–Suquet solver
// (paper Eqn 3):
//
//   Γ̂_ijkl(ξ) = (δ_ki ξ_l ξ_j + δ_li ξ_k ξ_j + δ_kj ξ_l ξ_i + δ_lj ξ_k ξ_i)
//                 / (4 μ0 |ξ|²)
//             - ((λ0 + μ0) / (μ0 (λ0 + 2 μ0))) · ξ_i ξ_j ξ_k ξ_l / |ξ|⁴
//
// with reference Lamé coefficients (λ0, μ0). Γ̂ is real, has both minor
// symmetries and major symmetry, and Γ̂(0) = 0 (the mean strain is
// prescribed separately in the fixed-point scheme). The closed form is
// evaluated on the fly per frequency bin; nothing is precomputed or stored.
#pragma once

#include "fft/freq.hpp"
#include "tensor/sym_tensor.hpp"

namespace lc::green {

/// Evaluate Γ̂ at angular frequency vector ω (all-zero ω gives the zero
/// tensor). `ref` holds the reference-medium Lamé coefficients.
[[nodiscard]] Green4 elastic_green_operator(const fft::Freq3& omega,
                                            const Lame& ref);

/// Γ̂ at DFT bin `bin` of grid `g` (uses the grid's angular frequencies).
[[nodiscard]] Green4 elastic_green_at_bin(const Index3& bin, const Grid3& g,
                                          const Lame& ref);

/// Apply Γ̂(ω) to a complex symmetric rank-2 tensor (the Fourier transform
/// of the stress field): (Γ̂ : σ̂)_ij. This is the per-bin inner operation
/// of MASSIF's convolution step.
[[nodiscard]] Sym2c apply_green(const Green4& gamma, const Sym2c& sigma_hat);

}  // namespace lc::green
