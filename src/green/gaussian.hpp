// The paper's proof-of-concept kernel (§4 "Choice of convolution kernel"):
// a sharp Gaussian sharing the Green's function's two key properties —
// rapid decay and a real-valued DFT. We centre it at the origin
// (periodically), which keeps the circular-convolution response localised
// on the sub-domain; the paper's N/2+1 centring is the same kernel shifted
// by N/2, and a real deployment compensates that shift when placing
// samples (see gaussian.cpp).
//
// The Gaussian is separable, so its 3D DFT is a product of three 1D DFTs.
// GaussianSpectrum precomputes the three axis spectra (O(N) storage) and
// evaluates any 3D bin on the fly — the memory-frugal evaluation mode the
// low-communication pipeline relies on.
#pragma once

#include <vector>

#include "green/kernel.hpp"

namespace lc::green {

/// Dense spatial Gaussian exp(-d^2 / (2 sigma^2)) with d the periodic
/// distance from the origin, normalised to unit sum so convolution
/// preserves the mean.
[[nodiscard]] RealField gaussian_kernel_field(const Grid3& g, double sigma);

/// On-the-fly Gaussian kernel spectrum. The spectrum is real (the kernel
/// is even about the origin, so its DFT is real-valued — the property the
/// paper requires of its POC kernel).
class GaussianSpectrum final : public KernelSpectrum {
 public:
  GaussianSpectrum(const Grid3& g, double sigma);

  [[nodiscard]] cplx eval(const Index3& bin, const Grid3& g) const override;
  void eval_z_run(const Index3& start, const Grid3& g,
                  std::span<cplx> out) const override;
  [[nodiscard]] std::string name() const override { return "gaussian"; }
  [[nodiscard]] std::string cache_key() const override;
  /// Real even kernel → real even spectrum → Hermitian.
  [[nodiscard]] bool hermitian() const override { return true; }

  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  Grid3 grid_;
  double sigma_;
  std::vector<double> axis_x_;  // 1D DFT of the centred axis Gaussian
  std::vector<double> axis_y_;
  std::vector<double> axis_z_;
};

}  // namespace lc::green
