#include "green/poisson.hpp"

#include <cmath>

#include "fft/freq.hpp"

namespace lc::green {

cplx PoissonGreenSpectrum::eval(const Index3& bin, const Grid3& g) const {
  if (bin == Index3{0, 0, 0}) return cplx{0.0, 0.0};
  const double wx = fft::angular_frequency(bin.x, g.nx);
  const double wy = fft::angular_frequency(bin.y, g.ny);
  const double wz = fft::angular_frequency(bin.z, g.nz);
  double denom;
  if (discrete_) {
    auto ev = [](double w) {
      const double s = std::sin(w / 2.0);
      return 4.0 * s * s;
    };
    denom = ev(wx) + ev(wy) + ev(wz);
  } else {
    denom = wx * wx + wy * wy + wz * wz;
  }
  return cplx{1.0 / denom, 0.0};
}

}  // namespace lc::green
